# Personal Virtual Networks — build/test/reproduce targets.

GO ?= go
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: all build vet lint lint-fix-audit test race test-race fuzz-short e16-determinism e17-determinism soak-short soak-exit-gate soak bench-gate bench-baseline check bench experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis. pvnlint first: it is stdlib-only, works offline, and
# enforces the project contracts (determinism, clock discipline,
# fail-closed specs, atomic/plain field races, dropped lifecycle
# errors, plus the flow-sensitive trustflow/lockorder/goleak suite:
# wire data verified before sinks, lock ordering, stoppable
# goroutines) that generic linters cannot know about. Then staticcheck when
# it is installed (or fetchable), with a `go vet` fallback so
# offline/minimal environments still get a lint pass instead of a hard
# failure.
lint:
	$(GO) run ./cmd/pvnlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "lint: staticcheck ($$(staticcheck --version 2>/dev/null))"; \
		staticcheck ./...; \
	elif $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) --version >/dev/null 2>&1; then \
		echo "lint: staticcheck $(STATICCHECK_VERSION) via go run"; \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "lint: staticcheck unavailable (offline?); falling back to go vet"; \
		$(GO) vet ./...; \
	fi

# Audit trail for lint suppressions: every //lint:allow annotation in
# the tree with its mandatory reason, one line each, for review. The
# flow-sensitive checks use the same mechanism, so deliberate
# unverified flows and held-across-blocking locks show up here too
# (pvnlint -json gives the machine-readable finding list CI archives).
lint-fix-audit:
	$(GO) run ./cmd/pvnlint -allows ./...

test:
	$(GO) test ./...

# Concurrency regression tests (dataplane, middlebox, openflow) need the
# race detector to mean anything.
race:
	$(GO) test -race ./...

# Discovery→deploy lifecycle suite under the race detector: the session
# state machine, the locked deployserver (concurrent HandleDM / deploy /
# teardown), and the deterministic fault-injection tests. Faster than a
# full `make race` and targeted at the lifecycle code paths.
test-race:
	$(GO) test -race ./internal/discovery/ ./internal/deployserver/ ./internal/netsim/ ./cmd/pvnd/

# A short seed-corpus + random fuzz pass over every parser that handles
# untrusted bytes: the packet decoder, the DHT wire envelope, and the
# distributed-store module manifest.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=10s ./internal/packet/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeEnvelope -fuzztime=10s ./internal/overlay/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeModule -fuzztime=10s ./internal/store/

# The overlay determinism gate: the E16 table must be bit-identical
# across runs under the race detector (DESIGN.md §12).
e16-determinism:
	$(GO) test -race -run 'TestExperimentsDeterministic|TestE16OverlayShape' ./internal/experiments/

# The orchestrator determinism gate: the E17 table (placement book,
# evacuation, billing) must be bit-identical across runs under the race
# detector, and the placement property/fuzz suite must hold.
e17-determinism:
	$(GO) test -race -run 'TestE17OrchestrationShape|TestPlacementDeterminism|TestPlacementProperties' ./internal/experiments/ ./internal/orchestrator/

# The adversarial soak gate: a composed random failure storm (roam
# storms, flaps, lease churn, provider crashes, adversarial campaigns)
# on the scenario engine, strict-checked against every global invariant
# under the race detector. Any failure prints a pvnbench -soak -seed=N
# line that replays it bit-for-bit.
soak-short:
	$(GO) test -race -run 'TestSoakShort|TestSoakDeterminism|TestBrokenInvariantDetected' ./internal/scenario/

# The headless soak exit gate: `pvnbench -soak` MUST exit non-zero when
# invariants are violated, or CI's soak runs green-light broken code.
soak-exit-gate:
	$(GO) test -run 'TestSoakExitCode' ./cmd/pvnbench/

# The long soak: >= 1,000,000 simulated seconds of storm composition,
# plus the reclamation-vs-roam race. Minutes-scale; not part of check.
soak:
	$(GO) test -race -run 'TestSoakMillionSimSeconds' ./internal/scenario/
	$(GO) test -race -run 'TestReclaimOrphansRacesBeginRoam' ./internal/core/

# The dataplane performance gate: re-run the scaling sweep and diff it
# against the committed BENCH_DATAPLANE.json. Allocs/op gates strictly
# (machine-independent); ops/sec only flags collapses below 25% of the
# baseline, so CI hardware variance passes but a new per-packet
# allocation or lock does not.
bench-gate:
	$(GO) run ./cmd/pvnbench -gate BENCH_DATAPLANE.json -quick

# Re-record the committed dataplane baseline (full-size sweep). Run on a
# quiet machine and commit the resulting BENCH_DATAPLANE.json.
bench-baseline:
	$(GO) run ./cmd/pvnbench -dataplane -bench-json .

# The pre-merge gate: build, lint, full tests, full race pass, the E16
# and E17 determinism pairs, the short adversarial soak, the soak exit
# gate, short fuzz, and the dataplane perf gate.
check: build lint test race e16-determinism e17-determinism soak-short soak-exit-gate fuzz-short bench-gate

# One iteration of every benchmark (experiments E1-E12 + micro-benches).
bench:
	$(GO) test -bench=. -benchmem .

# Full experiment tables, as recorded in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/pvnbench

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/secure-roaming
	$(GO) run ./examples/video-policy
	$(GO) run ./examples/selective-redirect
	$(GO) run ./examples/iot-privacy

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
