# Personal Virtual Networks — build/test/reproduce targets.

GO ?= go

.PHONY: all build vet test race test-race fuzz-short check bench experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency regression tests (dataplane, middlebox, openflow) need the
# race detector to mean anything.
race:
	$(GO) test -race ./...

# Discovery→deploy lifecycle suite under the race detector: the session
# state machine, the locked deployserver (concurrent HandleDM / deploy /
# teardown), and the deterministic fault-injection tests. Faster than a
# full `make race` and targeted at the lifecycle code paths.
test-race:
	$(GO) test -race ./internal/discovery/ ./internal/deployserver/ ./internal/netsim/ ./cmd/pvnd/

# A short seed-corpus + random fuzz pass over the packet decoder: ten
# seconds of go-fuzz on Decode, the parser every untrusted byte crosses.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=10s ./internal/packet/

# The pre-merge gate: build, vet, full tests, full race pass, short fuzz.
check: build vet test race fuzz-short

# One iteration of every benchmark (experiments E1-E12 + micro-benches).
bench:
	$(GO) test -bench=. -benchmem .

# Full experiment tables, as recorded in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/pvnbench

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/secure-roaming
	$(GO) run ./examples/video-policy
	$(GO) run ./examples/selective-redirect
	$(GO) run ./examples/iot-privacy

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
