package tcpflow

import "pvn/internal/packet"

// Proxy is a TCP-terminating split proxy (§2.2 of the paper): it accepts
// client connections on one port, opens its own connection to the
// upstream server, and relays bytes both ways. Each leg runs its own
// congestion control, which is the whole point — the short client leg
// recovers from last-mile loss on its own fast RTT, and the long server
// leg grows its window over a clean backbone.
type Proxy struct {
	stack    *Stack
	upstream packet.Endpoint

	// Connections counts accepted client connections.
	Connections int64
	// BytesRelayed counts client->server plus server->client bytes.
	BytesRelayed int64
}

// NewProxy starts a split proxy on the stack: it listens on listenPort
// and forwards every accepted connection to upstream.
func NewProxy(stack *Stack, listenPort uint16, upstream packet.Endpoint) *Proxy {
	p := &Proxy{stack: stack, upstream: upstream}
	stack.Listen(listenPort, p.accept)
	return p
}

func (p *Proxy) accept(client *Conn) {
	p.Connections++
	up, err := p.stack.Dial(p.upstream)
	if err != nil {
		client.Close()
		return
	}
	// Bytes written before the upstream handshake completes sit in its
	// send buffer and flush on establishment, so no extra staging is
	// needed in either direction.
	client.OnData = func(b []byte) {
		p.BytesRelayed += int64(len(b))
		up.Write(b)
	}
	up.OnData = func(b []byte) {
		p.BytesRelayed += int64(len(b))
		client.Write(b)
	}
	client.OnClose = func() { up.Close() }
	up.OnClose = func() { client.Close() }
}
