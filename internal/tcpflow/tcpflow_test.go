package tcpflow

import (
	"bytes"
	"testing"
	"time"

	"pvn/internal/netsim"
	"pvn/internal/packet"
	"pvn/internal/tcpsim"
)

var (
	clientAddr = packet.MustParseIPv4("10.0.0.5")
	serverAddr = packet.MustParseIPv4("93.184.216.34")
)

// pair builds client--server over one configurable link and returns the
// network plus both stacks.
func pair(t *testing.T, link netsim.LinkConfig, seed uint64) (*netsim.Network, *Stack, *Stack) {
	t.Helper()
	net := netsim.NewNetwork(seed)
	cn := net.AddNode("client")
	sn := net.AddNode("server")
	net.Connect(cn, sn, link)
	client := NewStack(cn, clientAddr, Config{})
	server := NewStack(sn, serverAddr, Config{})
	return net, client, server
}

// transfer runs a full client->server upload of payload and returns the
// received bytes and completion time (from dial to server-side close).
func transfer(t *testing.T, link netsim.LinkConfig, seed uint64, payload []byte) ([]byte, time.Duration, *Conn) {
	t.Helper()
	net, client, server := pair(t, link, seed)

	var received bytes.Buffer
	var doneAt time.Duration = -1
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { received.Write(b) }
		c.OnClose = func() { doneAt = net.Clock.Now() }
	})

	conn, err := client.Dial(packet.Endpoint{Addr: serverAddr, Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() {
		conn.Write(payload)
		conn.Close()
	}
	net.Clock.RunUntil(10 * time.Minute)
	if doneAt < 0 {
		t.Fatalf("transfer never completed: established=%v sent=%d rcvd=%d retx=%d timeouts=%d pending=%d",
			conn.Established() || conn.Closed(), conn.BytesSent, received.Len(), conn.Retransmits, conn.Timeouts, net.Clock.Pending())
	}
	return received.Bytes(), doneAt, conn
}

func patterned(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i * 31)
	}
	return out
}

func TestHandshakeAndSmallTransfer(t *testing.T) {
	link := netsim.LinkConfig{Latency: 10 * time.Millisecond, BandwidthBps: 1e8}
	payload := []byte("hello over simulated tcp")
	got, doneAt, conn := transfer(t, link, 1, payload)
	if !bytes.Equal(got, payload) {
		t.Fatalf("received %q", got)
	}
	// doneAt is the server-side close: SYN (10ms) + SYN-ACK (20ms) +
	// data/FIN arriving at 30ms, plus serialization.
	if doneAt < 25*time.Millisecond || doneAt > 100*time.Millisecond {
		t.Fatalf("completion at %v", doneAt)
	}
	if conn.Retransmits != 0 || conn.Timeouts != 0 {
		t.Fatalf("loss events on clean link: %+v", conn)
	}
	if !conn.Closed() {
		t.Fatal("client connection not closed after FIN ack")
	}
}

func TestBulkTransferIntegrity(t *testing.T) {
	link := netsim.LinkConfig{Latency: 20 * time.Millisecond, BandwidthBps: 2e7, QueueBytes: 1 << 20}
	payload := patterned(500_000)
	got, _, _ := transfer(t, link, 2, payload)
	if !bytes.Equal(got, payload) {
		t.Fatalf("bulk payload corrupted: got %d bytes want %d", len(got), len(payload))
	}
}

func TestLossyLinkRecovers(t *testing.T) {
	link := netsim.LinkConfig{Latency: 20 * time.Millisecond, BandwidthBps: 2e7, LossRate: 0.02, QueueBytes: 1 << 20}
	payload := patterned(200_000)
	got, _, conn := transfer(t, link, 3, payload)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted under loss: got %d want %d bytes", len(got), len(payload))
	}
	if conn.Retransmits == 0 {
		t.Fatal("2% loss produced no retransmissions")
	}
}

func TestHeavyLossStillCompletes(t *testing.T) {
	link := netsim.LinkConfig{Latency: 10 * time.Millisecond, BandwidthBps: 1e7, LossRate: 0.15, QueueBytes: 1 << 20}
	// Enough segments (~143) that data losses are statistically certain.
	payload := patterned(200_000)
	got, _, conn := transfer(t, link, 4, payload)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d want %d", len(got), len(payload))
	}
	if conn.Retransmits == 0 {
		t.Fatal("15% loss produced no retransmissions")
	}
	if conn.Timeouts == 0 && conn.FastRecovers == 0 {
		t.Fatal("15% loss produced no recovery events")
	}
}

func TestTinyQueueCausesDropsButCompletes(t *testing.T) {
	// Drop-tail queue far below the BDP forces congestion losses.
	link := netsim.LinkConfig{Latency: 30 * time.Millisecond, BandwidthBps: 5e6, QueueBytes: 8 << 10}
	payload := patterned(300_000)
	got, _, conn := transfer(t, link, 5, payload)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d want %d", len(got), len(payload))
	}
	if conn.Retransmits == 0 {
		t.Fatal("queue overflow produced no retransmissions")
	}
}

func TestBidirectionalConnections(t *testing.T) {
	link := netsim.LinkConfig{Latency: 5 * time.Millisecond, BandwidthBps: 1e8}
	net, client, server := pair(t, link, 6)

	// Server echoes everything back.
	server.Listen(7, func(c *Conn) {
		c.OnData = func(b []byte) { c.Write(b) }
	})
	var echoed bytes.Buffer
	conn, _ := client.Dial(packet.Endpoint{Addr: serverAddr, Port: 7})
	conn.OnData = func(b []byte) { echoed.Write(b) }
	conn.OnEstablished = func() { conn.Write([]byte("ping-pong-payload")) }
	net.Clock.RunUntil(5 * time.Second)
	if echoed.String() != "ping-pong-payload" {
		t.Fatalf("echo %q", echoed.String())
	}
}

func TestNoListenerIgnoresSyn(t *testing.T) {
	link := netsim.LinkConfig{Latency: 5 * time.Millisecond, BandwidthBps: 1e8}
	net, client, server := pair(t, link, 7)
	conn, _ := client.Dial(packet.Endpoint{Addr: serverAddr, Port: 9999})
	net.Clock.RunUntil(3 * time.Second)
	if conn.Established() {
		t.Fatal("connected to a closed port")
	}
	if server.Conns() != 0 {
		t.Fatal("server grew a connection")
	}
}

func TestMultipleConcurrentConnections(t *testing.T) {
	link := netsim.LinkConfig{Latency: 10 * time.Millisecond, BandwidthBps: 5e7, QueueBytes: 1 << 20}
	net, client, server := pair(t, link, 8)

	recv := map[uint16]*bytes.Buffer{}
	server.Listen(80, func(c *Conn) {
		buf := &bytes.Buffer{}
		recv[c.Remote().Port] = buf
		c.OnData = func(b []byte) { buf.Write(b) }
	})

	payload := patterned(50_000)
	var conns []*Conn
	for i := 0; i < 5; i++ {
		conn, err := client.Dial(packet.Endpoint{Addr: serverAddr, Port: 80})
		if err != nil {
			t.Fatal(err)
		}
		conn.OnEstablished = func() { conn.Write(payload); conn.Close() }
		conns = append(conns, conn)
	}
	net.Clock.RunUntil(time.Minute)
	if len(recv) != 5 {
		t.Fatalf("server saw %d connections", len(recv))
	}
	for port, buf := range recv {
		if !bytes.Equal(buf.Bytes(), payload) {
			t.Fatalf("connection from port %d corrupted (%d bytes)", port, buf.Len())
		}
	}
}

// TestCrossValidationAgainstTcpsim: the packet-level implementation and
// the analytic round model must agree on transfer time within a small
// factor on clean links, and on the ordering of configurations
// generally — this is what lets E3's analytic results stand in for
// packet-level truth.
func TestCrossValidationAgainstTcpsim(t *testing.T) {
	cases := []struct {
		name string
		link netsim.LinkConfig
		par  tcpsim.Params
	}{
		{"fast clean", netsim.LinkConfig{Latency: 25 * time.Millisecond, BandwidthBps: 5e7, QueueBytes: 4 << 20},
			tcpsim.Params{RTT: 50 * time.Millisecond, BandwidthBps: 5e7, MSS: 1400}},
		{"slow clean", netsim.LinkConfig{Latency: 50 * time.Millisecond, BandwidthBps: 5e6, QueueBytes: 4 << 20},
			tcpsim.Params{RTT: 100 * time.Millisecond, BandwidthBps: 5e6, MSS: 1400}},
	}
	const bytesToSend = 1_000_000
	var measured []float64
	for _, c := range cases {
		payload := patterned(bytesToSend)
		_, doneAt, _ := transfer(t, c.link, 9, payload)
		pred, err := tcpsim.TransferTime(c.par, bytesToSend, netsim.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(doneAt) / float64(pred.Duration)
		measured = append(measured, float64(doneAt))
		t.Logf("%s: packet-level %v, analytic %v, ratio %.2f", c.name, doneAt, pred.Duration, ratio)
		if ratio < 0.4 || ratio > 2.5 {
			t.Fatalf("%s: packet-level %v vs analytic %v (ratio %.2f) — models diverge",
				c.name, doneAt, pred.Duration, ratio)
		}
	}
	// Ordering: the slower configuration is slower in both models.
	if measured[1] <= measured[0] {
		t.Fatal("slow link not slower at packet level")
	}
}

func TestEndpointAccessors(t *testing.T) {
	link := netsim.LinkConfig{Latency: time.Millisecond, BandwidthBps: 1e8}
	net, client, server := pair(t, link, 30)
	server.Listen(80, func(c *Conn) {})
	conn, err := client.Dial(packet.Endpoint{Addr: serverAddr, Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	net.Clock.RunUntil(time.Second)
	if conn.Local().Addr != clientAddr || conn.Remote().Port != 80 {
		t.Fatalf("endpoints %v -> %v", conn.Local(), conn.Remote())
	}
}
