package tcpflow

import (
	"bytes"
	"testing"
	"time"

	"pvn/internal/netsim"
	"pvn/internal/packet"
)

var proxyAddr = packet.MustParseIPv4("10.99.0.1")

// splitWorld builds client --lastMile-- proxy --backbone-- server with
// TCP stacks on all three nodes and a split proxy in the middle. The
// proxy's RoutePort steers packets per destination.
func splitWorld(t *testing.T, lastMile, backbone netsim.LinkConfig, seed uint64) (*netsim.Network, *Stack, *Stack, *Proxy) {
	t.Helper()
	net := netsim.NewNetwork(seed)
	cn := net.AddNode("client")
	pn := net.AddNode("proxy")
	sn := net.AddNode("server")
	net.Connect(cn, pn, lastMile) // proxy port 0 faces the client
	net.Connect(pn, sn, backbone) // proxy port 1 faces the server

	client := NewStack(cn, clientAddr, Config{})
	server := NewStack(sn, serverAddr, Config{})
	proxyStack := NewStack(pn, proxyAddr, Config{})
	proxyStack.RoutePort = func(remote packet.IPv4Address) int {
		if remote == serverAddr {
			return 1
		}
		return 0
	}
	proxy := NewProxy(proxyStack, 8080, packet.Endpoint{Addr: serverAddr, Port: 80})
	return net, client, server, proxy
}

// uploadVia runs a client upload either direct (two-hop chain without
// termination) or via the split proxy, returning completion time.
func uploadVia(t *testing.T, split bool, lastMile, backbone netsim.LinkConfig, seed uint64, payload []byte) time.Duration {
	t.Helper()
	if split {
		net, client, server, _ := splitWorld(t, lastMile, backbone, seed)
		var done time.Duration = -1
		var got bytes.Buffer
		server.Listen(80, func(c *Conn) {
			c.OnData = func(b []byte) { got.Write(b) }
			c.OnClose = func() { done = net.Clock.Now() }
		})
		conn, err := client.Dial(packet.Endpoint{Addr: proxyAddr, Port: 8080})
		if err != nil {
			t.Fatal(err)
		}
		conn.OnEstablished = func() { conn.Write(payload); conn.Close() }
		net.Clock.RunUntil(30 * time.Minute)
		if done < 0 {
			t.Fatalf("split transfer never completed (%d bytes relayed)", got.Len())
		}
		if !bytes.Equal(got.Bytes(), payload) {
			t.Fatalf("split payload corrupted: %d bytes", got.Len())
		}
		return done
	}

	// Direct: same three nodes but the middle one just forwards packets
	// (no TCP termination), so one end-to-end connection crosses both
	// links.
	net := netsim.NewNetwork(seed)
	cn := net.AddNode("client")
	fn := net.AddNode("fwd")
	sn := net.AddNode("server")
	net.Connect(cn, fn, lastMile)
	net.Connect(fn, sn, backbone)
	fn.Handler = func(n *netsim.Node, in *netsim.Port, msg *netsim.Message) {
		out := 1 - in.Index() // two ports: bounce to the other side
		n.Port(out).Send(&netsim.Message{Size: msg.Size, Payload: msg.Payload, Src: msg.Src})
	}
	client := NewStack(cn, clientAddr, Config{})
	server := NewStack(sn, serverAddr, Config{})
	var done time.Duration = -1
	var got bytes.Buffer
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { got.Write(b) }
		c.OnClose = func() { done = net.Clock.Now() }
	})
	conn, err := client.Dial(packet.Endpoint{Addr: serverAddr, Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() { conn.Write(payload); conn.Close() }
	net.Clock.RunUntil(30 * time.Minute)
	if done < 0 {
		t.Fatal("direct transfer never completed")
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("direct payload corrupted: %d bytes", got.Len())
	}
	return done
}

func TestProxyRelaysIntact(t *testing.T) {
	lastMile := netsim.LinkConfig{Latency: 10 * time.Millisecond, BandwidthBps: 2e7, QueueBytes: 1 << 20}
	backbone := netsim.LinkConfig{Latency: 40 * time.Millisecond, BandwidthBps: 1e8, QueueBytes: 1 << 20}
	payload := patterned(150_000)
	done := uploadVia(t, true, lastMile, backbone, 11, payload)
	if done <= 0 {
		t.Fatal("no completion")
	}
}

func TestProxyEchoBothDirections(t *testing.T) {
	lastMile := netsim.LinkConfig{Latency: 10 * time.Millisecond, BandwidthBps: 2e7, QueueBytes: 1 << 20}
	backbone := netsim.LinkConfig{Latency: 40 * time.Millisecond, BandwidthBps: 1e8, QueueBytes: 1 << 20}
	net, client, server, proxy := splitWorld(t, lastMile, backbone, 12)
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { c.Write(b) } // echo
	})
	var echoed bytes.Buffer
	conn, _ := client.Dial(packet.Endpoint{Addr: proxyAddr, Port: 8080})
	conn.OnData = func(b []byte) { echoed.Write(b) }
	conn.OnEstablished = func() { conn.Write([]byte("through-the-proxy")) }
	net.Clock.RunUntil(time.Minute)
	if echoed.String() != "through-the-proxy" {
		t.Fatalf("echo %q", echoed.String())
	}
	if proxy.Connections != 1 || proxy.BytesRelayed == 0 {
		t.Fatalf("proxy stats %+v", proxy)
	}
}

// TestPacketLevelSplitBeatsDirect reproduces E3's headline at packet
// level: on a lossy last mile + long clean backbone, terminating TCP at
// the proxy finishes the same upload materially faster than one
// end-to-end connection.
func TestPacketLevelSplitBeatsDirect(t *testing.T) {
	lastMile := netsim.LinkConfig{Latency: 15 * time.Millisecond, BandwidthBps: 2e7, LossRate: 0.02, QueueBytes: 1 << 20}
	backbone := netsim.LinkConfig{Latency: 80 * time.Millisecond, BandwidthBps: 2e8, QueueBytes: 4 << 20}
	payload := patterned(500_000)

	direct := uploadVia(t, false, lastMile, backbone, 13, payload)
	split := uploadVia(t, true, lastMile, backbone, 13, payload)
	t.Logf("direct %v, split %v (%.2fx)", direct, split, float64(direct)/float64(split))
	if float64(direct) < 1.2*float64(split) {
		t.Fatalf("split (%v) not materially faster than direct (%v)", split, direct)
	}
}
