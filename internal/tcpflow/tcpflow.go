// Package tcpflow is a packet-level TCP implementation running over the
// netsim substrate: real SYN/SYN-ACK/ACK handshakes, cumulative ACKs
// with out-of-order reassembly, slow start and congestion avoidance,
// fast retransmit on three duplicate ACKs, and exponential-backoff
// retransmission timeouts — all driven by the simulated clock, packet by
// packet.
//
// It serves two purposes in the PVN reproduction. First, it is the
// transport the end-to-end demos run over when analytic modelling is not
// enough (every byte really crosses the simulated links and the PVN
// switch sits on the path). Second, it cross-validates internal/tcpsim:
// the analytic round model and this packet-level implementation must
// agree on the shape of every transfer-time claim (see the validation
// test and experiment E3).
package tcpflow

import (
	"errors"
	"fmt"
	"time"

	"pvn/internal/netsim"
	"pvn/internal/packet"
	"pvn/internal/reasm"
)

// Errors.
var (
	ErrConnExists = errors.New("tcpflow: connection already exists")
	ErrNoListener = errors.New("tcpflow: no listener on port")
)

// Config tunes a stack's connections.
type Config struct {
	// MSS is the maximum segment payload. Defaults to 1400.
	MSS int
	// InitCwnd in segments. Defaults to 10 (RFC 6928).
	InitCwnd int
	// MaxCwnd caps the window in segments. Defaults to 1000.
	MaxCwnd int
	// MinRTO floors the retransmission timeout. Defaults to 200 ms.
	MinRTO time.Duration
}

func (c *Config) applyDefaults() {
	if c.MSS == 0 {
		c.MSS = 1400
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 10
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 1000
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * time.Millisecond
	}
}

// connState is the TCP state machine subset we implement.
type connState int

const (
	stateSynSent connState = iota
	stateSynRcvd
	stateEstablished
	stateClosed
)

// Conn is one TCP connection endpoint.
type Conn struct {
	stack  *Stack
	cfg    Config
	local  packet.Endpoint
	remote packet.Endpoint
	state  connState

	// --- sender ---
	iss      uint32 // initial send sequence
	sndUna   uint32 // oldest unacknowledged
	sndNxt   uint32 // next sequence to send
	cwnd     float64
	ssthresh float64
	sendBuf  []byte // app data not yet transmitted
	// sentAt remembers transmission time of in-flight segment starts
	// for RTT sampling (Karn's rule: only first transmissions sampled).
	sentAt map[uint32]time.Duration
	retx   map[uint32]bool // segments that were retransmitted
	// segLen remembers each in-flight segment's length for retransmit.
	segLen map[uint32]int

	srtt, rttvar time.Duration
	rto          time.Duration
	rtoBackoff   int
	timerGen     int // invalidates stale RTO timers

	dupAcks int
	// finQueued means Close was called: send FIN once the buffer
	// drains.
	finQueued bool
	finSent   bool
	finSeq    uint32

	// --- receiver ---
	irs    uint32 // initial receive sequence
	rcvNxt uint32
	stream *reasm.Stream

	// OnData delivers contiguous received bytes.
	OnData func([]byte)
	// OnClose fires when the peer's FIN is consumed or the connection
	// resets.
	OnClose func()
	// OnEstablished fires when the handshake completes.
	OnEstablished func()

	// window retains unacknowledged payload for retransmission.
	window []winChunk

	// Stats.
	Retransmits  int64
	Timeouts     int64
	FastRecovers int64
	BytesSent    int64
	BytesRcvd    int64

	establishedAt time.Duration
	closedAt      time.Duration
}

// Established reports whether the handshake completed.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Closed reports whether the connection ended.
func (c *Conn) Closed() bool { return c.state == stateClosed }

// Local and Remote name the endpoints.
func (c *Conn) Local() packet.Endpoint  { return c.local }
func (c *Conn) Remote() packet.Endpoint { return c.remote }

// Stack runs TCP for one netsim node: it owns every connection keyed by
// flow and must be installed as (or called from) the node's handler.
type Stack struct {
	Node *netsim.Node
	// OutPort is the node port connections transmit on.
	OutPort int
	// RoutePort, when set, picks the node port per remote address —
	// multihomed nodes (proxies, the E12 device) need different ports
	// toward different peers. Overrides OutPort.
	RoutePort func(remote packet.IPv4Address) int
	// Addr is this stack's IPv4 address (used to build packets).
	Addr packet.IPv4Address
	Cfg  Config

	conns     map[packet.Flow]*Conn
	listeners map[uint16]func(*Conn)
	nextPort  uint16
	rng       *netsim.RNG
}

// NewStack attaches a TCP stack to a node and installs its handler.
func NewStack(node *netsim.Node, addr packet.IPv4Address, cfg Config) *Stack {
	cfg.applyDefaults()
	s := &Stack{
		Node: node, Addr: addr, Cfg: cfg,
		conns:     make(map[packet.Flow]*Conn),
		listeners: make(map[uint16]func(*Conn)),
		nextPort:  40000,
		rng:       node.Network().RNG().Fork(),
	}
	node.Handler = func(n *netsim.Node, in *netsim.Port, msg *netsim.Message) {
		if data, ok := msg.Payload.([]byte); ok {
			s.Deliver(data)
		}
	}
	return s
}

// Listen registers an accept callback for a local port.
func (s *Stack) Listen(port uint16, accept func(*Conn)) {
	s.listeners[port] = accept
}

// Dial opens a connection to remote and returns it immediately; the
// handshake completes asynchronously (OnEstablished).
func (s *Stack) Dial(remote packet.Endpoint) (*Conn, error) {
	local := packet.Endpoint{Addr: s.Addr, Port: s.nextPort}
	s.nextPort++
	flow := packet.Flow{Proto: packet.IPProtoTCP, Src: local, Dst: remote}
	if _, dup := s.conns[flow]; dup {
		return nil, fmt.Errorf("%w: %v", ErrConnExists, flow)
	}
	c := s.newConn(local, remote)
	c.state = stateSynSent
	s.conns[flow] = c
	c.sendFlags(packet.TCPSyn, c.iss, 0, nil)
	c.sndNxt = c.iss + 1 // SYN consumes one sequence number
	c.armRTO()
	return c, nil
}

func (s *Stack) newConn(local, remote packet.Endpoint) *Conn {
	iss := uint32(s.rng.Uint64())
	c := &Conn{
		stack: s, cfg: s.Cfg, local: local, remote: remote,
		iss: iss, sndUna: iss, sndNxt: iss,
		cwnd: float64(s.Cfg.InitCwnd), ssthresh: float64(s.Cfg.MaxCwnd),
		sentAt: make(map[uint32]time.Duration),
		retx:   make(map[uint32]bool),
		segLen: make(map[uint32]int),
		rto:    time.Second,
		stream: reasm.NewStream(),
	}
	return c
}

func (s *Stack) clock() *netsim.Clock { return s.Node.Network().Clock }

// Deliver feeds one raw IPv4 packet into the stack (exported so
// middlebox-interposed topologies can hand packets over manually).
func (s *Stack) Deliver(data []byte) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	ip := p.IPv4()
	t := p.TCP()
	if ip == nil || t == nil || ip.Dst != s.Addr {
		return
	}
	local := packet.Endpoint{Addr: ip.Dst, Port: t.DstPort}
	remote := packet.Endpoint{Addr: ip.Src, Port: t.SrcPort}
	flow := packet.Flow{Proto: packet.IPProtoTCP, Src: local, Dst: remote}

	c, ok := s.conns[flow]
	if !ok {
		// New inbound connection?
		if t.Flags&packet.TCPSyn != 0 && t.Flags&packet.TCPAck == 0 {
			accept, listening := s.listeners[local.Port]
			if !listening {
				return // silently ignore (no RST in this subset)
			}
			c = s.newConn(local, remote)
			c.state = stateSynRcvd
			c.irs = t.Seq
			c.rcvNxt = t.Seq + 1
			s.conns[flow] = c
			c.sendFlags(packet.TCPSyn|packet.TCPAck, c.iss, c.rcvNxt, nil)
			c.sndNxt = c.iss + 1
			c.armRTO()
			accept(c)
		}
		return
	}
	c.handleSegment(t)
}

// Conns reports live connections (diagnostics).
func (s *Stack) Conns() int { return len(s.conns) }

// --- Conn internals ---

// sendFlags emits a segment with explicit flags/seq/ack and payload.
func (c *Conn) sendFlags(flags byte, seq, ack uint32, payload []byte) {
	ip := &packet.IPv4{Src: c.local.Addr, Dst: c.remote.Addr, Protocol: packet.IPProtoTCP}
	t := &packet.TCP{
		SrcPort: c.local.Port, DstPort: c.remote.Port,
		Seq: seq, Ack: ack, Flags: flags, Window: 65535,
	}
	t.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, t, packet.Payload(payload))
	if err != nil {
		return
	}
	idx := c.stack.OutPort
	if c.stack.RoutePort != nil {
		idx = c.stack.RoutePort(c.remote.Addr)
	}
	port := c.stack.Node.Port(idx)
	if port == nil {
		return
	}
	port.Send(&netsim.Message{Size: len(data), Payload: data, Src: c.stack.Node.ID})
}

// Write queues application data for transmission.
func (c *Conn) Write(data []byte) {
	c.sendBuf = append(c.sendBuf, data...)
	c.trySend()
}

// Close queues a FIN after pending data.
func (c *Conn) Close() {
	if c.finQueued || c.state == stateClosed {
		return
	}
	c.finQueued = true
	c.trySend()
}

// inFlight returns unacknowledged bytes.
func (c *Conn) inFlight() int { return int(c.sndNxt - c.sndUna) }

// trySend transmits as much buffered data as the congestion window
// allows.
func (c *Conn) trySend() {
	if c.state != stateEstablished {
		return
	}
	wnd := int(c.cwnd) * c.cfg.MSS
	for len(c.sendBuf) > 0 && c.inFlight() < wnd {
		n := c.cfg.MSS
		if n > len(c.sendBuf) {
			n = len(c.sendBuf)
		}
		seg := c.sendBuf[:n]
		seq := c.sndNxt
		c.sendFlags(packet.TCPAck, seq, c.rcvNxt, seg)
		c.sentAt[seq] = c.now()
		c.segLen[seq] = n
		// Keep the bytes until acknowledged (retransmission source):
		// we retain them in a window buffer indexed by seq offset.
		c.sndNxt += uint32(n)
		c.BytesSent += int64(n)
		c.retainWindow(seq, seg)
		c.sendBuf = c.sendBuf[n:]
	}
	if c.finQueued && !c.finSent && len(c.sendBuf) == 0 {
		c.finSeq = c.sndNxt
		c.sendFlags(packet.TCPFin|packet.TCPAck, c.sndNxt, c.rcvNxt, nil)
		c.sndNxt++
		c.finSent = true
	}
	if c.inFlight() > 0 {
		c.armRTO()
	}
}

// window retains unacked payload bytes for retransmission.
type winChunk struct {
	seq  uint32
	data []byte
}

// retained is stored on the connection lazily to avoid an extra field in
// the struct literal above.
func (c *Conn) retainWindow(seq uint32, data []byte) {
	c.window = append(c.window, winChunk{seq: seq, data: append([]byte(nil), data...)})
}

// findChunk returns retained bytes starting at seq, or nil.
func (c *Conn) findChunk(seq uint32) []byte {
	for _, ch := range c.window {
		if ch.seq == seq {
			return ch.data
		}
	}
	return nil
}

// releaseWindow discards chunks fully below una.
func (c *Conn) releaseWindow(una uint32) {
	kept := c.window[:0]
	for _, ch := range c.window {
		if int32(ch.seq+uint32(len(ch.data))-una) > 0 {
			kept = append(kept, ch)
		}
	}
	c.window = kept
}

func (c *Conn) now() time.Duration { return c.stack.clock().Now() }

// handleSegment runs the receive path.
func (c *Conn) handleSegment(t *packet.TCP) {
	switch c.state {
	case stateSynSent:
		if t.Flags&packet.TCPSyn != 0 && t.Flags&packet.TCPAck != 0 && t.Ack == c.iss+1 {
			c.irs = t.Seq
			c.rcvNxt = t.Seq + 1
			c.sndUna = t.Ack
			c.establish()
			c.sendFlags(packet.TCPAck, c.sndNxt, c.rcvNxt, nil)
		}
		return
	case stateSynRcvd:
		if t.Flags&packet.TCPAck != 0 && t.Ack == c.iss+1 {
			c.sndUna = t.Ack
			c.establish()
		}
		// Fall through: the ACK may carry data.
	case stateClosed:
		return
	}
	if c.state != stateEstablished {
		return
	}

	if t.Flags&packet.TCPAck != 0 {
		c.processAck(t.Ack)
	}
	payload := t.LayerPayload()
	if len(payload) > 0 {
		c.processData(t.Seq, payload)
	}
	if t.Flags&packet.TCPFin != 0 && t.Seq == c.rcvNxt {
		c.rcvNxt++
		c.sendFlags(packet.TCPAck, c.sndNxt, c.rcvNxt, nil)
		c.shutdown()
	}
}

func (c *Conn) establish() {
	c.state = stateEstablished
	c.establishedAt = c.now()
	c.stream.Anchor(c.rcvNxt)
	c.timerGen++ // cancel handshake RTO
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
	c.trySend()
}

func (c *Conn) shutdown() {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	c.closedAt = c.now()
	c.timerGen++
	if c.OnClose != nil {
		c.OnClose()
	}
}

// processAck implements NewReno-lite: cwnd growth, dupack fast
// retransmit, RTT estimation.
func (c *Conn) processAck(ack uint32) {
	if int32(ack-c.sndUna) <= 0 {
		// Duplicate (or old) ACK.
		if ack == c.sndUna && c.inFlight() > 0 {
			c.dupAcks++
			if c.dupAcks == 3 {
				c.fastRetransmit()
			}
		}
		return
	}
	// New data acknowledged.
	if at, ok := c.sentAt[c.sndUna]; ok && !c.retx[c.sndUna] {
		c.sampleRTT(c.now() - at)
	}
	for seq := range c.sentAt {
		if int32(seq-ack) < 0 {
			delete(c.sentAt, seq)
			delete(c.retx, seq)
			delete(c.segLen, seq)
		}
	}
	c.sndUna = ack
	c.releaseWindow(ack)
	c.dupAcks = 0
	c.rtoBackoff = 0

	// cwnd growth.
	if c.cwnd < c.ssthresh {
		c.cwnd++ // slow start: +1 per ACK
	} else {
		c.cwnd += 1 / c.cwnd // congestion avoidance
	}
	if c.cwnd > float64(c.cfg.MaxCwnd) {
		c.cwnd = float64(c.cfg.MaxCwnd)
	}

	if c.finSent && int32(ack-(c.finSeq+1)) >= 0 {
		c.shutdown()
		return
	}
	if c.inFlight() == 0 {
		c.timerGen++ // everything acked: stop the timer
	} else {
		c.armRTO()
	}
	c.trySend()
}

func (c *Conn) fastRetransmit() {
	c.FastRecovers++
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 2 {
		c.ssthresh = 2
	}
	c.cwnd = c.ssthresh
	c.retransmitFirst()
}

func (c *Conn) retransmitFirst() {
	if c.finSent && c.sndUna == c.finSeq {
		c.Retransmits++
		c.sendFlags(packet.TCPFin|packet.TCPAck, c.finSeq, c.rcvNxt, nil)
		c.armRTO()
		return
	}
	data := c.findChunk(c.sndUna)
	if data == nil {
		return
	}
	c.Retransmits++
	c.retx[c.sndUna] = true
	c.sendFlags(packet.TCPAck, c.sndUna, c.rcvNxt, data)
	c.armRTO()
}

// sampleRTT updates SRTT/RTTVAR per RFC 6298.
func (c *Conn) sampleRTT(rtt time.Duration) {
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.cfg.MinRTO {
		c.rto = c.cfg.MinRTO
	}
}

// armRTO (re)starts the retransmission timer.
func (c *Conn) armRTO() {
	c.timerGen++
	gen := c.timerGen
	rto := c.rto << uint(c.rtoBackoff)
	if rto > time.Minute {
		rto = time.Minute
	}
	c.stack.clock().Schedule(rto, func() {
		if gen != c.timerGen || c.state == stateClosed {
			return
		}
		c.onRTO()
	})
}

func (c *Conn) onRTO() {
	c.Timeouts++
	switch c.state {
	case stateSynSent:
		c.sendFlags(packet.TCPSyn, c.iss, 0, nil)
	case stateSynRcvd:
		c.sendFlags(packet.TCPSyn|packet.TCPAck, c.iss, c.rcvNxt, nil)
	case stateEstablished:
		if c.inFlight() == 0 {
			return
		}
		c.ssthresh = c.cwnd / 2
		if c.ssthresh < 2 {
			c.ssthresh = 2
		}
		c.cwnd = 1
		c.retransmitFirst()
	}
	c.rtoBackoff++
	if c.rtoBackoff > 10 {
		c.shutdown() // give up, like real stacks eventually do
		return
	}
	c.armRTO()
}

// processData runs the receiver: reassemble, deliver, ACK.
func (c *Conn) processData(seq uint32, payload []byte) {
	if err := c.stream.Push(seq, payload); err != nil {
		// Buffer overrun: drop the segment; the sender will retransmit.
		c.sendFlags(packet.TCPAck, c.sndNxt, c.rcvNxt, nil)
		return
	}
	if ready := c.stream.Bytes(); len(ready) > 0 {
		c.rcvNxt += uint32(len(ready))
		c.BytesRcvd += int64(len(ready))
		out := append([]byte(nil), ready...)
		c.stream.Consume(len(ready))
		if c.OnData != nil {
			c.OnData(out)
		}
	}
	c.sendFlags(packet.TCPAck, c.sndNxt, c.rcvNxt, nil)
}
