// Package reasm implements TCP stream reassembly for PVN middleboxes:
// per-direction in-order byte streams rebuilt from possibly out-of-order,
// duplicated or overlapping segments, with sequence-number wraparound
// handled. Middleboxes that parse application messages larger than one
// segment (TLS certificate chains, big HTTP bodies) consume the
// contiguous stream instead of raw packets — the same job gopacket's
// tcpassembly does for real capture pipelines.
package reasm

import (
	"errors"
	"fmt"
	"sort"

	"pvn/internal/packet"
)

// ErrBufferExceeded reports an out-of-order buffer past its limit, which
// in a middlebox means the flow should be bypassed or dropped rather
// than buffered forever.
var ErrBufferExceeded = errors.New("reasm: out-of-order buffer limit exceeded")

// seqLess reports a < b in TCP sequence space (RFC 1982-style wraparound
// comparison).
func seqLess(a, b uint32) bool {
	return int32(a-b) < 0
}

// Stream reassembles one direction of one TCP connection.
type Stream struct {
	// MaxBuffered caps buffered out-of-order bytes. Zero means 256 KiB.
	MaxBuffered int

	started bool
	next    uint32 // next expected sequence number
	// pending holds out-of-order segments keyed by sequence number.
	pending  map[uint32][]byte
	buffered int
	// ready is the contiguous reassembled byte stream not yet consumed.
	ready []byte

	// Stats.
	Delivered  int64 // bytes made contiguous
	Duplicates int64 // fully duplicate segments discarded
	OutOfOrder int64 // segments that had to wait
}

// NewStream creates a stream; the first pushed segment anchors the
// sequence space (or call Anchor to pin it explicitly).
func NewStream() *Stream {
	return &Stream{pending: make(map[uint32][]byte)}
}

// Anchor pins the next expected sequence number before any data arrives
// — a TCP receiver anchors at ISN+1 after the handshake, so a
// retransmitted first segment trims correctly. No-op once started.
func (s *Stream) Anchor(seq uint32) {
	if !s.started {
		s.started = true
		s.next = seq
	}
}

func (s *Stream) maxBuffered() int {
	if s.MaxBuffered == 0 {
		return 256 << 10
	}
	return s.MaxBuffered
}

// Push adds a segment at the given sequence number. Overlaps are trimmed
// (first copy wins), duplicates dropped, and out-of-order data buffered
// until the gap fills.
func (s *Stream) Push(seq uint32, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if !s.started {
		s.started = true
		s.next = seq
	}

	// Trim any prefix we already have.
	if seqLess(seq, s.next) {
		over := s.next - seq // bytes already delivered
		if uint32(len(data)) <= over {
			s.Duplicates++
			return nil
		}
		data = data[over:]
		seq = s.next
	}

	if seq == s.next {
		s.deliver(data)
		s.drainPending()
		return nil
	}

	// Out of order: buffer (first copy wins on exact-key collision).
	if _, dup := s.pending[seq]; dup {
		s.Duplicates++
		return nil
	}
	if s.buffered+len(data) > s.maxBuffered() {
		return fmt.Errorf("%w: %d buffered", ErrBufferExceeded, s.buffered)
	}
	s.pending[seq] = append([]byte(nil), data...)
	s.buffered += len(data)
	s.OutOfOrder++
	return nil
}

func (s *Stream) deliver(data []byte) {
	s.ready = append(s.ready, data...)
	s.next += uint32(len(data))
	s.Delivered += int64(len(data))
}

// drainPending promotes buffered segments that have become contiguous.
func (s *Stream) drainPending() {
	for {
		seg, ok := s.pending[s.next]
		if !ok {
			// A buffered segment may START before next (overlap with
			// what just got delivered): scan for one that covers next.
			found := false
			for seq, data := range s.pending {
				if seqLess(seq, s.next) {
					end := seq + uint32(len(data))
					delete(s.pending, seq)
					s.buffered -= len(data)
					if seqLess(s.next, end) {
						s.deliver(data[s.next-seq:])
						found = true
					} else {
						s.Duplicates++
					}
					break
				}
			}
			if !found {
				return
			}
			continue
		}
		delete(s.pending, s.next)
		s.buffered -= len(seg)
		s.deliver(seg)
	}
}

// Bytes returns the contiguous stream accumulated so far without
// consuming it.
func (s *Stream) Bytes() []byte { return s.ready }

// Consume discards the first n contiguous bytes (a parser took them).
func (s *Stream) Consume(n int) {
	if n >= len(s.ready) {
		s.ready = s.ready[:0]
		return
	}
	s.ready = append(s.ready[:0], s.ready[n:]...)
}

// Gaps reports buffered out-of-order segment starts, for diagnostics.
func (s *Stream) Gaps() []uint32 {
	out := make([]uint32, 0, len(s.pending))
	for seq := range s.pending {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return seqLess(out[i], out[j]) })
	return out
}

// Assembler routes packets of many flows to per-direction streams.
type Assembler struct {
	// MaxBuffered applies to every stream.
	MaxBuffered int

	streams map[packet.Flow]*Stream
}

// NewAssembler builds an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{streams: make(map[packet.Flow]*Stream)}
}

// StreamFor returns (creating if needed) the stream for a directional
// flow.
func (a *Assembler) StreamFor(f packet.Flow) *Stream {
	s, ok := a.streams[f]
	if !ok {
		s = NewStream()
		s.MaxBuffered = a.MaxBuffered
		a.streams[f] = s
	}
	return s
}

// Feed pushes a decoded TCP packet into its stream and returns that
// stream, or nil for non-TCP packets or empty payloads.
func (a *Assembler) Feed(p *packet.Packet) (*Stream, error) {
	t := p.TCP()
	if t == nil {
		return nil, nil
	}
	payload := t.LayerPayload()
	if len(payload) == 0 {
		return nil, nil
	}
	f, ok := packet.FlowOf(p)
	if !ok {
		return nil, nil
	}
	s := a.StreamFor(f)
	if err := s.Push(t.Seq, payload); err != nil {
		return s, err
	}
	return s, nil
}

// Release drops a flow's stream (connection closed).
func (a *Assembler) Release(f packet.Flow) { delete(a.streams, f) }

// Flows reports how many directional streams are live.
func (a *Assembler) Flows() int { return len(a.streams) }
