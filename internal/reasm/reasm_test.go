package reasm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"pvn/internal/netsim"
	"pvn/internal/packet"
)

func TestInOrderDelivery(t *testing.T) {
	s := NewStream()
	s.Push(1000, []byte("hello "))
	s.Push(1006, []byte("world"))
	if string(s.Bytes()) != "hello world" {
		t.Fatalf("stream %q", s.Bytes())
	}
	if s.OutOfOrder != 0 || s.Duplicates != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestOutOfOrderReordered(t *testing.T) {
	s := NewStream()
	s.Push(100, []byte("AA"))
	s.Push(106, []byte("CC")) // gap at 102
	if string(s.Bytes()) != "AA" {
		t.Fatalf("premature delivery: %q", s.Bytes())
	}
	if len(s.Gaps()) != 1 || s.Gaps()[0] != 106 {
		t.Fatalf("gaps %v", s.Gaps())
	}
	s.Push(102, []byte("BBBB"))
	if string(s.Bytes()) != "AABBBBCC" {
		t.Fatalf("stream %q", s.Bytes())
	}
	if s.OutOfOrder != 1 {
		t.Fatalf("ooo %d", s.OutOfOrder)
	}
}

func TestDuplicateAndOverlapTrimmed(t *testing.T) {
	s := NewStream()
	s.Push(0, []byte("abcdef"))
	s.Push(0, []byte("abcdef")) // exact duplicate
	if s.Duplicates != 1 {
		t.Fatalf("dups %d", s.Duplicates)
	}
	s.Push(4, []byte("efGHI")) // overlaps 2 bytes, extends 3
	if string(s.Bytes()) != "abcdefGHI" {
		t.Fatalf("stream %q", s.Bytes())
	}
	// Retransmission fully inside delivered data.
	s.Push(2, []byte("cd"))
	if string(s.Bytes()) != "abcdefGHI" {
		t.Fatalf("stream changed: %q", s.Bytes())
	}
}

func TestOverlappingOutOfOrderSegment(t *testing.T) {
	s := NewStream()
	s.Push(0, []byte("0123"))
	s.Push(2, []byte("23456")) // starts before a gap? no — overlaps tail
	if string(s.Bytes()) != "0123456" {
		t.Fatalf("stream %q", s.Bytes())
	}
}

func TestSequenceWraparound(t *testing.T) {
	s := NewStream()
	start := uint32(0xFFFFFFFC) // 4 bytes before wrap
	s.Push(start, []byte("ABCD"))
	s.Push(0, []byte("EFGH")) // post-wrap
	if string(s.Bytes()) != "ABCDEFGH" {
		t.Fatalf("stream %q", s.Bytes())
	}
	// Out of order across the wrap.
	s2 := NewStream()
	s2.Push(0xFFFFFFFE, []byte("ab"))
	s2.Push(4, []byte("gh")) // gap 0..3
	s2.Push(0, []byte("cdef"))
	if string(s2.Bytes()) != "abcdefgh" {
		t.Fatalf("wrapped ooo stream %q", s2.Bytes())
	}
}

func TestConsume(t *testing.T) {
	s := NewStream()
	s.Push(0, []byte("recordArecordB"))
	s.Consume(7)
	if string(s.Bytes()) != "recordB" {
		t.Fatalf("after consume: %q", s.Bytes())
	}
	s.Consume(100) // over-consume clamps
	if len(s.Bytes()) != 0 {
		t.Fatal("over-consume left data")
	}
}

func TestBufferLimit(t *testing.T) {
	s := NewStream()
	s.MaxBuffered = 10
	s.Push(0, []byte("x"))
	if err := s.Push(100, bytes.Repeat([]byte("y"), 8)); err != nil {
		t.Fatal(err)
	}
	err := s.Push(300, bytes.Repeat([]byte("z"), 8))
	if !errors.Is(err, ErrBufferExceeded) {
		t.Fatalf("err=%v", err)
	}
}

func TestEmptyPushIgnored(t *testing.T) {
	s := NewStream()
	if err := s.Push(5, nil); err != nil {
		t.Fatal(err)
	}
	s.Push(10, []byte("anchor")) // first real segment anchors at 10
	if string(s.Bytes()) != "anchor" {
		t.Fatalf("stream %q", s.Bytes())
	}
}

// TestQuickRandomArrivalOrder: any permutation of segments reassembles
// to the original byte string.
func TestQuickRandomArrivalOrder(t *testing.T) {
	if err := quick.Check(func(seed uint64, nSegs uint8) bool {
		rng := netsim.NewRNG(seed)
		n := int(nSegs)%12 + 2
		// Build the ground-truth stream as variable-size segments.
		var truth []byte
		type seg struct {
			seq  uint32
			data []byte
		}
		var segs []seg
		base := uint32(rng.Uint64()) // random anchor, wraparound included
		offset := uint32(0)
		for i := 0; i < n; i++ {
			size := 1 + rng.Intn(40)
			data := make([]byte, size)
			for j := range data {
				data[j] = byte(rng.Uint64())
			}
			segs = append(segs, seg{seq: base + offset, data: data})
			truth = append(truth, data...)
			offset += uint32(size)
		}
		// The first segment must arrive first to anchor the stream (a
		// SYN would anchor real streams); shuffle the rest.
		rest := segs[1:]
		for i := len(rest) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			rest[i], rest[j] = rest[j], rest[i]
		}
		s := NewStream()
		if err := s.Push(segs[0].seq, segs[0].data); err != nil {
			return false
		}
		for _, sg := range rest {
			if err := s.Push(sg.seq, sg.data); err != nil {
				return false
			}
		}
		return bytes.Equal(s.Bytes(), truth)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAssemblerRoutesFlows(t *testing.T) {
	a := NewAssembler()
	mk := func(srcPort uint16, seq uint32, payload string) *packet.Packet {
		ip := &packet.IPv4{Src: packet.MustParseIPv4("10.0.0.1"), Dst: packet.MustParseIPv4("10.0.0.2"), Protocol: packet.IPProtoTCP}
		tcp := &packet.TCP{SrcPort: srcPort, DstPort: 9999, Seq: seq}
		tcp.SetNetworkLayerForChecksum(ip)
		data, _ := packet.SerializeToBytes(ip, tcp, packet.Payload(payload))
		return packet.Decode(data, packet.LayerTypeIPv4)
	}
	s1, err := a.Feed(mk(1111, 0, "one-"))
	if err != nil || s1 == nil {
		t.Fatal(err)
	}
	a.Feed(mk(2222, 500, "two-"))
	a.Feed(mk(1111, 4, "more"))
	if string(s1.Bytes()) != "one-more" {
		t.Fatalf("flow 1 stream %q", s1.Bytes())
	}
	if a.Flows() != 2 {
		t.Fatalf("flows %d", a.Flows())
	}
	// Directions are independent streams.
	rev := mk(1111, 0, "x")
	revFlow, _ := packet.FlowOf(rev)
	if a.StreamFor(revFlow.Reverse()) == s1 {
		t.Fatal("directions share a stream")
	}
	a.Release(revFlow)
	if a.Flows() != 2 { // released the (unused) forward key? ensure count sane
		t.Fatalf("flows %d after release", a.Flows())
	}
}

func TestAssemblerIgnoresNonTCP(t *testing.T) {
	a := NewAssembler()
	ip := &packet.IPv4{Src: packet.MustParseIPv4("1.1.1.1"), Dst: packet.MustParseIPv4("2.2.2.2"), Protocol: packet.IPProtoUDP}
	udp := &packet.UDP{SrcPort: 1, DstPort: 2}
	udp.SetNetworkLayerForChecksum(ip)
	data, _ := packet.SerializeToBytes(ip, udp, packet.Payload("x"))
	s, err := a.Feed(packet.Decode(data, packet.LayerTypeIPv4))
	if s != nil || err != nil {
		t.Fatal("UDP fed a stream")
	}
}

func TestAnchorPinsSequence(t *testing.T) {
	s := NewStream()
	s.Anchor(1000)
	// A retransmitted segment starting before the anchor gets trimmed.
	s.Push(996, []byte("XXXXhello"))
	if string(s.Bytes()) != "hello" {
		t.Fatalf("stream %q", s.Bytes())
	}
	// Anchor after start is a no-op.
	s.Anchor(0)
	s.Push(1005, []byte(" world"))
	if string(s.Bytes()) != "hello world" {
		t.Fatalf("stream %q", s.Bytes())
	}
}
