package lint

// The taint dataflow engine behind trustflow. One analysis instance
// walks a function's CFG forward, tracking which values derive from
// untrusted input ("tainted") through a path-keyed abstract state:
//
//	taintKey{root: <*types.Var for lk>, path: ".records"} → bit mask
//
// Bit 0 (taintSource) marks real wire taint; bits 1..62 mark "derives
// from parameter i", which is how call summaries are computed: analyze
// a function once with each parameter carrying its own bit, observe
// which bits reach sinks, sanitizers and returns, and the resulting
// taintSummary lets callers reason about the call without reanalyzing
// the body (the ISSUE's one-level call-summary propagation; summaries
// are computed in two rounds, so summary-of-summary gives two levels).
//
// Joins union masks (may-taint); assignments to a resolvable path are
// strong updates (the old marks on that path and its extensions are
// replaced), writes through an index are weak (the container keeps the
// union). A call whose callee name matches Config.SanitizerRe clears
// the receiver and pointer arguments — Verify/Validate vouch for the
// whole value.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const taintSource uint64 = 1

// paramBit returns the summary bit for parameter i (receiver counts as
// parameter 0 on methods). Functions with more than 62 parameters lose
// precision on the tail; none exist here.
func paramBit(i int) uint64 {
	if i > 61 {
		i = 61
	}
	return 1 << (uint(i) + 1)
}

type taintKey struct {
	root *types.Var
	path string
}

type taintState map[taintKey]uint64

func cloneTaint(st taintState) taintState {
	out := make(taintState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// joinTaint unions two states under the longest-prefix-mark semantics:
// a key present in only one side still has an *effective* value on the
// other (its nearest explicit prefix mark), so absent keys are
// materialized before OR-ing. Values only grow — termination.
func joinTaint(dst, src taintState) (taintState, bool) {
	changed := false
	for k := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = baseTaint(dst, k.root, k.path)
		}
	}
	for k, dv := range dst {
		sv, ok := src[k]
		if !ok {
			sv = baseTaint(src, k.root, k.path)
		}
		if nv := dv | sv; nv != dv {
			dst[k] = nv
			changed = true
		}
	}
	return dst, changed
}

// baseTaint is the value of the longest explicit mark on a prefix of
// path (the mark that governs reads of path absent an exact entry).
func baseTaint(st taintState, root *types.Var, path string) uint64 {
	best := -1
	var v uint64
	for k, kv := range st {
		if k.root != root || !prefixPath(k.path, path) {
			continue
		}
		if len(k.path) > best {
			best, v = len(k.path), kv
		}
	}
	return v
}

// taintSummary is what a caller needs to know about one function.
type taintSummary struct {
	// sanitizes[i]: the body verifies parameter i, so the caller's
	// argument is trusted after the call.
	sanitizes []bool
	// sinkPos[i]/sinkWhat[i]: parameter i reaches a sink or persistent
	// store inside the body without first being sanitized.
	sinkPos  []token.Pos
	sinkWhat []string
	// propagates[i]: parameter i flows into a return value.
	propagates []bool
	// paramOut[i]: the body writes caller-visible data through pointer
	// parameter i (out-param); paramOutSource[i] marks those writes as
	// carrying source taint.
	paramOut       []bool
	paramOutSource []bool
	// sourceRet: the body returns data obtained from a taint source.
	sourceRet bool
}

// taintAnalysis carries one function's run; the maps shared across
// functions (summaries, persistent roots) live on the trustflow driver.
type taintAnalysis struct {
	cfg       *Config
	pkg       *Package
	fset      *token.FileSet
	summaries map[*types.Func]*taintSummary

	params     []*types.Var
	persistent map[*types.Var]bool

	// sum collects the summary during the summary phase; report emits
	// findings during the reporting phase. Exactly one is non-nil.
	sum    *taintSummary
	report func(pos token.Pos, format string, args ...interface{})
}

// analyzeBody runs the engine over one function body. presumeWire
// seeds wire-typed parameters (Config.WireTypes) with real taint —
// used in the reporting phase for exported functions and function
// literals, whose callers the analysis cannot enumerate.
func (a *taintAnalysis) analyzeBody(sig *types.Signature, body *ast.BlockStmt, presumeWire bool) {
	a.params = signatureParams(sig)
	if a.sum != nil {
		n := len(a.params)
		a.sum.sanitizes = make([]bool, n)
		a.sum.sinkPos = make([]token.Pos, n)
		a.sum.sinkWhat = make([]string, n)
		a.sum.propagates = make([]bool, n)
		a.sum.paramOut = make([]bool, n)
		a.sum.paramOutSource = make([]bool, n)
	}
	// The receiver is the state a method persists into; other pointer
	// parameters are out-params owned by the caller (store() treats
	// tainted writes through them as propagation, not sinks).
	a.persistent = map[*types.Var]bool{}
	if r := sig.Recv(); r != nil && escapes(r.Type()) {
		a.persistent[a.params[0]] = true
	}
	a.seedAliases(body)

	init := taintState{}
	for i, p := range a.params {
		mask := paramBit(i)
		// Wire-typed parameters are presumed untrusted — but not the
		// receiver of the wire type's own methods: codec and crypto
		// plumbing (Sign, Verify, wellFormed) operates pre-trust by
		// construction.
		isRecv := i == 0 && sig.Recv() != nil
		if presumeWire && !isRecv && isWireType(a.cfg, p.Type()) {
			mask |= taintSource
		}
		if a.sum != nil || mask&taintSource != 0 {
			init[taintKey{p, ""}] = mask
		}
	}

	g := buildCFG(body)
	in := solveForward(g, init, cloneTaint, joinTaint,
		func(b *cfgBlock, st taintState) taintState {
			for _, n := range b.nodes {
				a.node(st, n, false)
			}
			return st
		})
	// Reporting pass: one visit per reached block with converged facts.
	for _, b := range g.blocks {
		st, ok := in[b]
		if !ok {
			continue
		}
		st = cloneTaint(st)
		for _, n := range b.nodes {
			a.node(st, n, true)
		}
	}
}

// seedAliases marks local variables that alias persistent state, e.g.
// `byPub := lk.records[key]` — a write through byPub mutates lk. Two
// passes catch alias-of-alias.
func (a *taintAnalysis) seedAliases(body *ast.BlockStmt) {
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, _ := a.pkg.Info.Defs[id].(*types.Var)
				if v == nil {
					v, _ = a.pkg.Info.Uses[id].(*types.Var)
				}
				if v == nil || !escapes(v.Type()) {
					continue
				}
				if root, _, ok := a.pathOf(as.Rhs[i]); ok && a.isPersistent(root) {
					a.persistent[v] = true
				}
			}
			return true
		})
	}
}

func (a *taintAnalysis) isPersistent(v *types.Var) bool {
	if v == nil {
		return false
	}
	if a.persistent[v] {
		return true
	}
	// Package-level variables persist by definition.
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// escapes reports whether writing through a value of type t is visible
// outside the function (reference semantics).
func escapes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// node transfers one CFG node. In the solve pass report is false (no
// findings, summary bits only accumulate via sinkHit); the final pass
// re-runs with report=true on converged facts.
func (a *taintAnalysis) node(st taintState, n cfgNode, report bool) {
	if n.Cond != nil {
		a.eval(st, n.Cond, report)
		return
	}
	switch s := n.Stmt.(type) {
	case *ast.AssignStmt:
		a.assign(st, s, report)
	case *ast.ExprStmt:
		a.eval(st, s.X, report)
	case *ast.SendStmt:
		v := a.eval(st, s.Value, report)
		a.eval(st, s.Chan, report)
		if root, path, ok := a.pathOf(s.Chan); ok && v != 0 {
			st[taintKey{root, path}] |= v
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var t uint64
					if len(vs.Values) == len(vs.Names) {
						t = a.eval(st, vs.Values[i], report)
					} else if len(vs.Values) == 1 {
						t = a.eval(st, vs.Values[0], report)
					}
					if v, _ := a.pkg.Info.Defs[name].(*types.Var); v != nil {
						a.store(st, v, "", t, name.Pos(), report)
					}
				}
			}
		}
	case *ast.RangeStmt:
		t := a.eval(st, s.X, report)
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e == nil {
				continue
			}
			if root, path, ok := a.pathOf(e); ok {
				a.store(st, root, path, t, e.Pos(), report)
			}
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			t := a.eval(st, res, report)
			if a.sum == nil || t == 0 {
				continue
			}
			if t&taintSource != 0 {
				a.sum.sourceRet = true
			}
			for i := range a.params {
				if t&paramBit(i) != 0 {
					a.sum.propagates[i] = true
				}
			}
		}
	case *ast.GoStmt:
		a.eval(st, s.Call, report)
	case *ast.DeferStmt:
		a.eval(st, s.Call, report)
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt, nil:
	default:
		// Statements with nested expressions we don't model explicitly:
		// evaluate any calls inside for their side effects.
		if n.Stmt != nil {
			ast.Inspect(n.Stmt, func(x ast.Node) bool {
				if c, ok := x.(*ast.CallExpr); ok {
					a.eval(st, c, report)
					return false
				}
				return true
			})
		}
	}
}

func (a *taintAnalysis) assign(st taintState, s *ast.AssignStmt, report bool) {
	var rhs []uint64
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Tuple: every lhs inherits the call/lookup's taint.
		t := a.eval(st, s.Rhs[0], report)
		for range s.Lhs {
			rhs = append(rhs, t)
		}
	} else {
		for _, r := range s.Rhs {
			rhs = append(rhs, a.eval(st, r, report))
		}
	}
	for i, lhs := range s.Lhs {
		if i >= len(rhs) {
			break
		}
		t := rhs[i]
		if s.Tok.String() != "=" && s.Tok.String() != ":=" {
			// Compound (+=, |=, …): old value contributes.
			t |= a.eval(st, lhs, false)
		}
		root, path, ok := a.pathOf(lhs)
		if !ok {
			continue
		}
		a.store(st, root, path, t, lhs.Pos(), report)
	}
}

// store performs the abstract write, flagging tainted writes into
// persistent state (the "store write" sink class) and recording writes
// through pointer parameters as out-param propagation for summaries.
func (a *taintAnalysis) store(st taintState, root *types.Var, path string, t uint64, pos token.Pos, report bool) {
	indexed := strings.HasSuffix(path, "[]")
	key := taintKey{root, strings.TrimSuffix(path, "[]")}
	if indexed {
		// Weak update: the container keeps its old marks (materialize
		// the inherited base so the new mark doesn't shadow it).
		if t != 0 {
			st[key] = taintOf(st, root, key.path) | t
		}
	} else {
		for k := range st {
			if k.root == root && k.path != key.path && prefixPath(key.path, k.path) {
				delete(st, k)
			}
		}
		// Explicit mark even when clean: a 0 entry shadows a tainted
		// prefix (x.f = cleanValue makes x.f trusted even if x isn't).
		st[key] = t
	}
	if t == 0 {
		return
	}
	if a.isPersistent(root) {
		a.sinkHit(pos, "persistent state", t, report)
		return
	}
	// A tainted write through a non-receiver pointer parameter hands
	// the data back to the caller — propagation, not a sink.
	if a.sum != nil && (path != "" || indexed) && escapes(root.Type()) {
		for j, p := range a.params {
			if p == root {
				a.sum.paramOut[j] = true
				if t&taintSource != 0 {
					a.sum.paramOutSource[j] = true
				}
			}
		}
	}
}

// sinkHit routes a tainted-value-reaches-sink event: real taint becomes
// a finding (reporting phase), parameter bits become summary facts.
func (a *taintAnalysis) sinkHit(pos token.Pos, what string, t uint64, report bool) {
	if a.sum != nil {
		for i := range a.params {
			if t&paramBit(i) != 0 && a.sum.sinkPos[i] == 0 {
				a.sum.sinkPos[i] = pos
				a.sum.sinkWhat[i] = what
			}
		}
	}
	if report && a.report != nil && t&taintSource != 0 {
		a.report(pos, "unverified data flows into %s; verify (signature/Validate) before acting on wire input", what)
	}
}

// pathOf resolves an lvalue-ish expression to (root variable, field
// path). Index expressions append "[]" so store can apply weak updates.
func (a *taintAnalysis) pathOf(e ast.Expr) (*types.Var, string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := a.pkg.Info.Uses[e].(*types.Var)
		if v == nil {
			v, _ = a.pkg.Info.Defs[e].(*types.Var)
		}
		if v == nil {
			return nil, "", false
		}
		return v, "", true
	case *ast.SelectorExpr:
		if sel, ok := a.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			root, path, ok := a.pathOf(e.X)
			if !ok {
				return nil, "", false
			}
			return root, path + "." + e.Sel.Name, true
		}
		return nil, "", false
	case *ast.StarExpr:
		return a.pathOf(e.X)
	case *ast.IndexExpr:
		root, path, ok := a.pathOf(e.X)
		if !ok {
			return nil, "", false
		}
		return root, path + "[]", true
	}
	return nil, "", false
}

// taintOf reads the state for a path: the longest explicit prefix mark
// governs (so a sanitized field shadows its tainted parent), OR-ed
// with marks on any extension (a struct with one tainted field is
// itself suspect when passed whole).
func taintOf(st taintState, root *types.Var, path string) uint64 {
	t := baseTaint(st, root, path)
	for k, v := range st {
		if k.root == root && k.path != path && prefixPath(path, k.path) {
			t |= v
		}
	}
	return t
}

func prefixPath(p, of string) bool {
	if !strings.HasPrefix(of, p) {
		return false
	}
	rest := of[len(p):]
	return rest == "" || rest[0] == '.' || rest[0] == '['
}

// eval computes an expression's taint and applies call side effects.
func (a *taintAnalysis) eval(st taintState, e ast.Expr, report bool) uint64 {
	switch e := ast.Unparen(e).(type) {
	case nil:
		return 0
	case *ast.Ident:
		if v, ok := a.pkg.Info.Uses[e].(*types.Var); ok {
			return taintOf(st, v, "")
		}
		return 0
	case *ast.SelectorExpr:
		if fv := a.fieldVarOf(e); fv != nil {
			if a.cfg.TaintFieldSources[qualifiedField(fv)] {
				return taintSource
			}
		}
		if root, path, ok := a.pathOf(e); ok {
			return taintOf(st, root, path)
		}
		// Package-qualified or method value: no data taint.
		return a.eval(st, e.X, report)
	case *ast.StarExpr:
		return a.eval(st, e.X, report)
	case *ast.UnaryExpr:
		return a.eval(st, e.X, report)
	case *ast.BinaryExpr:
		return a.eval(st, e.X, report) | a.eval(st, e.Y, report)
	case *ast.IndexExpr:
		a.eval(st, e.Index, report)
		return a.eval(st, e.X, report)
	case *ast.SliceExpr:
		return a.eval(st, e.X, report)
	case *ast.TypeAssertExpr:
		return a.eval(st, e.X, report)
	case *ast.CompositeLit:
		var t uint64
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t |= a.eval(st, kv.Value, report)
				continue
			}
			t |= a.eval(st, el, report)
		}
		return t
	case *ast.CallExpr:
		return a.call(st, e, report)
	case *ast.FuncLit:
		// Literals are analyzed as their own functions; see trustflow.
		return 0
	}
	return 0
}

func (a *taintAnalysis) fieldVarOf(sel *ast.SelectorExpr) *types.Var {
	s, ok := a.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// call is the transfer function for calls: configured sources, sinks,
// sanitizers, summaries for module functions, conservative propagation
// for everything else.
func (a *taintAnalysis) call(st taintState, call *ast.CallExpr, report bool) uint64 {
	// Type conversion: T(x) keeps x's taint.
	if tv, ok := a.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return a.eval(st, call.Args[0], report)
		}
		return 0
	}

	fn := calleeOf(a.pkg.Info, call)

	// Receiver (for methods) + arguments, with their taints.
	var argExprs []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isSel := a.pkg.Info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
			argExprs = append(argExprs, sel.X)
		}
	}
	argExprs = append(argExprs, call.Args...)
	argTaints := make([]uint64, len(argExprs))
	var all uint64
	for i, arg := range argExprs {
		argTaints[i] = a.eval(st, arg, report)
		all |= argTaints[i]
	}

	if fn == nil {
		// Function values, builtins (append, copy, len…): propagate.
		return all
	}
	qn := qualifiedName(fn)

	// Stdlib JSON decoding moves taint from the data to the target.
	if qn == "encoding/json.Unmarshal" && len(call.Args) == 2 {
		if root, path, ok := a.pathOf(call.Args[1]); ok && argTaints[len(argTaints)-2] != 0 {
			st[taintKey{root, strings.TrimSuffix(path, "[]")}] |= argTaints[len(argTaints)-2]
		}
		return 0
	}

	if a.cfg.TaintSources[qn] {
		return taintSource
	}

	if a.cfg.TaintSinks[qn] {
		for i, t := range argTaints {
			if t != 0 {
				a.sinkHit(argExprs[i].Pos(), fmt.Sprintf("sink %s", fn.Name()), t, report)
			}
		}
		return 0
	}

	sum := a.summaries[fn]

	// Sanitizers vouch for their receiver and pointer arguments.
	sanitizer := inProject(a.cfg, fn) && a.cfg.sanitizerRe().MatchString(fn.Name())
	if sanitizer || sum != nil {
		for i, arg := range argExprs {
			clear := sanitizer
			if sum != nil && i < len(sum.sanitizes) && sum.sanitizes[i] {
				clear = true
			}
			if !clear {
				continue
			}
			if root, path, ok := a.pathOf(arg); ok {
				a.clearPath(st, root, strings.TrimSuffix(path, "[]"))
			}
			argTaints[i] = 0
			if a.sum != nil {
				// Record transitively: sanitizing our own parameter
				// makes this function a sanitizer for it too.
				if root, path, ok := a.pathOf(arg); ok && path == "" {
					for j, p := range a.params {
						if p == root {
							a.sum.sanitizes[j] = true
						}
					}
				}
			}
		}
	}
	if sanitizer {
		return 0
	}

	if sum != nil {
		var ret, all uint64
		for i, t := range argTaints {
			all |= t
			if t == 0 || i >= len(sum.sinkPos) {
				if i < len(sum.propagates) && sum.propagates[i] {
					ret |= t
				}
				continue
			}
			if sum.sinkPos[i] != 0 {
				a.sinkHit(argExprs[i].Pos(), fmt.Sprintf("%s, which writes it to %s at %s", fn.Name(), sum.sinkWhat[i], a.fset.Position(sum.sinkPos[i])), t, report)
			}
			if sum.propagates[i] {
				ret |= t
			}
		}
		// Out-params: the callee writes caller-visible data through
		// these; taint them with what flowed in (plus source taint if
		// the callee writes wire data it obtained itself).
		for i, arg := range argExprs {
			if i >= len(sum.paramOut) || !sum.paramOut[i] {
				continue
			}
			add := all
			if sum.paramOutSource[i] {
				add |= taintSource
			}
			if add == 0 {
				continue
			}
			if root, path, ok := a.pathOf(arg); ok {
				p := strings.TrimSuffix(path, "[]")
				st[taintKey{root, p}] = taintOf(st, root, p) | add
			}
		}
		if sum.sourceRet {
			ret |= taintSource
		}
		return ret
	}

	// Unknown callee: conservative propagation, no side effects.
	return all
}

func (a *taintAnalysis) clearPath(st taintState, root *types.Var, path string) {
	for k := range st {
		if k.root == root && k.path != path && prefixPath(path, k.path) {
			delete(st, k)
		}
	}
	// Explicit clean mark: shadows any tainted prefix.
	st[taintKey{root, path}] = 0
}

// signatureParams returns receiver + parameters as declared variables.
func signatureParams(sig *types.Signature) []*types.Var {
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// calleeOf resolves a call's static target like Pass.calleeFunc but
// without a Pass.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			f, _ := s.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	}
	return nil
}

// qualifiedName names a function for the Config lists:
// "pkg/path.Func" or "pkg/path.Type.Method" (pointer stripped).
func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + "." + n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// qualifiedField names a struct field "pkg/path.Type.Field" for
// Config.TaintFieldSources. Fields of unnamed structs come back
// unqualified and never match.
func qualifiedField(f *types.Var) string {
	if f.Pkg() == nil {
		return f.Name()
	}
	return f.Pkg().Path() + "." + fieldOwner(f) + f.Name()
}

// fieldOwner finds the named type declaring f, as "Type." (best
// effort: scans the package scope).
func fieldOwner(f *types.Var) string {
	scope := f.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return name + "."
			}
		}
	}
	return ""
}

// isWireType reports whether t is (a pointer/slice/array of) a
// configured wire type — data that crossed a trust boundary.
func isWireType(cfg *Config, t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Named:
			if u.Obj().Pkg() == nil {
				return false
			}
			return cfg.WireTypes[u.Obj().Pkg().Path()+"."+u.Obj().Name()]
		default:
			return false
		}
	}
}
