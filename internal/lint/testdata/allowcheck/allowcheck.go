// Package allowcheck is pvnlint testdata for suppression hygiene: a
// reasonless //lint:allow must not suppress anything and is itself a
// finding (asserted programmatically in TestMalformedAllow, not via
// want comments, since the annotation occupies the line's comment).
package allowcheck

import "time"

func Bad() time.Time {
	return time.Now() //lint:allow nondet
}

func AboveLine() time.Time {
	//lint:allow nondet comment-above form with a reason works too
	return time.Now()
}
