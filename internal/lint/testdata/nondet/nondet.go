// Package nondet is pvnlint golden testdata: wall-clock and global-RNG
// leaks in a package configured as simulation-deterministic.
package nondet

import (
	"math/rand"
	"time"
)

func Elapsed() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(start)     // want `time\.Since reads the wall clock`
}

func Wait(d time.Duration) <-chan time.Time {
	return time.After(d) // want `time\.After reads the wall clock`
}

// NowFunc leaks the wall clock as a value, not a call — still flagged.
var NowFunc = time.Now // want `time\.Now reads the wall clock`

func Jitter() time.Duration {
	return time.Duration(rand.Int63n(1000)) // want `math/rand\.Int63n uses the global generator`
}

func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle uses the global generator`
}

// Seeded uses a locally-seeded generator: the project idiom, not flagged.
func Seeded() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

// Stamp is a deliberate exception with a reason: suppressed, not reported.
func Stamp() time.Time {
	return time.Now() //lint:allow nondet golden-file: annotated sites must not be reported
}

// DurationsOnly uses time's types and constants, which are fine.
func DurationsOnly(d time.Duration) time.Duration {
	return d + time.Millisecond
}
