// Package lockorder is pvnlint golden testdata: a two-mutex
// acquisition cycle, locks held across blocking operations, and
// cond.Wait outside its predicate loop.
package lockorder

import "sync"

// S owns two mutexes acquired in opposite orders by two methods, a
// channel, and a condition variable.
type S struct {
	a    sync.Mutex
	b    sync.Mutex
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
	ok   bool
}

// LockAB establishes the a → b order.
func (s *S) LockAB() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	defer s.b.Unlock()
}

// LockBA inverts it: the b → a edge closes the cycle.
func (s *S) LockBA() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock() // want `lock order cycle: lockorder\.S\.a → lockorder\.S\.b → lockorder\.S\.a`
	defer s.a.Unlock()
}

// SendLocked blocks on a channel send while holding mu: anything that
// must take mu to drain the channel deadlocks against it.
func (s *S) SendLocked(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `lockorder\.S\.mu held across blocking channel send`
}

// SendUnlocked releases before the send: clean.
func (s *S) SendUnlocked(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// RecvLocked blocks on a receive while holding mu via an unexported
// helper — the blocking op is found transitively.
func (s *S) RecvLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recv() // want `lockorder\.S\.mu held across blocking call to recv, which may block on channel receive`
}

func (s *S) recv() int { return <-s.ch }

// WaitNoLoop wakes once and assumes the predicate holds: a spurious
// wakeup proceeds on a false predicate.
func (s *S) WaitNoLoop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cond.Wait() // want `cond\.Wait outside a for loop`
}

// WaitLoop re-checks the predicate after every wakeup: the canonical
// idiom, clean.
func (s *S) WaitLoop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.ok {
		s.cond.Wait()
	}
}
