// Package errdrop is pvnlint golden testdata: lifecycle API calls
// whose error results vanish.
package errdrop

type Conn struct{}

func (Conn) Process(data []byte) (int, error) { return len(data), nil }
func (Conn) Teardown() error                  { return nil }
func (Conn) Deploy() error                    { return nil }
func (Conn) ExportState() ([]byte, error)     { return nil, nil }
func (Conn) ImportState(b []byte) error       { return nil }
func (Conn) Close()                           {}

func Use(c Conn) error {
	c.Process(nil)     // want `Process's error result is dropped`
	c.Teardown()       // want `Teardown's error result is dropped`
	go c.Deploy()      // want `Deploy's error result is dropped in a go statement`
	defer c.Teardown() // want `Teardown's error result is dropped in a defer`
	c.ExportState()    // want `ExportState's error result is dropped`

	// The explicit opt-out: blank assignment is visible to review.
	_ = c.ImportState(nil)
	_, _ = c.ExportState()

	// Handled: fine.
	if err := c.Deploy(); err != nil {
		return err
	}
	// No error in the signature: fine.
	c.Close()
	return c.Teardown()
}
