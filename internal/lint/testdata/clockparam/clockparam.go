// Package clockparam is pvnlint golden testdata: exported functions in
// a simulation-deterministic package constructing their own tickers and
// timers instead of accepting a clock.
package clockparam

import "time"

func PollLoop(interval time.Duration) *time.Ticker {
	return time.NewTicker(interval) // want `exported PollLoop constructs time\.NewTicker`
}

func Deadline(d time.Duration) *time.Timer {
	return time.NewTimer(d) // want `exported Deadline constructs time\.NewTimer`
}

func Cadence(d time.Duration) <-chan time.Time {
	return time.Tick(d) // want `exported Cadence constructs time\.Tick`
}

type Prober struct{}

func (Prober) Run(d time.Duration) *time.Ticker {
	return time.NewTicker(d) // want `exported Run constructs time\.NewTicker`
}

// internalTick is unexported: clockparam polices exported API shape
// only (nondet owns blanket package rules).
func internalTick(d time.Duration) *time.Ticker {
	return time.NewTicker(d)
}

// TakesClock shows the contract-conforming shape: cadence comes from
// the caller, so netsim can schedule it.
func TakesClock(now func() time.Duration, every time.Duration) time.Duration {
	return now() + every
}
