// Package goleak is pvnlint golden testdata: goroutines launched with
// and without a reachable stop path.
package goleak

import "time"

// Worker owns a background loop and its shutdown plumbing.
type Worker struct {
	jobs chan func()
	quit chan struct{}
}

func step() {}

// SpinForever launches a goroutine nothing can stop.
func SpinForever() {
	go func() { // want `goroutine loops forever with no reachable stop path`
		for {
			step()
		}
	}()
}

// TickForever ranges over time.Tick, whose channel never closes.
func TickForever(d time.Duration) {
	go func() { // want `goroutine ranges over time\.Tick, which can never be stopped`
		for range time.Tick(d) {
			step()
		}
	}()
}

// Run launches a named stopless loop: resolved one level deep through
// the module function index and reported at the go statement.
func (w *Worker) Run() {
	go w.loop() // want `goroutine loops forever with no reachable stop path`
}

func (w *Worker) loop() {
	for {
		step()
	}
}

// RunStoppable drains jobs until quit signals: clean.
func (w *Worker) RunStoppable() {
	go func() {
		for {
			select {
			case j := <-w.jobs:
				j()
			case <-w.quit:
				return
			}
		}
	}()
}

// RangeOverClosable ends when the producer closes the channel: clean.
func RangeOverClosable(ch chan int) {
	go func() {
		for range ch {
			step()
		}
	}()
}

// TickStoppable uses time.NewTicker plus a stop channel: clean.
func TickStoppable(d time.Duration, stop chan struct{}) {
	go func() {
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				step()
			case <-stop:
				return
			}
		}
	}()
}
