// Package trustflow is pvnlint golden testdata: wire-decoded data
// reaching deploy/install/store sinks with and without a Verify
// sanitizer on the path.
package trustflow

import "errors"

// Record is a wire type (Config.WireTypes): presumed tainted when it
// arrives as a parameter of an exported function.
type Record struct {
	Body []byte
	Sig  []byte
}

// Verify is the sanitizer: after it succeeds the record is trusted.
func (r *Record) Verify() error {
	if len(r.Sig) == 0 {
		return errors.New("unsigned")
	}
	return nil
}

// Msg is the decoded form of a wire message.
type Msg struct {
	Rule string
	Sig  []byte
}

// Verify vouches for a decoded message.
func (m *Msg) Verify() error {
	if len(m.Sig) == 0 {
		return errors.New("unsigned")
	}
	return nil
}

// DecodeMsg is a taint source (Config.TaintSources).
func DecodeMsg(b []byte) (*Msg, error) {
	if len(b) == 0 {
		return nil, errors.New("empty")
	}
	return &Msg{Rule: string(b)}, nil
}

// Deploy is a sink (Config.TaintSinks).
func Deploy(rule string) { _ = rule }

// Table is a rule table; Install is a sink (Config.TaintSinks).
type Table struct{ rules []string }

func (t *Table) Install(rule string) { t.rules = append(t.rules, rule) }

// add stores into the receiver without being a configured sink;
// summaries carry the store site to every caller.
func (t *Table) add(rule string) {
	t.rules = append(t.rules, rule)
}

// defaultRules is package-level state: stores into it are sinks.
var defaultRules []string

// BadDeploy ships a decoded message straight to the deploy sink.
func BadDeploy(b []byte) {
	m, err := DecodeMsg(b)
	if err != nil {
		return
	}
	Deploy(m.Rule) // want `unverified data flows into sink Deploy`
}

// GoodDeploy verifies the decoded message first: clean.
func GoodDeploy(b []byte) {
	m, err := DecodeMsg(b)
	if err != nil {
		return
	}
	if err := m.Verify(); err != nil {
		return
	}
	Deploy(m.Rule)
}

// BadInstall acts on a wire record without verifying it.
func BadInstall(t *Table, r *Record) {
	t.Install(string(r.Body)) // want `unverified data flows into sink Install`
}

// GoodInstall verifies before the sink: clean.
func GoodInstall(t *Table, r *Record) {
	if err := r.Verify(); err != nil {
		return
	}
	t.Install(string(r.Body))
}

// Absorb hands unverified wire data to a helper whose summary says it
// persists its argument; reported here, naming the store site.
func (t *Table) Absorb(r *Record) {
	t.add(string(r.Body)) // want `unverified data flows into add, which writes it to persistent state`
}

// BadGlobal persists wire data into package-level state directly.
func BadGlobal(r *Record) {
	defaultRules = append(defaultRules, string(r.Body)) // want `unverified data flows into persistent state`
}

// GoodGlobal verifies first: clean.
func GoodGlobal(r *Record) {
	if err := r.Verify(); err != nil {
		return
	}
	defaultRules = append(defaultRules, string(r.Body))
}
