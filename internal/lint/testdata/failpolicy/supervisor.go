package failpolicy

// The supervisor file owns the recover() side of the panic contract and
// is exempt from the panic rule.

func runIsolated(f func()) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	f()
	return false
}

func crashForTest() {
	panic("supervisor-owned panic: exempt")
}
