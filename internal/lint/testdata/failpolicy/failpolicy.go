// Package failpolicy is pvnlint golden testdata: security Spec
// registrations without an explicit FailPolicy, and panics outside the
// supervisor file.
package failpolicy

import "failpolicy/middlebox"

var specs = []*middlebox.Spec{
	{ // want `middlebox Spec "tls-verify" has Security: true but no explicit FailPolicy`
		Type:     "tls-verify",
		Security: true,
	},
	{
		Type:       "pii-detect",
		Security:   true,
		FailPolicy: middlebox.FailClosed, // explicit: fine
	},
	{
		Type: "compressor", // not a security box: fine
	},
}

func Register(spec middlebox.Spec) {}

func RegisterAll() {
	Register(middlebox.Spec{Type: "dns-validate", Security: true}) // want `middlebox Spec "dns-validate" has Security: true but no explicit FailPolicy`
	Register(middlebox.Spec{Type: "malware-scan", Security: true,
		FailPolicy: middlebox.FailOpen}) // explicit (if debatable): fine
}

func Validate(b middlebox.Box) {
	if b == nil {
		panic("nil box") // want `panic in middlebox code outside the supervisor`
	}
}

func MustBuild(spec *middlebox.Spec) middlebox.Box {
	b, err := spec.New(nil)
	if err != nil {
		panic(err) // want `panic in middlebox code outside the supervisor`
	}
	return b
}
