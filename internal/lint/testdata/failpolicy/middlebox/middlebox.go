// Package middlebox is a minimal stub of the real registry types: the
// failpolicy analyzer matches Spec structurally (a struct named Spec in
// a package named middlebox), so the golden test needs no dependency on
// the real runtime.
package middlebox

type FailPolicy uint8

const (
	PolicyDefault FailPolicy = iota
	FailOpen
	FailClosed
)

type Box interface{ Name() string }

type Spec struct {
	Type       string
	New        func(cfg map[string]string) (Box, error)
	FailPolicy FailPolicy
	Security   bool
}
