// Package unlockedfield is pvnlint golden testdata: the mixed
// atomic/plain field-access race (the tunnel Table.Wrap / pvnd srvMu
// bug class).
package unlockedfield

import "sync/atomic"

type Counter struct {
	hits  int64
	bytes int64
	name  string
}

func (c *Counter) Record(n int64) {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64((*int64)(&c.bytes), n) // conversion-wrapped: still an atomic use
}

func (c *Counter) Snapshot() (int64, int64) {
	return c.hits, atomic.LoadInt64(&c.bytes) // want `field Counter\.hits is updated with sync/atomic`
}

func (c *Counter) Reset() {
	c.bytes = 0 // want `field Counter\.bytes is updated with sync/atomic`
	c.name = "" // plain-only field: fine
}

// Label never mixes: plain everywhere, fine.
func (c *Counter) Label() string { return c.name }

// typed atomics carry their discipline in the type system and are not
// the analyzer's business.
type Typed struct {
	n atomic.Int64
}

func (t *Typed) Bump() int64 {
	t.n.Add(1)
	return t.n.Load()
}
