package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnlockedFieldAnalyzer (check "unlockedfield") is a heuristic for the
// mixed-access race this codebase has now shipped twice (tunnel
// Table.Wrap's Sent/Bytes maps, pvnd's srvMu-free Server counters): a
// struct field that one site updates through sync/atomic and another
// site reads or writes as a plain variable. Plain access next to
// atomic access is a data race the race detector only catches if a
// test happens to exercise both paths concurrently; the shape is
// mechanically detectable, so detect it mechanically.
//
// Per-package analysis: it collects every field passed by address into
// a sync/atomic call (including through conversions like
// (*int64)(&s.f)), then flags every other selector access to the same
// field that is not itself inside an atomic call.
var UnlockedFieldAnalyzer = &Analyzer{
	Name: "unlockedfield",
	Doc:  "struct field accessed via sync/atomic in one place and by plain read/write in another",
	Run:  runUnlockedField,
}

func runUnlockedField(pass *Pass) {
	// Pass 1: fields used atomically, and the selector nodes blessed by
	// appearing under &... inside an atomic call argument.
	atomicAt := map[*types.Var]token.Position{} // field -> first atomic site
	blessed := map[*ast.SelectorExpr]bool{}
	pass.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name, _, ok := pass.pkgRef(sel)
		if !ok || path != "sync/atomic" || !isAtomicOp(name) {
			return true
		}
		for _, arg := range call.Args {
			fsel := addrOfField(arg)
			if fsel == nil {
				continue
			}
			field := pass.fieldOf(fsel)
			if field == nil {
				continue
			}
			blessed[fsel] = true
			if _, seen := atomicAt[field]; !seen {
				atomicAt[field] = pass.Pkg.Fset.Position(fsel.Pos())
			}
		}
		return true
	})
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: every other selector touching one of those fields.
	pass.inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || blessed[sel] {
			return true
		}
		field := pass.fieldOf(sel)
		if field == nil {
			return true
		}
		if at, ok := atomicAt[field]; ok {
			pass.Reportf(sel.Pos(), "field %s is updated with sync/atomic at %s:%d but accessed directly here; use atomic.Load/Store (or guard both sides with one mutex)",
				fieldDesc(pass, sel, field), shortPath(at.Filename), at.Line)
		}
		return true
	})
}

// isAtomicOp matches sync/atomic's function-style API (the typed
// atomic.Int64 etc. need no pairing discipline and are ignored).
func isAtomicOp(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// addrOfField unwraps conversions and returns the field selector under
// a &x.f argument, or nil: handles &s.f, (*int64)(&s.f), and
// (*int64)(unsafe-free chains of single-argument conversions).
func addrOfField(e ast.Expr) *ast.SelectorExpr {
	for {
		e = ast.Unparen(e)
		switch v := e.(type) {
		case *ast.CallExpr: // conversion wrapper
			if len(v.Args) != 1 {
				return nil
			}
			e = v.Args[0]
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil
			}
			sel, _ := ast.Unparen(v.X).(*ast.SelectorExpr)
			return sel
		default:
			return nil
		}
	}
}

// fieldDesc renders "Type.Field" from the selection's receiver type.
func fieldDesc(pass *Pass, sel *ast.SelectorExpr, v *types.Var) string {
	if s, ok := pass.Pkg.Info.Selections[sel]; ok {
		t := s.Recv()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + v.Name()
		}
	}
	return v.Name()
}

// shortPath trims a position filename to its last two path elements.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}
