package lint

// The golden harness: each analyzer runs over its testdata mini-module
// and every diagnostic must line up with a trailing `// want `+"`regex`"
// comment on the same source line — missing and unexpected findings
// both fail, so the goldens pin messages and positions, not just
// counts.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile("// want `([^`]+)`")

// testConfig scopes every rule to the testdata module so the analyzers
// fire inside it exactly as they do inside the real tree.
func testConfig(module string) *Config {
	return &Config{
		DeterministicPkgs: map[string]bool{module: true},
		MiddleboxPkgs:     map[string]bool{module: true},
		SupervisorFiles:   map[string]bool{"supervisor.go": true},
		ProjectPrefix:     module,
		// Taint scoping for the trustflow mini-module: the module-local
		// decoder, sinks and wire type play the roles the real config
		// gives to overlay records and deploy/install entry points.
		TaintPkgs: map[string]bool{module: true},
		TaintSources: map[string]bool{
			module + ".DecodeMsg": true,
		},
		TaintSinks: map[string]bool{
			module + ".Deploy":        true,
			module + ".Table.Install": true,
		},
		WireTypes: map[string]bool{
			module + ".Record": true,
		},
	}
}

// loadTestdata loads testdata/<name> as its own module named <name>.
func loadTestdata(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", name), name, "./...")
	if err != nil {
		t.Fatalf("load testdata/%s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages in testdata/%s", name)
	}
	return pkgs
}

// runGolden checks one analyzer's diagnostics against the want comments.
func runGolden(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	pkgs := loadTestdata(t, name)
	diags := Run(testConfig(name), pkgs, []*Analyzer{a})

	type wantKey struct {
		file string
		line int
	}
	wants := map[wantKey][]*regexp.Regexp{}
	matched := map[wantKey][]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					k := wantKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
					matched[k] = append(matched[k], false)
				}
			}
		}
	}

	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		found := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: no diagnostic matched want `%s`", shortPath(k.file), k.line, re)
			}
		}
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, d.String())
		}
		t.Logf("all diagnostics:\n%s", strings.Join(all, "\n"))
	}
}

func TestNondetGolden(t *testing.T)        { runGolden(t, "nondet", NondetAnalyzer) }
func TestClockParamGolden(t *testing.T)    { runGolden(t, "clockparam", ClockParamAnalyzer) }
func TestFailPolicyGolden(t *testing.T)    { runGolden(t, "failpolicy", FailPolicyAnalyzer) }
func TestUnlockedFieldGolden(t *testing.T) { runGolden(t, "unlockedfield", UnlockedFieldAnalyzer) }
func TestErrDropGolden(t *testing.T)       { runGolden(t, "errdrop", ErrDropAnalyzer) }
func TestTrustFlowGolden(t *testing.T)     { runGolden(t, "trustflow", TrustFlowAnalyzer) }
func TestLockOrderGolden(t *testing.T)     { runGolden(t, "lockorder", LockOrderAnalyzer) }
func TestGoLeakGolden(t *testing.T)        { runGolden(t, "goleak", GoLeakAnalyzer) }

// TestMalformedAllow: a reasonless //lint:allow suppresses nothing and
// is itself reported; the comment-above form with a reason suppresses.
func TestMalformedAllow(t *testing.T) {
	pkgs := loadTestdata(t, "allowcheck")
	diags := Run(testConfig("allowcheck"), pkgs, []*Analyzer{NondetAnalyzer})
	var gotLint, gotNondet int
	for _, d := range diags {
		switch d.Check {
		case "lint":
			gotLint++
			if !strings.Contains(d.Message, "no reason") {
				t.Errorf("malformed-allow message = %q", d.Message)
			}
		case "nondet":
			gotNondet++
		}
	}
	if gotLint != 1 || gotNondet != 1 {
		var all []string
		for _, d := range diags {
			all = append(all, d.String())
		}
		t.Fatalf("want 1 lint + 1 nondet diagnostic, got %d + %d:\n%s",
			gotLint, gotNondet, strings.Join(all, "\n"))
	}
}

// TestCollectAllows: the audit list sees well-formed annotations with
// their reasons and skips malformed ones.
func TestCollectAllows(t *testing.T) {
	pkgs := loadTestdata(t, "allowcheck")
	allows := CollectAllows(pkgs)
	if len(allows) != 1 {
		t.Fatalf("want 1 allow, got %d: %v", len(allows), allows)
	}
	if allows[0].Check != "nondet" || !strings.Contains(allows[0].Reason, "comment-above") {
		t.Fatalf("allow = %+v", allows[0])
	}
}

// TestDiagnosticOrder: Run returns findings position-sorted so output
// and golden comparisons are stable.
func TestDiagnosticOrder(t *testing.T) {
	pkgs := loadTestdata(t, "nondet")
	diags := Run(testConfig("nondet"), pkgs, []*Analyzer{NondetAnalyzer})
	if len(diags) < 2 {
		t.Fatalf("want several diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("unsorted: %s before %s", a, b)
		}
	}
	// And the String form is the file:line:col: [check] message shape
	// the driver prints.
	if want := fmt.Sprintf("[%s]", "nondet"); !strings.Contains(diags[0].String(), want) {
		t.Fatalf("diagnostic string %q missing %q", diags[0].String(), want)
	}
}
