// Package lint is pvnlint's engine: a stdlib-only static-analysis
// driver (go/parser + go/types, no external modules) that enforces the
// project contracts code review alone has already missed twice —
// netsim simulated-clock determinism, fail-closed security middleboxes,
// the Synchronized concurrency rules, and error discipline on the
// deploy lifecycle APIs.
//
// The model mirrors golang.org/x/tools/go/analysis in miniature: an
// Analyzer inspects one type-checked Package through a Pass and reports
// Diagnostics. The driver filters diagnostics through `//lint:allow`
// suppression comments so every deliberate exception carries an
// auditable reason in the source:
//
//	deadline := time.Now().Add(wait) //lint:allow nondet real socket deadline
//
// An annotation covers findings of the named check on its own line or
// on the line directly below it (comment-above style). The reason is
// mandatory; a bare `//lint:allow nondet` is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Package is one type-checked package as the loader produced it.
type Package struct {
	// Path is the import path ("pvn/internal/netsim").
	Path string
	// Dir is the directory the files came from.
	Dir string
	// Name is the package name.
	Name string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by filename.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one named check. Per-package checks implement Run;
// whole-module checks (cross-package call graphs, the lock acquisition
// graph) implement RunModule instead and see every package at once.
type Analyzer struct {
	Name string
	// Doc is the one-line rule statement (pvnlint -list prints it).
	Doc string
	Run func(*Pass)
	// RunModule, if set, runs once over all loaded packages.
	RunModule func(*ModulePass)
}

// Pass carries one (analyzer, package) run and collects its findings.
type Pass struct {
	Check  string
	Config *Config
	Pkg    *Package
	diags  []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.Check,
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one module-level analyzer run over all packages.
type ModulePass struct {
	Check  string
	Config *Config
	Pkgs   []*Package

	fnOnce sync.Once
	fns    map[*types.Func]*FuncDecl
	diags  []Diagnostic
}

// FuncDecl pairs a declared function with the package it lives in —
// the module-wide function index for cross-package analyzers.
type FuncDecl struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// Fset returns the FileSet shared by all loaded packages.
func (p *ModulePass) Fset() *token.FileSet {
	if len(p.Pkgs) == 0 {
		return token.NewFileSet()
	}
	return p.Pkgs[0].Fset
}

// Funcs lazily builds the module-wide function index. The loader
// shares one type universe across a Load call, so *types.Func identity
// holds across packages.
func (p *ModulePass) Funcs() map[*types.Func]*FuncDecl {
	p.fnOnce.Do(func() {
		p.fns = map[*types.Func]*FuncDecl{}
		for _, pkg := range p.Pkgs {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						p.fns[fn] = &FuncDecl{Pkg: pkg, Decl: fd}
					}
				}
			}
		}
	})
	return p.fns
}

// Reportf records a finding positioned in pkg's file set.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Check:   p.Check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Config scopes the project-specific rules. The zero value disables the
// scoped analyzers; DefaultConfig returns the pvn repo contract.
type Config struct {
	// DeterministicPkgs are import paths where all time must flow from
	// the netsim clock and all randomness from a seeded RNG (checks:
	// nondet, clockparam).
	DeterministicPkgs map[string]bool
	// MiddleboxPkgs are import paths subject to failpolicy's panic rule
	// (panics belong to the supervisor, not to boxes).
	MiddleboxPkgs map[string]bool
	// SupervisorFiles are file basenames exempt from the panic rule —
	// the recover() side of the contract lives there.
	SupervisorFiles map[string]bool
	// ProjectPrefix is the module path; errdrop only polices methods
	// defined in packages under it.
	ProjectPrefix string

	// TaintPkgs are import paths analyzed by trustflow — the packages
	// that handle data from the wire, overlay replicas or providers.
	TaintPkgs map[string]bool
	// TaintSources are fully qualified functions ("pkg/path.Func" or
	// "pkg/path.Type.Method") whose results are untrusted.
	TaintSources map[string]bool
	// TaintFieldSources are struct fields ("pkg/path.Type.Field")
	// whose reads yield untrusted data (e.g. netsim message payloads).
	TaintFieldSources map[string]bool
	// TaintSinks are functions that must never receive tainted
	// arguments: deploy, install, rule-table mutation, compiles.
	TaintSinks map[string]bool
	// WireTypes are named types presumed tainted when they arrive as
	// parameters of exported functions or function literals.
	WireTypes map[string]bool
	// SanitizerPattern matches project function names that vouch for
	// their receiver/arguments (default `(?i)^(verify|valid)`, which
	// covers Verify*, Validate*, and the unexported valid/validate
	// helpers).
	SanitizerPattern string

	sanOnce sync.Once
	sanRe   *regexp.Regexp
}

// sanitizerRe compiles SanitizerPattern once (safe under the parallel
// driver).
func (c *Config) sanitizerRe() *regexp.Regexp {
	c.sanOnce.Do(func() {
		pat := c.SanitizerPattern
		if pat == "" {
			pat = `(?i)^(verify|valid)`
		}
		c.sanRe = regexp.MustCompile(pat)
	})
	return c.sanRe
}

// DefaultConfig is the contract for this repository: the packages whose
// experiment tables, state machines and invoices must be bit-stable
// given a seed, per DESIGN.md §11.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: map[string]bool{
			"pvn/internal/experiments":   true,
			"pvn/internal/netsim":        true,
			"pvn/internal/discovery":     true,
			"pvn/internal/tunnel":        true,
			"pvn/internal/middlebox":     true,
			"pvn/internal/middlebox/mbx": true,
			"pvn/internal/core":          true,
			"pvn/internal/deployserver":  true,
			"pvn/internal/dataplane":     true,
			"pvn/internal/overlay":       true,
			"pvn/internal/scenario":      true,
			"pvn/internal/orchestrator":  true,
		},
		MiddleboxPkgs: map[string]bool{
			"pvn/internal/middlebox":     true,
			"pvn/internal/middlebox/mbx": true,
		},
		SupervisorFiles: map[string]bool{"supervisor.go": true},
		ProjectPrefix:   "pvn",
		TaintPkgs: map[string]bool{
			"pvn/internal/overlay":       true,
			"pvn/internal/discovery":     true,
			"pvn/internal/deployserver":  true,
			"pvn/internal/orchestrator":  true,
			"pvn/internal/store":         true,
			"pvn/internal/pvnc":          true,
			"pvn/internal/sdncontroller": true,
		},
		TaintSources: map[string]bool{
			"pvn/internal/overlay.DecodeEnvelope": true,
			"pvn/internal/store.DecodeModule":     true,
			"pvn/internal/pvnc.Parse":             true,
			"pvn/internal/openflow.ReadMessage":   true,
			"pvn/internal/pki.DecodeCertificate":  true,
			"pvn/internal/pki.DecodeChain":        true,
		},
		TaintFieldSources: map[string]bool{
			// FaultInjector-delivered control traffic arrives here.
			"pvn/internal/netsim.Message.Payload": true,
		},
		TaintSinks: map[string]bool{
			"pvn/internal/openflow.FlowMod.Apply":           true,
			"pvn/internal/openflow.FlowTable.Install":       true,
			"pvn/internal/openflow.Switch.AddMeter":         true,
			"pvn/internal/dataplane.ShardedTable.Install":   true,
			"pvn/internal/pvnc.Compile":                     true,
			"pvn/internal/pvnc.TemplateCache.CompileShared": true,
			"pvn/internal/middlebox.Runtime.Instantiate":    true,
			"pvn/internal/middlebox.Runtime.BuildChainIn":   true,
			"pvn/internal/deployserver.Server.HandleDeploy": true,
		},
		WireTypes: map[string]bool{
			"pvn/internal/overlay.Record":   true,
			"pvn/internal/overlay.Envelope": true,
		},
	}
}

// Analyzers returns every registered check, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondetAnalyzer,
		ClockParamAnalyzer,
		FailPolicyAnalyzer,
		UnlockedFieldAnalyzer,
		ErrDropAnalyzer,
		TrustFlowAnalyzer,
		LockOrderAnalyzer,
		GoLeakAnalyzer,
	}
}

// Run executes the analyzers over the packages, applies `//lint:allow`
// suppressions, and returns the surviving diagnostics sorted by
// position. Malformed annotations surface as "lint" diagnostics.
//
// Per-package passes run concurrently (one worker per CPU); module
// analyzers run concurrently with each other after the allow set is
// collected. Suppressions are filtered against the global set — keys
// are (file, line, check), so cross-package module findings suppress
// exactly like package ones.
func Run(cfg *Config, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	allows := allowSet{}
	for _, pkg := range pkgs {
		set, bad := suppressions(pkg)
		diags = append(diags, bad...)
		for k := range set {
			allows[k] = true
		}
	}

	var mu sync.Mutex
	keep := func(found []Diagnostic) {
		mu.Lock()
		defer mu.Unlock()
		for _, d := range found {
			if !allows.covers(d) {
				diags = append(diags, d)
			}
		}
	}

	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, pkg := range pkgs {
		wg.Add(1)
		go func(pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for _, a := range analyzers {
				if a.Run == nil {
					continue
				}
				pass := &Pass{Check: a.Name, Config: cfg, Pkg: pkg}
				a.Run(pass)
				keep(pass.diags)
			}
		}(pkg)
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		wg.Add(1)
		go func(a *Analyzer) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mp := &ModulePass{Check: a.Name, Config: cfg, Pkgs: pkgs}
			a.RunModule(mp)
			keep(mp.diags)
		}(a)
	}
	wg.Wait()

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// allowKey identifies one suppressed (file, line, check).
type allowKey struct {
	file  string
	line  int
	check string
}

type allowSet map[allowKey]bool

// covers reports whether d is suppressed by an annotation on its own
// line or the line above it.
func (s allowSet) covers(d Diagnostic) bool {
	return s[allowKey{d.Pos.Filename, d.Pos.Line, d.Check}] ||
		s[allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Check}]
}

var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+(\S+)(\s+(.*))?$`)

// suppressions scans a package's comments for //lint:allow annotations.
// Well-formed ones land in the returned set keyed by the line they sit
// on; annotations with no reason come back as diagnostics instead —
// an unexplained suppression is exactly the review drift the linter
// exists to stop.
func suppressions(pkg *Package) (allowSet, []Diagnostic) {
	set := allowSet{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(m[3]) == "" {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Check:   "lint",
						Message: fmt.Sprintf("//lint:allow %s has no reason; write //lint:allow %s <why>", m[1], m[1]),
					})
					continue
				}
				set[allowKey{pos.Filename, pos.Line, m[1]}] = true
			}
		}
	}
	return set, bad
}

// Allows lists every well-formed //lint:allow annotation in the
// packages (check, reason, position) so suppressions stay reviewable
// (`make lint-fix-audit`).
type Allow struct {
	Pos    token.Position
	Check  string
	Reason string
}

// CollectAllows returns all annotations sorted by position.
func CollectAllows(pkgs []*Package) []Allow {
	var out []Allow
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil || strings.TrimSpace(m[3]) == "" {
						continue
					}
					out = append(out, Allow{
						Pos:    pkg.Fset.Position(c.Pos()),
						Check:  m[1],
						Reason: strings.TrimSpace(m[3]),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}
