package lint

// goleak flags goroutines launched with no reachable stop path. A
// goroutine whose body loops forever — `for {}` with no return, break,
// context check or stop/done/quit channel in the loop — outlives every
// owner and leaks for the process lifetime. The canonical offenders:
//
//	go func() { for range time.Tick(d) { … } }()   // Tick never closes
//	go func() { for { work() } }()                 // nothing stops it
//
// Acceptable shapes: loops that return/break on a condition, select
// with a <-ctx.Done()/<-stop/<-done case, `for range ch` over a
// closable channel, or any identifier in the loop whose name signals a
// shutdown check. Named-function launches (`go s.loop()`) resolve one
// level deep through the module index.

import (
	"go/ast"
	"go/types"
	"regexp"
)

var GoLeakAnalyzer = &Analyzer{
	Name:      "goleak",
	Doc:       "every goroutine needs a reachable stop path: ctx/done channel, stop flag, or a terminating loop",
	RunModule: runGoLeak,
}

// stopNameRe matches identifiers that plausibly participate in a
// shutdown handshake. Deliberately broad: goleak's job is to catch
// goroutines with no story at all, not to audit the story.
var stopNameRe = regexp.MustCompile(`(?i)stop|done|quit|clos|shut|exit|cancel|ctx|kill`)

func runGoLeak(mp *ModulePass) {
	idx := mp.Funcs()
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body := launchedBody(pkg, g.Call, idx)
				if body == nil {
					return true
				}
				if loop := stoplessLoop(pkg, body); loop != nil {
					if tickLoop(pkg, loop) {
						mp.Reportf(pkg, g.Pos(), "goroutine ranges over time.Tick, which can never be stopped; use time.NewTicker with a Stop call and a done channel")
					} else {
						mp.Reportf(pkg, g.Pos(), "goroutine loops forever with no reachable stop path (no return/break, done/stop channel, or context check in the loop)")
					}
				}
				return true
			})
		}
	}
}

// launchedBody resolves what the go statement runs: a function literal
// inline, or a named project function/method one level deep.
func launchedBody(pkg *Package, call *ast.CallExpr, idx map[*types.Func]*FuncDecl) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	fn := calleeOf(pkg.Info, call)
	if fn == nil {
		return nil
	}
	if d, ok := idx[fn]; ok && d.Decl.Body != nil {
		return d.Decl.Body
	}
	return nil
}

// stoplessLoop returns the first loop in body that spins forever with
// no exit signal, or nil. Nested function literals and go statements
// are other goroutines' business.
func stoplessLoop(pkg *Package, body *ast.BlockStmt) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !loopCanStop(pkg, n.Body) {
				found = n
				return false
			}
		case *ast.RangeStmt:
			// `for range ch` ends when the channel closes — except
			// time.Tick's channel, which never does.
			if tickLoop(pkg, n) && !loopCanStop(pkg, n.Body) {
				found = n
				return false
			}
		}
		return true
	})
	return found
}

// loopCanStop scans a loop body for any exit or shutdown signal.
func loopCanStop(pkg *Package, body *ast.BlockStmt) bool {
	can := false
	ast.Inspect(body, func(n ast.Node) bool {
		if can {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ReturnStmt:
			can = true
		case *ast.BranchStmt:
			switch n.Tok.String() {
			case "break", "goto":
				can = true
			}
		case *ast.Ident:
			if stopNameRe.MatchString(n.Name) {
				can = true
			}
		}
		return !can
	})
	return can
}

// tickLoop reports whether the loop ranges over time.Tick(...).
func tickLoop(pkg *Package, loop ast.Stmt) bool {
	r, ok := loop.(*ast.RangeStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(r.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(pkg.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Tick"
}
