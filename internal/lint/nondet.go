package lint

import (
	"go/ast"
	"go/types"
)

// NondetAnalyzer (check "nondet") flags wall-clock time and global
// random state inside the simulation-deterministic packages. Those
// packages promise bit-identical behavior given a seed — experiment
// tables E1–E15, the discovery session state machine, tunnel health
// ladders, middlebox supervision — so every timestamp must come from
// the netsim clock (or an injected now func) and every random draw from
// a seeded netsim.RNG. A single time.Now() leaking in silently turns a
// reproducibility guarantee into a machine-speed artifact.
var NondetAnalyzer = &Analyzer{
	Name: "nondet",
	Doc:  "wall-clock time (time.Now/Sleep/After/Since/Until/AfterFunc) or global math/rand in a simulation-deterministic package",
	Run:  runNondet,
}

// wallClockFuncs read or wait on the real clock. Ticker/Timer
// construction is clockparam's half of the contract.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true,
	"AfterFunc": true, "Since": true, "Until": true,
}

// seededRandOK are the math/rand names that do NOT touch the package's
// global generator: constructors for locally-seeded sources.
var seededRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNondet(pass *Pass) {
	if !pass.Config.DeterministicPkgs[pass.Pkg.Path] {
		return
	}
	pass.inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name, obj, ok := pass.pkgRef(sel)
		if !ok {
			return true
		}
		switch path {
		case "time":
			if wallClockFuncs[name] {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock in simulation-deterministic package %s; use the netsim clock (or the package's injected now func)", name, pass.Pkg.Path)
			}
		case "math/rand", "math/rand/v2":
			// Types (rand.Rand, rand.Source) are fine; package-level
			// functions other than the seeded constructors draw from
			// global state.
			if _, isFunc := obj.(*types.Func); isFunc && !seededRandOK[name] {
				pass.Reportf(sel.Pos(), "math/rand.%s uses the global generator in simulation-deterministic package %s; use a seeded netsim.RNG (or rand.New)", name, pass.Pkg.Path)
			}
		}
		return true
	})
}
