package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks the module's packages with nothing but the
// standard library: module-internal imports are resolved by walking the
// module tree recursively, everything else falls through to go/types'
// source importer, which compiles the standard library straight from
// GOROOT source. No go/packages, no network, no build cache — pvnlint
// must run in the same offline container the tests do.

// FindModuleRoot walks up from dir to the enclosing go.mod and returns
// the module root directory and module path.
func FindModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

type loader struct {
	root   string
	module string
	fset   *token.FileSet
	cache  map[string]*Package // by import path; nil entry = in progress
	stdlib types.ImporterFrom
}

// Load parses and type-checks the packages matched by patterns inside
// the module rooted at root. Patterns are directory-relative: "./..."
// (everything), "./sub/..." (a subtree) or "./sub" (one directory).
// testdata and hidden directories are never matched; _test.go files are
// never loaded — pvnlint analyzes shipped code, and test packages may
// deliberately violate contracts to prove the code under test enforces
// them.
func Load(root, module string, patterns ...string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	// The source importer consults go/build's default context. Cgo off
	// keeps every stdlib package (net in particular) on its pure-Go
	// fallback so type-checking never needs a C toolchain.
	build.Default.CgoEnabled = false
	l := &loader{
		root:   root,
		module: module,
		fset:   token.NewFileSet(),
		cache:  map[string]*Package{},
	}
	l.stdlib = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)

	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walkGoDirs(root, addDir); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(root, strings.TrimSuffix(pat, "/..."))
			if err := walkGoDirs(base, addDir); err != nil {
				return nil, err
			}
		default:
			addDir(filepath.Join(root, pat))
		}
	}

	var pkgs []*Package
	for _, dir := range dirs {
		path, err := l.importPath(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// walkGoDirs calls add for every directory under base that contains at
// least one non-test .go file, skipping testdata and hidden trees.
func walkGoDirs(base string, add func(string)) error {
	return filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			add(filepath.Dir(p))
		}
		return nil
	})
}

func (l *loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.root)
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// load parses + type-checks one module package (cached, cycle-checked).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.cache[path] = nil // in progress

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		delete(l.cache, path)
		return nil, nil
	}

	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}

	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Name:  files[0].Name.Name,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// loaderImporter adapts the loader into go/types' ImporterFrom:
// module-internal paths load from source through the loader, everything
// else (the standard library) goes to the srcimporter.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.stdlib.ImportFrom(path, dir, 0)
}
