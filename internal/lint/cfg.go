package lint

// Intra-procedural control-flow graphs over go/ast, the substrate for
// the flow-sensitive analyzers (trustflow, lockorder). The builder
// lowers one function body into basic blocks of statements/condition
// expressions connected by successor edges; solveForward then runs any
// monotone forward dataflow problem to fixpoint by worklist iteration.
// DESIGN.md §15 describes the model.
//
// The graph is deliberately modest: goto is treated as an opaque jump
// (the repo has none), and expressions stay inside their statements —
// transfer functions walk statement subtrees themselves. Conditions of
// if/for/switch are emitted as standalone nodes so side effects in
// them (calls, assignments via init statements) are seen exactly once
// per traversal of the block.

import (
	"go/ast"
)

// cfgNode is one entry of a basic block: an ast.Stmt, or a bare
// ast.Expr for a lowered condition.
type cfgNode struct {
	Stmt ast.Stmt
	Cond ast.Expr
}

// cfgBlock is a straight-line run of nodes with explicit successors.
type cfgBlock struct {
	index int
	nodes []cfgNode
	succs []*cfgBlock
}

// funcCFG is the graph for one function body. blocks[0] is the entry;
// exit is a synthetic empty block every return/fallthrough reaches.
// defers collects deferred statements in syntactic order: they run at
// exit, and flow-sensitive analyzers fold them into the exit fact.
type funcCFG struct {
	blocks []*cfgBlock
	exit   *cfgBlock
	defers []*ast.DeferStmt
}

// cfgBuilder threads break/continue targets while lowering.
type cfgBuilder struct {
	g    *funcCFG
	cur  *cfgBlock
	brk  []*cfgBlock // innermost-last break targets
	cont []*cfgBlock // innermost-last continue targets
}

// buildCFG lowers body. A nil body (declaration without definition)
// yields a graph with just entry→exit.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}}
	entry := b.newBlock()
	b.g.exit = b.newBlock()
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, b.g.exit)
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// emit appends a node to the current block; a nil current block means
// the code is unreachable (after return/branch) and the node is
// dropped onto a fresh orphan block so its contents are still visible
// to whole-function walks that iterate blocks.
func (b *cfgBuilder) emit(n cfgNode) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(cfgNode{Cond: s.Cond})
		condBlk := b.cur
		join := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join
	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		exit := b.newBlock()
		b.cur = head
		if s.Cond != nil {
			b.emit(cfgNode{Cond: s.Cond})
			b.edge(b.cur, exit)
		}
		condEnd := b.cur
		body := b.newBlock()
		b.edge(condEnd, body)
		post := b.newBlock()
		b.pushLoop(exit, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = exit
	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		exit := b.newBlock()
		b.cur = head
		// The range header both evaluates X and binds Key/Value each
		// iteration; model it as the statement itself.
		b.emit(cfgNode{Stmt: s})
		b.edge(b.cur, exit)
		body := b.newBlock()
		b.edge(b.cur, body)
		b.pushLoop(exit, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = exit
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.branchy(s)
	case *ast.LabeledStmt:
		// Labels only matter for labeled break/continue, which we route
		// to the innermost loop anyway (sound for may-analyses: the
		// labeled target is an enclosing loop whose exit joins later).
		b.stmt(s.Stmt)
	case *ast.BranchStmt:
		b.emit(cfgNode{Stmt: s})
		switch s.Tok.String() {
		case "break":
			if t := b.top(b.brk); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case "continue":
			if t := b.top(b.cont); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case "goto":
			b.cur = nil
		}
		// fallthrough is handled by branchy's case chaining.
	case *ast.ReturnStmt:
		b.emit(cfgNode{Stmt: s})
		b.edge(b.cur, b.g.exit)
		b.cur = nil
	case *ast.DeferStmt:
		b.emit(cfgNode{Stmt: s})
		b.g.defers = append(b.g.defers, s)
	default:
		b.emit(cfgNode{Stmt: s})
	}
}

// branchy lowers switch/type-switch/select: evaluate the header, then
// each clause body is an alternative path into a common join.
func (b *cfgBuilder) branchy(s ast.Stmt) {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.emit(cfgNode{Cond: s.Tag})
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(cfgNode{Stmt: s.Assign})
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	head := b.cur
	join := b.newBlock()
	hasDefault := false
	var bodies []*cfgBlock
	for _, cl := range clauses {
		var list []ast.Stmt
		var comm ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			list = cl.Body
			if cl.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			list, comm = cl.Body, cl.Comm
			if cl.Comm == nil {
				hasDefault = true
			}
		}
		blk := b.newBlock()
		b.edge(head, blk)
		bodies = append(bodies, blk)
		b.cur = blk
		if comm != nil {
			b.stmt(comm)
		}
		b.pushBreak(join)
		b.stmtList(list)
		b.popBreak()
		// fallthrough chains to the next case body; detect a trailing
		// fallthrough and wire it when the next clause is built.
		if ft := trailingFallthrough(list); ft && b.cur != nil {
			// edge added below once the next body exists
		} else {
			b.edge(b.cur, join)
		}
	}
	// Wire fallthrough edges case→next-case.
	for i, cl := range clauses {
		if cc, ok := cl.(*ast.CaseClause); ok && trailingFallthrough(cc.Body) && i+1 < len(bodies) {
			b.edge(bodies[i], bodies[i+1])
		}
	}
	if !hasDefault || len(clauses) == 0 {
		// Without a default (or with no clauses at all) the statement
		// can complete with no case taken (switch) — and for a select
		// it blocks, but for flow purposes control still reaches join.
		b.edge(head, join)
	}
	b.cur = join
}

func trailingFallthrough(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	br, ok := list[len(list)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

func (b *cfgBuilder) pushLoop(brk, cont *cfgBlock) {
	b.brk = append(b.brk, brk)
	b.cont = append(b.cont, cont)
}

func (b *cfgBuilder) popLoop() {
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
}

func (b *cfgBuilder) pushBreak(t *cfgBlock) { b.brk = append(b.brk, t) }
func (b *cfgBuilder) popBreak()             { b.brk = b.brk[:len(b.brk)-1] }

func (b *cfgBuilder) top(stack []*cfgBlock) *cfgBlock {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// solveForward runs worklist iteration on g. init seeds the entry
// block; every other block starts at bottom (nil fact). join merges src
// into dst and reports whether dst changed; transfer computes a
// block's out fact from a copy of its in fact. Facts are values of any
// map-like type F managed entirely by the callbacks. On return, in(b)
// gives each block's converged entry fact, so callers can make one
// more reporting pass per block.
func solveForward[F any](
	g *funcCFG,
	init F,
	clone func(F) F,
	join func(dst, src F) (F, bool),
	transfer func(b *cfgBlock, in F) F,
) map[*cfgBlock]F {
	in := make(map[*cfgBlock]F, len(g.blocks))
	if len(g.blocks) == 0 {
		return in
	}
	in[g.blocks[0]] = init
	work := []*cfgBlock{g.blocks[0]}
	queued := map[*cfgBlock]bool{g.blocks[0]: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := transfer(blk, clone(in[blk]))
		for _, s := range blk.succs {
			cur, ok := in[s]
			if !ok {
				in[s] = clone(out)
				if !queued[s] {
					work = append(work, s)
					queued[s] = true
				}
				continue
			}
			if merged, changed := join(cur, out); changed {
				in[s] = merged
				if !queued[s] {
					work = append(work, s)
					queued[s] = true
				}
			}
		}
	}
	return in
}
