package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
)

// FailPolicyAnalyzer (check "failpolicy") enforces the fail-closed
// contract on security middleboxes:
//
//  1. A middlebox.Spec registration with Security: true must set an
//     explicit FailPolicy. Security boxes (tls-verify, pii-detect, …)
//     are enforcement points; whether a broken one blocks traffic or
//     waves it through is a policy decision the author must make in
//     writing, not inherit from a supervisor default that can change
//     under them.
//  2. Middlebox packages must not panic outside the supervisor.
//     Runtime.run's recover() turns box panics into ErrBoxPanic and
//     routes them through the FailPolicy ladder — a panic anywhere else
//     in the middlebox layer escapes that containment and takes the
//     whole dataplane worker down.
var FailPolicyAnalyzer = &Analyzer{
	Name: "failpolicy",
	Doc:  "middlebox Spec with Security: true but no explicit FailPolicy; panic in middlebox code outside the supervisor",
	Run:  runFailPolicy,
}

func runFailPolicy(pass *Pass) {
	// Rule 1 applies everywhere a Spec literal can be written (the mbx
	// registry, experiments, daemons); the type is matched by name so
	// the rule follows the Spec type wherever it is imported from.
	pass.inspect(func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[lit]
		if !ok || !isMiddleboxSpec(tv.Type) {
			return true
		}
		var security bool
		var hasFailPolicy bool
		boxType := "?"
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Security":
				if v, ok := pass.Pkg.Info.Types[kv.Value]; ok && v.Value != nil &&
					v.Value.Kind() == constant.Bool && constant.BoolVal(v.Value) {
					security = true
				}
			case "FailPolicy":
				hasFailPolicy = true
			case "Type":
				if v, ok := pass.Pkg.Info.Types[kv.Value]; ok && v.Value != nil &&
					v.Value.Kind() == constant.String {
					boxType = constant.StringVal(v.Value)
				}
			}
		}
		if security && !hasFailPolicy {
			pass.Reportf(lit.Pos(), "middlebox Spec %q has Security: true but no explicit FailPolicy; a security box must declare fail-open or fail-closed", boxType)
		}
		return true
	})

	// Rule 2: the panic ban, scoped to the middlebox packages minus the
	// supervisor (whose recover() is the other half of the contract).
	if !pass.Config.MiddleboxPkgs[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		base := filepath.Base(pass.Pkg.Fset.Position(f.Pos()).Filename)
		if pass.Config.SupervisorFiles[base] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				pass.Reportf(call.Pos(), "panic in middlebox code outside the supervisor; return an error and let the chain's FailPolicy decide")
			}
			return true
		})
	}
}

// isMiddleboxSpec matches the middlebox registry's Spec type by name:
// a named struct called Spec declared in a package named middlebox.
func isMiddleboxSpec(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Spec" || obj.Pkg() == nil || obj.Pkg().Name() != "middlebox" {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}
