package lint

import (
	"go/ast"
	"go/types"
)

// inspect walks every file in the package.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// pkgRef resolves sel as a reference to a package-level object: if
// sel.X is a package qualifier it returns the imported package's path,
// the selected name and the object; otherwise ok is false.
func (p *Pass) pkgRef(sel *ast.SelectorExpr) (path, name string, obj types.Object, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", nil, false
	}
	pn, isPkg := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", nil, false
	}
	return pn.Imported().Path(), sel.Sel.Name, p.Pkg.Info.Uses[sel.Sel], true
}

// fieldOf resolves sel as a struct-field selection and returns the
// field variable, or nil.
func (p *Pass) fieldOf(sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// calleeFunc resolves a call's target to its types.Func (methods and
// package-level functions alike), or nil.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if s, ok := p.Pkg.Info.Selections[fun]; ok {
			f, _ := s.Obj().(*types.Func)
			return f
		}
		f, _ := p.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.Ident:
		f, _ := p.Pkg.Info.Uses[fun].(*types.Func)
		return f
	}
	return nil
}

// returnsError reports whether fn's last result is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// inProject reports whether obj is defined in a package owned by the
// module (cfg.ProjectPrefix).
func inProject(cfg *Config, obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil || cfg.ProjectPrefix == "" {
		return false
	}
	path := obj.Pkg().Path()
	return path == cfg.ProjectPrefix || len(path) > len(cfg.ProjectPrefix) &&
		path[:len(cfg.ProjectPrefix)+1] == cfg.ProjectPrefix+"/"
}
