package lint

// trustflow machine-checks the paper's trust story: nothing decoded
// from the wire, an overlay replica, or a provider may reach a
// deploy/install/compile/store sink until a Verify*/Validate*
// sanitizer has vouched for it. Sources, sinks, wire types and the
// sanitizer pattern come from Config; the engine is dataflow.go's
// path-keyed taint analysis run over every function in
// Config.TaintPkgs.
//
// Reporting model:
//   - Exported functions and function literals cannot enumerate their
//     callers, so wire-typed parameters (Config.WireTypes) are presumed
//     tainted inside them.
//   - Unexported functions are covered at their call sites through
//     summaries: passing a tainted value to a function that stores it
//     unverified is reported at the call, naming the store site.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var TrustFlowAnalyzer = &Analyzer{
	Name: "trustflow",
	Doc:  "wire/overlay/provider data must pass a Verify*/Validate* sanitizer before any deploy, install, compile or persistent-store sink",
	RunModule: func(mp *ModulePass) {
		runTrustFlow(mp)
	},
}

// taintFn is one analyzable function body in a taint package.
type taintFn struct {
	pkg  *Package
	decl *ast.FuncDecl
	fn   *types.Func
}

func runTrustFlow(mp *ModulePass) {
	cfg := mp.Config
	if len(cfg.TaintPkgs) == 0 || len(cfg.TaintSinks) == 0 {
		return
	}
	var fns []taintFn
	for _, pkg := range mp.Pkgs {
		if !cfg.TaintPkgs[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				fns = append(fns, taintFn{pkg, fd, fn})
			}
		}
	}

	// Two summary rounds: round one sees only configured facts, round
	// two sees round-one summaries — call-site knowledge two levels
	// deep, enough for helper→store chains.
	summaries := map[*types.Func]*taintSummary{}
	for round := 0; round < 2; round++ {
		next := make(map[*types.Func]*taintSummary, len(fns))
		for _, e := range fns {
			a := &taintAnalysis{
				cfg:       cfg,
				pkg:       e.pkg,
				fset:      mp.Fset(),
				summaries: summaries,
				sum:       &taintSummary{},
			}
			a.analyzeBody(e.fn.Type().(*types.Signature), e.decl.Body, false)
			next[e.fn] = a.sum
		}
		summaries = next
	}

	// Reporting pass.
	for _, e := range fns {
		pkg := e.pkg
		rep := func(pos token.Pos, format string, args ...interface{}) {
			mp.Reportf(pkg, pos, format, args...)
		}
		a := &taintAnalysis{cfg: cfg, pkg: pkg, fset: mp.Fset(), summaries: summaries, report: rep}
		a.analyzeBody(e.fn.Type().(*types.Signature), e.decl.Body, e.fn.Exported())

		// Function literals run as their own functions with wire
		// parameters presumed tainted — they are callbacks whose
		// callers (overlay RPC completions, netsim handlers) hand them
		// raw wire data.
		ast.Inspect(e.decl.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			sig, ok := pkg.Info.Types[lit].Type.(*types.Signature)
			if !ok {
				return true
			}
			la := &taintAnalysis{cfg: cfg, pkg: pkg, fset: mp.Fset(), summaries: summaries, report: rep}
			la.analyzeBody(sig, lit.Body, true)
			return true
		})
	}
}
