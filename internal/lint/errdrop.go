package lint

import (
	"go/ast"
)

// ErrDropAnalyzer (check "errdrop") flags lifecycle API calls whose
// error result is silently discarded. Process, Deploy, Teardown and
// Export/ImportState are exactly the calls whose failures carry policy
// weight in this system — a dropped Teardown error leaks a meter, a
// dropped ImportState error silently forgets migrated middlebox state —
// so a bare statement call to any of them is treated as a bug. Writing
// `_ = x.Teardown()` (or `_, _, _ = …`) is the explicit opt-out and is
// not flagged: the blank assignment is the author saying "I considered
// this" in a way a reviewer can see.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "ignored error return from a project lifecycle API (Process, Deploy, Teardown, ExportState, ImportState)",
	Run:  runErrDrop,
}

var lifecycleAPIs = map[string]bool{
	"Process": true, "Deploy": true, "Teardown": true,
	"ExportState": true, "ImportState": true,
}

func runErrDrop(pass *Pass) {
	check := func(call *ast.CallExpr, how string) {
		fn := pass.calleeFunc(call)
		if fn == nil || !lifecycleAPIs[fn.Name()] || !returnsError(fn) || !inProject(pass.Config, fn) {
			return
		}
		pass.Reportf(call.Pos(), "%s's error result is dropped%s; handle it or assign to _ explicitly", fn.Name(), how)
	}
	pass.inspect(func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				check(call, "")
			}
		case *ast.GoStmt:
			check(st.Call, " in a go statement")
		case *ast.DeferStmt:
			check(st.Call, " in a defer")
		}
		return true
	})
}
