package lint

import (
	"testing"
)

// TestRepoCleanAtHead is the linter eating its own dog food: the whole
// module at HEAD must produce zero findings under the default config.
// Every deliberate wall-clock or panic site carries a //lint:allow with
// a reason; anything this test prints is either a new contract
// violation or a missing annotation — fix the code, or annotate it and
// defend the reason in review.
func TestRepoCleanAtHead(t *testing.T) {
	// The sweep is only as strong as its analyzer set: all eight must
	// be registered, the flow-sensitive ones included, or this test
	// silently weakens.
	byName := map[string]bool{}
	for _, a := range Analyzers() {
		byName[a.Name] = true
	}
	for _, name := range []string{
		"nondet", "clockparam", "failpolicy", "unlockedfield", "errdrop",
		"trustflow", "lockorder", "goleak",
	} {
		if !byName[name] {
			t.Fatalf("analyzer %q missing from Analyzers()", name)
		}
	}
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "pvn" {
		t.Fatalf("module = %q, want pvn", module)
	}
	pkgs, err := Load(root, module, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded; loader is missing the tree", len(pkgs))
	}
	for _, d := range Run(DefaultConfig(), pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
