package lint

import (
	"go/ast"
)

// ClockParamAnalyzer (check "clockparam") flags exported functions in
// simulation-deterministic packages that construct their own
// time.Ticker/time.Timer instead of accepting a clock. A ticker buried
// inside an exported API pins callers to wall-clock cadence: netsim
// can't compress it, tests can't step it, and the same code path times
// out at different simulated instants on different machines. The
// project idiom is a `now func() time.Duration` / netsim.Clock
// parameter (see tunnel.Prober, middlebox.Runtime).
var ClockParamAnalyzer = &Analyzer{
	Name: "clockparam",
	Doc:  "exported function in a simulation-deterministic package constructs time.Ticker/Timer instead of accepting a clock",
	Run:  runClockParam,
}

var tickerFuncs = map[string]bool{"NewTicker": true, "NewTimer": true, "Tick": true}

func runClockParam(pass *Pass) {
	if !pass.Config.DeterministicPkgs[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if path, name, _, ok := pass.pkgRef(sel); ok && path == "time" && tickerFuncs[name] {
					pass.Reportf(sel.Pos(), "exported %s constructs time.%s; accept a clock from the caller (netsim.Clock or a now func) so simulated time stays schedulable", fd.Name.Name, name)
				}
				return true
			})
		}
	}
}
