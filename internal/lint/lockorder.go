package lint

// lockorder builds the repo-wide mutex acquisition graph and enforces
// three concurrency contracts:
//
//  1. No lock-order cycles: if any code path acquires A then B, no
//     path may acquire B then A (classic ABBA deadlock).
//  2. No mutex held across a blocking operation: channel send/receive,
//     select without default, WaitGroup.Wait, or a middlebox
//     Process/ProcessBatch call (directly or through one of the
//     function's callees, transitively).
//  3. sync.Cond.Wait appears inside its for-loop idiom — a bare Wait
//     races its predicate.
//
// Lock identity is the declared variable (struct field or package
// var): every deployserver.Server holds "the same" Server.mu. That is
// the right granularity for ordering contracts and mirrors how the
// code comments document lock order.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var LockOrderAnalyzer = &Analyzer{
	Name:      "lockorder",
	Doc:       "no lock-order cycles, no mutex held across blocking ops (chan send/recv, select, Wait, middlebox Process), cond.Wait only inside its for loop",
	RunModule: runLockOrder,
}

// lockFn is one function body with its package context.
type lockFn struct {
	pkg  *Package
	name string
	fn   *types.Func
	body *ast.BlockStmt
}

// lockFacts are one function's direct concurrency facts, computed
// syntactically (go statements and function literals excluded — they
// run on other goroutines).
type lockFacts struct {
	acquires map[*types.Var]token.Pos
	blockPos token.Pos
	blockOp  string
	calls    []*types.Func
}

// transLockFacts closes lockFacts over the module call graph.
type transLockFacts struct {
	acquires map[*types.Var]token.Pos
	blockPos token.Pos
	blockOp  string
}

type lockEdge struct{ from, to *types.Var }

type lockEdgeInfo struct {
	pos    token.Pos // where `to` is taken while `from` is held
	pkg    *Package
	fromAt token.Pos
}

type lockOrder struct {
	mp    *ModulePass
	fns   []lockFn
	byFn  map[*types.Func]*lockFacts
	trans map[*types.Func]*transLockFacts
	edges map[lockEdge]lockEdgeInfo
}

func runLockOrder(mp *ModulePass) {
	lo := &lockOrder{
		mp:    mp,
		byFn:  map[*types.Func]*lockFacts{},
		trans: map[*types.Func]*transLockFacts{},
		edges: map[lockEdge]lockEdgeInfo{},
	}
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				lo.fns = append(lo.fns, lockFn{pkg, fd.Name.Name, fn, fd.Body})
			}
		}
	}
	for _, e := range lo.fns {
		lo.byFn[e.fn] = directLockFacts(e.pkg, e.body)
	}
	for _, e := range lo.fns {
		lo.transitive(e.fn, map[*types.Func]bool{})
	}
	for _, e := range lo.fns {
		lo.checkFunc(e.pkg, e.body)
		// Function literals are separate goroutine/callback bodies:
		// check them with an empty held set of their own.
		ast.Inspect(e.body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lo.checkBody(e.pkg, lit.Body)
			}
			return true
		})
		lo.condWaitIdiom(e.pkg, e.body)
	}
	lo.reportCycles()
}

// directLockFacts scans one body (excluding go/func-literal subtrees)
// for lock acquisitions, blocking ops and project callees.
func directLockFacts(pkg *Package, body *ast.BlockStmt) *lockFacts {
	facts := &lockFacts{acquires: map[*types.Var]token.Pos{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			facts.block(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				facts.block(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			fn := calleeOf(pkg.Info, n)
			if fn == nil {
				return true
			}
			switch kindOfLockCall(fn) {
			case lockAcquire:
				if v := lockVarOf(pkg.Info, n); v != nil {
					if _, ok := facts.acquires[v]; !ok {
						facts.acquires[v] = n.Pos()
					}
				}
			case lockBlockingWait:
				facts.block(n.Pos(), fn.Name())
			}
			if isProcessCall(fn) {
				facts.block(n.Pos(), "middlebox "+fn.Name())
			}
			if fn.Pkg() != nil && strings.HasPrefix(fn.Pkg().Path(), "pvn") {
				facts.calls = append(facts.calls, fn)
			}
		}
		return true
	})
	return facts
}

func (f *lockFacts) block(pos token.Pos, op string) {
	if f.blockPos == 0 {
		f.blockPos, f.blockOp = pos, op
	}
}

// transitive memoizes the call-graph closure of acquires/blocks.
func (lo *lockOrder) transitive(fn *types.Func, visiting map[*types.Func]bool) *transLockFacts {
	if t, ok := lo.trans[fn]; ok {
		return t
	}
	if visiting[fn] {
		return &transLockFacts{acquires: map[*types.Var]token.Pos{}}
	}
	visiting[fn] = true
	t := &transLockFacts{acquires: map[*types.Var]token.Pos{}}
	if d := lo.byFn[fn]; d != nil {
		for v, pos := range d.acquires {
			t.acquires[v] = pos
		}
		t.blockPos, t.blockOp = d.blockPos, d.blockOp
		for _, callee := range d.calls {
			if callee == fn {
				continue
			}
			ct := lo.transitive(callee, visiting)
			for v, pos := range ct.acquires {
				if _, ok := t.acquires[v]; !ok {
					t.acquires[v] = pos
				}
			}
			if t.blockPos == 0 && ct.blockPos != 0 {
				t.blockPos = ct.blockPos
				t.blockOp = fmt.Sprintf("%s (via %s)", ct.blockOp, callee.Name())
			}
		}
	}
	delete(visiting, fn)
	lo.trans[fn] = t
	return t
}

// heldState maps each held lock to its acquisition site.
type heldState map[*types.Var]token.Pos

func cloneHeld(h heldState) heldState {
	out := make(heldState, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// joinHeld intersects: a lock counts as held at a join only if held on
// every path (must-analysis; union would flood false positives after
// branches that conditionally unlock).
func joinHeld(dst, src heldState) (heldState, bool) {
	changed := false
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
			changed = true
		}
	}
	return dst, changed
}

func (lo *lockOrder) checkFunc(pkg *Package, body *ast.BlockStmt) {
	lo.checkBody(pkg, body)
}

// checkBody runs the held-set dataflow over one body and reports
// blocking-under-lock plus records acquisition-order edges.
func (lo *lockOrder) checkBody(pkg *Package, body *ast.BlockStmt) {
	nonBlockingComm := commsOfDefaultSelects(body)
	g := buildCFG(body)
	transfer := func(report bool) func(b *cfgBlock, h heldState) heldState {
		return func(b *cfgBlock, h heldState) heldState {
			for _, n := range b.nodes {
				lo.nodeHeld(pkg, h, n, nonBlockingComm, report)
			}
			return h
		}
	}
	in := solveForward(g, heldState{}, cloneHeld, joinHeld, transfer(false))
	for _, b := range g.blocks {
		h, ok := in[b]
		if !ok {
			continue
		}
		h = cloneHeld(h)
		for _, n := range b.nodes {
			lo.nodeHeld(pkg, h, n, nonBlockingComm, true)
		}
	}
}

// nodeHeld transfers one CFG node over the held set.
func (lo *lockOrder) nodeHeld(pkg *Package, h heldState, n cfgNode, nonBlockingComm map[ast.Node]bool, report bool) {
	var root ast.Node
	switch {
	case n.Cond != nil:
		root = n.Cond
	case n.Stmt != nil:
		root = n.Stmt
	default:
		return
	}
	if g, ok := root.(*ast.GoStmt); ok {
		// The spawned call's args evaluate here, but the call runs
		// elsewhere; only scan argument expressions.
		for _, a := range g.Call.Args {
			lo.walkHeld(pkg, h, a, nonBlockingComm, report)
		}
		return
	}
	if d, ok := root.(*ast.DeferStmt); ok {
		// Deferred unlocks release at return; model the lock as held
		// for the rest of the function (that is the truth while the
		// body runs). Other deferred calls are ignored.
		_ = d
		return
	}
	if r, ok := root.(*ast.RangeStmt); ok {
		if tv, ok := pkg.Info.Types[r.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				lo.blockingUnder(pkg, h, r.Pos(), "range over channel", report)
			}
		}
		lo.walkHeld(pkg, h, r.X, nonBlockingComm, report)
		return
	}
	lo.walkHeld(pkg, h, root, nonBlockingComm, report)
}

func (lo *lockOrder) walkHeld(pkg *Package, h heldState, root ast.Node, nonBlockingComm map[ast.Node]bool, report bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if !nonBlockingComm[n] {
				lo.blockingUnder(pkg, h, n.Pos(), "channel send", report)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonBlockingComm[n] {
				lo.blockingUnder(pkg, h, n.Pos(), "channel receive", report)
			}
		case *ast.CallExpr:
			lo.callHeld(pkg, h, n, report)
		}
		return true
	})
}

func (lo *lockOrder) callHeld(pkg *Package, h heldState, call *ast.CallExpr, report bool) {
	fn := calleeOf(pkg.Info, call)
	if fn == nil {
		return
	}
	switch kindOfLockCall(fn) {
	case lockAcquire:
		v := lockVarOf(pkg.Info, call)
		if v == nil {
			return
		}
		for held, at := range h {
			if held == v {
				continue
			}
			e := lockEdge{held, v}
			if _, ok := lo.edges[e]; !ok {
				lo.edges[e] = lockEdgeInfo{pos: call.Pos(), pkg: pkg, fromAt: at}
			}
		}
		h[v] = call.Pos()
		return
	case lockRelease:
		if v := lockVarOf(pkg.Info, call); v != nil {
			delete(h, v)
		}
		return
	case lockBlockingWait:
		lo.blockingUnder(pkg, h, call.Pos(), fn.Name(), report)
		return
	case lockCondWait:
		// Cond.Wait releases its own mutex; the idiom check handles it.
		return
	}
	if isProcessCall(fn) {
		lo.blockingUnder(pkg, h, call.Pos(), "middlebox "+fn.Name(), report)
		return
	}
	// Project callee: fold in its transitive facts.
	if t, ok := lo.trans[fn]; ok && len(h) > 0 {
		for v, pos := range t.acquires {
			for held := range h {
				if held == v {
					continue
				}
				e := lockEdge{held, v}
				if _, okE := lo.edges[e]; !okE {
					lo.edges[e] = lockEdgeInfo{pos: pos, pkg: pkg, fromAt: h[held]}
				}
			}
		}
		if t.blockPos != 0 {
			lo.blockingUnder(pkg, h, call.Pos(), fmt.Sprintf("call to %s, which may block on %s", fn.Name(), t.blockOp), report)
		}
	}
}

func (lo *lockOrder) blockingUnder(pkg *Package, h heldState, pos token.Pos, op string, report bool) {
	if !report || len(h) == 0 {
		return
	}
	names := make([]string, 0, len(h))
	for v := range h {
		names = append(names, lockLabel(lo.mp.Config, v))
	}
	sort.Strings(names)
	lo.mp.Reportf(pkg, pos, "%s held across blocking %s; release the lock first or document the serialization contract", strings.Join(names, ", "), op)
}

// commsOfDefaultSelects collects send/recv nodes that belong to a
// select with a default case — those never block.
func commsOfDefaultSelects(body *ast.BlockStmt) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			out[cc.Comm] = true
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					out[u] = true
				}
				if s, ok := m.(*ast.SendStmt); ok {
					out[s] = true
				}
				return true
			})
		}
		return true
	})
	return out
}

// condWaitIdiom flags sync.Cond.Wait calls outside a for loop.
func (lo *lockOrder) condWaitIdiom(pkg *Package, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pkg.Info, call)
		if fn == nil || kindOfLockCall(fn) != lockCondWait {
			return true
		}
		inFor := false
		for i := len(stack) - 2; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inFor = true
			case *ast.FuncLit:
				i = -1 // loop in an enclosing function doesn't guard this Wait
			}
			if inFor {
				break
			}
		}
		if !inFor {
			lo.mp.Reportf(pkg, call.Pos(), "cond.Wait outside a for loop: the predicate must be re-checked after every wakeup (for !cond { c.Wait() })")
		}
		return true
	})
}

// reportCycles walks the acquisition graph for cycles and reports each
// once, at the edge that closes it.
func (lo *lockOrder) reportCycles() {
	adj := map[*types.Var][]*types.Var{}
	for e := range lo.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for from := range adj {
		sort.Slice(adj[from], func(i, j int) bool {
			return lockLabel(lo.mp.Config, adj[from][i]) < lockLabel(lo.mp.Config, adj[from][j])
		})
	}
	nodes := make([]*types.Var, 0, len(adj))
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool {
		return lockLabel(lo.mp.Config, nodes[i]) < lockLabel(lo.mp.Config, nodes[j])
	})

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*types.Var]int{}
	var path []*types.Var
	reported := map[lockEdge]bool{}
	var dfs func(v *types.Var)
	dfs = func(v *types.Var) {
		color[v] = gray
		path = append(path, v)
		for _, w := range adj[v] {
			if color[w] == gray {
				// Back edge closes a cycle; report it at the edge site.
				e := lockEdge{v, w}
				if !reported[e] {
					reported[e] = true
					info := lo.edges[e]
					var names []string
					start := 0
					for i, p := range path {
						if p == w {
							start = i
							break
						}
					}
					for _, p := range path[start:] {
						names = append(names, lockLabel(lo.mp.Config, p))
					}
					names = append(names, lockLabel(lo.mp.Config, w))
					lo.mp.Reportf(info.pkg, info.pos, "lock order cycle: %s (this acquisition inverts the established order)", strings.Join(names, " → "))
				}
				continue
			}
			if color[w] == white {
				dfs(w)
			}
		}
		path = path[:len(path)-1]
		color[v] = black
	}
	for _, v := range nodes {
		if color[v] == white {
			dfs(v)
		}
	}
}

type lockCallKind int

const (
	lockOther lockCallKind = iota
	lockAcquire
	lockRelease
	lockBlockingWait
	lockCondWait
)

func kindOfLockCall(fn *types.Func) lockCallKind {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOther
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockOther
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return lockOther
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		switch fn.Name() {
		case "Lock", "RLock", "TryLock", "TryRLock":
			return lockAcquire
		case "Unlock", "RUnlock":
			return lockRelease
		}
	case "WaitGroup":
		if fn.Name() == "Wait" {
			return lockBlockingWait
		}
	case "Cond":
		if fn.Name() == "Wait" {
			return lockCondWait
		}
	}
	return lockOther
}

// isProcessCall reports a middlebox packet-processing call — the
// contract says no lock may be held across one (a box can stall).
func isProcessCall(fn *types.Func) bool {
	if fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "pvn") {
		return false
	}
	if fn.Name() != "Process" && fn.Name() != "ProcessBatch" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// lockVarOf resolves the mutex operand of `x.mu.Lock()` to the
// declared variable (field or package/local var).
func lockVarOf(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			v, _ := s.Obj().(*types.Var)
			return v
		}
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v
	}
	return nil
}

// lockLabel renders a lock variable for messages: "pkg.Type.mu" for
// fields, "pkg.mu" for package vars, "mu" for locals.
func lockLabel(cfg *Config, v *types.Var) string {
	if v.Pkg() == nil {
		return v.Name()
	}
	pkg := v.Pkg().Path()
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		pkg = pkg[i+1:]
	}
	if v.IsField() {
		if qf := fieldOwner(v); qf != "" {
			return pkg + "." + qf + v.Name()
		}
		return pkg + "." + v.Name()
	}
	if v.Parent() == v.Pkg().Scope() {
		return pkg + "." + v.Name()
	}
	return v.Name()
}
