// Endpoint health probing (§3.3: "use active measurements to inform the
// costs of alternative locations"). Each endpoint carries an RTT/loss-
// scored health ladder — healthy → degraded → down, with a probation
// half-open state on the way back up — mirroring the sliding-window +
// capped-backoff breaker the middlebox supervisor uses for instances:
// the same defense, applied to redirection targets instead of boxes.
//
// The Prober drives the ladder on the netsim clock: one probe loop per
// endpoint, each probe traversing a netsim.FaultInjector that models the
// interdomain path (its delay draw is the probe RTT; its drops and
// outage windows lose probes). Down endpoints are re-probed at a capped
// exponential backoff so a dead path costs bounded probe traffic.
package tunnel

import (
	"fmt"
	"sync/atomic"
	"time"

	"pvn/internal/netsim"
)

// Health is the probed state of one tunnel endpoint.
type Health uint8

// Health states. Probation is the half-open state: a down endpoint
// answered a probe and is accumulating consecutive successes; one loss
// sends it straight back to Down with a widened retry backoff.
const (
	Healthy Health = iota
	Degraded
	Down
	Probation
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	case Probation:
		return "probation"
	default:
		return fmt.Sprintf("health(%d)", uint8(h))
	}
}

// downTier is the selection tier at and above which an endpoint is
// avoided (see tier).
const downTier = 3

// tier orders health states for endpoint selection: healthy first, then
// degraded/recovering, down last.
func (h Health) tier() int {
	switch h {
	case Healthy:
		return 0
	case Degraded, Probation:
		return 1
	default:
		return downTier
	}
}

// HealthConfig tunes the probe ladder. The zero value is live: a
// 16-probe window, down at 4 losses, degraded at 2, 50 ms probe
// interval, 200 ms probe timeout, down-retry backoff starting at 200 ms
// doubling to a 2 s cap, 3 probation probes.
type HealthConfig struct {
	// Window is the sliding window of recent probe outcomes per
	// endpoint, in probes. Clamped to 64. Zero means 16.
	Window int
	// DownThreshold is how many losses within Window mark the endpoint
	// Down. Zero means 4.
	DownThreshold int
	// DegradedThreshold is how many losses within Window mark it
	// Degraded. Zero means half of DownThreshold.
	DegradedThreshold int
	// ProbeInterval is the per-endpoint probe cadence. Zero means 50 ms.
	ProbeInterval time.Duration
	// ProbeTimeout is how long a probe waits for its answer before
	// counting as lost. Zero means 4× ProbeInterval.
	ProbeTimeout time.Duration
	// RetryBackoff is the first Down-state probe interval; it doubles
	// per consecutive loss while down, capped. Zero means 200 ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the doubling. Zero means 2 s.
	RetryBackoffMax time.Duration
	// ProbationProbes is how many consecutive probe successes promote a
	// recovering endpoint back to Healthy. Zero means 3.
	ProbationProbes int
}

func (c *HealthConfig) window() int {
	if c.Window <= 0 {
		return 16
	}
	if c.Window > 64 {
		return 64
	}
	return c.Window
}

func (c *HealthConfig) down() int {
	if c.DownThreshold <= 0 {
		return 4
	}
	return c.DownThreshold
}

func (c *HealthConfig) degraded() int {
	if c.DegradedThreshold > 0 {
		return c.DegradedThreshold
	}
	d := c.down() / 2
	if d < 1 {
		d = 1
	}
	return d
}

func (c *HealthConfig) probeInterval() time.Duration {
	if c.ProbeInterval <= 0 {
		return 50 * time.Millisecond
	}
	return c.ProbeInterval
}

func (c *HealthConfig) probeTimeout() time.Duration {
	if c.ProbeTimeout <= 0 {
		return 4 * c.probeInterval()
	}
	return c.ProbeTimeout
}

func (c *HealthConfig) retryBackoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return 200 * time.Millisecond
	}
	return c.RetryBackoff
}

func (c *HealthConfig) retryBackoffMax() time.Duration {
	if c.RetryBackoffMax <= 0 {
		return 2 * time.Second
	}
	return c.RetryBackoffMax
}

func (c *HealthConfig) probation() int {
	if c.ProbationProbes <= 0 {
		return 3
	}
	return c.ProbationProbes
}

// Event is one endpoint health transition, delivered to Table.OnEvent.
type Event struct {
	Endpoint string
	From, To Health
	At       time.Duration
	Detail   string
}

// endpointState is the per-endpoint health + counter block. The atomic
// counters are written by packet workers (Wrap/Route) and metrics
// pollers without the lock; everything else is guarded by Table.mu.
type endpointState struct {
	sent, bytes            atomic.Int64
	probesSent, probesLost atomic.Int64
	failedOver             atomic.Int64

	health Health
	// window bit i set = probe at ring slot i was lost (the supervisor's
	// bitmask ring, see middlebox/supervisor.go).
	window      uint64
	wpos, wfill int
	fails       int
	// srtt is the smoothed probe RTT (EWMA, gain 1/8).
	srtt time.Duration
	// backoff is the current down-state probe interval; doubles per
	// consecutive loss while down, capped.
	backoff time.Duration
	// probationLeft counts successes still needed to return to Healthy.
	probationLeft int
}

// push records one probe outcome into the sliding window and returns
// the loss count now in view.
func (st *endpointState) push(lost bool, size int) int {
	bit := uint64(1) << uint(st.wpos)
	if st.wfill == size {
		if st.window&bit != 0 {
			st.fails--
		}
	} else {
		st.wfill++
	}
	if lost {
		st.window |= bit
		st.fails++
	} else {
		st.window &^= bit
	}
	st.wpos = (st.wpos + 1) % size
	return st.fails
}

func (st *endpointState) clearWindow() {
	st.window, st.wpos, st.wfill, st.fails = 0, 0, 0, 0
}

// RecordProbe feeds one probe outcome into the endpoint's health ladder
// at simulated time now: ok with the measured rtt, or a loss. It is the
// raw entry point the Prober drives; tests and real daemons with their
// own probe transport call it directly. It returns the endpoint's
// health after the outcome.
func (t *Table) RecordProbe(name string, ok bool, rtt, now time.Duration) Health {
	t.mu.Lock()
	st := t.states[name]
	if st == nil {
		t.mu.Unlock()
		return Healthy
	}
	cfg := &t.Health
	prev := st.health
	st.probesSent.Add(1)
	detail := ""
	if ok {
		if st.srtt == 0 {
			st.srtt = rtt
		} else {
			st.srtt = (7*st.srtt + rtt) / 8
		}
		switch st.health {
		case Down:
			st.health = Probation
			st.probationLeft = cfg.probation() - 1
			detail = fmt.Sprintf("probe answered in %v", rtt)
		case Probation:
			st.probationLeft--
			detail = fmt.Sprintf("probation cleared (srtt %v)", st.srtt)
		default:
			fails := st.push(false, cfg.window())
			if st.health == Degraded && fails < cfg.degraded() {
				st.health = Healthy
				detail = fmt.Sprintf("loss cleared the window (srtt %v)", st.srtt)
			}
		}
		if st.health == Probation && st.probationLeft <= 0 {
			st.health = Healthy
			st.clearWindow()
			st.backoff = 0
		}
	} else {
		st.probesLost.Add(1)
		widen := func() {
			st.backoff *= 2
			if max := cfg.retryBackoffMax(); st.backoff > max {
				st.backoff = max
			}
		}
		switch st.health {
		case Probation:
			st.health = Down
			widen()
			detail = fmt.Sprintf("probe lost in probation, retry in %v", st.backoff)
		case Down:
			widen()
		default:
			fails := st.push(true, cfg.window())
			switch {
			case fails >= cfg.down():
				st.health = Down
				st.backoff = cfg.retryBackoff()
				st.clearWindow()
				detail = fmt.Sprintf("%d of last %d probes lost, retry in %v", fails, cfg.window(), st.backoff)
			case fails >= cfg.degraded() && st.health == Healthy:
				st.health = Degraded
				detail = fmt.Sprintf("%d of last %d probes lost", fails, cfg.window())
			}
		}
	}
	cur := st.health
	hook := t.OnEvent
	t.mu.Unlock()
	if cur != prev && hook != nil {
		hook(Event{Endpoint: name, From: prev, To: cur, At: now, Detail: detail})
	}
	return cur
}

// probeDelay returns how long the Prober should wait before the named
// endpoint's next probe: the configured interval, or the endpoint's
// current retry backoff while it is down.
func (t *Table) probeDelay(name string) time.Duration {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if st := t.states[name]; st != nil && st.health == Down && st.backoff > 0 {
		return st.backoff
	}
	return t.Health.probeInterval()
}

// Prober actively probes every endpoint of a Table on the netsim clock.
// Each endpoint's interdomain path is modelled by a netsim.FaultInjector
// (SetPath): a probe rides one Deliver through it, the delivery delay is
// the measured RTT, and a probe that does not arrive within the health
// config's ProbeTimeout counts as lost — drops and outage windows in
// the injector therefore surface as endpoint health, which is exactly
// how the table learns an endpoint died. Endpoints without a registered
// path answer instantly at their configured ExtraRTT (a perfect link).
//
// The Prober is single-goroutine: it runs entirely inside clock
// callbacks and must only be used from the clock-driving goroutine.
type Prober struct {
	tbl     *Table
	clock   *netsim.Clock
	paths   map[string]*netsim.FaultInjector
	running map[string]bool
	stopped bool
}

// NewProber builds a prober over tbl on clock.
func NewProber(tbl *Table, clock *netsim.Clock) *Prober {
	return &Prober{
		tbl:     tbl,
		clock:   clock,
		paths:   make(map[string]*netsim.FaultInjector),
		running: make(map[string]bool),
	}
}

// SetPath models the named endpoint's path with a fault injector. Fork
// one RNG per endpoint so fault sequences stay independent.
func (p *Prober) SetPath(name string, inj *netsim.FaultInjector) { p.paths[name] = inj }

// Path returns the injector modelling the named endpoint's path, or nil.
func (p *Prober) Path(name string) *netsim.FaultInjector { return p.paths[name] }

// Start begins a probe loop for every endpoint currently in the table
// (endpoints added later need another Start). The first probes fire
// immediately at the clock's current instant.
func (p *Prober) Start() {
	for _, name := range p.tbl.Names() {
		if !p.running[name] {
			p.running[name] = true
			p.loop(name)
		}
	}
}

// Stop halts probing; in-flight probe events become no-ops.
func (p *Prober) Stop() { p.stopped = true }

// loop fires one probe and schedules the next at the table's current
// cadence for this endpoint (interval, or down-state backoff).
func (p *Prober) loop(name string) {
	if p.stopped {
		return
	}
	p.probe(name)
	p.clock.Schedule(p.tbl.probeDelay(name), func() { p.loop(name) })
}

// probe sends one probe through the endpoint's path model.
func (p *Prober) probe(name string) {
	inj := p.paths[name]
	sentAt := p.clock.Now()
	if inj == nil {
		e := p.tbl.Endpoint(name)
		if e == nil {
			return
		}
		p.tbl.RecordProbe(name, true, e.ExtraRTT, sentAt)
		return
	}
	timeout := p.tbl.Health.probeTimeout()
	resolved := false
	inj.Deliver(p.clock, func() {
		if p.stopped || resolved {
			return
		}
		rtt := p.clock.Now() - sentAt
		if rtt >= timeout {
			// Arrived after the timeout already counted it lost.
			return
		}
		resolved = true
		p.tbl.RecordProbe(name, true, rtt, p.clock.Now())
	})
	p.clock.Schedule(timeout, func() {
		if p.stopped || resolved {
			return
		}
		resolved = true
		p.tbl.RecordProbe(name, false, 0, p.clock.Now())
	})
}
