package tunnel

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"pvn/internal/packet"
)

var (
	devAddr   = packet.MustParseIPv4("10.0.0.5")
	cloudAddr = packet.MustParseIPv4("198.51.100.50")
	homeAddr  = packet.MustParseIPv4("203.0.113.80")
)

func innerPacket(t *testing.T) []byte {
	t.Helper()
	ip := &packet.IPv4{Src: devAddr, Dst: packet.MustParseIPv4("93.184.216.34"), Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: 40000, DstPort: 443}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, tcp, packet.Payload("inner-payload"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestEncapDecapRoundTrip(t *testing.T) {
	inner := innerPacket(t)
	outer, err := Encap(inner, devAddr, cloudAddr, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(outer) != len(inner)+Overhead {
		t.Fatalf("overhead %d, want %d", len(outer)-len(inner), Overhead)
	}
	// The outer packet is a valid IPv4/UDP datagram.
	p := packet.Decode(outer, packet.LayerTypeIPv4)
	if p.IPv4().Dst != cloudAddr || p.UDP() == nil || p.UDP().DstPort != Port {
		t.Fatalf("outer stack %s", p)
	}

	got, id, err := Decap(outer)
	if err != nil {
		t.Fatal(err)
	}
	if id != 77 {
		t.Fatalf("tunnel id %d", id)
	}
	if !bytes.Equal(got, inner) {
		t.Fatal("inner packet corrupted")
	}
	// The inner packet still parses with valid checksums.
	ip := packet.Decode(got, packet.LayerTypeIPv4)
	if !ip.TCP().VerifyChecksum(ip.IPv4().LayerPayload()) {
		t.Fatal("inner checksum broken")
	}
}

func TestDecapRejectsNonTunnel(t *testing.T) {
	if _, _, err := Decap(innerPacket(t)); !errors.Is(err, ErrNotTunnel) {
		t.Fatalf("err=%v", err)
	}
	// Right port, wrong magic.
	ip := &packet.IPv4{Src: devAddr, Dst: cloudAddr, Protocol: packet.IPProtoUDP}
	udp := &packet.UDP{SrcPort: Port, DstPort: Port}
	udp.SetNetworkLayerForChecksum(ip)
	data, _ := packet.SerializeToBytes(ip, udp, packet.Payload("XXXXXXXXXXXX"))
	if _, _, err := Decap(data); !errors.Is(err, ErrNotTunnel) {
		t.Fatalf("bad magic err=%v", err)
	}
	// Truncated header.
	data2, _ := packet.SerializeToBytes(ip, udp, packet.Payload("PN"))
	if _, _, err := Decap(data2); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated err=%v", err)
	}
}

func TestTableWrapAndStats(t *testing.T) {
	tbl := NewTable(devAddr)
	tbl.Add(&Endpoint{Name: "cloud", Addr: cloudAddr, ExtraRTT: 20 * time.Millisecond, Trusted: true})
	inner := innerPacket(t)
	outer, e, err := tbl.Wrap("cloud", inner)
	if err != nil || e.Name != "cloud" {
		t.Fatal(err)
	}
	got, _, err := Decap(outer)
	if err != nil || !bytes.Equal(got, inner) {
		t.Fatal("wrap round trip failed")
	}
	if tbl.Sent("cloud") != 1 || tbl.Bytes("cloud") != int64(len(outer)) {
		t.Fatalf("stats %d/%d", tbl.Sent("cloud"), tbl.Bytes("cloud"))
	}
	st := tbl.Stats()
	if len(st.Endpoints) != 1 || st.Endpoints[0].Name != "cloud" || st.Endpoints[0].Sent != 1 {
		t.Fatalf("snapshot %+v", st)
	}
	if _, _, err := tbl.Wrap("ghost", inner); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
}

func TestNamesSorted(t *testing.T) {
	tbl := NewTable(devAddr)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		tbl.Add(&Endpoint{Name: n, Addr: cloudAddr})
	}
	got := tbl.Names()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("names %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names %v, want %v", got, want)
		}
	}
}

// TestTableConcurrency hammers the table from parallel goroutines under
// -race: packet workers (Wrap, Route), control plane (Add), probers
// (RecordProbe) and metrics pollers (Stats) all at once.
func TestTableConcurrency(t *testing.T) {
	tbl := NewTable(devAddr)
	tbl.Add(&Endpoint{Name: "cloud", Addr: cloudAddr, Trusted: true})
	tbl.Add(&Endpoint{Name: "home", Addr: homeAddr, Trusted: true})
	inner := innerPacket(t)
	flow, ok := packet.FlowOf(packet.Decode(inner, packet.LayerTypeIPv4))
	if !ok {
		t.Fatal("no flow in inner packet")
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(4)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if _, _, err := tbl.Wrap("cloud", inner); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tbl.Add(&Endpoint{Name: "home", Addr: homeAddr, Trusted: true})
				tbl.RecordProbe("home", i%7 != 0, time.Millisecond, time.Duration(i))
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if name, _ := tbl.Route("cloud", flow); name == "" {
					t.Error("route returned no endpoint")
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				st := tbl.Stats()
				if len(st.Endpoints) < 2 {
					t.Errorf("snapshot lost endpoints: %+v", st)
					return
				}
				tbl.Names()
				tbl.Sent("cloud")
				tbl.Bytes("cloud")
			}
		}()
	}
	wg.Wait()
	if got := tbl.Sent("cloud"); got != 4*500 {
		t.Fatalf("sent %d, want %d", got, 4*500)
	}
}

func TestTunnelIDsDistinguishEndpoints(t *testing.T) {
	tbl := NewTable(devAddr)
	tbl.Add(&Endpoint{Name: "cloud", Addr: cloudAddr})
	tbl.Add(&Endpoint{Name: "home", Addr: homeAddr})
	inner := innerPacket(t)
	o1, _, _ := tbl.Wrap("cloud", inner)
	o2, _, _ := tbl.Wrap("home", inner)
	_, id1, _ := Decap(o1)
	_, id2, _ := Decap(o2)
	if id1 == id2 {
		t.Fatal("endpoints share tunnel ID")
	}
}

func TestBestTrusted(t *testing.T) {
	tbl := NewTable(devAddr)
	tbl.Add(&Endpoint{Name: "home", Addr: homeAddr, ExtraRTT: 150 * time.Millisecond, Trusted: true})
	tbl.Add(&Endpoint{Name: "cloud", Addr: cloudAddr, ExtraRTT: 20 * time.Millisecond, Trusted: true})
	tbl.Add(&Endpoint{Name: "sketchy", Addr: cloudAddr, ExtraRTT: time.Millisecond, Trusted: false})
	best, ok := tbl.BestTrusted()
	if !ok || best.Name != "cloud" {
		t.Fatalf("best %+v", best)
	}

	empty := NewTable(devAddr)
	if _, ok := empty.BestTrusted(); ok {
		t.Fatal("trusted endpoint found in empty table")
	}
}

func TestNestedTunnel(t *testing.T) {
	// Tunnel-in-tunnel must round-trip (e.g. PVN over VPN).
	inner := innerPacket(t)
	mid, err := Encap(inner, devAddr, cloudAddr, 1)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := Encap(mid, devAddr, homeAddr, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, id2, err := Decap(outer)
	if err != nil || id2 != 2 {
		t.Fatal(err)
	}
	i, id1, err := Decap(m)
	if err != nil || id1 != 1 {
		t.Fatal(err)
	}
	if !bytes.Equal(i, inner) {
		t.Fatal("nested round trip corrupted")
	}
}
