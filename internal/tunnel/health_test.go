package tunnel

import (
	"testing"
	"time"

	"pvn/internal/netsim"
	"pvn/internal/packet"
)

func testFlow(port uint16) packet.Flow {
	return packet.Flow{
		Proto: packet.IPProtoTCP,
		Src:   packet.Endpoint{Addr: devAddr, Port: port},
		Dst:   packet.Endpoint{Addr: packet.MustParseIPv4("93.184.216.34"), Port: 443},
	}.Canonical()
}

// TestHealthLadder walks one endpoint healthy → degraded → down →
// probation → healthy via RecordProbe, checking transition events and
// backoff widening along the way.
func TestHealthLadder(t *testing.T) {
	tbl := NewTable(devAddr)
	tbl.Health = HealthConfig{
		Window: 8, DownThreshold: 4, DegradedThreshold: 2,
		RetryBackoff: 100 * time.Millisecond, RetryBackoffMax: 400 * time.Millisecond,
		ProbationProbes: 2,
	}
	var events []Event
	tbl.OnEvent = func(ev Event) { events = append(events, ev) }
	tbl.Add(&Endpoint{Name: "cloud", Addr: cloudAddr, Trusted: true})

	// Two losses: degraded.
	tbl.RecordProbe("cloud", false, 0, 1)
	if h := tbl.RecordProbe("cloud", false, 0, 2); h != Degraded {
		t.Fatalf("after 2 losses: %v", h)
	}
	// Two more: down, backoff at the initial retry interval.
	tbl.RecordProbe("cloud", false, 0, 3)
	if h := tbl.RecordProbe("cloud", false, 0, 4); h != Down {
		t.Fatalf("after 4 losses: %v", h)
	}
	if d := tbl.probeDelay("cloud"); d != 100*time.Millisecond {
		t.Fatalf("down backoff %v", d)
	}
	// Losses while down widen the backoff, capped.
	tbl.RecordProbe("cloud", false, 0, 5)
	tbl.RecordProbe("cloud", false, 0, 6)
	tbl.RecordProbe("cloud", false, 0, 7)
	if d := tbl.probeDelay("cloud"); d != 400*time.Millisecond {
		t.Fatalf("capped backoff %v, want 400ms", d)
	}
	// A success opens probation; a loss there goes straight back down.
	if h := tbl.RecordProbe("cloud", true, 10*time.Millisecond, 8); h != Probation {
		t.Fatalf("first success: %v", h)
	}
	if h := tbl.RecordProbe("cloud", false, 0, 9); h != Down {
		t.Fatalf("loss in probation: %v", h)
	}
	// Recovery: success, then the remaining probation probe.
	tbl.RecordProbe("cloud", true, 10*time.Millisecond, 10)
	if h := tbl.RecordProbe("cloud", true, 10*time.Millisecond, 11); h != Healthy {
		t.Fatalf("after probation: %v", h)
	}
	if d := tbl.probeDelay("cloud"); d != tbl.Health.probeInterval() {
		t.Fatalf("recovered cadence %v", d)
	}

	wantPath := []struct{ from, to Health }{
		{Healthy, Degraded}, {Degraded, Down}, {Down, Probation},
		{Probation, Down}, {Down, Probation}, {Probation, Healthy},
	}
	if len(events) != len(wantPath) {
		t.Fatalf("events %+v", events)
	}
	for i, w := range wantPath {
		if events[i].From != w.from || events[i].To != w.to {
			t.Fatalf("event %d = %v→%v, want %v→%v", i, events[i].From, events[i].To, w.from, w.to)
		}
	}
}

// TestHealthAwareBestTrusted: selection prefers healthy endpoints over
// degraded ones regardless of static RTT, and only returns a down
// endpoint when every trusted endpoint is dark.
func TestHealthAwareBestTrusted(t *testing.T) {
	tbl := NewTable(devAddr)
	tbl.Health = HealthConfig{Window: 8, DownThreshold: 2, DegradedThreshold: 1}
	tbl.Add(&Endpoint{Name: "cloud", Addr: cloudAddr, ExtraRTT: 20 * time.Millisecond, Trusted: true})
	tbl.Add(&Endpoint{Name: "home", Addr: homeAddr, ExtraRTT: 150 * time.Millisecond, Trusted: true})

	// Statically cloud wins.
	if best, _ := tbl.BestTrusted(); best.Name != "cloud" {
		t.Fatalf("static best %s", best.Name)
	}
	// One loss degrades cloud: home (healthy) now wins despite its RTT.
	tbl.RecordProbe("cloud", false, 0, 1)
	if best, _ := tbl.BestTrusted(); best.Name != "home" {
		t.Fatalf("degraded best %s", best.Name)
	}
	// Home down: degraded cloud wins again.
	tbl.RecordProbe("home", false, 0, 2)
	tbl.RecordProbe("home", false, 0, 3)
	if best, _ := tbl.BestTrusted(); best.Name != "cloud" {
		t.Fatalf("home-down best %s", best.Name)
	}
	// Everything down: fall back to the statically-best endpoint rather
	// than reporting none (a dark table still names a place to try).
	tbl.RecordProbe("cloud", false, 0, 4)
	best, ok := tbl.BestTrusted()
	if !ok || best.Name != "cloud" {
		t.Fatalf("all-down best %v %v", best, ok)
	}
}

// TestRouteFailover: flows pin to their endpoint and re-pin off it when
// it goes down; trusted flows never fail over to untrusted endpoints.
func TestRouteFailover(t *testing.T) {
	tbl := NewTable(devAddr)
	tbl.Health = HealthConfig{Window: 8, DownThreshold: 2}
	tbl.Add(&Endpoint{Name: "cloud", Addr: cloudAddr, ExtraRTT: 20 * time.Millisecond, Trusted: true})
	tbl.Add(&Endpoint{Name: "home", Addr: homeAddr, ExtraRTT: 150 * time.Millisecond, Trusted: true})
	tbl.Add(&Endpoint{Name: "sketchy", Addr: cloudAddr, ExtraRTT: time.Millisecond, Trusted: false})
	var moved []string
	tbl.OnFailover = func(f packet.Flow, from, to string) { moved = append(moved, from+"->"+to) }

	f1, f2 := testFlow(40000), testFlow(40001)
	if name, fo := tbl.Route("cloud", f1); name != "cloud" || fo {
		t.Fatalf("initial route %s %v", name, fo)
	}
	tbl.Route("cloud", f2)

	// Cloud dies: both flows re-pin to home — the trusted standby, not
	// the untrusted sketchy endpoint with the better RTT.
	tbl.RecordProbe("cloud", false, 0, 1)
	tbl.RecordProbe("cloud", false, 0, 2)
	if name, fo := tbl.Route("cloud", f1); name != "home" || !fo {
		t.Fatalf("failover route %s %v", name, fo)
	}
	if name, fo := tbl.Route("cloud", f2); name != "home" || !fo {
		t.Fatalf("failover route %s %v", name, fo)
	}
	// The pin is sticky: repeated routes stay on home without new
	// failovers, even after cloud recovers (no flap-back).
	if name, fo := tbl.Route("cloud", f1); name != "home" || fo {
		t.Fatalf("sticky route %s %v", name, fo)
	}
	tbl.RecordProbe("cloud", true, time.Millisecond, 3)
	if name, _ := tbl.Route("cloud", f1); name != "home" {
		t.Fatalf("flapped back to %s", name)
	}
	if tbl.Failovers() != 2 || len(moved) != 2 || moved[0] != "cloud->home" {
		t.Fatalf("failovers=%d moved=%v", tbl.Failovers(), moved)
	}
	if tbl.PinnedTo("home") != 2 {
		t.Fatalf("pinned to home: %d", tbl.PinnedTo("home"))
	}
	st := tbl.Stats()
	for _, e := range st.Endpoints {
		if e.Name == "cloud" && e.FailedOver != 2 {
			t.Fatalf("cloud failed-over count %d", e.FailedOver)
		}
	}

	// A flow pinned to a down endpoint with no trusted alternative stays
	// put rather than downgrading to sketchy.
	tbl.RecordProbe("cloud", false, 0, 4)
	tbl.RecordProbe("cloud", false, 0, 5)
	tbl.RecordProbe("home", false, 0, 6)
	tbl.RecordProbe("home", false, 0, 7)
	if name, fo := tbl.Route("cloud", f1); name != "home" || fo {
		t.Fatalf("trust downgrade: routed to %s (failover=%v)", name, fo)
	}
}

// TestProberDetectsOutage drives the full loop on the simulated clock:
// an injected outage window turns the endpoint Down after the probe
// timeouts accumulate, Route fails flows over, and the endpoint recovers
// through probation once the outage lifts.
func TestProberDetectsOutage(t *testing.T) {
	clock := &netsim.Clock{}
	tbl := NewTable(devAddr)
	tbl.Health = HealthConfig{
		Window: 8, DownThreshold: 2,
		ProbeInterval: 10 * time.Millisecond, ProbeTimeout: 20 * time.Millisecond,
		RetryBackoff: 20 * time.Millisecond, RetryBackoffMax: 40 * time.Millisecond,
		ProbationProbes: 1,
	}
	tbl.Add(&Endpoint{Name: "cloud", Addr: cloudAddr, ExtraRTT: 2 * time.Millisecond, Trusted: true})
	tbl.Add(&Endpoint{Name: "home", Addr: homeAddr, ExtraRTT: 5 * time.Millisecond, Trusted: true})

	p := NewProber(tbl, clock)
	rng := netsim.NewRNG(7)
	cloudPath := netsim.NewFaultInjector(netsim.FaultConfig{
		DelayMin: 2 * time.Millisecond, DelayMax: 2 * time.Millisecond,
		Outages: []netsim.Outage{{From: 100 * time.Millisecond, Until: 300 * time.Millisecond}},
	}, rng.Fork())
	p.SetPath("cloud", cloudPath)
	p.SetPath("home", netsim.NewFaultInjector(netsim.FaultConfig{
		DelayMin: 5 * time.Millisecond, DelayMax: 5 * time.Millisecond,
	}, rng.Fork()))
	p.Start()

	clock.RunUntil(90 * time.Millisecond)
	if h := tbl.EndpointHealth("cloud"); h != Healthy {
		t.Fatalf("pre-outage health %v", h)
	}
	if st := tbl.Stats(); st.Endpoints[0].SRTT != 2*time.Millisecond {
		t.Fatalf("srtt %v", st.Endpoints[0].SRTT)
	}

	// Inside the outage, after two probe timeouts: down. First lost
	// probe fires at 100ms, times out at 120ms; second at 110ms→130ms.
	clock.RunUntil(140 * time.Millisecond)
	if h := tbl.EndpointHealth("cloud"); h != Down {
		t.Fatalf("mid-outage health %v", h)
	}
	f := testFlow(40000)
	if name, fo := tbl.Route("cloud", f); name != "home" || !fo {
		t.Fatalf("route during outage: %s %v", name, fo)
	}

	// After the outage the backoff-spaced probes bring it back.
	clock.RunUntil(500 * time.Millisecond)
	if h := tbl.EndpointHealth("cloud"); h != Healthy {
		t.Fatalf("post-outage health %v", h)
	}
	// The flow stays pinned to its standby (no flap-back)…
	if name, _ := tbl.Route("cloud", f); name != "home" {
		t.Fatal("flow flapped back")
	}
	// …but fresh flows use the recovered endpoint again.
	if name, _ := tbl.Route("cloud", testFlow(40001)); name != "cloud" {
		t.Fatal("fresh flow avoided recovered endpoint")
	}
	p.Stop()

	st := tbl.Stats()
	var cloud EndpointStats
	for _, e := range st.Endpoints {
		if e.Name == "cloud" {
			cloud = e
		}
	}
	if cloud.ProbesSent == 0 || cloud.ProbesLost == 0 {
		t.Fatalf("probe counters %+v", cloud)
	}
	if st.Failovers != 1 {
		t.Fatalf("failovers %d", st.Failovers)
	}
}
