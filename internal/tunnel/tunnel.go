// Package tunnel implements the VPN-style encapsulation PVNs fall back
// to when the access network offers no (or only partial) PVN support
// (§3.3 "coping with unavailability"), and the selective-redirection
// machinery of Fig 1(c): instead of tunneling everything, only the flows
// that need a trusted execution environment pay the interdomain detour.
//
// The wire format is IP-in-UDP: outer IPv4 + UDP(port 4754) + an 8-byte
// tunnel header (magic, version, tunnel ID) + the inner IPv4 packet.
package tunnel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"pvn/internal/packet"
)

// Port is the UDP port tunnels run over.
const Port = 4754

// headerLen is the tunnel header size after the UDP header.
const headerLen = 8

// magic identifies tunnel frames ("PN").
var magic = [2]byte{0x50, 0x4e}

// Overhead is the per-packet byte cost of tunneling: outer IPv4 (20) +
// UDP (8) + tunnel header.
const Overhead = 20 + 8 + headerLen

// Errors.
var (
	ErrNotTunnel = errors.New("tunnel: not a tunnel frame")
	ErrTruncated = errors.New("tunnel: truncated frame")
)

// Encap wraps an inner IPv4 packet for transport to a tunnel endpoint.
func Encap(inner []byte, outerSrc, outerDst packet.IPv4Address, tunnelID uint32) ([]byte, error) {
	hdr := make([]byte, headerLen)
	hdr[0], hdr[1] = magic[0], magic[1]
	hdr[2] = 1 // version
	binary.BigEndian.PutUint32(hdr[3:7], tunnelID)

	ip := &packet.IPv4{Src: outerSrc, Dst: outerDst, Protocol: packet.IPProtoUDP}
	udp := &packet.UDP{SrcPort: Port, DstPort: Port}
	udp.SetNetworkLayerForChecksum(ip)
	payload := append(hdr, inner...)
	return packet.SerializeToBytes(ip, udp, packet.Payload(payload))
}

// Decap unwraps a tunnel frame, returning the inner packet and tunnel ID.
func Decap(outer []byte) (inner []byte, tunnelID uint32, err error) {
	p := packet.Decode(outer, packet.LayerTypeIPv4)
	u := p.UDP()
	if u == nil || u.DstPort != Port {
		return nil, 0, ErrNotTunnel
	}
	payload := u.LayerPayload()
	if len(payload) < headerLen {
		return nil, 0, ErrTruncated
	}
	if payload[0] != magic[0] || payload[1] != magic[1] {
		return nil, 0, ErrNotTunnel
	}
	id := binary.BigEndian.Uint32(payload[3:7])
	return payload[headerLen:], id, nil
}

// Endpoint describes one place a PVN can tunnel to: a nearby
// PVN-supporting AS, a cloud VM, or the user's home network.
type Endpoint struct {
	// Name is the identifier PVNC tunnel actions reference.
	Name string
	// Addr is the endpoint's outer address.
	Addr packet.IPv4Address
	// ExtraRTT is the interdomain round-trip penalty relative to the
	// in-network path (§3.2: 10s of ms well connected, 100s poorly).
	ExtraRTT time.Duration
	// Trusted marks endpoints suitable for sensitive operations like
	// TLS interception (Fig 1c).
	Trusted bool
}

// Table holds a device's configured tunnel endpoints and usage counters.
type Table struct {
	// LocalAddr is the outer source address for encapsulation.
	LocalAddr packet.IPv4Address

	endpoints map[string]*Endpoint
	nextID    uint32
	ids       map[string]uint32

	// Stats per endpoint name.
	Sent  map[string]int64
	Bytes map[string]int64
}

// NewTable builds an empty tunnel table.
func NewTable(localAddr packet.IPv4Address) *Table {
	return &Table{
		LocalAddr: localAddr,
		endpoints: make(map[string]*Endpoint),
		ids:       make(map[string]uint32),
		Sent:      make(map[string]int64),
		Bytes:     make(map[string]int64),
	}
}

// Add registers an endpoint.
func (t *Table) Add(e *Endpoint) {
	t.endpoints[e.Name] = e
	if _, ok := t.ids[e.Name]; !ok {
		t.nextID++
		t.ids[e.Name] = t.nextID
	}
}

// Endpoint returns the named endpoint, or nil.
func (t *Table) Endpoint(name string) *Endpoint { return t.endpoints[name] }

// Names returns registered endpoint names (unordered).
func (t *Table) Names() []string {
	out := make([]string, 0, len(t.endpoints))
	for n := range t.endpoints {
		out = append(out, n)
	}
	return out
}

// Wrap encapsulates an inner packet toward the named endpoint and
// accounts it.
func (t *Table) Wrap(name string, inner []byte) ([]byte, *Endpoint, error) {
	e := t.endpoints[name]
	if e == nil {
		return nil, nil, fmt.Errorf("tunnel: unknown endpoint %q", name)
	}
	out, err := Encap(inner, t.LocalAddr, e.Addr, t.ids[name])
	if err != nil {
		return nil, nil, err
	}
	t.Sent[name]++
	t.Bytes[name] += int64(len(out))
	return out, e, nil
}

// BestTrusted returns the trusted endpoint with the lowest ExtraRTT — the
// "use active measurements to inform the costs of alternative locations"
// selection (§3.3), with measured cost standing in for probes. ok is
// false when no trusted endpoint exists.
func (t *Table) BestTrusted() (*Endpoint, bool) {
	var best *Endpoint
	for _, e := range t.endpoints {
		if !e.Trusted {
			continue
		}
		if best == nil || e.ExtraRTT < best.ExtraRTT ||
			(e.ExtraRTT == best.ExtraRTT && e.Name < best.Name) {
			best = e
		}
	}
	return best, best != nil
}
