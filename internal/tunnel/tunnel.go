// Package tunnel implements the VPN-style encapsulation PVNs fall back
// to when the access network offers no (or only partial) PVN support
// (§3.3 "coping with unavailability"), and the selective-redirection
// machinery of Fig 1(c): instead of tunneling everything, only the flows
// that need a trusted execution environment pay the interdomain detour.
//
// The wire format is IP-in-UDP: outer IPv4 + UDP(port 4754) + an 8-byte
// tunnel header (magic, version, tunnel ID) + the inner IPv4 packet.
//
// The Table carries per-endpoint health state fed by active probes (see
// health.go): endpoint selection and per-flow failover are health-aware,
// and the whole table is safe under concurrent sharded-dataplane workers
// (RWMutex for topology/health, atomics for the per-packet counters).
package tunnel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pvn/internal/packet"
)

// Port is the UDP port tunnels run over.
const Port = 4754

// headerLen is the tunnel header size after the UDP header.
const headerLen = 8

// magic identifies tunnel frames ("PN").
var magic = [2]byte{0x50, 0x4e}

// Overhead is the per-packet byte cost of tunneling: outer IPv4 (20) +
// UDP (8) + tunnel header.
const Overhead = 20 + 8 + headerLen

// Errors.
var (
	ErrNotTunnel = errors.New("tunnel: not a tunnel frame")
	ErrTruncated = errors.New("tunnel: truncated frame")
)

// Encap wraps an inner IPv4 packet for transport to a tunnel endpoint.
func Encap(inner []byte, outerSrc, outerDst packet.IPv4Address, tunnelID uint32) ([]byte, error) {
	hdr := make([]byte, headerLen)
	hdr[0], hdr[1] = magic[0], magic[1]
	hdr[2] = 1 // version
	binary.BigEndian.PutUint32(hdr[3:7], tunnelID)

	ip := &packet.IPv4{Src: outerSrc, Dst: outerDst, Protocol: packet.IPProtoUDP}
	udp := &packet.UDP{SrcPort: Port, DstPort: Port}
	udp.SetNetworkLayerForChecksum(ip)
	payload := append(hdr, inner...)
	return packet.SerializeToBytes(ip, udp, packet.Payload(payload))
}

// Decap unwraps a tunnel frame, returning the inner packet and tunnel ID.
func Decap(outer []byte) (inner []byte, tunnelID uint32, err error) {
	p := packet.Decode(outer, packet.LayerTypeIPv4)
	u := p.UDP()
	if u == nil || u.DstPort != Port {
		return nil, 0, ErrNotTunnel
	}
	payload := u.LayerPayload()
	if len(payload) < headerLen {
		return nil, 0, ErrTruncated
	}
	if payload[0] != magic[0] || payload[1] != magic[1] {
		return nil, 0, ErrNotTunnel
	}
	id := binary.BigEndian.Uint32(payload[3:7])
	return payload[headerLen:], id, nil
}

// Endpoint describes one place a PVN can tunnel to: a nearby
// PVN-supporting AS, a cloud VM, or the user's home network.
type Endpoint struct {
	// Name is the identifier PVNC tunnel actions reference.
	Name string
	// Addr is the endpoint's outer address.
	Addr packet.IPv4Address
	// ExtraRTT is the interdomain round-trip penalty relative to the
	// in-network path (§3.2: 10s of ms well connected, 100s poorly).
	// It is the selection cost until probes measure a real SRTT.
	ExtraRTT time.Duration
	// Trusted marks endpoints suitable for sensitive operations like
	// TLS interception (Fig 1c).
	Trusted bool
}

// Table holds a device's configured tunnel endpoints, their probed
// health, per-flow endpoint pins and usage counters.
//
// Concurrency: every method is safe for concurrent use. Wrap and Route
// are the hot paths (called per packet by dataplane workers) and take
// only the read lock in the common case; health transitions, Add and
// failover re-pins take the write lock. Set OnEvent/OnFailover before
// the table is shared.
type Table struct {
	// LocalAddr is the outer source address for encapsulation.
	LocalAddr packet.IPv4Address

	// Health tunes the probe-driven health ladder; the zero value is
	// live (see HealthConfig).
	Health HealthConfig
	// OnEvent, when set, receives endpoint health transitions. Called
	// outside the table lock; keep it cheap.
	OnEvent func(Event)
	// OnFailover, when set, observes each flow re-pinned off an
	// unhealthy endpoint — the redirection decisions an auditor ledger
	// records. Called outside the table lock.
	OnFailover func(flow packet.Flow, from, to string)

	mu        sync.RWMutex
	endpoints map[string]*Endpoint
	nextID    uint32
	ids       map[string]uint32
	states    map[string]*endpointState
	pins      map[packet.Flow]string

	failovers atomic.Int64
}

// NewTable builds an empty tunnel table.
func NewTable(localAddr packet.IPv4Address) *Table {
	return &Table{
		LocalAddr: localAddr,
		endpoints: make(map[string]*Endpoint),
		ids:       make(map[string]uint32),
		states:    make(map[string]*endpointState),
		pins:      make(map[packet.Flow]string),
	}
}

// Add registers an endpoint (replacing any previous definition of the
// same name; its ID, counters and health carry over).
func (t *Table) Add(e *Endpoint) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.endpoints[e.Name] = e
	if _, ok := t.ids[e.Name]; !ok {
		t.nextID++
		t.ids[e.Name] = t.nextID
	}
	if t.states[e.Name] == nil {
		t.states[e.Name] = &endpointState{}
	}
}

// Endpoint returns the named endpoint, or nil.
func (t *Table) Endpoint(name string) *Endpoint {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.endpoints[name]
}

// Names returns registered endpoint names, sorted, so logs and
// map-iteration-dependent selection are deterministic across runs.
func (t *Table) Names() []string {
	t.mu.RLock()
	out := make([]string, 0, len(t.endpoints))
	for n := range t.endpoints {
		out = append(out, n)
	}
	t.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Wrap encapsulates an inner packet toward the named endpoint and
// accounts it.
func (t *Table) Wrap(name string, inner []byte) ([]byte, *Endpoint, error) {
	t.mu.RLock()
	e := t.endpoints[name]
	id := t.ids[name]
	st := t.states[name]
	t.mu.RUnlock()
	if e == nil {
		return nil, nil, fmt.Errorf("tunnel: unknown endpoint %q", name)
	}
	out, err := Encap(inner, t.LocalAddr, e.Addr, id)
	if err != nil {
		return nil, nil, err
	}
	st.sent.Add(1)
	st.bytes.Add(int64(len(out)))
	return out, e, nil
}

// Sent returns how many packets were wrapped toward the named endpoint.
func (t *Table) Sent(name string) int64 {
	t.mu.RLock()
	st := t.states[name]
	t.mu.RUnlock()
	if st == nil {
		return 0
	}
	return st.sent.Load()
}

// Bytes returns how many outer bytes were wrapped toward the named
// endpoint.
func (t *Table) Bytes(name string) int64 {
	t.mu.RLock()
	st := t.states[name]
	t.mu.RUnlock()
	if st == nil {
		return 0
	}
	return st.bytes.Load()
}

// BestTrusted returns the best trusted endpoint under the probed health
// ranking — the "use active measurements to inform the costs of
// alternative locations" selection (§3.3). Endpoints rank by health tier
// (healthy before degraded/recovering), then by smoothed probe RTT
// (falling back to the configured ExtraRTT when unprobed), with a
// deterministic name tie-break. Down endpoints are skipped unless every
// trusted endpoint is down, in which case the statically-best one is
// returned (a fully dark table still names a place to try). ok is false
// when no trusted endpoint exists.
func (t *Table) BestTrusted() (*Endpoint, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if e := t.bestLocked(true, true, ""); e != nil {
		return e, true
	}
	if e := t.bestLocked(true, false, ""); e != nil {
		return e, true
	}
	return nil, false
}

// bestLocked ranks endpoints under the lock. trustedOnly filters to
// trusted endpoints; skipDown excludes Down ones; exclude names one
// endpoint to avoid (the one being failed away from).
func (t *Table) bestLocked(trustedOnly, skipDown bool, exclude string) *Endpoint {
	var best *Endpoint
	var bestTier int
	var bestRTT time.Duration
	for name, e := range t.endpoints {
		if name == exclude || (trustedOnly && !e.Trusted) {
			continue
		}
		st := t.states[name]
		tier, rtt := 0, e.ExtraRTT
		if st != nil {
			tier = st.health.tier()
			if st.srtt > 0 {
				rtt = st.srtt
			}
		}
		if skipDown && tier >= downTier {
			continue
		}
		if best == nil || tier < bestTier || (tier == bestTier && (rtt < bestRTT ||
			(rtt == bestRTT && e.Name < best.Name))) {
			best, bestTier, bestRTT = e, tier, rtt
		}
	}
	return best
}

// Route resolves which endpoint a packet of flow should actually use
// when the PVNC requests one. Flows pin to their first endpoint (so a
// conversation does not flap between locations) and are re-pinned to
// the best surviving endpoint when the pinned one goes Down — the
// hot-standby failover of §3.3. A trusted endpoint only ever fails over
// to another trusted endpoint: redirection must not silently downgrade
// the trust the PVNC asked for. failedOver reports that this call moved
// the flow off an endpoint that is down.
func (t *Table) Route(requested string, flow packet.Flow) (name string, failedOver bool) {
	key := flow.Canonical()

	// Fast path: the pinned (or requested) endpoint is not down.
	t.mu.RLock()
	cur, pinned := t.pins[key]
	if !pinned {
		cur = requested
	}
	st := t.states[cur]
	alive := st == nil || st.health != Down
	t.mu.RUnlock()
	if pinned && alive {
		return cur, false
	}

	t.mu.Lock()
	// Re-read under the write lock: another worker may have re-pinned
	// this flow already.
	cur, pinned = t.pins[key]
	if !pinned {
		cur = requested
	}
	st = t.states[cur]
	if st == nil || st.health != Down {
		if !pinned && t.endpoints[cur] != nil {
			t.pins[key] = cur
		}
		t.mu.Unlock()
		return cur, false
	}
	from := t.endpoints[cur]
	trustedOnly := from != nil && from.Trusted
	alt := t.bestLocked(trustedOnly, true, cur)
	if alt == nil {
		// Nowhere acceptable to go: keep the pin and let the packet
		// take its chances on the dead endpoint.
		t.mu.Unlock()
		return cur, false
	}
	t.pins[key] = alt.Name
	st.failedOver.Add(1)
	t.failovers.Add(1)
	hook := t.OnFailover
	t.mu.Unlock()
	if hook != nil {
		hook(key, cur, alt.Name)
	}
	return alt.Name, true
}

// Failovers reports how many flow re-pins the table has performed.
func (t *Table) Failovers() int64 { return t.failovers.Load() }

// PinnedTo reports how many flows are currently pinned to the named
// endpoint.
func (t *Table) PinnedTo(name string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, ep := range t.pins {
		if ep == name {
			n++
		}
	}
	return n
}

// EndpointStats is a point-in-time copy of one endpoint's counters and
// health.
type EndpointStats struct {
	Name        string
	Sent, Bytes int64
	Health      Health
	// SRTT is the smoothed probe round-trip; zero until probed.
	SRTT time.Duration
	// ProbesSent/ProbesLost count health probes.
	ProbesSent, ProbesLost int64
	// FailedOver counts flows re-pinned away from this endpoint.
	FailedOver int64
}

// Stats is a snapshot of the whole table.
type Stats struct {
	// Endpoints are per-endpoint rows, sorted by name.
	Endpoints []EndpointStats
	// Failovers counts flow re-pins table-wide.
	Failovers int64
	// PinnedFlows is how many flows currently hold an endpoint pin.
	PinnedFlows int
}

// Stats returns a consistent snapshot of per-endpoint usage, health and
// failover counters. Safe to call from a metrics poller while workers
// Wrap/Route.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	out := Stats{
		Endpoints:   make([]EndpointStats, 0, len(t.endpoints)),
		Failovers:   t.failovers.Load(),
		PinnedFlows: len(t.pins),
	}
	for name := range t.endpoints {
		st := t.states[name]
		out.Endpoints = append(out.Endpoints, EndpointStats{
			Name:       name,
			Sent:       st.sent.Load(),
			Bytes:      st.bytes.Load(),
			Health:     st.health,
			SRTT:       st.srtt,
			ProbesSent: st.probesSent.Load(),
			ProbesLost: st.probesLost.Load(),
			FailedOver: st.failedOver.Load(),
		})
	}
	t.mu.RUnlock()
	sort.Slice(out.Endpoints, func(i, j int) bool { return out.Endpoints[i].Name < out.Endpoints[j].Name })
	return out
}

// EndpointHealth reports the probed health of the named endpoint
// (Healthy for unknown or never-probed endpoints).
func (t *Table) EndpointHealth(name string) Health {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if st := t.states[name]; st != nil {
		return st.health
	}
	return Healthy
}
