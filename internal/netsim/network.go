package netsim

import (
	"fmt"
	"sort"
	"time"
)

// Message is the unit netsim moves between nodes. The payload is opaque to
// the simulator; upper layers (packet, openflow, middlebox) put their own
// structures here. Size drives serialization delay on links.
type Message struct {
	// Size is the on-the-wire size in bytes. Must be >= 0; zero-size
	// messages still pay propagation delay but no serialization delay.
	Size int
	// Payload is interpreted only by node handlers.
	Payload interface{}
	// Src and Dst name the originating and target nodes; router nodes use
	// Dst for next-hop forwarding. They are conventions, not enforced.
	Src, Dst string
	// TraceID lets experiments correlate a message across hops.
	TraceID uint64
	// SentAt is stamped by Port.Send on first transmission.
	SentAt time.Duration
	// Hops counts link traversals, incremented on each delivery.
	Hops int
}

// Handler receives messages delivered to a node. in is the port the message
// arrived on (nil for locally injected messages).
type Handler func(n *Node, in *Port, msg *Message)

// LinkConfig describes a bidirectional link's characteristics. Each
// direction gets its own serialization pipeline with these parameters.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// BandwidthBps is the link rate in bits per second. Zero means
	// infinite (no serialization delay).
	BandwidthBps float64
	// LossRate is the independent per-message drop probability in [0,1].
	LossRate float64
	// Jitter is the standard deviation of Gaussian delay noise added to
	// propagation. Negative samples are clamped so delay never shrinks
	// below Latency/2.
	Jitter time.Duration
	// QueueBytes caps the transmit queue per direction. Zero means a
	// default of 256 KiB. Messages arriving at a full queue are dropped
	// (drop-tail).
	QueueBytes int
}

const defaultQueueBytes = 256 << 10

// PortStats counts traffic through one port (one direction of use).
type PortStats struct {
	TxMessages, TxBytes int64
	RxMessages, RxBytes int64
	QueueDrops          int64 // drop-tail losses
	RandomDrops         int64 // LossRate losses
}

// Port is one end of a link attached to a node.
type Port struct {
	node  *Node
	peer  *Port
	cfg   LinkConfig
	index int

	// busyUntil models the serialization pipeline: the time the last
	// queued byte finishes transmitting.
	busyUntil time.Duration
	// queuedBytes tracks bytes not yet on the wire, for drop-tail.
	queuedBytes int

	Stats PortStats
}

// Node returns the node this port is attached to.
func (p *Port) Node() *Node { return p.node }

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return p.peer }

// Index returns this port's index on its node.
func (p *Port) Index() int { return p.index }

// Config returns the link configuration for this direction.
func (p *Port) Config() LinkConfig { return p.cfg }

// SetConfig replaces this direction's link characteristics from the
// current instant onward: already-queued transmissions keep their old
// schedule, later sends use the new parameters. This models link-quality
// changes (signal fade, congestion onset) and provider reconfiguration.
// Call Network.ComputeRoutes afterwards if latency changes should affect
// routing.
func (p *Port) SetConfig(cfg LinkConfig) { p.cfg = cfg }

// Send transmits msg toward the peer port, modelling serialization delay,
// queueing, propagation, jitter and random loss. It returns false if the
// message was dropped at the queue.
func (p *Port) Send(msg *Message) bool {
	net := p.node.net
	now := net.Clock.Now()
	if msg.SentAt == 0 && msg.Hops == 0 {
		msg.SentAt = now
	}

	// Queueing and serialization only exist on rate-limited links; an
	// infinite-bandwidth link transmits instantly and never builds a queue.
	var done time.Duration
	if p.cfg.BandwidthBps > 0 {
		qcap := p.cfg.QueueBytes
		if qcap == 0 {
			qcap = defaultQueueBytes
		}
		if p.queuedBytes+msg.Size > qcap && p.queuedBytes > 0 {
			p.Stats.QueueDrops++
			return false
		}
		txDelay := time.Duration(float64(msg.Size*8) / p.cfg.BandwidthBps * float64(time.Second))
		start := p.busyUntil
		if start < now {
			start = now
		}
		done = start + txDelay
		p.busyUntil = done
		p.queuedBytes += msg.Size
		// Dequeue accounting happens when the message leaves the pipeline.
		net.Clock.At(done, func() {
			p.queuedBytes -= msg.Size
			if p.queuedBytes < 0 {
				p.queuedBytes = 0
			}
		})
	} else {
		done = now
	}
	p.Stats.TxMessages++
	p.Stats.TxBytes += int64(msg.Size)

	if net.rng.Bool(p.cfg.LossRate) {
		p.Stats.RandomDrops++
		return true // consumed link time, but never arrives
	}

	prop := p.cfg.Latency
	if p.cfg.Jitter > 0 {
		j := time.Duration(net.rng.Normal(0, float64(p.cfg.Jitter)))
		prop += j
		if prop < p.cfg.Latency/2 {
			prop = p.cfg.Latency / 2
		}
	}
	peer := p.peer
	net.Clock.At(done+prop, func() {
		msg.Hops++
		peer.Stats.RxMessages++
		peer.Stats.RxBytes += int64(msg.Size)
		if peer.node.Handler != nil {
			peer.node.Handler(peer.node, peer, msg)
		}
	})
	return true
}

// Node is a simulated host, switch or server.
type Node struct {
	ID      string
	Handler Handler
	net     *Network
	ports   []*Port

	// routes maps destination node ID -> local port index, built by
	// Network.ComputeRoutes.
	routes map[string]int
}

// Network returns the network this node belongs to.
func (n *Node) Network() *Network { return n.net }

// Ports returns the node's ports in attachment order.
func (n *Node) Ports() []*Port { return n.ports }

// Port returns the i'th port, or nil if out of range.
func (n *Node) Port(i int) *Port {
	if i < 0 || i >= len(n.ports) {
		return nil
	}
	return n.ports[i]
}

// PortTo returns the local port whose peer is node dst, or nil if the nodes
// are not directly connected.
func (n *Node) PortTo(dst string) *Port {
	for _, p := range n.ports {
		if p.peer.node.ID == dst {
			return p
		}
	}
	return nil
}

// RouteTo returns the port toward dst per the last ComputeRoutes call. It
// returns nil when no route is known.
func (n *Node) RouteTo(dst string) *Port {
	if n.routes == nil {
		return nil
	}
	i, ok := n.routes[dst]
	if !ok {
		return nil
	}
	return n.ports[i]
}

// Inject delivers msg to this node's handler at the current instant without
// traversing any link, as if generated locally.
func (n *Node) Inject(msg *Message) {
	n.net.Clock.Schedule(0, func() {
		if n.Handler != nil {
			n.Handler(n, nil, msg)
		}
	})
}

// Network owns the topology and the clock.
type Network struct {
	Clock *Clock
	rng   *RNG
	nodes map[string]*Node
	order []string // deterministic iteration order
}

// NewNetwork creates an empty network with its own clock, seeded for
// reproducible stochastic behaviour.
func NewNetwork(seed uint64) *Network {
	return &Network{
		Clock: &Clock{},
		rng:   NewRNG(seed),
		nodes: make(map[string]*Node),
	}
}

// RNG exposes the network's base generator, e.g. for workload generators
// that want draws correlated with the topology seed. Fork it rather than
// sharing it across subsystems.
func (net *Network) RNG() *RNG { return net.rng }

// AddNode creates a node with the given unique ID. It panics on duplicate
// IDs, which always indicate a topology construction bug.
func (net *Network) AddNode(id string) *Node {
	if _, dup := net.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %q", id))
	}
	n := &Node{ID: id, net: net}
	net.nodes[id] = n
	net.order = append(net.order, id)
	return n
}

// Node returns the node with the given ID, or nil.
func (net *Network) Node(id string) *Node { return net.nodes[id] }

// Nodes returns all nodes in creation order.
func (net *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(net.order))
	for _, id := range net.order {
		out = append(out, net.nodes[id])
	}
	return out
}

// Connect joins two nodes with a symmetric bidirectional link. Both
// directions share cfg. It returns the two new ports (a's, then b's).
func (net *Network) Connect(a, b *Node, cfg LinkConfig) (*Port, *Port) {
	return net.ConnectAsym(a, b, cfg, cfg)
}

// ConnectAsym joins two nodes with per-direction configurations: ab governs
// traffic a->b, ba governs b->a. Useful for asymmetric last-mile links.
func (net *Network) ConnectAsym(a, b *Node, ab, ba LinkConfig) (*Port, *Port) {
	if a.net != net || b.net != net {
		panic("netsim: Connect with node from another network")
	}
	pa := &Port{node: a, cfg: ab, index: len(a.ports)}
	pb := &Port{node: b, cfg: ba, index: len(b.ports)}
	pa.peer, pb.peer = pb, pa
	a.ports = append(a.ports, pa)
	b.ports = append(b.ports, pb)
	return pa, pb
}

// ComputeRoutes builds shortest-path next-hop tables for every node using
// link latency as the edge weight (ties broken by node creation order).
// Call it after the topology is final; call again if links change.
func (net *Network) ComputeRoutes() {
	for _, srcID := range net.order {
		src := net.nodes[srcID]
		src.routes = net.dijkstra(src)
	}
}

// dijkstra returns dst -> first-hop port index from src.
func (net *Network) dijkstra(src *Node) map[string]int {
	const inf = time.Duration(1<<62 - 1)
	dist := make(map[string]time.Duration, len(net.nodes))
	firstPort := make(map[string]int, len(net.nodes))
	for _, id := range net.order {
		dist[id] = inf
	}
	dist[src.ID] = 0

	visited := make(map[string]bool, len(net.nodes))
	for range net.order {
		// Extract the unvisited node with minimal distance,
		// deterministically (creation order breaks ties).
		cur := ""
		best := inf
		for _, id := range net.order {
			if !visited[id] && dist[id] < best {
				best, cur = dist[id], id
			}
		}
		if cur == "" {
			break
		}
		visited[cur] = true
		n := net.nodes[cur]
		for _, p := range n.ports {
			peer := p.peer.node
			w := p.cfg.Latency
			if w <= 0 {
				w = time.Nanosecond // keep paths strictly increasing
			}
			nd := dist[cur] + w
			if nd < dist[peer.ID] {
				dist[peer.ID] = nd
				if cur == src.ID {
					firstPort[peer.ID] = p.index
				} else {
					firstPort[peer.ID] = firstPort[cur]
				}
			}
		}
	}
	delete(firstPort, src.ID)
	return firstPort
}

// RouterHandler returns a Handler that forwards messages toward msg.Dst
// using the routing tables, delivering to fallback when the destination is
// this node or unroutable. It is the standard behaviour for backbone nodes.
func RouterHandler(fallback Handler) Handler {
	return func(n *Node, in *Port, msg *Message) {
		if msg.Dst == n.ID || msg.Dst == "" {
			if fallback != nil {
				fallback(n, in, msg)
			}
			return
		}
		if p := n.RouteTo(msg.Dst); p != nil {
			p.Send(msg)
			return
		}
		if fallback != nil {
			fallback(n, in, msg)
		}
	}
}

// PathLatency returns the summed one-way link latency on the current
// shortest path from src to dst, or -1 if unreachable. It is a pure
// topology query that does not account for queueing.
func (net *Network) PathLatency(srcID, dstID string) time.Duration {
	src := net.Node(srcID)
	if src == nil || net.Node(dstID) == nil {
		return -1
	}
	var total time.Duration
	cur := src
	seen := map[string]bool{}
	for cur.ID != dstID {
		if seen[cur.ID] {
			return -1
		}
		seen[cur.ID] = true
		p := cur.RouteTo(dstID)
		if p == nil {
			return -1
		}
		total += p.cfg.Latency
		cur = p.peer.node
	}
	return total
}

// TotalDrops sums queue and random drops across the whole network, a quick
// health indicator for experiments.
func (net *Network) TotalDrops() (queue, random int64) {
	for _, id := range net.order {
		for _, p := range net.nodes[id].ports {
			queue += p.Stats.QueueDrops
			random += p.Stats.RandomDrops
		}
	}
	return queue, random
}

// SortedNodeIDs returns node IDs sorted lexicographically, for stable test
// output.
func (net *Network) SortedNodeIDs() []string {
	ids := append([]string(nil), net.order...)
	sort.Strings(ids)
	return ids
}
