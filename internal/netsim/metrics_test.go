package netsim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.N() != 0 || d.Mean() != 0 || d.Median() != 0 || d.Min() != 0 || d.Max() != 0 || d.Stddev() != 0 {
		t.Fatal("empty Dist should report zeros everywhere")
	}
}

func TestDistBasicStats(t *testing.T) {
	var d Dist
	for _, v := range []float64{1, 2, 3, 4, 5} {
		d.Add(v)
	}
	if d.N() != 5 {
		t.Fatalf("N = %d", d.N())
	}
	if d.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", d.Mean())
	}
	if d.Median() != 3 {
		t.Fatalf("Median = %v, want 3", d.Median())
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	if got := d.Stddev(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("Stddev = %v, want sqrt(2)", got)
	}
}

func TestDistPercentileInterpolation(t *testing.T) {
	var d Dist
	for _, v := range []float64{10, 20, 30, 40} {
		d.Add(v)
	}
	if got := d.Percentile(0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := d.Percentile(100); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
	if got := d.Percentile(50); got != 25 {
		t.Fatalf("p50 = %v, want 25 (interpolated)", got)
	}
}

func TestDistAddAfterQuery(t *testing.T) {
	var d Dist
	d.Add(5)
	_ = d.Median() // forces sort
	d.Add(1)       // must invalidate sorted state
	if d.Min() != 1 {
		t.Fatalf("Min after late Add = %v, want 1", d.Min())
	}
}

func TestDistAddDuration(t *testing.T) {
	var d Dist
	d.AddDuration(250 * time.Millisecond)
	if d.Mean() != 250 {
		t.Fatalf("AddDuration stored %v, want 250 (ms)", d.Mean())
	}
}

func TestDistPercentileMonotonic(t *testing.T) {
	if err := quick.Check(func(vals []float64, seed uint64) bool {
		var d Dist
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Add(v)
		}
		if d.N() == 0 {
			return true
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := d.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistMatchesNaiveSort(t *testing.T) {
	r := NewRNG(3)
	var d Dist
	var raw []float64
	for i := 0; i < 1000; i++ {
		v := r.Float64() * 100
		d.Add(v)
		raw = append(raw, v)
	}
	sort.Float64s(raw)
	if d.Min() != raw[0] || d.Max() != raw[len(raw)-1] {
		t.Fatal("Min/Max disagree with naive sort")
	}
}

func TestDistStringNonEmpty(t *testing.T) {
	var d Dist
	d.Add(1)
	if s := d.String(); len(s) == 0 {
		t.Fatal("String() empty")
	}
}
