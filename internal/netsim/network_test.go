package netsim

import (
	"testing"
	"time"
)

// twoNodes builds a-b connected by cfg and returns the network and nodes.
func twoNodes(t *testing.T, cfg LinkConfig) (*Network, *Node, *Node) {
	t.Helper()
	net := NewNetwork(1)
	a := net.AddNode("a")
	b := net.AddNode("b")
	net.Connect(a, b, cfg)
	return net, a, b
}

func TestLinkPropagationDelay(t *testing.T) {
	net, a, b := twoNodes(t, LinkConfig{Latency: 10 * time.Millisecond})
	var arrived time.Duration = -1
	b.Handler = func(n *Node, in *Port, msg *Message) { arrived = net.Clock.Now() }
	a.Port(0).Send(&Message{Size: 100})
	net.Clock.Run()
	if arrived != 10*time.Millisecond {
		t.Fatalf("arrival at %v, want 10ms (propagation only, infinite bandwidth)", arrived)
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	// 1000 bytes at 8000 bps = 8000 bits / 8000 bps = 1s serialization.
	net, a, b := twoNodes(t, LinkConfig{Latency: 0, BandwidthBps: 8000})
	var arrived time.Duration = -1
	b.Handler = func(n *Node, in *Port, msg *Message) { arrived = net.Clock.Now() }
	a.Port(0).Send(&Message{Size: 1000})
	net.Clock.Run()
	if arrived != time.Second {
		t.Fatalf("arrival at %v, want 1s serialization", arrived)
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	// Two 1000-byte messages on a 8000 bps link: second finishes at 2s.
	net, a, b := twoNodes(t, LinkConfig{Latency: 0, BandwidthBps: 8000, QueueBytes: 1 << 20})
	var arrivals []time.Duration
	b.Handler = func(n *Node, in *Port, msg *Message) { arrivals = append(arrivals, net.Clock.Now()) }
	a.Port(0).Send(&Message{Size: 1000})
	a.Port(0).Send(&Message{Size: 1000})
	net.Clock.Run()
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals, want 2", len(arrivals))
	}
	if arrivals[0] != time.Second || arrivals[1] != 2*time.Second {
		t.Fatalf("arrivals %v, want [1s 2s]", arrivals)
	}
}

func TestLinkQueueDrop(t *testing.T) {
	// Tiny queue: the first message occupies the pipeline, the second
	// queues, further sends must drop.
	net, a, b := twoNodes(t, LinkConfig{Latency: 0, BandwidthBps: 8000, QueueBytes: 1500})
	delivered := 0
	b.Handler = func(n *Node, in *Port, msg *Message) { delivered++ }
	ok1 := a.Port(0).Send(&Message{Size: 1000})
	ok2 := a.Port(0).Send(&Message{Size: 1000}) // 2000 > 1500 while first queued
	if !ok1 {
		t.Fatal("first send dropped unexpectedly")
	}
	if ok2 {
		t.Fatal("second send accepted but queue should be full")
	}
	net.Clock.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if a.Port(0).Stats.QueueDrops != 1 {
		t.Fatalf("QueueDrops = %d, want 1", a.Port(0).Stats.QueueDrops)
	}
}

func TestLinkQueueDrainsOverTime(t *testing.T) {
	net, a, b := twoNodes(t, LinkConfig{Latency: 0, BandwidthBps: 8000, QueueBytes: 1500})
	delivered := 0
	b.Handler = func(n *Node, in *Port, msg *Message) { delivered++ }
	a.Port(0).Send(&Message{Size: 1000})
	net.Clock.Run() // drain completely
	if !a.Port(0).Send(&Message{Size: 1000}) {
		t.Fatal("send after drain was dropped")
	}
	net.Clock.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
}

func TestLinkLossRate(t *testing.T) {
	net, a, b := twoNodes(t, LinkConfig{Latency: time.Millisecond, LossRate: 0.5})
	delivered := 0
	b.Handler = func(n *Node, in *Port, msg *Message) { delivered++ }
	const sent = 10000
	for i := 0; i < sent; i++ {
		a.Port(0).Send(&Message{Size: 100})
	}
	net.Clock.Run()
	frac := float64(delivered) / sent
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("delivery fraction %.3f with 50%% loss, want ~0.5", frac)
	}
	if a.Port(0).Stats.RandomDrops != int64(sent-delivered) {
		t.Fatalf("RandomDrops = %d, want %d", a.Port(0).Stats.RandomDrops, sent-delivered)
	}
}

func TestLinkStatsCounters(t *testing.T) {
	net, a, b := twoNodes(t, LinkConfig{Latency: time.Millisecond})
	b.Handler = func(n *Node, in *Port, msg *Message) {}
	a.Port(0).Send(&Message{Size: 123})
	a.Port(0).Send(&Message{Size: 77})
	net.Clock.Run()
	sa, sb := a.Port(0).Stats, b.Port(0).Stats
	if sa.TxMessages != 2 || sa.TxBytes != 200 {
		t.Fatalf("tx stats = %+v, want 2 msgs / 200 bytes", sa)
	}
	if sb.RxMessages != 2 || sb.RxBytes != 200 {
		t.Fatalf("rx stats = %+v, want 2 msgs / 200 bytes", sb)
	}
}

func TestMessageHopsAndSentAt(t *testing.T) {
	net := NewNetwork(1)
	a := net.AddNode("a")
	m := net.AddNode("m")
	b := net.AddNode("b")
	net.Connect(a, m, LinkConfig{Latency: time.Millisecond})
	net.Connect(m, b, LinkConfig{Latency: time.Millisecond})
	net.ComputeRoutes()
	m.Handler = RouterHandler(nil)
	var got *Message
	b.Handler = func(n *Node, in *Port, msg *Message) { got = msg }

	net.Clock.Schedule(5*time.Millisecond, func() {
		msg := &Message{Size: 10, Src: "a", Dst: "b"}
		a.Port(0).Send(msg)
	})
	net.Clock.Run()
	if got == nil {
		t.Fatal("message never arrived")
	}
	if got.Hops != 2 {
		t.Fatalf("Hops = %d, want 2", got.Hops)
	}
	if got.SentAt != 5*time.Millisecond {
		t.Fatalf("SentAt = %v, want 5ms", got.SentAt)
	}
}

func TestComputeRoutesShortestPath(t *testing.T) {
	// Triangle where the direct a-b edge is slower than a-c-b.
	net := NewNetwork(1)
	a := net.AddNode("a")
	b := net.AddNode("b")
	c := net.AddNode("c")
	net.Connect(a, b, LinkConfig{Latency: 100 * time.Millisecond})
	net.Connect(a, c, LinkConfig{Latency: 10 * time.Millisecond})
	net.Connect(c, b, LinkConfig{Latency: 10 * time.Millisecond})
	net.ComputeRoutes()

	p := a.RouteTo("b")
	if p == nil || p.Peer().Node().ID != "c" {
		t.Fatalf("route a->b goes via %v, want c", p.Peer().Node().ID)
	}
	if got := net.PathLatency("a", "b"); got != 20*time.Millisecond {
		t.Fatalf("PathLatency(a,b) = %v, want 20ms", got)
	}
}

func TestPathLatencyUnreachable(t *testing.T) {
	net := NewNetwork(1)
	net.AddNode("a")
	net.AddNode("b")
	net.ComputeRoutes()
	if got := net.PathLatency("a", "b"); got != -1 {
		t.Fatalf("PathLatency disconnected = %v, want -1", got)
	}
	if got := net.PathLatency("a", "missing"); got != -1 {
		t.Fatalf("PathLatency to unknown node = %v, want -1", got)
	}
}

func TestRouterHandlerFallback(t *testing.T) {
	net, a, b := twoNodes(t, LinkConfig{Latency: time.Millisecond})
	local := 0
	b.Handler = RouterHandler(func(n *Node, in *Port, msg *Message) { local++ })
	a.Port(0).Send(&Message{Size: 1, Dst: "b"})
	a.Port(0).Send(&Message{Size: 1, Dst: ""}) // empty dst -> local
	net.Clock.Run()
	if local != 2 {
		t.Fatalf("fallback handled %d messages, want 2", local)
	}
}

func TestInjectDeliversLocally(t *testing.T) {
	net := NewNetwork(1)
	a := net.AddNode("a")
	var got *Message
	a.Handler = func(n *Node, in *Port, msg *Message) {
		if in != nil {
			t.Error("injected message has non-nil inbound port")
		}
		got = msg
	}
	a.Inject(&Message{Payload: "hello"})
	net.Clock.Run()
	if got == nil || got.Payload != "hello" {
		t.Fatalf("inject delivered %+v", got)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	net := NewNetwork(1)
	net.AddNode("x")
	net.AddNode("x")
}

func TestConnectAsym(t *testing.T) {
	net := NewNetwork(1)
	a := net.AddNode("a")
	b := net.AddNode("b")
	net.ConnectAsym(a, b,
		LinkConfig{Latency: 5 * time.Millisecond},
		LinkConfig{Latency: 50 * time.Millisecond})
	var fwd, rev time.Duration
	b.Handler = func(n *Node, in *Port, msg *Message) {
		fwd = net.Clock.Now()
		in.Send(&Message{Size: 1})
	}
	a.Handler = func(n *Node, in *Port, msg *Message) { rev = net.Clock.Now() }
	a.Port(0).Send(&Message{Size: 1})
	net.Clock.Run()
	if fwd != 5*time.Millisecond {
		t.Fatalf("forward arrival %v, want 5ms", fwd)
	}
	if rev-fwd != 50*time.Millisecond {
		t.Fatalf("reverse leg took %v, want 50ms", rev-fwd)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, time.Duration) {
		net, a, b := twoNodes(t, LinkConfig{Latency: time.Millisecond, LossRate: 0.3, Jitter: 500 * time.Microsecond})
		var last time.Duration
		b.Handler = func(n *Node, in *Port, msg *Message) { last = net.Clock.Now() }
		for i := 0; i < 500; i++ {
			a.Port(0).Send(&Message{Size: 64})
		}
		net.Clock.Run()
		return b.Port(0).Stats.RxMessages, last
	}
	rx1, t1 := run()
	rx2, t2 := run()
	if rx1 != rx2 || t1 != t2 {
		t.Fatalf("same seed produced different outcomes: (%d,%v) vs (%d,%v)", rx1, t1, rx2, t2)
	}
}

func TestAccessTopologyRoutes(t *testing.T) {
	top := NewAccessTopology(AccessTopologyConfig{Seed: 1})
	var arrived bool
	top.Server.Handler = func(n *Node, in *Port, msg *Message) { arrived = true }
	top.Device.Port(0).Send(&Message{Size: 100, Src: "device", Dst: "server"})
	top.Net.Clock.Run()
	if !arrived {
		t.Fatal("device->server message never arrived through transit nodes")
	}
	// Path through pvn-host must be far cheaper than through cloud-host.
	inNet := top.Net.PathLatency("device", "pvn-host")
	cloud := top.Net.PathLatency("device", "cloud-host")
	if inNet <= 0 || cloud <= 0 {
		t.Fatalf("unexpected path latencies inNet=%v cloud=%v", inNet, cloud)
	}
	if cloud < 2*inNet {
		t.Fatalf("cloud path (%v) should cost far more than in-network path (%v)", cloud, inNet)
	}
}

func TestStarTopology(t *testing.T) {
	net, _, leaves := NewStarTopology(1, 5, LinkConfig{Latency: time.Millisecond})
	got := 0
	leaves[4].Handler = func(n *Node, in *Port, msg *Message) { got++ }
	leaves[0].Port(0).Send(&Message{Size: 1, Dst: "leaf4"})
	net.Clock.Run()
	if got != 1 {
		t.Fatal("leaf0->leaf4 via hub failed")
	}
}

func TestChainTopology(t *testing.T) {
	net, nodes := NewChainTopology(1, 5, LinkConfig{Latency: time.Millisecond})
	var hops int
	nodes[4].Handler = func(n *Node, in *Port, msg *Message) { hops = msg.Hops }
	nodes[0].Port(0).Send(&Message{Size: 1, Dst: "n4"})
	net.Clock.Run()
	if hops != 4 {
		t.Fatalf("chain traversal hops = %d, want 4", hops)
	}
	if got := net.PathLatency("n0", "n4"); got != 4*time.Millisecond {
		t.Fatalf("chain PathLatency = %v, want 4ms", got)
	}
}

func TestTotalDrops(t *testing.T) {
	net, a, b := twoNodes(t, LinkConfig{Latency: 0, BandwidthBps: 8000, QueueBytes: 1200, LossRate: 0})
	b.Handler = func(n *Node, in *Port, msg *Message) {}
	for i := 0; i < 5; i++ {
		a.Port(0).Send(&Message{Size: 1000})
	}
	net.Clock.Run()
	q, r := net.TotalDrops()
	if q == 0 {
		t.Fatal("expected queue drops with tiny queue")
	}
	if r != 0 {
		t.Fatalf("random drops = %d, want 0", r)
	}
}

func TestSetConfigMidSimulation(t *testing.T) {
	net, a, b := twoNodes(t, LinkConfig{Latency: 10 * time.Millisecond})
	var arrivals []time.Duration
	b.Handler = func(n *Node, in *Port, msg *Message) { arrivals = append(arrivals, net.Clock.Now()) }

	a.Port(0).Send(&Message{Size: 10})
	net.Clock.Run()
	// The link degrades (signal fade): later traffic is slower.
	a.Port(0).SetConfig(LinkConfig{Latency: 100 * time.Millisecond})
	net.Clock.Schedule(0, func() { a.Port(0).Send(&Message{Size: 10}) })
	net.Clock.Run()

	if len(arrivals) != 2 {
		t.Fatalf("arrivals %v", arrivals)
	}
	if arrivals[0] != 10*time.Millisecond {
		t.Fatalf("first arrival %v", arrivals[0])
	}
	if arrivals[1]-arrivals[0] != 100*time.Millisecond {
		t.Fatalf("second leg took %v, want 100ms after reconfig", arrivals[1]-arrivals[0])
	}
	// Routing recomputation picks up new latencies.
	net.ComputeRoutes()
	if got := net.PathLatency("a", "b"); got != 100*time.Millisecond {
		t.Fatalf("path latency %v after reconfig", got)
	}
}
