package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Dist accumulates scalar samples and answers summary-statistics queries.
// Experiments use it for latencies, throughputs and detection scores. The
// zero value is ready to use.
type Dist struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add records one sample.
func (d *Dist) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
	d.sum += v
}

// AddDuration records a duration sample in milliseconds, the unit all
// latency experiments report in.
func (d *Dist) AddDuration(v time.Duration) {
	d.Add(float64(v) / float64(time.Millisecond))
}

// N returns the number of samples.
func (d *Dist) N() int { return len(d.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / float64(len(d.samples))
}

// Stddev returns the population standard deviation.
func (d *Dist) Stddev() float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	m := d.Mean()
	var ss float64
	for _, v := range d.samples {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(n))
}

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Percentile returns the p'th percentile (0 <= p <= 100) using
// nearest-rank interpolation, or 0 with no samples.
func (d *Dist) Percentile(p float64) float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	d.ensureSorted()
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return d.samples[n-1]
	}
	return d.samples[lo]*(1-frac) + d.samples[lo+1]*frac
}

// Median is Percentile(50).
func (d *Dist) Median() float64 { return d.Percentile(50) }

// Min returns the smallest sample, or 0 with no samples.
func (d *Dist) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (d *Dist) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[len(d.samples)-1]
}

// String renders a one-line summary suitable for experiment output.
func (d *Dist) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f min=%.2f max=%.2f",
		d.N(), d.Mean(), d.Percentile(50), d.Percentile(95), d.Percentile(99), d.Min(), d.Max())
}
