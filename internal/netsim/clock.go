// Package netsim implements a deterministic discrete-event network
// simulator. It is the substrate every PVN experiment runs on: simulated
// hosts, switches, middlebox servers and ISP backbones are netsim Nodes
// joined by Links with configurable latency, bandwidth, queueing and loss.
//
// All simulated time is owned by a Clock. Nothing in the simulation path
// reads the wall clock, so runs are reproducible bit-for-bit given the same
// seed, and benchmarks can simulate minutes of traffic in milliseconds.
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a discrete-event scheduler. The zero value is ready to use and
// starts at simulated time zero.
type Clock struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	// running guards against re-entrant Run calls from event handlers.
	running bool
}

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so execution order is deterministic (FIFO).
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Schedule runs fn after delay d of simulated time. A negative delay is
// treated as zero (run at the current instant, after already-queued events
// for this instant).
func (c *Clock) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.At(c.now+d, fn)
}

// At runs fn at absolute simulated time t. Scheduling in the past is an
// error in simulation logic; it is clamped to "now" to keep time monotonic.
func (c *Clock) At(t time.Duration, fn func()) {
	if t < c.now {
		t = c.now
	}
	c.seq++
	heap.Push(&c.events, event{at: t, seq: c.seq, fn: fn})
}

// Pending reports the number of events waiting to run.
func (c *Clock) Pending() int { return len(c.events) }

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (c *Clock) Step() bool {
	if len(c.events) == 0 {
		return false
	}
	e := heap.Pop(&c.events).(event)
	c.now = e.at
	e.fn()
	return true
}

// Run executes events until none remain. It panics if called re-entrantly
// from within an event handler.
func (c *Clock) Run() {
	c.RunUntil(1<<62 - 1)
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline if it has not already passed it. Events scheduled
// beyond the deadline remain queued.
func (c *Clock) RunUntil(deadline time.Duration) {
	if c.running {
		panic("netsim: re-entrant Clock.Run")
	}
	c.running = true
	defer func() { c.running = false }()
	for len(c.events) > 0 && c.events[0].at <= deadline {
		e := heap.Pop(&c.events).(event)
		c.now = e.at
		e.fn()
	}
	if c.now < deadline && deadline < 1<<62-1 {
		c.now = deadline
	}
}

// RunFor executes events for d of simulated time from the current instant.
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now + d) }

// String implements fmt.Stringer for debugging.
func (c *Clock) String() string {
	return fmt.Sprintf("Clock(now=%v pending=%d)", c.now, len(c.events))
}
