package netsim

import "time"

// Link presets used across experiments. Bandwidths are bits per second.
// The values follow the qualitative classes the paper argues about:
// fixed-line ISP cores are fast and clean, wireless last miles are slower
// and lossier, and interdomain tunnels add tens to hundreds of
// milliseconds (§2.2, §3.2).
var (
	// GoodWiFi models a healthy home/office WLAN hop.
	GoodWiFi = LinkConfig{Latency: 3 * time.Millisecond, BandwidthBps: 100e6, LossRate: 0.001, Jitter: time.Millisecond}
	// PoorWiFi models a congested public hotspot.
	PoorWiFi = LinkConfig{Latency: 15 * time.Millisecond, BandwidthBps: 10e6, LossRate: 0.02, Jitter: 8 * time.Millisecond}
	// GoodCellular models a strong LTE connection.
	GoodCellular = LinkConfig{Latency: 25 * time.Millisecond, BandwidthBps: 30e6, LossRate: 0.005, Jitter: 5 * time.Millisecond}
	// PoorCellular models a weak or loaded cellular connection.
	PoorCellular = LinkConfig{Latency: 70 * time.Millisecond, BandwidthBps: 2e6, LossRate: 0.03, Jitter: 20 * time.Millisecond}
	// ISPCore models an intra-ISP backbone hop.
	ISPCore = LinkConfig{Latency: 2 * time.Millisecond, BandwidthBps: 10e9, LossRate: 0, Jitter: 0}
	// WideArea models the path from ISP edge to distant content servers.
	WideArea = LinkConfig{Latency: 40 * time.Millisecond, BandwidthBps: 1e9, LossRate: 0.0005, Jitter: 2 * time.Millisecond}
	// InterdomainGood models a tunnel to a well-connected nearby network
	// (the paper's "10s of ms" case, §3.2).
	InterdomainGood = LinkConfig{Latency: 20 * time.Millisecond, BandwidthBps: 500e6, LossRate: 0.001, Jitter: 2 * time.Millisecond}
	// InterdomainPoor models a tunnel to a poorly-connected network (the
	// paper's "100s of ms" case, §3.2).
	InterdomainPoor = LinkConfig{Latency: 150 * time.Millisecond, BandwidthBps: 50e6, LossRate: 0.01, Jitter: 20 * time.Millisecond}
)

// AccessTopology is the canonical experiment topology, following Fig 1(b):
//
//	Device --(last mile)-- AccessPoint -- ISPEdge -- ISPCoreNode -- Internet -- Server
//	                                        |                         |
//	                                     PVNHost                  CloudHost
//	                                                                  |
//	                                                              HomeHost
//
// PVNHost hangs off the ISP edge (in-network middlebox placement);
// CloudHost and HomeHost hang off the wide-area node and are only reachable
// by paying interdomain latency, which is what tunneling baselines do.
type AccessTopology struct {
	Net *Network

	Device      *Node
	AccessPoint *Node
	ISPEdge     *Node
	ISPCoreNode *Node
	Internet    *Node
	Server      *Node
	PVNHost     *Node
	CloudHost   *Node
	HomeHost    *Node
}

// AccessTopologyConfig parameterizes NewAccessTopology.
type AccessTopologyConfig struct {
	// Seed drives all stochastic behaviour in the topology's network.
	Seed uint64
	// LastMile is the device<->access point link. Defaults to GoodWiFi.
	LastMile LinkConfig
	// CloudTunnel is the internet<->cloud host link. Defaults to
	// InterdomainGood.
	CloudTunnel LinkConfig
	// HomeTunnel is the internet<->home host link. Defaults to
	// InterdomainPoor (residential uplinks are the slow case).
	HomeTunnel LinkConfig
	// WideAreaLink overrides the ISP core <-> internet link. Defaults to
	// WideArea.
	WideAreaLink LinkConfig
}

func (c *AccessTopologyConfig) applyDefaults() {
	zero := LinkConfig{}
	if c.LastMile == zero {
		c.LastMile = GoodWiFi
	}
	if c.CloudTunnel == zero {
		c.CloudTunnel = InterdomainGood
	}
	if c.HomeTunnel == zero {
		c.HomeTunnel = InterdomainPoor
	}
	if c.WideAreaLink == zero {
		c.WideAreaLink = WideArea
	}
}

// NewAccessTopology builds the canonical topology, computes routes, and
// installs RouterHandlers on the transit nodes. Endpoint nodes (Device,
// Server, PVNHost, CloudHost, HomeHost) have no handler; callers attach
// their own.
func NewAccessTopology(cfg AccessTopologyConfig) *AccessTopology {
	cfg.applyDefaults()
	net := NewNetwork(cfg.Seed)
	t := &AccessTopology{
		Net:         net,
		Device:      net.AddNode("device"),
		AccessPoint: net.AddNode("ap"),
		ISPEdge:     net.AddNode("isp-edge"),
		ISPCoreNode: net.AddNode("isp-core"),
		Internet:    net.AddNode("internet"),
		Server:      net.AddNode("server"),
		PVNHost:     net.AddNode("pvn-host"),
		CloudHost:   net.AddNode("cloud-host"),
		HomeHost:    net.AddNode("home-host"),
	}

	net.Connect(t.Device, t.AccessPoint, cfg.LastMile)
	net.Connect(t.AccessPoint, t.ISPEdge, ISPCore)
	net.Connect(t.ISPEdge, t.ISPCoreNode, ISPCore)
	net.Connect(t.ISPCoreNode, t.Internet, cfg.WideAreaLink)
	net.Connect(t.Internet, t.Server, LinkConfig{Latency: 2 * time.Millisecond, BandwidthBps: 10e9})
	// In-network middlebox host: one backbone hop from the edge.
	net.Connect(t.ISPEdge, t.PVNHost, LinkConfig{Latency: 500 * time.Microsecond, BandwidthBps: 10e9})
	// Off-network PVN hosts: interdomain cost applies.
	net.Connect(t.Internet, t.CloudHost, cfg.CloudTunnel)
	net.Connect(t.Internet, t.HomeHost, cfg.HomeTunnel)

	net.ComputeRoutes()

	for _, transit := range []*Node{t.AccessPoint, t.ISPEdge, t.ISPCoreNode, t.Internet} {
		transit.Handler = RouterHandler(nil)
	}
	return t
}

// NewStarTopology builds hub-and-spoke with n leaves, each connected to the
// hub by leafLink. Useful for discovery and scalability experiments.
// Leaves are named leaf0..leaf(n-1); the hub routes between them.
func NewStarTopology(seed uint64, n int, leafLink LinkConfig) (*Network, *Node, []*Node) {
	net := NewNetwork(seed)
	hub := net.AddNode("hub")
	leaves := make([]*Node, n)
	for i := range leaves {
		leaves[i] = net.AddNode("leaf" + itoa(i))
		net.Connect(leaves[i], hub, leafLink)
	}
	net.ComputeRoutes()
	hub.Handler = RouterHandler(nil)
	return net, hub, leaves
}

// NewDualStarTopology builds two hub-and-spoke clusters joined by one
// hub-to-hub bridge — the minimal topology with a partitionable cut.
// Severing the bridge (Port.SetConfig with LossRate 1 on both hub
// ports) splits the network into two islands; restoring it heals them.
// Leaves are named a0..a(nA-1) and b0..b(nB-1); both hubs route.
func NewDualStarTopology(seed uint64, nA, nB int, leafLink, bridge LinkConfig) (*Network, [2]*Node, [2][]*Node) {
	net := NewNetwork(seed)
	hubs := [2]*Node{net.AddNode("hub-a"), net.AddNode("hub-b")}
	var leaves [2][]*Node
	prefixes := [2]string{"a", "b"}
	counts := [2]int{nA, nB}
	for side := 0; side < 2; side++ {
		leaves[side] = make([]*Node, counts[side])
		for i := range leaves[side] {
			leaves[side][i] = net.AddNode(prefixes[side] + itoa(i))
			net.Connect(leaves[side][i], hubs[side], leafLink)
		}
	}
	net.Connect(hubs[0], hubs[1], bridge)
	net.ComputeRoutes()
	hubs[0].Handler = RouterHandler(nil)
	hubs[1].Handler = RouterHandler(nil)
	return net, hubs, leaves
}

// NewChainTopology builds n nodes in a line, all joined by link. Nodes are
// named n0..n(n-1); interior nodes route. Useful for path-inflation and
// middlebox-chain experiments.
func NewChainTopology(seed uint64, n int, link LinkConfig) (*Network, []*Node) {
	net := NewNetwork(seed)
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = net.AddNode("n" + itoa(i))
		if i > 0 {
			net.Connect(nodes[i-1], nodes[i], link)
		}
	}
	net.ComputeRoutes()
	for i := 1; i < n-1; i++ {
		nodes[i].Handler = RouterHandler(nil)
	}
	return net, nodes
}

// FleetTopology models a multi-host edge fleet: a core router, one
// aggregation switch per failure domain (rack/zone), and edge hosts
// spread round-robin across the domains. Racks sit at increasing
// distance from the core — domain d's uplink latency is (d+1)× the
// base — so hosts have heterogeneous delays for placement budgets.
type FleetTopology struct {
	Net  *Network
	Core *Node
	// Aggs[d] is failure domain d's aggregation switch.
	Aggs []*Node
	// Hosts[i] lives in failure domain HostDomain[i].
	Hosts      []*Node
	HostDomain []int

	hostDelay []time.Duration
}

// NewFleetTopology builds the fleet and computes routes. Core and
// aggregation switches route; hosts carry no handler (callers attach
// deployserver worlds or traffic sinks).
func NewFleetTopology(seed uint64, hosts, domains int, aggLink, hostLink LinkConfig) *FleetTopology {
	if domains < 1 {
		domains = 1
	}
	net := NewNetwork(seed)
	t := &FleetTopology{Net: net, Core: net.AddNode("core")}
	for d := 0; d < domains; d++ {
		agg := net.AddNode("rack" + itoa(d))
		up := aggLink
		up.Latency = aggLink.Latency * time.Duration(d+1)
		net.Connect(t.Core, agg, up)
		t.Aggs = append(t.Aggs, agg)
	}
	for i := 0; i < hosts; i++ {
		d := i % domains
		h := net.AddNode("host" + itoa(i))
		net.Connect(t.Aggs[d], h, hostLink)
		t.Hosts = append(t.Hosts, h)
		t.HostDomain = append(t.HostDomain, d)
		t.hostDelay = append(t.hostDelay, aggLink.Latency*time.Duration(d+1)+hostLink.Latency)
	}
	net.ComputeRoutes()
	t.Core.Handler = RouterHandler(nil)
	for _, agg := range t.Aggs {
		agg.Handler = RouterHandler(nil)
	}
	return t
}

// HostDelay is host i's one-way core→host propagation delay — the
// figure placement delay budgets are checked against.
func (t *FleetTopology) HostDelay(i int) time.Duration { return t.hostDelay[i] }

// itoa is a tiny allocation-free int formatter for node names.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}
