package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValueReady(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("zero clock Pending() = %d, want 0", c.Pending())
	}
}

func TestClockOrdering(t *testing.T) {
	var c Clock
	var got []int
	c.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	c.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	c.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if c.Now() != 30*time.Millisecond {
		t.Fatalf("Now() = %v, want 30ms", c.Now())
	}
}

func TestClockFIFOAtSameInstant(t *testing.T) {
	var c Clock
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	c.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestClockNestedScheduling(t *testing.T) {
	var c Clock
	var fired []string
	c.Schedule(time.Millisecond, func() {
		fired = append(fired, "outer")
		c.Schedule(time.Millisecond, func() {
			fired = append(fired, "inner")
		})
	})
	c.Run()
	if len(fired) != 2 || fired[0] != "outer" || fired[1] != "inner" {
		t.Fatalf("nested scheduling fired %v", fired)
	}
	if c.Now() != 2*time.Millisecond {
		t.Fatalf("Now() = %v, want 2ms", c.Now())
	}
}

func TestClockRunUntilLeavesLaterEvents(t *testing.T) {
	var c Clock
	ran := 0
	c.Schedule(time.Millisecond, func() { ran++ })
	c.Schedule(time.Hour, func() { ran++ })
	c.RunUntil(time.Second)
	if ran != 1 {
		t.Fatalf("ran %d events before deadline, want 1", ran)
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
	if c.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s (advanced to deadline)", c.Now())
	}
	c.Run()
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestClockPastSchedulingClamps(t *testing.T) {
	var c Clock
	c.Schedule(10*time.Millisecond, func() {})
	c.Run()
	fired := time.Duration(-1)
	c.At(time.Millisecond, func() { fired = c.Now() }) // in the past
	c.Run()
	if fired != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamped to 10ms", fired)
	}
}

func TestClockNegativeDelayClamps(t *testing.T) {
	var c Clock
	fired := false
	c.Schedule(-time.Second, func() { fired = true })
	c.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
}

func TestClockStep(t *testing.T) {
	var c Clock
	n := 0
	c.Schedule(time.Millisecond, func() { n++ })
	c.Schedule(2*time.Millisecond, func() { n++ })
	if !c.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if n != 1 {
		t.Fatalf("after one Step n = %d, want 1", n)
	}
	if !c.Step() || c.Step() {
		t.Fatal("Step sequence wrong")
	}
}

func TestClockReentrantRunPanics(t *testing.T) {
	var c Clock
	c.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		c.Run()
	})
	c.Run()
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs matched %d/100 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolFrequency(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency %.4f, want ~0.30", frac)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(50)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 48 || mean > 52 {
		t.Fatalf("Exp(50) sample mean %.2f, want ~50", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(17)
	var sum, ss float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
	}
	mean := sum / n
	r2 := NewRNG(17)
	for i := 0; i < n; i++ {
		v := r2.Normal(10, 2)
		ss += (v - mean) * (v - mean)
	}
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("Normal(10,2) mean %.3f, want ~10", mean)
	}
	sd := ss / n
	if sd < 3.6 || sd > 4.4 { // variance ~4
		t.Fatalf("Normal(10,2) variance %.3f, want ~4", sd)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Fork()
	// The child must not replay the parent's stream.
	p := NewRNG(99)
	p.Uint64() // consume the draw Fork used
	if child.Uint64() == p.Uint64() {
		// Matching once is possible but the streams should diverge.
		if child.Uint64() == p.Uint64() && child.Uint64() == p.Uint64() {
			t.Fatal("forked RNG correlates with parent stream")
		}
	}
}
