package netsim

import (
	"testing"
	"time"
)

func TestFaultInjectorDropRate(t *testing.T) {
	clock := &Clock{}
	inj := NewFaultInjector(FaultConfig{DropRate: 0.3}, NewRNG(7))
	delivered := 0
	const n = 10000
	for i := 0; i < n; i++ {
		inj.Deliver(clock, func() { delivered++ })
	}
	clock.Run()
	if inj.Stats.Sent != n {
		t.Fatalf("sent %d", inj.Stats.Sent)
	}
	got := float64(inj.Stats.Dropped) / n
	if got < 0.27 || got > 0.33 {
		t.Fatalf("drop rate %.3f, want ~0.30", got)
	}
	if int64(delivered) != inj.Stats.Delivered {
		t.Fatalf("delivered %d vs stats %d", delivered, inj.Stats.Delivered)
	}
}

func TestFaultInjectorDuplicates(t *testing.T) {
	clock := &Clock{}
	inj := NewFaultInjector(FaultConfig{DupRate: 1}, NewRNG(1))
	delivered := 0
	inj.Deliver(clock, func() { delivered++ })
	clock.Run()
	if delivered != 2 || inj.Stats.Duplicated != 1 {
		t.Fatalf("delivered=%d duplicated=%d", delivered, inj.Stats.Duplicated)
	}
}

func TestFaultInjectorDelayBounds(t *testing.T) {
	clock := &Clock{}
	cfg := FaultConfig{DelayMin: 10 * time.Millisecond, DelayMax: 50 * time.Millisecond}
	inj := NewFaultInjector(cfg, NewRNG(3))
	var at []time.Duration
	for i := 0; i < 200; i++ {
		inj.Deliver(clock, func() { at = append(at, clock.Now()) })
	}
	clock.Run()
	for _, d := range at {
		if d < cfg.DelayMin || d > cfg.DelayMax {
			t.Fatalf("delivery at %v outside [%v, %v]", d, cfg.DelayMin, cfg.DelayMax)
		}
	}
}

func TestFaultInjectorOutage(t *testing.T) {
	clock := &Clock{}
	inj := NewFaultInjector(FaultConfig{
		Outages: []Outage{{From: 100 * time.Millisecond, Until: 200 * time.Millisecond}},
	}, NewRNG(1))
	delivered := 0
	send := func() { inj.Deliver(clock, func() { delivered++ }) }
	clock.Schedule(50*time.Millisecond, send)  // before the crash
	clock.Schedule(150*time.Millisecond, send) // during
	clock.Schedule(250*time.Millisecond, send) // after restart
	clock.Run()
	if delivered != 2 || inj.Stats.OutageDrops != 1 {
		t.Fatalf("delivered=%d outageDrops=%d", delivered, inj.Stats.OutageDrops)
	}
}

// TestFaultInjectorOutageAtDelivery: the crash window is honoured at
// both ends of the hop — a message sent while the peer is up but whose
// delay lands inside the window is lost, because a crashed peer cannot
// process arrivals.
func TestFaultInjectorOutageAtDelivery(t *testing.T) {
	clock := &Clock{}
	inj := NewFaultInjector(FaultConfig{
		DelayMin: 20 * time.Millisecond,
		Outages:  []Outage{{From: 100 * time.Millisecond, Until: 200 * time.Millisecond}},
	}, NewRNG(1))
	delivered := 0
	send := func() { inj.Deliver(clock, func() { delivered++ }) }
	clock.Schedule(90*time.Millisecond, send)  // up at send, down at arrival
	clock.Schedule(150*time.Millisecond, send) // down at send
	clock.Schedule(250*time.Millisecond, send) // up at both ends
	clock.Run()
	if delivered != 1 || inj.Stats.OutageDrops != 2 {
		t.Fatalf("delivered=%d outageDrops=%d", delivered, inj.Stats.OutageDrops)
	}
	if inj.Stats.Delivered != 1 {
		t.Fatalf("Stats.Delivered=%d, want only copies actually handed over", inj.Stats.Delivered)
	}
}

func TestFaultInjectorDeterministic(t *testing.T) {
	run := func() []int64 {
		clock := &Clock{}
		inj := NewFaultInjector(FaultConfig{DropRate: 0.4, DupRate: 0.2, DelayMax: time.Millisecond}, NewRNG(42))
		for i := 0; i < 500; i++ {
			inj.Deliver(clock, func() {})
		}
		clock.Run()
		return []int64{inj.Stats.Dropped, inj.Stats.Duplicated, inj.Stats.Delivered}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged: %v vs %v", a, b)
		}
	}
}
