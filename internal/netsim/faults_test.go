package netsim

import (
	"testing"
	"time"
)

func TestFaultInjectorDropRate(t *testing.T) {
	clock := &Clock{}
	inj := NewFaultInjector(FaultConfig{DropRate: 0.3}, NewRNG(7))
	delivered := 0
	const n = 10000
	for i := 0; i < n; i++ {
		inj.Deliver(clock, func() { delivered++ })
	}
	clock.Run()
	if inj.Stats.Sent != n {
		t.Fatalf("sent %d", inj.Stats.Sent)
	}
	got := float64(inj.Stats.Dropped) / n
	if got < 0.27 || got > 0.33 {
		t.Fatalf("drop rate %.3f, want ~0.30", got)
	}
	if int64(delivered) != inj.Stats.Delivered {
		t.Fatalf("delivered %d vs stats %d", delivered, inj.Stats.Delivered)
	}
}

func TestFaultInjectorDuplicates(t *testing.T) {
	clock := &Clock{}
	inj := NewFaultInjector(FaultConfig{DupRate: 1}, NewRNG(1))
	delivered := 0
	inj.Deliver(clock, func() { delivered++ })
	clock.Run()
	if delivered != 2 || inj.Stats.Duplicated != 1 {
		t.Fatalf("delivered=%d duplicated=%d", delivered, inj.Stats.Duplicated)
	}
}

func TestFaultInjectorDelayBounds(t *testing.T) {
	clock := &Clock{}
	cfg := FaultConfig{DelayMin: 10 * time.Millisecond, DelayMax: 50 * time.Millisecond}
	inj := NewFaultInjector(cfg, NewRNG(3))
	var at []time.Duration
	for i := 0; i < 200; i++ {
		inj.Deliver(clock, func() { at = append(at, clock.Now()) })
	}
	clock.Run()
	for _, d := range at {
		if d < cfg.DelayMin || d > cfg.DelayMax {
			t.Fatalf("delivery at %v outside [%v, %v]", d, cfg.DelayMin, cfg.DelayMax)
		}
	}
}

func TestFaultInjectorOutage(t *testing.T) {
	clock := &Clock{}
	inj := NewFaultInjector(FaultConfig{
		Outages: []Outage{{From: 100 * time.Millisecond, Until: 200 * time.Millisecond}},
	}, NewRNG(1))
	delivered := 0
	send := func() { inj.Deliver(clock, func() { delivered++ }) }
	clock.Schedule(50*time.Millisecond, send)  // before the crash
	clock.Schedule(150*time.Millisecond, send) // during
	clock.Schedule(250*time.Millisecond, send) // after restart
	clock.Run()
	if delivered != 2 || inj.Stats.OutageDrops != 1 {
		t.Fatalf("delivered=%d outageDrops=%d", delivered, inj.Stats.OutageDrops)
	}
}

// TestFaultInjectorOutageAtDelivery: the crash window is honoured at
// both ends of the hop — a message sent while the peer is up but whose
// delay lands inside the window is lost, because a crashed peer cannot
// process arrivals.
func TestFaultInjectorOutageAtDelivery(t *testing.T) {
	clock := &Clock{}
	inj := NewFaultInjector(FaultConfig{
		DelayMin: 20 * time.Millisecond,
		Outages:  []Outage{{From: 100 * time.Millisecond, Until: 200 * time.Millisecond}},
	}, NewRNG(1))
	delivered := 0
	send := func() { inj.Deliver(clock, func() { delivered++ }) }
	clock.Schedule(90*time.Millisecond, send)  // up at send, down at arrival
	clock.Schedule(150*time.Millisecond, send) // down at send
	clock.Schedule(250*time.Millisecond, send) // up at both ends
	clock.Run()
	if delivered != 1 || inj.Stats.OutageDrops != 2 {
		t.Fatalf("delivered=%d outageDrops=%d", delivered, inj.Stats.OutageDrops)
	}
	if inj.Stats.Delivered != 1 {
		t.Fatalf("Stats.Delivered=%d, want only copies actually handed over", inj.Stats.Delivered)
	}
}

// TestFaultInjectorOutageComposition: two storms hitting the same link
// script overlapping, nested and adjacent crash windows. The composed
// semantics must be the union of the windows, the list must coalesce to
// a normalized form (no unbounded growth), and the delivery-time check
// must honour windows added after the initial config.
func TestFaultInjectorOutageComposition(t *testing.T) {
	ms := time.Millisecond
	inj := NewFaultInjector(FaultConfig{
		DelayMin: 10 * ms,
		Outages:  []Outage{{From: 100 * ms, Until: 400 * ms}},
	}, NewRNG(1))
	inj.AddOutage(Outage{From: 200 * ms, Until: 300 * ms}) // nested
	inj.AddOutage(Outage{From: 350 * ms, Until: 500 * ms}) // overlapping tail
	inj.AddOutage(Outage{From: 500 * ms, Until: 600 * ms}) // adjacent
	inj.AddOutage(Outage{From: 700 * ms, Until: 700 * ms}) // empty, dropped

	got := inj.Config().Outages
	if len(got) != 1 || got[0] != (Outage{From: 100 * ms, Until: 600 * ms}) {
		t.Fatalf("windows not coalesced: %v", got)
	}
	for _, c := range []struct {
		at   time.Duration
		down bool
	}{{50 * ms, false}, {100 * ms, true}, {250 * ms, true}, {399 * ms, true},
		{450 * ms, true}, {599 * ms, true}, {600 * ms, false}} {
		if inj.Down(c.at) != c.down {
			t.Fatalf("Down(%v) = %v, want %v", c.at, !c.down, c.down)
		}
	}

	// Delivery-time check across composed windows: a message sent just
	// before the union window whose 10ms delay lands inside it is lost;
	// one sent inside a gap that never existed (the seams at 300/350/500
	// are covered) is lost too; one sent after the union delivers.
	clock := &Clock{}
	delivered := 0
	send := func() { inj.Deliver(clock, func() { delivered++ }) }
	clock.Schedule(95*ms, send)  // up at send, arrival at 105ms is down
	clock.Schedule(495*ms, send) // seam between original windows: still down
	clock.Schedule(600*ms, send) // first instant after the union
	clock.Run()
	if delivered != 1 || inj.Stats.OutageDrops != 2 {
		t.Fatalf("delivered=%d outageDrops=%d, want 1/2", delivered, inj.Stats.OutageDrops)
	}
}

// TestFaultInjectorOutagePruning: a soak that keeps scripting outages
// must not accumulate windows forever — expired windows are pruned as
// the clock passes them, with no change in observable drop behaviour.
func TestFaultInjectorOutagePruning(t *testing.T) {
	clock := &Clock{}
	inj := NewFaultInjector(FaultConfig{DelayMin: time.Millisecond}, NewRNG(1))
	delivered, lost := 0, 0
	step := 10 * time.Millisecond
	for i := 0; i < 1000; i++ {
		at := time.Duration(i) * step
		clock.At(at, func() {
			// Each episode crashes the peer for the first half of its
			// window; sends during that half are lost, later sends land.
			inj.AddOutage(Outage{From: clock.Now(), Until: clock.Now() + step/2})
			inj.Deliver(clock, func() { delivered++ })
		})
		clock.At(at+step*3/4, func() {
			inj.Deliver(clock, func() { delivered++ })
		})
	}
	clock.Run()
	lost = int(inj.Stats.OutageDrops)
	if delivered != 1000 || lost != 1000 {
		t.Fatalf("delivered=%d lost=%d, want 1000/1000", delivered, lost)
	}
	if n := len(inj.Config().Outages); n > 2 {
		t.Fatalf("outage list grew to %d windows; expired windows must be pruned", n)
	}
}

// TestFaultInjectorConfigIsolated: Config returns a snapshot — mutating
// it must not change the injector, and AddOutage after the snapshot
// must not show through it.
func TestFaultInjectorConfigIsolated(t *testing.T) {
	ms := time.Millisecond
	inj := NewFaultInjector(FaultConfig{Outages: []Outage{{From: 10 * ms, Until: 20 * ms}}}, NewRNG(1))
	snap := inj.Config()
	snap.Outages[0] = Outage{From: 0, Until: 100 * ms}
	if inj.Down(5 * ms) {
		t.Fatal("mutating the Config snapshot changed the injector")
	}
	inj.AddOutage(Outage{From: 30 * ms, Until: 40 * ms})
	if len(snap.Outages) != 1 {
		t.Fatal("AddOutage visible through an earlier Config snapshot")
	}
}

func TestFaultInjectorDeterministic(t *testing.T) {
	run := func() []int64 {
		clock := &Clock{}
		inj := NewFaultInjector(FaultConfig{DropRate: 0.4, DupRate: 0.2, DelayMax: time.Millisecond}, NewRNG(42))
		for i := 0; i < 500; i++ {
			inj.Deliver(clock, func() {})
		}
		clock.Run()
		return []int64{inj.Stats.Dropped, inj.Stats.Duplicated, inj.Stats.Delivered}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged: %v vs %v", a, b)
		}
	}
}
