package netsim

import (
	"sort"
	"time"
)

// Control-plane fault injection (paper §3.3 "coping with unavailability"):
// the discovery/deployment exchanges ride links that drop, delay and
// duplicate messages, and providers crash and restart. FaultInjector
// models one direction of such a lossy control channel on the simulated
// clock; experiments wrap each DM/Offer/Deploy/ACK hop in one.

// Outage is a half-open window [From, Until) of simulated time during
// which the peer behind the injector is down: every message sent in the
// window is silently lost (a crashed provider neither receives nor
// answers).
type Outage struct {
	From, Until time.Duration
}

// FaultConfig parameterizes a faulty control channel.
type FaultConfig struct {
	// DropRate is the independent per-message loss probability in [0,1].
	DropRate float64
	// DupRate is the probability a message is delivered twice, each copy
	// with its own delay draw — retransmission buffers and route flaps
	// both produce this.
	DupRate float64
	// DelayMin/DelayMax bound the uniform per-delivery latency. Max < Min
	// is treated as a fixed DelayMin delay.
	DelayMin, DelayMax time.Duration
	// Outages are crash windows for the peer behind this channel.
	Outages []Outage
}

// FaultStats counts what the injector did, for experiment tables.
type FaultStats struct {
	Sent        int64 // messages offered to the channel
	Dropped     int64 // lost to DropRate
	OutageDrops int64 // lost to a crash window
	Duplicated  int64 // messages delivered twice
	Delivered   int64 // copies actually handed to the receiver
}

// FaultInjector applies FaultConfig to message deliveries. All
// randomness comes from the supplied RNG, so fault sequences are
// reproducible run-to-run for a given seed.
type FaultInjector struct {
	cfg   FaultConfig
	rng   *RNG
	Stats FaultStats
}

// NewFaultInjector builds an injector drawing from rng. A nil rng gets a
// fixed-seed generator, which is fine for single-injector tests but
// correlates draws across injectors — fork one RNG per direction.
func NewFaultInjector(cfg FaultConfig, rng *RNG) *FaultInjector {
	if rng == nil {
		rng = NewRNG(1)
	}
	cfg.Outages = mergeOutages(append([]Outage(nil), cfg.Outages...))
	return &FaultInjector{cfg: cfg, rng: rng}
}

// Config returns a copy of the injector's configuration. The Outages
// slice is copied too, so callers cannot mutate the injector's window
// list (or observe later AddOutage calls) through the return value.
func (f *FaultInjector) Config() FaultConfig {
	cfg := f.cfg
	cfg.Outages = append([]Outage(nil), f.cfg.Outages...)
	return cfg
}

// AddOutage adds a crash window. Outage windows are consulted at send
// and delivery time, so windows may be added while a simulation runs
// (e.g. an experiment scripting an endpoint failure mid-flight).
//
// The window list is kept normalized — sorted by start, with
// overlapping and adjacent windows coalesced — so two storms hitting
// the same link compose into one downtime interval instead of an
// ever-growing list: Down stays cheap and a long soak that keeps
// scripting outages does not accumulate memory.
func (f *FaultInjector) AddOutage(o Outage) {
	f.cfg.Outages = mergeOutages(append(f.cfg.Outages, o))
}

// mergeOutages normalizes a window list: empty windows dropped, the
// rest sorted by From and coalesced where they overlap or touch
// (half-open windows [a,b) and [b,c) cover [a,c) with no gap).
func mergeOutages(ws []Outage) []Outage {
	kept := ws[:0]
	for _, o := range ws {
		if o.Until > o.From {
			kept = append(kept, o)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].From < kept[j].From })
	out := kept[:0]
	for _, o := range kept {
		if n := len(out); n > 0 && o.From <= out[n-1].Until {
			if o.Until > out[n-1].Until {
				out[n-1].Until = o.Until
			}
			continue
		}
		out = append(out, o)
	}
	return out
}

// pruneOutages drops windows that ended at or before now. Safe because
// simulated time is monotonic and every Down check happens at a time
// >= the send instant: a window with Until <= now can never match
// again. Callers pass a clock-derived now (monotonic by construction).
func (f *FaultInjector) pruneOutages(now time.Duration) {
	ws := f.cfg.Outages
	i := 0
	for i < len(ws) && ws[i].Until <= now {
		i++
	}
	if i > 0 {
		f.cfg.Outages = append(ws[:0], ws[i:]...)
	}
}

// Down reports whether the peer is inside a crash window at now.
func (f *FaultInjector) Down(now time.Duration) bool {
	for _, o := range f.cfg.Outages {
		if o.From > now {
			return false // sorted: no later window can contain now
		}
		if now < o.Until {
			return true
		}
	}
	return false
}

// delay draws one uniform delivery latency.
func (f *FaultInjector) delay() time.Duration {
	if f.cfg.DelayMax <= f.cfg.DelayMin {
		return f.cfg.DelayMin
	}
	span := f.cfg.DelayMax - f.cfg.DelayMin
	return f.cfg.DelayMin + time.Duration(f.rng.Float64()*float64(span))
}

// Cut applies the channel's loss model to a synchronous exchange at
// time now: it reports true (and counts the loss) when the message
// would be dropped by an outage window or the drop rate. Callers whose
// request/response hop completes within one simulated instant — the
// core library's direct HandleDM/HandleDeploy calls — use Cut where
// Deliver's asynchronous scheduling has no clock to ride.
func (f *FaultInjector) Cut(now time.Duration) bool {
	f.pruneOutages(now)
	f.Stats.Sent++
	if f.Down(now) {
		f.Stats.OutageDrops++
		return true
	}
	if f.rng.Bool(f.cfg.DropRate) {
		f.Stats.Dropped++
		return true
	}
	f.Stats.Delivered++
	return false
}

// Deliver offers one message to the channel at the clock's current
// instant: it may be dropped (loss or outage), delayed, or delivered
// twice. Each surviving copy invokes deliver on the clock after its own
// latency draw. The message itself is opaque — callers close over it.
// The outage check runs at both ends of the hop: a peer that is down
// when the message is sent never receives it, and a message whose delay
// lands inside a crash window is lost too (a crashed peer cannot
// process arrivals).
func (f *FaultInjector) Deliver(clock *Clock, deliver func()) {
	f.pruneOutages(clock.Now())
	f.Stats.Sent++
	if f.Down(clock.Now()) {
		f.Stats.OutageDrops++
		return
	}
	if f.rng.Bool(f.cfg.DropRate) {
		f.Stats.Dropped++
		return
	}
	copies := 1
	if f.rng.Bool(f.cfg.DupRate) {
		copies = 2
		f.Stats.Duplicated++
	}
	for i := 0; i < copies; i++ {
		clock.Schedule(f.delay(), func() {
			if f.Down(clock.Now()) {
				f.Stats.OutageDrops++
				return
			}
			f.Stats.Delivered++
			deliver()
		})
	}
}
