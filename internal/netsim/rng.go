package netsim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). Every stochastic element of the simulator (packet loss,
// jitter, workload arrivals) draws from an explicitly seeded RNG so runs
// are reproducible. We avoid math/rand's global state on purpose.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical sequences.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("netsim: RNG.Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean,
// useful for Poisson arrival processes.
func (r *RNG) Exp(mean float64) float64 {
	// Inverse transform sampling; guard against log(0).
	u := r.Float64()
	if u >= 1 {
		u = 0.9999999999999999
	}
	return -mean * math.Log(1-u)
}

// Normal returns an approximately normally distributed value using the
// sum-of-uniforms (Irwin–Hall) method, which is accurate enough for jitter
// modelling and avoids importing math for Box–Muller trig.
func (r *RNG) Normal(mean, stddev float64) float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return mean + stddev*(s-6)
}

// Fork derives an independent generator from this one, so subsystems can be
// given their own streams without correlating draws.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
