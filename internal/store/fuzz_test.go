package store

import (
	"testing"
)

// FuzzDecodeModule: manifests arrive from untrusted overlay replicas.
// The decoder must never panic, must enforce its size bounds, and any
// manifest it accepts must round-trip through Encode/Decode with a
// stable content address — the property signature re-verification at
// fetch time depends on.
func FuzzDecodeModule(f *testing.F) {
	good := &Module{
		Name: "acme/tracker-radar", Version: "2.0", Publisher: "acme",
		Type: "tracker-block", Config: map[string]string{"list": "ads.example"},
	}
	f.Add(good.Encode())
	f.Add([]byte(`{"name":"x","publisher":"p"}`))
	f.Add([]byte(`{"name":""}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeModule(data)
		if err != nil {
			return
		}
		if m.Name == "" || m.Publisher == "" {
			t.Fatalf("accepted manifest without name/publisher: %+v", m)
		}
		addr := m.ContentAddress()
		again, err := DecodeModule(m.Encode())
		if err != nil {
			t.Fatalf("accepted manifest failed re-decode: %v", err)
		}
		if again.ContentAddress() != addr {
			t.Fatal("content address changed across Encode/Decode round trip")
		}
	})
}
