package store

import (
	"errors"
	"testing"

	"pvn/internal/pki"
)

type fixture struct {
	store   *Store
	acmeKey pki.KeyPair
	evilKey pki.KeyPair
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	acme, err := pki.GenerateKey(pki.NewDeterministicRand(1))
	if err != nil {
		t.Fatal(err)
	}
	evil, _ := pki.GenerateKey(pki.NewDeterministicRand(2))
	s := New()
	s.RegisterPublisher("acme", acme.Public)
	return &fixture{store: s, acmeKey: acme, evilKey: evil}
}

func (f *fixture) module(name, version string, price int64) *Module {
	m := &Module{
		Name: name, Version: version, Publisher: "acme", Type: "tracker-block",
		Config:      map[string]string{"domains": "ads.example,tracker.net"},
		Description: "blocks common trackers",
		PriceMicro:  price,
	}
	m.Sign(f.acmeKey.Private)
	return m
}

func TestPublishAndInstallFree(t *testing.T) {
	f := newFixture(t)
	if err := f.store.Publish(f.module("acme/radar", "1.0", 0)); err != nil {
		t.Fatal(err)
	}
	m, err := f.store.Install("alice", "acme/radar")
	if err != nil {
		t.Fatal(err)
	}
	if m.Config["domains"] == "" {
		t.Fatal("config lost")
	}
}

func TestPublishUnknownPublisher(t *testing.T) {
	f := newFixture(t)
	m := f.module("x/y", "1.0", 0)
	m.Publisher = "stranger"
	m.Sign(f.evilKey.Private)
	if err := f.store.Publish(m); !errors.Is(err, ErrUnknownPublisher) {
		t.Fatalf("err=%v", err)
	}
}

func TestPublishBadSignature(t *testing.T) {
	f := newFixture(t)
	m := f.module("acme/radar", "1.0", 0)
	m.Signature[0] ^= 0xff
	if err := f.store.Publish(m); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err=%v", err)
	}
	// Signed by the wrong key.
	m2 := f.module("acme/radar", "1.0", 0)
	m2.Sign(f.evilKey.Private)
	if err := f.store.Publish(m2); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err=%v", err)
	}
}

func TestPublishDuplicateVersion(t *testing.T) {
	f := newFixture(t)
	f.store.Publish(f.module("acme/radar", "1.0", 0))
	if err := f.store.Publish(f.module("acme/radar", "1.0", 0)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err=%v", err)
	}
}

func TestLatestAndGetVersions(t *testing.T) {
	f := newFixture(t)
	f.store.Publish(f.module("acme/radar", "1.0", 0))
	f.store.Publish(f.module("acme/radar", "2.0", 0))
	m, err := f.store.Latest("acme/radar")
	if err != nil || m.Version != "2.0" {
		t.Fatalf("latest %+v err=%v", m, err)
	}
	old, err := f.store.Get("acme/radar", "1.0")
	if err != nil || old.Version != "1.0" {
		t.Fatalf("get %+v err=%v", old, err)
	}
	if _, err := f.store.Get("acme/radar", "9.9"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err=%v", err)
	}
	if _, err := f.store.Latest("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err=%v", err)
	}
}

func TestSearch(t *testing.T) {
	f := newFixture(t)
	f.store.Publish(f.module("acme/radar", "1.0", 0))
	malware := &Module{Name: "acme/clamlite", Version: "1.0", Publisher: "acme",
		Type: "malware-scan", Description: "detects malware signatures"}
	malware.Sign(f.acmeKey.Private)
	f.store.Publish(malware)

	if got := f.store.Search("malware"); len(got) != 1 || got[0].Name != "acme/clamlite" {
		t.Fatalf("search malware: %+v", got)
	}
	if got := f.store.Search("TRACKER"); len(got) != 1 {
		t.Fatalf("case-insensitive search failed: %+v", got)
	}
	if got := f.store.Search(""); len(got) != 2 {
		t.Fatalf("empty query: %d results", len(got))
	}
	if got := f.store.Search("quantum"); len(got) != 0 {
		t.Fatalf("bogus query matched: %+v", got)
	}
}

func TestPurchaseFlow(t *testing.T) {
	f := newFixture(t)
	f.store.Publish(f.module("acme/pro", "1.0", 500))

	if f.store.Entitled("alice", "acme/pro") {
		t.Fatal("entitled before purchase")
	}
	if _, err := f.store.Install("alice", "acme/pro"); !errors.Is(err, ErrNotEntitled) {
		t.Fatalf("err=%v", err)
	}
	if err := f.store.Purchase("alice", "acme/pro", 100); !errors.Is(err, ErrUnderpayment) {
		t.Fatalf("err=%v", err)
	}
	if err := f.store.Purchase("alice", "acme/pro", 500); err != nil {
		t.Fatal(err)
	}
	if _, err := f.store.Install("alice", "acme/pro"); err != nil {
		t.Fatal(err)
	}
	if f.store.Revenue["acme"] != 500 {
		t.Fatalf("revenue %d", f.store.Revenue["acme"])
	}
	// Bob is still locked out.
	if _, err := f.store.Install("bob", "acme/pro"); !errors.Is(err, ErrNotEntitled) {
		t.Fatalf("err=%v", err)
	}
}

func TestInstallReverifiesSignature(t *testing.T) {
	f := newFixture(t)
	m := f.module("acme/radar", "1.0", 0)
	f.store.Publish(m)
	// Simulate post-publish database tampering.
	m.Config["domains"] = "nothing"
	if _, err := f.store.Install("alice", "acme/radar"); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered module installed: err=%v", err)
	}
}
