package store

import "pvn/internal/pvnc"

// AsMiddlebox converts a module into the PVNC middlebox declaration it
// ships, under the given local name. Config is copied so later PVNC
// edits cannot mutate the store's record.
func (m *Module) AsMiddlebox(localName string) pvnc.Middlebox {
	cfg := make(map[string]string, len(m.Config))
	for k, v := range m.Config {
		cfg[k] = v
	}
	return pvnc.Middlebox{LocalName: localName, Type: m.Type, Config: cfg}
}

// InstallIntoPVNC installs a module for a user (enforcing entitlement
// and signature) and grafts it into the configuration under localName.
func (s *Store) InstallIntoPVNC(user, moduleName, localName string, cfg *pvnc.PVNC) (*pvnc.PVNC, error) {
	m, err := s.Install(user, moduleName)
	if err != nil {
		return nil, err
	}
	return pvnc.WithMiddlebox(cfg, m.AsMiddlebox(localName))
}
