// Package store implements the "PVN Store" the paper proposes (§3.1): a
// marketplace of PVNC components — malware-detection modules,
// web-optimizing modules, tracker-blocking modules — that developers
// publish (and sell) and non-expert users install. Modules are signed by
// their publishers; the store verifies signatures at publish time and
// devices can re-verify at install time, so a compromised store cannot
// silently swap module contents.
package store

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Errors.
var (
	ErrUnknownPublisher = errors.New("store: unknown publisher")
	ErrBadSignature     = errors.New("store: module signature invalid")
	ErrNotFound         = errors.New("store: module not found")
	ErrDuplicate        = errors.New("store: module version already published")
	ErrNotEntitled      = errors.New("store: user not entitled to module")
	ErrUnderpayment     = errors.New("store: payment below price")
)

// Module is one installable PVNC component.
type Module struct {
	// Name is the store-wide identifier, e.g. "acme/tracker-radar".
	Name string `json:"name"`
	// Version is an opaque ordered string, e.g. "1.2.0".
	Version string `json:"version"`
	// Publisher names the signing developer.
	Publisher string `json:"publisher"`
	// Type is the middlebox registry type the module instantiates.
	Type string `json:"type"`
	// Config is the middlebox configuration the module ships (e.g. a
	// domain list for tracker-block, a script for user-script).
	Config map[string]string `json:"config,omitempty"`
	// Description is shown in search results.
	Description string `json:"description,omitempty"`
	// PriceMicro is the purchase price in microcredits (0 = free).
	PriceMicro int64 `json:"price_micro"`

	// Signature covers the canonical JSON of everything above.
	Signature []byte `json:"signature,omitempty"`
}

// CanonicalBytes returns the module's canonical signable encoding: the
// deterministic JSON of everything except the signature. It is both
// what the publisher signs and what the distributed store hashes to
// content-address the manifest, so "the bytes the signature covers"
// and "the bytes the address commits to" cannot diverge.
func (m *Module) CanonicalBytes() []byte {
	clone := *m
	clone.Signature = nil
	b, err := json.Marshal(&clone)
	if err != nil {
		panic("store: marshal module: " + err.Error())
	}
	return b
}

// signable returns the bytes the signature covers.
func (m *Module) signable() []byte { return m.CanonicalBytes() }

// ContentAddress returns the module's content address: the hex SHA-256
// of its canonical signable bytes. A manifest fetched from an
// untrusted replica is accepted only if it hashes back to the address
// the fetcher asked for.
func (m *Module) ContentAddress() string {
	sum := sha256.Sum256(m.CanonicalBytes())
	return hex.EncodeToString(sum[:])
}

// Encode serializes the full signed manifest for distribution.
func (m *Module) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic("store: marshal module: " + err.Error())
	}
	return b
}

// Module manifest bounds enforced at decode: a hostile replica cannot
// make a device hold an unbounded manifest.
const (
	maxModuleBytes    = 1 << 20
	maxModuleName     = 256
	maxConfigEntries  = 256
	maxConfigValueLen = 64 << 10
)

// DecodeModule parses a manifest produced by Encode, validating shape
// and bounds. It does NOT verify the signature — callers hold the
// publisher key and decide trust (VerifySignature, Store.InstallRemote).
func DecodeModule(data []byte) (*Module, error) {
	if len(data) > maxModuleBytes {
		return nil, fmt.Errorf("store: manifest %d bytes exceeds cap %d", len(data), maxModuleBytes)
	}
	var m Module
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: decode module: %w", err)
	}
	if m.Name == "" || len(m.Name) > maxModuleName {
		return nil, errors.New("store: module name missing or oversized")
	}
	if m.Publisher == "" || len(m.Publisher) > maxModuleName {
		return nil, errors.New("store: module publisher missing or oversized")
	}
	if len(m.Version) > maxModuleName || len(m.Type) > maxModuleName {
		return nil, errors.New("store: module version/type oversized")
	}
	if len(m.Config) > maxConfigEntries {
		return nil, fmt.Errorf("store: %d config entries exceeds cap %d", len(m.Config), maxConfigEntries)
	}
	for k, v := range m.Config {
		if len(k) > maxModuleName || len(v) > maxConfigValueLen {
			return nil, errors.New("store: config entry oversized")
		}
	}
	return &m, nil
}

// Sign signs the module with the publisher's key.
func (m *Module) Sign(priv ed25519.PrivateKey) {
	m.Signature = ed25519.Sign(priv, m.signable())
}

// VerifySignature checks the module against a publisher key.
func (m *Module) VerifySignature(pub ed25519.PublicKey) error {
	if !ed25519.Verify(pub, m.signable(), m.Signature) {
		return ErrBadSignature
	}
	return nil
}

// Store is the marketplace.
type Store struct {
	publishers   map[string]ed25519.PublicKey
	modules      map[string][]*Module       // name -> versions in publish order
	entitlements map[string]map[string]bool // user -> module name
	// Revenue tracks gross sales per publisher, in microcredits.
	Revenue map[string]int64
}

// New builds an empty store.
func New() *Store {
	return &Store{
		publishers:   make(map[string]ed25519.PublicKey),
		modules:      make(map[string][]*Module),
		entitlements: make(map[string]map[string]bool),
		Revenue:      make(map[string]int64),
	}
}

// RegisterPublisher records a developer's signing key.
func (s *Store) RegisterPublisher(name string, pub ed25519.PublicKey) {
	s.publishers[name] = pub
}

// Publish adds a signed module. The signature must verify under the
// registered publisher key and the (name, version) pair must be new.
func (s *Store) Publish(m *Module) error {
	pub, ok := s.publishers[m.Publisher]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPublisher, m.Publisher)
	}
	if err := m.VerifySignature(pub); err != nil {
		return err
	}
	for _, v := range s.modules[m.Name] {
		if v.Version == m.Version {
			return fmt.Errorf("%w: %s@%s", ErrDuplicate, m.Name, m.Version)
		}
	}
	s.modules[m.Name] = append(s.modules[m.Name], m)
	return nil
}

// Latest returns the most recently published version of a module.
func (s *Store) Latest(name string) (*Module, error) {
	vs := s.modules[name]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return vs[len(vs)-1], nil
}

// Get returns a specific version.
func (s *Store) Get(name, version string) (*Module, error) {
	for _, v := range s.modules[name] {
		if v.Version == version {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: %s@%s", ErrNotFound, name, version)
}

// Search returns the latest version of every module whose name, type or
// description contains the query (case-insensitive), sorted by name.
func (s *Store) Search(query string) []*Module {
	q := strings.ToLower(query)
	var out []*Module
	for name := range s.modules {
		m, _ := s.Latest(name)
		if m == nil {
			continue
		}
		hay := strings.ToLower(m.Name + " " + m.Type + " " + m.Description)
		if q == "" || strings.Contains(hay, q) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Purchase grants a user access to a module. Free modules need no
// payment; paid ones require payment >= price. Revenue accrues to the
// publisher.
func (s *Store) Purchase(user, name string, payment int64) error {
	m, err := s.Latest(name)
	if err != nil {
		return err
	}
	if payment < m.PriceMicro {
		return fmt.Errorf("%w: paid %d, price %d", ErrUnderpayment, payment, m.PriceMicro)
	}
	if s.entitlements[user] == nil {
		s.entitlements[user] = make(map[string]bool)
	}
	s.entitlements[user][name] = true
	s.Revenue[m.Publisher] += m.PriceMicro
	return nil
}

// Entitled reports whether a user may install a module. Free modules are
// always entitled.
func (s *Store) Entitled(user, name string) bool {
	m, err := s.Latest(name)
	if err != nil {
		return false
	}
	if m.PriceMicro == 0 {
		return true
	}
	return s.entitlements[user][name]
}

// Errors for remotely fetched manifests.
var (
	ErrAddressMismatch = errors.New("store: manifest does not hash to the requested content address")
)

// InstallRemote admits a manifest fetched from the discovery overlay
// (or any untrusted replica) into this device's catalog and installs
// it for the user. The full trust chain is enforced locally, exactly
// as for a marketplace install: the publisher must be registered in
// this store's trust set, the manifest must hash to the content
// address the device asked the overlay for, the publisher signature
// must verify over the canonical bytes, and the user must be entitled
// (free, or previously purchased). The admitted module joins the local
// catalog so later Install/Latest calls see it.
func (s *Store) InstallRemote(user string, m *Module, wantAddress string) (*Module, error) {
	if m == nil {
		return nil, ErrNotFound
	}
	pub, ok := s.publishers[m.Publisher]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPublisher, m.Publisher)
	}
	if got := m.ContentAddress(); got != wantAddress {
		return nil, fmt.Errorf("%w: got %.16s…, want %.16s…", ErrAddressMismatch, got, wantAddress)
	}
	if err := m.VerifySignature(pub); err != nil {
		return nil, err
	}
	// Admit into the catalog (idempotently) before the entitlement
	// check: Entitled consults the local record.
	known := false
	for _, v := range s.modules[m.Name] {
		if v.Version == m.Version {
			known = true
			break
		}
	}
	if !known {
		s.modules[m.Name] = append(s.modules[m.Name], m)
	}
	if !s.Entitled(user, m.Name) {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNotEntitled, user, m.Name)
	}
	return m, nil
}

// Install fetches a module for a user, enforcing entitlement and
// re-verifying the signature end to end (defense against a tampered
// store database).
func (s *Store) Install(user, name string) (*Module, error) {
	m, err := s.Latest(name)
	if err != nil {
		return nil, err
	}
	if !s.Entitled(user, name) {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNotEntitled, user, name)
	}
	pub, ok := s.publishers[m.Publisher]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPublisher, m.Publisher)
	}
	if err := m.VerifySignature(pub); err != nil {
		return nil, err
	}
	return m, nil
}
