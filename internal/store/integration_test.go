package store

import (
	"strings"
	"testing"

	"pvn/internal/pvnc"
)

const baseCfg = `
pvnc base
owner alice
device 10.0.0.5
middlebox pii pii-detect mode=block
chain secure pii
policy 100 match proto=tcp dport=80 via=secure action=forward
policy 0 match any action=forward
`

func TestInstallIntoPVNC(t *testing.T) {
	f := newFixture(t)
	f.store.Publish(f.module("acme/radar", "1.0", 0))

	cfg, err := pvnc.Parse(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	newCfg, err := f.store.InstallIntoPVNC("alice", "acme/radar", "radar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(newCfg.Middleboxes) != 2 {
		t.Fatalf("middleboxes %d", len(newCfg.Middleboxes))
	}
	var found *pvnc.Middlebox
	for i := range newCfg.Middleboxes {
		if newCfg.Middleboxes[i].LocalName == "radar" {
			found = &newCfg.Middleboxes[i]
		}
	}
	if found == nil || found.Type != "tracker-block" {
		t.Fatalf("installed module missing: %+v", newCfg.Middleboxes)
	}
	if found.Config["domains"] == "" {
		t.Fatal("module config lost")
	}
	// The original config is untouched and the new one re-hashes.
	if len(cfg.Middleboxes) != 1 {
		t.Fatal("original config mutated")
	}
	if cfg.Hash() == newCfg.Hash() {
		t.Fatal("hash unchanged after module install")
	}
	// The new config can be extended to actually use the module and
	// still validates.
	withChain, err := pvnc.WithChain(newCfg, pvnc.Chain{Name: "trackers", Members: []string{"radar"}})
	if err != nil {
		t.Fatal(err)
	}
	withPolicy, err := pvnc.WithPolicy(withChain, pvnc.Policy{
		Priority: 90,
		Match:    pvnc.MatchSpec{Proto: "tcp", DstPort: 443},
		Via:      "trackers",
		Action:   pvnc.ActForward,
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs := withPolicy.Validate(); len(errs) != 0 {
		t.Fatalf("extended config invalid: %v", errs)
	}
}

func TestInstallIntoPVNCEnforcesEntitlement(t *testing.T) {
	f := newFixture(t)
	f.store.Publish(f.module("acme/pro", "1.0", 500))
	cfg, _ := pvnc.Parse(baseCfg)
	if _, err := f.store.InstallIntoPVNC("alice", "acme/pro", "pro", cfg); err == nil {
		t.Fatal("unentitled install succeeded")
	}
	f.store.Purchase("alice", "acme/pro", 500)
	if _, err := f.store.InstallIntoPVNC("alice", "acme/pro", "pro", cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInstallIntoPVNCDuplicateLocalName(t *testing.T) {
	f := newFixture(t)
	f.store.Publish(f.module("acme/radar", "1.0", 0))
	cfg, _ := pvnc.Parse(baseCfg)
	if _, err := f.store.InstallIntoPVNC("alice", "acme/radar", "pii", cfg); err == nil ||
		!strings.Contains(err.Error(), "already present") {
		t.Fatalf("err=%v", err)
	}
}
