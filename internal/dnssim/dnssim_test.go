package dnssim

import (
	"errors"
	"testing"

	"pvn/internal/packet"
)

var (
	realAddr = packet.MustParseIPv4("93.184.216.34")
	evilAddr = packet.MustParseIPv4("198.18.0.66")
)

// fixture: a signed zone example.com and an unsigned zone legacy.net.
func fixture(t *testing.T) (*Zone, *Zone, *Authority, TrustAnchors) {
	t.Helper()
	signed, err := NewZone("example.com", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	signed.AddA("www.example.com", realAddr, 300)
	signed.AddTXT("www.example.com", "v=pvn1", 300)

	unsigned, err := NewZone("legacy.net", false, 2)
	if err != nil {
		t.Fatal(err)
	}
	unsigned.AddA("old.legacy.net", realAddr, 300)

	auth := NewAuthority(signed, unsigned)
	anchors := TrustAnchors{"example.com": signed.PublicKey()}
	return signed, unsigned, auth, anchors
}

func TestAuthorityResolvesSignedZone(t *testing.T) {
	_, _, auth, anchors := fixture(t)
	r := NewResolver("r1", auth, 10)
	resp := r.Query("www.example.com", packet.DNSTypeA)
	if resp.Rcode != packet.DNSRcodeNoError || !resp.AA || !resp.AD {
		t.Fatalf("response %+v", resp)
	}
	var gotA bool
	var gotSig bool
	for _, a := range resp.Answers {
		if a.Type == packet.DNSTypeA && a.A() == realAddr {
			gotA = true
		}
		if a.Type == packet.DNSTypeRRSIG {
			gotSig = true
		}
	}
	if !gotA || !gotSig {
		t.Fatalf("answers missing A or RRSIG: %+v", resp.Answers)
	}
	if err := anchors.Validate(resp); err != nil {
		t.Fatalf("valid signed answer failed validation: %v", err)
	}
}

func TestUnsignedZoneHasNoSignature(t *testing.T) {
	_, _, auth, anchors := fixture(t)
	r := NewResolver("r1", auth, 10)
	resp := r.Query("old.legacy.net", packet.DNSTypeA)
	if resp.Rcode != packet.DNSRcodeNoError {
		t.Fatalf("rcode %d", resp.Rcode)
	}
	if resp.AD {
		t.Fatal("unsigned zone set AD")
	}
	if err := anchors.Validate(resp); !errors.Is(err, ErrNoAnchor) {
		t.Fatalf("err=%v, want ErrNoAnchor (zone not anchored)", err)
	}
}

func TestNXDomain(t *testing.T) {
	_, _, auth, _ := fixture(t)
	r := NewResolver("r1", auth, 10)
	resp := r.Query("missing.example.com", packet.DNSTypeA)
	if resp.Rcode != packet.DNSRcodeNXDomain {
		t.Fatalf("rcode %d, want NXDOMAIN", resp.Rcode)
	}
	resp = r.Query("other.tld", packet.DNSTypeA)
	if resp.Rcode != packet.DNSRcodeNXDomain {
		t.Fatalf("out-of-zone rcode %d, want NXDOMAIN", resp.Rcode)
	}
}

func TestMaliciousResolverForgesUnsignedAnswer(t *testing.T) {
	_, _, auth, anchors := fixture(t)
	r := NewResolver("evil", auth, 10)
	r.Malicious = true
	r.Forge["www.example.com"] = evilAddr

	resp := r.Query("www.example.com", packet.DNSTypeA)
	if resp.Answers[0].A() != evilAddr {
		t.Fatal("malicious resolver did not forge")
	}
	// Validation must catch it: the forged answer has no RRSIG.
	if err := anchors.Validate(resp); !errors.Is(err, ErrNoSignature) {
		t.Fatalf("err=%v, want ErrNoSignature", err)
	}
}

func TestForgedSignatureRejected(t *testing.T) {
	_, _, auth, anchors := fixture(t)
	r := NewResolver("r1", auth, 10)
	resp := r.Query("www.example.com", packet.DNSTypeA)
	// Attacker swaps the A record but keeps the old signature.
	for i, a := range resp.Answers {
		if a.Type == packet.DNSTypeA {
			resp.Answers[i].Data = evilAddr[:]
		}
	}
	if err := anchors.Validate(resp); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err=%v, want ErrBadSignature", err)
	}
}

func TestWrongSignerRejected(t *testing.T) {
	// A second signed zone cannot vouch for example.com names.
	signed, _, _, anchors := fixture(t)
	other, err := NewZone("example.com", true, 99) // same apex, different key
	if err != nil {
		t.Fatal(err)
	}
	other.AddA("www.example.com", evilAddr, 300)
	evilAuth := NewAuthority(other)
	r := NewResolver("r1", evilAuth, 10)
	resp := r.Query("www.example.com", packet.DNSTypeA)
	if err := anchors.Validate(resp); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err=%v, want ErrBadSignature (wrong zone key)", err)
	}
	_ = signed
}

func TestValidateTXTRecordSet(t *testing.T) {
	_, _, auth, anchors := fixture(t)
	r := NewResolver("r1", auth, 10)
	resp := r.Query("www.example.com", packet.DNSTypeTXT)
	if err := anchors.Validate(resp); err != nil {
		t.Fatalf("TXT validation failed: %v", err)
	}
}

func TestQuorumResolveHonestMajority(t *testing.T) {
	_, _, auth, _ := fixture(t)
	var resolvers []*Resolver
	for i := 0; i < 5; i++ {
		resolvers = append(resolvers, NewResolver("r", auth, uint64(i)))
	}
	// One of five is malicious.
	resolvers[2].Malicious = true
	resolvers[2].Forge["old.legacy.net"] = evilAddr

	res, err := QuorumResolve("old.legacy.net", resolvers, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addr != realAddr {
		t.Fatalf("quorum answer %v, want %v", res.Addr, realAddr)
	}
	if res.Votes != 4 || res.Total != 5 {
		t.Fatalf("votes %d/%d", res.Votes, res.Total)
	}
}

func TestQuorumResolveFailsWithoutMajority(t *testing.T) {
	_, _, auth, _ := fixture(t)
	var resolvers []*Resolver
	for i := 0; i < 4; i++ {
		r := NewResolver("r", auth, uint64(i))
		if i < 2 {
			r.Malicious = true
			r.Forge["old.legacy.net"] = evilAddr
		}
		resolvers = append(resolvers, r)
	}
	if _, err := QuorumResolve("old.legacy.net", resolvers, 3); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err=%v, want ErrNoQuorum", err)
	}
}

func TestQuorumSkipsFailingResolvers(t *testing.T) {
	_, _, auth, _ := fixture(t)
	var resolvers []*Resolver
	for i := 0; i < 4; i++ {
		r := NewResolver("r", auth, uint64(i))
		resolvers = append(resolvers, r)
	}
	resolvers[0].FailRate = 1.0
	res, err := QuorumResolve("old.legacy.net", resolvers, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 3 {
		t.Fatalf("total %d, want 3 (one resolver always SERVFAILs)", res.Total)
	}
}

func TestResolverQueryCount(t *testing.T) {
	_, _, auth, _ := fixture(t)
	r := NewResolver("r1", auth, 1)
	r.Query("www.example.com", packet.DNSTypeA)
	r.Query("www.example.com", packet.DNSTypeA)
	if r.Queries != 2 {
		t.Fatalf("query count %d", r.Queries)
	}
}

func TestValidateWireRoundTrip(t *testing.T) {
	// Signatures must survive DNS wire encoding/decoding.
	_, _, auth, anchors := fixture(t)
	r := NewResolver("r1", auth, 1)
	resp := r.Query("www.example.com", packet.DNSTypeA)
	wire, err := packet.SerializeToBytes(resp)
	if err != nil {
		t.Fatal(err)
	}
	var decoded packet.DNS
	if err := decoded.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if err := anchors.Validate(&decoded); err != nil {
		t.Fatalf("validation after wire round trip: %v", err)
	}
}

func TestAnchorForMostSpecific(t *testing.T) {
	z1, _ := NewZone("example.com", true, 1)
	z2, _ := NewZone("sub.example.com", true, 2)
	ta := TrustAnchors{"example.com": z1.PublicKey(), "sub.example.com": z2.PublicKey()}
	zone, key, ok := ta.anchorFor("www.sub.example.com")
	if !ok || zone != "sub.example.com" {
		t.Fatalf("anchor %q", zone)
	}
	if string(key) != string(z2.PublicKey()) {
		t.Fatal("wrong key selected")
	}
}

func TestParseRRSIGMalformed(t *testing.T) {
	if _, _, err := parseRRSIG([]byte("no-separator")); err == nil {
		t.Fatal("RRSIG without separator accepted")
	}
	if _, _, err := parseRRSIG(append([]byte("zone\x00"), make([]byte, 10)...)); err == nil {
		t.Fatal("short signature accepted")
	}
}
