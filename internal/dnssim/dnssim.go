// Package dnssim implements the DNS substrate for the PVN security
// experiments (§2.1, §4 "DNS Validation"): authoritative zones whose
// record sets can be signed with Ed25519 zone keys (a DNSSEC stand-in
// with the same verification property), resolvers that can be honest or
// actively forge answers, signature validation against trust anchors,
// and quorum resolution across multiple open resolvers for names that
// are not signed.
package dnssim

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"pvn/internal/netsim"
	"pvn/internal/packet"
	"pvn/internal/pki"
)

// Validation errors.
var (
	ErrNoSignature  = errors.New("dnssim: response carries no RRSIG")
	ErrBadSignature = errors.New("dnssim: RRSIG verification failed")
	ErrNoAnchor     = errors.New("dnssim: no trust anchor for zone")
	ErrNXDomain     = errors.New("dnssim: no such name")
	ErrNoQuorum     = errors.New("dnssim: resolvers did not reach quorum")
)

// Zone is one authoritative zone.
type Zone struct {
	// Name is the zone apex, e.g. "example.com".
	Name string
	// Signed controls whether answers carry RRSIGs.
	Signed bool

	keys    pki.KeyPair
	records map[string][]packet.DNSRecord // by fully qualified name
}

// NewZone creates a zone. If signed, a zone key pair is derived
// deterministically from seed.
func NewZone(name string, signed bool, seed uint64) (*Zone, error) {
	z := &Zone{Name: strings.ToLower(name), Signed: signed, records: make(map[string][]packet.DNSRecord)}
	if signed {
		kp, err := pki.GenerateKey(pki.NewDeterministicRand(seed))
		if err != nil {
			return nil, err
		}
		z.keys = kp
	}
	return z, nil
}

// PublicKey returns the zone signing key for trust-anchor distribution,
// or nil for unsigned zones.
func (z *Zone) PublicKey() ed25519.PublicKey { return z.keys.Public }

// AddA publishes an A record.
func (z *Zone) AddA(name string, addr packet.IPv4Address, ttl uint32) {
	name = strings.ToLower(name)
	z.records[name] = append(z.records[name], packet.DNSRecord{
		Name: name, Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: ttl, Data: addr[:],
	})
}

// AddTXT publishes a TXT record.
func (z *Zone) AddTXT(name, text string, ttl uint32) {
	name = strings.ToLower(name)
	z.records[name] = append(z.records[name], packet.DNSRecord{
		Name: name, Type: packet.DNSTypeTXT, Class: packet.DNSClassIN, TTL: ttl, Data: []byte(text),
	})
}

// Contains reports whether the name belongs to this zone.
func (z *Zone) Contains(name string) bool {
	name = strings.ToLower(name)
	return name == z.Name || strings.HasSuffix(name, "."+z.Name)
}

// rrsigData packs the signer name and signature into RRSIG RDATA.
func rrsigData(signer string, sig []byte) []byte {
	out := append([]byte(signer), 0)
	return append(out, sig...)
}

// parseRRSIG splits RRSIG RDATA back into signer and signature.
func parseRRSIG(data []byte) (signer string, sig []byte, err error) {
	i := -1
	for j, b := range data {
		if b == 0 {
			i = j
			break
		}
	}
	if i < 0 || i+1+ed25519.SignatureSize != len(data) {
		return "", nil, fmt.Errorf("dnssim: malformed RRSIG RDATA (%d bytes)", len(data))
	}
	return string(data[:i]), data[i+1:], nil
}

// signableBytes canonicalizes a record set (one name+type) for signing:
// sorted RDATAs prefixed with name and type, TTL excluded so resolver
// TTL-aging does not break signatures (as in real DNSSEC's original TTL
// handling, simplified).
func signableBytes(name string, rtype uint16, rdatas [][]byte) []byte {
	sorted := make([]string, len(rdatas))
	for i, d := range rdatas {
		sorted[i] = string(d)
	}
	sort.Strings(sorted)
	out := []byte(strings.ToLower(name))
	out = append(out, 0)
	out = binary.BigEndian.AppendUint16(out, rtype)
	for _, d := range sorted {
		out = binary.BigEndian.AppendUint16(out, uint16(len(d)))
		out = append(out, d...)
	}
	return out
}

// Resolve answers a question from zone data. Signed zones attach an RRSIG
// covering the answer record set.
func (z *Zone) Resolve(q packet.DNSQuestion) ([]packet.DNSRecord, error) {
	name := strings.ToLower(q.Name)
	rrs := z.records[name]
	var answers []packet.DNSRecord
	for _, r := range rrs {
		if r.Type == q.Type && r.Class == q.Class {
			answers = append(answers, r)
		}
	}
	if len(answers) == 0 {
		return nil, fmt.Errorf("%w: %s type %d", ErrNXDomain, q.Name, q.Type)
	}
	if z.Signed {
		rdatas := make([][]byte, len(answers))
		for i, a := range answers {
			rdatas[i] = a.Data
		}
		sig := ed25519.Sign(z.keys.Private, signableBytes(name, q.Type, rdatas))
		answers = append(answers, packet.DNSRecord{
			Name: name, Type: packet.DNSTypeRRSIG, Class: packet.DNSClassIN,
			TTL: answers[0].TTL, Data: rrsigData(z.Name, sig),
		})
	}
	return answers, nil
}

// Authority serves a set of zones.
type Authority struct {
	zones []*Zone
}

// NewAuthority builds an authority over the given zones.
func NewAuthority(zones ...*Zone) *Authority { return &Authority{zones: zones} }

// AddZone registers another zone.
func (a *Authority) AddZone(z *Zone) { a.zones = append(a.zones, z) }

// Resolve answers a query message with a response message.
func (a *Authority) Resolve(query *packet.DNS) *packet.DNS {
	resp := &packet.DNS{ID: query.ID, QR: true, RA: true, Questions: query.Questions}
	if len(query.Questions) == 0 {
		resp.Rcode = packet.DNSRcodeFormErr
		return resp
	}
	q := query.Questions[0]
	for _, z := range a.zones {
		if !z.Contains(q.Name) {
			continue
		}
		answers, err := z.Resolve(q)
		if err != nil {
			resp.Rcode = packet.DNSRcodeNXDomain
			return resp
		}
		resp.AA = true
		resp.Answers = answers
		if z.Signed {
			resp.AD = true
		}
		return resp
	}
	resp.Rcode = packet.DNSRcodeNXDomain
	return resp
}

// Resolver models one recursive resolver a device might use. Malicious
// resolvers forge configured names (and strip signatures, as a real
// attacker without zone keys must).
type Resolver struct {
	// Name identifies the resolver in experiment output.
	Name      string
	Upstream  *Authority
	Malicious bool
	// Forge maps lowercase names to the attacker-controlled address
	// returned instead of the truth.
	Forge map[string]packet.IPv4Address
	// FailRate drops queries with this probability (SERVFAIL).
	FailRate float64

	rng *netsim.RNG

	// Queries counts lookups served, for probe-cost accounting.
	Queries int64
}

// NewResolver builds a resolver over the authority. seed drives failure
// draws.
func NewResolver(name string, upstream *Authority, seed uint64) *Resolver {
	return &Resolver{Name: name, Upstream: upstream, Forge: make(map[string]packet.IPv4Address), rng: netsim.NewRNG(seed)}
}

// Query resolves one name/type.
func (r *Resolver) Query(name string, rtype uint16) *packet.DNS {
	r.Queries++
	q := &packet.DNS{ID: uint16(r.rng.Uint64()), RD: true,
		Questions: []packet.DNSQuestion{{Name: name, Type: rtype, Class: packet.DNSClassIN}}}
	if r.FailRate > 0 && r.rng.Bool(r.FailRate) {
		return &packet.DNS{ID: q.ID, QR: true, Rcode: packet.DNSRcodeServFail, Questions: q.Questions}
	}
	if r.Malicious {
		if addr, ok := r.Forge[strings.ToLower(name)]; ok && rtype == packet.DNSTypeA {
			// The attacker mints an unsigned answer: it cannot forge
			// the zone's RRSIG without the zone key.
			return &packet.DNS{
				ID: q.ID, QR: true, RA: true, Questions: q.Questions,
				Answers: []packet.DNSRecord{{
					Name: strings.ToLower(name), Type: packet.DNSTypeA,
					Class: packet.DNSClassIN, TTL: 60, Data: addr[:],
				}},
			}
		}
	}
	return r.Upstream.Resolve(q)
}

// TrustAnchors maps zone apex names to their public signing keys, the
// validator's equivalent of the DNSSEC root/DS chain.
type TrustAnchors map[string]ed25519.PublicKey

// anchorFor finds the most specific anchor covering name.
func (ta TrustAnchors) anchorFor(name string) (string, ed25519.PublicKey, bool) {
	name = strings.ToLower(name)
	best := ""
	var key ed25519.PublicKey
	for zone, k := range ta {
		if (name == zone || strings.HasSuffix(name, "."+zone)) && len(zone) > len(best) {
			best, key = zone, k
		}
	}
	return best, key, best != ""
}

// Validate checks a response's answers against the trust anchors. It
// returns nil when the covered record set verifies, ErrNoSignature when a
// covered zone's answer lacks an RRSIG, ErrNoAnchor when the zone is not
// anchored (caller should fall back to quorum), and ErrBadSignature when
// verification fails.
func (ta TrustAnchors) Validate(resp *packet.DNS) error {
	if len(resp.Questions) == 0 {
		return fmt.Errorf("dnssim: response without question")
	}
	q := resp.Questions[0]
	zone, key, ok := ta.anchorFor(q.Name)
	if !ok {
		return ErrNoAnchor
	}
	var rdatas [][]byte
	var sig []byte
	for _, a := range resp.Answers {
		switch a.Type {
		case packet.DNSTypeRRSIG:
			signer, s, err := parseRRSIG(a.Data)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrBadSignature, err)
			}
			if signer != zone {
				return fmt.Errorf("%w: signer %q, want %q", ErrBadSignature, signer, zone)
			}
			sig = s
		case q.Type:
			rdatas = append(rdatas, a.Data)
		}
	}
	if sig == nil {
		return ErrNoSignature
	}
	if len(rdatas) == 0 {
		return fmt.Errorf("%w: signature without records", ErrBadSignature)
	}
	if !ed25519.Verify(key, signableBytes(q.Name, q.Type, rdatas), sig) {
		return ErrBadSignature
	}
	return nil
}

// QuorumResult reports a quorum resolution.
type QuorumResult struct {
	Addr packet.IPv4Address
	// Votes is how many resolvers agreed on Addr.
	Votes int
	// Total is how many resolvers returned an answer at all.
	Total int
}

// QuorumResolve queries every resolver for an A record and returns the
// majority answer, requiring at least quorum agreeing votes. This is the
// paper's open-resolver cross-check for unsigned names (§4).
func QuorumResolve(name string, resolvers []*Resolver, quorum int) (QuorumResult, error) {
	votes := make(map[packet.IPv4Address]int)
	total := 0
	for _, r := range resolvers {
		resp := r.Query(name, packet.DNSTypeA)
		if resp.Rcode != packet.DNSRcodeNoError {
			continue
		}
		for _, a := range resp.Answers {
			if a.Type == packet.DNSTypeA {
				votes[a.A()]++
				total++
				break // one vote per resolver
			}
		}
	}
	var best packet.IPv4Address
	bestVotes := 0
	for addr, v := range votes {
		if v > bestVotes || (v == bestVotes && addrLess(addr, best)) {
			best, bestVotes = addr, v
		}
	}
	res := QuorumResult{Addr: best, Votes: bestVotes, Total: total}
	if bestVotes < quorum {
		return res, fmt.Errorf("%w: best answer has %d/%d votes, need %d", ErrNoQuorum, bestVotes, total, quorum)
	}
	return res, nil
}

func addrLess(a, b packet.IPv4Address) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
