package packet

import (
	"testing"
)

// FuzzDecode: the full-stack decoder must never panic on arbitrary
// bytes, and whatever it decodes must re-serialize without corruption of
// invariants.
func FuzzDecode(f *testing.F) {
	// Seed with real frames of each shape.
	ip := &IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoTCP}
	tcp := &TCP{SrcPort: 40000, DstPort: 443}
	tcp.SetNetworkLayerForChecksum(ip)
	frame, _ := SerializeToBytes(&Ethernet{Src: srcM, Dst: dstM, EtherType: EtherTypeIPv4}, ip, tcp, Payload("x"))
	f.Add(frame)
	udpFrame, _ := SerializeToBytes(&IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoUDP},
		&UDP{SrcPort: 53, DstPort: 53}, Payload("y"))
	f.Add(udpFrame)
	f.Add([]byte{})
	f.Add([]byte{0x45})

	// Malformed-header seeds, so even the minimum corpus exercises the
	// decoder's bounds checks rather than only the happy paths.
	if len(udpFrame) > 0 {
		badIHL := append([]byte(nil), udpFrame...)
		badIHL[0] = 0x4f // IHL=15: 60-byte header claimed, frame is shorter
		f.Add(badIHL)
		tinyIHL := append([]byte(nil), udpFrame...)
		tinyIHL[0] = 0x42 // IHL=2: below the minimum 5
		f.Add(tinyIHL)
	}
	ipOnly, _ := SerializeToBytes(ip, tcp, Payload("x"))
	if len(ipOnly) > 24 {
		f.Add(ipOnly[:24]) // TCP header truncated mid-way
	}
	frag := &IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoTCP, Flags: 1 /* MF */, FragOff: 8}
	fragFrame, _ := SerializeToBytes(frag, Payload("fragment tail bytes"))
	f.Add(fragFrame)
	// IHL=6: a 24-byte header carrying one 4-byte option (record-route
	// shape), followed by a UDP header. Checksum is wrong on purpose —
	// the rejection path is a path too.
	f.Add([]byte{
		0x46, 0, 0, 32, 0, 0, 0, 0, 64, 17, 0, 0,
		10, 0, 0, 5, 93, 184, 216, 34, // src, dst
		7, 4, 0, 0, // record-route option
		0, 53, 0, 53, 0, 8, 0, 0, // UDP header
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, first := range []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeTCP, LayerTypeUDP} {
			p := Decode(data, first)
			_ = p.String()
			if ip := p.IPv4(); ip != nil {
				// A decoded IPv4 header passed its checksum; its
				// payload must sit inside the input.
				if len(ip.LayerPayload()) > len(data) {
					t.Fatal("payload larger than input")
				}
			}
		}
	})
}

// FuzzDNSDecode: the DNS wire parser (with name compression) must never
// panic or loop, and successful decodes must re-encode.
func FuzzDNSDecode(f *testing.F) {
	good, _ := SerializeToBytes(&DNS{ID: 1, RD: true,
		Questions: []DNSQuestion{{Name: "www.example.com", Type: DNSTypeA, Class: DNSClassIN}}})
	f.Add(good)
	// A compression pointer to offset 12.
	f.Add([]byte{0, 1, 0x81, 0x80, 0, 1, 0, 1, 0, 0, 0, 0, 0xc0, 12})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var d DNS
		if err := d.DecodeFromBytes(data); err != nil {
			return
		}
		// Re-encoding may legitimately fail (e.g. names decoded from
		// pointers may contain empty labels we refuse to emit), but it
		// must not panic.
		_, _ = SerializeToBytes(&d)
	})
}

// FuzzTLSDecode: record parsing and handshake extraction on arbitrary
// input.
func FuzzTLSDecode(f *testing.F) {
	rec := BuildClientHello("h.example", [32]byte{}, []uint16{1})
	data, _ := SerializeToBytes(&TLS{Records: []TLSRecord{rec}})
	f.Add(data)
	f.Add([]byte{22, 3, 3, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		var tl TLS
		if err := tl.DecodeFromBytes(data); err != nil {
			return
		}
		for _, r := range tl.Records {
			hss, err := r.Handshakes()
			if err != nil {
				continue
			}
			for _, hs := range hss {
				switch hs.Type {
				case TLSHandshakeClientHello:
					_, _ = ParseClientHello(hs.Body)
				case TLSHandshakeCertificate:
					_, _ = ParseCertificateChain(hs.Body)
				}
			}
		}
	})
}

// FuzzHTTPDecode: the HTTP/1.x parser on arbitrary text.
func FuzzHTTPDecode(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: h\r\n\r\nbody"))
	f.Add([]byte("HTTP/1.1 200 OK\r\n\r\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		var h HTTP
		if err := h.DecodeFromBytes(data); err != nil {
			return
		}
		// A successful parse must serialize.
		if _, err := SerializeToBytes(&h); err != nil {
			t.Fatalf("parsed message failed to serialize: %v", err)
		}
	})
}
