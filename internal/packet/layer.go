// Package packet implements a layer-oriented packet model in the spirit of
// gopacket: each protocol is a Layer that can decode itself from bytes and
// serialize itself into a prepend-oriented buffer, and a Packet is the
// ordered stack of decoded layers.
//
// The protocol set is the one PVN middleboxes need: Ethernet, IPv4, TCP,
// UDP, a real DNS wire format, TLS records with ClientHello/Certificate
// parsing, and HTTP/1.x messages. Checksums (IPv4 header, TCP/UDP
// pseudo-header) are computed and verified for real, so content-modifying
// middleboxes must re-checksum like real ones do.
package packet

import "fmt"

// LayerType identifies a protocol layer.
type LayerType uint8

// Known layer types.
const (
	LayerTypeInvalid LayerType = iota
	LayerTypeEthernet
	LayerTypeIPv4
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeDNS
	LayerTypeTLS
	LayerTypeHTTP
	LayerTypePayload
)

var layerTypeNames = [...]string{
	LayerTypeInvalid:  "Invalid",
	LayerTypeEthernet: "Ethernet",
	LayerTypeIPv4:     "IPv4",
	LayerTypeTCP:      "TCP",
	LayerTypeUDP:      "UDP",
	LayerTypeDNS:      "DNS",
	LayerTypeTLS:      "TLS",
	LayerTypeHTTP:     "HTTP",
	LayerTypePayload:  "Payload",
}

// String implements fmt.Stringer.
func (t LayerType) String() string {
	if int(t) < len(layerTypeNames) {
		return layerTypeNames[t]
	}
	return fmt.Sprintf("LayerType(%d)", uint8(t))
}

// Layer is one decoded protocol layer.
type Layer interface {
	// LayerType identifies the protocol.
	LayerType() LayerType
	// LayerPayload returns the bytes this layer carries for the next
	// layer up, if any.
	LayerPayload() []byte
}

// DecodingLayer can decode itself in place from wire bytes, gopacket's
// zero-allocation pattern: reuse one struct per parse loop.
type DecodingLayer interface {
	Layer
	// DecodeFromBytes parses data into the receiver. Implementations
	// must not retain data beyond the call unless documented.
	DecodeFromBytes(data []byte) error
	// NextLayerType reports the type of the payload, or
	// LayerTypePayload when unknown.
	NextLayerType() LayerType
}

// SerializableLayer can write itself into a Buffer. Layers serialize
// outermost-last: payload first, then TCP, then IP, then Ethernet, each
// prepending its header (gopacket's SerializeTo convention).
type SerializableLayer interface {
	Layer
	SerializeTo(b *Buffer) error
}

// DecodeError reports a malformed layer.
type DecodeError struct {
	Layer  LayerType
	Reason string
}

// Error implements error.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("packet: bad %s layer: %s", e.Layer, e.Reason)
}

func errf(t LayerType, format string, args ...interface{}) error {
	return &DecodeError{Layer: t, Reason: fmt.Sprintf(format, args...)}
}
