package packet

import "encoding/binary"

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCP is a TCP segment header plus payload. Options are accepted on decode
// (skipped per data offset) but never emitted on serialize.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       byte // header length in 32-bit words
	Flags            byte
	Window           uint16
	Checksum         uint16
	Urgent           uint16

	payload []byte
	// ipForChecksum provides the pseudo-header for checksum computation
	// and verification; set via SetNetworkLayerForChecksum.
	ipForChecksum *IPv4
}

// LayerType implements Layer.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// NextLayerType guesses the application layer from well-known ports.
func (t *TCP) NextLayerType() LayerType {
	if len(t.payload) == 0 {
		return LayerTypePayload
	}
	switch {
	case t.SrcPort == 80 || t.DstPort == 80 || t.SrcPort == 8080 || t.DstPort == 8080:
		return LayerTypeHTTP
	case t.SrcPort == 443 || t.DstPort == 443:
		return LayerTypeTLS
	case t.SrcPort == 53 || t.DstPort == 53:
		return LayerTypeDNS
	}
	return LayerTypePayload
}

// SetNetworkLayerForChecksum binds the IPv4 header used for the
// pseudo-header when serializing or verifying the checksum.
func (t *TCP) SetNetworkLayerForChecksum(ip *IPv4) { t.ipForChecksum = ip }

// DecodeFromBytes implements DecodingLayer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return errf(LayerTypeTCP, "header too short (%d bytes)", len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	hlen := int(t.DataOffset) * 4
	if hlen < 20 || hlen > len(data) {
		return errf(LayerTypeTCP, "bad data offset %d", t.DataOffset)
	}
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.payload = data[hlen:]
	return nil
}

// VerifyChecksum recomputes the segment checksum under the bound IPv4
// pseudo-header and reports whether it matches. It requires
// SetNetworkLayerForChecksum to have been called.
func (t *TCP) VerifyChecksum(segment []byte) bool {
	if t.ipForChecksum == nil {
		return false
	}
	// Zero the checksum field in a copy, then recompute.
	buf := make([]byte, len(segment))
	copy(buf, segment)
	buf[16], buf[17] = 0, 0
	got := transportChecksum(t.ipForChecksum.Src, t.ipForChecksum.Dst, IPProtoTCP, buf)
	return got == t.Checksum
}

// SerializeTo implements SerializableLayer. The checksum is computed when
// an IPv4 layer was bound with SetNetworkLayerForChecksum, else zero.
func (t *TCP) SerializeTo(b *Buffer) error {
	h := b.Prepend(20)
	binary.BigEndian.PutUint16(h[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], t.DstPort)
	binary.BigEndian.PutUint32(h[4:8], t.Seq)
	binary.BigEndian.PutUint32(h[8:12], t.Ack)
	h[12] = 5 << 4
	h[13] = t.Flags
	binary.BigEndian.PutUint16(h[14:16], t.Window)
	binary.BigEndian.PutUint16(h[18:20], t.Urgent)
	if t.ipForChecksum != nil {
		seg := b.Bytes()
		cs := transportChecksum(t.ipForChecksum.Src, t.ipForChecksum.Dst, IPProtoTCP, seg)
		binary.BigEndian.PutUint16(h[16:18], cs)
	}
	return nil
}

// UDP is a UDP header plus payload.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16

	payload       []byte
	ipForChecksum *IPv4
}

// LayerType implements Layer.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// NextLayerType guesses the application layer from well-known ports.
func (u *UDP) NextLayerType() LayerType {
	if u.SrcPort == 53 || u.DstPort == 53 {
		return LayerTypeDNS
	}
	return LayerTypePayload
}

// SetNetworkLayerForChecksum binds the IPv4 header for checksumming.
func (u *UDP) SetNetworkLayerForChecksum(ip *IPv4) { u.ipForChecksum = ip }

// DecodeFromBytes implements DecodingLayer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return errf(LayerTypeUDP, "header too short (%d bytes)", len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < 8 {
		return errf(LayerTypeUDP, "length field %d < 8", u.Length)
	}
	end := int(u.Length)
	if end > len(data) {
		end = len(data)
	}
	u.payload = data[8:end]
	return nil
}

// VerifyChecksum recomputes the datagram checksum under the bound IPv4
// pseudo-header. A zero wire checksum means "not computed" and passes, per
// RFC 768.
func (u *UDP) VerifyChecksum(datagram []byte) bool {
	if u.Checksum == 0 {
		return true
	}
	if u.ipForChecksum == nil {
		return false
	}
	buf := make([]byte, len(datagram))
	copy(buf, datagram)
	buf[6], buf[7] = 0, 0
	got := transportChecksum(u.ipForChecksum.Src, u.ipForChecksum.Dst, IPProtoUDP, buf)
	if got == 0 {
		got = 0xffff
	}
	return got == u.Checksum
}

// SerializeTo implements SerializableLayer.
func (u *UDP) SerializeTo(b *Buffer) error {
	payloadLen := b.Len()
	h := b.Prepend(8)
	binary.BigEndian.PutUint16(h[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], u.DstPort)
	binary.BigEndian.PutUint16(h[4:6], uint16(8+payloadLen))
	if u.ipForChecksum != nil {
		cs := transportChecksum(u.ipForChecksum.Src, u.ipForChecksum.Dst, IPProtoUDP, b.Bytes())
		if cs == 0 {
			cs = 0xffff
		}
		binary.BigEndian.PutUint16(h[6:8], cs)
	}
	return nil
}
