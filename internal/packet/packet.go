package packet

import (
	"fmt"
	"strings"
)

// Payload is a raw application payload layer.
type Payload []byte

// LayerType implements Layer.
func (Payload) LayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (p Payload) LayerPayload() []byte { return p }

// NextLayerType implements DecodingLayer.
func (Payload) NextLayerType() LayerType { return LayerTypeInvalid }

// DecodeFromBytes implements DecodingLayer.
func (p *Payload) DecodeFromBytes(data []byte) error {
	*p = data
	return nil
}

// SerializeTo implements SerializableLayer.
func (p Payload) SerializeTo(b *Buffer) error {
	b.PushBytes(p)
	return nil
}

// Packet is a decoded stack of layers over a single buffer.
type Packet struct {
	data   []byte
	layers []Layer
	// truncated records that decoding stopped early; ErrLayer explains
	// why.
	errLayer error
}

// Decode parses data starting at the given first layer. Decoding continues
// until a layer reports LayerTypePayload/Invalid or a parse error occurs;
// a parse error is recorded (ErrLayer) rather than failing the whole
// packet, matching gopacket behaviour where outer layers stay usable.
func Decode(data []byte, first LayerType) *Packet {
	p := &Packet{data: data}
	cur := data
	next := first
	var lastIP *IPv4 // pseudo-header source for transport checksums
	for len(cur) > 0 && next != LayerTypeInvalid {
		var dl DecodingLayer
		switch next {
		case LayerTypeEthernet:
			dl = &Ethernet{}
		case LayerTypeIPv4:
			dl = &IPv4{}
		case LayerTypeTCP:
			dl = &TCP{}
		case LayerTypeUDP:
			dl = &UDP{}
		case LayerTypeDNS:
			dl = &DNS{}
		case LayerTypeTLS:
			dl = &TLS{}
		case LayerTypeHTTP:
			dl = &HTTP{}
		default:
			pl := Payload(nil)
			dl = &pl
		}
		if err := dl.DecodeFromBytes(cur); err != nil {
			p.errLayer = err
			// Keep the undecodable remainder accessible as payload.
			p.layers = append(p.layers, Payload(cur))
			return p
		}
		// *Payload stores by pointer; append the value for uniform
		// Layer access.
		if pl, ok := dl.(*Payload); ok {
			p.layers = append(p.layers, *pl)
			return p
		}
		p.layers = append(p.layers, dl)
		// Bind checksums so VerifyChecksum works out of the box.
		switch l := dl.(type) {
		case *IPv4:
			lastIP = l
		case *TCP:
			if lastIP != nil {
				l.SetNetworkLayerForChecksum(lastIP)
			}
		case *UDP:
			if lastIP != nil {
				l.SetNetworkLayerForChecksum(lastIP)
			}
		}
		next = dl.NextLayerType()
		cur = dl.LayerPayload()
	}
	return p
}

// Layers returns the decoded layers, outermost first.
func (p *Packet) Layers() []Layer { return p.layers }

// Data returns the raw bytes the packet was decoded from.
func (p *Packet) Data() []byte { return p.data }

// ErrLayer returns the decode error that stopped parsing, or nil.
func (p *Packet) ErrLayer() error { return p.errLayer }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// Ethernet returns the Ethernet layer, or nil.
func (p *Packet) Ethernet() *Ethernet {
	if l := p.Layer(LayerTypeEthernet); l != nil {
		return l.(*Ethernet)
	}
	return nil
}

// IPv4 returns the IPv4 layer, or nil.
func (p *Packet) IPv4() *IPv4 {
	if l := p.Layer(LayerTypeIPv4); l != nil {
		return l.(*IPv4)
	}
	return nil
}

// TCP returns the TCP layer, or nil.
func (p *Packet) TCP() *TCP {
	if l := p.Layer(LayerTypeTCP); l != nil {
		return l.(*TCP)
	}
	return nil
}

// UDP returns the UDP layer, or nil.
func (p *Packet) UDP() *UDP {
	if l := p.Layer(LayerTypeUDP); l != nil {
		return l.(*UDP)
	}
	return nil
}

// DNS returns the DNS layer, or nil.
func (p *Packet) DNS() *DNS {
	if l := p.Layer(LayerTypeDNS); l != nil {
		return l.(*DNS)
	}
	return nil
}

// TLS returns the TLS layer, or nil.
func (p *Packet) TLS() *TLS {
	if l := p.Layer(LayerTypeTLS); l != nil {
		return l.(*TLS)
	}
	return nil
}

// HTTP returns the HTTP layer, or nil.
func (p *Packet) HTTP() *HTTP {
	if l := p.Layer(LayerTypeHTTP); l != nil {
		return l.(*HTTP)
	}
	return nil
}

// ApplicationPayload returns the innermost payload bytes: the application
// data carried above the transport layer, or nil.
func (p *Packet) ApplicationPayload() []byte {
	if len(p.layers) == 0 {
		return nil
	}
	return p.layers[len(p.layers)-1].LayerPayload()
}

// String renders the layer stack for debugging, e.g.
// "Ethernet/IPv4/TCP/HTTP".
func (p *Packet) String() string {
	names := make([]string, len(p.layers))
	for i, l := range p.layers {
		names[i] = l.LayerType().String()
	}
	s := strings.Join(names, "/")
	if p.errLayer != nil {
		s += fmt.Sprintf(" (decode stopped: %v)", p.errLayer)
	}
	return s
}
