package packet

import "encoding/binary"

// TLS record content types.
const (
	TLSTypeChangeCipherSpec byte = 20
	TLSTypeAlert            byte = 21
	TLSTypeHandshake        byte = 22
	TLSTypeApplicationData  byte = 23
)

// TLS handshake message types.
const (
	TLSHandshakeClientHello byte = 1
	TLSHandshakeServerHello byte = 2
	TLSHandshakeCertificate byte = 11
)

// TLSVersion12 is the record-layer version all our messages carry.
const TLSVersion12 uint16 = 0x0303

// TLSRecord is one TLS record: a 5-byte header plus opaque payload.
type TLSRecord struct {
	Type    byte
	Version uint16
	Payload []byte
}

// TLS is a sequence of TLS records sharing one TCP segment.
type TLS struct {
	Records []TLSRecord
}

// LayerType implements Layer.
func (*TLS) LayerType() LayerType { return LayerTypeTLS }

// LayerPayload implements Layer; TLS is a leaf layer here (application
// data stays inside records).
func (*TLS) LayerPayload() []byte { return nil }

// NextLayerType implements DecodingLayer.
func (*TLS) NextLayerType() LayerType { return LayerTypeInvalid }

// DecodeFromBytes implements DecodingLayer. It requires whole records; a
// trailing partial record is a decode error (segment reassembly is the
// caller's job).
func (t *TLS) DecodeFromBytes(data []byte) error {
	t.Records = t.Records[:0]
	off := 0
	for off < len(data) {
		if off+5 > len(data) {
			return errf(LayerTypeTLS, "truncated record header")
		}
		typ := data[off]
		if typ < TLSTypeChangeCipherSpec || typ > TLSTypeApplicationData {
			return errf(LayerTypeTLS, "unknown content type %d", typ)
		}
		ver := binary.BigEndian.Uint16(data[off+1 : off+3])
		l := int(binary.BigEndian.Uint16(data[off+3 : off+5]))
		if off+5+l > len(data) {
			return errf(LayerTypeTLS, "truncated record body")
		}
		t.Records = append(t.Records, TLSRecord{Type: typ, Version: ver, Payload: data[off+5 : off+5+l]})
		off += 5 + l
	}
	if len(t.Records) == 0 {
		return errf(LayerTypeTLS, "empty")
	}
	return nil
}

// SerializeTo implements SerializableLayer.
func (t *TLS) SerializeTo(b *Buffer) error {
	var out []byte
	for _, r := range t.Records {
		if len(r.Payload) > 0xffff {
			return errf(LayerTypeTLS, "record too long (%d bytes)", len(r.Payload))
		}
		hdr := [5]byte{r.Type}
		ver := r.Version
		if ver == 0 {
			ver = TLSVersion12
		}
		binary.BigEndian.PutUint16(hdr[1:3], ver)
		binary.BigEndian.PutUint16(hdr[3:5], uint16(len(r.Payload)))
		out = append(out, hdr[:]...)
		out = append(out, r.Payload...)
	}
	b.PushBytes(out)
	return nil
}

// TLSHandshake is one handshake message extracted from a handshake record.
type TLSHandshake struct {
	Type byte
	Body []byte
}

// Handshakes parses the handshake messages in a handshake-type record.
func (r *TLSRecord) Handshakes() ([]TLSHandshake, error) {
	if r.Type != TLSTypeHandshake {
		return nil, errf(LayerTypeTLS, "not a handshake record (type %d)", r.Type)
	}
	var out []TLSHandshake
	data := r.Payload
	off := 0
	for off < len(data) {
		if off+4 > len(data) {
			return nil, errf(LayerTypeTLS, "truncated handshake header")
		}
		typ := data[off]
		l := int(data[off+1])<<16 | int(data[off+2])<<8 | int(data[off+3])
		if off+4+l > len(data) {
			return nil, errf(LayerTypeTLS, "truncated handshake body")
		}
		out = append(out, TLSHandshake{Type: typ, Body: data[off+4 : off+4+l]})
		off += 4 + l
	}
	return out, nil
}

// ClientHelloInfo is the subset of ClientHello that middleboxes act on.
type ClientHelloInfo struct {
	Version      uint16
	Random       [32]byte
	SessionID    []byte
	CipherSuites []uint16
	ServerName   string // SNI, empty if absent
}

// ParseClientHello parses a ClientHello handshake body.
func ParseClientHello(body []byte) (*ClientHelloInfo, error) {
	ch := &ClientHelloInfo{}
	if len(body) < 34 {
		return nil, errf(LayerTypeTLS, "ClientHello too short")
	}
	ch.Version = binary.BigEndian.Uint16(body[0:2])
	copy(ch.Random[:], body[2:34])
	off := 34
	if off >= len(body) {
		return nil, errf(LayerTypeTLS, "ClientHello truncated at session id")
	}
	sidLen := int(body[off])
	off++
	if off+sidLen > len(body) {
		return nil, errf(LayerTypeTLS, "ClientHello bad session id length")
	}
	ch.SessionID = body[off : off+sidLen]
	off += sidLen
	if off+2 > len(body) {
		return nil, errf(LayerTypeTLS, "ClientHello truncated at cipher suites")
	}
	csLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if off+csLen > len(body) || csLen%2 != 0 {
		return nil, errf(LayerTypeTLS, "ClientHello bad cipher suite length")
	}
	for i := 0; i < csLen; i += 2 {
		ch.CipherSuites = append(ch.CipherSuites, binary.BigEndian.Uint16(body[off+i:off+i+2]))
	}
	off += csLen
	if off >= len(body) {
		return nil, errf(LayerTypeTLS, "ClientHello truncated at compression")
	}
	compLen := int(body[off])
	off += 1 + compLen
	if off > len(body) {
		return nil, errf(LayerTypeTLS, "ClientHello bad compression length")
	}
	if off == len(body) {
		return ch, nil // no extensions
	}
	if off+2 > len(body) {
		return nil, errf(LayerTypeTLS, "ClientHello truncated at extensions")
	}
	extLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if off+extLen > len(body) {
		return nil, errf(LayerTypeTLS, "ClientHello bad extensions length")
	}
	exts := body[off : off+extLen]
	for len(exts) >= 4 {
		et := binary.BigEndian.Uint16(exts[0:2])
		el := int(binary.BigEndian.Uint16(exts[2:4]))
		if 4+el > len(exts) {
			return nil, errf(LayerTypeTLS, "ClientHello truncated extension")
		}
		if et == 0 && el >= 5 { // server_name
			// server_name_list length (2), type (1), name length (2)
			nl := int(binary.BigEndian.Uint16(exts[7:9]))
			if 9+nl <= 4+el {
				ch.ServerName = string(exts[9 : 9+nl])
			}
		}
		exts = exts[4+el:]
	}
	return ch, nil
}

// BuildClientHello constructs a ClientHello handshake record carrying the
// given SNI and cipher suites, with random drawn from the 32 bytes given.
func BuildClientHello(serverName string, random [32]byte, suites []uint16) TLSRecord {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, TLSVersion12)
	body = append(body, random[:]...)
	body = append(body, 0) // empty session id
	body = binary.BigEndian.AppendUint16(body, uint16(2*len(suites)))
	for _, s := range suites {
		body = binary.BigEndian.AppendUint16(body, s)
	}
	body = append(body, 1, 0) // one compression method: null

	var ext []byte
	if serverName != "" {
		name := []byte(serverName)
		var sni []byte
		sni = binary.BigEndian.AppendUint16(sni, uint16(len(name)+3)) // list length
		sni = append(sni, 0)                                          // host_name type
		sni = binary.BigEndian.AppendUint16(sni, uint16(len(name)))
		sni = append(sni, name...)
		ext = binary.BigEndian.AppendUint16(ext, 0) // extension type server_name
		ext = binary.BigEndian.AppendUint16(ext, uint16(len(sni)))
		ext = append(ext, sni...)
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(ext)))
	body = append(body, ext...)

	return wrapHandshake(TLSHandshakeClientHello, body)
}

// ParseCertificateChain parses a Certificate handshake body into its raw
// certificate blobs (our pki package's encoding), outermost (leaf) first.
func ParseCertificateChain(body []byte) ([][]byte, error) {
	if len(body) < 3 {
		return nil, errf(LayerTypeTLS, "Certificate body too short")
	}
	total := int(body[0])<<16 | int(body[1])<<8 | int(body[2])
	if 3+total > len(body) {
		return nil, errf(LayerTypeTLS, "Certificate list truncated")
	}
	data := body[3 : 3+total]
	var chain [][]byte
	for len(data) > 0 {
		if len(data) < 3 {
			return nil, errf(LayerTypeTLS, "certificate entry truncated")
		}
		l := int(data[0])<<16 | int(data[1])<<8 | int(data[2])
		if 3+l > len(data) {
			return nil, errf(LayerTypeTLS, "certificate entry truncated")
		}
		chain = append(chain, data[3:3+l])
		data = data[3+l:]
	}
	return chain, nil
}

// BuildCertificateRecord constructs a Certificate handshake record from
// raw certificate blobs, leaf first.
func BuildCertificateRecord(chain [][]byte) TLSRecord {
	var list []byte
	for _, c := range chain {
		list = appendUint24(list, len(c))
		list = append(list, c...)
	}
	body := appendUint24(nil, len(list))
	body = append(body, list...)
	return wrapHandshake(TLSHandshakeCertificate, body)
}

// BuildApplicationData wraps payload in an application-data record.
func BuildApplicationData(payload []byte) TLSRecord {
	return TLSRecord{Type: TLSTypeApplicationData, Version: TLSVersion12, Payload: payload}
}

func wrapHandshake(typ byte, body []byte) TLSRecord {
	msg := append([]byte{typ}, appendUint24(nil, len(body))...)
	msg = append(msg, body...)
	return TLSRecord{Type: TLSTypeHandshake, Version: TLSVersion12, Payload: msg}
}

func appendUint24(dst []byte, v int) []byte {
	return append(dst, byte(v>>16), byte(v>>8), byte(v))
}
