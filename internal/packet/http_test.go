package packet

import (
	"strings"
	"testing"
)

func TestHTTPRequestRoundTrip(t *testing.T) {
	in := &HTTP{
		IsRequest: true, Method: "POST", Path: "/api/login",
		Headers: []HTTPHeader{{"Host", "api.example.com"}, {"Content-Type", "application/json"}},
		Body:    []byte(`{"user":"alice","password":"hunter2"}`),
	}
	data, err := SerializeToBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	var out HTTP
	if err := out.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if !out.IsRequest || out.Method != "POST" || out.Path != "/api/login" || out.Proto != "HTTP/1.1" {
		t.Fatalf("decoded %+v", out)
	}
	if out.Host() != "api.example.com" {
		t.Fatalf("host %q", out.Host())
	}
	if string(out.Body) != string(in.Body) {
		t.Fatalf("body %q", out.Body)
	}
}

func TestHTTPResponseRoundTrip(t *testing.T) {
	in := &HTTP{StatusCode: 404, StatusText: "Not Found", Headers: []HTTPHeader{{"Content-Length", "0"}}}
	data, err := SerializeToBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	var out HTTP
	if err := out.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if out.IsRequest || out.StatusCode != 404 || out.StatusText != "Not Found" {
		t.Fatalf("decoded %+v", out)
	}
}

func TestHTTPHeaderCaseInsensitive(t *testing.T) {
	var h HTTP
	if err := h.DecodeFromBytes([]byte("GET / HTTP/1.1\r\ncOnTeNt-TyPe: text/html\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if h.Header("Content-Type") != "text/html" {
		t.Fatalf("lookup failed: %+v", h.Headers)
	}
}

func TestHTTPSetHeader(t *testing.T) {
	h := &HTTP{IsRequest: true, Method: "GET", Path: "/"}
	h.SetHeader("X-Test", "1")
	h.SetHeader("x-test", "2") // case-insensitive replace
	if len(h.Headers) != 1 || h.Header("X-Test") != "2" {
		t.Fatalf("headers %+v", h.Headers)
	}
}

func TestHTTPMalformedInputs(t *testing.T) {
	bad := []string{
		"",
		"GARBAGE\r\n\r\n",
		"GET /\r\n\r\n",                         // missing proto
		"HTTP/1.1 xyz Bad\r\n\r\n",              // bad status code
		"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", // bad header
	}
	for _, s := range bad {
		var h HTTP
		if err := h.DecodeFromBytes([]byte(s)); err == nil {
			t.Errorf("accepted malformed input %q", s)
		}
	}
}

func TestHTTPHeaderOnlyFragment(t *testing.T) {
	var h HTTP
	// No \r\n\r\n terminator: still parse what is there.
	if err := h.DecodeFromBytes([]byte("GET /a HTTP/1.1\r\nHost: h")); err != nil {
		t.Fatal(err)
	}
	if h.Path != "/a" {
		t.Fatalf("path %q", h.Path)
	}
}

func TestHTTPStatusTextWithSpaces(t *testing.T) {
	var h HTTP
	if err := h.DecodeFromBytes([]byte("HTTP/1.1 500 Internal Server Error\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if h.StatusText != "Internal Server Error" {
		t.Fatalf("status text %q", h.StatusText)
	}
}

func TestHTTPLargeBodyPreserved(t *testing.T) {
	body := strings.Repeat("x", 10000)
	in := &HTTP{IsRequest: true, Method: "PUT", Path: "/big", Body: []byte(body)}
	data, _ := SerializeToBytes(in)
	var out HTTP
	if err := out.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if len(out.Body) != 10000 {
		t.Fatalf("body length %d", len(out.Body))
	}
}
