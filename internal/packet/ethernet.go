package packet

import "encoding/binary"

// EtherType values this stack understands.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Src, Dst  MACAddress
	EtherType uint16
	payload   []byte
}

// LayerType implements Layer.
func (*Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// NextLayerType implements DecodingLayer.
func (e *Ethernet) NextLayerType() LayerType {
	if e.EtherType == EtherTypeIPv4 {
		return LayerTypeIPv4
	}
	return LayerTypePayload
}

// DecodeFromBytes implements DecodingLayer. The payload slice aliases data.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < 14 {
		return errf(LayerTypeEthernet, "frame too short (%d bytes)", len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	e.payload = data[14:]
	return nil
}

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *Buffer) error {
	h := b.Prepend(14)
	copy(h[0:6], e.Dst[:])
	copy(h[6:12], e.Src[:])
	binary.BigEndian.PutUint16(h[12:14], e.EtherType)
	return nil
}
