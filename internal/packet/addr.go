package packet

import (
	"fmt"
	"strconv"
	"strings"
)

// IPv4Address is a 4-byte IPv4 address. Being an array it is comparable
// and usable as a map key.
type IPv4Address [4]byte

// String renders dotted-quad form.
func (a IPv4Address) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether the address is 0.0.0.0.
func (a IPv4Address) IsZero() bool { return a == IPv4Address{} }

// ParseIPv4 parses dotted-quad form. It returns an error for anything
// else, including IPv6 and hostnames.
func ParseIPv4(s string) (IPv4Address, error) {
	var a IPv4Address
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return a, fmt.Errorf("packet: invalid IPv4 address %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return a, fmt.Errorf("packet: invalid IPv4 address %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}

// MustParseIPv4 is ParseIPv4 that panics on error, for tests and
// constants.
func MustParseIPv4(s string) IPv4Address {
	a, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return a
}

// MACAddress is a 6-byte Ethernet address.
type MACAddress [6]byte

// String renders colon-separated hex form.
func (m MACAddress) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// BroadcastMAC is the all-ones Ethernet broadcast address.
var BroadcastMAC = MACAddress{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
