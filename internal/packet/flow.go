package packet

import "fmt"

// Endpoint is one side of a transport conversation.
type Endpoint struct {
	Addr IPv4Address
	Port uint16
}

// String implements fmt.Stringer.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Flow is a 5-tuple identifying a transport conversation. Flows are
// comparable and usable as map keys.
type Flow struct {
	Proto    byte // IPProtoTCP or IPProtoUDP
	Src, Dst Endpoint
}

// String implements fmt.Stringer.
func (f Flow) String() string {
	proto := "proto?"
	switch f.Proto {
	case IPProtoTCP:
		proto = "tcp"
	case IPProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s->%s", proto, f.Src, f.Dst)
}

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow {
	return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src}
}

// Canonical returns a direction-independent form: the endpoint ordering is
// normalized so that a flow and its reverse map to the same key. Useful
// for per-connection state tables.
func (f Flow) Canonical() Flow {
	if less(f.Dst, f.Src) {
		return f.Reverse()
	}
	return f
}

func less(a, b Endpoint) bool {
	for i := range a.Addr {
		if a.Addr[i] != b.Addr[i] {
			return a.Addr[i] < b.Addr[i]
		}
	}
	return a.Port < b.Port
}

// FastHash returns a 64-bit symmetric hash: a flow and its reverse hash to
// the same value (gopacket's property), so bidirectional traffic can be
// sharded consistently.
func (f Flow) FastHash() uint64 {
	ha := hashEndpoint(f.Src)
	hb := hashEndpoint(f.Dst)
	// XOR is symmetric; mix in the protocol.
	h := ha ^ hb ^ (uint64(f.Proto) * 0x9e3779b97f4a7c15)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func hashEndpoint(e Endpoint) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range e.Addr {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= uint64(e.Port)
	h *= 1099511628211
	return h
}

// FlowOf extracts the 5-tuple from a decoded packet, or ok=false when the
// packet lacks an IPv4+TCP/UDP stack.
func FlowOf(p *Packet) (Flow, bool) {
	ip := p.IPv4()
	if ip == nil {
		return Flow{}, false
	}
	if t := p.TCP(); t != nil {
		return Flow{
			Proto: IPProtoTCP,
			Src:   Endpoint{Addr: ip.Src, Port: t.SrcPort},
			Dst:   Endpoint{Addr: ip.Dst, Port: t.DstPort},
		}, true
	}
	if u := p.UDP(); u != nil {
		return Flow{
			Proto: IPProtoUDP,
			Src:   Endpoint{Addr: ip.Src, Port: u.SrcPort},
			Dst:   Endpoint{Addr: ip.Dst, Port: u.DstPort},
		}, true
	}
	return Flow{}, false
}
