package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	srcIP = MustParseIPv4("10.0.0.1")
	dstIP = MustParseIPv4("192.168.1.20")
	srcM  = MACAddress{0xaa, 0, 0, 0, 0, 1}
	dstM  = MACAddress{0xbb, 0, 0, 0, 0, 2}
)

// buildTCPFrame serializes a full Ethernet/IPv4/TCP/payload frame.
func buildTCPFrame(t *testing.T, srcPort, dstPort uint16, payload []byte) []byte {
	t.Helper()
	ip := &IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoTCP, TTL: 64}
	tcp := &TCP{SrcPort: srcPort, DstPort: dstPort, Seq: 1000, Ack: 2000, Flags: TCPAck | TCPPsh, Window: 65535}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := SerializeToBytes(
		&Ethernet{Src: srcM, Dst: dstM, EtherType: EtherTypeIPv4},
		ip, tcp, Payload(payload))
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return data
}

func TestEthernetRoundTrip(t *testing.T) {
	data, err := SerializeToBytes(&Ethernet{Src: srcM, Dst: dstM, EtherType: EtherTypeIPv4}, Payload("hi"))
	if err != nil {
		t.Fatal(err)
	}
	var e Ethernet
	if err := e.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if e.Src != srcM || e.Dst != dstM || e.EtherType != EtherTypeIPv4 {
		t.Fatalf("decoded %+v", e)
	}
	if string(e.LayerPayload()) != "hi" {
		t.Fatalf("payload %q", e.LayerPayload())
	}
}

func TestEthernetTooShort(t *testing.T) {
	var e Ethernet
	if err := e.DecodeFromBytes(make([]byte, 13)); err == nil {
		t.Fatal("13-byte frame decoded without error")
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := &IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoUDP, TTL: 32, ID: 77, TOS: 4}
	data, err := SerializeToBytes(ip, Payload("payload-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	var got IPv4
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got.Src != srcIP || got.Dst != dstIP || got.Protocol != IPProtoUDP || got.TTL != 32 || got.ID != 77 || got.TOS != 4 {
		t.Fatalf("decoded %+v", got)
	}
	if string(got.LayerPayload()) != "payload-bytes" {
		t.Fatalf("payload %q", got.LayerPayload())
	}
	if int(got.Length) != len(data) {
		t.Fatalf("Length %d, want %d", got.Length, len(data))
	}
}

func TestIPv4CorruptChecksumRejected(t *testing.T) {
	data, err := SerializeToBytes(&IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoTCP}, Payload("x"))
	if err != nil {
		t.Fatal(err)
	}
	data[8] ^= 0xff // flip TTL without fixing checksum
	var got IPv4
	if err := got.DecodeFromBytes(data); err == nil {
		t.Fatal("corrupted header decoded without error")
	}
}

func TestIPv4BadVersion(t *testing.T) {
	data, _ := SerializeToBytes(&IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoTCP}, Payload("x"))
	data[0] = 6<<4 | 5
	var got IPv4
	if err := got.DecodeFromBytes(data); err == nil {
		t.Fatal("version 6 accepted by IPv4 decoder")
	}
}

func TestTCPRoundTripChecksum(t *testing.T) {
	frame := buildTCPFrame(t, 1234, 80, []byte("GET-ish payload"))
	p := Decode(frame, LayerTypeEthernet)
	tcp := p.TCP()
	if tcp == nil {
		t.Fatalf("no TCP layer in %s", p)
	}
	if tcp.SrcPort != 1234 || tcp.DstPort != 80 || tcp.Seq != 1000 || tcp.Ack != 2000 {
		t.Fatalf("decoded %+v", tcp)
	}
	if tcp.Flags != TCPAck|TCPPsh {
		t.Fatalf("flags %b", tcp.Flags)
	}
	// Verify the on-wire checksum against the decoded segment.
	ipPayload := p.IPv4().LayerPayload()
	if !tcp.VerifyChecksum(ipPayload) {
		t.Fatal("valid TCP checksum reported invalid")
	}
	// Corrupt one payload byte: checksum must now fail.
	ipPayload[len(ipPayload)-1] ^= 0x01
	if tcp.VerifyChecksum(ipPayload) {
		t.Fatal("corrupted TCP segment passed checksum")
	}
}

func TestUDPRoundTripChecksum(t *testing.T) {
	ip := &IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoUDP}
	udp := &UDP{SrcPort: 5353, DstPort: 53}
	udp.SetNetworkLayerForChecksum(ip)
	data, err := SerializeToBytes(ip, udp, Payload("dns?"))
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(data, LayerTypeIPv4)
	u := p.UDP()
	if u == nil {
		t.Fatalf("no UDP layer in %s", p)
	}
	if u.SrcPort != 5353 || u.DstPort != 53 {
		t.Fatalf("ports %d->%d", u.SrcPort, u.DstPort)
	}
	seg := p.IPv4().LayerPayload()
	if !u.VerifyChecksum(seg) {
		t.Fatal("valid UDP checksum reported invalid")
	}
	seg[len(seg)-1] ^= 0x01
	if u.VerifyChecksum(seg) {
		t.Fatal("corrupted UDP datagram passed checksum")
	}
}

func TestUDPZeroChecksumPasses(t *testing.T) {
	// Serialize without binding the IP layer: checksum stays 0 = unused.
	data, err := SerializeToBytes(&UDP{SrcPort: 1, DstPort: 2}, Payload("x"))
	if err != nil {
		t.Fatal(err)
	}
	var u UDP
	if err := u.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if !u.VerifyChecksum(data) {
		t.Fatal("zero checksum must pass per RFC 768")
	}
}

func TestDecodeFullStackHTTP(t *testing.T) {
	req := "GET /index.html HTTP/1.1\r\nHost: example.com\r\nUser-Agent: pvn\r\n\r\n"
	frame := buildTCPFrame(t, 40000, 80, []byte(req))
	p := Decode(frame, LayerTypeEthernet)
	if p.ErrLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrLayer())
	}
	if got := p.String(); got != "Ethernet/IPv4/TCP/HTTP" {
		t.Fatalf("layer stack %q", got)
	}
	h := p.HTTP()
	if !h.IsRequest || h.Method != "GET" || h.Path != "/index.html" {
		t.Fatalf("http %+v", h)
	}
	if h.Host() != "example.com" {
		t.Fatalf("host %q", h.Host())
	}
}

func TestDecodeErrorKeepsOuterLayers(t *testing.T) {
	// Valid Ethernet wrapping garbage where IPv4 should be.
	data, _ := SerializeToBytes(&Ethernet{Src: srcM, Dst: dstM, EtherType: EtherTypeIPv4}, Payload("not-ip"))
	p := Decode(data, LayerTypeEthernet)
	if p.Ethernet() == nil {
		t.Fatal("outer Ethernet layer lost on inner decode failure")
	}
	if p.ErrLayer() == nil {
		t.Fatal("decode failure not recorded")
	}
}

func TestFlowOfAndHashSymmetry(t *testing.T) {
	frame := buildTCPFrame(t, 40000, 443, []byte{0x17, 3, 3, 0, 1, 0})
	p := Decode(frame, LayerTypeEthernet)
	f, ok := FlowOf(p)
	if !ok {
		t.Fatal("FlowOf failed on TCP packet")
	}
	if f.Src.Port != 40000 || f.Dst.Port != 443 || f.Proto != IPProtoTCP {
		t.Fatalf("flow %v", f)
	}
	if f.FastHash() != f.Reverse().FastHash() {
		t.Fatal("FastHash not symmetric")
	}
	if f.Canonical() != f.Reverse().Canonical() {
		t.Fatal("Canonical differs for flow vs reverse")
	}
	if f == f.Reverse() {
		t.Fatal("flow equals its reverse")
	}
}

func TestFlowHashDistinguishesFlows(t *testing.T) {
	f1 := Flow{Proto: IPProtoTCP, Src: Endpoint{srcIP, 1}, Dst: Endpoint{dstIP, 2}}
	f2 := Flow{Proto: IPProtoTCP, Src: Endpoint{srcIP, 1}, Dst: Endpoint{dstIP, 3}}
	if f1.FastHash() == f2.FastHash() {
		t.Fatal("distinct flows hash equal (possible, but deterministic here means a bug)")
	}
}

func TestParseIPv4(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"1.2.3.4", true},
		{"255.255.255.255", true},
		{"0.0.0.0", true},
		{"256.1.1.1", false},
		{"1.2.3", false},
		{"a.b.c.d", false},
		{"1.2.3.4.5", false},
		{"", false},
	}
	for _, c := range cases {
		a, err := ParseIPv4(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseIPv4(%q) err=%v, want ok=%v", c.in, err, c.ok)
		}
		if err == nil && a.String() != c.in {
			t.Errorf("round trip %q -> %q", c.in, a.String())
		}
	}
}

func TestChecksumProperties(t *testing.T) {
	// Verifying a buffer containing its own checksum yields zero.
	if err := quick.Check(func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		// Zero a checksum slot, compute, insert, re-verify.
		buf := append([]byte(nil), data...)
		buf[0], buf[1] = 0, 0
		cs := Checksum(buf)
		buf[0], buf[1] = byte(cs>>8), byte(cs)
		return Checksum(buf) == 0
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPrependGrowth(t *testing.T) {
	b := NewBuffer()
	big := make([]byte, 4096)
	for i := range big {
		big[i] = byte(i)
	}
	b.PushBytes(big)          // overflows initial headroom
	b.PushBytes([]byte{1, 2}) // still works after growth
	if b.Len() != 4098 {
		t.Fatalf("Len = %d", b.Len())
	}
	if !bytes.Equal(b.Bytes()[2:10], big[:8]) {
		t.Fatal("content corrupted by growth")
	}
}

func TestBufferClearReuse(t *testing.T) {
	b := NewBuffer()
	b.PushBytes([]byte("first"))
	b.Clear()
	b.PushBytes([]byte("second"))
	if string(b.Bytes()) != "second" {
		t.Fatalf("after reuse: %q", b.Bytes())
	}
}

func TestSerializeRoundTripProperty(t *testing.T) {
	// Any payload must round-trip through the full stack unchanged.
	if err := quick.Check(func(payload []byte, sport, dport uint16) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		ip := &IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoTCP}
		tcp := &TCP{SrcPort: sport, DstPort: dport}
		tcp.SetNetworkLayerForChecksum(ip)
		data, err := SerializeToBytes(ip, tcp, Payload(payload))
		if err != nil {
			return false
		}
		p := Decode(data, LayerTypeIPv4)
		g := p.TCP()
		if g == nil {
			return false
		}
		// Port-based guessing may interpret the payload as an app
		// layer; compare the TCP payload bytes directly.
		return bytes.Equal(g.LayerPayload(), payload)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4RejectsOversizedPayload(t *testing.T) {
	big := make(Payload, 70000)
	_, err := SerializeToBytes(&IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoTCP}, big)
	if err == nil {
		t.Fatal("payload beyond 16-bit length field serialized")
	}
}
