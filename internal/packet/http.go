package packet

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// HTTP is a parsed HTTP/1.x message (request or response). It is
// intentionally tolerant: middleboxes see individual segments, so a
// message may carry a partial body.
type HTTP struct {
	IsRequest bool

	// Request fields.
	Method, Path, Proto string
	// Response fields.
	StatusCode int
	StatusText string

	// Headers preserves receipt order; header names are canonicalized to
	// lower case for lookup via Header().
	Headers []HTTPHeader
	Body    []byte
}

// HTTPHeader is one header line.
type HTTPHeader struct {
	Name, Value string
}

// LayerType implements Layer.
func (*HTTP) LayerType() LayerType { return LayerTypeHTTP }

// LayerPayload implements Layer.
func (h *HTTP) LayerPayload() []byte { return h.Body }

// NextLayerType implements DecodingLayer.
func (*HTTP) NextLayerType() LayerType { return LayerTypeInvalid }

// Header returns the value of the named header (case-insensitive), or "".
func (h *HTTP) Header(name string) string {
	for _, hd := range h.Headers {
		if strings.EqualFold(hd.Name, name) {
			return hd.Value
		}
	}
	return ""
}

// SetHeader replaces the named header or appends it if absent.
func (h *HTTP) SetHeader(name, value string) {
	for i, hd := range h.Headers {
		if strings.EqualFold(hd.Name, name) {
			h.Headers[i].Value = value
			return
		}
	}
	h.Headers = append(h.Headers, HTTPHeader{Name: name, Value: value})
}

// Host returns the request host (Host header).
func (h *HTTP) Host() string { return h.Header("Host") }

// DecodeFromBytes implements DecodingLayer.
func (h *HTTP) DecodeFromBytes(data []byte) error {
	headEnd := bytes.Index(data, []byte("\r\n\r\n"))
	var head, body []byte
	if headEnd < 0 {
		head = data // header-only fragment
	} else {
		head = data[:headEnd]
		body = data[headEnd+4:]
	}
	lines := strings.Split(string(head), "\r\n")
	if len(lines) == 0 || lines[0] == "" {
		return errf(LayerTypeHTTP, "empty message")
	}
	first := strings.SplitN(lines[0], " ", 3)
	if len(first) < 3 {
		return errf(LayerTypeHTTP, "malformed start line %q", lines[0])
	}
	if strings.HasPrefix(first[0], "HTTP/") {
		h.IsRequest = false
		h.Proto = first[0]
		code, err := strconv.Atoi(first[1])
		if err != nil {
			return errf(LayerTypeHTTP, "bad status code %q", first[1])
		}
		h.StatusCode = code
		h.StatusText = first[2]
	} else {
		if !strings.HasPrefix(first[2], "HTTP/") {
			return errf(LayerTypeHTTP, "not an HTTP start line %q", lines[0])
		}
		h.IsRequest = true
		h.Method = first[0]
		h.Path = first[1]
		h.Proto = first[2]
	}
	h.Headers = h.Headers[:0]
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		colon := strings.Index(line, ":")
		if colon < 0 {
			return errf(LayerTypeHTTP, "malformed header %q", line)
		}
		h.Headers = append(h.Headers, HTTPHeader{
			Name:  strings.TrimSpace(line[:colon]),
			Value: strings.TrimSpace(line[colon+1:]),
		})
	}
	h.Body = body
	return nil
}

// SerializeTo implements SerializableLayer.
func (h *HTTP) SerializeTo(b *Buffer) error {
	var sb strings.Builder
	if h.IsRequest {
		proto := h.Proto
		if proto == "" {
			proto = "HTTP/1.1"
		}
		fmt.Fprintf(&sb, "%s %s %s\r\n", h.Method, h.Path, proto)
	} else {
		proto := h.Proto
		if proto == "" {
			proto = "HTTP/1.1"
		}
		fmt.Fprintf(&sb, "%s %d %s\r\n", proto, h.StatusCode, h.StatusText)
	}
	for _, hd := range h.Headers {
		fmt.Fprintf(&sb, "%s: %s\r\n", hd.Name, hd.Value)
	}
	sb.WriteString("\r\n")
	out := append([]byte(sb.String()), h.Body...)
	b.PushBytes(out)
	return nil
}
