package packet

// Decoder is a reusable header decoder for per-packet hot paths. Where
// Decode allocates a fresh Packet and one struct per layer on every
// call, a Decoder owns one instance of each header layer and re-parses
// into them, so steady-state decoding performs zero heap allocations
// (ClickOS-class per-packet budgets, paper §3.3, leave no room for a
// malloc per header).
//
// The trade-off is aliasing: the *Packet returned by DecodeHeaders and
// every layer it exposes are views into the Decoder, valid only until
// the next DecodeHeaders call. Callers that need the decoded form to
// outlive the next packet must use Decode instead.
//
// A Decoder is not goroutine-safe; give each worker goroutine its own
// (they are small — one struct per header type).
type Decoder struct {
	pkt Packet
	eth Ethernet
	ip  IPv4
	tcp TCP
	udp UDP
	// layers is the backing array for pkt.layers: link + network +
	// transport is the deepest stack DecodeHeaders builds.
	layers [3]Layer
}

// DecodeHeaders parses the link/network/transport headers of data into
// the decoder's reusable layer structs and returns a packet view over
// them. Unlike Decode it never descends into application layers
// (DNS/TLS/HTTP/Payload): decoding stops after TCP/UDP, whose
// LayerPayload still exposes the application bytes. Decode semantics
// are otherwise preserved — a parse error is recorded in ErrLayer and
// the outer layers stay usable.
func (d *Decoder) DecodeHeaders(data []byte, first LayerType) *Packet {
	d.pkt = Packet{data: data, layers: d.layers[:0]}
	cur := data
	next := first
	sawIP := false
	for len(cur) > 0 {
		var dl DecodingLayer
		switch next {
		case LayerTypeEthernet:
			dl = &d.eth
		case LayerTypeIPv4:
			dl = &d.ip
		case LayerTypeTCP:
			dl = &d.tcp
		case LayerTypeUDP:
			dl = &d.udp
		default:
			// Application layer (or unknown): headers are done.
			return &d.pkt
		}
		if err := dl.DecodeFromBytes(cur); err != nil {
			d.pkt.errLayer = err
			return &d.pkt
		}
		d.pkt.layers = append(d.pkt.layers, dl.(Layer))
		// Bind checksums like Decode, so VerifyChecksum works on the
		// reused structs too — but only under an IPv4 header decoded in
		// THIS call, never a stale one from the previous packet.
		switch l := dl.(type) {
		case *IPv4:
			sawIP = true
		case *TCP:
			if sawIP {
				l.SetNetworkLayerForChecksum(&d.ip)
			} else {
				l.SetNetworkLayerForChecksum(nil)
			}
		case *UDP:
			if sawIP {
				l.SetNetworkLayerForChecksum(&d.ip)
			} else {
				l.SetNetworkLayerForChecksum(nil)
			}
		}
		next = dl.NextLayerType()
		cur = dl.LayerPayload()
	}
	return &d.pkt
}
