package packet

// Buffer is a prepend-oriented serialization buffer: layers write
// outermost-last, each prepending its header in front of what is already
// there. This mirrors gopacket's SerializeBuffer and avoids copying the
// payload once per layer.
type Buffer struct {
	// data holds the bytes; the live region is data[start:].
	data  []byte
	start int
}

// NewBuffer returns a buffer with headroom for typical header stacks.
func NewBuffer() *Buffer {
	const headroom = 128
	return &Buffer{data: make([]byte, headroom), start: headroom}
}

// Bytes returns the serialized bytes accumulated so far. The slice is
// invalidated by further Prepend/Append calls.
func (b *Buffer) Bytes() []byte { return b.data[b.start:] }

// Len returns the current content length.
func (b *Buffer) Len() int { return len(b.data) - b.start }

// Prepend returns n writable bytes in front of the current content.
func (b *Buffer) Prepend(n int) []byte {
	if b.start < n {
		grow := n - b.start + 256
		nd := make([]byte, len(b.data)+grow)
		copy(nd[grow:], b.data)
		b.data = nd
		b.start += grow
	}
	b.start -= n
	s := b.data[b.start : b.start+n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Append returns n writable bytes after the current content. Used by
// layers that serialize trailers or by payload injection.
func (b *Buffer) Append(n int) []byte {
	old := len(b.data)
	b.data = append(b.data, make([]byte, n)...)
	return b.data[old : old+n]
}

// PushBytes prepends a copy of p.
func (b *Buffer) PushBytes(p []byte) {
	copy(b.Prepend(len(p)), p)
}

// Clear resets the buffer for reuse, keeping its backing array.
func (b *Buffer) Clear() {
	b.start = len(b.data)
}

// Serialize writes the given layers into b, outermost first in the
// argument list (Ethernet, IPv4, TCP, payload), which is the natural
// reading order; internally they are applied in reverse so each can
// prepend its header around its payload.
func Serialize(b *Buffer, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return err
		}
	}
	return nil
}

// SerializeToBytes is a convenience that serializes layers into a fresh
// buffer and returns the bytes.
func SerializeToBytes(layers ...SerializableLayer) ([]byte, error) {
	b := NewBuffer()
	if err := Serialize(b, layers...); err != nil {
		return nil, err
	}
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out, nil
}
