package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func dnsRoundTrip(t *testing.T, in *DNS) *DNS {
	t.Helper()
	data, err := SerializeToBytes(in)
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	var out DNS
	if err := out.DecodeFromBytes(data); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &out
}

func TestDNSQueryRoundTrip(t *testing.T) {
	q := &DNS{ID: 0x1234, RD: true, Questions: []DNSQuestion{{Name: "www.example.com", Type: DNSTypeA, Class: DNSClassIN}}}
	got := dnsRoundTrip(t, q)
	if got.ID != 0x1234 || !got.RD || got.QR {
		t.Fatalf("header %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "www.example.com" || got.Questions[0].Type != DNSTypeA {
		t.Fatalf("questions %+v", got.Questions)
	}
}

func TestDNSResponseRoundTrip(t *testing.T) {
	addr := MustParseIPv4("93.184.216.34")
	r := &DNS{
		ID: 7, QR: true, AA: true, RA: true, AD: true,
		Questions: []DNSQuestion{{Name: "example.com", Type: DNSTypeA, Class: DNSClassIN}},
		Answers: []DNSRecord{
			{Name: "example.com", Type: DNSTypeA, Class: DNSClassIN, TTL: 300, Data: addr[:]},
			{Name: "example.com", Type: DNSTypeRRSIG, Class: DNSClassIN, TTL: 300, Data: []byte("sig-bytes")},
		},
		Authorities: []DNSRecord{{Name: "example.com", Type: DNSTypeNS, Class: DNSClassIN, TTL: 60, Data: []byte{2, 'n', 's', 0}}},
	}
	got := dnsRoundTrip(t, r)
	if !got.QR || !got.AA || !got.AD {
		t.Fatalf("flags %+v", got)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers %d", len(got.Answers))
	}
	if got.Answers[0].A() != addr {
		t.Fatalf("A record %v", got.Answers[0].A())
	}
	if got.Answers[1].TXT() != "sig-bytes" {
		t.Fatalf("RRSIG data %q", got.Answers[1].Data)
	}
	if len(got.Authorities) != 1 || got.Authorities[0].Type != DNSTypeNS {
		t.Fatalf("authorities %+v", got.Authorities)
	}
}

func TestDNSRcodeRoundTrip(t *testing.T) {
	r := &DNS{ID: 1, QR: true, Rcode: DNSRcodeNXDomain}
	got := dnsRoundTrip(t, r)
	if got.Rcode != DNSRcodeNXDomain {
		t.Fatalf("rcode %d", got.Rcode)
	}
}

func TestDNSCompressionPointer(t *testing.T) {
	// Build a message by hand that uses a compression pointer in the
	// answer name referencing the question name at offset 12.
	var msg []byte
	msg = binary.BigEndian.AppendUint16(msg, 0x42)   // ID
	msg = binary.BigEndian.AppendUint16(msg, 0x8180) // QR|RD|RA
	msg = binary.BigEndian.AppendUint16(msg, 1)      // QD
	msg = binary.BigEndian.AppendUint16(msg, 1)      // AN
	msg = binary.BigEndian.AppendUint16(msg, 0)
	msg = binary.BigEndian.AppendUint16(msg, 0)
	// Question: example.com A IN
	msg = append(msg, 7)
	msg = append(msg, "example"...)
	msg = append(msg, 3)
	msg = append(msg, "com"...)
	msg = append(msg, 0)
	msg = binary.BigEndian.AppendUint16(msg, DNSTypeA)
	msg = binary.BigEndian.AppendUint16(msg, DNSClassIN)
	// Answer: pointer to offset 12.
	msg = append(msg, 0xc0, 12)
	msg = binary.BigEndian.AppendUint16(msg, DNSTypeA)
	msg = binary.BigEndian.AppendUint16(msg, DNSClassIN)
	msg = binary.BigEndian.AppendUint32(msg, 60)
	msg = binary.BigEndian.AppendUint16(msg, 4)
	msg = append(msg, 1, 2, 3, 4)

	var d DNS
	if err := d.DecodeFromBytes(msg); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(d.Answers) != 1 || d.Answers[0].Name != "example.com" {
		t.Fatalf("compressed name decoded as %+v", d.Answers)
	}
	if d.Answers[0].A() != (IPv4Address{1, 2, 3, 4}) {
		t.Fatalf("address %v", d.Answers[0].A())
	}
}

func TestDNSCompressionLoopRejected(t *testing.T) {
	var msg []byte
	msg = binary.BigEndian.AppendUint16(msg, 1)
	msg = binary.BigEndian.AppendUint16(msg, 0)
	msg = binary.BigEndian.AppendUint16(msg, 1) // one question
	msg = binary.BigEndian.AppendUint16(msg, 0)
	msg = binary.BigEndian.AppendUint16(msg, 0)
	msg = binary.BigEndian.AppendUint16(msg, 0)
	msg = append(msg, 0xc0, 12) // pointer to itself
	msg = binary.BigEndian.AppendUint16(msg, DNSTypeA)
	msg = binary.BigEndian.AppendUint16(msg, DNSClassIN)
	var d DNS
	if err := d.DecodeFromBytes(msg); err == nil {
		t.Fatal("self-referencing compression pointer accepted")
	}
}

func TestDNSTruncatedInputs(t *testing.T) {
	good := &DNS{ID: 1, Questions: []DNSQuestion{{Name: "a.b", Type: DNSTypeA, Class: DNSClassIN}}}
	data, err := SerializeToBytes(good)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(data); cut++ {
		var d DNS
		if err := d.DecodeFromBytes(data[:cut]); err == nil && cut < len(data)-0 {
			// Short header or truncated question must error. (Every
			// strict prefix of this message is invalid.)
			t.Fatalf("truncated message of %d/%d bytes decoded", cut, len(data))
		}
	}
}

func TestDNSBadLabelRejectedOnSerialize(t *testing.T) {
	d := &DNS{Questions: []DNSQuestion{{Name: "a..b", Type: DNSTypeA, Class: DNSClassIN}}}
	if _, err := SerializeToBytes(d); err == nil {
		t.Fatal("empty label serialized")
	}
}

func TestDNSInUDPStack(t *testing.T) {
	ip := &IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoUDP}
	udp := &UDP{SrcPort: 9999, DstPort: 53}
	udp.SetNetworkLayerForChecksum(ip)
	q := &DNS{ID: 5, RD: true, Questions: []DNSQuestion{{Name: "pvn.test", Type: DNSTypeA, Class: DNSClassIN}}}
	data, err := SerializeToBytes(ip, udp, q)
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(data, LayerTypeIPv4)
	if p.ErrLayer() != nil {
		t.Fatalf("decode: %v (%s)", p.ErrLayer(), p)
	}
	d := p.DNS()
	if d == nil {
		t.Fatalf("no DNS layer in %s", p)
	}
	if d.Questions[0].Name != "pvn.test" {
		t.Fatalf("question %+v", d.Questions[0])
	}
}

func TestDNSQuestionsSliceReuse(t *testing.T) {
	var d DNS
	msg1, _ := SerializeToBytes(&DNS{ID: 1, Questions: []DNSQuestion{{Name: "one.example", Type: DNSTypeA, Class: DNSClassIN}}})
	msg2, _ := SerializeToBytes(&DNS{ID: 2})
	if err := d.DecodeFromBytes(msg1); err != nil {
		t.Fatal(err)
	}
	if err := d.DecodeFromBytes(msg2); err != nil {
		t.Fatal(err)
	}
	if len(d.Questions) != 0 {
		t.Fatalf("stale questions after reuse: %+v", d.Questions)
	}
}

func TestDNSSerializedFormStable(t *testing.T) {
	d := &DNS{ID: 3, Questions: []DNSQuestion{{Name: "x.y", Type: DNSTypeA, Class: DNSClassIN}}}
	a, _ := SerializeToBytes(d)
	b, _ := SerializeToBytes(d)
	if !bytes.Equal(a, b) {
		t.Fatal("serialization not deterministic")
	}
}
