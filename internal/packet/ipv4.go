package packet

import "encoding/binary"

// IP protocol numbers this stack understands.
const (
	IPProtoICMP byte = 1
	IPProtoTCP  byte = 6
	IPProtoUDP  byte = 17
)

// IPv4 is an IPv4 header. Options are accepted on decode (skipped per IHL)
// but never emitted on serialize.
type IPv4 struct {
	Version  byte // always 4
	IHL      byte // header length in 32-bit words
	TOS      byte
	Length   uint16 // total length incl. header; recomputed on serialize
	ID       uint16
	Flags    byte   // 3 bits
	FragOff  uint16 // 13 bits
	TTL      byte
	Protocol byte
	Checksum uint16 // recomputed on serialize
	Src, Dst IPv4Address

	payload []byte
}

// LayerType implements Layer.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// NextLayerType implements DecodingLayer.
func (ip *IPv4) NextLayerType() LayerType {
	switch ip.Protocol {
	case IPProtoTCP:
		return LayerTypeTCP
	case IPProtoUDP:
		return LayerTypeUDP
	}
	return LayerTypePayload
}

// DecodeFromBytes implements DecodingLayer. It verifies the header
// checksum and rejects corrupted headers.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return errf(LayerTypeIPv4, "header too short (%d bytes)", len(data))
	}
	ip.Version = data[0] >> 4
	ip.IHL = data[0] & 0x0f
	if ip.Version != 4 {
		return errf(LayerTypeIPv4, "version %d", ip.Version)
	}
	hlen := int(ip.IHL) * 4
	if hlen < 20 || hlen > len(data) {
		return errf(LayerTypeIPv4, "bad IHL %d", ip.IHL)
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = byte(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])

	if Checksum(data[:hlen]) != 0 {
		return errf(LayerTypeIPv4, "header checksum mismatch")
	}
	if int(ip.Length) < hlen {
		return errf(LayerTypeIPv4, "total length %d < header length %d", ip.Length, hlen)
	}
	end := int(ip.Length)
	if end > len(data) {
		end = len(data) // tolerate truncated captures
	}
	ip.payload = data[hlen:end]
	return nil
}

// SerializeTo implements SerializableLayer. Length and Checksum are
// computed from the current buffer contents; IHL is forced to 5. The
// payload must fit the 16-bit total-length field (65515 bytes).
func (ip *IPv4) SerializeTo(b *Buffer) error {
	payloadLen := b.Len()
	if payloadLen > 65535-20 {
		return errf(LayerTypeIPv4, "payload %d bytes exceeds IPv4 maximum", payloadLen)
	}
	h := b.Prepend(20)
	h[0] = 4<<4 | 5
	h[1] = ip.TOS
	binary.BigEndian.PutUint16(h[2:4], uint16(20+payloadLen))
	binary.BigEndian.PutUint16(h[4:6], ip.ID)
	binary.BigEndian.PutUint16(h[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	h[8] = ttl
	h[9] = ip.Protocol
	copy(h[12:16], ip.Src[:])
	copy(h[16:20], ip.Dst[:])
	binary.BigEndian.PutUint16(h[10:12], Checksum(h))
	return nil
}

// Checksum computes the RFC 1071 Internet checksum of data. Verifying a
// buffer that embeds its own checksum yields 0.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the TCP/UDP pseudo-header.
func pseudoHeaderSum(src, dst IPv4Address, proto byte, length int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum computes the TCP/UDP checksum of segment (which must
// have its checksum field zeroed) under the given pseudo-header.
func transportChecksum(src, dst IPv4Address, proto byte, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i : i+2]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
