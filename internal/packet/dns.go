package packet

import (
	"encoding/binary"
	"strings"
)

// DNS record types this stack understands.
const (
	DNSTypeA     uint16 = 1
	DNSTypeNS    uint16 = 2
	DNSTypeCNAME uint16 = 5
	DNSTypeTXT   uint16 = 16
	DNSTypeAAAA  uint16 = 28
	DNSTypeRRSIG uint16 = 46
)

// DNSClassIN is the Internet class, the only one used here.
const DNSClassIN uint16 = 1

// DNS response codes.
const (
	DNSRcodeNoError  byte = 0
	DNSRcodeFormErr  byte = 1
	DNSRcodeServFail byte = 2
	DNSRcodeNXDomain byte = 3
)

// DNSQuestion is one query in the question section.
type DNSQuestion struct {
	Name  string
	Type  uint16
	Class uint16
}

// DNSRecord is one resource record.
type DNSRecord struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	// Data is the raw RDATA. For A records it is the 4 address bytes;
	// helpers below interpret common types.
	Data []byte
}

// A returns the record's IPv4 address for A records, or the zero address.
func (r *DNSRecord) A() IPv4Address {
	var a IPv4Address
	if r.Type == DNSTypeA && len(r.Data) == 4 {
		copy(a[:], r.Data)
	}
	return a
}

// TXT returns the record data as a string for TXT-like records.
func (r *DNSRecord) TXT() string { return string(r.Data) }

// DNS is a DNS message (RFC 1035 wire format). Name compression pointers
// are followed on decode; serialization always emits uncompressed names.
type DNS struct {
	ID     uint16
	QR     bool // response flag
	Opcode byte
	AA     bool // authoritative answer
	TC     bool // truncated
	RD     bool // recursion desired
	RA     bool // recursion available
	AD     bool // authenticated data (DNSSEC)
	Rcode  byte

	Questions   []DNSQuestion
	Answers     []DNSRecord
	Authorities []DNSRecord
	Additionals []DNSRecord
}

// LayerType implements Layer.
func (*DNS) LayerType() LayerType { return LayerTypeDNS }

// LayerPayload implements Layer; DNS is a leaf layer.
func (*DNS) LayerPayload() []byte { return nil }

// NextLayerType implements DecodingLayer.
func (*DNS) NextLayerType() LayerType { return LayerTypeInvalid }

// DecodeFromBytes implements DecodingLayer.
func (d *DNS) DecodeFromBytes(data []byte) error {
	if len(data) < 12 {
		return errf(LayerTypeDNS, "message too short (%d bytes)", len(data))
	}
	d.ID = binary.BigEndian.Uint16(data[0:2])
	f := binary.BigEndian.Uint16(data[2:4])
	d.QR = f&0x8000 != 0
	d.Opcode = byte(f >> 11 & 0xf)
	d.AA = f&0x0400 != 0
	d.TC = f&0x0200 != 0
	d.RD = f&0x0100 != 0
	d.RA = f&0x0080 != 0
	d.AD = f&0x0020 != 0
	d.Rcode = byte(f & 0xf)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	ns := int(binary.BigEndian.Uint16(data[8:10]))
	ar := int(binary.BigEndian.Uint16(data[10:12]))

	off := 12
	d.Questions = d.Questions[:0]
	for i := 0; i < qd; i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return err
		}
		off += n
		if off+4 > len(data) {
			return errf(LayerTypeDNS, "truncated question")
		}
		d.Questions = append(d.Questions, DNSQuestion{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
		})
		off += 4
	}
	var err error
	if d.Answers, off, err = decodeRecords(data, off, an); err != nil {
		return err
	}
	if d.Authorities, off, err = decodeRecords(data, off, ns); err != nil {
		return err
	}
	if d.Additionals, _, err = decodeRecords(data, off, ar); err != nil {
		return err
	}
	return nil
}

func decodeRecords(data []byte, off, count int) ([]DNSRecord, int, error) {
	var recs []DNSRecord
	for i := 0; i < count; i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return nil, off, err
		}
		off += n
		if off+10 > len(data) {
			return nil, off, errf(LayerTypeDNS, "truncated record header")
		}
		r := DNSRecord{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
			TTL:   binary.BigEndian.Uint32(data[off+4 : off+8]),
		}
		rdlen := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
		off += 10
		if off+rdlen > len(data) {
			return nil, off, errf(LayerTypeDNS, "truncated RDATA")
		}
		r.Data = data[off : off+rdlen]
		off += rdlen
		recs = append(recs, r)
	}
	return recs, off, nil
}

// decodeName parses a possibly-compressed domain name starting at off and
// returns the name and the number of bytes consumed at off (not counting
// bytes reached via compression pointers).
func decodeName(data []byte, off int) (string, int, error) {
	var parts []string
	consumed := 0
	jumped := false
	pos := off
	for hops := 0; ; hops++ {
		if hops > 64 {
			return "", 0, errf(LayerTypeDNS, "compression loop")
		}
		if pos >= len(data) {
			return "", 0, errf(LayerTypeDNS, "name runs past message")
		}
		l := int(data[pos])
		switch {
		case l == 0:
			if !jumped {
				consumed = pos - off + 1
			}
			return strings.Join(parts, "."), consumed, nil
		case l&0xc0 == 0xc0:
			if pos+1 >= len(data) {
				return "", 0, errf(LayerTypeDNS, "truncated compression pointer")
			}
			if !jumped {
				consumed = pos - off + 2
				jumped = true
			}
			pos = int(binary.BigEndian.Uint16(data[pos:pos+2]) & 0x3fff)
		case l > 63:
			return "", 0, errf(LayerTypeDNS, "label length %d", l)
		default:
			if pos+1+l > len(data) {
				return "", 0, errf(LayerTypeDNS, "truncated label")
			}
			parts = append(parts, string(data[pos+1:pos+1+l]))
			pos += 1 + l
		}
	}
}

// encodeName appends the uncompressed wire form of name to dst.
func encodeName(dst []byte, name string) ([]byte, error) {
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, errf(LayerTypeDNS, "bad label %q in %q", label, name)
			}
			dst = append(dst, byte(len(label)))
			dst = append(dst, label...)
		}
	}
	return append(dst, 0), nil
}

// SerializeTo implements SerializableLayer.
func (d *DNS) SerializeTo(b *Buffer) error {
	out := make([]byte, 12)
	binary.BigEndian.PutUint16(out[0:2], d.ID)
	var f uint16
	if d.QR {
		f |= 0x8000
	}
	f |= uint16(d.Opcode&0xf) << 11
	if d.AA {
		f |= 0x0400
	}
	if d.TC {
		f |= 0x0200
	}
	if d.RD {
		f |= 0x0100
	}
	if d.RA {
		f |= 0x0080
	}
	if d.AD {
		f |= 0x0020
	}
	f |= uint16(d.Rcode & 0xf)
	binary.BigEndian.PutUint16(out[2:4], f)
	binary.BigEndian.PutUint16(out[4:6], uint16(len(d.Questions)))
	binary.BigEndian.PutUint16(out[6:8], uint16(len(d.Answers)))
	binary.BigEndian.PutUint16(out[8:10], uint16(len(d.Authorities)))
	binary.BigEndian.PutUint16(out[10:12], uint16(len(d.Additionals)))

	var err error
	for _, q := range d.Questions {
		if out, err = encodeName(out, q.Name); err != nil {
			return err
		}
		out = binary.BigEndian.AppendUint16(out, q.Type)
		out = binary.BigEndian.AppendUint16(out, q.Class)
	}
	for _, sec := range [][]DNSRecord{d.Answers, d.Authorities, d.Additionals} {
		for _, r := range sec {
			if out, err = encodeName(out, r.Name); err != nil {
				return err
			}
			out = binary.BigEndian.AppendUint16(out, r.Type)
			out = binary.BigEndian.AppendUint16(out, r.Class)
			out = binary.BigEndian.AppendUint32(out, r.TTL)
			out = binary.BigEndian.AppendUint16(out, uint16(len(r.Data)))
			out = append(out, r.Data...)
		}
	}
	b.PushBytes(out)
	return nil
}
