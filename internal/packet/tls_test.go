package packet

import (
	"bytes"
	"testing"
)

func TestTLSRecordRoundTrip(t *testing.T) {
	in := &TLS{Records: []TLSRecord{
		BuildApplicationData([]byte("secret")),
		{Type: TLSTypeAlert, Payload: []byte{2, 40}},
	}}
	data, err := SerializeToBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	var out TLS
	if err := out.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != 2 {
		t.Fatalf("records %d", len(out.Records))
	}
	if out.Records[0].Type != TLSTypeApplicationData || string(out.Records[0].Payload) != "secret" {
		t.Fatalf("record 0: %+v", out.Records[0])
	}
	if out.Records[1].Type != TLSTypeAlert {
		t.Fatalf("record 1: %+v", out.Records[1])
	}
	if out.Records[0].Version != TLSVersion12 {
		t.Fatalf("version %04x", out.Records[0].Version)
	}
}

func TestTLSTruncatedRejected(t *testing.T) {
	data, _ := SerializeToBytes(&TLS{Records: []TLSRecord{BuildApplicationData([]byte("abcdef"))}})
	var out TLS
	if err := out.DecodeFromBytes(data[:len(data)-2]); err == nil {
		t.Fatal("truncated record accepted")
	}
	if err := out.DecodeFromBytes(data[:3]); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestTLSUnknownContentType(t *testing.T) {
	var out TLS
	if err := out.DecodeFromBytes([]byte{99, 3, 3, 0, 0}); err == nil {
		t.Fatal("bogus content type accepted")
	}
}

func TestClientHelloRoundTrip(t *testing.T) {
	var random [32]byte
	for i := range random {
		random[i] = byte(i)
	}
	rec := BuildClientHello("secure.example.com", random, []uint16{0x1301, 0x1302})
	hs, err := rec.Handshakes()
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 1 || hs[0].Type != TLSHandshakeClientHello {
		t.Fatalf("handshakes %+v", hs)
	}
	ch, err := ParseClientHello(hs[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if ch.ServerName != "secure.example.com" {
		t.Fatalf("SNI %q", ch.ServerName)
	}
	if ch.Random != random {
		t.Fatal("random mismatch")
	}
	if len(ch.CipherSuites) != 2 || ch.CipherSuites[0] != 0x1301 {
		t.Fatalf("suites %v", ch.CipherSuites)
	}
}

func TestClientHelloWithoutSNI(t *testing.T) {
	rec := BuildClientHello("", [32]byte{}, []uint16{0x1301})
	hs, _ := rec.Handshakes()
	ch, err := ParseClientHello(hs[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if ch.ServerName != "" {
		t.Fatalf("unexpected SNI %q", ch.ServerName)
	}
}

func TestClientHelloTruncatedRejected(t *testing.T) {
	rec := BuildClientHello("h.example", [32]byte{}, []uint16{1})
	hs, _ := rec.Handshakes()
	body := hs[0].Body
	for cut := 1; cut < len(body); cut += 7 {
		if _, err := ParseClientHello(body[:cut]); err == nil && cut < 35 {
			t.Fatalf("truncated ClientHello (%d bytes) accepted", cut)
		}
	}
}

func TestCertificateChainRoundTrip(t *testing.T) {
	chain := [][]byte{[]byte("leaf-cert-blob"), []byte("intermediate"), []byte("root")}
	rec := BuildCertificateRecord(chain)
	hs, err := rec.Handshakes()
	if err != nil {
		t.Fatal(err)
	}
	if hs[0].Type != TLSHandshakeCertificate {
		t.Fatalf("type %d", hs[0].Type)
	}
	got, err := ParseCertificateChain(hs[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("chain length %d", len(got))
	}
	for i := range chain {
		if !bytes.Equal(got[i], chain[i]) {
			t.Fatalf("cert %d mismatch", i)
		}
	}
}

func TestCertificateChainEmptyAndTruncated(t *testing.T) {
	rec := BuildCertificateRecord(nil)
	hs, _ := rec.Handshakes()
	got, err := ParseCertificateChain(hs[0].Body)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty chain: %v %v", got, err)
	}
	if _, err := ParseCertificateChain([]byte{0, 0}); err == nil {
		t.Fatal("2-byte body accepted")
	}
	if _, err := ParseCertificateChain([]byte{0, 0, 9, 0, 0, 5, 'a'}); err == nil {
		t.Fatal("truncated entry accepted")
	}
}

func TestMultipleHandshakesInOneRecord(t *testing.T) {
	r1 := BuildClientHello("a.example", [32]byte{}, []uint16{1})
	r2 := BuildCertificateRecord([][]byte{[]byte("c")})
	merged := TLSRecord{Type: TLSTypeHandshake, Version: TLSVersion12,
		Payload: append(append([]byte{}, r1.Payload...), r2.Payload...)}
	hs, err := merged.Handshakes()
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 || hs[0].Type != TLSHandshakeClientHello || hs[1].Type != TLSHandshakeCertificate {
		t.Fatalf("handshakes %+v", hs)
	}
}

func TestHandshakesOnNonHandshakeRecord(t *testing.T) {
	rec := BuildApplicationData([]byte("x"))
	if _, err := rec.Handshakes(); err == nil {
		t.Fatal("Handshakes on app-data record succeeded")
	}
}

func TestTLSOverTCPPort443(t *testing.T) {
	ip := &IPv4{Src: srcIP, Dst: dstIP, Protocol: IPProtoTCP}
	tcp := &TCP{SrcPort: 50000, DstPort: 443}
	tcp.SetNetworkLayerForChecksum(ip)
	rec := BuildClientHello("pvn.example", [32]byte{9}, []uint16{0x1301})
	tlsBytes, err := SerializeToBytes(&TLS{Records: []TLSRecord{rec}})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := SerializeToBytes(ip, tcp, Payload(tlsBytes))
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(frame, LayerTypeIPv4)
	tl := p.TLS()
	if tl == nil {
		t.Fatalf("no TLS layer in %s", p)
	}
	hs, _ := tl.Records[0].Handshakes()
	ch, err := ParseClientHello(hs[0].Body)
	if err != nil || ch.ServerName != "pvn.example" {
		t.Fatalf("SNI through full stack: %v %v", ch, err)
	}
}
