package packet

import (
	"testing"
)

func decoderFrame(t *testing.T, sport, dport uint16, payload string) []byte {
	t.Helper()
	ip := &IPv4{Src: MustParseIPv4("10.0.0.5"), Dst: MustParseIPv4("93.184.216.34"), Protocol: IPProtoTCP}
	tcp := &TCP{SrcPort: sport, DstPort: dport}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := SerializeToBytes(ip, tcp, Payload(payload))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDecoderMatchesDecode checks the reusable header decoder agrees
// with the allocating Decode on every header field across reuse, i.e.
// that no state leaks from one packet into the next.
func TestDecoderMatchesDecode(t *testing.T) {
	var d Decoder
	frames := [][]byte{
		decoderFrame(t, 40000, 443, "hello"),
		decoderFrame(t, 1234, 80, ""),
		decoderFrame(t, 53, 53, "xyz"),
	}
	// UDP frame in the middle to exercise the transport switch.
	ip := &IPv4{Src: MustParseIPv4("192.0.2.1"), Dst: MustParseIPv4("198.51.100.7"), Protocol: IPProtoUDP}
	udp := &UDP{SrcPort: 5353, DstPort: 53}
	udp.SetNetworkLayerForChecksum(ip)
	uf, err := SerializeToBytes(ip, udp, Payload("q"))
	if err != nil {
		t.Fatal(err)
	}
	frames = append(frames, uf, frames[0])

	for i, data := range frames {
		want := Decode(data, LayerTypeIPv4)
		got := d.DecodeHeaders(data, LayerTypeIPv4)
		wip, gip := want.IPv4(), got.IPv4()
		if wip == nil || gip == nil {
			t.Fatalf("frame %d: missing IPv4 layer (want %v, got %v)", i, wip, gip)
		}
		if wip.Src != gip.Src || wip.Dst != gip.Dst || wip.Protocol != gip.Protocol || wip.Length != gip.Length {
			t.Errorf("frame %d: IPv4 mismatch: want %+v got %+v", i, wip, gip)
		}
		switch {
		case want.TCP() != nil:
			wt, gt := want.TCP(), got.TCP()
			if gt == nil {
				t.Fatalf("frame %d: decoder lost TCP layer", i)
			}
			if wt.SrcPort != gt.SrcPort || wt.DstPort != gt.DstPort || wt.Seq != gt.Seq {
				t.Errorf("frame %d: TCP mismatch: want %+v got %+v", i, wt, gt)
			}
			if string(wt.LayerPayload()) != string(gt.LayerPayload()) {
				t.Errorf("frame %d: payload mismatch", i)
			}
			if !gt.VerifyChecksum(gipSegment(data)) {
				t.Errorf("frame %d: checksum binding broken on reused TCP", i)
			}
		case want.UDP() != nil:
			wu, gu := want.UDP(), got.UDP()
			if gu == nil {
				t.Fatalf("frame %d: decoder lost UDP layer", i)
			}
			if wu.SrcPort != gu.SrcPort || wu.DstPort != gu.DstPort {
				t.Errorf("frame %d: UDP mismatch: want %+v got %+v", i, wu, gu)
			}
		}
	}
}

// gipSegment returns the transport segment bytes of a 20-byte-header
// IPv4 frame.
func gipSegment(data []byte) []byte { return data[20:] }

// TestDecoderStopsAtTransport: DecodeHeaders must not build application
// layers — port-80 traffic decodes to IPv4/TCP, not IPv4/TCP/HTTP.
func TestDecoderStopsAtTransport(t *testing.T) {
	var d Decoder
	data := decoderFrame(t, 40000, 80, "GET / HTTP/1.1\r\nHost: h\r\n\r\n")
	p := d.DecodeHeaders(data, LayerTypeIPv4)
	if p.HTTP() != nil {
		t.Error("DecodeHeaders built an HTTP layer")
	}
	if p.TCP() == nil {
		t.Fatal("missing TCP layer")
	}
	if got := string(p.TCP().LayerPayload()); got[:3] != "GET" {
		t.Errorf("application bytes lost: %q", got)
	}
}

// TestDecoderTruncated: errors surface via ErrLayer, outer layers stay
// usable, and the error does not leak into the next (valid) packet.
func TestDecoderTruncated(t *testing.T) {
	var d Decoder
	good := decoderFrame(t, 40000, 443, "x")
	bad := good[:22] // IPv4 header intact, TCP truncated
	// Rewrite total length so the IPv4 layer itself parses cleanly.
	p := d.DecodeHeaders(bad, LayerTypeIPv4)
	if p.ErrLayer() == nil {
		t.Error("truncated TCP decoded without error")
	}
	if p.IPv4() == nil {
		t.Error("outer IPv4 layer lost on truncation")
	}
	p = d.DecodeHeaders(good, LayerTypeIPv4)
	if p.ErrLayer() != nil {
		t.Errorf("error leaked across reuse: %v", p.ErrLayer())
	}
	if p.TCP() == nil {
		t.Error("valid frame lost its TCP layer after a truncated one")
	}
}

// TestDecoderZeroAlloc pins the whole point: steady-state header
// decoding allocates nothing.
func TestDecoderZeroAlloc(t *testing.T) {
	var d Decoder
	data := decoderFrame(t, 40000, 443, "hello world")
	got := testing.AllocsPerRun(200, func() {
		p := d.DecodeHeaders(data, LayerTypeIPv4)
		if p.TCP() == nil {
			t.Fatal("decode failed")
		}
	})
	if got != 0 {
		t.Errorf("DecodeHeaders allocates %.1f per packet, want 0", got)
	}
}
