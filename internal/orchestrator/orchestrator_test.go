package orchestrator

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pvn/internal/billing"
	"pvn/internal/core"
	"pvn/internal/netsim"
	"pvn/internal/packet"
	"pvn/internal/pvnc"
)

// testModules prices the one module every test chain deploys.
var testModules = map[string]int64{"tcp-proxy": 40}

// newFleet builds n hosts spread round-robin over domains racks.
func newFleet(t *testing.T, clock *netsim.Clock, n, domains int, tmpl *pvnc.TemplateCache) []*Host {
	t.Helper()
	hosts := make([]*Host, n)
	for i := range hosts {
		h, err := NewHost(HostParams{
			Spec: HostSpec{
				Name:          fmt.Sprintf("host%02d", i),
				FailureDomain: fmt.Sprintf("rack%d", i%domains),
				CPUMilli:      4000, MemBytes: 256 << 20,
				DelayUs:         int64(100 * (1 + i%domains)),
				CostPerCPUMilli: int64(1 + i%3), CostPerMemMB: 1,
			},
			Clock:     clock,
			Supported: testModules,
			Templates: tmpl,
		})
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = h
	}
	return hosts
}

// chainDevice builds subscriber i of the shared edge module (constant
// template shape — only owner/device vary).
func chainDevice(t *testing.T, i int) *core.Device {
	t.Helper()
	addr := fmt.Sprintf("10.1.%d.%d", i/200, 1+i%200)
	src := fmt.Sprintf(`pvnc edge-std
owner owner-%03d
device %s
middlebox prox tcp-proxy
chain fast prox
policy 10 match proto=tcp dport=80 via=fast action=forward
policy 0 match any action=forward
`, i, addr)
	cfg, err := pvnc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Device{ID: fmt.Sprintf("dev-%03d", i), Addr: packet.MustParseIPv4(addr),
		Config: cfg, BudgetMicro: 100_000}
}

func chainReq(i int, dev *core.Device) ChainRequest {
	return ChainRequest{
		ID: fmt.Sprintf("chain-%03d", i), Tenant: "t-common",
		CPUMilli: 200, MemBytes: 16 << 20, Priority: 10,
	}
}

// pump pushes one HTTP-ish packet through a session and returns the
// bytes the switch metered (0 when the deployment is gone).
func pump(t *testing.T, dev *core.Device, sess *core.Session) int64 {
	t.Helper()
	ip := &packet.IPv4{Src: dev.Addr, Dst: packet.MustParseIPv4("93.184.216.34"), Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: 40000, DstPort: 80}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, tcp, packet.Payload([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")))
	if err != nil {
		t.Fatal(err)
	}
	disp, err := sess.Process(data, 0)
	if err != nil || disp.Entry == nil {
		return 0
	}
	return int64(len(data))
}

// trafficMicro extracts an invoice's traffic charge (1 micro/byte
// under the test tariff), excluding flat module lines.
func trafficMicro(inv *billing.Invoice) int64 {
	var total int64
	for _, l := range inv.Lines {
		if strings.HasPrefix(l.Description, "traffic ") {
			total += l.AmountMicro
		}
	}
	return total
}

func requireCleanBook(t *testing.T, c *Cluster) {
	t.Helper()
	if v := c.BookViolations(); len(v) != 0 {
		t.Fatalf("placement book violated: %v", v)
	}
}

func TestSubmitPlacesDeploysAndSpreadsDomains(t *testing.T) {
	clock := &netsim.Clock{}
	c := New(Config{Clock: clock})
	for _, h := range newFleet(t, clock, 4, 2, nil) {
		c.AddHost(h)
	}
	devs := map[string]*core.Device{}
	for i := 0; i < 8; i++ {
		dev := chainDevice(t, i)
		req := chainReq(i, dev)
		if i < 4 {
			req.AntiAffinityKey = "replica-set-a"
		}
		sess, err := c.Submit(req, dev)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if sess.Mode != core.ModeInNetwork {
			t.Fatalf("chain %d not in-network: %s", i, sess.Mode)
		}
		devs[req.ID] = dev
	}
	requireCleanBook(t, c)

	// First two replicas of the anti-affinity group must span both
	// racks; the remaining two necessarily spill (2 domains, 4 members).
	doms := map[string]bool{}
	for i := 0; i < 2; i++ {
		p := c.Placement(fmt.Sprintf("chain-%03d", i))
		doms[c.Host(p.Host).Spec.FailureDomain] = true
	}
	if len(doms) != 2 {
		t.Fatalf("first two replicas share a failure domain: %v", doms)
	}
	if c.Stats().Spills != 2 {
		t.Fatalf("expected 2 anti-affinity spills, got %d", c.Stats().Spills)
	}

	// Traffic flows through every placed session.
	for id, dev := range devs {
		if b := pump(t, dev, c.Placement(id).Sess); b == 0 {
			t.Fatalf("chain %s metered no bytes", id)
		}
	}
}

func TestHeartbeatLadder(t *testing.T) {
	clock := &netsim.Clock{}
	c := New(Config{Clock: clock, HeartbeatEvery: 10 * time.Second, SuspectAfter: 2, DeadAfter: 4})
	hosts := newFleet(t, clock, 2, 2, nil)
	for _, h := range hosts {
		c.AddHost(h)
	}
	c.Start()
	clock.RunFor(30 * time.Second)
	if hosts[0].Health() != HostAlive {
		t.Fatalf("beating host is %s", hosts[0].Health())
	}
	c.KillHost("host00")
	var sawSuspect bool
	for i := 0; i < 10; i++ {
		clock.RunFor(10 * time.Second)
		if hosts[0].Health() == HostSuspect {
			sawSuspect = true
		}
		if hosts[0].Health() == HostDead {
			break
		}
	}
	if !sawSuspect || hosts[0].Health() != HostDead {
		t.Fatalf("ladder never climbed alive→suspect→dead (suspect=%v final=%s)", sawSuspect, hosts[0].Health())
	}
	if hosts[1].Health() != HostAlive {
		t.Fatalf("surviving host is %s", hosts[1].Health())
	}
	c.RestoreHost("host00")
	clock.RunFor(20 * time.Second)
	if hosts[0].Health() != HostAlive {
		t.Fatalf("restored host is %s", hosts[0].Health())
	}
	c.Stop()
}

// TestKillHostEvacuation is the robustness core: killing a host must
// evacuate 100% of its chains within the detection deadline via
// make-before-break, with the byte ledger exact (billable == invoiced +
// forfeited + pending) throughout.
func TestKillHostEvacuation(t *testing.T) {
	clock := &netsim.Clock{}
	invoiced := map[string]int64{}
	c := New(Config{Clock: clock, HeartbeatEvery: 5 * time.Second,
		OnInvoice: func(id string, inv *billing.Invoice) { invoiced[id] += trafficMicro(inv) }})
	for _, h := range newFleet(t, clock, 3, 3, nil) {
		c.AddHost(h)
	}
	c.Start()

	billable := map[string]int64{}
	devs := map[string]*core.Device{}
	for i := 0; i < 9; i++ {
		dev := chainDevice(t, i)
		req := chainReq(i, dev)
		if _, err := c.Submit(req, dev); err != nil {
			t.Fatal(err)
		}
		devs[req.ID] = dev
	}
	clock.RunFor(time.Second) // past middlebox boot
	for id, dev := range devs {
		billable[id] += pump(t, dev, c.Placement(id).Sess)
	}

	// Kill whichever host chain-000 landed on — the cost-greedy
	// heuristic concentrates load, so this host holds a real population.
	dead := c.Placement("chain-000").Host
	var onDead []string
	for id, h := range c.Book() {
		if h == dead {
			onDead = append(onDead, id)
		}
	}

	forfeited := map[string]int64{}
	killedAt := clock.Now()
	for dev, b := range c.KillHost(dead) {
		for id, d := range devs {
			if d.ID == dev {
				forfeited[id] += b
			}
		}
	}
	clock.RunUntil(killedAt + c.DeadBy())

	// 100% evacuation: nothing still booked on the dead host, every
	// former resident serving in-network elsewhere.
	for id, h := range c.Book() {
		if h == dead {
			t.Fatalf("chain %s still booked on dead host", id)
		}
	}
	for _, id := range onDead {
		p := c.Placement(id)
		if p.State != StatePlaced || p.Sess == nil || p.Sess.Mode != core.ModeInNetwork {
			t.Fatalf("chain %s not evacuated: state=%s", id, p.State)
		}
	}
	if got := c.Stats().Evacuated; got != len(onDead) {
		t.Fatalf("evacuated %d of %d", got, len(onDead))
	}
	requireCleanBook(t, c)

	// Post-evacuation traffic meters on the new hosts; quiesce and
	// demand exact billing for every chain.
	for id, dev := range devs {
		billable[id] += pump(t, dev, c.Placement(id).Sess)
	}
	c.TeardownAll()
	c.Stop()
	for id := range devs {
		if billable[id] != invoiced[id]+forfeited[id] {
			t.Fatalf("%s billing drift: billable %d != invoiced %d + forfeited %d",
				id, billable[id], invoiced[id], forfeited[id])
		}
	}
}

// TestBrownoutShedsLowestPriorityNeverSecurity: when surviving capacity
// cannot carry the placed load, evacuation sheds lowest-priority
// best-effort chains first and never sheds (or fail-opens) a security
// chain.
func TestBrownoutShedsLowestPriorityNeverSecurity(t *testing.T) {
	clock := &netsim.Clock{}
	c := New(Config{Clock: clock, HeartbeatEvery: 5 * time.Second})
	// Two hosts; each fits 4 chains of 1000 CPU milli. 8 placed chains
	// fill the fleet; losing a host strands 4 with room for 0 — only
	// shedding can rehome the high-priority evacuees.
	for i := 0; i < 2; i++ {
		h, err := NewHost(HostParams{
			Spec: HostSpec{Name: fmt.Sprintf("host%02d", i), FailureDomain: fmt.Sprintf("rack%d", i),
				CPUMilli: 4000, MemBytes: 1 << 30, CostPerCPUMilli: 1},
			Clock: clock, Supported: testModules,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.AddHost(h)
	}
	c.Start()

	// Priorities 1..8; chains 4 and 8 are security (one low, one high).
	for i := 0; i < 8; i++ {
		dev := chainDevice(t, i)
		req := ChainRequest{ID: fmt.Sprintf("chain-%03d", i), Tenant: "t", CPUMilli: 1000,
			MemBytes: 1 << 20, Priority: i + 1, Security: i == 3 || i == 7}
		if _, err := c.Submit(req, dev); err != nil {
			t.Fatal(err)
		}
	}
	requireCleanBook(t, c)

	dead := c.Placement("chain-007").Host // the high-priority security chain's host
	killedAt := clock.Now()
	c.KillHost(dead)
	clock.RunUntil(killedAt + c.DeadBy())
	c.Stop()

	// The high-priority security chain must be serving somewhere.
	p := c.Placement("chain-007")
	if p.State != StatePlaced || p.Sess == nil {
		t.Fatalf("security chain-007 not re-placed: %s", p.State)
	}
	// No security chain was ever shed; a parked one holds no session.
	for i := 0; i < 8; i++ {
		q := c.Placement(fmt.Sprintf("chain-%03d", i))
		if q.Req.Security {
			if q.State == StateShed {
				t.Fatalf("security chain %s was shed to fail-open", q.Req.ID)
			}
			if q.State == StateParked && q.Sess != nil {
				t.Fatalf("parked security chain %s still serving", q.Req.ID)
			}
		}
	}
	// Sheds happened, and every shed chain outranks no placed
	// best-effort chain (lowest priority went first).
	st := c.Stats()
	if st.Shed == 0 {
		t.Fatal("overload produced no brownout sheds")
	}
	minPlaced, maxShed := 1<<30, -1
	for i := 0; i < 8; i++ {
		q := c.Placement(fmt.Sprintf("chain-%03d", i))
		if q.Req.Security {
			continue
		}
		switch q.State {
		case StatePlaced:
			if q.Req.Priority < minPlaced {
				minPlaced = q.Req.Priority
			}
		case StateShed:
			if q.Req.Priority > maxShed {
				maxShed = q.Req.Priority
			}
		}
	}
	if maxShed > minPlaced {
		t.Fatalf("shed a priority-%d chain while priority-%d stayed placed", maxShed, minPlaced)
	}
	requireCleanBook(t, c)
}

func TestAdmissionQuotaRejectsWithoutDegrading(t *testing.T) {
	clock := &netsim.Clock{}
	c := New(Config{Clock: clock, Quotas: map[string]Quota{"capped": {MaxChains: 2}}})
	for _, h := range newFleet(t, clock, 2, 2, nil) {
		c.AddHost(h)
	}
	placed := 0
	for i := 0; i < 5; i++ {
		dev := chainDevice(t, i)
		req := chainReq(i, dev)
		req.Tenant = "capped"
		_, err := c.Submit(req, dev)
		switch {
		case err == nil:
			placed++
		case errors.Is(err, ErrQuotaExceeded):
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if placed != 2 {
		t.Fatalf("quota of 2 admitted %d chains", placed)
	}
	if c.Stats().RejectedQuota != 3 {
		t.Fatalf("expected 3 quota rejections, got %d", c.Stats().RejectedQuota)
	}
	// The placed chains are untouched and consistent.
	requireCleanBook(t, c)
	for i := 0; i < 2; i++ {
		p := c.Placement(fmt.Sprintf("chain-%03d", i))
		if p == nil || p.State != StatePlaced || p.Sess.Mode != core.ModeInNetwork {
			t.Fatalf("admission rejection degraded placed chain %d", i)
		}
	}

	// Capacity exhaustion is also a rejection, never displacement.
	big := ChainRequest{ID: "giant", Tenant: "other", CPUMilli: 1 << 40}
	if _, err := c.Submit(big, nil); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("oversized request: %v", err)
	}
	requireCleanBook(t, c)
}

// TestBookViolationsDetectDivergence: the invariant must catch hosts
// and books disagreeing in either direction.
func TestBookViolationsDetectDivergence(t *testing.T) {
	clock := &netsim.Clock{}
	c := New(Config{Clock: clock})
	hosts := newFleet(t, clock, 2, 2, nil)
	for _, h := range hosts {
		c.AddHost(h)
	}
	dev := chainDevice(t, 0)
	if _, err := c.Submit(chainReq(0, dev), dev); err != nil {
		t.Fatal(err)
	}
	requireCleanBook(t, c)

	// Teardown behind the book's back: placed chain with no deployment.
	host := c.Host(c.Placement("chain-000").Host)
	if _, _, err := host.Net.Server.Teardown(dev.ID); err != nil {
		t.Fatal(err)
	}
	if v := c.BookViolations(); len(v) == 0 {
		t.Fatal("stolen deployment went undetected")
	}

	// Retiring everything restores consistency even though the stolen
	// deployment's teardown errors internally.
	c.TeardownAll()
	requireCleanBook(t, c)

	// Corrupt capacity accounting directly.
	hosts[1].usedCPU += 5
	if v := c.BookViolations(); len(v) == 0 {
		t.Fatal("capacity drift went undetected")
	}
}

func TestRetryParkedAfterRestore(t *testing.T) {
	clock := &netsim.Clock{}
	c := New(Config{Clock: clock, HeartbeatEvery: 5 * time.Second})
	// One big host and one tiny host: when the big one dies, the
	// security chain cannot fit anywhere → parked. Restoring the host
	// and retrying re-places it.
	specs := []HostSpec{
		{Name: "big", FailureDomain: "r0", CPUMilli: 4000, MemBytes: 1 << 30, CostPerCPUMilli: 1},
		{Name: "tiny", FailureDomain: "r1", CPUMilli: 100, MemBytes: 1 << 30, CostPerCPUMilli: 1},
	}
	for _, s := range specs {
		h, err := NewHost(HostParams{Spec: s, Clock: clock, Supported: testModules})
		if err != nil {
			t.Fatal(err)
		}
		c.AddHost(h)
	}
	c.Start()
	dev := chainDevice(t, 0)
	req := ChainRequest{ID: "sec", Tenant: "t", CPUMilli: 1000, MemBytes: 1 << 20, Priority: 5, Security: true}
	if _, err := c.Submit(req, dev); err != nil {
		t.Fatal(err)
	}
	killedAt := clock.Now()
	c.KillHost("big")
	clock.RunUntil(killedAt + c.DeadBy())
	p := c.Placement("sec")
	if p.State != StateParked || p.Sess != nil {
		t.Fatalf("security chain should be parked fail-closed, got %s", p.State)
	}
	if c.Stats().SecurityParked != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
	requireCleanBook(t, c)

	c.RestoreHost("big")
	clock.RunFor(10 * time.Second) // host beats back to alive
	if n := c.RetryParked(); n != 1 {
		t.Fatalf("RetryParked placed %d", n)
	}
	if p.State != StatePlaced || p.Sess == nil || p.Sess.Mode != core.ModeInNetwork {
		t.Fatalf("parked chain not restored: %s", p.State)
	}
	c.Stop()
	requireCleanBook(t, c)
}
