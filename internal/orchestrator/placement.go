// Package orchestrator is the fleet control plane (ROADMAP item 1): it
// places user middlebox chains across N simulated edge hosts — each a
// full deployserver+dataplane world — using the cost/budget heuristic
// of Bari et al., "On Orchestrating Virtual Network Functions in NFV"
// (ILP → fast heuristic), with failure-domain anti-affinity, admission
// control with per-tenant quotas, and then keeps them alive: per-host
// heartbeats climb a suspect/dead ladder, a dead host's deployments are
// evacuated through the make-before-break roaming machinery with exact
// invoicing preserved, and when surviving capacity cannot carry the
// placed load the cluster browns out — lowest-priority chains shed
// first, security chains never shed to fail-open.
//
// Everything is driven by an injected netsim.Clock and seeded RNGs:
// identical seeds produce bit-identical placement books.
package orchestrator

import (
	"pvn/internal/netsim"
)

// HostSpec describes one edge host's capacity, locality and price —
// the inputs to the placement problem.
type HostSpec struct {
	Name string
	// FailureDomain groups hosts that fail together (rack, zone).
	// Anti-affinity spreads replicas across distinct domains.
	FailureDomain string
	// CPUMilli and MemBytes are placement capacity budgets.
	CPUMilli int64
	MemBytes int64
	// DelayUs is the host's network delay from the edge; requests carry
	// a delay budget it must fit.
	DelayUs int64
	// CostPerCPUMilli / CostPerMemMB price placed resources in micro —
	// the operational-cost objective the heuristic minimizes (Bari §IV).
	CostPerCPUMilli int64
	CostPerMemMB    int64
}

// ChainRequest asks the orchestrator to place one user's middlebox
// chain.
type ChainRequest struct {
	ID     string
	Tenant string
	// CPUMilli/MemBytes are the chain's resource demand; DelayBudgetUs
	// bounds acceptable host delay (0 = unbounded).
	CPUMilli      int64
	MemBytes      int64
	DelayBudgetUs int64
	// Priority orders brownout shedding: lower priorities shed first.
	Priority int
	// Security marks a fail-closed chain: it is never shed to fail-open,
	// whatever its priority.
	Security bool
	// AntiAffinityKey groups requests (a user's replicas, a tenant's
	// shards) that should land in distinct failure domains.
	AntiAffinityKey string
}

// HostView is the placement-time picture of one host. Placers read
// views; they never touch live hosts.
type HostView struct {
	Spec             HostSpec
	UsedCPU, UsedMem int64
	Alive            bool
}

// Fits reports whether the host can take the request within its
// CPU, memory and delay budgets.
func (v *HostView) Fits(r ChainRequest) bool {
	return v.Alive &&
		v.UsedCPU+r.CPUMilli <= v.Spec.CPUMilli &&
		v.UsedMem+r.MemBytes <= v.Spec.MemBytes &&
		(r.DelayBudgetUs == 0 || v.Spec.DelayUs <= r.DelayBudgetUs)
}

// PlaceContext is everything a placer may consult: the stable-ordered
// host views and the failure domains already holding the request's
// anti-affinity group.
type PlaceContext struct {
	Hosts []*HostView
	// UsedDomains are failure domains that already host a chain sharing
	// the request's AntiAffinityKey.
	UsedDomains map[string]bool
}

// Feasible returns the indexes of hosts that can take r, in host
// order. Anti-affinity is hard while satisfiable: when any fitting
// host sits in an unused failure domain, only such hosts are feasible.
// When every fitting host would collide, the constraint spills (soft)
// and spilled reports it.
func (ctx *PlaceContext) Feasible(r ChainRequest) (idx []int, spilled bool) {
	var fits, fresh []int
	for i, v := range ctx.Hosts {
		if !v.Fits(r) {
			continue
		}
		fits = append(fits, i)
		if r.AntiAffinityKey == "" || !ctx.UsedDomains[v.Spec.FailureDomain] {
			fresh = append(fresh, i)
		}
	}
	if len(fresh) > 0 {
		return fresh, false
	}
	return fits, len(fits) > 0 && r.AntiAffinityKey != ""
}

// PlacementCost prices placing r on a host: resource cost plus a delay
// penalty (1 micro per µs of host delay) — the per-placement term of
// the Bari objective.
func PlacementCost(spec HostSpec, r ChainRequest) int64 {
	return r.CPUMilli*spec.CostPerCPUMilli + (r.MemBytes>>20)*spec.CostPerMemMB + spec.DelayUs
}

// Placer chooses a host index for a request, or reports none fits.
// Implementations must be deterministic given their own state (the
// random baseline owns a seeded RNG).
type Placer interface {
	Name() string
	Place(r ChainRequest, ctx *PlaceContext) (int, bool)
}

// HeuristicPlacer is the Bari-style fast heuristic: among feasible
// hosts it minimizes placement cost with a load-balance term (scaled
// utilization after placement), breaking ties on host name so the
// choice is bit-deterministic.
type HeuristicPlacer struct{}

// Name implements Placer.
func (HeuristicPlacer) Name() string { return "heuristic" }

// Place implements Placer.
func (HeuristicPlacer) Place(r ChainRequest, ctx *PlaceContext) (int, bool) {
	idx, _ := ctx.Feasible(r)
	best, bestScore := -1, int64(0)
	for _, i := range idx {
		v := ctx.Hosts[i]
		load := int64(0)
		if v.Spec.CPUMilli > 0 {
			load += (v.UsedCPU + r.CPUMilli) * 1000 / v.Spec.CPUMilli
		}
		if v.Spec.MemBytes > 0 {
			load += (v.UsedMem + r.MemBytes) * 1000 / v.Spec.MemBytes
		}
		score := PlacementCost(v.Spec, r)*1024 + load
		if best < 0 || score < bestScore ||
			(score == bestScore && v.Spec.Name < ctx.Hosts[best].Spec.Name) {
			best, bestScore = i, score
		}
	}
	return best, best >= 0
}

// FirstFitPlacer takes the first feasible host in host order — the
// classic baseline.
type FirstFitPlacer struct{}

// Name implements Placer.
func (FirstFitPlacer) Name() string { return "first-fit" }

// Place implements Placer.
func (FirstFitPlacer) Place(r ChainRequest, ctx *PlaceContext) (int, bool) {
	idx, _ := ctx.Feasible(r)
	if len(idx) == 0 {
		return -1, false
	}
	return idx[0], true
}

// RandomPlacer picks uniformly among feasible hosts from its own
// seeded stream — the other baseline.
type RandomPlacer struct{ RNG *netsim.RNG }

// Name implements Placer.
func (RandomPlacer) Name() string { return "random" }

// Place implements Placer.
func (p RandomPlacer) Place(r ChainRequest, ctx *PlaceContext) (int, bool) {
	idx, _ := ctx.Feasible(r)
	if len(idx) == 0 {
		return -1, false
	}
	return idx[p.RNG.Intn(len(idx))], true
}

// SimResult summarizes a placement-only simulation.
type SimResult struct {
	Placed, Rejected, Spills int
	TotalCostMicro           int64
	// Views is the final loaded state of every host, in input order.
	Views []*HostView
	// Assigned[i] is the host index request i placed on, -1 if rejected.
	Assigned []int
}

// SimulatePlacement drives a placer over a request stream against
// capacity-tracking host views — no deployments, just the placement
// problem — so heuristics can be compared at 10⁵⁺ requests. Requests
// are processed in order; capacity is charged as chains place.
func SimulatePlacement(specs []HostSpec, reqs []ChainRequest, p Placer) SimResult {
	res := SimResult{}
	for _, s := range specs {
		res.Views = append(res.Views, &HostView{Spec: s, Alive: true})
	}
	domainsByKey := map[string]map[string]bool{}
	ctx := &PlaceContext{Hosts: res.Views}
	for _, r := range reqs {
		ctx.UsedDomains = domainsByKey[r.AntiAffinityKey]
		_, spilled := ctx.Feasible(r)
		i, ok := p.Place(r, ctx)
		if !ok {
			res.Rejected++
			res.Assigned = append(res.Assigned, -1)
			continue
		}
		res.Assigned = append(res.Assigned, i)
		v := res.Views[i]
		v.UsedCPU += r.CPUMilli
		v.UsedMem += r.MemBytes
		res.Placed++
		res.TotalCostMicro += PlacementCost(v.Spec, r)
		if spilled {
			res.Spills++
		}
		if r.AntiAffinityKey != "" {
			if domainsByKey[r.AntiAffinityKey] == nil {
				domainsByKey[r.AntiAffinityKey] = map[string]bool{}
			}
			domainsByKey[r.AntiAffinityKey][v.Spec.FailureDomain] = true
		}
	}
	return res
}
