package orchestrator

import (
	"fmt"
	"reflect"
	"testing"

	"pvn/internal/netsim"
)

// fuzzFleet derives a random fleet from a forked stream.
func fuzzFleet(rng *netsim.RNG, hosts, domains int) []HostSpec {
	specs := make([]HostSpec, hosts)
	for i := range specs {
		specs[i] = HostSpec{
			Name:            fmt.Sprintf("h%03d", i),
			FailureDomain:   fmt.Sprintf("d%d", i%domains),
			CPUMilli:        1000 + int64(rng.Intn(8))*500,
			MemBytes:        (64 + int64(rng.Intn(4))*64) << 20,
			DelayUs:         100 + int64(rng.Intn(10))*50,
			CostPerCPUMilli: 1 + int64(rng.Intn(3)),
			CostPerMemMB:    1 + int64(rng.Intn(2)),
		}
	}
	return specs
}

// fuzzReqs derives a random request stream; roughly a third carry delay
// budgets and a third join small anti-affinity groups.
func fuzzReqs(rng *netsim.RNG, n int) []ChainRequest {
	reqs := make([]ChainRequest, n)
	for i := range reqs {
		r := ChainRequest{
			ID:       fmt.Sprintf("c%04d", i),
			Tenant:   fmt.Sprintf("t%d", rng.Intn(5)),
			CPUMilli: 50 + int64(rng.Intn(8))*25,
			MemBytes: (4 + int64(rng.Intn(4))*4) << 20,
			Priority: int(rng.Intn(10)),
		}
		if rng.Intn(3) == 0 {
			r.DelayBudgetUs = 150 + int64(rng.Intn(8))*50
		}
		if rng.Intn(3) == 0 {
			r.AntiAffinityKey = fmt.Sprintf("g%d", rng.Intn(8))
		}
		reqs[i] = r
	}
	return reqs
}

func placers(seed uint64) []Placer {
	return []Placer{
		HeuristicPlacer{},
		FirstFitPlacer{},
		RandomPlacer{RNG: netsim.NewRNG(seed)},
	}
}

// TestPlacementProperties fuzzes seeded workloads through every placer
// and asserts the safety properties no placement may violate: CPU and
// memory capacity never exceeded, per-request delay budgets honored,
// anti-affinity groups only sharing a domain after spilling.
func TestPlacementProperties(t *testing.T) {
	const trials = 200
	master := netsim.NewRNG(0xE17)
	for trial := 0; trial < trials; trial++ {
		rng := master.Fork()
		specs := fuzzFleet(rng, 3+int(rng.Intn(10)), 1+int(rng.Intn(4)))
		reqs := fuzzReqs(rng, 40+int(rng.Intn(120)))
		for _, p := range placers(uint64(trial)) {
			res := SimulatePlacement(specs, reqs, p)
			if len(res.Assigned) != len(reqs) {
				t.Fatalf("trial %d %s: %d assignments for %d requests", trial, p.Name(), len(res.Assigned), len(reqs))
			}
			if res.Placed+res.Rejected != len(reqs) {
				t.Fatalf("trial %d %s: placed %d + rejected %d != %d", trial, p.Name(), res.Placed, res.Rejected, len(reqs))
			}

			// Capacity: no view over budget.
			for i, v := range res.Views {
				if v.UsedCPU > v.Spec.CPUMilli || v.UsedMem > v.Spec.MemBytes {
					t.Fatalf("trial %d %s: host %d over budget (%d/%d cpu, %d/%d mem)",
						trial, p.Name(), i, v.UsedCPU, v.Spec.CPUMilli, v.UsedMem, v.Spec.MemBytes)
				}
			}

			// Delay budgets: every placed request's host qualifies.
			groupDomains := map[string]map[string]int{}
			for i, hi := range res.Assigned {
				if hi < 0 {
					continue
				}
				r := reqs[i]
				spec := res.Views[hi].Spec
				if r.DelayBudgetUs != 0 && spec.DelayUs > r.DelayBudgetUs {
					t.Fatalf("trial %d %s: request %d (budget %dus) placed on host with %dus delay",
						trial, p.Name(), i, r.DelayBudgetUs, spec.DelayUs)
				}
				if r.AntiAffinityKey != "" {
					if groupDomains[r.AntiAffinityKey] == nil {
						groupDomains[r.AntiAffinityKey] = map[string]int{}
					}
					groupDomains[r.AntiAffinityKey][spec.FailureDomain]++
				}
			}

			// Anti-affinity: domain collisions only exist when spills were
			// reported (the constraint was unsatisfiable, not ignored).
			collisions := 0
			for _, doms := range groupDomains {
				for _, n := range doms {
					if n > 1 {
						collisions += n - 1
					}
				}
			}
			if collisions > 0 && res.Spills == 0 {
				t.Fatalf("trial %d %s: %d silent anti-affinity collisions", trial, p.Name(), collisions)
			}
			if res.Spills > 0 && collisions == 0 {
				t.Fatalf("trial %d %s: %d spills reported without a collision", trial, p.Name(), res.Spills)
			}
		}
	}
}

// TestPlacementDeterminism: same seed, bit-identical result for every
// placer — including the full per-request assignment vector.
func TestPlacementDeterminism(t *testing.T) {
	run := func() []SimResult {
		rng := netsim.NewRNG(42)
		specs := fuzzFleet(rng, 12, 4)
		reqs := fuzzReqs(rng, 300)
		var out []SimResult
		for _, p := range placers(7) {
			out = append(out, SimulatePlacement(specs, reqs, p))
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("placement not bit-deterministic across identical runs")
	}
}

// TestHeuristicBeatsBaselines: on a heterogeneous-cost fleet the Bari
// heuristic places at least as many chains as the baselines and spends
// strictly less per placed chain than random.
func TestHeuristicBeatsBaselines(t *testing.T) {
	rng := netsim.NewRNG(2016)
	specs := fuzzFleet(rng, 16, 4)
	reqs := fuzzReqs(rng, 600)

	per := map[string]float64{}
	placed := map[string]int{}
	for _, p := range placers(2016) {
		res := SimulatePlacement(specs, reqs, p)
		if res.Placed == 0 {
			t.Fatalf("%s placed nothing", p.Name())
		}
		per[p.Name()] = float64(res.TotalCostMicro) / float64(res.Placed)
		placed[p.Name()] = res.Placed
	}
	// The Bari objective is operational cost, not bin-packing yield: the
	// heuristic must be strictly cheaper per placed chain than both
	// baselines, while placing a comparable number of chains (cost
	// greed may strand a little capacity the spreaders would use).
	if per["heuristic"] >= per["random"] || per["heuristic"] >= per["first-fit"] {
		t.Fatalf("heuristic per-chain cost not below baselines: %v", per)
	}
	floor := placed["random"]
	if placed["first-fit"] > floor {
		floor = placed["first-fit"]
	}
	if placed["heuristic"]*10 < floor*9 {
		t.Fatalf("heuristic placed %d chains, under 90%% of best baseline %d", placed["heuristic"], floor)
	}
}

// TestFeasibleAntiAffinityHardWhenSatisfiable: with a fresh domain
// available, colliding hosts are excluded outright.
func TestFeasibleAntiAffinityHardWhenSatisfiable(t *testing.T) {
	ctx := &PlaceContext{
		Hosts: []*HostView{
			{Spec: HostSpec{Name: "a", FailureDomain: "d0", CPUMilli: 100, MemBytes: 100}, Alive: true},
			{Spec: HostSpec{Name: "b", FailureDomain: "d1", CPUMilli: 100, MemBytes: 100}, Alive: true},
		},
		UsedDomains: map[string]bool{"d0": true},
	}
	r := ChainRequest{CPUMilli: 10, MemBytes: 10, AntiAffinityKey: "g"}
	idx, spilled := ctx.Feasible(r)
	if spilled || len(idx) != 1 || idx[0] != 1 {
		t.Fatalf("expected only host b, got idx=%v spilled=%v", idx, spilled)
	}

	// Both domains used: constraint spills, both hosts feasible.
	ctx.UsedDomains["d1"] = true
	idx, spilled = ctx.Feasible(r)
	if !spilled || len(idx) != 2 {
		t.Fatalf("expected spill over both hosts, got idx=%v spilled=%v", idx, spilled)
	}

	// Dead hosts are never feasible.
	ctx.Hosts[1].Alive = false
	ctx.UsedDomains = nil
	idx, _ = ctx.Feasible(r)
	if len(idx) != 1 || idx[0] != 0 {
		t.Fatalf("dead host stayed feasible: %v", idx)
	}
}
