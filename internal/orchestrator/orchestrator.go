package orchestrator

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pvn/internal/billing"
	"pvn/internal/core"
	"pvn/internal/discovery"
	"pvn/internal/netsim"
	"pvn/internal/pvnc"
)

// Errors the control plane returns to submitters.
var (
	// ErrQuotaExceeded rejects an over-quota tenant at admission —
	// placed chains are never degraded to make room for new ones.
	ErrQuotaExceeded = errors.New("orchestrator: tenant quota exceeded")
	// ErrNoCapacity rejects a request no surviving host can take.
	ErrNoCapacity = errors.New("orchestrator: no host fits the request")
	// ErrDeployFailed reports the placed host refused the deployment.
	ErrDeployFailed = errors.New("orchestrator: deployment failed on placed host")
)

// HostHealth is the heartbeat ladder.
type HostHealth int

// Ladder states: every beat resets to alive; missed beats climb.
const (
	HostAlive HostHealth = iota
	HostSuspect
	HostDead
)

// String implements fmt.Stringer.
func (h HostHealth) String() string {
	switch h {
	case HostSuspect:
		return "suspect"
	case HostDead:
		return "dead"
	}
	return "alive"
}

// Host is one edge host under orchestration: a full access-network
// world (switch, runtime, deployserver) plus the control plane's view
// of it.
type Host struct {
	Spec HostSpec
	Net  *core.AccessNetwork

	health           HostHealth
	missed           int
	down             bool
	lastBeat         time.Duration
	usedCPU, usedMem int64
	placed           map[string]bool // chain IDs
}

// Health returns the control plane's current view of the host.
func (h *Host) Health() HostHealth { return h.health }

// Used returns the capacity the placement book has charged to the host.
func (h *Host) Used() (cpuMilli, memBytes int64) { return h.usedCPU, h.usedMem }

// HostParams parameterizes NewHost.
type HostParams struct {
	Spec  HostSpec
	Clock *netsim.Clock
	// Supported prices the middlebox modules this host deploys; it is
	// also the per-module tariff (scenario idiom: PerMBMicro 1<<20
	// prices traffic at exactly 1 micro/byte so billing invariants are
	// integer equalities).
	Supported      map[string]int64
	MemoryCapBytes int
	// LeaseTTL/RenewJitter configure the host's deployment leases.
	LeaseTTL, RenewJitter time.Duration
	// Templates, when set, shares compiled PVNC templates across this
	// host's subscribers (and across hosts handed the same cache).
	Templates *pvnc.TemplateCache
}

// NewHost builds an orchestratable edge host.
func NewHost(p HostParams) (*Host, error) {
	n, err := core.NewStandardNetwork(core.NetworkConfig{
		Name: p.Spec.Name,
		Provider: &discovery.ProviderPolicy{
			Provider: p.Spec.Name, DeployServer: "d-" + p.Spec.Name,
			Standards: []string{discovery.StandardMatchAction, discovery.StandardMiddlebox},
			Supported: p.Supported,
		},
		Now:            p.Clock.Now,
		Tariff:         billing.Tariff{PerModuleMicro: p.Supported, PerMBMicro: 1 << 20},
		MemoryCapBytes: p.MemoryCapBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("orchestrator: host %s: %w", p.Spec.Name, err)
	}
	n.Server.LeaseTTL = p.LeaseTTL
	n.Server.RenewJitter = p.RenewJitter
	n.Server.Templates = p.Templates
	return &Host{Spec: p.Spec, Net: n, placed: map[string]bool{}}, nil
}

// Quota bounds one tenant's admitted load. Zero fields are unlimited.
type Quota struct {
	MaxChains   int
	MaxCPUMilli int64
	MaxMemBytes int64
}

// PlacementState is where a chain is in its life.
type PlacementState string

// States: placed chains serve; shed chains were browned out (or never
// re-fit after evacuation); parked chains are security chains with no
// capacity — blocked fail-closed, never serving unprotected; retired
// chains were torn down cleanly.
const (
	StatePlaced  PlacementState = "placed"
	StateShed    PlacementState = "shed"
	StateParked  PlacementState = "parked"
	StateRetired PlacementState = "retired"
)

// Placement is the book entry for one chain.
type Placement struct {
	Req       ChainRequest
	Dev       *core.Device
	Sess      *core.Session
	Host      string
	State     PlacementState
	CostMicro int64
}

// Config parameterizes a Cluster.
type Config struct {
	Clock *netsim.Clock
	// Placer defaults to HeuristicPlacer.
	Placer Placer
	// HeartbeatEvery (default 10s) paces per-host liveness probes;
	// SuspectAfter/DeadAfter (default 2/4) are the ladder thresholds in
	// missed beats.
	HeartbeatEvery time.Duration
	SuspectAfter   int
	DeadAfter      int
	// DrainDeadline is passed to the make-before-break handover on
	// evacuation.
	DrainDeadline time.Duration
	// DefaultQuota applies to tenants absent from Quotas.
	DefaultQuota Quota
	Quotas       map[string]Quota
	// OnInvoice receives every invoice the control plane collects
	// (evacuation completions, brownout sheds, teardowns) so callers
	// keep billing accounting exact.
	OnInvoice func(chainID string, inv *billing.Invoice)
}

// Stats counts control-plane outcomes.
type Stats struct {
	Submitted, Placed               int
	RejectedQuota, RejectedCapacity int
	Evacuated, EvacFailed           int
	Shed, SecurityParked, Reparked  int
	Spills                          int
	Heartbeats                      int64
	TotalCostMicro                  int64
}

// Cluster orchestrates chains across hosts.
type Cluster struct {
	cfg        Config
	clock      *netsim.Clock
	hosts      []*Host
	hostByName map[string]*Host
	placements map[string]*Placement
	tenants    map[string]*Quota // live usage per tenant, stored as Quota counts
	stats      Stats
	stopped    bool
}

// New builds a cluster. Clock is required.
func New(cfg Config) *Cluster {
	if cfg.Clock == nil {
		panic("orchestrator: Config.Clock is required")
	}
	if cfg.Placer == nil {
		cfg.Placer = HeuristicPlacer{}
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 10 * time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter + 2
	}
	return &Cluster{
		cfg:        cfg,
		clock:      cfg.Clock,
		hostByName: map[string]*Host{},
		placements: map[string]*Placement{},
		tenants:    map[string]*Quota{},
	}
}

// AddHost registers a host. Host order is placement order for
// first-fit and tie-breaks, so callers add hosts deterministically.
func (c *Cluster) AddHost(h *Host) {
	if h.placed == nil {
		h.placed = map[string]bool{}
	}
	c.hosts = append(c.hosts, h)
	c.hostByName[h.Spec.Name] = h
}

// Host returns a host by name, or nil.
func (c *Cluster) Host(name string) *Host { return c.hostByName[name] }

// Hosts returns the hosts in registration order.
func (c *Cluster) Hosts() []*Host { return c.hosts }

// Stats snapshots the counters.
func (c *Cluster) Stats() Stats { return c.stats }

// Placement returns the book entry for a chain, or nil.
func (c *Cluster) Placement(id string) *Placement { return c.placements[id] }

// Book returns chain→host for every placed chain.
func (c *Cluster) Book() map[string]string {
	out := map[string]string{}
	for id, p := range c.placements {
		if p.State == StatePlaced {
			out[id] = p.Host
		}
	}
	return out
}

// DeadBy returns the worst-case detection deadline for a host that
// stops beating now: the remaining ladder plus one beat of phase slack.
func (c *Cluster) DeadBy() time.Duration {
	return time.Duration(c.cfg.DeadAfter+1) * c.cfg.HeartbeatEvery
}

// quotaFor resolves a tenant's quota.
func (c *Cluster) quotaFor(tenant string) Quota {
	if q, ok := c.cfg.Quotas[tenant]; ok {
		return q
	}
	return c.cfg.DefaultQuota
}

// admit enforces the tenant quota. Rejection never touches placed
// chains: admission control degrades new demand, not existing service.
func (c *Cluster) admit(r ChainRequest) error {
	q := c.quotaFor(r.Tenant)
	u := c.tenants[r.Tenant]
	if u == nil {
		u = &Quota{}
		c.tenants[r.Tenant] = u
	}
	if q.MaxChains > 0 && u.MaxChains+1 > q.MaxChains {
		return fmt.Errorf("%w: %s at %d chains", ErrQuotaExceeded, r.Tenant, u.MaxChains)
	}
	if q.MaxCPUMilli > 0 && u.MaxCPUMilli+r.CPUMilli > q.MaxCPUMilli {
		return fmt.Errorf("%w: %s cpu %d+%d over %d", ErrQuotaExceeded, r.Tenant, u.MaxCPUMilli, r.CPUMilli, q.MaxCPUMilli)
	}
	if q.MaxMemBytes > 0 && u.MaxMemBytes+r.MemBytes > q.MaxMemBytes {
		return fmt.Errorf("%w: %s mem %d+%d over %d", ErrQuotaExceeded, r.Tenant, u.MaxMemBytes, r.MemBytes, q.MaxMemBytes)
	}
	return nil
}

func (c *Cluster) chargeTenant(r ChainRequest, sign int64) {
	u := c.tenants[r.Tenant]
	if u == nil {
		u = &Quota{}
		c.tenants[r.Tenant] = u
	}
	u.MaxChains += int(sign)
	u.MaxCPUMilli += sign * r.CPUMilli
	u.MaxMemBytes += sign * r.MemBytes
}

// pickHost runs the placer over the live fleet.
func (c *Cluster) pickHost(r ChainRequest) (*Host, int64, bool, bool) {
	views := make([]*HostView, len(c.hosts))
	for i, h := range c.hosts {
		views[i] = &HostView{Spec: h.Spec, UsedCPU: h.usedCPU, UsedMem: h.usedMem,
			Alive: h.health == HostAlive && !h.down}
	}
	used := map[string]bool{}
	if r.AntiAffinityKey != "" {
		for _, p := range c.placements {
			if p.State == StatePlaced && p.Req.AntiAffinityKey == r.AntiAffinityKey {
				if h := c.hostByName[p.Host]; h != nil {
					used[h.Spec.FailureDomain] = true
				}
			}
		}
	}
	ctx := &PlaceContext{Hosts: views, UsedDomains: used}
	_, spilled := ctx.Feasible(r)
	i, ok := c.cfg.Placer.Place(r, ctx)
	if !ok {
		return nil, 0, false, false
	}
	h := c.hosts[i]
	return h, PlacementCost(h.Spec, r), spilled, true
}

// install books a chain on a host (capacity, tenant, stats).
func (c *Cluster) install(p *Placement, h *Host, cost int64, spilled bool) {
	p.Host = h.Spec.Name
	p.State = StatePlaced
	p.CostMicro = cost
	h.usedCPU += p.Req.CPUMilli
	h.usedMem += p.Req.MemBytes
	h.placed[p.Req.ID] = true
	c.stats.TotalCostMicro += cost
	if spilled {
		c.stats.Spills++
	}
}

// release un-books a chain from its host.
func (c *Cluster) release(p *Placement) {
	if h := c.hostByName[p.Host]; h != nil && h.placed[p.Req.ID] {
		h.usedCPU -= p.Req.CPUMilli
		h.usedMem -= p.Req.MemBytes
		delete(h.placed, p.Req.ID)
	}
	p.Host = ""
}

// Submit admits, places and (when dev is non-nil) deploys one chain.
// On success the returned session is live on the placed host. Rejected
// requests never displace placed chains.
func (c *Cluster) Submit(r ChainRequest, dev *core.Device) (*core.Session, error) {
	c.stats.Submitted++
	if _, dup := c.placements[r.ID]; dup {
		return nil, fmt.Errorf("orchestrator: chain %q already submitted", r.ID)
	}
	if err := c.admit(r); err != nil {
		c.stats.RejectedQuota++
		return nil, err
	}
	h, cost, spilled, ok := c.pickHost(r)
	if !ok || h.down {
		c.stats.RejectedCapacity++
		return nil, ErrNoCapacity
	}
	p := &Placement{Req: r, Dev: dev}
	if dev != nil {
		sess, err := core.Connect(dev, []*core.AccessNetwork{h.Net})
		if err != nil || sess.Mode != core.ModeInNetwork {
			reason := "fell back off-network"
			if err != nil {
				reason = err.Error()
			}
			return nil, fmt.Errorf("%w: %s on %s: %s", ErrDeployFailed, r.ID, h.Spec.Name, reason)
		}
		p.Sess = sess
	}
	c.placements[r.ID] = p
	c.chargeTenant(r, 1)
	c.install(p, h, cost, spilled)
	c.stats.Placed++
	return p.Sess, nil
}

// Start begins the heartbeat monitors. Each host beats every
// HeartbeatEvery with a stable per-host phase offset (FNV of the name)
// so a large fleet's probes don't all land on the same tick.
func (c *Cluster) Start() {
	for _, h := range c.hosts {
		host := h
		phase := time.Duration(fnv64(host.Spec.Name) % uint64(c.cfg.HeartbeatEvery))
		c.clock.Schedule(phase, func() { c.beat(host) })
	}
}

// Stop halts the monitors at their next firing.
func (c *Cluster) Stop() { c.stopped = true }

// beat is one liveness probe against one host.
func (c *Cluster) beat(h *Host) {
	if c.stopped {
		return
	}
	c.stats.Heartbeats++
	if !h.down {
		h.missed = 0
		h.lastBeat = c.clock.Now()
		h.health = HostAlive
	} else {
		h.missed++
		switch {
		case h.missed >= c.cfg.DeadAfter && h.health != HostDead:
			h.health = HostDead
			c.evacuate(h)
		case h.missed >= c.cfg.SuspectAfter && h.health == HostAlive:
			h.health = HostSuspect
		}
	}
	c.clock.Schedule(c.cfg.HeartbeatEvery, func() { c.beat(h) })
}

// KillHost crashes a host: heartbeats stop answering, the deployserver
// process restarts empty, and leaked switch/runtime state is mopped.
// It returns the usage each resident device forfeits (bytes metered
// but never invoiced) — callers keeping exact billing account these at
// kill time, mirroring the scenario engine's crash path.
func (c *Cluster) KillHost(name string) map[string]int64 {
	h := c.hostByName[name]
	if h == nil || h.down {
		return nil
	}
	h.down = true
	forfeited := map[string]int64{}
	for _, id := range h.Net.Server.DeviceIDs() {
		if _, b, ok := h.Net.Server.Usage(id); ok {
			forfeited[id] = b
		}
	}
	h.Net.Server.Restart()
	h.Net.Server.ReclaimOrphans()
	return forfeited
}

// RestoreHost brings a crashed host back; the next beat returns it to
// the alive pool (empty — its deployments evacuated or were lost).
func (c *Cluster) RestoreHost(name string) {
	if h := c.hostByName[name]; h != nil {
		h.down = false
	}
}

// evacuate moves every chain booked on a dead host to surviving
// capacity via make-before-break roaming. When nothing fits, the
// cluster browns out: lowest-priority non-security chains shed first;
// a security chain that still cannot fit is parked fail-closed —
// blocked, never served unprotected.
func (c *Cluster) evacuate(h *Host) {
	ids := make([]string, 0, len(h.placed))
	for id := range h.placed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := c.placements[id]
		c.release(p)
		target, cost, spilled, ok := c.pickHost(p.Req)
		for !ok {
			victim := c.shedCandidate(p.Req)
			if victim == nil {
				break
			}
			c.shed(victim)
			target, cost, spilled, ok = c.pickHost(p.Req)
		}
		if !ok {
			c.park(p)
			continue
		}
		if p.Sess != nil {
			ho, err := core.BeginRoam(p.Sess, []*core.AccessNetwork{target.Net},
				core.RoamOptions{DrainDeadline: c.cfg.DrainDeadline})
			if err != nil {
				c.stats.EvacFailed++
				c.park(p)
				continue
			}
			// The old deployment died with the host: Complete's teardown
			// error is expected and its usage was forfeited at kill time.
			// A surviving old server (graceful drain) yields an invoice.
			if inv, err := ho.Complete(); err == nil && inv != nil && c.cfg.OnInvoice != nil {
				c.cfg.OnInvoice(id, inv)
			}
			p.Sess = ho.New
		}
		c.install(p, target, cost, spilled)
		c.stats.Evacuated++
	}
}

// park blocks a chain that no surviving host can take. Security chains
// park fail-closed (counted separately — they are never shed to
// fail-open); best-effort chains are shed.
func (c *Cluster) park(p *Placement) {
	c.chargeTenant(p.Req, -1)
	p.Sess = nil
	if p.Req.Security {
		p.State = StateParked
		c.stats.SecurityParked++
	} else {
		p.State = StateShed
		c.stats.Shed++
	}
}

// shedCandidate picks the next brownout victim for a displaced chain:
// the lowest-priority placed non-security chain strictly below the
// incomer's priority, ties broken by ID. Security chains are never
// candidates.
func (c *Cluster) shedCandidate(incoming ChainRequest) *Placement {
	var best *Placement
	for _, p := range c.placements {
		if p.State != StatePlaced || p.Req.Security || p.Req.Priority >= incoming.Priority {
			continue
		}
		if best == nil || p.Req.Priority < best.Req.Priority ||
			(p.Req.Priority == best.Req.Priority && p.Req.ID < best.Req.ID) {
			best = p
		}
	}
	return best
}

// shed browns out one placed chain: its session is torn down (final
// invoice collected), its capacity freed.
func (c *Cluster) shed(p *Placement) {
	if p.Sess != nil {
		if inv, err := p.Sess.Teardown(); err == nil && inv != nil && c.cfg.OnInvoice != nil {
			c.cfg.OnInvoice(p.Req.ID, inv)
		}
		p.Sess = nil
	}
	c.release(p)
	c.chargeTenant(p.Req, -1)
	p.State = StateShed
	c.stats.Shed++
}

// RetryParked re-admits parked security chains (sorted by ID) after
// capacity returns. Each gets a fresh deployment — the old one died
// with its host.
func (c *Cluster) RetryParked() int {
	var ids []string
	for id, p := range c.placements {
		if p.State == StateParked {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	n := 0
	for _, id := range ids {
		p := c.placements[id]
		if err := c.admit(p.Req); err != nil {
			continue
		}
		h, cost, spilled, ok := c.pickHost(p.Req)
		if !ok || h.down {
			continue
		}
		if p.Dev != nil {
			sess, err := core.Connect(p.Dev, []*core.AccessNetwork{h.Net})
			if err != nil || sess.Mode != core.ModeInNetwork {
				continue
			}
			p.Sess = sess
		}
		c.chargeTenant(p.Req, 1)
		c.install(p, h, cost, spilled)
		c.stats.Reparked++
		n++
	}
	return n
}

// RenewAll renews every placed chain's lease on its host, in chain-ID
// order. Callers schedule it; per-device expiry spread comes from the
// hosts' RenewJitter.
func (c *Cluster) RenewAll() int {
	ids := make([]string, 0, len(c.placements))
	for id, p := range c.placements {
		if p.State == StatePlaced && p.Sess != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	n := 0
	for _, id := range ids {
		p := c.placements[id]
		if h := c.hostByName[p.Host]; h != nil && !h.down {
			if _, ok := h.Net.Server.Renew(p.Dev.ID); ok {
				n++
			}
		}
	}
	return n
}

// TeardownAll retires every placed chain cleanly, collecting final
// invoices, in chain-ID order — the quiesce path.
func (c *Cluster) TeardownAll() {
	ids := make([]string, 0, len(c.placements))
	for id, p := range c.placements {
		if p.State == StatePlaced {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := c.placements[id]
		if p.Sess != nil {
			if inv, err := p.Sess.Teardown(); err == nil && inv != nil && c.cfg.OnInvoice != nil {
				c.cfg.OnInvoice(id, inv)
			}
			p.Sess = nil
		}
		c.release(p)
		c.chargeTenant(p.Req, -1)
		p.State = StateRetired
	}
}

// BookViolations reconciles the placement book against actual host
// state in both directions — the orchestrator-level invariant the
// scenario checker folds in (ROADMAP item 3 follow-up). A clean
// cluster returns nil at any quiet point: every placed chain's
// deployment exists on its booked host with the matching cookie, every
// deployment on a live host is booked, and per-host capacity equals
// the sum of booked requests. Hosts that are down but not yet detected
// dead are skipped (their evacuation is still in flight).
func (c *Cluster) BookViolations() []string {
	var out []string
	ids := make([]string, 0, len(c.placements))
	for id := range c.placements {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	type cap struct{ cpu, mem int64 }
	want := map[string]*cap{}
	booked := map[string]map[string]string{} // host -> deviceID -> chainID
	for _, id := range ids {
		p := c.placements[id]
		if p.State != StatePlaced {
			if p.State == StateParked && p.Sess != nil {
				out = append(out, fmt.Sprintf("parked chain %s still has a live session (fail-open)", id))
			}
			continue
		}
		h := c.hostByName[p.Host]
		if h == nil {
			out = append(out, fmt.Sprintf("chain %s booked on unknown host %q", id, p.Host))
			continue
		}
		if !h.placed[id] {
			out = append(out, fmt.Sprintf("chain %s booked on %s but absent from the host's placed set", id, p.Host))
		}
		w := want[p.Host]
		if w == nil {
			w = &cap{}
			want[p.Host] = w
		}
		w.cpu += p.Req.CPUMilli
		w.mem += p.Req.MemBytes
		if h.health == HostDead {
			out = append(out, fmt.Sprintf("chain %s booked on dead host %s", id, p.Host))
			continue
		}
		if h.down {
			continue // crash not yet detected; evacuation in flight
		}
		if p.Dev != nil {
			dep := h.Net.Server.Deployment(p.Dev.ID)
			switch {
			case dep == nil:
				out = append(out, fmt.Sprintf("chain %s booked on %s but host has no deployment for %s", id, p.Host, p.Dev.ID))
			case p.Sess != nil && dep.Cookie != p.Sess.Cookie:
				out = append(out, fmt.Sprintf("chain %s on %s: booked cookie %d, host runs %d", id, p.Host, p.Sess.Cookie, dep.Cookie))
			}
			if booked[p.Host] == nil {
				booked[p.Host] = map[string]string{}
			}
			booked[p.Host][p.Dev.ID] = id
		}
	}
	for _, h := range c.hosts {
		w := want[h.Spec.Name]
		if w == nil {
			w = &cap{}
		}
		if h.usedCPU != w.cpu || h.usedMem != w.mem {
			out = append(out, fmt.Sprintf("host %s capacity book (%d cpu, %d mem) != placed sum (%d, %d)",
				h.Spec.Name, h.usedCPU, h.usedMem, w.cpu, w.mem))
		}
		if h.down || h.health == HostDead {
			continue
		}
		for _, devID := range h.Net.Server.DeviceIDs() {
			if booked[h.Spec.Name][devID] == "" {
				out = append(out, fmt.Sprintf("host %s runs a deployment for %s no booked chain owns", h.Spec.Name, devID))
			}
		}
	}
	return out
}

// fnv64 is FNV-1a, the same stable hash the deployserver uses for
// lease jitter — per-host heartbeat phases must not consume an RNG
// stream (adding a host would shift every later draw).
func fnv64(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
