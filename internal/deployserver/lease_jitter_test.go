package deployserver

import (
	"fmt"
	"testing"
	"time"

	"pvn/internal/discovery"
	"pvn/internal/pvnc"
)

// herdSrc is a middlebox-free module so a thousand deploys stay cheap.
func herdSrc(owner, device string) string {
	return fmt.Sprintf(`pvnc herd
owner %s
device %s
policy 10 match proto=tcp dport=443 action=forward
policy 0 match any action=forward
`, owner, device)
}

func herdDeploy(t *testing.T, s *Server, i int) string {
	t.Helper()
	id := fmt.Sprintf("dev%04d", i)
	src := herdSrc(fmt.Sprintf("user%04d", i), fmt.Sprintf("10.%d.%d.%d", i/65536, (i/256)%256, 1+i%200))
	resp := s.HandleDeploy(&discovery.DeployRequest{DeviceID: id, PVNCSource: src, Payment: 0})
	if !resp.OK {
		t.Fatalf("deploy %s: %s", id, resp.Reason)
	}
	return id
}

// TestLeaseRenewalJitterBreaksHerd: a cohort of subscribers deployed in
// one orchestration wave all share a TTL. Without jitter every lease
// expires on the same instant — a synchronized renewal storm each TTL.
// RenewJitter must spread the cohort across the window, deterministically,
// and renewals must preserve each device's offset.
func TestLeaseRenewalJitterBreaksHerd(t *testing.T) {
	const n = 1000
	const ttl = 60 * time.Second
	const jitter = 30 * time.Second

	expiries := func(withJitter bool) map[string]time.Duration {
		now := time.Duration(0)
		s := testServer(t, &now)
		s.LeaseTTL = ttl
		if withJitter {
			s.RenewJitter = jitter
		}
		out := make(map[string]time.Duration, n)
		for i := 0; i < n; i++ {
			id := herdDeploy(t, s, i)
			out[id] = s.Deployment(id).LeaseExpires
		}
		return out
	}

	plain := expiries(false)
	distinct := map[time.Duration]bool{}
	for _, e := range plain {
		distinct[e] = true
	}
	if len(distinct) != 1 {
		t.Fatalf("without jitter, %d leases should share one expiry, got %d", n, len(distinct))
	}

	jittered := expiries(true)
	buckets := map[time.Duration]int{}
	for id, e := range jittered {
		if e < ttl || e >= ttl+jitter {
			t.Fatalf("%s expiry %v outside [ttl, ttl+jitter)", id, e)
		}
		buckets[e/time.Second] = buckets[e/time.Second] + 1
	}
	// 1000 devices across a 30-bucket window: demand a real spread and
	// no bucket hoarding a herd.
	if len(buckets) < 25 {
		t.Fatalf("jitter spread %d devices over only %d 1s-buckets", n, len(buckets))
	}
	for b, c := range buckets {
		if c > n/5 {
			t.Fatalf("bucket %ds holds %d/%d devices — still a herd", b, c, n)
		}
	}

	// Deterministic: a second run lands every device on the same expiry.
	again := expiries(true)
	for id, e := range jittered {
		if again[id] != e {
			t.Fatalf("%s expiry drifted across runs: %v vs %v", id, e, again[id])
		}
	}

	// Renewal keeps the per-device offset: expiry = now + TTL + jitter(dev).
	now := time.Duration(0)
	s := testServer(t, &now)
	s.LeaseTTL, s.RenewJitter = ttl, jitter
	id := herdDeploy(t, s, 7)
	first := s.Deployment(id).LeaseExpires
	now = 10 * time.Second
	renewed, ok := s.Renew(id)
	if !ok {
		t.Fatal("renew failed")
	}
	if renewed != first+10*time.Second {
		t.Fatalf("renewal changed the device's jitter offset: %v vs %v", renewed, first+10*time.Second)
	}
}

// TestDeployViaTemplateCache: a Templates-enabled server installs the
// same deployments as a plain one, and co-subscribers of one module hit
// the shared skeleton.
func TestDeployViaTemplateCache(t *testing.T) {
	now := time.Duration(0)
	plain := testServer(t, &now)
	shared := testServer(t, &now)
	shared.Templates = pvnc.NewTemplateCache()

	for i := 0; i < 8; i++ {
		herdDeploy(t, plain, i)
		id := herdDeploy(t, shared, i)
		pp, pb, _ := plain.Usage(id)
		sp, sb, _ := shared.Usage(id)
		if pp != sp || pb != sb {
			t.Fatalf("usage diverged for %s", id)
		}
	}
	if plain.Switch.Table.Len() != shared.Switch.Table.Len() {
		t.Fatalf("table sizes diverged: %d vs %d", plain.Switch.Table.Len(), shared.Switch.Table.Len())
	}
	st := shared.Templates.Stats()
	if st.Templates != 1 || st.Hits != 7 {
		t.Fatalf("expected 1 template + 7 hits, got %+v", st)
	}
	// Teardown still removes every rule the shared compile installed.
	if _, _, err := shared.Teardown("dev0003"); err != nil {
		t.Fatal(err)
	}
	if shared.Switch.Table.Len() != plain.Switch.Table.Len()-4 {
		t.Fatalf("teardown under sharing left %d rules (plain %d)", shared.Switch.Table.Len(), plain.Switch.Table.Len())
	}
}
