package deployserver

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pvn/internal/discovery"
	"pvn/internal/openflow"
	"pvn/internal/packet"
	"pvn/internal/pvnc"
)

// TestSameOwnerMultipleDevices reproduces §3.1's "a user can specify the
// same PVNC for multiple devices": two of alice's devices deploy the
// same configuration on one network; their chains live in separate
// namespaces and tear down independently.
func TestSameOwnerMultipleDevices(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)

	cfg, _ := pvnc.Parse(cfgSrc)
	r1 := &discovery.DeployRequest{DeviceID: "phone", PVNCSource: cfg.Source(), Payment: 300}
	r2 := &discovery.DeployRequest{DeviceID: "laptop", PVNCSource: cfg.Source(), Payment: 300}

	if resp := s.HandleDeploy(r1); !resp.OK {
		t.Fatalf("phone deploy: %s", resp.Reason)
	}
	if resp := s.HandleDeploy(r2); !resp.OK {
		t.Fatalf("laptop deploy: %s", resp.Reason)
	}
	d1, d2 := s.Deployment("phone"), s.Deployment("laptop")
	if d1.Cookie == d2.Cookie {
		t.Fatal("deployments share a cookie")
	}
	if d1.Chains[0] == d2.Chains[0] {
		t.Fatalf("deployments share chain namespace: %v", d1.Chains)
	}
	if !strings.HasPrefix(d1.Chains[0], "alice.phone/") {
		t.Fatalf("chain name %q lacks device namespace", d1.Chains[0])
	}
	// Both data planes work (both devices share 10.0.0.5 in this config,
	// which is fine: the rules are identical but cookie-separated).
	if s.Switch.Table.Len() != 8 { // 4 rules each
		t.Fatalf("table has %d rules, want 8", s.Switch.Table.Len())
	}

	// Tearing down the phone leaves the laptop's PVN intact.
	if _, _, err := s.Teardown("phone"); err != nil {
		t.Fatal(err)
	}
	if s.Switch.Table.Len() != 4 {
		t.Fatalf("table has %d rules after partial teardown, want 4", s.Switch.Table.Len())
	}
	if len(s.Runtime.InstancesOf("alice")) != 2 {
		t.Fatalf("alice has %d instances, want laptop's 2", len(s.Runtime.InstancesOf("alice")))
	}
	now = 50 * time.Millisecond
	// Laptop's chain still executes.
	if s.Runtime.Chain("alice.laptop", "secure") == nil {
		t.Fatal("laptop chain gone")
	}
	if s.Runtime.Chain("alice.phone", "secure") != nil {
		t.Fatal("phone chain survived teardown")
	}
}

const sensorCfgSrc = `
pvnc home-away
owner alice
device 10.0.0.5
sensor 10.0.0.20
sensor 10.0.0.21
middlebox pii pii-detect mode=block secrets=hunter2
chain guard pii
policy 100 match proto=tcp dport=80 via=guard action=forward
policy 0 match any action=forward
`

// TestSensorTrafficCovered reproduces §2.3: policies apply to the user's
// IoT sensors too — the PVN interposes on the camera's uploads, not just
// the phone's.
func TestSensorTrafficCovered(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	cfg, err := pvnc.Parse(sensorCfgSrc)
	if err != nil {
		t.Fatal(err)
	}
	if errs := cfg.Validate(); len(errs) != 0 {
		t.Fatalf("validate: %v", errs)
	}
	resp := s.HandleDeploy(&discovery.DeployRequest{DeviceID: "dev1", PVNCSource: cfg.Source(), Payment: 300})
	if !resp.OK {
		t.Fatalf("deploy: %s", resp.Reason)
	}
	// 2 policies * 2 directions * 3 covered addrs.
	if s.Switch.Table.Len() != 12 {
		t.Fatalf("table has %d rules, want 12", s.Switch.Table.Len())
	}
	now = 50 * time.Millisecond

	mk := func(src string, body string) []byte {
		ip := &packet.IPv4{Src: packet.MustParseIPv4(src), Dst: packet.MustParseIPv4("93.184.216.34"), Protocol: packet.IPProtoTCP}
		tcp := &packet.TCP{SrcPort: 41000, DstPort: 80}
		tcp.SetNetworkLayerForChecksum(ip)
		h := &packet.HTTP{IsRequest: true, Method: "POST", Path: "/up", Body: []byte(body)}
		h.SetHeader("Host", "sink.example")
		msg, _ := packet.SerializeToBytes(h)
		data, _ := packet.SerializeToBytes(ip, tcp, packet.Payload(msg))
		return data
	}

	// The camera (sensor) leaking the user's secret is blocked.
	d := s.Switch.Process(mk("10.0.0.20", "password=hunter2"), 0)
	if d.Verdict != openflow.VerdictDrop {
		t.Fatalf("sensor leak verdict %v, want drop", d.Verdict)
	}
	// Clean sensor traffic flows.
	d = s.Switch.Process(mk("10.0.0.21", "temp=21"), 0)
	if d.Verdict != openflow.VerdictOutput {
		t.Fatalf("clean sensor verdict %v", d.Verdict)
	}
	// A neighbor's device with a different address misses the PVN rules
	// entirely (table-miss -> controller punt, not alice's chain).
	d = s.Switch.Process(mk("10.0.0.99", "password=hunter2"), 0)
	if d.Verdict != openflow.VerdictController {
		t.Fatalf("foreign traffic verdict %v, want controller (table miss)", d.Verdict)
	}
}

func TestSensorValidation(t *testing.T) {
	dup := `
pvnc x
owner a
device 1.2.3.4
sensor 1.2.3.4
policy 0 match any action=forward
`
	cfg, err := pvnc.Parse(dup)
	if err != nil {
		t.Fatal(err)
	}
	errs := cfg.Validate()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "duplicate sensor") {
			found = true
		}
	}
	if !found {
		t.Fatalf("device-as-sensor not flagged: %v", errs)
	}
	if _, err := pvnc.Parse("sensor notanip"); err == nil {
		t.Fatal("bad sensor address parsed")
	}
}

func TestSensorFormatRoundTrip(t *testing.T) {
	cfg, err := pvnc.Parse(sensorCfgSrc)
	if err != nil {
		t.Fatal(err)
	}
	re, err := pvnc.Parse(cfg.Format())
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Sensors) != 2 || re.Sensors[0] != packet.MustParseIPv4("10.0.0.20") {
		t.Fatalf("sensors lost in round trip: %v", re.Sensors)
	}
	if re.Estimate().NumFlowRules != 12 {
		t.Fatalf("estimate %d rules, want 12", re.Estimate().NumFlowRules)
	}
}

// TestDeployByURI: the device hands the network a URI plus the binding
// hash; the network fetches the object and the hash check catches
// substitution (a tampered store or on-path rewrite).
func TestDeployByURI(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	cfg, _ := pvnc.Parse(cfgSrc)
	store := map[string]string{"pvnc://cloud/alice/roaming": cfg.Source()}
	s.FetchPVNC = func(uri string) (string, error) {
		src, ok := store[uri]
		if !ok {
			return "", fmt.Errorf("object not found")
		}
		return src, nil
	}

	// Happy path.
	resp := s.HandleDeploy(&discovery.DeployRequest{
		DeviceID: "dev1", PVNCURI: "pvnc://cloud/alice/roaming",
		PVNCHash: cfg.Hash(), Payment: 300,
	})
	if !resp.OK {
		t.Fatalf("URI deploy NACK: %s", resp.Reason)
	}
	s.Teardown("dev1")

	// Unknown object.
	resp = s.HandleDeploy(&discovery.DeployRequest{
		DeviceID: "dev2", PVNCURI: "pvnc://cloud/ghost", PVNCHash: cfg.Hash(), Payment: 300,
	})
	if resp.OK || !strings.Contains(resp.Reason, "fetch") {
		t.Fatalf("ghost URI: %+v", resp)
	}

	// The store substitutes a different config: hash check catches it.
	evil, _ := pvnc.Parse("pvnc evil\nowner alice\ndevice 10.0.0.5\npolicy 0 match any action=forward")
	store["pvnc://cloud/alice/roaming"] = evil.Source()
	resp = s.HandleDeploy(&discovery.DeployRequest{
		DeviceID: "dev3", PVNCURI: "pvnc://cloud/alice/roaming",
		PVNCHash: cfg.Hash(), Payment: 300,
	})
	if resp.OK || !strings.Contains(resp.Reason, "hash mismatch") {
		t.Fatalf("substituted object deployed: %+v", resp)
	}

	// Servers without a fetcher refuse URI requests.
	s.FetchPVNC = nil
	resp = s.HandleDeploy(&discovery.DeployRequest{
		DeviceID: "dev4", PVNCURI: "pvnc://cloud/x", Payment: 300,
	})
	if resp.OK || !strings.Contains(resp.Reason, "not supported") {
		t.Fatalf("fetcherless server accepted URI: %+v", resp)
	}
}
