package deployserver

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pvn/internal/discovery"
	"pvn/internal/openflow"
	"pvn/internal/pvnc"
)

// negotiated runs the full discovery handshake against s and returns the
// resulting deploy request (bound to a live offer).
func negotiated(t *testing.T, s *Server, deviceID string) *discovery.DeployRequest {
	t.Helper()
	return negotiatedSrc(t, s, deviceID, cfgSrc)
}

func negotiatedSrc(t *testing.T, s *Server, deviceID, src string) *discovery.DeployRequest {
	t.Helper()
	cfg, err := pvnc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	n := discovery.NewNegotiator(deviceID, cfg, 1000, discovery.StrategyStrict)
	offer := s.HandleDM(n.MakeDM())
	if offer == nil {
		t.Fatal("no offer")
	}
	dec := n.Evaluate(offer, s.Now())
	if !dec.Accept {
		t.Fatalf("offer rejected: %s", dec.Reason)
	}
	return n.BuildDeployRequest(offer, dec)
}

// TestDeployBindsPVNCHash is the regression test for the formerly dead
// tamper check: BuildDeployRequest must bind the request to the
// negotiated config's hash, and a substituted PVNC must be NACKed.
func TestDeployBindsPVNCHash(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	req := negotiated(t, s, "dev1")
	if req.PVNCHash == "" {
		t.Fatal("BuildDeployRequest left PVNCHash empty — the server-side tamper check is dead again")
	}
	tampered := *req
	tampered.PVNCSource = strings.Replace(req.PVNCSource, "mode=block", "mode=log", 1)
	resp := s.HandleDeploy(&tampered)
	if resp.OK || !strings.Contains(resp.Reason, "hash mismatch") {
		t.Fatalf("tampered PVNC not caught: %+v", resp)
	}
	if resp := s.HandleDeploy(req); !resp.OK {
		t.Fatalf("untampered request NACKed: %s", resp.Reason)
	}
}

func TestDeployRejectsUnknownOffer(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	req := deployReq(t, 300)
	req.OfferID = "forged-99"
	resp := s.HandleDeploy(req)
	if resp.OK || !strings.Contains(resp.Reason, "unknown offer") {
		t.Fatalf("forged offer accepted: %+v", resp)
	}
}

func TestDeployRejectsExpiredOffer(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	s.Provider.OfferTTL = time.Second
	req := negotiated(t, s, "dev1")
	now = time.Second // exactly at expiry: void on both sides
	resp := s.HandleDeploy(req)
	if resp.OK || !strings.Contains(resp.Reason, "expired") {
		t.Fatalf("expired offer accepted: %+v", resp)
	}
}

// TestDuplicateDeployReACKed: retransmitting the same deploy (device
// never saw the ACK) is answered idempotently with the original cookie,
// and installs nothing twice.
func TestDuplicateDeployReACKed(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	req := negotiated(t, s, "dev1")
	first := s.HandleDeploy(req)
	if !first.OK {
		t.Fatal(first.Reason)
	}
	rules := s.Switch.Table.Len()
	second := s.HandleDeploy(req)
	if !second.OK || second.Cookie != first.Cookie {
		t.Fatalf("retransmission: %+v (want re-ACK of cookie %d)", second, first.Cookie)
	}
	if s.Switch.Table.Len() != rules {
		t.Fatalf("re-ACK installed more rules: %d -> %d", rules, s.Switch.Table.Len())
	}
	// A different device quoting the same offer is not a retransmission.
	other := *req
	other.DeviceID = "dev2"
	if resp := s.HandleDeploy(&other); !resp.OK {
		t.Fatalf("second device on same offer: %s", resp.Reason)
	}
}

// TestRedeployAfterLostACKs: a device whose deploy installed but whose
// ACKs were all lost abandons the offer, re-discovers, and deploys the
// same PVNC under a new offer ID. The server must recognize the hash
// match and re-ACK with the original cookie — NACKing "already has a
// deployment" would lock the device out permanently under LeaseTTL=0.
func TestRedeployAfterLostACKs(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	first := s.HandleDeploy(negotiated(t, s, "dev1"))
	if !first.OK {
		t.Fatal(first.Reason)
	}
	rules := s.Switch.Table.Len()
	insts := len(s.Runtime.InstanceIDs())
	// Fresh discovery round: new offer ID, same config and hash.
	req2 := negotiated(t, s, "dev1")
	if dep := s.Deployment("dev1"); req2.OfferID == dep.OfferID {
		t.Fatal("test needs a distinct offer ID")
	}
	second := s.HandleDeploy(req2)
	if !second.OK || second.Cookie != first.Cookie {
		t.Fatalf("same-PVNC redeploy under new offer: %+v (want re-ACK of cookie %d)", second, first.Cookie)
	}
	if s.Switch.Table.Len() != rules || len(s.Runtime.InstanceIDs()) != insts {
		t.Fatalf("re-ACK reinstalled state: rules %d->%d insts %d->%d",
			rules, s.Switch.Table.Len(), insts, len(s.Runtime.InstanceIDs()))
	}
}

// TestRedeployNewConfigSupersedes: a redeploy with a genuinely different
// PVNC replaces the stale deployment instead of being NACKed — but only
// after the new request fully validates, so a bad request never destroys
// a working deployment.
func TestRedeployNewConfigSupersedes(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	first := s.HandleDeploy(negotiated(t, s, "dev1"))
	if !first.OK {
		t.Fatal(first.Reason)
	}
	oldHash := s.Deployment("dev1").Hash
	rules := s.Switch.Table.Len()
	insts := len(s.Runtime.InstanceIDs())

	// An invalid replacement (payment too low) must leave the old
	// deployment standing.
	badSrc := strings.Replace(cfgSrc, "secrets=hunter2", "secrets=hunter3", 1)
	bad := negotiatedSrc(t, s, "dev1", badSrc)
	bad.Payment = 1
	if resp := s.HandleDeploy(bad); resp.OK {
		t.Fatal("underpaid replacement accepted")
	}
	if dep := s.Deployment("dev1"); dep == nil || dep.Hash != oldHash || dep.Cookie != first.Cookie {
		t.Fatalf("failed replacement destroyed the old deployment: %+v", s.Deployment("dev1"))
	}

	// A valid replacement supersedes: new cookie, new hash, no doubled
	// state from the old install.
	good := negotiatedSrc(t, s, "dev1", badSrc)
	resp := s.HandleDeploy(good)
	if !resp.OK {
		t.Fatalf("replacement NACKed: %s", resp.Reason)
	}
	if resp.Cookie == first.Cookie {
		t.Fatal("replacement reused the old cookie")
	}
	dep := s.Deployment("dev1")
	if dep.Hash == oldHash || dep.Hash != good.PVNCHash {
		t.Fatalf("deployment hash %q, want the replacement's %q", dep.Hash, good.PVNCHash)
	}
	if s.Switch.Table.Len() != rules || len(s.Runtime.InstanceIDs()) != insts {
		t.Fatalf("supersede leaked state: rules %d->%d insts %d->%d",
			rules, s.Switch.Table.Len(), insts, len(s.Runtime.InstanceIDs()))
	}
}

func TestLeaseExpiryAndRenew(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	s.LeaseTTL = 10 * time.Second
	if resp := s.HandleDeploy(deployReq(t, 300)); !resp.OK {
		t.Fatal(resp.Reason)
	}
	dep := s.Deployment("dev1")
	if dep.LeaseExpires != 10*time.Second {
		t.Fatalf("lease expires %v", dep.LeaseExpires)
	}
	now = 9 * time.Second
	if expired := s.SweepExpired(); len(expired) != 0 {
		t.Fatalf("live lease swept: %v", expired)
	}
	// Renew pushes the lease out from now.
	if exp, ok := s.Renew("dev1"); !ok || exp != 19*time.Second {
		t.Fatalf("renew: %v %v", exp, ok)
	}
	now = 12 * time.Second
	if expired := s.SweepExpired(); len(expired) != 0 {
		t.Fatalf("renewed lease swept: %v", expired)
	}
	now = 19 * time.Second // lapse is inclusive: now >= expiry
	if expired := s.SweepExpired(); len(expired) != 1 || expired[0] != "dev1" {
		t.Fatalf("sweep: %v", expired)
	}
	if s.Switch.Table.Len() != 0 || len(s.Runtime.InstancesOf("alice")) != 0 {
		t.Fatal("swept deployment left state behind")
	}
	if s.Runtime.MemoryUsed() != 0 {
		t.Fatalf("swept deployment holds %d bytes", s.Runtime.MemoryUsed())
	}
	// The lapsed device cannot renew; it must redeploy.
	if _, ok := s.Renew("dev1"); ok {
		t.Fatal("renewed a lapsed lease")
	}
	if resp := s.HandleDeploy(deployReq(t, 300)); !resp.OK {
		t.Fatalf("redeploy after lapse: %s", resp.Reason)
	}
}

func TestLeaseZeroTTLNeverExpires(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	if resp := s.HandleDeploy(deployReq(t, 300)); !resp.OK {
		t.Fatal(resp.Reason)
	}
	now = 1000 * time.Hour
	if expired := s.SweepExpired(); len(expired) != 0 {
		t.Fatalf("infinite lease swept: %v", expired)
	}
	if exp, ok := s.Renew("dev1"); !ok || exp != 0 {
		t.Fatalf("renew under zero TTL: %v %v", exp, ok)
	}
}

// TestRestartReclaimsOrphans: a crash loses the deployment and offer
// books while installed state keeps running; ReclaimOrphans must mop up
// every leaked rule, meter, chain and instance — including the sharded
// dataplane mirror.
func TestRestartReclaimsOrphans(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	s.ExtraRules = openflow.NewFlowTable()
	// A config with a rate policy so a meter is installed too.
	src := cfgSrc + "policy 50 match proto=udp dport=53 rate=1mbps action=forward\n"
	cfg, err := pvnc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	req := &discovery.DeployRequest{DeviceID: "dev1", PVNCSource: cfg.Source(), Payment: 300}
	if resp := s.HandleDeploy(req); !resp.OK {
		t.Fatal(resp.Reason)
	}
	preReq := negotiated(t, s, "dev-pre") // offer issued before the crash

	rules, meters := s.Switch.Table.Len(), len(s.Switch.Meters)
	insts := len(s.Runtime.InstanceIDs())
	if rules == 0 || meters == 0 || insts == 0 {
		t.Fatalf("deploy installed nothing: rules=%d meters=%d insts=%d", rules, meters, insts)
	}

	s.Restart()
	if s.Deployment("dev1") != nil {
		t.Fatal("deployment book survived the crash")
	}
	if s.Switch.Table.Len() != rules || len(s.Runtime.InstanceIDs()) != insts {
		t.Fatal("restart itself must not touch installed state")
	}
	// Offers from before the crash are gone with the book.
	if resp := s.HandleDeploy(preReq); resp.OK || !strings.Contains(resp.Reason, "unknown offer") {
		t.Fatalf("pre-crash offer honoured after restart: %+v", resp)
	}

	gotRules, gotMeters, gotChains, gotInsts := s.ReclaimOrphans()
	if gotRules == 0 || gotMeters != meters || gotInsts != insts || gotChains == 0 {
		t.Fatalf("reclaimed rules=%d meters=%d chains=%d insts=%d", gotRules, gotMeters, gotChains, gotInsts)
	}
	if s.Switch.Table.Len() != 0 || s.ExtraRules.Len() != 0 {
		t.Fatalf("rules leaked: table=%d extra=%d", s.Switch.Table.Len(), s.ExtraRules.Len())
	}
	if len(s.Switch.Meters) != 0 || len(s.Runtime.ChainKeys()) != 0 || len(s.Runtime.InstanceIDs()) != 0 {
		t.Fatal("orphans survived reclaim")
	}
	if s.Runtime.MemoryUsed() != 0 {
		t.Fatalf("reclaim leaked %d bytes", s.Runtime.MemoryUsed())
	}
	// The reborn server accepts fresh deployments.
	if resp := s.HandleDeploy(negotiated(t, s, "dev1")); !resp.OK {
		t.Fatalf("post-recovery deploy: %s", resp.Reason)
	}
}

// TestReclaimSparesTrackedDeployments: reclaim after a partial crash
// (some deployments survived in the book) removes only untracked state.
func TestReclaimSparesTrackedDeployments(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	if resp := s.HandleDeploy(deployReq(t, 300)); !resp.OK {
		t.Fatal(resp.Reason)
	}
	rules := s.Switch.Table.Len()
	r, m, c, i := s.ReclaimOrphans()
	if r+m+c+i != 0 {
		t.Fatalf("reclaim touched tracked state: %d/%d/%d/%d", r, m, c, i)
	}
	if s.Switch.Table.Len() != rules {
		t.Fatal("tracked rules removed")
	}
}

// TestRollbackOnInstantiateFailure: a type the provider prices but the
// runtime cannot build (ErrUnknownType mid-deploy) must leave zero
// residue — instances, memory, chains, meters, rules, mirror.
func TestRollbackOnInstantiateFailure(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	s.ExtraRules = openflow.NewFlowTable()
	s.Provider.Supported["mystery-box"] = 10 // priced but not registered
	src := strings.Replace(cfgSrc,
		"middlebox pii pii-detect mode=block secrets=hunter2",
		"middlebox pii mystery-box", 1)
	cfg, err := pvnc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	req := &discovery.DeployRequest{DeviceID: "dev1", PVNCSource: cfg.Source(), Payment: 300}
	resp := s.HandleDeploy(req)
	if resp.OK || !strings.Contains(resp.Reason, "instantiate") {
		t.Fatalf("deploy of unbuildable type: %+v", resp)
	}
	assertPristine(t, s)
}

// TestRollbackOnChainConflict: a BuildChainIn failure (the namespace/name
// already exists) rolls back the instances created before it.
func TestRollbackOnChainConflict(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	s.ExtraRules = openflow.NewFlowTable()
	// Occupy the exact chain key the deploy will want: alice.dev1/secure.
	squat, err := s.Runtime.Instantiate("alice", "tls-verify", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Runtime.BuildChainIn("alice", "alice.dev1", "secure", []string{squat.ID}, nil); err != nil {
		t.Fatal(err)
	}
	preMem := s.Runtime.MemoryUsed()

	resp := s.HandleDeploy(deployReq(t, 300))
	if resp.OK || !strings.Contains(resp.Reason, "chain") {
		t.Fatalf("conflicting deploy: %+v", resp)
	}
	if got := len(s.Runtime.InstanceIDs()); got != 1 {
		t.Fatalf("%d instances after rollback (want the 1 pre-existing)", got)
	}
	if s.Runtime.MemoryUsed() != preMem {
		t.Fatalf("memory %d != pre-deploy %d", s.Runtime.MemoryUsed(), preMem)
	}
	if len(s.Runtime.ChainKeys()) != 1 {
		t.Fatalf("chains: %v", s.Runtime.ChainKeys())
	}
	if s.Switch.Table.Len() != 0 || s.ExtraRules.Len() != 0 || len(s.Switch.Meters) != 0 {
		t.Fatal("switch state leaked by rollback")
	}
}

// TestTeardownRemovesMeters is the regression test for the meter leak:
// teardown used to leave dep.Meters installed forever.
func TestTeardownRemovesMeters(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	src := cfgSrc + "policy 50 match proto=udp dport=53 rate=1mbps action=forward\n"
	cfg, err := pvnc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	req := &discovery.DeployRequest{DeviceID: "dev1", PVNCSource: cfg.Source(), Payment: 300}
	if resp := s.HandleDeploy(req); !resp.OK {
		t.Fatal(resp.Reason)
	}
	if len(s.Switch.Meters) == 0 {
		t.Fatal("rate policy installed no meter")
	}
	if _, _, err := s.Teardown("dev1"); err != nil {
		t.Fatal(err)
	}
	if len(s.Switch.Meters) != 0 {
		t.Fatalf("teardown leaked meters: %v", s.Switch.Meters)
	}
}

func assertPristine(t *testing.T, s *Server) {
	t.Helper()
	if n := len(s.Runtime.InstanceIDs()); n != 0 {
		t.Fatalf("%d instances leaked", n)
	}
	if s.Runtime.MemoryUsed() != 0 {
		t.Fatalf("%d bytes leaked", s.Runtime.MemoryUsed())
	}
	if n := len(s.Runtime.ChainKeys()); n != 0 {
		t.Fatalf("%d chains leaked", n)
	}
	if n := len(s.Switch.Meters); n != 0 {
		t.Fatalf("%d meters leaked", n)
	}
	if s.Switch.Table.Len() != 0 {
		t.Fatalf("%d rules leaked", s.Switch.Table.Len())
	}
	if s.ExtraRules != nil && s.ExtraRules.Len() != 0 {
		t.Fatalf("%d mirrored rules leaked", s.ExtraRules.Len())
	}
}

// TestConcurrentLifecycle drives discovery, deploy, usage, manifest,
// renew and teardown from many goroutines at once. Run under -race (make
// test-race) this is the regression test for the unguarded nextOffer /
// deployments / nextCookie mutations.
func TestConcurrentLifecycle(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	s.LeaseTTL = time.Hour

	cfg, err := pvnc.Parse(cfgSrc)
	if err != nil {
		t.Fatal(err)
	}
	const devices = 16
	var wg sync.WaitGroup
	errs := make(chan error, devices)
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			deviceID := fmt.Sprintf("dev-%d", d)
			n := discovery.NewNegotiator(deviceID, cfg, 1000, discovery.StrategyStrict)
			for round := 0; round < 5; round++ {
				offer := s.HandleDM(n.MakeDM())
				if offer == nil {
					errs <- fmt.Errorf("%s: no offer", deviceID)
					return
				}
				dec := n.Evaluate(offer, s.Now())
				if !dec.Accept {
					errs <- fmt.Errorf("%s: %s", deviceID, dec.Reason)
					return
				}
				resp := s.HandleDeploy(n.BuildDeployRequest(offer, dec))
				if !resp.OK {
					errs <- fmt.Errorf("%s: deploy: %s", deviceID, resp.Reason)
					return
				}
				s.HandleDeploy(n.BuildDeployRequest(offer, dec)) // duplicate re-ACK path
				s.Usage(deviceID)
				s.BuildManifest(deviceID)
				s.Renew(deviceID)
				if _, _, err := s.Teardown(deviceID); err != nil {
					errs <- fmt.Errorf("%s: teardown: %v", deviceID, err)
					return
				}
			}
		}(d)
	}
	// Background sweeper and reclaimer racing the deployers.
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.SweepExpired()
				s.ReclaimOrphans()
			}
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	assertPristine(t, s)
}
