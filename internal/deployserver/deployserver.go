// Package deployserver implements the access-network side of PVN
// deployment (§3.1): it receives deployment requests, re-validates and
// compiles the PVNC, instantiates the requested middleboxes in the
// runtime, builds isolation-scoped chains, installs meters and flow
// rules into the edge switch, and acknowledges with a deployment cookie
// and a DHCP-refresh signal. Failures produce NACKs with a reason, and
// teardown removes every trace of a deployment atomically.
package deployserver

import (
	"fmt"
	"time"

	"pvn/internal/discovery"
	"pvn/internal/middlebox"
	"pvn/internal/openflow"
	"pvn/internal/pvnc"
)

// Deployment records one installed PVN.
type Deployment struct {
	DeviceID string
	Owner    string
	Cookie   uint64
	// Hash is the PVNC hash actually installed (after any reduction).
	Hash string
	// PaidMicro is what the device committed.
	PaidMicro int64
	// InstanceIDs are the middlebox instances created.
	InstanceIDs []string
	// Chains are the runtime chain names ("owner/name").
	Chains []string
	// InstalledAt/ReadyAt bound the setup window; ReadyAt is when the
	// slowest middlebox finishes booting.
	InstalledAt, ReadyAt time.Duration
	// Meters installed for this deployment.
	Meters []string
}

// Server hosts PVN deployments for one access network.
type Server struct {
	// Provider is the pricing/support policy quoted during discovery.
	Provider *discovery.ProviderPolicy
	// Switch is the edge switch PVN rules install into.
	Switch *openflow.Switch
	// Runtime hosts the middlebox instances.
	Runtime *middlebox.Runtime
	// Now supplies simulated time.
	Now func() time.Duration
	// FetchPVNC resolves a PVNC URI to its source text (deploy requests
	// may carry a cloud-storage URI instead of inline source, §3.1).
	// Nil means URI-based requests are refused.
	FetchPVNC func(uri string) (string, error)
	// ExtraRules, when non-nil, receives every flow-rule install/removal
	// in addition to Switch.Table — how cmd/pvnd mirrors deployments into
	// the sharded dataplane's table when -dataplane=sharded.
	ExtraRules openflow.RuleTable
	// DevicePort/UpstreamPort are the compile targets.
	DevicePort, UpstreamPort uint16

	nextCookie  uint64
	deployments map[string]*Deployment // by device ID
}

// New builds a deployment server wired to a switch and runtime.
func New(provider *discovery.ProviderPolicy, sw *openflow.Switch, rt *middlebox.Runtime, now func() time.Duration) *Server {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Server{
		Provider:     provider,
		Switch:       sw,
		Runtime:      rt,
		Now:          now,
		UpstreamPort: 1,
		deployments:  make(map[string]*Deployment),
	}
}

// HandleDM answers discovery on behalf of the provider policy.
func (s *Server) HandleDM(dm *discovery.DM) *discovery.Offer {
	return s.Provider.HandleDM(dm, s.Now())
}

// Deployment returns the active deployment for a device, or nil.
func (s *Server) Deployment(deviceID string) *Deployment {
	return s.deployments[deviceID]
}

// HandleDeploy installs a PVNC. Every failure path is a NACK; the
// installation itself is all-or-nothing (partial installs are rolled
// back).
func (s *Server) HandleDeploy(req *discovery.DeployRequest) *discovery.DeployResponse {
	nack := func(format string, args ...interface{}) *discovery.DeployResponse {
		return &discovery.DeployResponse{OK: false, Reason: fmt.Sprintf(format, args...)}
	}
	if _, exists := s.deployments[req.DeviceID]; exists {
		return nack("device %s already has a deployment; tear it down first", req.DeviceID)
	}
	source := req.PVNCSource
	if source == "" && req.PVNCURI != "" {
		if s.FetchPVNC == nil {
			return nack("URI-based PVNCs not supported here")
		}
		fetched, err := s.FetchPVNC(req.PVNCURI)
		if err != nil {
			return nack("fetch %s: %v", req.PVNCURI, err)
		}
		source = fetched
	}
	cfg, err := pvnc.Parse(source)
	if err != nil {
		return nack("unparseable PVNC: %v", err)
	}
	if req.PVNCHash != "" && cfg.Hash() != req.PVNCHash {
		// The fetched object does not match what the device asked for:
		// either the store or the path tampered with it.
		return nack("PVNC hash mismatch: got %.16s..., requested %.16s...", cfg.Hash(), req.PVNCHash)
	}
	if errs := cfg.Validate(); len(errs) > 0 {
		return nack("invalid PVNC: %v", errs[0])
	}
	// Price check: the device must cover the provider's price for every
	// module it deploys.
	var owed int64
	for _, m := range cfg.Middleboxes {
		price, ok := s.Provider.Supported[m.Type]
		if !ok {
			return nack("middlebox type %q not supported here", m.Type)
		}
		owed += price
	}
	if req.Payment < owed {
		return nack("payment %d below price %d", req.Payment, owed)
	}

	s.nextCookie++
	cookie := s.nextCookie
	// Namespace chains per deployment so the same owner can deploy the
	// same PVNC from several devices without collisions (§3.1).
	namespace := cfg.Owner + "." + req.DeviceID
	compiled, err := pvnc.Compile(cfg, pvnc.CompileOptions{
		Cookie:         cookie,
		DevicePort:     s.DevicePort,
		UpstreamPort:   s.UpstreamPort,
		ChainNamespace: namespace,
	})
	if err != nil {
		return nack("compile: %v", err)
	}

	dep := &Deployment{
		DeviceID:    req.DeviceID,
		Owner:       cfg.Owner,
		Cookie:      cookie,
		Hash:        compiled.Hash,
		PaidMicro:   req.Payment,
		InstalledAt: s.Now(),
	}

	// Instantiate middleboxes; on any failure, roll back what exists.
	names := map[string]string{} // local name -> instance ID
	rollback := func() {
		for _, id := range dep.InstanceIDs {
			s.Runtime.Terminate(id)
		}
		for _, ch := range dep.Chains {
			owner, name, _ := cutChain(ch)
			s.Runtime.RemoveChain(owner, name)
		}
		s.Switch.Table.RemoveByCookie(cookie)
		if s.ExtraRules != nil {
			s.ExtraRules.RemoveByCookie(cookie)
		}
	}
	for _, plan := range compiled.Middleboxes {
		inst, err := s.Runtime.Instantiate(cfg.Owner, plan.Type, plan.Config)
		if err != nil {
			rollback()
			return nack("instantiate %s: %v", plan.LocalName, err)
		}
		names[plan.LocalName] = inst.ID
		dep.InstanceIDs = append(dep.InstanceIDs, inst.ID)
		if inst.ReadyAt > dep.ReadyAt {
			dep.ReadyAt = inst.ReadyAt
		}
	}
	for _, ch := range compiled.Chains {
		ids := make([]string, len(ch.Members))
		for i, m := range ch.Members {
			ids[i] = names[m]
		}
		if _, err := s.Runtime.BuildChainIn(cfg.Owner, namespace, ch.Name, ids, cfg.CoveredAddrs()); err != nil {
			rollback()
			return nack("chain %s: %v", ch.Name, err)
		}
		dep.Chains = append(dep.Chains, namespace+"/"+ch.Name)
	}
	for _, m := range compiled.Meters {
		s.Switch.AddMeter(m.ID, &openflow.Meter{RateBps: m.RateBps})
		dep.Meters = append(dep.Meters, m.ID)
	}
	now := s.Now()
	for i := range compiled.FlowMods {
		compiled.FlowMods[i].Apply(s.Switch.Table, now)
		if s.ExtraRules != nil {
			compiled.FlowMods[i].Apply(s.ExtraRules, now)
		}
	}

	s.deployments[req.DeviceID] = dep
	return &discovery.DeployResponse{OK: true, Cookie: cookie, DHCPRefresh: true}
}

func cutChain(s string) (owner, name string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// Usage reports traffic counters for a device's deployment.
func (s *Server) Usage(deviceID string) (packets, bytes int64, ok bool) {
	dep := s.deployments[deviceID]
	if dep == nil {
		return 0, 0, false
	}
	p, b := s.Switch.Table.StatsByCookie(dep.Cookie)
	return p, b, true
}

// Teardown removes a deployment: flow rules, chains, instances. It
// returns the final usage counters for billing.
func (s *Server) Teardown(deviceID string) (packets, bytes int64, err error) {
	dep := s.deployments[deviceID]
	if dep == nil {
		return 0, 0, fmt.Errorf("deployserver: no deployment for %q", deviceID)
	}
	packets, bytes = s.Switch.Table.StatsByCookie(dep.Cookie)
	s.Switch.Table.RemoveByCookie(dep.Cookie)
	if s.ExtraRules != nil {
		s.ExtraRules.RemoveByCookie(dep.Cookie)
	}
	for _, ch := range dep.Chains {
		owner, name, _ := cutChain(ch)
		s.Runtime.RemoveChain(owner, name)
	}
	for _, id := range dep.InstanceIDs {
		s.Runtime.Terminate(id)
	}
	delete(s.deployments, deviceID)
	return packets, bytes, nil
}

// Manifest describes what is actually installed for a device — the input
// to attestation (§3.1 "Auditor"). An honest server reports reality; a
// dishonest one can lie, which is exactly what the auditor's checks are
// for.
type Manifest struct {
	DeviceID string   `json:"device_id"`
	Owner    string   `json:"owner"`
	PVNCHash string   `json:"pvnc_hash"`
	Chains   []string `json:"chains"`
	// InstanceTypes lists the middlebox types actually running.
	InstanceTypes []string `json:"instance_types"`
	Cookie        uint64   `json:"cookie"`
	RuleCount     int      `json:"rule_count"`
}

// BuildManifest reports the installed state for a device, or nil when no
// deployment exists.
func (s *Server) BuildManifest(deviceID string) *Manifest {
	dep := s.deployments[deviceID]
	if dep == nil {
		return nil
	}
	m := &Manifest{
		DeviceID: deviceID,
		Owner:    dep.Owner,
		PVNCHash: dep.Hash,
		Chains:   append([]string(nil), dep.Chains...),
		Cookie:   dep.Cookie,
	}
	for _, id := range dep.InstanceIDs {
		if inst := s.Runtime.Instance(id); inst != nil {
			m.InstanceTypes = append(m.InstanceTypes, inst.Spec.Type)
		}
	}
	for _, e := range s.Switch.Table.Entries() {
		if e.Cookie == dep.Cookie {
			m.RuleCount++
		}
	}
	return m
}
