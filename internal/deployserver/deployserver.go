// Package deployserver implements the access-network side of PVN
// deployment (§3.1): it receives deployment requests, re-validates and
// compiles the PVNC, instantiates the requested middleboxes in the
// runtime, builds isolation-scoped chains, installs meters and flow
// rules into the edge switch, and acknowledges with a deployment cookie
// and a DHCP-refresh signal. Failures produce NACKs with a reason, and
// teardown removes every trace of a deployment atomically.
package deployserver

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pvn/internal/discovery"
	"pvn/internal/middlebox"
	"pvn/internal/openflow"
	"pvn/internal/pvnc"
)

// Deployment records one installed PVN.
type Deployment struct {
	DeviceID string
	Owner    string
	Cookie   uint64
	// OfferID is the offer this deployment was installed against; it
	// keys duplicate-request suppression (a device retransmitting a
	// deploy over a lossy link is re-ACKed, not NACKed).
	OfferID string
	// Hash is the PVNC hash actually installed (after any reduction).
	Hash string
	// PaidMicro is what the device committed.
	PaidMicro int64
	// InstanceIDs are the middlebox instances created.
	InstanceIDs []string
	// Chains are the runtime chain names ("owner/name").
	Chains []string
	// InstalledAt/ReadyAt bound the setup window; ReadyAt is when the
	// slowest middlebox finishes booting.
	InstalledAt, ReadyAt time.Duration
	// Meters installed for this deployment.
	Meters []string
	// LeaseExpires is when the deployment lapses unless renewed; zero
	// means the lease never expires (the server has no LeaseTTL).
	LeaseExpires time.Duration
}

// Server hosts PVN deployments for one access network.
type Server struct {
	// Provider is the pricing/support policy quoted during discovery.
	Provider *discovery.ProviderPolicy
	// Switch is the edge switch PVN rules install into.
	Switch *openflow.Switch
	// Runtime hosts the middlebox instances.
	Runtime *middlebox.Runtime
	// Now supplies simulated time.
	Now func() time.Duration
	// FetchPVNC resolves a PVNC URI to its source text (deploy requests
	// may carry a cloud-storage URI instead of inline source, §3.1).
	// Nil means URI-based requests are refused.
	FetchPVNC func(uri string) (string, error)
	// ExtraRules, when non-nil, receives every flow-rule install/removal
	// in addition to Switch.Table — how cmd/pvnd mirrors deployments into
	// the sharded dataplane's table when -dataplane=sharded.
	ExtraRules openflow.RuleTable
	// DevicePort/UpstreamPort are the compile targets.
	DevicePort, UpstreamPort uint16
	// LeaseTTL bounds how long a deployment lives without a Renew call.
	// Zero preserves the legacy behaviour: deployments last until
	// explicit teardown. Nonzero turns deployments into leases a crashed
	// or departed device cannot leak forever (§3.3).
	LeaseTTL time.Duration
	// RenewJitter desynchronizes lease expiries: each grant/renewal adds
	// a per-device offset in [0, RenewJitter) to the expiry, derived
	// from a stable hash of the device ID (deterministic — no RNG).
	// Without it, thousands of co-placed subscribers deployed in one
	// orchestration wave share a single expiry instant and renew in a
	// synchronized storm forever. Zero disables jitter.
	RenewJitter time.Duration
	// Templates, when non-nil, compiles deployments through the shared
	// template cache: subscribers of the same store module share one
	// compiled skeleton and alias its namespace-free action slices
	// instead of each owning a private copy (ROADMAP item 1).
	Templates *pvnc.TemplateCache

	// mu guards the deployment book and cookie counter, and serializes
	// installs/teardowns against the (not goroutine-safe) runtime —
	// cmd/pvnd dispatches concurrent client connections straight into
	// these methods.
	mu          sync.Mutex
	nextCookie  uint64
	deployments map[string]*Deployment // by device ID
}

// New builds a deployment server wired to a switch and runtime.
func New(provider *discovery.ProviderPolicy, sw *openflow.Switch, rt *middlebox.Runtime, now func() time.Duration) *Server {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Server{
		Provider:     provider,
		Switch:       sw,
		Runtime:      rt,
		Now:          now,
		UpstreamPort: 1,
		deployments:  make(map[string]*Deployment),
	}
}

// HandleDM answers discovery on behalf of the provider policy.
func (s *Server) HandleDM(dm *discovery.DM) *discovery.Offer {
	return s.Provider.HandleDM(dm, s.Now())
}

// Deployment returns the active deployment for a device, or nil.
func (s *Server) Deployment(deviceID string) *Deployment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deployments[deviceID]
}

// HandleDeploy installs a PVNC. Every failure path is a NACK; the
// installation itself is all-or-nothing (partial installs are rolled
// back). A retransmission of an already-installed request (same device,
// same offer) is re-ACKed with the original cookie so devices on lossy
// links can retry safely.
func (s *Server) HandleDeploy(req *discovery.DeployRequest) *discovery.DeployResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	nack := func(format string, args ...interface{}) *discovery.DeployResponse {
		return &discovery.DeployResponse{OK: false, Reason: fmt.Sprintf(format, args...)}
	}
	// prior is the device's existing deployment, if any. A request for
	// the PVNC already installed is re-ACKed idempotently (checked below
	// once the source is parsed); a genuinely different config supersedes
	// the stale deployment — torn down only once the new request has
	// fully validated and compiled, so a bad request never destroys a
	// working deployment.
	prior := s.deployments[req.DeviceID]
	if prior != nil && req.OfferID != "" && prior.OfferID == req.OfferID {
		// Duplicate of the request that installed this deployment
		// (the ACK was lost): idempotent re-ACK.
		return &discovery.DeployResponse{OK: true, Cookie: prior.Cookie, DHCPRefresh: true}
	}
	// Deploys quoting an offer must quote one this provider issued and
	// that is still live; deploys with no offer ID are walk-ins priced
	// at the current book (used by tests and bulk experiments).
	if req.OfferID != "" {
		switch s.Provider.OfferStatus(req.OfferID, s.Now()) {
		case discovery.OfferUnknown:
			return nack("unknown offer %q (never issued, or provider restarted)", req.OfferID)
		case discovery.OfferExpired:
			return nack("offer %q expired", req.OfferID)
		}
	}
	source := req.PVNCSource
	if source == "" && req.PVNCURI != "" {
		if s.FetchPVNC == nil {
			return nack("URI-based PVNCs not supported here")
		}
		fetched, err := s.FetchPVNC(req.PVNCURI)
		if err != nil {
			return nack("fetch %s: %v", req.PVNCURI, err)
		}
		source = fetched
	}
	cfg, err := pvnc.Parse(source)
	if err != nil {
		return nack("unparseable PVNC: %v", err)
	}
	if req.PVNCHash != "" && cfg.Hash() != req.PVNCHash {
		// The fetched object does not match what the device asked for:
		// either the store or the path tampered with it.
		return nack("PVNC hash mismatch: got %.16s..., requested %.16s...", cfg.Hash(), req.PVNCHash)
	}
	if errs := cfg.Validate(); len(errs) > 0 {
		return nack("invalid PVNC: %v", errs[0])
	}
	if prior != nil && cfg.Hash() == prior.Hash {
		// The device's deploy installed but every ACK was lost, so it
		// abandoned the offer, re-discovered and is asking for the PVNC
		// already running (under a new offer ID, or as a walk-in).
		// Re-ACK rather than locking it out until the lease lapses —
		// with LeaseTTL=0 that lockout would be permanent.
		return &discovery.DeployResponse{OK: true, Cookie: prior.Cookie, DHCPRefresh: true}
	}
	// Price check: the device must cover the provider's price for every
	// module it deploys.
	var owed int64
	for _, m := range cfg.Middleboxes {
		price, ok := s.Provider.Supported[m.Type]
		if !ok {
			return nack("middlebox type %q not supported here", m.Type)
		}
		owed += price
	}
	if req.Payment < owed {
		return nack("payment %d below price %d", req.Payment, owed)
	}

	s.nextCookie++
	cookie := s.nextCookie
	// Namespace chains per deployment so the same owner can deploy the
	// same PVNC from several devices without collisions (§3.1).
	namespace := cfg.Owner + "." + req.DeviceID
	copt := pvnc.CompileOptions{
		Cookie:         cookie,
		DevicePort:     s.DevicePort,
		UpstreamPort:   s.UpstreamPort,
		ChainNamespace: namespace,
	}
	var compiled *pvnc.Compiled
	if s.Templates != nil {
		compiled, err = s.Templates.CompileShared(cfg, copt)
	} else {
		compiled, err = pvnc.Compile(cfg, copt)
	}
	if err != nil {
		return nack("compile: %v", err)
	}

	dep := &Deployment{
		DeviceID:    req.DeviceID,
		Owner:       cfg.Owner,
		Cookie:      cookie,
		OfferID:     req.OfferID,
		Hash:        compiled.Hash,
		PaidMicro:   req.Payment,
		InstalledAt: s.Now(),
	}
	if s.LeaseTTL > 0 {
		dep.LeaseExpires = s.Now() + s.LeaseTTL + s.leaseJitter(req.DeviceID)
	}

	// The new request is valid and compiled: retire the deployment it
	// supersedes before installing.
	if prior != nil {
		s.teardownLocked(req.DeviceID)
	}

	// Instantiate middleboxes; on any failure, roll back what exists.
	names := map[string]string{} // local name -> instance ID
	rollback := func() {
		for _, id := range dep.InstanceIDs {
			s.Runtime.Terminate(id)
		}
		for _, ch := range dep.Chains {
			owner, name, _ := cutChain(ch)
			s.Runtime.RemoveChain(owner, name)
		}
		for _, m := range dep.Meters {
			s.Switch.RemoveMeter(m)
		}
		s.Switch.Table.RemoveByCookie(cookie)
		if s.ExtraRules != nil {
			s.ExtraRules.RemoveByCookie(cookie)
		}
	}
	for _, plan := range compiled.Middleboxes {
		inst, err := s.Runtime.Instantiate(cfg.Owner, plan.Type, plan.Config)
		if err != nil {
			rollback()
			return nack("instantiate %s: %v", plan.LocalName, err)
		}
		names[plan.LocalName] = inst.ID
		dep.InstanceIDs = append(dep.InstanceIDs, inst.ID)
		if inst.ReadyAt > dep.ReadyAt {
			dep.ReadyAt = inst.ReadyAt
		}
	}
	for _, ch := range compiled.Chains {
		ids := make([]string, len(ch.Members))
		for i, m := range ch.Members {
			ids[i] = names[m]
		}
		if _, err := s.Runtime.BuildChainIn(cfg.Owner, namespace, ch.Name, ids, cfg.CoveredAddrs()); err != nil {
			rollback()
			return nack("chain %s: %v", ch.Name, err)
		}
		dep.Chains = append(dep.Chains, namespace+"/"+ch.Name)
	}
	for _, m := range compiled.Meters {
		s.Switch.AddMeter(m.ID, &openflow.Meter{RateBps: m.RateBps})
		dep.Meters = append(dep.Meters, m.ID)
	}
	now := s.Now()
	for i := range compiled.FlowMods {
		compiled.FlowMods[i].Apply(s.Switch.Table, now)
		if s.ExtraRules != nil {
			compiled.FlowMods[i].Apply(s.ExtraRules, now)
		}
	}

	s.deployments[req.DeviceID] = dep
	return &discovery.DeployResponse{OK: true, Cookie: cookie, DHCPRefresh: true}
}

func cutChain(s string) (owner, name string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// DeviceIDs returns the IDs of every device with a live deployment,
// sorted — the stable enumeration the scenario harness walks when it
// reconciles the deployment book against the switch and runtime.
func (s *Server) DeviceIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.deployments))
	for id := range s.deployments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// BoxState is one exported middlebox snapshot, keyed by spec type so it
// can be matched to the corresponding instance in another deployment.
type BoxState struct {
	Type string
	Data []byte
}

// ExportBoxStates snapshots every stateful middlebox in a device's
// deployment, in deployment order. It runs under the server lock: the
// runtime is not goroutine-safe, and a roam may export state while a
// sweep or crash-reclaim is tearing instances down.
func (s *Server) ExportBoxStates(deviceID string) []BoxState {
	s.mu.Lock()
	defer s.mu.Unlock()
	dep := s.deployments[deviceID]
	if dep == nil {
		return nil
	}
	var out []BoxState
	for _, id := range dep.InstanceIDs {
		inst := s.Runtime.Instance(id)
		if inst == nil {
			continue
		}
		data, ok, err := s.Runtime.ExportState(id)
		if err != nil || !ok {
			continue
		}
		out = append(out, BoxState{Type: inst.Spec.Type, Data: data})
	}
	return out
}

// ImportBoxStates merges exported snapshots into a device's deployment,
// matching by spec type in deployment order, under the server lock. It
// returns how many instances received state.
func (s *Server) ImportBoxStates(deviceID string, states []BoxState) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dep := s.deployments[deviceID]
	if dep == nil || len(states) == 0 {
		return 0
	}
	used := make([]bool, len(dep.InstanceIDs))
	n := 0
	for _, st := range states {
		for i, id := range dep.InstanceIDs {
			if used[i] {
				continue
			}
			inst := s.Runtime.Instance(id)
			if inst == nil || inst.Spec.Type != st.Type {
				continue
			}
			used[i] = true
			if err := s.Runtime.ImportState(id, st.Data); err == nil {
				n++
			}
			break
		}
	}
	return n
}

// Usage reports traffic counters for a device's deployment.
func (s *Server) Usage(deviceID string) (packets, bytes int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dep := s.deployments[deviceID]
	if dep == nil {
		return 0, 0, false
	}
	p, b := s.Switch.Table.StatsByCookie(dep.Cookie)
	return p, b, true
}

// Teardown removes a deployment: flow rules, chains, instances, meters.
// It returns the final usage counters for billing.
func (s *Server) Teardown(deviceID string) (packets, bytes int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.teardownLocked(deviceID)
}

func (s *Server) teardownLocked(deviceID string) (packets, bytes int64, err error) {
	dep := s.deployments[deviceID]
	if dep == nil {
		return 0, 0, fmt.Errorf("deployserver: no deployment for %q", deviceID)
	}
	packets, bytes = s.Switch.Table.StatsByCookie(dep.Cookie)
	s.Switch.Table.RemoveByCookie(dep.Cookie)
	if s.ExtraRules != nil {
		s.ExtraRules.RemoveByCookie(dep.Cookie)
	}
	for _, ch := range dep.Chains {
		owner, name, _ := cutChain(ch)
		s.Runtime.RemoveChain(owner, name)
	}
	for _, id := range dep.InstanceIDs {
		s.Runtime.Terminate(id)
	}
	for _, m := range dep.Meters {
		s.Switch.RemoveMeter(m)
	}
	delete(s.deployments, deviceID)
	return packets, bytes, nil
}

// Renew extends a deployment's lease by the server's LeaseTTL and
// returns the new expiry. ok is false when the device has no deployment
// (e.g. its lease already lapsed — the device must redeploy). With no
// LeaseTTL configured the call succeeds and the lease stays infinite.
func (s *Server) Renew(deviceID string) (leaseExpires time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dep := s.deployments[deviceID]
	if dep == nil {
		return 0, false
	}
	if s.LeaseTTL > 0 {
		dep.LeaseExpires = s.Now() + s.LeaseTTL + s.leaseJitter(deviceID)
	}
	return dep.LeaseExpires, true
}

// leaseJitter returns the device's stable expiry offset in
// [0, RenewJitter). An FNV-1a hash of the device ID keeps the offset
// deterministic across runs and restarts without consuming an RNG
// stream, and spreads a cohort of simultaneously-deployed subscribers
// across the whole jitter window so their renewals never synchronize.
func (s *Server) leaseJitter(deviceID string) time.Duration {
	if s.RenewJitter <= 0 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(deviceID); i++ {
		h ^= uint64(deviceID[i])
		h *= prime64
	}
	return time.Duration(h % uint64(s.RenewJitter))
}

// SweptLease records one lease-expiry teardown with the deployment's
// final usage counters — what the device forfeits when it lets a lease
// lapse (billing for swept traffic happens out of band, if at all; the
// scenario harness uses these to keep its byte accounting exact).
type SweptLease struct {
	DeviceID       string
	Cookie         uint64
	Packets, Bytes int64
}

// SweepExpired tears down every deployment whose lease has lapsed and
// returns the affected device IDs, sorted. cmd/pvnd runs this
// periodically; simulations call it from scheduled events.
func (s *Server) SweepExpired() []string {
	swept := s.SweepExpiredDetail()
	ids := make([]string, len(swept))
	for i, sl := range swept {
		ids[i] = sl.DeviceID
	}
	return ids
}

// SweepExpiredDetail is SweepExpired reporting each lapsed lease's
// final usage, in device-ID order (deterministic across runs).
func (s *Server) SweepExpiredDetail() []SweptLease {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.Now()
	var expired []string
	for id, dep := range s.deployments {
		if dep.LeaseExpires > 0 && now >= dep.LeaseExpires {
			expired = append(expired, id)
		}
	}
	sort.Strings(expired)
	swept := make([]SweptLease, 0, len(expired))
	for _, id := range expired {
		cookie := s.deployments[id].Cookie
		packets, bytes, _ := s.teardownLocked(id)
		swept = append(swept, SweptLease{DeviceID: id, Cookie: cookie, Packets: packets, Bytes: bytes})
	}
	return swept
}

// Restart simulates the deploy-server process crashing and coming back:
// all in-memory control state (deployment book, offer book) is lost,
// while the switch rules, meters and runtime instances it installed
// keep running — leaked state a fresh process no longer tracks.
// ReclaimOrphans is the recovery path that mops those up.
func (s *Server) Restart() {
	s.mu.Lock()
	s.deployments = make(map[string]*Deployment)
	s.mu.Unlock()
	s.Provider.ForgetOffers()
}

// ReclaimOrphans removes every switch rule, meter, runtime chain and
// instance that no tracked deployment owns — the state a crash leaked.
// It assumes the switch and runtime are exclusively this server's (true
// for pvnd and the experiment harnesses) and reports what it reclaimed.
func (s *Server) ReclaimOrphans() (rules, meters, chains, instances int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cookies := map[uint64]bool{}
	keepMeter := map[string]bool{}
	keepChain := map[string]bool{}
	keepInst := map[string]bool{}
	for _, dep := range s.deployments {
		cookies[dep.Cookie] = true
		for _, m := range dep.Meters {
			keepMeter[m] = true
		}
		for _, ch := range dep.Chains {
			keepChain[ch] = true
		}
		for _, id := range dep.InstanceIDs {
			keepInst[id] = true
		}
	}
	for _, e := range s.Switch.Table.Entries() {
		if !cookies[e.Cookie] {
			rules += s.Switch.Table.RemoveByCookie(e.Cookie)
			if s.ExtraRules != nil {
				s.ExtraRules.RemoveByCookie(e.Cookie)
			}
		}
	}
	for id := range s.Switch.Meters {
		if !keepMeter[id] {
			s.Switch.RemoveMeter(id)
			meters++
		}
	}
	for _, key := range s.Runtime.ChainKeys() {
		if !keepChain[key] {
			owner, name, _ := cutChain(key)
			s.Runtime.RemoveChain(owner, name)
			chains++
		}
	}
	for _, id := range s.Runtime.InstanceIDs() {
		if !keepInst[id] {
			s.Runtime.Terminate(id)
			instances++
		}
	}
	return rules, meters, chains, instances
}

// Manifest describes what is actually installed for a device — the input
// to attestation (§3.1 "Auditor"). An honest server reports reality; a
// dishonest one can lie, which is exactly what the auditor's checks are
// for.
type Manifest struct {
	DeviceID string   `json:"device_id"`
	Owner    string   `json:"owner"`
	PVNCHash string   `json:"pvnc_hash"`
	Chains   []string `json:"chains"`
	// InstanceTypes lists the middlebox types actually running.
	InstanceTypes []string `json:"instance_types"`
	Cookie        uint64   `json:"cookie"`
	RuleCount     int      `json:"rule_count"`
}

// BuildManifest reports the installed state for a device, or nil when no
// deployment exists.
func (s *Server) BuildManifest(deviceID string) *Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	dep := s.deployments[deviceID]
	if dep == nil {
		return nil
	}
	m := &Manifest{
		DeviceID: deviceID,
		Owner:    dep.Owner,
		PVNCHash: dep.Hash,
		Chains:   append([]string(nil), dep.Chains...),
		Cookie:   dep.Cookie,
	}
	for _, id := range dep.InstanceIDs {
		if inst := s.Runtime.Instance(id); inst != nil {
			m.InstanceTypes = append(m.InstanceTypes, inst.Spec.Type)
		}
	}
	for _, e := range s.Switch.Table.Entries() {
		if e.Cookie == dep.Cookie {
			m.RuleCount++
		}
	}
	return m
}
