package deployserver

import (
	"strings"
	"testing"
	"time"

	"pvn/internal/discovery"
	"pvn/internal/middlebox"
	"pvn/internal/middlebox/mbx"
	"pvn/internal/openflow"
	"pvn/internal/packet"
	"pvn/internal/pki"
	"pvn/internal/pvnc"
)

const cfgSrc = `
pvnc alice-cfg
owner alice
device 10.0.0.5
middlebox tlsv tls-verify
middlebox pii pii-detect mode=block secrets=hunter2
chain secure tlsv pii
policy 100 match proto=tcp dport=80 via=secure action=forward
policy 0 match any action=forward
`

// testServer builds a server with real switch, runtime and registry.
func testServer(t *testing.T, now *time.Duration) *Server {
	t.Helper()
	clock := func() time.Duration { return *now }
	rootKey, _ := pki.GenerateKey(pki.NewDeterministicRand(1))
	root := pki.NewRootCA("Root", rootKey, 0, 1_000_000)
	rt := middlebox.NewRuntime(clock)
	mbx.RegisterBuiltins(rt, mbx.Deps{TrustStore: pki.NewTrustStore(root.Cert), NowSeconds: func() int64 { return 0 }})
	sw := openflow.NewSwitch("edge", clock)
	sw.Chains = rt
	provider := &discovery.ProviderPolicy{
		Provider:     "isp1",
		DeployServer: "pvn-host",
		Standards:    []string{discovery.StandardMatchAction},
		Supported:    map[string]int64{"tls-verify": 100, "pii-detect": 200, "transcoder": 300},
	}
	return New(provider, sw, rt, clock)
}

func deployReq(t *testing.T, payment int64) *discovery.DeployRequest {
	t.Helper()
	cfg, err := pvnc.Parse(cfgSrc)
	if err != nil {
		t.Fatal(err)
	}
	// No OfferID: a walk-in deploy priced at the current book. Deploys
	// that do quote an offer must quote one the provider actually issued
	// (see lifecycle_test.go).
	return &discovery.DeployRequest{DeviceID: "dev1", PVNCSource: cfg.Source(), Payment: payment}
}

func TestDeployHappyPath(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	resp := s.HandleDeploy(deployReq(t, 300))
	if !resp.OK {
		t.Fatalf("NACK: %s", resp.Reason)
	}
	if resp.Cookie == 0 || !resp.DHCPRefresh {
		t.Fatalf("response %+v", resp)
	}
	dep := s.Deployment("dev1")
	if dep == nil || len(dep.InstanceIDs) != 2 || len(dep.Chains) != 1 {
		t.Fatalf("deployment %+v", dep)
	}
	if dep.ReadyAt != middlebox.DefaultBootDelay {
		t.Fatalf("ReadyAt %v", dep.ReadyAt)
	}
	if s.Switch.Table.Len() != 4 { // 2 directional + 2 scoped catch-all
		t.Fatalf("table has %d rules (want 4)", s.Switch.Table.Len())
	}
}

func TestDeployedDataPlaneEnforcesPolicy(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	if resp := s.HandleDeploy(deployReq(t, 300)); !resp.OK {
		t.Fatalf("NACK: %s", resp.Reason)
	}
	now = 50 * time.Millisecond // after boot

	dev := packet.MustParseIPv4("10.0.0.5")
	web := packet.MustParseIPv4("93.184.216.34")
	mkHTTP := func(body string) []byte {
		h := &packet.HTTP{IsRequest: true, Method: "POST", Path: "/login", Body: []byte(body)}
		h.SetHeader("Host", "site.example")
		msg, _ := packet.SerializeToBytes(h)
		ip := &packet.IPv4{Src: dev, Dst: web, Protocol: packet.IPProtoTCP}
		tcp := &packet.TCP{SrcPort: 40000, DstPort: 80}
		tcp.SetNetworkLayerForChecksum(ip)
		data, _ := packet.SerializeToBytes(ip, tcp, packet.Payload(msg))
		return data
	}

	// A leaking request must be dropped by the PII chain.
	d := s.Switch.Process(mkHTTP("password=hunter2"), 0)
	if d.Verdict != openflow.VerdictDrop {
		t.Fatalf("leaking packet verdict %v", d.Verdict)
	}
	// Clean request flows upstream with middlebox delay applied.
	d = s.Switch.Process(mkHTTP("clean"), 0)
	if d.Verdict != openflow.VerdictOutput || d.Port != 1 {
		t.Fatalf("clean packet %+v", d)
	}
	if d.Delay < 2*middlebox.DefaultPerPacketDelay {
		t.Fatalf("chain delay %v too small", d.Delay)
	}
	alerts := s.Runtime.Alerts("alice")
	if len(alerts) == 0 {
		t.Fatal("no PII alert recorded")
	}
}

func TestDeployNACKs(t *testing.T) {
	now := time.Duration(0)
	cases := []struct {
		name    string
		mutate  func(r *discovery.DeployRequest)
		wantSub string
	}{
		{"garbage pvnc", func(r *discovery.DeployRequest) { r.PVNCSource = "junk directive" }, "unparseable"},
		{"invalid pvnc", func(r *discovery.DeployRequest) {
			r.PVNCSource = "pvnc x\nowner a\ndevice 1.2.3.4\npolicy 10 match dport=80 action=forward"
		}, "invalid"},
		{"unsupported type", func(r *discovery.DeployRequest) {
			r.PVNCSource = strings.Replace(r.PVNCSource, "tls-verify", "quantum-box", 1)
		}, "not supported"},
		{"underpayment", func(r *discovery.DeployRequest) { r.Payment = 10 }, "below price"},
	}
	for _, c := range cases {
		s := testServer(t, &now)
		req := deployReq(t, 300)
		c.mutate(req)
		resp := s.HandleDeploy(req)
		if resp.OK {
			t.Errorf("%s: deployed", c.name)
			continue
		}
		if !strings.Contains(resp.Reason, c.wantSub) {
			t.Errorf("%s: reason %q missing %q", c.name, resp.Reason, c.wantSub)
		}
		if s.Switch.Table.Len() != 0 || len(s.Runtime.InstancesOf("alice")) != 0 {
			t.Errorf("%s: partial install left behind", c.name)
		}
	}
}

// TestDoubleDeployIdempotent: a walk-in redeploy of the PVNC already
// installed is re-ACKed with the original cookie and installs nothing
// twice (a second deployment for the same device never coexists with
// the first).
func TestDoubleDeployIdempotent(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	first := s.HandleDeploy(deployReq(t, 300))
	if !first.OK {
		t.Fatal(first.Reason)
	}
	rules := s.Switch.Table.Len()
	second := s.HandleDeploy(deployReq(t, 300))
	if !second.OK || second.Cookie != first.Cookie {
		t.Fatalf("second deploy: %+v (want re-ACK of cookie %d)", second, first.Cookie)
	}
	if s.Switch.Table.Len() != rules {
		t.Fatalf("double deploy grew the table: %d -> %d", rules, s.Switch.Table.Len())
	}
}

func TestRollbackOnMemoryExhaustion(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	s.Runtime.MemoryCapBytes = middlebox.DefaultMemoryBytes // room for 1 of 2
	resp := s.HandleDeploy(deployReq(t, 300))
	if resp.OK {
		t.Fatal("deploy succeeded beyond memory cap")
	}
	if s.Runtime.MemoryUsed() != 0 {
		t.Fatalf("leaked %d bytes after rollback", s.Runtime.MemoryUsed())
	}
	if s.Switch.Table.Len() != 0 {
		t.Fatal("leaked flow rules after rollback")
	}
}

func TestUsageAndTeardown(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	if resp := s.HandleDeploy(deployReq(t, 300)); !resp.OK {
		t.Fatal(resp.Reason)
	}
	now = 50 * time.Millisecond

	dev := packet.MustParseIPv4("10.0.0.5")
	ip := &packet.IPv4{Src: dev, Dst: packet.MustParseIPv4("1.1.1.1"), Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: 4000, DstPort: 9999}
	tcp.SetNetworkLayerForChecksum(ip)
	data, _ := packet.SerializeToBytes(ip, tcp, packet.Payload("x"))
	for i := 0; i < 5; i++ {
		s.Switch.Process(data, 0)
	}
	pkts, bytes, ok := s.Usage("dev1")
	if !ok || pkts != 5 || bytes != int64(5*len(data)) {
		t.Fatalf("usage %d/%d ok=%v", pkts, bytes, ok)
	}

	pkts, _, err := s.Teardown("dev1")
	if err != nil || pkts != 5 {
		t.Fatalf("teardown: %d %v", pkts, err)
	}
	if s.Switch.Table.Len() != 0 {
		t.Fatal("rules survived teardown")
	}
	if len(s.Runtime.InstancesOf("alice")) != 0 {
		t.Fatal("instances survived teardown")
	}
	if _, _, err := s.Teardown("dev1"); err == nil {
		t.Fatal("double teardown succeeded")
	}
	// Redeploy after teardown works.
	if resp := s.HandleDeploy(deployReq(t, 300)); !resp.OK {
		t.Fatalf("redeploy: %s", resp.Reason)
	}
}

func TestManifestReflectsReality(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	if resp := s.HandleDeploy(deployReq(t, 300)); !resp.OK {
		t.Fatal(resp.Reason)
	}
	m := s.BuildManifest("dev1")
	if m == nil {
		t.Fatal("no manifest")
	}
	cfg, _ := pvnc.Parse(cfgSrc)
	if m.PVNCHash != cfg.Hash() {
		t.Fatal("manifest hash mismatch")
	}
	if len(m.InstanceTypes) != 2 || m.RuleCount != 4 || len(m.Chains) != 1 {
		t.Fatalf("manifest %+v", m)
	}
	if s.BuildManifest("ghost") != nil {
		t.Fatal("manifest for unknown device")
	}
}

func TestHandleDMDelegates(t *testing.T) {
	now := time.Duration(0)
	s := testServer(t, &now)
	cfg, _ := pvnc.Parse(cfgSrc)
	n := discovery.NewNegotiator("dev1", cfg, 1000, discovery.StrategyStrict)
	offer := s.HandleDM(n.MakeDM())
	if offer == nil || offer.Provider != "isp1" {
		t.Fatalf("offer %+v", offer)
	}
}
