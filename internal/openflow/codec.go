package openflow

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// MsgType identifies a controller-channel message.
type MsgType uint8

// Controller-channel message types.
const (
	MsgHello MsgType = iota + 1
	MsgFlowMod
	MsgPacketIn
	MsgPacketOut
	MsgFlowExpired
	MsgStatsRequest
	MsgStatsReply
	MsgError
)

// maxFrame bounds a frame to keep a malicious peer from forcing huge
// allocations.
const maxFrame = 1 << 20

// Hello opens a controller channel.
type Hello struct {
	SwitchID string `json:"switch_id"`
	Version  int    `json:"version"`
}

// FlowModCommand selects FlowMod behaviour.
type FlowModCommand string

// FlowMod commands.
const (
	FlowAdd          FlowModCommand = "add"
	FlowDeleteCookie FlowModCommand = "delete-cookie"
)

// FlowMod installs or removes flow entries.
type FlowMod struct {
	Command     FlowModCommand `json:"command"`
	Priority    int            `json:"priority,omitempty"`
	Match       Match          `json:"match,omitempty"`
	Actions     []Action       `json:"actions,omitempty"`
	Cookie      uint64         `json:"cookie,omitempty"`
	IdleTimeout time.Duration  `json:"idle_timeout,omitempty"`
	HardTimeout time.Duration  `json:"hard_timeout,omitempty"`
}

// Apply executes the mod against a table at the given simulated time. It
// returns how many entries were affected. Any RuleTable works: the
// legacy FlowTable or the sharded dataplane table.
func (fm *FlowMod) Apply(t RuleTable, now time.Duration) int {
	switch fm.Command {
	case FlowAdd:
		t.Install(&FlowEntry{
			Priority:    fm.Priority,
			Match:       fm.Match,
			Actions:     fm.Actions,
			Cookie:      fm.Cookie,
			IdleTimeout: fm.IdleTimeout,
			HardTimeout: fm.HardTimeout,
		}, now)
		return 1
	case FlowDeleteCookie:
		return t.RemoveByCookie(fm.Cookie)
	}
	return 0
}

// PacketIn carries a table-missed packet to the controller.
type PacketIn struct {
	SwitchID string `json:"switch_id"`
	InPort   uint16 `json:"in_port"`
	Data     []byte `json:"data"`
}

// PacketOut carries a controller-generated packet to a switch port.
type PacketOut struct {
	Port uint16 `json:"port"`
	Data []byte `json:"data"`
}

// FlowExpired notifies the controller of an evicted entry.
type FlowExpired struct {
	Cookie  uint64 `json:"cookie"`
	Packets int64  `json:"packets"`
	Bytes   int64  `json:"bytes"`
}

// StatsRequest asks for per-cookie counters.
type StatsRequest struct {
	Cookie uint64 `json:"cookie"`
}

// StatsReply answers a StatsRequest.
type StatsReply struct {
	Cookie  uint64 `json:"cookie"`
	Packets int64  `json:"packets"`
	Bytes   int64  `json:"bytes"`
}

// ErrorMsg reports a protocol or application error.
type ErrorMsg struct {
	Code   int    `json:"code"`
	Reason string `json:"reason"`
}

// WriteMessage frames and writes one message: 4-byte big-endian length
// covering the type byte plus JSON body.
func WriteMessage(w io.Writer, t MsgType, body interface{}) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("openflow: encode %d: %w", t, err)
	}
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("openflow: frame too large (%d bytes)", len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadMessage reads one framed message and returns its type and raw JSON
// body. Decode the body with DecodeBody.
func ReadMessage(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("openflow: bad frame length %d", n)
	}
	body := make([]byte, n-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return MsgType(hdr[4]), body, nil
}

// DecodeBody unmarshals a message body into out.
func DecodeBody(body []byte, out interface{}) error {
	return json.Unmarshal(body, out)
}
