package openflow

import (
	"fmt"

	"pvn/internal/packet"
)

// ActionType discriminates Action variants for the wire codec.
type ActionType uint8

// Action kinds.
const (
	ActionTypeOutput ActionType = iota + 1
	ActionTypeDrop
	ActionTypeController
	ActionTypeMiddlebox
	ActionTypeMeter
	ActionTypeSetDst
	ActionTypeTunnel
)

// Action is one step in a flow entry's action list. Actions execute in
// order; Output/Drop/Controller/Tunnel terminate processing.
type Action struct {
	Type ActionType

	// Port for Output.
	Port uint16
	// Chain names the middlebox chain for Middlebox actions.
	Chain string
	// MeterID names the meter for Meter actions.
	MeterID string
	// Dst rewrites the destination address/port for SetDst actions
	// (port 0 leaves the transport port unchanged).
	Dst     packet.IPv4Address
	DstPort uint16
	// Tunnel names the tunnel endpoint for Tunnel actions.
	Tunnel string
}

// Terminal reports whether the action ends pipeline processing.
func (a Action) Terminal() bool {
	switch a.Type {
	case ActionTypeOutput, ActionTypeDrop, ActionTypeController, ActionTypeTunnel:
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a.Type {
	case ActionTypeOutput:
		return fmt.Sprintf("output:%d", a.Port)
	case ActionTypeDrop:
		return "drop"
	case ActionTypeController:
		return "controller"
	case ActionTypeMiddlebox:
		return "mbx:" + a.Chain
	case ActionTypeMeter:
		return "meter:" + a.MeterID
	case ActionTypeSetDst:
		if a.DstPort != 0 {
			return fmt.Sprintf("set-dst:%s:%d", a.Dst, a.DstPort)
		}
		return "set-dst:" + a.Dst.String()
	case ActionTypeTunnel:
		return "tunnel:" + a.Tunnel
	}
	return fmt.Sprintf("action(%d)", a.Type)
}

// Convenience constructors keep rule-building code readable.

// Output forwards out the given switch port.
func Output(port uint16) Action { return Action{Type: ActionTypeOutput, Port: port} }

// Drop discards the packet.
func Drop() Action { return Action{Type: ActionTypeDrop} }

// ToController punts the packet to the controller (packet-in).
func ToController() Action { return Action{Type: ActionTypeController} }

// ToMiddlebox sends the packet through the named middlebox chain before
// processing continues with the next action.
func ToMiddlebox(chain string) Action { return Action{Type: ActionTypeMiddlebox, Chain: chain} }

// Metered applies the named rate meter (shaping/policing).
func Metered(id string) Action { return Action{Type: ActionTypeMeter, MeterID: id} }

// SetDst rewrites the destination IP (and port when nonzero).
func SetDst(addr packet.IPv4Address, port uint16) Action {
	return Action{Type: ActionTypeSetDst, Dst: addr, DstPort: port}
}

// Tunnel encapsulates the packet toward the named tunnel endpoint.
func Tunnel(name string) Action { return Action{Type: ActionTypeTunnel, Tunnel: name} }
