package openflow

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlowEntry is one rule: if Match, run Actions. Higher Priority wins;
// among equal priorities the earliest-installed entry wins
// (deterministic, like OpenFlow's undefined-order made concrete).
type FlowEntry struct {
	Priority int
	Match    Match
	Actions  []Action
	// Cookie is an opaque owner tag; the PVN deployment server uses it
	// to attribute rules to user deployments and tear them down.
	Cookie uint64
	// IdleTimeout evicts the entry when unused this long; 0 = never.
	IdleTimeout time.Duration
	// HardTimeout evicts the entry this long after install; 0 = never.
	HardTimeout time.Duration

	// Counters.
	Packets int64
	Bytes   int64

	installedAt time.Duration
	lastUsed    time.Duration
	seq         uint64
}

// String implements fmt.Stringer.
func (e *FlowEntry) String() string {
	return fmt.Sprintf("prio=%d %s -> %v (pkts=%d)", e.Priority, e.Match.String(), e.Actions, atomic.LoadInt64(&e.Packets))
}

// RuleTable is the table surface flow mods and the deployment pipeline
// drive. Both the legacy FlowTable and the dataplane's ShardedTable
// implement it, so control-plane code is agnostic to which data plane
// is running.
type RuleTable interface {
	Install(e *FlowEntry, now time.Duration)
	RemoveByCookie(cookie uint64) int
	StatsByCookie(cookie uint64) (packets, bytes int64)
	Len() int
}

// FlowTable is a priority-ordered rule set. It is safe for concurrent
// use: lookups from many dataplane workers proceed under a shared read
// lock with atomic counter updates, while the (rare) control-plane
// writes (Install/RemoveByCookie/Expire, possibly arriving over a
// controller channel on another goroutine) take the write lock — the
// boundary a hardware table's driver would own.
type FlowTable struct {
	mu      sync.RWMutex
	entries []*FlowEntry
	nextSeq uint64
	// MissActions run on table miss. Default: punt to controller. Set
	// before the table is shared.
	MissActions []Action
}

// NewFlowTable returns an empty table whose miss behaviour is
// ToController, the OpenFlow default PVN relies on.
func NewFlowTable() *FlowTable {
	return &FlowTable{MissActions: []Action{ToController()}}
}

// Len returns the number of installed entries.
func (t *FlowTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Entries returns the entries in match order (highest priority first).
// The returned entries are live: their counters may keep changing.
func (t *FlowTable) Entries() []*FlowEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*FlowEntry, len(t.entries))
	copy(out, t.entries)
	return out
}

// Install adds an entry at the given simulated time and keeps the table
// sorted by (priority desc, seq asc).
func (t *FlowTable) Install(e *FlowEntry, now time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e.seq = t.nextSeq
	t.nextSeq++
	e.installedAt = now
	atomic.StoreInt64((*int64)(&e.lastUsed), int64(now))
	t.entries = append(t.entries, e)
	sort.SliceStable(t.entries, func(i, j int) bool {
		if t.entries[i].Priority != t.entries[j].Priority {
			return t.entries[i].Priority > t.entries[j].Priority
		}
		return t.entries[i].seq < t.entries[j].seq
	})
}

// Lookup returns the actions for the packet summary and updates counters.
// Misses return the table's MissActions and a nil entry. Concurrent
// lookups share a read lock and bump counters atomically, so dataplane
// workers never serialize against each other — only against rule writes.
func (t *FlowTable) Lookup(f PacketFields, size int, now time.Duration) ([]Action, *FlowEntry) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, e := range t.entries {
		if e.Match.Matches(f) {
			atomic.AddInt64(&e.Packets, 1)
			atomic.AddInt64(&e.Bytes, int64(size))
			atomic.StoreInt64((*int64)(&e.lastUsed), int64(now))
			return e.Actions, e
		}
	}
	return t.MissActions, nil
}

// Expire removes entries whose idle or hard timeout has passed and
// returns them (so the switch can notify the controller).
func (t *FlowTable) Expire(now time.Duration) []*FlowEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var expired []*FlowEntry
	kept := t.entries[:0]
	for _, e := range t.entries {
		dead := false
		if e.HardTimeout > 0 && now-e.installedAt >= e.HardTimeout {
			dead = true
		}
		if e.IdleTimeout > 0 && now-time.Duration(atomic.LoadInt64((*int64)(&e.lastUsed))) >= e.IdleTimeout {
			dead = true
		}
		if dead {
			expired = append(expired, e)
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	return expired
}

// RemoveByCookie deletes all entries with the given cookie and returns how
// many were removed. The deployment server uses this for PVN teardown.
func (t *FlowTable) RemoveByCookie(cookie uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if e.Cookie == cookie {
			removed++
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	return removed
}

// StatsByCookie sums packet/byte counters over entries with the cookie,
// the data source for usage-based billing.
func (t *FlowTable) StatsByCookie(cookie uint64) (packets, bytes int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, e := range t.entries {
		if e.Cookie == cookie {
			packets += atomic.LoadInt64(&e.Packets)
			bytes += atomic.LoadInt64(&e.Bytes)
		}
	}
	return packets, bytes
}
