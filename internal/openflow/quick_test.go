package openflow

import (
	"testing"
	"testing/quick"
	"time"

	"pvn/internal/packet"
)

// refPrefixMatch is an independent reference implementation of prefix
// matching for cross-checking.
func refPrefixMatch(addr, want packet.IPv4Address, bits uint8) bool {
	if bits == 0 || bits >= 32 {
		return addr == want
	}
	for i := uint8(0); i < bits; i++ {
		byteIdx, bitIdx := i/8, 7-i%8
		if (addr[byteIdx]>>bitIdx)&1 != (want[byteIdx]>>bitIdx)&1 {
			return false
		}
	}
	return true
}

// TestQuickPrefixMatchAgainstReference: the fast mask implementation
// agrees with the bit-by-bit reference on arbitrary inputs.
func TestQuickPrefixMatchAgainstReference(t *testing.T) {
	if err := quick.Check(func(a, w [4]byte, bits uint8) bool {
		bits = bits % 40 // include out-of-range values
		addr, want := packet.IPv4Address(a), packet.IPv4Address(w)
		return prefixMatch(addr, want, bits) == refPrefixMatch(addr, want, bits)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPrefixSelfMatch: every address matches itself at every
// prefix length.
func TestQuickPrefixSelfMatch(t *testing.T) {
	if err := quick.Check(func(a [4]byte, bits uint8) bool {
		addr := packet.IPv4Address(a)
		return prefixMatch(addr, addr, bits%33)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMatchWildcardIsTop: a match with no fields set accepts every
// packet summary.
func TestQuickMatchWildcardIsTop(t *testing.T) {
	m := &Match{}
	if err := quick.Check(func(src, dst [4]byte, proto byte, sp, dp uint16, inPort uint16) bool {
		return m.Matches(PacketFields{
			InPort: inPort, SrcIP: src, DstIP: dst, Proto: proto, SrcPort: sp, DstPort: dp,
		})
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMeterNeverExceedsRate: over any long run of Shape calls, the
// conforming transmission schedule never beats rate + burst.
func TestQuickMeterNeverExceedsRate(t *testing.T) {
	if err := quick.Check(func(seedRate uint16, nPkts uint8) bool {
		rate := 10_000 + float64(seedRate)*100 // 10kbps..6.5Mbps
		burst := 8 << 10
		m := &Meter{RateBps: rate, BurstBytes: burst}
		const pkt = 1000
		n := int(nPkts)%200 + 10
		// Offer everything at t=0; the last packet's release time bounds
		// the schedule.
		var release time.Duration
		for i := 0; i < n; i++ {
			d := m.Shape(0, pkt)
			if d > release {
				release = d
			}
		}
		totalBits := float64(n * pkt * 8)
		// bits sent by time `release` must satisfy
		// totalBits <= burst*8 + rate * release.
		budget := float64(burst*8) + rate*release.Seconds() + 1e-6
		return totalBits <= budget+float64(pkt*8) // one packet of slack (release is start-of-tx)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTableLookupDeterministic: for any set of random rules,
// looking the same packet up twice gives the same entry.
func TestQuickTableLookupDeterministic(t *testing.T) {
	if err := quick.Check(func(prios []uint8, f PacketFields) bool {
		tbl := NewFlowTable()
		for i, p := range prios {
			if i > 20 {
				break
			}
			tbl.Install(&FlowEntry{Priority: int(p), Cookie: uint64(i),
				Actions: []Action{Output(uint16(i))}}, 0)
		}
		a1, e1 := tbl.Lookup(f, 1, 0)
		a2, e2 := tbl.Lookup(f, 1, 0)
		if e1 == nil || e2 == nil {
			return e1 == e2
		}
		return e1.Cookie == e2.Cookie && a1[0].Port == a2[0].Port
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
