package openflow

import "time"

// Meter is a token-bucket rate limiter attached to flow entries via
// Metered actions. It supports the two enforcement styles the paper's
// network-management discussion distinguishes (§2.2): policing (drop when
// over rate, what throttling deployments do) and shaping (delay to
// conform, what "Binge On"-style 1.5 Mbps video throttles do).
type Meter struct {
	// RateBps is the sustained rate in bits per second.
	RateBps float64
	// BurstBytes is the bucket depth. Zero defaults to 64 KiB.
	BurstBytes int

	tokens  float64 // current bucket level in bytes
	last    time.Duration
	started bool

	// Counters.
	Conformed int64
	Exceeded  int64
}

func (m *Meter) refill(now time.Duration) {
	burst := float64(m.BurstBytes)
	if burst == 0 {
		burst = 64 << 10
	}
	if !m.started {
		m.tokens = burst
		m.last = now
		m.started = true
		return
	}
	dt := (now - m.last).Seconds()
	if dt > 0 {
		m.tokens += dt * m.RateBps / 8
		if m.tokens > burst {
			m.tokens = burst
		}
		m.last = now
	}
}

// Police consumes size bytes if tokens allow and reports whether the
// packet conforms; non-conforming packets should be dropped.
func (m *Meter) Police(now time.Duration, size int) bool {
	m.refill(now)
	if m.tokens >= float64(size) {
		m.tokens -= float64(size)
		m.Conformed++
		return true
	}
	m.Exceeded++
	return false
}

// Shape consumes size bytes, going into token debt if necessary, and
// returns how long the packet must be delayed to conform. A zero return
// means transmit immediately.
func (m *Meter) Shape(now time.Duration, size int) time.Duration {
	m.refill(now)
	m.tokens -= float64(size)
	if m.tokens >= 0 {
		m.Conformed++
		return 0
	}
	m.Exceeded++
	// Time to earn back the deficit.
	deficit := -m.tokens
	return time.Duration(deficit * 8 / m.RateBps * float64(time.Second))
}
