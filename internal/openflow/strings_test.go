package openflow

import (
	"strings"
	"testing"

	"pvn/internal/packet"
)

func TestActionStringsAndTerminal(t *testing.T) {
	cases := []struct {
		a        Action
		want     string
		terminal bool
	}{
		{Output(3), "output:3", true},
		{Drop(), "drop", true},
		{ToController(), "controller", true},
		{ToMiddlebox("alice/secure"), "mbx:alice/secure", false},
		{Metered("m1"), "meter:m1", false},
		{SetDst(packet.MustParseIPv4("1.2.3.4"), 0), "set-dst:1.2.3.4", false},
		{SetDst(packet.MustParseIPv4("1.2.3.4"), 99), "set-dst:1.2.3.4:99", false},
		{Tunnel("cloud"), "tunnel:cloud", true},
		{Action{Type: ActionType(200)}, "action(200)", false},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
		if got := c.a.Terminal(); got != c.terminal {
			t.Errorf("%s Terminal() = %v, want %v", c.want, got, c.terminal)
		}
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictDrop: "drop", VerdictOutput: "output",
		VerdictController: "controller", VerdictTunnel: "tunnel",
		Verdict(99): "verdict(99)",
	} {
		if v.String() != want {
			t.Errorf("Verdict(%d).String() = %q", v, v.String())
		}
	}
}

func TestFlowEntryStringAndEntries(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Install(&FlowEntry{Priority: 9, Match: Match{Fields: FieldDstPort, DstPort: 80},
		Actions: []Action{Output(1)}}, 0)
	tbl.Install(&FlowEntry{Priority: 5, Actions: []Action{Drop()}}, 0)
	entries := tbl.Entries()
	if len(entries) != 2 || entries[0].Priority != 9 {
		t.Fatalf("entries %v", entries)
	}
	s := entries[0].String()
	for _, want := range []string{"prio=9", "dport=80", "output:1"} {
		if !strings.Contains(s, want) {
			t.Errorf("entry string %q missing %q", s, want)
		}
	}
	// Mutating the returned slice must not corrupt the table.
	entries[0] = nil
	if tbl.Entries()[0] == nil {
		t.Fatal("Entries returned the live slice")
	}
}

func TestSwitchString(t *testing.T) {
	sw := NewSwitch("s1", nil)
	if s := sw.Table.Entries(); len(s) != 0 {
		t.Fatal("fresh table non-empty")
	}
	if got := VerdictOutput.String(); got == "" {
		t.Fatal("empty verdict string")
	}
}

func TestRewriteDstUDPAndPlainIP(t *testing.T) {
	dst := packet.MustParseIPv4("10.9.9.9")

	// UDP rewrite, port change included.
	ip := &packet.IPv4{Src: packet.MustParseIPv4("10.0.0.1"), Dst: packet.MustParseIPv4("10.0.0.2"), Protocol: packet.IPProtoUDP}
	udp := &packet.UDP{SrcPort: 1000, DstPort: 53}
	udp.SetNetworkLayerForChecksum(ip)
	data, _ := packet.SerializeToBytes(ip, udp, packet.Payload("q"))
	out, err := RewriteDst(data, dst, 5353)
	if err != nil {
		t.Fatal(err)
	}
	p := packet.Decode(out, packet.LayerTypeIPv4)
	if p.IPv4().Dst != dst || p.UDP().DstPort != 5353 {
		t.Fatalf("udp rewrite %s", p)
	}
	if !p.UDP().VerifyChecksum(p.IPv4().LayerPayload()) {
		t.Fatal("udp checksum broken")
	}

	// Plain IP (no transport): address rewritten, payload preserved.
	ip2 := &packet.IPv4{Src: packet.MustParseIPv4("10.0.0.1"), Dst: packet.MustParseIPv4("10.0.0.2"), Protocol: 250}
	data2, _ := packet.SerializeToBytes(ip2, packet.Payload("raw"))
	out2, err := RewriteDst(data2, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2 := packet.Decode(out2, packet.LayerTypeIPv4)
	if p2.IPv4().Dst != dst || string(p2.IPv4().LayerPayload()) != "raw" {
		t.Fatalf("plain rewrite %s", p2)
	}

	// Non-IPv4 input errors.
	if _, err := RewriteDst([]byte("garbage"), dst, 0); err == nil {
		t.Fatal("garbage rewritten")
	}
}

func TestEffBits(t *testing.T) {
	m := &Match{Fields: FieldSrcIP, SrcIP: packet.MustParseIPv4("10.0.0.0"), SrcBits: 8}
	if s := m.String(); !strings.Contains(s, "/8") {
		t.Fatalf("string %q", s)
	}
	m.SrcBits = 0
	if s := m.String(); !strings.Contains(s, "/32") {
		t.Fatalf("string %q", s)
	}
	m.SrcBits = 40
	if s := m.String(); !strings.Contains(s, "/32") {
		t.Fatalf("string %q", s)
	}
}
