package openflow

import (
	"bytes"
	"testing"
	"time"

	"pvn/internal/packet"
)

var (
	clientIP = packet.MustParseIPv4("10.1.0.5")
	videoIP  = packet.MustParseIPv4("203.0.113.9")
	webIP    = packet.MustParseIPv4("198.51.100.7")
)

// tcpPacket builds a raw IPv4/TCP packet.
func tcpPacket(t testing.TB, src, dst packet.IPv4Address, sport, dport uint16, payload string) []byte {
	t.Helper()
	ip := &packet.IPv4{Src: src, Dst: dst, Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: sport, DstPort: dport}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, tcp, packet.Payload(payload))
	if err != nil {
		t.Fatalf("build packet: %v", err)
	}
	return data
}

func TestMatchWildcardAndFields(t *testing.T) {
	data := tcpPacket(t, clientIP, webIP, 4000, 443, "x")
	f := ExtractFields(packet.Decode(data, packet.LayerTypeIPv4), 3)

	if f.SrcIP != clientIP || f.DstIP != webIP || f.SrcPort != 4000 || f.DstPort != 443 || f.Proto != packet.IPProtoTCP || f.InPort != 3 {
		t.Fatalf("extracted %+v", f)
	}

	any := &Match{}
	if !any.Matches(f) {
		t.Fatal("empty match must match everything")
	}
	m := &Match{Fields: FieldDstPort | FieldProto, DstPort: 443, Proto: packet.IPProtoTCP}
	if !m.Matches(f) {
		t.Fatal("dport=443 match failed")
	}
	m.DstPort = 80
	if m.Matches(f) {
		t.Fatal("dport=80 matched a 443 packet")
	}
}

func TestMatchPrefix(t *testing.T) {
	f := PacketFields{DstIP: packet.MustParseIPv4("203.0.113.200")}
	m := &Match{Fields: FieldDstIP, DstIP: packet.MustParseIPv4("203.0.113.0"), DstBits: 24}
	if !m.Matches(f) {
		t.Fatal("/24 prefix failed to match in-prefix address")
	}
	f.DstIP = packet.MustParseIPv4("203.0.114.1")
	if m.Matches(f) {
		t.Fatal("/24 prefix matched out-of-prefix address")
	}
	exact := &Match{Fields: FieldDstIP, DstIP: packet.MustParseIPv4("203.0.113.200")}
	if exact.Matches(f) {
		t.Fatal("exact match (bits=0 => /32) matched different address")
	}
}

func TestMatchInPort(t *testing.T) {
	m := &Match{Fields: FieldInPort, InPort: 2}
	if m.Matches(PacketFields{InPort: 1}) || !m.Matches(PacketFields{InPort: 2}) {
		t.Fatal("in-port matching wrong")
	}
}

func TestTablePriorityOrder(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Install(&FlowEntry{Priority: 10, Actions: []Action{Output(1)}}, 0)
	tbl.Install(&FlowEntry{Priority: 100, Match: Match{Fields: FieldDstPort, DstPort: 443}, Actions: []Action{Drop()}}, 0)

	acts, e := tbl.Lookup(PacketFields{DstPort: 443}, 100, 0)
	if e == nil || acts[0].Type != ActionTypeDrop {
		t.Fatalf("high-priority drop not selected: %v", acts)
	}
	acts, _ = tbl.Lookup(PacketFields{DstPort: 80}, 100, 0)
	if acts[0].Type != ActionTypeOutput {
		t.Fatalf("low-priority catch-all not selected: %v", acts)
	}
}

func TestTableEqualPriorityFIFO(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Install(&FlowEntry{Priority: 5, Actions: []Action{Output(1)}}, 0)
	tbl.Install(&FlowEntry{Priority: 5, Actions: []Action{Output(2)}}, 0)
	acts, _ := tbl.Lookup(PacketFields{}, 1, 0)
	if acts[0].Port != 1 {
		t.Fatal("equal-priority tie must go to the earliest-installed entry")
	}
}

func TestTableMissDefault(t *testing.T) {
	tbl := NewFlowTable()
	acts, e := tbl.Lookup(PacketFields{}, 1, 0)
	if e != nil || acts[0].Type != ActionTypeController {
		t.Fatalf("table miss: entry=%v actions=%v", e, acts)
	}
}

func TestTableCounters(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Install(&FlowEntry{Priority: 1, Cookie: 42, Actions: []Action{Output(1)}}, 0)
	tbl.Lookup(PacketFields{}, 100, 0)
	tbl.Lookup(PacketFields{}, 50, 0)
	p, b := tbl.StatsByCookie(42)
	if p != 2 || b != 150 {
		t.Fatalf("stats %d/%d, want 2/150", p, b)
	}
}

func TestTableTimeouts(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Install(&FlowEntry{Priority: 1, HardTimeout: time.Second, Actions: []Action{Output(1)}}, 0)
	// Higher priority so lookups touch this entry and refresh its idle
	// timer.
	tbl.Install(&FlowEntry{Priority: 2, IdleTimeout: 500 * time.Millisecond, Actions: []Action{Output(2)}}, 0)
	if exp := tbl.Expire(400 * time.Millisecond); len(exp) != 0 {
		t.Fatalf("premature expiry: %v", exp)
	}
	// Touch the idle entry at 400ms via lookup so it survives 600ms.
	tbl.Lookup(PacketFields{}, 1, 400*time.Millisecond)
	if exp := tbl.Expire(600 * time.Millisecond); len(exp) != 0 {
		t.Fatalf("idle entry expired despite recent use: %v", exp)
	}
	exp := tbl.Expire(1100 * time.Millisecond)
	if len(exp) != 2 {
		t.Fatalf("expired %d entries at 1.1s, want 2", len(exp))
	}
	if tbl.Len() != 0 {
		t.Fatalf("table still has %d entries", tbl.Len())
	}
}

func TestRemoveByCookie(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Install(&FlowEntry{Cookie: 1, Actions: []Action{Output(1)}}, 0)
	tbl.Install(&FlowEntry{Cookie: 2, Actions: []Action{Output(2)}}, 0)
	tbl.Install(&FlowEntry{Cookie: 1, Actions: []Action{Output(3)}}, 0)
	if n := tbl.RemoveByCookie(1); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if tbl.Len() != 1 {
		t.Fatalf("table has %d entries, want 1", tbl.Len())
	}
}

func TestMeterPolice(t *testing.T) {
	m := &Meter{RateBps: 8000, BurstBytes: 1000} // 1 KB/s, 1 KB burst
	if !m.Police(0, 1000) {
		t.Fatal("initial burst rejected")
	}
	if m.Police(0, 1) {
		t.Fatal("empty bucket accepted a packet")
	}
	// After one second, 1000 bytes of tokens are back.
	if !m.Police(time.Second, 900) {
		t.Fatal("refilled bucket rejected packet")
	}
	if m.Conformed != 2 || m.Exceeded != 1 {
		t.Fatalf("counters %d/%d", m.Conformed, m.Exceeded)
	}
}

func TestMeterShapeDelay(t *testing.T) {
	m := &Meter{RateBps: 8000, BurstBytes: 1000}
	if d := m.Shape(0, 1000); d != 0 {
		t.Fatalf("in-burst shape delayed %v", d)
	}
	d := m.Shape(0, 1000) // 1000 bytes of debt at 1000 B/s = 1s
	if d != time.Second {
		t.Fatalf("shape delay %v, want 1s", d)
	}
}

func TestMeterSustainedRate(t *testing.T) {
	// Shaping 10 KB through a 1 KB/s meter must spread over ~10s.
	m := &Meter{RateBps: 8000, BurstBytes: 1000}
	var maxDelay time.Duration
	for i := 0; i < 10; i++ {
		d := m.Shape(0, 1000)
		if d > maxDelay {
			maxDelay = d
		}
	}
	if maxDelay < 8*time.Second || maxDelay > 10*time.Second {
		t.Fatalf("last packet delayed %v, want ~9s", maxDelay)
	}
}

type recordingController struct {
	got []PacketIn
}

func (r *recordingController) PacketIn(sw *Switch, inPort uint16, data []byte) {
	r.got = append(r.got, PacketIn{SwitchID: sw.ID, InPort: inPort, Data: data})
}

type fakeChains struct {
	transform func([]byte) []byte
	delay     time.Duration
}

func (f *fakeChains) ExecuteChain(chain string, data []byte) ([]byte, time.Duration, error) {
	out := f.transform(data)
	return out, f.delay, nil
}

func TestSwitchOutputPath(t *testing.T) {
	sw := NewSwitch("s1", nil)
	sw.Table.Install(&FlowEntry{Priority: 1, Actions: []Action{Output(7)}}, 0)
	d := sw.Process(tcpPacket(t, clientIP, webIP, 1, 80, "x"), 0)
	if d.Verdict != VerdictOutput || d.Port != 7 {
		t.Fatalf("disposition %+v", d)
	}
}

func TestSwitchTableMissGoesToController(t *testing.T) {
	ctrl := &recordingController{}
	sw := NewSwitch("s1", nil)
	sw.Controller = ctrl
	d := sw.Process(tcpPacket(t, clientIP, webIP, 1, 80, "x"), 5)
	if d.Verdict != VerdictController {
		t.Fatalf("verdict %v", d.Verdict)
	}
	if len(ctrl.got) != 1 || ctrl.got[0].InPort != 5 || ctrl.got[0].SwitchID != "s1" {
		t.Fatalf("controller saw %+v", ctrl.got)
	}
}

func TestSwitchMiddleboxChainTransforms(t *testing.T) {
	sw := NewSwitch("s1", nil)
	sw.Chains = &fakeChains{
		transform: func(b []byte) []byte { return append(b, 0xEE) },
		delay:     45 * time.Microsecond,
	}
	sw.Table.Install(&FlowEntry{Priority: 1, Actions: []Action{ToMiddlebox("chain1"), Output(2)}}, 0)
	in := tcpPacket(t, clientIP, webIP, 1, 80, "x")
	d := sw.Process(in, 0)
	if d.Verdict != VerdictOutput {
		t.Fatalf("verdict %v", d.Verdict)
	}
	if len(d.Data) != len(in)+1 {
		t.Fatal("middlebox transform not applied")
	}
	if d.Delay != 45*time.Microsecond {
		t.Fatalf("delay %v", d.Delay)
	}
}

func TestSwitchMiddleboxDropsWhenChainDrops(t *testing.T) {
	sw := NewSwitch("s1", nil)
	sw.Chains = &fakeChains{transform: func(b []byte) []byte { return nil }}
	sw.Table.Install(&FlowEntry{Priority: 1, Actions: []Action{ToMiddlebox("c"), Output(2)}}, 0)
	d := sw.Process(tcpPacket(t, clientIP, webIP, 1, 80, "x"), 0)
	if d.Verdict != VerdictDrop {
		t.Fatalf("verdict %v, want drop", d.Verdict)
	}
}

func TestSwitchMiddleboxFailClosedWithoutExecutor(t *testing.T) {
	sw := NewSwitch("s1", nil)
	sw.Table.Install(&FlowEntry{Priority: 1, Actions: []Action{ToMiddlebox("c"), Output(2)}}, 0)
	if d := sw.Process(tcpPacket(t, clientIP, webIP, 1, 80, "x"), 0); d.Verdict != VerdictDrop {
		t.Fatalf("verdict %v, want drop (fail closed)", d.Verdict)
	}
}

func TestSwitchMeterAddsDelay(t *testing.T) {
	now := time.Duration(0)
	sw := NewSwitch("s1", func() time.Duration { return now })
	// Burst of 60 bytes: the 50-byte packet fits once, then debt builds.
	sw.AddMeter("shape", &Meter{RateBps: 8000, BurstBytes: 60})
	sw.Table.Install(&FlowEntry{Priority: 1, Actions: []Action{Metered("shape"), Output(1)}}, 0)
	pkt := tcpPacket(t, clientIP, videoIP, 1, 80, "0123456789")
	d1 := sw.Process(pkt, 0)
	d2 := sw.Process(pkt, 0)
	if d1.Delay != 0 && d2.Delay == 0 {
		t.Fatal("meter delays inverted")
	}
	if d2.Delay <= d1.Delay {
		t.Fatalf("second packet not shaped more: %v then %v", d1.Delay, d2.Delay)
	}
}

func TestSwitchSetDstRewrites(t *testing.T) {
	sw := NewSwitch("s1", nil)
	proxy := packet.MustParseIPv4("10.99.0.1")
	sw.Table.Install(&FlowEntry{Priority: 1, Actions: []Action{SetDst(proxy, 8080), Output(1)}}, 0)
	d := sw.Process(tcpPacket(t, clientIP, webIP, 1234, 80, "GETx"), 0)
	p := packet.Decode(d.Data, packet.LayerTypeIPv4)
	if p.IPv4().Dst != proxy {
		t.Fatalf("dst %v, want %v", p.IPv4().Dst, proxy)
	}
	if p.TCP().DstPort != 8080 {
		t.Fatalf("dport %d, want 8080", p.TCP().DstPort)
	}
	// Checksums must still verify after the rewrite.
	if !p.TCP().VerifyChecksum(p.IPv4().LayerPayload()) {
		t.Fatal("rewritten packet has bad TCP checksum")
	}
	if string(p.TCP().LayerPayload()) != "GETx" {
		t.Fatal("payload corrupted by rewrite")
	}
}

func TestSwitchTunnelVerdict(t *testing.T) {
	sw := NewSwitch("s1", nil)
	sw.Table.Install(&FlowEntry{Priority: 1, Actions: []Action{Tunnel("cloud")}}, 0)
	d := sw.Process(tcpPacket(t, clientIP, webIP, 1, 443, "x"), 0)
	if d.Verdict != VerdictTunnel || d.TunnelName != "cloud" {
		t.Fatalf("disposition %+v", d)
	}
}

func TestSwitchEmptyActionListDrops(t *testing.T) {
	sw := NewSwitch("s1", nil)
	sw.Table.Install(&FlowEntry{Priority: 1}, 0)
	if d := sw.Process(tcpPacket(t, clientIP, webIP, 1, 80, "x"), 0); d.Verdict != VerdictDrop {
		t.Fatalf("verdict %v", d.Verdict)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fm := FlowMod{
		Command:  FlowAdd,
		Priority: 50,
		Match:    Match{Fields: FieldDstPort | FieldProto, DstPort: 443, Proto: 6},
		Actions:  []Action{ToMiddlebox("tls-verify"), Output(1)},
		Cookie:   0xdeadbeef,
	}
	if err := WriteMessage(&buf, MsgFlowMod, &fm); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, MsgPacketOut, &PacketOut{Port: 3, Data: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}

	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != MsgFlowMod {
		t.Fatalf("read 1: type=%v err=%v", typ, err)
	}
	var got FlowMod
	if err := DecodeBody(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Cookie != fm.Cookie || got.Match.DstPort != 443 || len(got.Actions) != 2 || got.Actions[0].Chain != "tls-verify" {
		t.Fatalf("decoded %+v", got)
	}

	typ, body, err = ReadMessage(&buf)
	if err != nil || typ != MsgPacketOut {
		t.Fatalf("read 2: type=%v err=%v", typ, err)
	}
	var po PacketOut
	if err := DecodeBody(body, &po); err != nil {
		t.Fatal(err)
	}
	if po.Port != 3 || !bytes.Equal(po.Data, []byte{1, 2, 3}) {
		t.Fatalf("decoded %+v", po)
	}
}

func TestCodecRejectsBadFrames(t *testing.T) {
	// Oversized declared length.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 1})
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Zero length.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0, 0})
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Truncated body.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 1, 'x'})
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestFlowModApply(t *testing.T) {
	tbl := NewFlowTable()
	add := FlowMod{Command: FlowAdd, Priority: 9, Cookie: 5, Actions: []Action{Output(1)}}
	if n := add.Apply(tbl, 0); n != 1 || tbl.Len() != 1 {
		t.Fatalf("add affected %d", n)
	}
	del := FlowMod{Command: FlowDeleteCookie, Cookie: 5}
	if n := del.Apply(tbl, 0); n != 1 || tbl.Len() != 0 {
		t.Fatalf("delete affected %d", n)
	}
	if n := (&FlowMod{Command: "bogus"}).Apply(tbl, 0); n != 0 {
		t.Fatalf("bogus command affected %d", n)
	}
}

func TestMatchStringAndSpecificity(t *testing.T) {
	m := &Match{Fields: FieldDstIP | FieldDstPort | FieldProto, DstIP: videoIP, DstBits: 24, DstPort: 443, Proto: 6}
	if m.Specificity() != 3 {
		t.Fatalf("specificity %d", m.Specificity())
	}
	if s := m.String(); s == "" || s == "any" {
		t.Fatalf("string %q", s)
	}
	if (&Match{}).String() != "any" {
		t.Fatal("empty match should render as any")
	}
}
