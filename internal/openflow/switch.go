package openflow

import (
	"fmt"
	"time"

	"pvn/internal/packet"
)

// Verdict is the final disposition of a processed packet.
type Verdict uint8

// Verdicts.
const (
	VerdictDrop Verdict = iota
	VerdictOutput
	VerdictController
	VerdictTunnel
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictDrop:
		return "drop"
	case VerdictOutput:
		return "output"
	case VerdictController:
		return "controller"
	case VerdictTunnel:
		return "tunnel"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Disposition reports what the switch decided for one packet.
type Disposition struct {
	Verdict Verdict
	// Port is the output port for VerdictOutput.
	Port uint16
	// TunnelName is set for VerdictTunnel.
	TunnelName string
	// Data is the (possibly rewritten) packet bytes.
	Data []byte
	// Delay accumulates meter shaping and middlebox processing time the
	// caller must apply before forwarding.
	Delay time.Duration
	// Entry is the flow entry that matched, nil on table miss.
	Entry *FlowEntry
}

// ChainExecutor runs a named middlebox chain over a packet. It returns the
// transformed packet (nil means the chain dropped it) and the processing
// delay it added.
type ChainExecutor interface {
	ExecuteChain(chain string, data []byte) (out []byte, delay time.Duration, err error)
}

// BatchProcessor is the optional batched fast path of a ChainExecutor:
// a dataplane that has already grouped packets bound for the same chain
// hands the whole group to one call, letting the executor amortize
// per-invocation overhead (lock acquisition, chain resolution, clock
// reads) across the batch.
//
// The contract is strict: filling outs[i]/delays[i]/errs[i] must be
// observably identical to calling ExecuteChain(chain, pkts[i]) for each
// i in order — outs[i] == nil with errs[i] == nil means the chain
// dropped packet i, exactly like the scalar path. The three result
// slices are caller-allocated with len(pkts) (so a pooled dataplane
// allocates nothing per batch); implementations must fill every index.
type BatchProcessor interface {
	ExecuteChainBatch(chain string, pkts [][]byte, outs [][]byte, delays []time.Duration, errs []error)
}

// PacketInHandler receives table-miss/controller punts.
type PacketInHandler interface {
	PacketIn(sw *Switch, inPort uint16, data []byte)
}

// Switch is a match/action forwarding element: one flow table, a meter
// bank, an optional middlebox executor and an optional controller.
type Switch struct {
	ID     string
	Table  *FlowTable
	Meters map[string]*Meter

	// Chains executes Middlebox actions; nil makes such actions drops
	// (fail-closed: PVN traffic must not bypass its middleboxes).
	Chains ChainExecutor
	// Controller receives packet-ins; nil makes controller punts drops.
	Controller PacketInHandler
	// OnExpired observes entries evicted by idle/hard timeouts, letting
	// the control plane learn about rule expiry (OpenFlow's
	// FLOW_REMOVED). Nil ignores expirations.
	OnExpired func(*FlowEntry)
	// Now supplies simulated time for counters/timeouts/meters.
	Now func() time.Duration

	// Counters.
	RxPackets, Dropped, PacketIns int64
}

// NewSwitch returns a switch with an empty table and meter bank. now may
// be nil, in which case time zero is used everywhere (fine for pure
// table tests).
func NewSwitch(id string, now func() time.Duration) *Switch {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Switch{ID: id, Table: NewFlowTable(), Meters: make(map[string]*Meter), Now: now}
}

// AddMeter installs a named meter.
func (s *Switch) AddMeter(id string, m *Meter) { s.Meters[id] = m }

// RemoveMeter uninstalls a named meter. Flow rules still referencing it
// fall back to unmetered forwarding (the lookup treats a missing meter
// as pass-through), so removal order vs. rule removal does not matter.
func (s *Switch) RemoveMeter(id string) { delete(s.Meters, id) }

// Process runs one packet (raw IPv4 bytes) through the pipeline and
// returns its disposition.
func (s *Switch) Process(data []byte, inPort uint16) Disposition {
	s.RxPackets++
	now := s.Now()
	for _, e := range s.Table.Expire(now) {
		if s.OnExpired != nil {
			s.OnExpired(e)
		}
	}

	pkt := packet.Decode(data, packet.LayerTypeIPv4)
	fields := ExtractFields(pkt, inPort)
	actions, entry := s.Table.Lookup(fields, len(data), now)

	d := Disposition{Data: data, Entry: entry}
	for _, a := range actions {
		switch a.Type {
		case ActionTypeOutput:
			d.Verdict = VerdictOutput
			d.Port = a.Port
			return d

		case ActionTypeDrop:
			s.Dropped++
			d.Verdict = VerdictDrop
			return d

		case ActionTypeController:
			s.PacketIns++
			d.Verdict = VerdictController
			if s.Controller != nil {
				s.Controller.PacketIn(s, inPort, d.Data)
			}
			return d

		case ActionTypeTunnel:
			d.Verdict = VerdictTunnel
			d.TunnelName = a.Tunnel
			return d

		case ActionTypeMiddlebox:
			if s.Chains == nil {
				s.Dropped++
				d.Verdict = VerdictDrop
				return d
			}
			out, delay, err := s.Chains.ExecuteChain(a.Chain, d.Data)
			d.Delay += delay
			if err != nil || out == nil {
				s.Dropped++
				d.Verdict = VerdictDrop
				return d
			}
			d.Data = out

		case ActionTypeMeter:
			m := s.Meters[a.MeterID]
			if m == nil {
				// Unknown meter: fail-open (no rate constraint) but
				// visible in counters would be better; treat as no-op.
				continue
			}
			d.Delay += m.Shape(now+d.Delay, len(d.Data))

		case ActionTypeSetDst:
			out, err := RewriteDst(d.Data, a.Dst, a.DstPort)
			if err != nil {
				s.Dropped++
				d.Verdict = VerdictDrop
				return d
			}
			d.Data = out
		}
	}
	// Action list ended without a terminal action: drop, per OpenFlow.
	s.Dropped++
	d.Verdict = VerdictDrop
	return d
}

// RewriteDst returns a copy of the IPv4 packet with its destination
// address (and, if port is nonzero and the packet is TCP/UDP, destination
// port) rewritten, with all checksums recomputed.
func RewriteDst(data []byte, dst packet.IPv4Address, port uint16) ([]byte, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	ip := p.IPv4()
	if ip == nil {
		return nil, fmt.Errorf("openflow: rewrite of non-IPv4 packet")
	}
	newIP := &packet.IPv4{
		TOS: ip.TOS, ID: ip.ID, Flags: ip.Flags, FragOff: ip.FragOff,
		TTL: ip.TTL, Protocol: ip.Protocol, Src: ip.Src, Dst: dst,
	}
	switch {
	case p.TCP() != nil:
		t := p.TCP()
		nt := &packet.TCP{
			SrcPort: t.SrcPort, DstPort: t.DstPort, Seq: t.Seq, Ack: t.Ack,
			Flags: t.Flags, Window: t.Window, Urgent: t.Urgent,
		}
		if port != 0 {
			nt.DstPort = port
		}
		nt.SetNetworkLayerForChecksum(newIP)
		return packet.SerializeToBytes(newIP, nt, packet.Payload(t.LayerPayload()))
	case p.UDP() != nil:
		u := p.UDP()
		nu := &packet.UDP{SrcPort: u.SrcPort, DstPort: u.DstPort}
		if port != 0 {
			nu.DstPort = port
		}
		nu.SetNetworkLayerForChecksum(newIP)
		return packet.SerializeToBytes(newIP, nu, packet.Payload(u.LayerPayload()))
	default:
		return packet.SerializeToBytes(newIP, packet.Payload(ip.LayerPayload()))
	}
}
