// Package openflow implements the match/action switching substrate PVNCs
// compile to: priority-ordered flow tables over header-field matches, an
// action vocabulary that includes middlebox redirection and rate meters,
// a switch that executes them, and a length-prefixed wire codec for the
// controller channel.
//
// It is intentionally a subset of real OpenFlow — the subset the paper's
// "standard match/action rules" (§3.1) requires — but the semantics
// (priority matching, table-miss to controller, counters, timeouts) follow
// the OpenFlow model.
package openflow

import (
	"fmt"
	"strings"

	"pvn/internal/packet"
)

// FieldSet is a bitmask of which Match fields are significant.
type FieldSet uint16

// Match field bits.
const (
	FieldInPort FieldSet = 1 << iota
	FieldEthType
	FieldSrcIP
	FieldDstIP
	FieldProto
	FieldSrcPort
	FieldDstPort
)

// Match selects packets by header fields. Only fields whose bit is set in
// Fields participate; everything else is wildcarded. IP matches support
// prefix masks.
type Match struct {
	Fields  FieldSet
	InPort  uint16
	EthType uint16
	SrcIP   packet.IPv4Address
	SrcBits uint8 // prefix length, 0 => /32 for compatibility
	DstIP   packet.IPv4Address
	DstBits uint8
	Proto   byte
	SrcPort uint16
	DstPort uint16
}

// PacketFields is the per-packet header summary matching operates on,
// extracted once per packet.
type PacketFields struct {
	InPort  uint16
	EthType uint16
	SrcIP   packet.IPv4Address
	DstIP   packet.IPv4Address
	Proto   byte
	SrcPort uint16
	DstPort uint16
}

// ExtractFields summarizes a decoded packet for matching. inPort is the
// switch port the packet arrived on.
func ExtractFields(p *packet.Packet, inPort uint16) PacketFields {
	f := PacketFields{InPort: inPort}
	if e := p.Ethernet(); e != nil {
		f.EthType = e.EtherType
	}
	if ip := p.IPv4(); ip != nil {
		if f.EthType == 0 {
			f.EthType = packet.EtherTypeIPv4
		}
		f.SrcIP, f.DstIP, f.Proto = ip.Src, ip.Dst, ip.Protocol
	}
	if t := p.TCP(); t != nil {
		f.SrcPort, f.DstPort = t.SrcPort, t.DstPort
	} else if u := p.UDP(); u != nil {
		f.SrcPort, f.DstPort = u.SrcPort, u.DstPort
	}
	return f
}

// Matches reports whether the packet summary satisfies the match.
func (m *Match) Matches(f PacketFields) bool {
	if m.Fields&FieldInPort != 0 && f.InPort != m.InPort {
		return false
	}
	if m.Fields&FieldEthType != 0 && f.EthType != m.EthType {
		return false
	}
	if m.Fields&FieldSrcIP != 0 && !prefixMatch(f.SrcIP, m.SrcIP, m.SrcBits) {
		return false
	}
	if m.Fields&FieldDstIP != 0 && !prefixMatch(f.DstIP, m.DstIP, m.DstBits) {
		return false
	}
	if m.Fields&FieldProto != 0 && f.Proto != m.Proto {
		return false
	}
	if m.Fields&FieldSrcPort != 0 && f.SrcPort != m.SrcPort {
		return false
	}
	if m.Fields&FieldDstPort != 0 && f.DstPort != m.DstPort {
		return false
	}
	return true
}

func prefixMatch(addr, want packet.IPv4Address, bits uint8) bool {
	if bits == 0 || bits >= 32 {
		return addr == want
	}
	a := uint32(addr[0])<<24 | uint32(addr[1])<<16 | uint32(addr[2])<<8 | uint32(addr[3])
	w := uint32(want[0])<<24 | uint32(want[1])<<16 | uint32(want[2])<<8 | uint32(want[3])
	mask := ^uint32(0) << (32 - bits)
	return a&mask == w&mask
}

// Specificity counts set fields; more specific matches make better
// tie-break diagnostics (priority still decides precedence).
func (m *Match) Specificity() int {
	n := 0
	for b := FieldSet(1); b <= FieldDstPort; b <<= 1 {
		if m.Fields&b != 0 {
			n++
		}
	}
	return n
}

// String renders the match compactly, e.g. "proto=6,dst=1.2.3.0/24,dport=443".
func (m *Match) String() string {
	if m.Fields == 0 {
		return "any"
	}
	var parts []string
	if m.Fields&FieldInPort != 0 {
		parts = append(parts, fmt.Sprintf("in=%d", m.InPort))
	}
	if m.Fields&FieldEthType != 0 {
		parts = append(parts, fmt.Sprintf("eth=0x%04x", m.EthType))
	}
	if m.Fields&FieldSrcIP != 0 {
		parts = append(parts, fmt.Sprintf("src=%s/%d", m.SrcIP, effBits(m.SrcBits)))
	}
	if m.Fields&FieldDstIP != 0 {
		parts = append(parts, fmt.Sprintf("dst=%s/%d", m.DstIP, effBits(m.DstBits)))
	}
	if m.Fields&FieldProto != 0 {
		parts = append(parts, fmt.Sprintf("proto=%d", m.Proto))
	}
	if m.Fields&FieldSrcPort != 0 {
		parts = append(parts, fmt.Sprintf("sport=%d", m.SrcPort))
	}
	if m.Fields&FieldDstPort != 0 {
		parts = append(parts, fmt.Sprintf("dport=%d", m.DstPort))
	}
	return strings.Join(parts, ",")
}

func effBits(b uint8) uint8 {
	if b == 0 || b > 32 {
		return 32
	}
	return b
}
