package pvnc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pvn/internal/openflow"
)

// Template sharing (ROADMAP item 1, PVN Store refactor): thousands of
// subscribers install the *same* store module, differing only in owner,
// device address and sensors. Plain Compile lowers every subscriber
// independently — every deployment owns private action slices even
// though most of them are byte-identical across subscribers. A
// TemplateCache content-addresses the subscriber-independent shape of a
// PVNC, compiles that shape once into a skeleton, and specializes the
// skeleton per subscriber: matches and cookies are stamped per
// deployment (they embed the device address), while action slices that
// carry no per-deployment state are shared read-only across every
// deployment of the template. Action slices that do embed deployment
// state (middlebox chain namespaces) are copied on specialization —
// copy-on-write at the granularity the dataplane actually mutates.
//
// Shared slices are handed to the switch read-only; the dataplane never
// mutates Actions after install (lookups copy entry pointers, and
// counters live on the entry, not the actions), so sharing is safe.

// Byte model for rule-table memory accounting. The simulator does not
// measure the Go heap (that would be nondeterministic); it prices
// entries and actions with fixed per-struct costs plus string payloads,
// which is what the with/without-sharing comparison needs.
const (
	// EntryOverheadBytes models one FlowEntry: match, priority, cookie,
	// timeouts, counters, slice header.
	EntryOverheadBytes = 160
	// ActionOverheadBytes models one Action struct minus its string
	// payloads.
	ActionOverheadBytes = 64
)

// actionSliceBytes prices one action slice under the byte model.
func actionSliceBytes(acts []openflow.Action) int64 {
	b := int64(0)
	for _, a := range acts {
		b += ActionOverheadBytes + int64(len(a.Chain)+len(a.MeterID)+len(a.Tunnel))
	}
	return b
}

// TemplateKey content-addresses the subscriber-independent shape of a
// PVNC: name, middleboxes, chains and policies — everything Compile
// consumes except the owner, device and sensor addresses. Two users who
// installed the same store module hash to the same key even though
// their sources (and Hash()) differ.
func TemplateKey(p *PVNC) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name %s\n", p.Name)
	for _, m := range p.Middleboxes {
		fmt.Fprintf(&b, "middlebox %s %s", m.LocalName, m.Type)
		keys := make([]string, 0, len(m.Config))
		for k := range m.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, m.Config[k])
		}
		b.WriteByte('\n')
	}
	for _, c := range p.Chains {
		fmt.Fprintf(&b, "chain %s %s\n", c.Name, strings.Join(c.Members, " "))
	}
	for _, pol := range p.SortedPolicies() {
		fmt.Fprintf(&b, "policy %d any=%t proto=%s sport=%d dport=%d dst=%s/%d hasdst=%t via=%s rate=%g act=%s tun=%s\n",
			pol.Priority, pol.Match.Any, pol.Match.Proto, pol.Match.SrcPort, pol.Match.DstPort,
			pol.Match.Dst, pol.Match.DstBits, pol.Match.HasDst(), pol.Via, pol.RateBps, pol.Action, pol.TunnelName)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// skelPolicy is one policy of a compiled skeleton.
type skelPolicy struct {
	pol     Policy
	meterID string
	// sharedOut/sharedIn are the complete action slices when the policy
	// references no middlebox chain (nothing per-deployment in them);
	// nil when specialization must stamp a namespace.
	sharedOut, sharedIn []openflow.Action
}

// skeleton is one template compiled for one (devicePort, upstreamPort)
// pair — ports are compile inputs (forward terminals), so a cache
// serving hosts with different port layouts keys skeletons per pair.
type skeleton struct {
	policies    []skelPolicy
	meters      []MeterPlan
	middleboxes []Middlebox
	chains      []Chain
	sharedBytes int64 // action bytes in shared slices, counted once
}

// TemplateStats reports cache effectiveness and the rule-table byte
// model with and without sharing.
type TemplateStats struct {
	// Templates is the number of distinct skeletons compiled; Hits is
	// how many CompileShared calls reused one.
	Templates, Hits int
	// Entries counts flow entries emitted across all specializations
	// (identical with and without sharing).
	Entries int64
	// SharedActionBytes is action memory in template-owned slices,
	// counted once per skeleton. PrivateActionBytes is action memory
	// allocated per deployment (namespace-stamped copies).
	// NaiveActionBytes is what per-subscriber Compile would have
	// allocated: one private slice per flow entry.
	SharedActionBytes, PrivateActionBytes, NaiveActionBytes int64
}

// SharedTableBytes models total rule-table memory with template sharing.
func (st TemplateStats) SharedTableBytes() int64 {
	return st.Entries*EntryOverheadBytes + st.SharedActionBytes + st.PrivateActionBytes
}

// NaiveTableBytes models total rule-table memory with per-subscriber
// compilation.
func (st TemplateStats) NaiveTableBytes() int64 {
	return st.Entries*EntryOverheadBytes + st.NaiveActionBytes
}

// TemplateCache compiles PVNC templates once and specializes them per
// subscriber. Safe for concurrent use.
type TemplateCache struct {
	mu        sync.Mutex
	skeletons map[string]*skeleton
	stats     TemplateStats
}

// NewTemplateCache builds an empty cache.
func NewTemplateCache() *TemplateCache {
	return &TemplateCache{skeletons: make(map[string]*skeleton)}
}

// Stats snapshots the cache counters.
func (c *TemplateCache) Stats() TemplateStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// CompileShared lowers a PVNC exactly like Compile — the outputs are
// value-equal — but serves the subscriber-independent work from the
// template cache: the skeleton (meter plans, middlebox/chain plans,
// namespace-free action slices) is compiled once per template and
// shared; only matches, cookies and namespace-bearing action slices are
// produced per deployment.
func (c *TemplateCache) CompileShared(p *PVNC, opt CompileOptions) (*Compiled, error) {
	if errs := p.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("pvnc: refusing to compile invalid config: %v", errs[0])
	}
	ns := opt.ChainNamespace
	if ns == "" {
		ns = p.Owner
	}
	key := fmt.Sprintf("%s|%d|%d", TemplateKey(p), opt.DevicePort, opt.UpstreamPort)

	c.mu.Lock()
	skel, ok := c.skeletons[key]
	if !ok {
		skel = buildSkeleton(p, opt)
		c.skeletons[key] = skel
		c.stats.Templates++
		c.stats.SharedActionBytes += skel.sharedBytes
	} else {
		c.stats.Hits++
	}

	out := &Compiled{
		Middleboxes: skel.middleboxes,
		Chains:      skel.chains,
		Owner:       p.Owner,
		Namespace:   ns,
		Hash:        p.Hash(),
	}
	if len(skel.meters) > 0 {
		out.Meters = append([]MeterPlan(nil), skel.meters...)
	}

	covered := p.CoveredAddrs()
	for i := range skel.policies {
		sp := &skel.policies[i]
		outActs, inActs := sp.sharedOut, sp.sharedIn
		if outActs == nil {
			// Copy-on-write: the chain reference embeds this
			// deployment's namespace, so specialize fresh slices — one
			// pair per deployment, reused across its covered addresses.
			base := []openflow.Action{openflow.ToMiddlebox(ns + "/" + sp.pol.Via)}
			if sp.meterID != "" {
				base = append(base, openflow.Metered(sp.meterID))
			}
			tOut, tIn := terminalActions(sp.pol, opt)
			outActs = append(append([]openflow.Action(nil), base...), tOut...)
			inActs = append(append([]openflow.Action(nil), base...), tIn...)
			c.stats.PrivateActionBytes += actionSliceBytes(outActs) + actionSliceBytes(inActs)
		}
		for _, addr := range covered {
			var mOut, mIn openflow.Match
			if sp.pol.Match.Any {
				mOut = openflow.Match{Fields: openflow.FieldSrcIP, SrcIP: addr, SrcBits: 32}
				mIn = openflow.Match{Fields: openflow.FieldDstIP, DstIP: addr, DstBits: 32}
			} else {
				mOut = matchFor(sp.pol.Match, addr, true)
				mIn = matchFor(sp.pol.Match, addr, false)
			}
			out.FlowMods = append(out.FlowMods,
				openflow.FlowMod{Command: openflow.FlowAdd, Priority: sp.pol.Priority, Match: mOut, Actions: outActs, Cookie: opt.Cookie},
				openflow.FlowMod{Command: openflow.FlowAdd, Priority: sp.pol.Priority, Match: mIn, Actions: inActs, Cookie: opt.Cookie})
			c.stats.Entries += 2
			c.stats.NaiveActionBytes += actionSliceBytes(outActs) + actionSliceBytes(inActs)
		}
	}
	c.mu.Unlock()
	return out, nil
}

// buildSkeleton compiles the subscriber-independent part of a template.
func buildSkeleton(p *PVNC, opt CompileOptions) *skeleton {
	sk := &skeleton{
		middleboxes: append([]Middlebox(nil), p.Middleboxes...),
		chains:      append([]Chain(nil), p.Chains...),
	}
	for _, pol := range p.SortedPolicies() {
		sp := skelPolicy{pol: pol}
		if pol.RateBps > 0 {
			sp.meterID = fmt.Sprintf("%s-p%d", p.Name, pol.Priority)
			sk.meters = append(sk.meters, MeterPlan{ID: sp.meterID, RateBps: pol.RateBps})
		}
		if pol.Via == "" {
			// No chain reference → nothing per-deployment in the action
			// list. Build it once; every deployment's flow entries alias
			// this slice.
			base := []openflow.Action{}
			if sp.meterID != "" {
				base = append(base, openflow.Metered(sp.meterID))
			}
			tOut, tIn := terminalActions(pol, opt)
			sp.sharedOut = append(append([]openflow.Action(nil), base...), tOut...)
			sp.sharedIn = append(append([]openflow.Action(nil), base...), tIn...)
			sk.sharedBytes += actionSliceBytes(sp.sharedOut) + actionSliceBytes(sp.sharedIn)
		}
		sk.policies = append(sk.policies, sp)
	}
	return sk
}
