package pvnc

import (
	"fmt"
	"reflect"
	"testing"
)

// moduleSource renders the same store module personalized for one
// subscriber — identical shape, different owner/device/sensor lines.
func moduleSource(owner, device, sensor string) string {
	src := fmt.Sprintf(`pvnc privacy-guard
owner %s
device %s
`, owner, device)
	if sensor != "" {
		src += "sensor " + sensor + "\n"
	}
	return src + `
middlebox tlsv tls-verify mode=block
middlebox pii pii-detect mode=redact secrets=hunter2
chain secure tlsv pii

policy 100 match proto=tcp dport=443 via=secure action=forward
policy 90 match proto=tcp dport=80 via=secure rate=2mbps action=forward
policy 80 match dst=203.0.113.0/24 rate=1.5mbps action=forward
policy 70 match dport=993 action=tunnel:cloud
policy 60 match proto=udp dport=53 action=drop
policy 0 match any action=forward
`
}

func mustParse(t *testing.T, src string) *PVNC {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// TestCompileSharedEquivalence: CompileShared must be observationally
// identical to Compile for every subscriber — same flow mods, meters,
// plans, hash — sharing is an implementation detail.
func TestCompileSharedEquivalence(t *testing.T) {
	cache := NewTemplateCache()
	subs := []struct{ owner, device, sensor string }{
		{"alice", "10.0.0.5", "10.0.0.6"},
		{"bob", "10.0.1.9", ""},
		{"carol", "10.0.2.2", "10.0.2.3"},
	}
	for i, sub := range subs {
		p := mustParse(t, moduleSource(sub.owner, sub.device, sub.sensor))
		opt := CompileOptions{Cookie: uint64(100 + i), DevicePort: 2, UpstreamPort: 1,
			ChainNamespace: sub.owner + ".dev"}
		want, err := Compile(p, opt)
		if err != nil {
			t.Fatalf("Compile(%s): %v", sub.owner, err)
		}
		got, err := cache.CompileShared(p, opt)
		if err != nil {
			t.Fatalf("CompileShared(%s): %v", sub.owner, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("CompileShared(%s) diverges from Compile:\n got %+v\nwant %+v", sub.owner, got, want)
		}
	}
	st := cache.Stats()
	if st.Templates != 1 || st.Hits != 2 {
		t.Fatalf("expected 1 template + 2 hits, got %+v", st)
	}
}

// TestCompileSharedAliasing: subscribers of one template alias the same
// namespace-free action slices, while namespace-bearing slices are
// private per deployment (copy-on-write).
func TestCompileSharedAliasing(t *testing.T) {
	cache := NewTemplateCache()
	opt := func(cookie uint64, ns string) CompileOptions {
		return CompileOptions{Cookie: cookie, DevicePort: 2, UpstreamPort: 1, ChainNamespace: ns}
	}
	a, err := cache.CompileShared(mustParse(t, moduleSource("alice", "10.0.0.5", "")), opt(1, "alice.d"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.CompileShared(mustParse(t, moduleSource("bob", "10.0.1.9", "")), opt(2, "bob.d"))
	if err != nil {
		t.Fatal(err)
	}
	aliased, private := 0, 0
	for i := range a.FlowMods {
		am, bm := &a.FlowMods[i], &b.FlowMods[i]
		hasChain := false
		for _, act := range am.Actions {
			if act.Chain != "" {
				hasChain = true
			}
		}
		if hasChain {
			private++
			if &am.Actions[0] == &bm.Actions[0] {
				t.Fatalf("flowmod %d: namespace-bearing actions shared across deployments", i)
			}
		} else {
			aliased++
			if &am.Actions[0] != &bm.Actions[0] {
				t.Fatalf("flowmod %d: namespace-free actions not shared", i)
			}
		}
	}
	if aliased == 0 || private == 0 {
		t.Fatalf("degenerate template: %d aliased, %d private flowmods", aliased, private)
	}
}

// TestTemplateKeyNormalization: same module shape hashes identically
// across subscribers; a changed policy changes the key.
func TestTemplateKeyNormalization(t *testing.T) {
	a := mustParse(t, moduleSource("alice", "10.0.0.5", "10.0.0.6"))
	b := mustParse(t, moduleSource("bob", "10.0.9.1", ""))
	if TemplateKey(a) != TemplateKey(b) {
		t.Fatal("same module shape hashed to different template keys")
	}
	if a.Hash() == b.Hash() {
		t.Fatal("personalized sources should have distinct PVNC hashes")
	}
	c := mustParse(t, moduleSource("carol", "10.0.3.3", "")+"\n# extra\n")
	c.Policies[0].Priority = 101
	if TemplateKey(a) == TemplateKey(c) {
		t.Fatal("changed policy must change the template key")
	}
}

// TestTemplateMemoryModel: sharing must reduce modeled rule-table bytes,
// and the per-subscriber increment must shrink as subscribers grow.
func TestTemplateMemoryModel(t *testing.T) {
	cache := NewTemplateCache()
	const n = 50
	for i := 0; i < n; i++ {
		dev := fmt.Sprintf("10.0.%d.%d", i/200, 1+i%200)
		p := mustParse(t, moduleSource(fmt.Sprintf("user%03d", i), dev, ""))
		if _, err := cache.CompileShared(p, CompileOptions{Cookie: uint64(i + 1), DevicePort: 2, UpstreamPort: 1, ChainNamespace: p.Owner + ".d"}); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Templates != 1 || st.Hits != n-1 {
		t.Fatalf("expected 1 template, %d hits; got %+v", n-1, st)
	}
	if st.SharedTableBytes() >= st.NaiveTableBytes() {
		t.Fatalf("sharing did not reduce modeled memory: shared=%d naive=%d",
			st.SharedTableBytes(), st.NaiveTableBytes())
	}
	if st.Entries == 0 || st.PrivateActionBytes == 0 || st.SharedActionBytes == 0 {
		t.Fatalf("incomplete accounting: %+v", st)
	}
}
