package pvnc

import (
	"fmt"

	"pvn/internal/openflow"
	"pvn/internal/packet"
)

// CompileOptions bind a PVNC to a concrete deployment point.
type CompileOptions struct {
	// Cookie tags every generated flow entry so the deployment can be
	// torn down and billed as a unit.
	Cookie uint64
	// DevicePort and UpstreamPort are the switch ports toward the
	// device and toward the Internet.
	DevicePort, UpstreamPort uint16
	// ChainNamespace prefixes chain references in middlebox actions
	// ("<namespace>/<chain>"). Empty defaults to the PVNC owner. A
	// deployment server that hosts the same PVNC for several of one
	// user's devices gives each deployment its own namespace so their
	// chains don't collide (§3.1: "a user can specify the same PVNC
	// for multiple devices").
	ChainNamespace string
}

// MeterPlan defines one meter to install.
type MeterPlan struct {
	ID      string
	RateBps float64
}

// Compiled is the lowered form of a PVNC: everything the deployment
// server installs.
type Compiled struct {
	// FlowMods are installed into the edge switch, already
	// priority-ordered.
	FlowMods []openflow.FlowMod
	// Meters must exist before the FlowMods referencing them.
	Meters []MeterPlan
	// Middleboxes must be instantiated (per middlebox runtime) before
	// traffic flows.
	Middleboxes []Middlebox
	// Chains are built from the instantiated middleboxes.
	Chains []Chain
	// Owner and Hash identify the deployment; Namespace is the chain
	// namespace middlebox actions reference.
	Owner     string
	Namespace string
	Hash      string
}

// Compile lowers a validated PVNC to flow rules and deployment plans. It
// fails if Validate reports any violation: invalid configurations must
// not reach the data plane.
func Compile(p *PVNC, opt CompileOptions) (*Compiled, error) {
	if errs := p.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("pvnc: refusing to compile invalid config: %v", errs[0])
	}
	ns := opt.ChainNamespace
	if ns == "" {
		ns = p.Owner
	}
	out := &Compiled{
		Middleboxes: append([]Middlebox(nil), p.Middleboxes...),
		Chains:      append([]Chain(nil), p.Chains...),
		Owner:       p.Owner,
		Namespace:   ns,
		Hash:        p.Hash(),
	}

	for _, pol := range p.SortedPolicies() {
		var meterID string
		if pol.RateBps > 0 {
			meterID = fmt.Sprintf("%s-p%d", p.Name, pol.Priority)
			out.Meters = append(out.Meters, MeterPlan{ID: meterID, RateBps: pol.RateBps})
		}

		base := []openflow.Action{}
		if pol.Via != "" {
			base = append(base, openflow.ToMiddlebox(ns+"/"+pol.Via))
		}
		if meterID != "" {
			base = append(base, openflow.Metered(meterID))
		}
		terminalOut, terminalIn := terminalActions(pol, opt)

		if pol.Match.Any {
			// The catch-all still only covers the deployment's own
			// addresses: a PVN must never interpose on (or forward)
			// other subscribers' traffic (§3.3 isolation).
			for _, addr := range p.CoveredAddrs() {
				out.FlowMods = append(out.FlowMods, openflow.FlowMod{
					Command:  openflow.FlowAdd,
					Priority: pol.Priority,
					Match:    openflow.Match{Fields: openflow.FieldSrcIP, SrcIP: addr, SrcBits: 32},
					Actions:  append(append([]openflow.Action(nil), base...), terminalOut...),
					Cookie:   opt.Cookie,
				})
				out.FlowMods = append(out.FlowMods, openflow.FlowMod{
					Command:  openflow.FlowAdd,
					Priority: pol.Priority,
					Match:    openflow.Match{Fields: openflow.FieldDstIP, DstIP: addr, DstBits: 32},
					Actions:  append(append([]openflow.Action(nil), base...), terminalIn...),
					Cookie:   opt.Cookie,
				})
			}
			continue
		}

		// One outbound + one mirrored inbound rule per covered address
		// (the device, plus any sensors the policies also protect).
		for _, addr := range p.CoveredAddrs() {
			mOut := matchFor(pol.Match, addr, true)
			out.FlowMods = append(out.FlowMods, openflow.FlowMod{
				Command:  openflow.FlowAdd,
				Priority: pol.Priority,
				Match:    mOut,
				Actions:  append(append([]openflow.Action(nil), base...), terminalOut...),
				Cookie:   opt.Cookie,
			})
			mIn := matchFor(pol.Match, addr, false)
			out.FlowMods = append(out.FlowMods, openflow.FlowMod{
				Command:  openflow.FlowAdd,
				Priority: pol.Priority,
				Match:    mIn,
				Actions:  append(append([]openflow.Action(nil), base...), terminalIn...),
				Cookie:   opt.Cookie,
			})
		}
	}
	return out, nil
}

// terminalActions returns the outbound and inbound terminal action lists
// for a policy.
func terminalActions(pol Policy, opt CompileOptions) (outb, inb []openflow.Action) {
	switch pol.Action {
	case ActDrop:
		return []openflow.Action{openflow.Drop()}, []openflow.Action{openflow.Drop()}
	case ActTunnel:
		return []openflow.Action{openflow.Tunnel(pol.TunnelName)}, []openflow.Action{openflow.Tunnel(pol.TunnelName)}
	default: // forward
		return []openflow.Action{openflow.Output(opt.UpstreamPort)}, []openflow.Action{openflow.Output(opt.DevicePort)}
	}
}

// matchFor builds the openflow match for one direction. outbound pins the
// device as source; inbound mirrors ports/prefix and pins the device as
// destination.
func matchFor(m MatchSpec, device packet.IPv4Address, outbound bool) openflow.Match {
	var om openflow.Match
	if m.Proto != "" {
		om.Fields |= openflow.FieldProto
		if m.Proto == "tcp" {
			om.Proto = packet.IPProtoTCP
		} else {
			om.Proto = packet.IPProtoUDP
		}
	}
	if outbound {
		om.Fields |= openflow.FieldSrcIP
		om.SrcIP, om.SrcBits = device, 32
		if m.SrcPort != 0 {
			om.Fields |= openflow.FieldSrcPort
			om.SrcPort = m.SrcPort
		}
		if m.DstPort != 0 {
			om.Fields |= openflow.FieldDstPort
			om.DstPort = m.DstPort
		}
		if m.hasDst {
			om.Fields |= openflow.FieldDstIP
			om.DstIP, om.DstBits = m.Dst, m.DstBits
		}
	} else {
		om.Fields |= openflow.FieldDstIP
		om.DstIP, om.DstBits = device, 32
		// Mirror: the remote's port/prefix appear on the source side.
		if m.SrcPort != 0 {
			om.Fields |= openflow.FieldDstPort
			om.DstPort = m.SrcPort
		}
		if m.DstPort != 0 {
			om.Fields |= openflow.FieldSrcPort
			om.SrcPort = m.DstPort
		}
		if m.hasDst {
			om.Fields |= openflow.FieldSrcIP
			om.SrcIP, om.SrcBits = m.Dst, m.DstBits
		}
	}
	return om
}
