package pvnc

import (
	"strings"
	"testing"
)

func TestFormatRoundTrip(t *testing.T) {
	p := parseGood(t)
	q, err := Parse(p.Format())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if errs := q.Validate(); len(errs) != 0 {
		t.Fatalf("formatted config invalid: %v", errs)
	}
	if q.Name != p.Name || q.Owner != p.Owner || q.Device != p.Device {
		t.Fatal("header changed by round trip")
	}
	if len(q.Middleboxes) != len(p.Middleboxes) || len(q.Chains) != len(p.Chains) || len(q.Policies) != len(p.Policies) {
		t.Fatal("structure changed by round trip")
	}
	// Idempotence: formatting the reparsed config gives identical text.
	if q.Format() != Parse2(t, q.Format()).Format() {
		t.Fatal("Format not idempotent")
	}
	// Policies keep semantics.
	for i, pol := range q.SortedPolicies() {
		want := p.SortedPolicies()[i]
		if pol.Priority != want.Priority || pol.Action != want.Action || pol.Via != want.Via || pol.RateBps != want.RateBps {
			t.Fatalf("policy %d changed: %+v vs %+v", i, pol, want)
		}
	}
}

// Parse2 is a test helper that fails on error.
func Parse2(t *testing.T, src string) *PVNC {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReduceDropsUnsupported(t *testing.T) {
	p := parseGood(t)
	supported := map[string]bool{"tls-verify": true, "pii-detect": true} // no transcoder
	r, dropped, err := Reduce(p, supported)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Middleboxes) != 2 {
		t.Fatalf("middleboxes %d, want 2", len(r.Middleboxes))
	}
	for _, c := range r.Chains {
		if c.Name == "video" {
			t.Fatal("video chain should be gone (only member unsupported)")
		}
	}
	joined := strings.Join(dropped, ",")
	for _, want := range []string{"middlebox:vid", "chain:video", "policy-via:80"} {
		if !strings.Contains(joined, want) {
			t.Errorf("dropped list %v missing %s", dropped, want)
		}
	}
	if errs := r.Validate(); len(errs) != 0 {
		t.Fatalf("reduced config invalid: %v", errs)
	}
	// The rate policy survives, just without its chain.
	var found bool
	for _, pol := range r.Policies {
		if pol.Priority == 80 {
			found = true
			if pol.Via != "" {
				t.Fatal("via not cleared")
			}
			if pol.RateBps != 1.5e6 {
				t.Fatal("rate lost")
			}
		}
	}
	if !found {
		t.Fatal("priority-80 policy lost")
	}
}

func TestReduceFullySupportedIsNoop(t *testing.T) {
	p := parseGood(t)
	supported := map[string]bool{"tls-verify": true, "pii-detect": true, "transcoder": true}
	r, dropped, err := Reduce(p, supported)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 0 {
		t.Fatalf("dropped %v from fully supported config", dropped)
	}
	if len(r.Middleboxes) != 3 || len(r.Chains) != 2 {
		t.Fatal("structure changed")
	}
}

func TestReducedHashDiffers(t *testing.T) {
	p := parseGood(t)
	r, _, err := Reduce(p, map[string]bool{"tls-verify": true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Hash() == p.Hash() {
		t.Fatal("reduced config has same hash as original")
	}
}
