package pvnc

import (
	"fmt"
	"sort"
	"strings"

	"pvn/internal/packet"
)

// Format renders the PVNC back to canonical source text. Parse(Format(p))
// yields an equivalent configuration; the discovery protocol uses this to
// construct reduced (subset) configurations during renegotiation (§3.1).
func (p *PVNC) Format() string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "pvnc %s\n", p.Name)
	}
	if p.Owner != "" {
		fmt.Fprintf(&b, "owner %s\n", p.Owner)
	}
	if !p.Device.IsZero() {
		fmt.Fprintf(&b, "device %s\n", p.Device)
	}
	for _, s := range p.Sensors {
		fmt.Fprintf(&b, "sensor %s\n", s)
	}
	for _, m := range p.Middleboxes {
		fmt.Fprintf(&b, "middlebox %s %s", m.LocalName, m.Type)
		keys := make([]string, 0, len(m.Config))
		for k := range m.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, m.Config[k])
		}
		b.WriteByte('\n')
	}
	for _, c := range p.Chains {
		fmt.Fprintf(&b, "chain %s %s\n", c.Name, strings.Join(c.Members, " "))
	}
	for _, pol := range p.SortedPolicies() {
		fmt.Fprintf(&b, "policy %d match", pol.Priority)
		if pol.Match.Any {
			b.WriteString(" any")
		}
		if pol.Match.Proto != "" {
			fmt.Fprintf(&b, " proto=%s", pol.Match.Proto)
		}
		if pol.Match.SrcPort != 0 {
			fmt.Fprintf(&b, " sport=%d", pol.Match.SrcPort)
		}
		if pol.Match.DstPort != 0 {
			fmt.Fprintf(&b, " dport=%d", pol.Match.DstPort)
		}
		if pol.Match.hasDst {
			fmt.Fprintf(&b, " dst=%s/%d", pol.Match.Dst, pol.Match.DstBits)
		}
		if pol.Via != "" {
			fmt.Fprintf(&b, " via=%s", pol.Via)
		}
		if pol.RateBps > 0 {
			fmt.Fprintf(&b, " rate=%.0fbps", pol.RateBps)
		}
		switch pol.Action {
		case ActTunnel:
			fmt.Fprintf(&b, " action=tunnel:%s", pol.TunnelName)
		case ActDrop:
			b.WriteString(" action=drop")
		default:
			b.WriteString(" action=forward")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Reduce returns a copy of the PVNC restricted to the middlebox types the
// provider supports: unsupported middleboxes are removed, chains lose
// those members (empty chains are removed), and policies referencing
// removed chains lose their via clause. The returned slice names what was
// dropped; empty means the PVNC was already deployable.
func Reduce(p *PVNC, supported map[string]bool) (*PVNC, []string, error) {
	var dropped []string
	keepMbx := map[string]bool{}
	reduced := &PVNC{Name: p.Name, Owner: p.Owner, Device: p.Device, Sensors: append([]packet.IPv4Address(nil), p.Sensors...)}
	for _, m := range p.Middleboxes {
		if supported[m.Type] {
			reduced.Middleboxes = append(reduced.Middleboxes, m)
			keepMbx[m.LocalName] = true
		} else {
			dropped = append(dropped, "middlebox:"+m.LocalName)
		}
	}
	keepChain := map[string]bool{}
	for _, c := range p.Chains {
		var members []string
		for _, m := range c.Members {
			if keepMbx[m] {
				members = append(members, m)
			}
		}
		if len(members) == 0 {
			dropped = append(dropped, "chain:"+c.Name)
			continue
		}
		if len(members) < len(c.Members) {
			dropped = append(dropped, "chain-members:"+c.Name)
		}
		reduced.Chains = append(reduced.Chains, Chain{Name: c.Name, Members: members})
		keepChain[c.Name] = true
	}
	for _, pol := range p.Policies {
		if pol.Via != "" && !keepChain[pol.Via] {
			dropped = append(dropped, fmt.Sprintf("policy-via:%d", pol.Priority))
			pol.Via = ""
		}
		reduced.Policies = append(reduced.Policies, pol)
	}
	// Round-trip through the canonical text so the reduced config has a
	// faithful Source/Hash of its own.
	out, err := Parse(reduced.Format())
	if err != nil {
		return nil, nil, fmt.Errorf("pvnc: reduce produced unparseable config: %w", err)
	}
	return out, dropped, nil
}
