package pvnc

import (
	"strings"
	"testing"
	"time"

	"pvn/internal/openflow"
	"pvn/internal/packet"
)

const goodSrc = `
# Alice's roaming configuration (Fig 1a shape)
pvnc alice-roaming
owner alice
device 10.0.0.5

middlebox tlsv tls-verify mode=block
middlebox pii  pii-detect mode=redact secrets=hunter2
middlebox vid  transcoder ratio=0.4

chain secure tlsv pii
chain video vid

policy 100 match proto=tcp dport=443 via=secure action=forward
policy 90  match proto=tcp dport=80 via=secure action=forward
policy 80  match dst=203.0.113.0/24 via=video rate=1.5mbps action=forward
policy 70  match proto=tcp dport=993 action=tunnel:cloud
policy 60  match proto=udp dport=53 action=forward
policy 50  match dst=198.18.0.1 action=drop
policy 0   match any action=forward
`

func parseGood(t *testing.T) *PVNC {
	t.Helper()
	p, err := Parse(goodSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := p.Validate(); len(errs) > 0 {
		t.Fatalf("validate: %v", errs)
	}
	return p
}

func TestParseGood(t *testing.T) {
	p := parseGood(t)
	if p.Name != "alice-roaming" || p.Owner != "alice" {
		t.Fatalf("header %+v", p)
	}
	if p.Device != packet.MustParseIPv4("10.0.0.5") {
		t.Fatalf("device %v", p.Device)
	}
	if len(p.Middleboxes) != 3 || len(p.Chains) != 2 || len(p.Policies) != 7 {
		t.Fatalf("counts %d/%d/%d", len(p.Middleboxes), len(p.Chains), len(p.Policies))
	}
	if p.Middleboxes[1].Config["secrets"] != "hunter2" {
		t.Fatalf("config %+v", p.Middleboxes[1].Config)
	}
	if p.Policies[2].RateBps != 1.5e6 {
		t.Fatalf("rate %v", p.Policies[2].RateBps)
	}
	if p.Policies[3].Action != ActTunnel || p.Policies[3].TunnelName != "cloud" {
		t.Fatalf("tunnel policy %+v", p.Policies[3])
	}
	if p.Policies[5].Match.DstBits != 32 {
		t.Fatalf("bare dst bits %d, want 32", p.Policies[5].Match.DstBits)
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"bogus directive", "unknown directive"},
		{"pvnc", "requires a name"},
		{"device notanip", "bad device address"},
		{"middlebox x", "middlebox requires"},
		{"middlebox x t badkv", "not key=value"},
		{"chain only", "chain requires"},
		{"policy abc match any action=forward", "bad priority"},
		{"policy 1 match dport=99999 action=forward", "bad port"},
		{"policy 1 match proto=icmp action=forward", "bad proto"},
		{"policy 1 match any action=explode", "unknown action"},
		{"policy 1 match any", "missing action"},
		{"policy 1 match dst=1.2.3.4/40 action=forward", "bad prefix"},
		{"policy 1 match rate=fast any action=forward", "bad rate"},
		{"policy 1 match any action=tunnel:", "requires a name"},
		{"policy 1 nomatch any action=forward", "policy requires"},
		{"policy 1 match wat=1 action=forward", "unknown policy token"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("accepted %q", c.src)
			continue
		}
		if pe, ok := err.(*ParseError); !ok || pe.Line != 1 {
			t.Errorf("error for %q lacks line info: %v", c.src, err)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("error for %q = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestValidateCatchesInvariants(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no default", "pvnc x\nowner a\ndevice 1.2.3.4\npolicy 10 match dport=80 action=forward", "catch-all"},
		{"two defaults", "pvnc x\nowner a\ndevice 1.2.3.4\npolicy 0 match any action=forward\npolicy 5 match any action=forward", "priority 0"},
		{"dup priority", "pvnc x\nowner a\ndevice 1.2.3.4\npolicy 10 match dport=80 action=forward\npolicy 10 match dport=81 action=forward\npolicy 0 match any action=forward", "share priority"},
		{"undefined chain", "pvnc x\nowner a\ndevice 1.2.3.4\npolicy 10 match dport=80 via=ghost action=forward\npolicy 0 match any action=forward", "undefined chain"},
		{"undefined mbx in chain", "pvnc x\nowner a\ndevice 1.2.3.4\nchain c ghost\npolicy 0 match any action=forward", "undefined middlebox"},
		{"dup middlebox", "pvnc x\nowner a\ndevice 1.2.3.4\nmiddlebox m t\nmiddlebox m t\npolicy 0 match any action=forward", "duplicate middlebox"},
		{"dup chain", "pvnc x\nowner a\ndevice 1.2.3.4\nmiddlebox m t\nchain c m\nchain c m\npolicy 0 match any action=forward", "duplicate chain"},
		{"missing owner", "pvnc x\ndevice 1.2.3.4\npolicy 0 match any action=forward", "missing owner"},
		{"missing device", "pvnc x\nowner a\npolicy 0 match any action=forward", "missing device"},
		{"shadowed policy", "pvnc x\nowner a\ndevice 1.2.3.4\npolicy 10 match dport=80 action=forward\npolicy 5 match dport=80 action=drop\npolicy 0 match any action=forward", "shadows"},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		errs := p.Validate()
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: errors %v missing %q", c.name, errs, c.want)
		}
	}
}

func TestValidateGoodIsClean(t *testing.T) {
	p := parseGood(t)
	if errs := p.Validate(); len(errs) != 0 {
		t.Fatalf("unexpected violations: %v", errs)
	}
}

func TestEstimate(t *testing.T) {
	p := parseGood(t)
	e := p.Estimate()
	if e.NumMiddleboxes != 3 || e.NumChains != 2 || e.NumPolicies != 7 {
		t.Fatalf("estimate %+v", e)
	}
	// 7 policies (incl. the scoped catch-all) * 2 directions * 1 addr.
	if e.NumFlowRules != 14 {
		t.Fatalf("rules %d, want 14", e.NumFlowRules)
	}
	if e.MemoryBytes != 3*(6<<20) {
		t.Fatalf("memory %d", e.MemoryBytes)
	}
}

func TestHashStableAndSensitive(t *testing.T) {
	a1, _ := Parse(goodSrc)
	a2, _ := Parse(goodSrc)
	if a1.Hash() != a2.Hash() {
		t.Fatal("same source, different hash")
	}
	b, _ := Parse(goodSrc + "\n# tweak")
	if a1.Hash() == b.Hash() {
		t.Fatal("different source, same hash")
	}
}

func TestCompileRefusesInvalid(t *testing.T) {
	p, _ := Parse("pvnc x\nowner a\ndevice 1.2.3.4\npolicy 10 match dport=80 action=forward")
	if _, err := Compile(p, CompileOptions{}); err == nil {
		t.Fatal("compiled config without default policy")
	}
}

func TestCompileProducesOrderedRules(t *testing.T) {
	p := parseGood(t)
	c, err := Compile(p, CompileOptions{Cookie: 7, DevicePort: 0, UpstreamPort: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.FlowMods) != 14 {
		t.Fatalf("flow mods %d, want 14", len(c.FlowMods))
	}
	last := 1 << 30
	for _, fm := range c.FlowMods {
		if fm.Priority > last {
			t.Fatal("flow mods not in descending priority order")
		}
		last = fm.Priority
		if fm.Cookie != 7 {
			t.Fatalf("cookie %d", fm.Cookie)
		}
	}
	if len(c.Meters) != 1 || c.Meters[0].RateBps != 1.5e6 {
		t.Fatalf("meters %+v", c.Meters)
	}
	if c.Owner != "alice" || c.Hash != p.Hash() {
		t.Fatalf("identity %q %q", c.Owner, c.Hash)
	}
}

// TestCompiledRulesBehaveOnSwitch drives the compiled rules end to end
// through an actual switch.
func TestCompiledRulesBehaveOnSwitch(t *testing.T) {
	p := parseGood(t)
	c, err := Compile(p, CompileOptions{Cookie: 1, DevicePort: 0, UpstreamPort: 1})
	if err != nil {
		t.Fatal(err)
	}
	sw := openflow.NewSwitch("edge", nil)
	for i := range c.FlowMods {
		c.FlowMods[i].Apply(sw.Table, 0)
	}
	for _, m := range c.Meters {
		sw.AddMeter(m.ID, &openflow.Meter{RateBps: m.RateBps})
	}
	sw.Chains = passthroughChains{}

	dev := packet.MustParseIPv4("10.0.0.5")
	web := packet.MustParseIPv4("93.184.216.34")

	mk := func(src, dst packet.IPv4Address, sport, dport uint16) []byte {
		ip := &packet.IPv4{Src: src, Dst: dst, Protocol: packet.IPProtoTCP}
		tcp := &packet.TCP{SrcPort: sport, DstPort: dport}
		tcp.SetNetworkLayerForChecksum(ip)
		data, _ := packet.SerializeToBytes(ip, tcp, packet.Payload("x"))
		return data
	}

	// HTTPS outbound: via chain then upstream.
	d := sw.Process(mk(dev, web, 40000, 443), 0)
	if d.Verdict != openflow.VerdictOutput || d.Port != 1 {
		t.Fatalf("https outbound: %+v", d)
	}
	// HTTPS inbound: back to device port.
	d = sw.Process(mk(web, dev, 443, 40000), 1)
	if d.Verdict != openflow.VerdictOutput || d.Port != 0 {
		t.Fatalf("https inbound: %+v", d)
	}
	// IMAPS tunnels.
	d = sw.Process(mk(dev, web, 40001, 993), 0)
	if d.Verdict != openflow.VerdictTunnel || d.TunnelName != "cloud" {
		t.Fatalf("tunnel policy: %+v", d)
	}
	// Blocked destination drops.
	d = sw.Process(mk(dev, packet.MustParseIPv4("198.18.0.1"), 40002, 7070), 0)
	if d.Verdict != openflow.VerdictDrop {
		t.Fatalf("drop policy: %+v", d)
	}
	// Unrelated traffic hits the catch-all and forwards.
	d = sw.Process(mk(dev, web, 40003, 12345), 0)
	if d.Verdict != openflow.VerdictOutput || d.Port != 1 {
		t.Fatalf("default policy: %+v", d)
	}
	// Video prefix is metered: a big burst must pick up shaping delay.
	video := packet.MustParseIPv4("203.0.113.50")
	var sawDelay bool
	for i := 0; i < 2000; i++ {
		d = sw.Process(mk(dev, video, 40004, 8080), 0)
		if d.Delay > 0 {
			sawDelay = true
			break
		}
	}
	if !sawDelay {
		t.Fatal("metered policy never shaped")
	}
}

type passthroughChains struct{}

func (passthroughChains) ExecuteChain(chain string, data []byte) ([]byte, time.Duration, error) {
	return data, 0, nil
}
