package pvnc

import "testing"

// FuzzParse: the PVNC parser must never panic, and anything it accepts
// must survive the Format/Parse round trip with its validation outcome
// intact.
func FuzzParse(f *testing.F) {
	f.Add(goodSrc)
	f.Add("pvnc x\nowner a\ndevice 1.2.3.4\npolicy 0 match any action=forward")
	f.Add("middlebox a b c=d")
	f.Add("")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		valid := len(p.Validate()) == 0
		q, err := Parse(p.Format())
		if err != nil {
			t.Fatalf("Format produced unparseable text: %v", err)
		}
		if (len(q.Validate()) == 0) != valid {
			t.Fatal("validation outcome changed across Format/Parse")
		}
		if valid {
			if _, err := Compile(p, CompileOptions{UpstreamPort: 1}); err != nil {
				t.Fatalf("valid config failed to compile: %v", err)
			}
		}
	})
}
