package pvnc

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"pvn/internal/netsim"
	"pvn/internal/packet"
)

// genConfig builds a random but structurally valid PVNC from a seed.
func genConfig(seed uint64) *PVNC {
	rng := netsim.NewRNG(seed)
	var b strings.Builder
	fmt.Fprintf(&b, "pvnc gen-%d\n", seed)
	fmt.Fprintf(&b, "owner user%d\n", rng.Intn(100))
	fmt.Fprintf(&b, "device 10.%d.%d.%d\n", rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
	for i := 0; i < rng.Intn(3); i++ {
		fmt.Fprintf(&b, "sensor 10.200.%d.%d\n", i, 1+rng.Intn(254))
	}

	types := []string{"pii-detect", "tracker-block", "classifier", "compressor", "malware-scan"}
	nMbx := rng.Intn(4)
	for i := 0; i < nMbx; i++ {
		fmt.Fprintf(&b, "middlebox m%d %s\n", i, types[rng.Intn(len(types))])
	}
	nChains := 0
	if nMbx > 0 {
		nChains = rng.Intn(nMbx) + 1
		for i := 0; i < nChains; i++ {
			members := []string{}
			for j := 0; j < nMbx; j++ {
				if rng.Bool(0.6) {
					members = append(members, fmt.Sprintf("m%d", j))
				}
			}
			if len(members) == 0 {
				members = append(members, "m0")
			}
			fmt.Fprintf(&b, "chain c%d %s\n", i, strings.Join(members, " "))
		}
	}

	nPol := 1 + rng.Intn(5)
	for i := 0; i < nPol; i++ {
		prio := 100 - i*10
		fmt.Fprintf(&b, "policy %d match proto=tcp dport=%d", prio, 1+rng.Intn(65535))
		if nChains > 0 && rng.Bool(0.5) {
			fmt.Fprintf(&b, " via=c%d", rng.Intn(nChains))
		}
		if rng.Bool(0.3) {
			fmt.Fprintf(&b, " rate=%dbps", 100_000+rng.Intn(10_000_000))
		}
		switch rng.Intn(3) {
		case 0:
			b.WriteString(" action=forward\n")
		case 1:
			b.WriteString(" action=drop\n")
		default:
			b.WriteString(" action=tunnel:cloud\n")
		}
	}
	b.WriteString("policy 0 match any action=forward\n")

	p, err := Parse(b.String())
	if err != nil {
		panic(fmt.Sprintf("generator produced invalid config: %v\n%s", err, b.String()))
	}
	return p
}

// TestQuickFormatParseRoundTrip: Format∘Parse is the identity on
// structure and Format is idempotent, for arbitrary generated configs.
func TestQuickFormatParseRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		p := genConfig(seed % 10000)
		q, err := Parse(p.Format())
		if err != nil {
			t.Logf("seed %d: reparse failed: %v", seed, err)
			return false
		}
		if q.Format() != p.Format() {
			t.Logf("seed %d: Format not idempotent", seed)
			return false
		}
		if len(q.Middleboxes) != len(p.Middleboxes) ||
			len(q.Chains) != len(p.Chains) ||
			len(q.Policies) != len(p.Policies) ||
			len(q.Sensors) != len(p.Sensors) {
			return false
		}
		// Validation outcome is stable across the round trip.
		return (len(p.Validate()) == 0) == (len(q.Validate()) == 0)
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValidConfigsCompile: every generated config that validates
// also compiles, with one rule pair per policy per covered address.
func TestQuickValidConfigsCompile(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		p := genConfig(seed % 10000)
		if len(p.Validate()) > 0 {
			return true // generator occasionally makes duplicate-match configs; skip
		}
		c, err := Compile(p, CompileOptions{Cookie: 1, UpstreamPort: 1})
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		if len(c.FlowMods) != p.Estimate().NumFlowRules {
			t.Logf("seed %d: %d rules, estimate %d", seed, len(c.FlowMods), p.Estimate().NumFlowRules)
			return false
		}
		// Priorities are non-increasing.
		last := 1 << 30
		for _, fm := range c.FlowMods {
			if fm.Priority > last {
				return false
			}
			last = fm.Priority
		}
		return true
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReduceAlwaysValid: reducing a valid config by any subset of
// its types yields a config that still validates.
func TestQuickReduceAlwaysValid(t *testing.T) {
	if err := quick.Check(func(seed uint64, mask uint8) bool {
		p := genConfig(seed % 10000)
		if len(p.Validate()) > 0 {
			return true
		}
		supported := map[string]bool{}
		i := 0
		for _, m := range p.Middleboxes {
			if mask&(1<<uint(i%8)) != 0 {
				supported[m.Type] = true
			}
			i++
		}
		r, _, err := Reduce(p, supported)
		if err != nil {
			return false
		}
		return len(r.Validate()) == 0
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCoveredAddrs: device and every sensor appear exactly once.
func TestQuickCoveredAddrs(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		p := genConfig(seed % 10000)
		addrs := p.CoveredAddrs()
		if len(addrs) != 1+len(p.Sensors) {
			return false
		}
		seen := map[packet.IPv4Address]bool{}
		for _, a := range addrs {
			if seen[a] && len(p.Validate()) == 0 {
				return false // duplicates only allowed in invalid configs
			}
			seen[a] = true
		}
		return addrs[0] == p.Device
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
