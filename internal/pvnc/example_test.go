package pvnc_test

import (
	"fmt"

	"pvn/internal/pvnc"
)

// ExampleParse walks the PVNC workflow: parse the user-readable text,
// check the deployment invariants, and quote the resource estimate a
// provider prices during discovery.
func ExampleParse() {
	cfg, err := pvnc.Parse(`
pvnc example
owner alice
device 10.0.0.5
middlebox pii pii-detect mode=block
chain secure pii
policy 100 match proto=tcp dport=80 via=secure action=forward
policy 0 match any action=forward
`)
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	fmt.Println("violations:", len(cfg.Validate()))
	e := cfg.Estimate()
	fmt.Printf("middleboxes=%d rules=%d memory=%dMB\n",
		e.NumMiddleboxes, e.NumFlowRules, e.MemoryBytes>>20)
	// Output:
	// violations: 0
	// middleboxes=1 rules=4 memory=6MB
}

// ExampleCompile lowers a configuration to the match/action rules a
// deployment server installs.
func ExampleCompile() {
	cfg, _ := pvnc.Parse(`
pvnc example
owner alice
device 10.0.0.5
policy 100 match proto=tcp dport=443 action=tunnel:cloud
policy 0 match any action=forward
`)
	compiled, err := pvnc.Compile(cfg, pvnc.CompileOptions{Cookie: 7, UpstreamPort: 1})
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	for _, fm := range compiled.FlowMods {
		fmt.Printf("prio=%d %s -> %v\n", fm.Priority, fm.Match.String(), fm.Actions)
	}
	// Output:
	// prio=100 src=10.0.0.5/32,proto=6,dport=443 -> [tunnel:cloud]
	// prio=100 dst=10.0.0.5/32,proto=6,sport=443 -> [tunnel:cloud]
	// prio=0 src=10.0.0.5/32 -> [output:1]
	// prio=0 dst=10.0.0.5/32 -> [output:0]
}

// ExampleReduce shows subset renegotiation: a provider that cannot host
// one middlebox type still gets a valid, deployable configuration.
func ExampleReduce() {
	cfg, _ := pvnc.Parse(`
pvnc example
owner alice
device 10.0.0.5
middlebox pii pii-detect
middlebox vid transcoder
chain a pii
chain b vid
policy 100 match proto=tcp dport=80 via=a action=forward
policy 90 match proto=tcp dport=8080 via=b action=forward
policy 0 match any action=forward
`)
	reduced, dropped, _ := pvnc.Reduce(cfg, map[string]bool{"pii-detect": true})
	fmt.Println("kept middleboxes:", len(reduced.Middleboxes))
	fmt.Println("dropped:", dropped)
	fmt.Println("still valid:", len(reduced.Validate()) == 0)
	// Output:
	// kept middleboxes: 1
	// dropped: [middlebox:vid chain:b policy-via:90]
	// still valid: true
}
