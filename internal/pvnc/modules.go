package pvnc

import "fmt"

// WithMiddlebox returns a new PVNC with an additional middlebox
// declaration — how PVN Store modules get grafted into a user's
// configuration (§3.1: "PVNC components can be provided as independent
// entities and shared among users"). The result is re-parsed from
// canonical text so its Source and Hash are authoritative; the caller
// still needs to reference the new middlebox from a chain/policy for it
// to see traffic.
func WithMiddlebox(p *PVNC, mb Middlebox) (*PVNC, error) {
	for _, existing := range p.Middleboxes {
		if existing.LocalName == mb.LocalName {
			return nil, fmt.Errorf("pvnc: middlebox %q already present", mb.LocalName)
		}
	}
	clone := *p
	clone.Middleboxes = append(append([]Middlebox(nil), p.Middleboxes...), mb)
	return Parse(clone.Format())
}

// WithChain returns a new PVNC with an additional chain over existing
// middleboxes.
func WithChain(p *PVNC, c Chain) (*PVNC, error) {
	clone := *p
	clone.Chains = append(append([]Chain(nil), p.Chains...), c)
	out, err := Parse(clone.Format())
	if err != nil {
		return nil, err
	}
	if errs := out.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("pvnc: chain addition invalid: %v", errs[0])
	}
	return out, nil
}

// WithPolicy returns a new PVNC with an additional policy.
func WithPolicy(p *PVNC, pol Policy) (*PVNC, error) {
	clone := *p
	clone.Policies = append(append([]Policy(nil), p.Policies...), pol)
	out, err := Parse(clone.Format())
	if err != nil {
		return nil, err
	}
	if errs := out.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("pvnc: policy addition invalid: %v", errs[0])
	}
	return out, nil
}
