// Package discovery implements the PVN Discovery and Deployment Protocol
// (§3.1): discovery messages with sequence numbers and requested
// standards/resources, provider offers with per-module pricing and
// expiry, the device-side negotiator with the paper's three fallback
// options (wait for a better offer, renegotiate a subset, deploy only
// what is offered free), and deployment requests/responses.
//
// The package is transport-independent: messages are plain JSON-able
// structs moved by netsim in simulations and by the UDP/TCP daemon in
// cmd/pvnd.
package discovery

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pvn/internal/pvnc"
)

// StandardMatchAction is the rule language this implementation speaks;
// providers and devices must share at least one standard.
const StandardMatchAction = "match-action/1"

// StandardMiddlebox is the middlebox container format.
const StandardMiddlebox = "mbx/1"

// DM is a discovery message, broadcast when a device attaches to a
// network (paper: during DHCP negotiation or via UPnP-style protocols).
type DM struct {
	// Seq increments for each discovery attempt by this device.
	Seq uint64 `json:"seq"`
	// DeviceID identifies the requesting device.
	DeviceID string `json:"device_id"`
	// Standards lists the languages/standards the PVNC uses.
	Standards []string `json:"standards"`
	// PVNCHash identifies the configuration (the PVNC itself may be
	// fetched from cloud storage by URI; the hash binds the two).
	PVNCHash string `json:"pvnc_hash"`
	// PVNCURI optionally points at a globally accessible PVNC object.
	PVNCURI string `json:"pvnc_uri,omitempty"`
	// RequiredTypes are the middlebox types the PVNC instantiates.
	RequiredTypes []string `json:"required_types"`
	// Resources estimates the footprint of the requested deployment.
	Resources pvnc.Estimate `json:"resources"`
}

// Offer is a provider's response to a DM.
type Offer struct {
	OfferID  string `json:"offer_id"`
	Provider string `json:"provider"`
	// DMSeq echoes the sequence number of the DM this offer answers, so
	// a device retrying over a lossy channel can discard offers that
	// belong to an earlier attempt (stale-reply suppression).
	DMSeq uint64 `json:"dm_seq,omitempty"`
	// DeployServer is where to send the deployment request.
	DeployServer string   `json:"deploy_server"`
	Standards    []string `json:"standards"`
	// SupportedTypes is the subset of RequiredTypes the provider can
	// host (may be all of them).
	SupportedTypes []string `json:"supported_types"`
	// PricePerModule maps middlebox type to price in microcredits; 0
	// means the module is free (e.g. ad-funded tier, §3.3).
	PricePerModule map[string]int64 `json:"price_per_module"`
	// TotalCost prices the supported subset of the request.
	TotalCost int64 `json:"total_cost"`
	// ExpiresAt is simulated time after which the offer is void.
	ExpiresAt time.Duration `json:"expires_at"`
}

// SupportsAll reports whether the offer covers every required type.
func (o *Offer) SupportsAll(required []string) bool {
	sup := map[string]bool{}
	for _, t := range o.SupportedTypes {
		sup[t] = true
	}
	for _, t := range required {
		if !sup[t] {
			return false
		}
	}
	return true
}

// DeployRequest asks a provider to install a PVNC. Exactly one of
// PVNCSource and PVNCURI is set: the paper allows the configuration to
// be "stored on the device or provided to an access network as a URI to
// a globally accessible PVNC object (e.g., in cloud storage)" (§3.1).
type DeployRequest struct {
	OfferID  string `json:"offer_id"`
	DeviceID string `json:"device_id"`
	// PVNCSource is the full configuration text (possibly reduced
	// during negotiation).
	PVNCSource string `json:"pvnc_source,omitempty"`
	// PVNCURI points at the configuration object; PVNCHash binds the
	// request to its exact content so neither the store nor the network
	// can substitute a different configuration.
	PVNCURI  string `json:"pvnc_uri,omitempty"`
	PVNCHash string `json:"pvnc_hash,omitempty"`
	// Payment is the amount the device commits, in microcredits.
	Payment int64 `json:"payment"`
}

// DeployResponse acknowledges or rejects a deployment.
type DeployResponse struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
	// Cookie identifies the installed deployment for teardown/billing.
	Cookie uint64 `json:"cookie,omitempty"`
	// DHCPRefresh tells the device to refresh its lease to pick up new
	// addressing (§3.1).
	DHCPRefresh bool `json:"dhcp_refresh,omitempty"`
}

// ProviderPolicy is the access network's stance toward PVN requests.
type ProviderPolicy struct {
	Provider     string
	DeployServer string
	Standards    []string
	// Supported maps hosted middlebox types to per-module prices in
	// microcredits (0 = free).
	Supported map[string]int64
	// MaxMemoryBytes caps a single deployment's footprint; 0 = no cap.
	MaxMemoryBytes int64
	// OfferTTL is how long offers stay valid. Zero defaults to 30s.
	OfferTTL time.Duration
	// Disabled simulates a network with no PVN support: it never
	// answers DMs (§3.3 "coping with unavailability").
	Disabled bool

	// mu guards the mutable negotiation state below. cmd/pvnd answers
	// DMs from concurrent TCP connections and the UDP responder at once.
	mu        sync.Mutex
	nextOffer int
	// issued remembers every outstanding offer's expiry so the deploy
	// server can refuse deploys against unknown or expired offers.
	issued map[string]time.Duration
}

// OfferState classifies a quoted offer ID at deploy time.
type OfferState int

// Offer states.
const (
	// OfferUnknown means the provider never issued (or has forgotten)
	// this offer ID — e.g. it restarted since quoting it.
	OfferUnknown OfferState = iota
	// OfferExpired means the offer's TTL has passed.
	OfferExpired
	// OfferValid means the offer is live and deployable.
	OfferValid
)

// HandleDM evaluates a discovery message and returns an offer, or nil
// when the provider does not (or cannot) serve the request.
func (pp *ProviderPolicy) HandleDM(dm *DM, now time.Duration) *Offer {
	if pp.Disabled {
		return nil
	}
	if !sharesStandard(pp.Standards, dm.Standards) {
		return nil
	}
	if pp.MaxMemoryBytes > 0 && dm.Resources.MemoryBytes > pp.MaxMemoryBytes {
		return nil
	}
	var supported []string
	prices := map[string]int64{}
	var total int64
	for _, t := range dm.RequiredTypes {
		price, ok := pp.Supported[t]
		if !ok {
			continue
		}
		supported = append(supported, t)
		prices[t] = price
		total += price
	}
	ttl := pp.OfferTTL
	if ttl == 0 {
		ttl = 30 * time.Second
	}
	pp.mu.Lock()
	pp.nextOffer++
	id := fmt.Sprintf("%s-%d", pp.Provider, pp.nextOffer)
	if pp.issued == nil {
		pp.issued = make(map[string]time.Duration)
	}
	// Prune dead offers so the book stays bounded by the live set.
	for old, exp := range pp.issued {
		if now >= exp {
			delete(pp.issued, old)
		}
	}
	pp.issued[id] = now + ttl
	pp.mu.Unlock()
	return &Offer{
		OfferID:        id,
		Provider:       pp.Provider,
		DMSeq:          dm.Seq,
		DeployServer:   pp.DeployServer,
		Standards:      pp.Standards,
		SupportedTypes: supported,
		PricePerModule: prices,
		TotalCost:      total,
		ExpiresAt:      now + ttl,
	}
}

// OfferStatus reports whether an offer ID this provider quoted is still
// deployable at now. The deploy server consults it before installing.
func (pp *ProviderPolicy) OfferStatus(id string, now time.Duration) OfferState {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	exp, ok := pp.issued[id]
	if !ok {
		return OfferUnknown
	}
	if now >= exp {
		return OfferExpired
	}
	return OfferValid
}

// ForgetOffers drops the entire offer book — what a provider crash does
// to its in-memory negotiation state.
func (pp *ProviderPolicy) ForgetOffers() {
	pp.mu.Lock()
	pp.issued = nil
	pp.mu.Unlock()
}

func sharesStandard(a, b []string) bool {
	set := map[string]bool{}
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		if set[s] {
			return true
		}
	}
	return false
}

// Strategy is the device's fallback behaviour when an offer is partial or
// too expensive (§3.1 lists these options).
type Strategy int

// Negotiation strategies.
const (
	// StrategyStrict accepts only offers covering the full PVNC within
	// budget.
	StrategyStrict Strategy = iota
	// StrategyReduce accepts partial offers by deploying the supported
	// subset of the PVNC, still within budget.
	StrategyReduce
	// StrategyFreeOnly deploys only the modules offered at zero cost.
	StrategyFreeOnly
)

// Negotiator drives the device side of discovery.
type Negotiator struct {
	Config *pvnc.PVNC
	// BudgetMicro is the maximum the user will pay, in microcredits.
	BudgetMicro int64
	Strategy    Strategy
	DeviceID    string

	seq uint64
}

// NewNegotiator builds a negotiator for a validated configuration.
func NewNegotiator(deviceID string, cfg *pvnc.PVNC, budget int64, strat Strategy) *Negotiator {
	return &Negotiator{DeviceID: deviceID, Config: cfg, BudgetMicro: budget, Strategy: strat}
}

// requiredTypes lists the distinct middlebox types in the config.
func requiredTypes(cfg *pvnc.PVNC) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range cfg.Middleboxes {
		if !seen[m.Type] {
			seen[m.Type] = true
			out = append(out, m.Type)
		}
	}
	sort.Strings(out)
	return out
}

// MakeDM produces the next discovery message (sequence number advances).
func (n *Negotiator) MakeDM() *DM {
	n.seq++
	return &DM{
		Seq:           n.seq,
		DeviceID:      n.DeviceID,
		Standards:     []string{StandardMatchAction, StandardMiddlebox},
		PVNCHash:      n.Config.Hash(),
		RequiredTypes: requiredTypes(n.Config),
		Resources:     n.Config.Estimate(),
	}
}

// Decision is the negotiator's verdict on one offer.
type Decision struct {
	// Accept is true when the device should send a DeployRequest.
	Accept bool
	// Reason explains a rejection.
	Reason string
	// FinalConfig is the (possibly reduced) PVNC to deploy.
	FinalConfig *pvnc.PVNC
	// Cost is the committed payment in microcredits.
	Cost int64
	// Dropped lists PVNC elements lost to reduction.
	Dropped []string
}

// Evaluate applies the strategy to an offer.
func (n *Negotiator) Evaluate(offer *Offer, now time.Duration) Decision {
	if offer == nil {
		return Decision{Reason: "no offer"}
	}
	// An offer is void from the instant it expires (now >= ExpiresAt):
	// the provider's deploy server enforces the same boundary, so a
	// device that accepted at now == ExpiresAt would only be NACKed.
	if now >= offer.ExpiresAt {
		return Decision{Reason: "offer expired"}
	}
	required := requiredTypes(n.Config)

	switch n.Strategy {
	case StrategyStrict:
		if !offer.SupportsAll(required) {
			return Decision{Reason: "partial offer under strict strategy"}
		}
		if offer.TotalCost > n.BudgetMicro {
			return Decision{Reason: fmt.Sprintf("cost %d exceeds budget %d", offer.TotalCost, n.BudgetMicro)}
		}
		return Decision{Accept: true, FinalConfig: n.Config, Cost: offer.TotalCost}

	case StrategyReduce:
		supported := map[string]bool{}
		var cost int64
		for _, t := range offer.SupportedTypes {
			supported[t] = true
			cost += offer.PricePerModule[t]
		}
		// Trim types until the subset fits the budget, dropping the
		// most expensive first (keeps the most functionality per
		// credit). Price ties break by type name (last in sort order
		// goes first) so the reduced config is the same on every run —
		// map iteration order must not leak into the deployed PVNC.
		for cost > n.BudgetMicro {
			names := make([]string, 0, len(supported))
			for t := range supported {
				names = append(names, t)
			}
			sort.Strings(names)
			worst, worstPrice := "", int64(-1)
			for _, t := range names {
				if offer.PricePerModule[t] >= worstPrice {
					worst, worstPrice = t, offer.PricePerModule[t]
				}
			}
			if worst == "" {
				break
			}
			delete(supported, worst)
			cost -= worstPrice
		}
		reduced, dropped, err := pvnc.Reduce(n.Config, supported)
		if err != nil {
			return Decision{Reason: "reduction failed: " + err.Error()}
		}
		return Decision{Accept: true, FinalConfig: reduced, Cost: cost, Dropped: dropped}

	case StrategyFreeOnly:
		free := map[string]bool{}
		for _, t := range offer.SupportedTypes {
			if offer.PricePerModule[t] == 0 {
				free[t] = true
			}
		}
		reduced, dropped, err := pvnc.Reduce(n.Config, free)
		if err != nil {
			return Decision{Reason: "reduction failed: " + err.Error()}
		}
		return Decision{Accept: true, FinalConfig: reduced, Cost: 0, Dropped: dropped}
	}
	return Decision{Reason: "unknown strategy"}
}

// BestOffer picks the acceptable offer with the lowest cost (ties by
// provider name for determinism). It returns the offer, its decision and
// true, or false when nothing is acceptable — the "reject and wait, or
// eschew PVNs entirely" outcome.
func (n *Negotiator) BestOffer(offers []*Offer, now time.Duration) (*Offer, Decision, bool) {
	var bestOffer *Offer
	var bestDec Decision
	for _, o := range offers {
		dec := n.Evaluate(o, now)
		if !dec.Accept {
			continue
		}
		if bestOffer == nil ||
			dec.Cost < bestDec.Cost ||
			(dec.Cost == bestDec.Cost && len(dec.Dropped) < len(bestDec.Dropped)) ||
			(dec.Cost == bestDec.Cost && len(dec.Dropped) == len(bestDec.Dropped) && o.Provider < bestOffer.Provider) {
			bestOffer, bestDec = o, dec
		}
	}
	return bestOffer, bestDec, bestOffer != nil
}

// CounterDM implements the paper's renegotiation option: "the device
// also can choose to send a new DM with a PVNC that includes a subset of
// the original configuration, to retrieve a new price" (§3.1). It
// reduces the negotiator's configuration to the offer's supported types
// and returns the next DM quoting only that subset (with an advanced
// sequence number), plus the reduced config the DM describes. ok is
// false when the offer supports nothing, i.e. there is no subset worth
// quoting.
func (n *Negotiator) CounterDM(offer *Offer) (*DM, *pvnc.PVNC, bool) {
	if offer == nil || len(offer.SupportedTypes) == 0 {
		return nil, nil, false
	}
	supported := map[string]bool{}
	for _, t := range offer.SupportedTypes {
		supported[t] = true
	}
	reduced, _, err := pvnc.Reduce(n.Config, supported)
	if err != nil {
		return nil, nil, false
	}
	n.seq++
	return &DM{
		Seq:           n.seq,
		DeviceID:      n.DeviceID,
		Standards:     []string{StandardMatchAction, StandardMiddlebox},
		PVNCHash:      reduced.Hash(),
		RequiredTypes: requiredTypes(reduced),
		Resources:     reduced.Estimate(),
	}, reduced, true
}

// BuildDeployRequest constructs the deployment request for an accepted
// decision. PVNCHash binds the request to the exact configuration the
// device negotiated, arming the server's tamper check even when the
// source travels inline (a hostile path could rewrite it either way).
func (n *Negotiator) BuildDeployRequest(offer *Offer, dec Decision) *DeployRequest {
	return &DeployRequest{
		OfferID:    offer.OfferID,
		DeviceID:   n.DeviceID,
		PVNCSource: dec.FinalConfig.Source(),
		PVNCHash:   dec.FinalConfig.Hash(),
		Payment:    dec.Cost,
	}
}
