package discovery

import (
	"fmt"
	"time"

	"pvn/internal/pvnc"
)

// This file implements the device-side discovery/deployment lifecycle as
// a fault-tolerant state machine (§3.3 "coping with unavailability").
// The plain Negotiator assumes a lossless, single-shot exchange; Session
// drives the same MakeDM→Evaluate→Deploy pipeline under deadlines,
// capped exponential backoff with jitter, seq-based duplicate
// suppression, one CounterDM renegotiation round, and a terminal
// fallback signal telling the caller to tunnel out (Fig 1c) when the
// access network never yields a deployment.
//
// Session is transport- and clock-agnostic: netsim experiments drive it
// on the simulated clock through fault injectors, and a real daemon
// could drive it on wall-clock timers.

// SessionClock is the timer surface a Session needs. netsim.Clock
// satisfies it.
type SessionClock interface {
	Now() time.Duration
	Schedule(d time.Duration, fn func())
}

// Backoff computes capped exponential retry delays with optional jitter.
type Backoff struct {
	// Initial is the delay before the first retry. Zero means 100ms.
	Initial time.Duration
	// Max caps the delay, jitter included: no returned delay ever
	// exceeds it. Zero means 5s.
	Max time.Duration
	// Factor multiplies the delay per retry. Values < 1 mean 2.
	Factor float64
	// Jitter in [0,1] spreads each delay uniformly over
	// [d*(1-Jitter), d*(1+Jitter)], desynchronizing device herds after
	// a provider restart. Zero disables jitter.
	Jitter float64
}

// Delay returns the delay before retry number retry (0-based), drawing
// jitter from rand (a [0,1) source; nil means no jitter).
func (b Backoff) Delay(retry int, rand func() float64) time.Duration {
	initial, max, factor := b.Initial, b.Max, b.Factor
	if initial <= 0 {
		initial = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if factor < 1 {
		factor = 2
	}
	d := float64(initial)
	for i := 0; i < retry; i++ {
		d *= factor
		if d >= float64(max) {
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	if b.Jitter > 0 && rand != nil {
		d *= 1 - b.Jitter + 2*b.Jitter*rand()
		if d > float64(max) {
			d = float64(max)
		}
	}
	return time.Duration(d)
}

// SessionConfig tunes the lifecycle state machine.
type SessionConfig struct {
	// OfferWindow is how long each DM attempt collects offers before the
	// negotiator picks. Zero means 500ms.
	OfferWindow time.Duration
	// DeployTimeout bounds each wait for a DeployResponse before the
	// request is retransmitted. Zero means 1s.
	DeployTimeout time.Duration
	// MaxAttempts caps DM attempts (including the first). Zero means 8.
	MaxAttempts int
	// DeployRetries caps retransmissions of one DeployRequest before the
	// session falls back to a fresh discovery round. Zero means 3.
	DeployRetries int
	// Deadline bounds the whole session from Start; when it passes the
	// session finishes with Fallback set. Zero means 30s.
	Deadline time.Duration
	// Backoff spaces DM retries.
	Backoff Backoff
	// Renegotiate enables one CounterDM round quoting the supported
	// subset when no full offer is acceptable (§3.1).
	Renegotiate bool
	// Rand supplies jitter draws in [0,1); nil disables jitter. Feed it
	// a seeded netsim.RNG for reproducible schedules.
	Rand func() float64
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.OfferWindow <= 0 {
		c.OfferWindow = 500 * time.Millisecond
	}
	if c.DeployTimeout <= 0 {
		c.DeployTimeout = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.DeployRetries <= 0 {
		c.DeployRetries = 3
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	return c
}

// SessionResult is the terminal outcome of one lifecycle run.
type SessionResult struct {
	// Deployed is true when the provider ACKed a deployment.
	Deployed bool
	// Fallback is true when the session exhausted its deadline or
	// attempts without a deployment: the caller should tunnel out to a
	// trusted PVN location (or run bare).
	Fallback bool
	// Reason explains a fallback.
	Reason string
	// Offer/Decision/Response record the accepted negotiation.
	Offer    *Offer
	Decision Decision
	Response *DeployResponse
	// Elapsed is time from Start to the terminal event —
	// time-to-connectivity when combined with the fallback path.
	Elapsed time.Duration

	// Robustness counters.
	Attempts     int // DMs sent (including CounterDM rounds)
	Retries      int // backoff retries + deploy retransmissions
	StaleOffers  int // offers answering an earlier DM seq
	DupOffers    int // duplicate offer IDs within one window
	DupResponses int // DeployResponses outside a deploy wait
	Renegotiated bool
	DeployNACKs  int
	OffersSeen   int
}

type sessionState int

const (
	sessionIdle sessionState = iota
	sessionDiscovering
	sessionDeploying
	sessionDone
)

// Session drives one device's discovery→deploy lifecycle. Wire Send to
// the transport (it receives *DM and *DeployRequest values), feed
// arriving messages to HandleOffer/HandleDeployResponse, and the
// terminal SessionResult arrives via Done exactly once. Session is not
// goroutine-safe: drive it from one event loop (netsim's clock is one).
type Session struct {
	Neg    *Negotiator
	Clock  SessionClock
	Send   func(msg interface{})
	Done   func(SessionResult)
	Config SessionConfig

	// OverlayQuery, when set, is consulted on every DM attempt beside
	// the broadcast transport: it receives the DM and a delivery
	// callback that feeds synthesized offers into the session exactly
	// like offers arriving off the wire (same stale-seq and duplicate
	// suppression). The decentralized discovery overlay plugs in here;
	// the broadcast path keeps working unchanged as the fallback.
	OverlayQuery func(dm *DM, deliver func(*Offer))

	cfg     SessionConfig
	state   sessionState
	started time.Duration

	// Discovery state.
	curSeq     uint64
	offers     []*Offer
	seenOffers map[string]bool
	timerGen   int

	// Renegotiation state: evalNeg evaluates offers (it switches to a
	// strict negotiator over the reduced config after a CounterDM).
	evalNeg *Negotiator

	// Deploy state.
	pendingReq   *DeployRequest
	pendingOffer *Offer
	pendingDec   Decision
	deploySends  int

	result SessionResult
}

// Start begins the lifecycle at the clock's current instant.
func (s *Session) Start() {
	if s.state != sessionIdle {
		return
	}
	s.cfg = s.Config.withDefaults()
	s.evalNeg = s.Neg
	s.started = s.Clock.Now()
	s.Clock.Schedule(s.cfg.Deadline, func() {
		if s.state != sessionDone {
			s.finishFallback("deadline exceeded")
		}
	})
	s.sendDM(s.Neg.MakeDM())
}

// sendDM transmits dm and opens a fresh offer-collection window.
func (s *Session) sendDM(dm *DM) {
	s.state = sessionDiscovering
	s.curSeq = dm.Seq
	s.offers = nil
	s.seenOffers = make(map[string]bool)
	s.result.Attempts++
	s.timerGen++
	gen := s.timerGen
	s.Send(dm)
	if s.OverlayQuery != nil {
		s.OverlayQuery(dm, s.HandleOffer)
	}
	s.Clock.Schedule(s.cfg.OfferWindow, func() { s.closeOfferWindow(gen) })
}

// HandleOffer feeds one arriving offer into the state machine. Offers
// answering an earlier DM seq are stale retransmissions and dropped;
// duplicate offer IDs within a window are counted and dropped.
func (s *Session) HandleOffer(o *Offer) {
	if s.state != sessionDiscovering || o == nil {
		return
	}
	if o.DMSeq != s.curSeq {
		s.result.StaleOffers++
		return
	}
	if s.seenOffers[o.OfferID] {
		s.result.DupOffers++
		return
	}
	s.seenOffers[o.OfferID] = true
	s.offers = append(s.offers, o)
	s.result.OffersSeen++
}

// closeOfferWindow picks the best offer (or schedules a retry) when the
// collection window for DM generation gen ends.
func (s *Session) closeOfferWindow(gen int) {
	if s.state != sessionDiscovering || gen != s.timerGen {
		return
	}
	now := s.Clock.Now()
	if offer, dec, ok := s.evalNeg.BestOffer(s.offers, now); ok {
		s.startDeploy(offer, dec)
		return
	}
	if len(s.offers) == 0 {
		s.retryDiscovery("no offers")
		return
	}
	// Offers arrived but none is acceptable. Try one CounterDM round
	// quoting the supported subset before backing off.
	if s.cfg.Renegotiate && !s.result.Renegotiated {
		if dm, reduced, ok := s.counterDM(); ok {
			s.result.Renegotiated = true
			s.evalNeg = NewNegotiator(s.Neg.DeviceID, reduced, s.Neg.BudgetMicro, StrategyStrict)
			s.sendDM(dm)
			return
		}
	}
	s.retryDiscovery("no acceptable offer")
}

// counterDM picks the offer covering the most types and builds the
// subset re-quote from the original negotiator (so DM seqs keep
// advancing on one counter).
func (s *Session) counterDM() (*DM, *pvnc.PVNC, bool) {
	var best *Offer
	for _, o := range s.offers {
		if best == nil || len(o.SupportedTypes) > len(best.SupportedTypes) {
			best = o
		}
	}
	return s.Neg.CounterDM(best)
}

// retryDiscovery backs off and sends the next DM, or gives up when the
// attempt budget or deadline is spent.
func (s *Session) retryDiscovery(why string) {
	if s.result.Attempts >= s.cfg.MaxAttempts {
		s.finishFallback(fmt.Sprintf("%s after %d attempts", why, s.result.Attempts))
		return
	}
	delay := s.cfg.Backoff.Delay(s.result.Retries, s.cfg.Rand)
	if s.Clock.Now()+delay-s.started >= s.cfg.Deadline {
		s.finishFallback(why + " and deadline would pass during backoff")
		return
	}
	s.result.Retries++
	s.timerGen++
	gen := s.timerGen
	s.Clock.Schedule(delay, func() {
		if s.state != sessionDiscovering || gen != s.timerGen {
			return
		}
		// Renegotiation is per-attempt: a fresh round quotes the full
		// config again (the provider mix may have changed).
		s.evalNeg = s.Neg
		s.sendDM(s.Neg.MakeDM())
	})
}

// startDeploy sends the deployment request and arms its retransmission
// timer.
func (s *Session) startDeploy(offer *Offer, dec Decision) {
	s.state = sessionDeploying
	s.pendingOffer = offer
	s.pendingDec = dec
	s.pendingReq = s.evalNeg.BuildDeployRequest(offer, dec)
	s.deploySends = 0
	s.transmitDeploy()
}

func (s *Session) transmitDeploy() {
	s.deploySends++
	s.timerGen++
	gen := s.timerGen
	s.Send(s.pendingReq)
	s.Clock.Schedule(s.cfg.DeployTimeout, func() { s.deployTimeout(gen) })
}

// deployTimeout retransmits the request (the server ACKs duplicates
// idempotently) or abandons the offer for a fresh discovery round.
func (s *Session) deployTimeout(gen int) {
	if s.state != sessionDeploying || gen != s.timerGen {
		return
	}
	if s.deploySends <= s.cfg.DeployRetries {
		s.result.Retries++
		s.transmitDeploy()
		return
	}
	// Retransmission budget spent: abandon the offer and re-discover.
	// The state must leave sessionDeploying here (as on the NACK path)
	// or the retry callback scheduled by retryDiscovery would no-op.
	s.state = sessionDiscovering
	s.retryDiscovery("deploy unacknowledged")
}

// HandleDeployResponse feeds one arriving deploy ACK/NACK into the state
// machine. Responses outside a deploy wait (duplicates, or answers to an
// abandoned request) are counted and dropped.
func (s *Session) HandleDeployResponse(r *DeployResponse) {
	if s.state != sessionDeploying || r == nil {
		s.result.DupResponses++
		return
	}
	if r.OK {
		s.result.Deployed = true
		s.result.Offer = s.pendingOffer
		s.result.Decision = s.pendingDec
		s.result.Response = r
		s.finish()
		return
	}
	// NACK: the offer may have expired mid-flight or the provider
	// restarted and forgot it. Re-discover from scratch.
	s.result.DeployNACKs++
	s.state = sessionDiscovering
	s.retryDiscovery("deploy NACK: " + r.Reason)
}

func (s *Session) finishFallback(reason string) {
	s.result.Fallback = true
	s.result.Reason = reason
	s.finish()
}

func (s *Session) finish() {
	if s.state == sessionDone {
		return
	}
	s.state = sessionDone
	s.timerGen++
	s.result.Elapsed = s.Clock.Now() - s.started
	if s.Done != nil {
		s.Done(s.result)
	}
}
