package discovery

import (
	"net"
	"testing"
	"time"
)

// udpProvider starts a provider answering discovery on a loopback UDP
// socket and returns its address.
func udpProvider(t *testing.T, policy *ProviderPolicy) net.Addr {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go ServeUDP(conn, policy, func() time.Duration { return 0 })
	return conn.LocalAddr()
}

func TestDiscoverUDPFloodsAndCollects(t *testing.T) {
	full := udpProvider(t, fullProvider())
	cheapPolicy := fullProvider()
	cheapPolicy.Provider = "isp-cheap"
	cheapPolicy.Supported = map[string]int64{"tls-verify": 1, "pii-detect": 1, "transcoder": 1}
	cheap := udpProvider(t, cheapPolicy)
	// A disabled network: bound but never answers.
	silentPolicy := fullProvider()
	silentPolicy.Disabled = true
	silent := udpProvider(t, silentPolicy)

	dev, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	n := NewNegotiator("dev1", testConfig(t), 10_000, StrategyStrict)
	offers, err := DiscoverUDP(dev, n.MakeDM(), []net.Addr{full, cheap, silent}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 {
		t.Fatalf("offers %d, want 2 (silent provider must not answer)", len(offers))
	}
	best, dec, ok := n.BestOffer(offers, 0)
	if !ok || best.Provider != "isp-cheap" || dec.Cost != 3 {
		t.Fatalf("best %+v dec %+v", best, dec)
	}
}

// TestDiscoverUDPTieBreak: two providers answer the same broadcast
// with byte-identical terms. Selection must not depend on which reply
// arrives first off the socket — BestOffer breaks the cost tie by
// provider name, so the winner is the same for every arrival order.
func TestDiscoverUDPTieBreak(t *testing.T) {
	mk := func(name string) net.Addr {
		p := fullProvider()
		p.Provider = name
		return udpProvider(t, p)
	}
	zebra, apple := mk("isp-zebra"), mk("isp-apple")

	for _, zone := range [][]net.Addr{{zebra, apple}, {apple, zebra}} {
		dev, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := NewNegotiator("dev1", testConfig(t), 10_000, StrategyStrict)
		offers, err := DiscoverUDP(dev, n.MakeDM(), zone, 300*time.Millisecond)
		dev.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(offers) != 2 {
			t.Fatalf("offers %d, want 2", len(offers))
		}
		best, dec, ok := n.BestOffer(offers, 0)
		if !ok || best.Provider != "isp-apple" {
			t.Fatalf("zone %v: best %+v, want isp-apple (name tie-break)", zone, best)
		}
		if other, odec, _ := n.BestOffer([]*Offer{offers[1], offers[0]}, 0); other.Provider != best.Provider || odec.Cost != dec.Cost {
			t.Fatalf("tie-break depends on offer order: %s vs %s", other.Provider, best.Provider)
		}
	}
}

func TestServeUDPIgnoresGarbage(t *testing.T) {
	addr := udpProvider(t, fullProvider())
	dev, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	// Garbage datagrams are silently dropped; a real DM after them still
	// gets an offer.
	dev.WriteTo([]byte("not json at all"), addr)
	dev.WriteTo([]byte(`{"seq":1}`), addr) // missing device id
	n := NewNegotiator("dev1", testConfig(t), 10_000, StrategyStrict)
	offers, err := DiscoverUDP(dev, n.MakeDM(), []net.Addr{addr}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 {
		t.Fatalf("offers %d", len(offers))
	}
}

func TestDiscoverUDPEmptyZone(t *testing.T) {
	dev, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	n := NewNegotiator("dev1", testConfig(t), 10_000, StrategyStrict)
	start := time.Now()
	offers, err := DiscoverUDP(dev, n.MakeDM(), nil, 100*time.Millisecond)
	if err != nil || len(offers) != 0 {
		t.Fatalf("offers %v err %v", offers, err)
	}
	if time.Since(start) < 90*time.Millisecond {
		t.Fatal("wait window not honored")
	}
}
