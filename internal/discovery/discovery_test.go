package discovery

import (
	"strings"
	"testing"
	"time"

	"pvn/internal/pvnc"
)

const cfgSrc = `
pvnc test-cfg
owner alice
device 10.0.0.5
middlebox tlsv tls-verify
middlebox pii pii-detect mode=block
middlebox vid transcoder
chain secure tlsv pii
chain video vid
policy 100 match proto=tcp dport=443 via=secure action=forward
policy 80 match dst=203.0.113.0/24 via=video action=forward
policy 0 match any action=forward
`

func testConfig(t *testing.T) *pvnc.PVNC {
	t.Helper()
	p, err := pvnc.Parse(cfgSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func fullProvider() *ProviderPolicy {
	return &ProviderPolicy{
		Provider:     "isp-full",
		DeployServer: "pvn-host",
		Standards:    []string{StandardMatchAction, StandardMiddlebox},
		Supported:    map[string]int64{"tls-verify": 100, "pii-detect": 200, "transcoder": 300},
	}
}

func TestMakeDMSequence(t *testing.T) {
	n := NewNegotiator("dev1", testConfig(t), 1000, StrategyStrict)
	dm1 := n.MakeDM()
	dm2 := n.MakeDM()
	if dm1.Seq != 1 || dm2.Seq != 2 {
		t.Fatalf("sequence %d,%d", dm1.Seq, dm2.Seq)
	}
	if len(dm1.RequiredTypes) != 3 {
		t.Fatalf("required types %v", dm1.RequiredTypes)
	}
	if dm1.PVNCHash == "" || dm1.Resources.NumMiddleboxes != 3 {
		t.Fatalf("dm %+v", dm1)
	}
}

func TestProviderFullOffer(t *testing.T) {
	n := NewNegotiator("dev1", testConfig(t), 1000, StrategyStrict)
	offer := fullProvider().HandleDM(n.MakeDM(), 0)
	if offer == nil {
		t.Fatal("no offer")
	}
	if !offer.SupportsAll([]string{"tls-verify", "pii-detect", "transcoder"}) {
		t.Fatalf("offer %+v", offer)
	}
	if offer.TotalCost != 600 {
		t.Fatalf("cost %d", offer.TotalCost)
	}
	if offer.ExpiresAt != 30*time.Second {
		t.Fatalf("expiry %v", offer.ExpiresAt)
	}
}

func TestProviderDisabledAndStandardMismatch(t *testing.T) {
	n := NewNegotiator("dev1", testConfig(t), 1000, StrategyStrict)
	dm := n.MakeDM()

	p := fullProvider()
	p.Disabled = true
	if p.HandleDM(dm, 0) != nil {
		t.Fatal("disabled provider answered")
	}
	q := fullProvider()
	q.Standards = []string{"proprietary/9"}
	if q.HandleDM(dm, 0) != nil {
		t.Fatal("standard-mismatched provider answered")
	}
}

func TestProviderMemoryCap(t *testing.T) {
	n := NewNegotiator("dev1", testConfig(t), 1000, StrategyStrict)
	p := fullProvider()
	p.MaxMemoryBytes = 1 // absurdly small
	if p.HandleDM(n.MakeDM(), 0) != nil {
		t.Fatal("over-capacity request got an offer")
	}
}

func TestStrictAcceptsFullOfferWithinBudget(t *testing.T) {
	n := NewNegotiator("dev1", testConfig(t), 1000, StrategyStrict)
	offer := fullProvider().HandleDM(n.MakeDM(), 0)
	dec := n.Evaluate(offer, 0)
	if !dec.Accept || dec.Cost != 600 || len(dec.Dropped) != 0 {
		t.Fatalf("decision %+v", dec)
	}
	if dec.FinalConfig.Hash() != n.Config.Hash() {
		t.Fatal("strict acceptance changed the config")
	}
}

func TestStrictRejectsPartialAndOverBudget(t *testing.T) {
	cfg := testConfig(t)
	partial := &ProviderPolicy{Provider: "isp-partial", DeployServer: "d",
		Standards: []string{StandardMatchAction},
		Supported: map[string]int64{"tls-verify": 10}}
	n := NewNegotiator("dev1", cfg, 1000, StrategyStrict)
	dec := n.Evaluate(partial.HandleDM(n.MakeDM(), 0), 0)
	if dec.Accept {
		t.Fatal("strict accepted partial offer")
	}

	n2 := NewNegotiator("dev1", cfg, 100, StrategyStrict) // budget too low
	dec = n2.Evaluate(fullProvider().HandleDM(n2.MakeDM(), 0), 0)
	if dec.Accept || !strings.Contains(dec.Reason, "budget") {
		t.Fatalf("decision %+v", dec)
	}
}

func TestExpiredOfferRejected(t *testing.T) {
	n := NewNegotiator("dev1", testConfig(t), 1000, StrategyStrict)
	offer := fullProvider().HandleDM(n.MakeDM(), 0)
	dec := n.Evaluate(offer, time.Minute) // past the 30s TTL
	if dec.Accept || !strings.Contains(dec.Reason, "expired") {
		t.Fatalf("decision %+v", dec)
	}
}

func TestReduceStrategyDeploysSubset(t *testing.T) {
	partial := &ProviderPolicy{Provider: "isp-partial", DeployServer: "d",
		Standards: []string{StandardMatchAction},
		Supported: map[string]int64{"tls-verify": 100, "pii-detect": 100}} // no transcoder
	n := NewNegotiator("dev1", testConfig(t), 1000, StrategyReduce)
	dec := n.Evaluate(partial.HandleDM(n.MakeDM(), 0), 0)
	if !dec.Accept {
		t.Fatalf("decision %+v", dec)
	}
	if dec.Cost != 200 {
		t.Fatalf("cost %d", dec.Cost)
	}
	if len(dec.FinalConfig.Middleboxes) != 2 {
		t.Fatalf("final config has %d middleboxes", len(dec.FinalConfig.Middleboxes))
	}
	if len(dec.Dropped) == 0 {
		t.Fatal("nothing reported dropped")
	}
	if errs := dec.FinalConfig.Validate(); len(errs) != 0 {
		t.Fatalf("reduced config invalid: %v", errs)
	}
}

func TestReduceStrategyRespectsBudget(t *testing.T) {
	n := NewNegotiator("dev1", testConfig(t), 350, StrategyReduce)
	dec := n.Evaluate(fullProvider().HandleDM(n.MakeDM(), 0), 0)
	if !dec.Accept {
		t.Fatalf("decision %+v", dec)
	}
	if dec.Cost > 350 {
		t.Fatalf("cost %d over budget", dec.Cost)
	}
	// Transcoder (300) is the most expensive: it goes first, leaving
	// tls-verify(100)+pii-detect(200)=300.
	if dec.Cost != 300 {
		t.Fatalf("cost %d, want 300", dec.Cost)
	}
	if len(dec.FinalConfig.Middleboxes) != 2 {
		t.Fatalf("middleboxes %d", len(dec.FinalConfig.Middleboxes))
	}
}

func TestFreeOnlyStrategy(t *testing.T) {
	p := &ProviderPolicy{Provider: "isp-freemium", DeployServer: "d",
		Standards: []string{StandardMatchAction},
		Supported: map[string]int64{"tls-verify": 0, "pii-detect": 500, "transcoder": 500}}
	n := NewNegotiator("dev1", testConfig(t), 10_000, StrategyFreeOnly)
	dec := n.Evaluate(p.HandleDM(n.MakeDM(), 0), 0)
	if !dec.Accept || dec.Cost != 0 {
		t.Fatalf("decision %+v", dec)
	}
	if len(dec.FinalConfig.Middleboxes) != 1 || dec.FinalConfig.Middleboxes[0].Type != "tls-verify" {
		t.Fatalf("final middleboxes %+v", dec.FinalConfig.Middleboxes)
	}
}

func TestBestOfferPicksCheapest(t *testing.T) {
	cheap := &ProviderPolicy{Provider: "isp-cheap", DeployServer: "d1",
		Standards: []string{StandardMatchAction},
		Supported: map[string]int64{"tls-verify": 10, "pii-detect": 10, "transcoder": 10}}
	costly := fullProvider()
	n := NewNegotiator("dev1", testConfig(t), 10_000, StrategyStrict)
	dm := n.MakeDM()
	offers := []*Offer{costly.HandleDM(dm, 0), cheap.HandleDM(dm, 0)}
	best, dec, ok := n.BestOffer(offers, 0)
	if !ok || best.Provider != "isp-cheap" || dec.Cost != 30 {
		t.Fatalf("best %+v dec %+v", best, dec)
	}
}

func TestBestOfferNoneAcceptable(t *testing.T) {
	n := NewNegotiator("dev1", testConfig(t), 1, StrategyStrict)
	offers := []*Offer{fullProvider().HandleDM(n.MakeDM(), 0), nil}
	if _, _, ok := n.BestOffer(offers, 0); ok {
		t.Fatal("accepted an unacceptable offer")
	}
}

func TestBuildDeployRequest(t *testing.T) {
	n := NewNegotiator("dev1", testConfig(t), 1000, StrategyStrict)
	offer := fullProvider().HandleDM(n.MakeDM(), 0)
	dec := n.Evaluate(offer, 0)
	req := n.BuildDeployRequest(offer, dec)
	if req.OfferID != offer.OfferID || req.DeviceID != "dev1" || req.Payment != 600 {
		t.Fatalf("request %+v", req)
	}
	reparsed, err := pvnc.Parse(req.PVNCSource)
	if err != nil {
		t.Fatalf("deploy request carries unparseable PVNC: %v", err)
	}
	if len(reparsed.Middleboxes) != 3 {
		t.Fatal("PVNC lost content")
	}
}

func TestOfferIDsUnique(t *testing.T) {
	p := fullProvider()
	n := NewNegotiator("dev1", testConfig(t), 1000, StrategyStrict)
	a := p.HandleDM(n.MakeDM(), 0)
	b := p.HandleDM(n.MakeDM(), 0)
	if a.OfferID == b.OfferID {
		t.Fatal("duplicate offer IDs")
	}
}

func TestCounterDMRenegotiation(t *testing.T) {
	partial := &ProviderPolicy{Provider: "isp-partial", DeployServer: "d",
		Standards: []string{StandardMatchAction},
		Supported: map[string]int64{"tls-verify": 100, "pii-detect": 100}}
	n := NewNegotiator("dev1", testConfig(t), 1000, StrategyStrict)
	dm1 := n.MakeDM()
	offer1 := partial.HandleDM(dm1, 0)

	// Strict rejects the partial offer; the device counters with the
	// supported subset instead.
	if dec := n.Evaluate(offer1, 0); dec.Accept {
		t.Fatal("strict accepted partial offer")
	}
	dm2, reduced, ok := n.CounterDM(offer1)
	if !ok {
		t.Fatal("counter-DM not produced")
	}
	if dm2.Seq != dm1.Seq+1 {
		t.Fatalf("sequence %d after %d", dm2.Seq, dm1.Seq)
	}
	if len(dm2.RequiredTypes) != 2 {
		t.Fatalf("counter requires %v", dm2.RequiredTypes)
	}
	if dm2.PVNCHash == dm1.PVNCHash {
		t.Fatal("counter quotes the original config")
	}
	if errs := reduced.Validate(); len(errs) != 0 {
		t.Fatalf("reduced config invalid: %v", errs)
	}

	// The provider's answer to the counter now covers everything, so a
	// strict negotiator over the REDUCED config accepts it.
	offer2 := partial.HandleDM(dm2, 0)
	n2 := NewNegotiator("dev1", reduced, 1000, StrategyStrict)
	dec := n2.Evaluate(offer2, 0)
	if !dec.Accept || dec.Cost != 200 {
		t.Fatalf("renegotiated decision %+v", dec)
	}
}

func TestCounterDMNothingSupported(t *testing.T) {
	n := NewNegotiator("dev1", testConfig(t), 1000, StrategyStrict)
	if _, _, ok := n.CounterDM(&Offer{}); ok {
		t.Fatal("counter-DM from empty offer")
	}
	if _, _, ok := n.CounterDM(nil); ok {
		t.Fatal("counter-DM from nil offer")
	}
}
