package discovery

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"
)

// The UDP transport carries discovery over real sockets — the paper's
// "during DHCP negotiation, or afterward using protocols like UPnP"
// stage (§3.1). A device sends its DM as a JSON datagram to each
// candidate provider address (limited flooding in the discovery zone);
// every PVN-supporting responder answers with an offer datagram.

// maxDatagram bounds discovery datagrams.
const maxDatagram = 64 << 10

// ServeUDP answers discovery messages on the connection until it is
// closed. now supplies offer-expiry time. Malformed datagrams are
// ignored (hostile networks get to send garbage).
func ServeUDP(conn net.PacketConn, policy *ProviderPolicy, now func() time.Duration) error {
	buf := make([]byte, maxDatagram)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("discovery: udp read: %w", err)
		}
		var dm DM
		if err := json.Unmarshal(buf[:n], &dm); err != nil || dm.DeviceID == "" {
			continue
		}
		offer := policy.HandleDM(&dm, now())
		if offer == nil {
			continue // unsupported: silence, like a PVN-free network
		}
		out, err := json.Marshal(offer)
		if err != nil {
			continue
		}
		conn.WriteTo(out, addr)
	}
}

// DiscoverUDP floods the DM to every candidate address and collects the
// offers that arrive within the wait window. Unreachable or silent
// addresses simply contribute nothing — exactly the paper's model of a
// discovery zone with mixed support.
func DiscoverUDP(conn net.PacketConn, dm *DM, candidates []net.Addr, wait time.Duration) ([]*Offer, error) {
	payload, err := json.Marshal(dm)
	if err != nil {
		return nil, fmt.Errorf("discovery: marshal DM: %w", err)
	}
	for _, addr := range candidates {
		conn.WriteTo(payload, addr)
	}
	deadline := time.Now().Add(wait) //lint:allow nondet kernel socket deadline: SetReadDeadline needs absolute wall time
	conn.SetReadDeadline(deadline)
	defer conn.SetReadDeadline(time.Time{})

	var offers []*Offer
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return offers, nil // window closed
			}
			if errors.Is(err, net.ErrClosed) {
				return offers, nil
			}
			return offers, fmt.Errorf("discovery: udp read: %w", err)
		}
		var offer Offer
		if err := json.Unmarshal(buf[:n], &offer); err != nil || offer.OfferID == "" {
			continue
		}
		offers = append(offers, &offer)
	}
}
