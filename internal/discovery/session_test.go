package discovery

import (
	"strings"
	"testing"
	"time"

	"pvn/internal/netsim"
	"pvn/internal/pvnc"
)

const sessCfgSrc = `
pvnc sess
owner alice
device 10.0.0.5
middlebox tlsv tls-verify
middlebox pii pii-detect mode=block
chain secure tlsv pii
policy 100 match proto=tcp dport=443 via=secure action=forward
policy 0 match any action=forward
`

func sessConfig(t *testing.T) *pvnc.PVNC {
	t.Helper()
	cfg, err := pvnc.Parse(sessCfgSrc)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func fullPolicy() *ProviderPolicy {
	return &ProviderPolicy{
		Provider: "isp", DeployServer: "d",
		Standards: []string{StandardMatchAction, StandardMiddlebox},
		Supported: map[string]int64{"tls-verify": 50, "pii-detect": 100},
	}
}

// wireSession connects a session to an in-test provider over a pair of
// fault injectors (device→provider, provider→device). deploy handles
// DeployRequests on the provider.
func wireSession(s *Session, clock *netsim.Clock, pp *ProviderPolicy,
	deploy func(*DeployRequest) *DeployResponse, up, down *netsim.FaultInjector) {
	s.Clock = clock
	s.Send = func(msg interface{}) {
		switch m := msg.(type) {
		case *DM:
			up.Deliver(clock, func() {
				offer := pp.HandleDM(m, clock.Now())
				if offer == nil {
					return
				}
				down.Deliver(clock, func() { s.HandleOffer(offer) })
			})
		case *DeployRequest:
			up.Deliver(clock, func() {
				resp := deploy(m)
				down.Deliver(clock, func() { s.HandleDeployResponse(resp) })
			})
		}
	}
}

func okDeploy(cookie uint64) func(*DeployRequest) *DeployResponse {
	return func(*DeployRequest) *DeployResponse {
		return &DeployResponse{OK: true, Cookie: cookie, DHCPRefresh: true}
	}
}

func noFaults() *netsim.FaultInjector {
	return netsim.NewFaultInjector(netsim.FaultConfig{DelayMin: time.Millisecond, DelayMax: time.Millisecond}, netsim.NewRNG(1))
}

func TestSessionHappyPath(t *testing.T) {
	clock := &netsim.Clock{}
	s := &Session{Neg: NewNegotiator("dev1", sessConfig(t), 1000, StrategyStrict)}
	var got *SessionResult
	s.Done = func(r SessionResult) { got = &r }
	wireSession(s, clock, fullPolicy(), okDeploy(7), noFaults(), noFaults())
	s.Start()
	clock.Run()
	if got == nil || !got.Deployed || got.Fallback {
		t.Fatalf("result %+v", got)
	}
	if got.Attempts != 1 || got.Retries != 0 {
		t.Fatalf("attempts=%d retries=%d", got.Attempts, got.Retries)
	}
	if got.Response.Cookie != 7 {
		t.Fatalf("cookie %d", got.Response.Cookie)
	}
}

// TestSessionRetriesThroughLoss drops the first two DMs; the session
// must back off and succeed on the third attempt.
func TestSessionRetriesThroughLoss(t *testing.T) {
	clock := &netsim.Clock{}
	pp := fullPolicy()
	s := &Session{
		Neg:    NewNegotiator("dev1", sessConfig(t), 1000, StrategyStrict),
		Config: SessionConfig{Backoff: Backoff{Initial: 50 * time.Millisecond}},
	}
	var got *SessionResult
	s.Done = func(r SessionResult) { got = &r }
	dms := 0
	s.Clock = clock
	s.Send = func(msg interface{}) {
		switch m := msg.(type) {
		case *DM:
			dms++
			if dms <= 2 {
				return // eaten by the network
			}
			offer := pp.HandleDM(m, clock.Now())
			clock.Schedule(time.Millisecond, func() { s.HandleOffer(offer) })
		case *DeployRequest:
			clock.Schedule(time.Millisecond, func() { s.HandleDeployResponse(okDeploy(1)(m)) })
		}
	}
	s.Start()
	clock.Run()
	if got == nil || !got.Deployed {
		t.Fatalf("result %+v", got)
	}
	if got.Attempts != 3 || got.Retries != 2 {
		t.Fatalf("attempts=%d retries=%d", got.Attempts, got.Retries)
	}
	// Two offer windows (500ms default) + backoff (50ms, 100ms) precede
	// the successful attempt.
	if got.Elapsed < 2*500*time.Millisecond+150*time.Millisecond {
		t.Fatalf("elapsed %v implausibly small", got.Elapsed)
	}
}

// TestSessionSuppressesDuplicatesAndStales: duplicated offers within a
// window and offers answering an old DM seq are both dropped.
func TestSessionSuppressesDuplicatesAndStales(t *testing.T) {
	clock := &netsim.Clock{}
	pp := fullPolicy()
	s := &Session{Neg: NewNegotiator("dev1", sessConfig(t), 1000, StrategyStrict)}
	var got *SessionResult
	s.Done = func(r SessionResult) { got = &r }
	s.Clock = clock
	s.Send = func(msg interface{}) {
		switch m := msg.(type) {
		case *DM:
			offer := pp.HandleDM(m, clock.Now())
			stale := *offer
			stale.DMSeq = m.Seq + 100 // answers a DM never sent
			clock.Schedule(time.Millisecond, func() {
				s.HandleOffer(offer)
				s.HandleOffer(offer) // duplicated in flight
				s.HandleOffer(&stale)
			})
		case *DeployRequest:
			clock.Schedule(time.Millisecond, func() { s.HandleDeployResponse(okDeploy(1)(m)) })
		}
	}
	s.Start()
	clock.Run()
	if got == nil || !got.Deployed {
		t.Fatalf("result %+v", got)
	}
	if got.DupOffers != 1 || got.StaleOffers != 1 || got.OffersSeen != 1 {
		t.Fatalf("dup=%d stale=%d seen=%d", got.DupOffers, got.StaleOffers, got.OffersSeen)
	}
}

// TestSessionRetransmitsDeploy: the first deploy ACK is lost, forcing a
// retransmission; the retransmitted request draws a duplicated NACK
// whose second copy (arriving during the backoff that follows) is
// counted and dropped, and the next discovery round deploys cleanly.
func TestSessionRetransmitsDeploy(t *testing.T) {
	clock := &netsim.Clock{}
	pp := fullPolicy()
	s := &Session{
		Neg: NewNegotiator("dev1", sessConfig(t), 1000, StrategyStrict),
		Config: SessionConfig{
			DeployTimeout: 100 * time.Millisecond,
			Backoff:       Backoff{Initial: 50 * time.Millisecond},
		},
	}
	var got *SessionResult
	s.Done = func(r SessionResult) { got = &r }
	deploys := 0
	s.Clock = clock
	s.Send = func(msg interface{}) {
		switch m := msg.(type) {
		case *DM:
			offer := pp.HandleDM(m, clock.Now())
			clock.Schedule(time.Millisecond, func() { s.HandleOffer(offer) })
		case *DeployRequest:
			deploys++
			switch deploys {
			case 1:
				// ACK lost: the session must retransmit.
			case 2:
				nack := &DeployResponse{OK: false, Reason: "busy"}
				clock.Schedule(time.Millisecond, func() { s.HandleDeployResponse(nack) })
				clock.Schedule(2*time.Millisecond, func() { s.HandleDeployResponse(nack) }) // duplicated in flight
			default:
				resp := okDeploy(9)(m)
				clock.Schedule(time.Millisecond, func() { s.HandleDeployResponse(resp) })
			}
		}
	}
	s.Start()
	clock.Run()
	if got == nil || !got.Deployed {
		t.Fatalf("result %+v", got)
	}
	if deploys != 3 {
		t.Fatalf("deploys=%d", deploys)
	}
	if got.Retries != 2 { // one deploy retransmit + one post-NACK backoff
		t.Fatalf("retries=%d", got.Retries)
	}
	if got.DupResponses != 1 || got.DeployNACKs != 1 {
		t.Fatalf("dupResponses=%d nacks=%d", got.DupResponses, got.DeployNACKs)
	}
}

// TestSessionRediscoversWhenAllDeployACKsLost: every ACK for the first
// round's deploy is dropped. Once the retransmission budget is spent the
// session must run a fresh discovery round and deploy again — this used
// to stall (and then tunnel out at the deadline) because deployTimeout
// called retryDiscovery while the state was still sessionDeploying, so
// the scheduled retry callback no-opped and no DM was ever resent.
func TestSessionRediscoversWhenAllDeployACKsLost(t *testing.T) {
	clock := &netsim.Clock{}
	pp := fullPolicy()
	s := &Session{
		Neg: NewNegotiator("dev1", sessConfig(t), 1000, StrategyStrict),
		Config: SessionConfig{
			DeployTimeout: 50 * time.Millisecond,
			DeployRetries: 2,
			Backoff:       Backoff{Initial: 20 * time.Millisecond},
		},
	}
	var got *SessionResult
	s.Done = func(r SessionResult) { got = &r }
	dms, deploys := 0, 0
	s.Clock = clock
	s.Send = func(msg interface{}) {
		switch m := msg.(type) {
		case *DM:
			dms++
			offer := pp.HandleDM(m, clock.Now())
			clock.Schedule(time.Millisecond, func() { s.HandleOffer(offer) })
		case *DeployRequest:
			deploys++
			if dms == 1 {
				return // the first round's deploy ACKs all vanish
			}
			resp := okDeploy(5)(m)
			clock.Schedule(time.Millisecond, func() { s.HandleDeployResponse(resp) })
		}
	}
	s.Start()
	clock.Run()
	if got == nil || !got.Deployed || got.Fallback {
		t.Fatalf("result %+v", got)
	}
	if dms != 2 {
		t.Fatalf("discovery rounds %d, want a fresh round after deploy went unacknowledged", dms)
	}
	// Round one: initial send + 2 retransmissions; round two: one ACKed send.
	if deploys != 4 {
		t.Fatalf("deploys=%d", deploys)
	}
	if got.Attempts != 2 {
		t.Fatalf("attempts=%d", got.Attempts)
	}
}

// TestSessionFallsBackBoundedly: a dead provider exhausts the attempt
// budget and the session signals tunnel fallback within the deadline.
func TestSessionFallsBackBoundedly(t *testing.T) {
	clock := &netsim.Clock{}
	s := &Session{
		Neg: NewNegotiator("dev1", sessConfig(t), 1000, StrategyStrict),
		Config: SessionConfig{
			MaxAttempts: 3,
			OfferWindow: 100 * time.Millisecond,
			Backoff:     Backoff{Initial: 50 * time.Millisecond},
			Deadline:    10 * time.Second,
		},
	}
	var got *SessionResult
	s.Done = func(r SessionResult) { got = &r }
	s.Clock = clock
	s.Send = func(msg interface{}) {} // network ignores everything
	s.Start()
	clock.Run()
	if got == nil || got.Deployed || !got.Fallback {
		t.Fatalf("result %+v", got)
	}
	if got.Attempts != 3 {
		t.Fatalf("attempts %d", got.Attempts)
	}
	if !strings.Contains(got.Reason, "no offers") {
		t.Fatalf("reason %q", got.Reason)
	}
	if got.Elapsed >= 10*time.Second {
		t.Fatalf("elapsed %v not bounded by deadline", got.Elapsed)
	}
}

// TestSessionDeadlineFallback: with generous attempts but a short
// deadline, the deadline wins.
func TestSessionDeadlineFallback(t *testing.T) {
	clock := &netsim.Clock{}
	s := &Session{
		Neg:    NewNegotiator("dev1", sessConfig(t), 1000, StrategyStrict),
		Config: SessionConfig{Deadline: 2 * time.Second, MaxAttempts: 1000},
	}
	var got *SessionResult
	s.Done = func(r SessionResult) { got = &r }
	s.Clock = clock
	s.Send = func(msg interface{}) {}
	s.Start()
	clock.Run()
	if got == nil || !got.Fallback {
		t.Fatalf("result %+v", got)
	}
	if got.Elapsed > 2*time.Second {
		t.Fatalf("elapsed %v exceeds deadline", got.Elapsed)
	}
}

// TestSessionRenegotiates: a strict device against a partial provider
// deploys the supported subset via one CounterDM round.
func TestSessionRenegotiates(t *testing.T) {
	clock := &netsim.Clock{}
	pp := fullPolicy()
	delete(pp.Supported, "pii-detect") // partial support
	s := &Session{
		Neg:    NewNegotiator("dev1", sessConfig(t), 1000, StrategyStrict),
		Config: SessionConfig{Renegotiate: true},
	}
	var got *SessionResult
	s.Done = func(r SessionResult) { got = &r }
	wireSession(s, clock, pp, okDeploy(3), noFaults(), noFaults())
	s.Start()
	clock.Run()
	if got == nil || !got.Deployed {
		t.Fatalf("result %+v", got)
	}
	if !got.Renegotiated || got.Attempts != 2 {
		t.Fatalf("renegotiated=%v attempts=%d", got.Renegotiated, got.Attempts)
	}
	if types := got.Decision.FinalConfig.Middleboxes; len(types) != 1 || types[0].Type != "tls-verify" {
		t.Fatalf("final config middleboxes %+v", types)
	}
}

// TestSessionRediscoversAfterNACK: a provider that NACKs (e.g. restarted
// and forgot the offer) sends the device back to discovery, which then
// succeeds.
func TestSessionRediscoversAfterNACK(t *testing.T) {
	clock := &netsim.Clock{}
	pp := fullPolicy()
	s := &Session{
		Neg:    NewNegotiator("dev1", sessConfig(t), 1000, StrategyStrict),
		Config: SessionConfig{Backoff: Backoff{Initial: 20 * time.Millisecond}},
	}
	var got *SessionResult
	s.Done = func(r SessionResult) { got = &r }
	deploys := 0
	deploy := func(m *DeployRequest) *DeployResponse {
		deploys++
		if deploys == 1 {
			return &DeployResponse{OK: false, Reason: "unknown offer (provider restarted)"}
		}
		return &DeployResponse{OK: true, Cookie: 4}
	}
	wireSession(s, clock, pp, deploy, noFaults(), noFaults())
	s.Start()
	clock.Run()
	if got == nil || !got.Deployed {
		t.Fatalf("result %+v", got)
	}
	if got.DeployNACKs != 1 || got.Attempts != 2 {
		t.Fatalf("nacks=%d attempts=%d", got.DeployNACKs, got.Attempts)
	}
}

func TestBackoffDelays(t *testing.T) {
	b := Backoff{Initial: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w {
			t.Errorf("retry %d: %v want %v", i, got, w)
		}
	}
	// Jitter stays within the configured band.
	jb := Backoff{Initial: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	rng := netsim.NewRNG(5)
	for i := 0; i < 100; i++ {
		d := jb.Delay(0, rng.Float64)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 150ms]", d)
		}
	}
	// Max is a hard cap: jitter on a delay at (or near) the cap must not
	// push past it.
	cb := Backoff{Initial: 800 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		if d := cb.Delay(1, rng.Float64); d > time.Second {
			t.Fatalf("jittered delay %v exceeds Max %v", d, time.Second)
		}
	}
}

// TestEvaluateExpiryBoundary: an offer is void from the instant it
// expires — now == ExpiresAt must be rejected, matching the server.
func TestEvaluateExpiryBoundary(t *testing.T) {
	pp := fullPolicy()
	n := NewNegotiator("dev1", sessConfig(t), 1000, StrategyStrict)
	offer := pp.HandleDM(n.MakeDM(), 0)
	if dec := n.Evaluate(offer, offer.ExpiresAt-1); !dec.Accept {
		t.Fatalf("just-before-expiry rejected: %s", dec.Reason)
	}
	if dec := n.Evaluate(offer, offer.ExpiresAt); dec.Accept || !strings.Contains(dec.Reason, "expired") {
		t.Fatalf("at-expiry accepted: %+v", dec)
	}
}

// TestStrategyReduceDeterministic: budget trimming with tied prices must
// not depend on map iteration order.
func TestStrategyReduceDeterministic(t *testing.T) {
	src := `
pvnc ties
owner alice
device 10.0.0.5
middlebox a tls-verify
middlebox b pii-detect
middlebox c transcoder
chain ca a
chain cb b
chain cc c
policy 100 match proto=tcp dport=443 via=ca action=forward
policy 90 match proto=tcp dport=80 via=cb action=forward
policy 80 match proto=udp dport=53 via=cc action=forward
policy 0 match any action=forward
`
	cfg, err := pvnc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	offer := &Offer{
		OfferID: "o", Provider: "p",
		SupportedTypes: []string{"tls-verify", "pii-detect", "transcoder"},
		PricePerModule: map[string]int64{"tls-verify": 100, "pii-detect": 100, "transcoder": 100},
		TotalCost:      300,
		ExpiresAt:      time.Hour,
	}
	// Budget 100 keeps exactly one of three equally priced modules.
	n := NewNegotiator("dev1", cfg, 100, StrategyReduce)
	first := n.Evaluate(offer, 0)
	if !first.Accept || first.Cost != 100 || len(first.FinalConfig.Middleboxes) != 1 {
		t.Fatalf("decision %+v", first)
	}
	for i := 0; i < 100; i++ {
		dec := n.Evaluate(offer, 0)
		if dec.FinalConfig.Hash() != first.FinalConfig.Hash() {
			t.Fatalf("run %d produced a different reduced config:\n%s\nvs\n%s",
				i, dec.FinalConfig.Source(), first.FinalConfig.Source())
		}
	}
}

// TestOfferEchoesDMSeq: offers carry the seq of the DM they answer.
func TestOfferEchoesDMSeq(t *testing.T) {
	pp := fullPolicy()
	n := NewNegotiator("dev1", sessConfig(t), 1000, StrategyStrict)
	n.MakeDM()
	dm := n.MakeDM() // seq 2
	offer := pp.HandleDM(dm, 0)
	if offer.DMSeq != dm.Seq {
		t.Fatalf("offer DMSeq %d, DM seq %d", offer.DMSeq, dm.Seq)
	}
}
