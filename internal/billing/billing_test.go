package billing

import (
	"errors"
	"testing"

	"pvn/internal/auditor"
)

var tariff = Tariff{
	PerModuleMicro: map[string]int64{"tls-verify": 100, "transcoder": 300},
	PerMBMicro:     10,
	FreeBytes:      1 << 20, // 1 MiB free
}

func TestGenerateInvoiceModulesAndTraffic(t *testing.T) {
	inv := GenerateInvoice("isp1", tariff, Usage{
		User:        "alice",
		ModuleTypes: []string{"tls-verify", "transcoder"},
		Bytes:       3 << 20, // 3 MiB: 2 billable
	})
	if len(inv.Lines) != 3 {
		t.Fatalf("lines %d: %+v", len(inv.Lines), inv.Lines)
	}
	if inv.TotalMicro != 100+300+20 {
		t.Fatalf("total %d", inv.TotalMicro)
	}
}

func TestGenerateInvoiceFreeTier(t *testing.T) {
	inv := GenerateInvoice("isp1", tariff, Usage{User: "alice", Bytes: 512 << 10})
	if inv.TotalMicro != 0 || len(inv.Lines) != 0 {
		t.Fatalf("free-tier invoice %+v", inv)
	}
}

func TestGenerateInvoiceDuplicateModulesBillTwice(t *testing.T) {
	inv := GenerateInvoice("isp1", tariff, Usage{User: "a", ModuleTypes: []string{"tls-verify", "tls-verify"}})
	if inv.TotalMicro != 200 {
		t.Fatalf("total %d", inv.TotalMicro)
	}
}

func TestGenerateInvoiceUnknownModuleIsFree(t *testing.T) {
	inv := GenerateInvoice("isp1", tariff, Usage{User: "a", ModuleTypes: []string{"exotic"}})
	if inv.TotalMicro != 0 {
		t.Fatalf("total %d", inv.TotalMicro)
	}
}

func dispute(kinds ...auditor.ViolationKind) *auditor.Dispute {
	d := &auditor.Dispute{Provider: "isp1", DeviceID: "dev1"}
	for _, k := range kinds {
		d.Evidence = append(d.Evidence, auditor.Violation{Kind: k, Provider: "isp1"})
	}
	return d
}

func TestApplyDisputeRefunds(t *testing.T) {
	inv := GenerateInvoice("isp1", tariff, Usage{User: "a", ModuleTypes: []string{"tls-verify"}}) // 100
	refund := ApplyDispute(inv, dispute(auditor.ViolationDifferentiation), nil)
	if refund != 30 {
		t.Fatalf("refund %d, want 30 (30%% of 100)", refund)
	}
	if inv.TotalMicro != 70 || inv.RefundMicro != 30 {
		t.Fatalf("invoice %+v", inv)
	}
}

func TestApplyDisputeTakesWorstViolation(t *testing.T) {
	inv := GenerateInvoice("isp1", tariff, Usage{User: "a", ModuleTypes: []string{"tls-verify"}})
	refund := ApplyDispute(inv, dispute(auditor.ViolationPathInflation, auditor.ViolationConfigTampering), nil)
	if refund != 100 || inv.TotalMicro != 0 {
		t.Fatalf("refund %d total %d, want full refund", refund, inv.TotalMicro)
	}
}

func TestApplyDisputeNilAndEmpty(t *testing.T) {
	inv := GenerateInvoice("isp1", tariff, Usage{User: "a", ModuleTypes: []string{"tls-verify"}})
	if r := ApplyDispute(inv, nil, nil); r != 0 {
		t.Fatalf("nil dispute refunded %d", r)
	}
	if r := ApplyDispute(inv, &auditor.Dispute{}, nil); r != 0 {
		t.Fatalf("empty dispute refunded %d", r)
	}
	if inv.TotalMicro != 100 {
		t.Fatalf("total changed: %d", inv.TotalMicro)
	}
}

func TestApplyDisputeNeverExceedsTotal(t *testing.T) {
	inv := GenerateInvoice("isp1", tariff, Usage{User: "a", ModuleTypes: []string{"tls-verify"}})
	ApplyDispute(inv, dispute(auditor.ViolationContentMod), nil) // -50
	ApplyDispute(inv, dispute(auditor.ViolationContentMod), nil) // would be -50 again, capped
	if inv.TotalMicro < 0 {
		t.Fatalf("total went negative: %d", inv.TotalMicro)
	}
}

func TestLedgerSettle(t *testing.T) {
	l := NewLedger()
	l.Credit("alice", 1000)
	inv := GenerateInvoice("isp1", tariff, Usage{User: "alice", ModuleTypes: []string{"transcoder"}}) // 300
	if err := l.Settle(inv); err != nil {
		t.Fatal(err)
	}
	if l.Balance("alice") != 700 || l.Balance("isp1") != 300 {
		t.Fatalf("balances %d/%d", l.Balance("alice"), l.Balance("isp1"))
	}
}

func TestLedgerInsufficientFunds(t *testing.T) {
	l := NewLedger()
	l.Credit("alice", 10)
	inv := GenerateInvoice("isp1", tariff, Usage{User: "alice", ModuleTypes: []string{"transcoder"}})
	if err := l.Settle(inv); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("err=%v", err)
	}
	if l.Balance("alice") != 10 || l.Balance("isp1") != 0 {
		t.Fatal("failed settle had side effects")
	}
}

func TestLedgerZeroInvoiceSettles(t *testing.T) {
	l := NewLedger()
	inv := &Invoice{Provider: "isp1", User: "alice", TotalMicro: 0}
	if err := l.Settle(inv); err != nil {
		t.Fatal(err)
	}
}
