// Package billing implements the monetization side of PVNs (§3.3
// "Incentivizing access network providers"): tariffs with per-module
// prices, usage-based charges and free tiers; invoices generated from
// metered deployments; accounts; and dispute resolution driven by
// auditor evidence — observed violations translate into refunds.
package billing

import (
	"errors"
	"fmt"
	"time"

	"pvn/internal/auditor"
)

// Errors.
var (
	ErrInsufficientFunds = errors.New("billing: insufficient funds")
	ErrUnknownAccount    = errors.New("billing: unknown account")
)

// Tariff prices a provider's PVN service.
type Tariff struct {
	// PerModuleMicro is the flat per-deployment price by middlebox
	// type, in microcredits.
	PerModuleMicro map[string]int64
	// PerMBMicro charges traffic through the PVN per megabyte.
	PerMBMicro int64
	// FreeBytes is the monthly zero-rated allowance (the ad-funded
	// free tier).
	FreeBytes int64
}

// Usage summarizes one deployment's consumption over a billing period.
type Usage struct {
	User string
	// ModuleTypes deployed (duplicates allowed: two instances bill
	// twice).
	ModuleTypes []string
	// Bytes of traffic carried through the PVN.
	Bytes int64
	// Period covered.
	Start, End time.Duration
}

// Line is one invoice line item.
type Line struct {
	Description string
	AmountMicro int64
}

// Invoice bills one user for one period.
type Invoice struct {
	Provider string
	User     string
	Lines    []Line
	// TotalMicro is the sum of lines (post-adjustment).
	TotalMicro int64
	// RefundMicro records dispute adjustments included in the total.
	RefundMicro int64
}

// GenerateInvoice prices a usage record under a tariff.
func GenerateInvoice(provider string, tariff Tariff, u Usage) *Invoice {
	inv := &Invoice{Provider: provider, User: u.User}
	for _, typ := range u.ModuleTypes {
		price := tariff.PerModuleMicro[typ]
		inv.Lines = append(inv.Lines, Line{
			Description: fmt.Sprintf("module %s", typ),
			AmountMicro: price,
		})
	}
	billable := u.Bytes - tariff.FreeBytes
	if billable > 0 && tariff.PerMBMicro > 0 {
		amount := billable * tariff.PerMBMicro / (1 << 20)
		inv.Lines = append(inv.Lines, Line{
			Description: fmt.Sprintf("traffic %d bytes (%d free)", u.Bytes, tariff.FreeBytes),
			AmountMicro: amount,
		})
	}
	for _, l := range inv.Lines {
		inv.TotalMicro += l.AmountMicro
	}
	return inv
}

// RefundPolicy maps violation kinds to refund fractions of the invoice
// total. DefaultRefundPolicy refunds proportionally to severity.
type RefundPolicy map[auditor.ViolationKind]float64

// DefaultRefundPolicy: tampering with the deployed configuration voids
// the whole bill; data-plane misbehaviour refunds a share.
var DefaultRefundPolicy = RefundPolicy{
	auditor.ViolationConfigTampering: 1.0,
	auditor.ViolationContentMod:      0.5,
	auditor.ViolationDifferentiation: 0.3,
	auditor.ViolationPathInflation:   0.2,
	auditor.ViolationPrivacyExposure: 0.5,
}

// ApplyDispute adjusts an invoice with a refund backed by audit
// evidence. The refund is the largest applicable fraction (violations do
// not stack past 100%). It returns the refund amount.
func ApplyDispute(inv *Invoice, d *auditor.Dispute, policy RefundPolicy) int64 {
	if d == nil || len(d.Evidence) == 0 {
		return 0
	}
	if policy == nil {
		policy = DefaultRefundPolicy
	}
	var frac float64
	for _, v := range d.Evidence {
		if f := policy[v.Kind]; f > frac {
			frac = f
		}
	}
	if frac > 1 {
		frac = 1
	}
	gross := inv.TotalMicro + inv.RefundMicro // pre-refund total
	refund := int64(float64(gross) * frac)
	if refund > inv.TotalMicro {
		refund = inv.TotalMicro
	}
	if refund <= 0 {
		return 0
	}
	inv.Lines = append(inv.Lines, Line{
		Description: fmt.Sprintf("dispute refund (%d violations, %.0f%%)", len(d.Evidence), frac*100),
		AmountMicro: -refund,
	})
	inv.TotalMicro -= refund
	inv.RefundMicro += refund
	return refund
}

// Ledger tracks account balances in microcredits.
type Ledger struct {
	balances map[string]int64
}

// NewLedger builds an empty ledger.
func NewLedger() *Ledger { return &Ledger{balances: make(map[string]int64)} }

// Credit adds funds to an account (creating it if needed).
func (l *Ledger) Credit(account string, micro int64) {
	l.balances[account] += micro
}

// Balance returns an account's funds.
func (l *Ledger) Balance(account string) int64 { return l.balances[account] }

// Settle moves an invoice's total from the user to the provider. It
// fails without side effects when the user cannot cover it.
func (l *Ledger) Settle(inv *Invoice) error {
	if inv.TotalMicro <= 0 {
		return nil
	}
	if l.balances[inv.User] < inv.TotalMicro {
		return fmt.Errorf("%w: %s has %d, owes %d", ErrInsufficientFunds, inv.User, l.balances[inv.User], inv.TotalMicro)
	}
	l.balances[inv.User] -= inv.TotalMicro
	l.balances[inv.Provider] += inv.TotalMicro
	return nil
}
