package trace

import (
	"testing"

	"pvn/internal/packet"
)

func TestWebGenDeterministic(t *testing.T) {
	a := NewWebGen(7).Page("news.example")
	b := NewWebGen(7).Page("news.example")
	if len(a.Objects) != len(b.Objects) || a.TotalBytes() != b.TotalBytes() {
		t.Fatal("same seed produced different pages")
	}
}

func TestWebGenShape(t *testing.T) {
	g := NewWebGen(1)
	trackerObjs, total := 0, 0
	for i := 0; i < 200; i++ {
		p := g.Page("site.example")
		if len(p.Objects) < 6 || len(p.Objects) > 41 {
			t.Fatalf("page has %d objects", len(p.Objects))
		}
		if p.Objects[0].ContentType != "text/html" {
			t.Fatal("first object is not the document")
		}
		for _, o := range p.Objects {
			if o.Bytes < 64 {
				t.Fatalf("object %d bytes", o.Bytes)
			}
			total++
			if o.Tracker {
				trackerObjs++
				found := false
				for _, d := range TrackerDomains {
					if o.Host == d {
						found = true
					}
				}
				if !found {
					t.Fatalf("tracker object from %q", o.Host)
				}
			}
		}
	}
	frac := float64(trackerObjs) / float64(total)
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("tracker fraction %.2f, want ~0.25", frac)
	}
}

func TestVideoSessionAdaptsToThroughput(t *testing.T) {
	// Plenty of bandwidth: top rung.
	segs := VideoSession(func(int) float64 { return 50e6 }, 10)
	if MeanRung(segs) != 3 {
		t.Fatalf("fast link mean rung %v, want 3", MeanRung(segs))
	}
	// Binge On-style 1.5 Mbps shaping: must sit below HD (rung<=1,
	// 480p), since 2.5 Mbps (720p) needs more than 1.5*0.8.
	segs = VideoSession(func(int) float64 { return 1.5e6 }, 10)
	if MeanRung(segs) > 1 {
		t.Fatalf("shaped link mean rung %v, want <=1 (sub-HD)", MeanRung(segs))
	}
	for _, s := range segs {
		if s.BitrateBps != BitrateLadder[s.Rung] {
			t.Fatal("rung/bitrate mismatch")
		}
		if s.Bytes != int(s.BitrateBps*SegmentSeconds/8) {
			t.Fatal("segment size mismatch")
		}
	}
	// Starved link: bottom rung, never panics.
	segs = VideoSession(func(int) float64 { return 0.1e6 }, 5)
	if MeanRung(segs) != 0 {
		t.Fatalf("starved link rung %v", MeanRung(segs))
	}
}

func TestVideoSessionEmpty(t *testing.T) {
	if MeanRung(nil) != 0 {
		t.Fatal("empty session mean rung")
	}
}

func TestAppGenLeakRate(t *testing.T) {
	g := NewAppGen(3, []string{"hunter2"})
	leaks, enc := 0, 0
	const n = 5000
	for i := 0; i < n; i++ {
		r := g.Request()
		if r.LeaksPII {
			leaks++
		}
		if r.Encrypted {
			enc++
		}
	}
	if f := float64(leaks) / n; f < 0.12 || f > 0.18 {
		t.Fatalf("leak rate %.3f, want ~0.15", f)
	}
	if f := float64(enc) / n; f < 0.45 || f > 0.55 {
		t.Fatalf("encrypted share %.3f, want ~0.5", f)
	}
}

func TestIoTGenSensitiveRate(t *testing.T) {
	g := NewIoTGen(5)
	sensitive := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if g.Reading().Sensitive {
			sensitive++
		}
	}
	if f := float64(sensitive) / n; f < 0.25 || f > 0.35 {
		t.Fatalf("sensitive rate %.3f, want ~0.3", f)
	}
}

func TestPacketHelpers(t *testing.T) {
	dev := packet.MustParseIPv4("10.0.0.5")
	srv := packet.MustParseIPv4("93.184.216.34")

	req, err := HTTPRequestPacket(dev, srv, 40000, "h.example", "/p", "body")
	if err != nil {
		t.Fatal(err)
	}
	p := packet.Decode(req, packet.LayerTypeIPv4)
	if p.HTTP() == nil || p.HTTP().Host() != "h.example" {
		t.Fatalf("request stack %s", p)
	}
	if !p.TCP().VerifyChecksum(p.IPv4().LayerPayload()) {
		t.Fatal("request checksum")
	}

	resp, err := HTTPResponsePacket(srv, dev, 40000, "video/mp4", []byte("MOVIE"))
	if err != nil {
		t.Fatal(err)
	}
	p = packet.Decode(resp, packet.LayerTypeIPv4)
	if p.HTTP() == nil || p.HTTP().Header("Content-Type") != "video/mp4" {
		t.Fatalf("response stack %s", p)
	}

	hello, err := TLSClientHelloPacket(dev, srv, 40001, "secure.example", 9)
	if err != nil {
		t.Fatal(err)
	}
	p = packet.Decode(hello, packet.LayerTypeIPv4)
	tl := p.TLS()
	if tl == nil {
		t.Fatalf("tls stack %s", p)
	}
	hs, _ := tl.Records[0].Handshakes()
	ch, err := packet.ParseClientHello(hs[0].Body)
	if err != nil || ch.ServerName != "secure.example" {
		t.Fatalf("sni %v err=%v", ch, err)
	}
}
