// Package trace generates the synthetic workloads the PVN experiments
// run: web page loads (a page plus embedded objects, some from tracker
// domains), adaptive-bitrate video sessions, IoT sensor reports, and
// PII-leaking app traffic. All draws come from an explicit seed so every
// experiment is reproducible; the distributions are chosen to match the
// qualitative mixes the paper's motivation cites (browsers are a
// minority of traffic, video dominates bytes, apps leak PII over
// plaintext HTTP).
package trace

import (
	"fmt"
	"math"

	"pvn/internal/netsim"
	"pvn/internal/packet"
)

// Object is one fetchable web resource.
type Object struct {
	Host        string
	Path        string
	ContentType string
	Bytes       int
	// Tracker marks third-party tracking/ad objects.
	Tracker bool
}

// WebPage is one page load: the document plus its subresources.
type WebPage struct {
	Objects []Object
}

// TotalBytes sums the page weight.
func (p *WebPage) TotalBytes() int {
	n := 0
	for _, o := range p.Objects {
		n += o.Bytes
	}
	return n
}

// TrackerDomains is the canonical blocklist used across experiments.
var TrackerDomains = []string{"ads.example", "tracker.net", "metrics.example"}

// WebGen generates web page loads.
type WebGen struct {
	rng *netsim.RNG
	// TrackerFraction of objects come from tracker domains. Default 0.25.
	TrackerFraction float64
}

// NewWebGen builds a generator.
func NewWebGen(seed uint64) *WebGen {
	return &WebGen{rng: netsim.NewRNG(seed), TrackerFraction: 0.25}
}

// lognormal draws a size with the given median and sigma (log-space).
func lognormal(rng *netsim.RNG, median float64, sigma float64) int {
	v := math.Exp(math.Log(median) + rng.Normal(0, sigma))
	if v < 64 {
		v = 64
	}
	return int(v)
}

// Page draws one page load: an HTML document, 5-40 subresources split
// between text, scripts and images, a fraction served by trackers.
func (g *WebGen) Page(site string) WebPage {
	page := WebPage{}
	page.Objects = append(page.Objects, Object{
		Host: site, Path: "/index.html", ContentType: "text/html",
		Bytes: lognormal(g.rng, 30_000, 0.8),
	})
	n := 5 + g.rng.Intn(36)
	for i := 0; i < n; i++ {
		o := Object{Host: site}
		switch g.rng.Intn(3) {
		case 0:
			o.Path = fmt.Sprintf("/js/app-%d.js", i)
			o.ContentType = "application/javascript"
			o.Bytes = lognormal(g.rng, 40_000, 1.0)
		case 1:
			o.Path = fmt.Sprintf("/img/pic-%d.jpg", i)
			o.ContentType = "image/jpeg"
			o.Bytes = lognormal(g.rng, 80_000, 1.2)
		default:
			o.Path = fmt.Sprintf("/css/style-%d.css", i)
			o.ContentType = "text/css"
			o.Bytes = lognormal(g.rng, 15_000, 0.7)
		}
		if g.rng.Bool(g.TrackerFraction) {
			o.Host = TrackerDomains[g.rng.Intn(len(TrackerDomains))]
			o.Path = "/pixel"
			o.ContentType = "image/gif"
			o.Bytes = 64 + g.rng.Intn(400)
			o.Tracker = true
		}
		page.Objects = append(page.Objects, o)
	}
	return page
}

// Bitrate ladder for ABR video, bits per second. The 1080p rung needs
// more than Binge On's 1.5 Mbps throttle; the 480p rung fits under it —
// exactly the sub-HD effect experiment E4 reproduces.
var BitrateLadder = []float64{0.4e6, 1.0e6, 2.5e6, 5.0e6}

// LadderNames label the rungs for reporting.
var LadderNames = []string{"240p", "480p", "720p", "1080p"}

// VideoSegment is one ABR segment.
type VideoSegment struct {
	// Index within the session.
	Index int
	// BitrateBps is the encoded rate chosen for this segment.
	BitrateBps float64
	// Rung is the ladder index of BitrateBps.
	Rung int
	// Bytes for SegmentSeconds of video at that rate.
	Bytes int
}

// SegmentSeconds is the fixed segment duration.
const SegmentSeconds = 4

// VideoSession simulates an ABR client: each segment picks the highest
// rung whose bitrate fits within estimate*safety of the measured
// throughput. It returns the segments fetched and the mean rung.
func VideoSession(throughputBps func(segment int) float64, segments int) []VideoSegment {
	const safety = 0.8
	out := make([]VideoSegment, 0, segments)
	for i := 0; i < segments; i++ {
		tput := throughputBps(i)
		rung := 0
		for r := len(BitrateLadder) - 1; r >= 0; r-- {
			if BitrateLadder[r] <= tput*safety {
				rung = r
				break
			}
		}
		out = append(out, VideoSegment{
			Index:      i,
			BitrateBps: BitrateLadder[rung],
			Rung:       rung,
			Bytes:      int(BitrateLadder[rung] * SegmentSeconds / 8),
		})
	}
	return out
}

// MeanRung averages the quality rung over a session.
func MeanRung(segs []VideoSegment) float64 {
	if len(segs) == 0 {
		return 0
	}
	var s float64
	for _, seg := range segs {
		s += float64(seg.Rung)
	}
	return s / float64(len(segs))
}

// AppRequest is one mobile-app HTTP request, possibly leaking PII.
type AppRequest struct {
	Host string
	Path string
	Body string
	// LeaksPII marks requests that carry user secrets/identifiers.
	LeaksPII bool
	// Encrypted requests go over TLS (invisible to plaintext
	// detectors).
	Encrypted bool
}

// AppGen generates app traffic with a configurable leak rate.
type AppGen struct {
	rng *netsim.RNG
	// LeakRate is the fraction of requests leaking PII. Default 0.15
	// (of the order ReCon reports for popular apps).
	LeakRate float64
	// EncryptedShare is the fraction of traffic over TLS. Default 0.5.
	EncryptedShare float64
	// Secrets are the user's protected values.
	Secrets []string
}

// NewAppGen builds a generator.
func NewAppGen(seed uint64, secrets []string) *AppGen {
	return &AppGen{rng: netsim.NewRNG(seed), LeakRate: 0.15, EncryptedShare: 0.5, Secrets: secrets}
}

// Request draws one app request.
func (g *AppGen) Request() AppRequest {
	r := AppRequest{
		Host:      fmt.Sprintf("api%d.app.example", g.rng.Intn(5)),
		Path:      fmt.Sprintf("/v1/sync?k=%d", g.rng.Intn(100000)),
		Body:      fmt.Sprintf(`{"event":"open","ts":%d}`, g.rng.Intn(1_000_000)),
		Encrypted: g.rng.Bool(g.EncryptedShare),
	}
	if g.rng.Bool(g.LeakRate) {
		r.LeaksPII = true
		switch g.rng.Intn(3) {
		case 0:
			if len(g.Secrets) > 0 {
				r.Body = fmt.Sprintf(`{"password":"%s"}`, g.Secrets[g.rng.Intn(len(g.Secrets))])
			} else {
				r.Body = `{"email":"user@example.com"}`
			}
		case 1:
			r.Body = fmt.Sprintf(`{"lat=%0.4f&lon=%0.4f"}`, 42.0+g.rng.Float64(), -71.0-g.rng.Float64())
		default:
			r.Body = `{"contact":"alice.doe@example.com","phone":"617-555-1234"}`
		}
	}
	return r
}

// IoTReading is one sensor report.
type IoTReading struct {
	SensorID string
	Payload  string
	// Sensitive marks readings that reveal user activity (camera,
	// microphone, presence).
	Sensitive bool
}

// IoTGen generates sensor reports.
type IoTGen struct {
	rng *netsim.RNG
	// SensitiveRate is the fraction of sensitive readings. Default 0.3.
	SensitiveRate float64
}

// NewIoTGen builds a generator.
func NewIoTGen(seed uint64) *IoTGen {
	return &IoTGen{rng: netsim.NewRNG(seed), SensitiveRate: 0.3}
}

// Reading draws one report.
func (g *IoTGen) Reading() IoTReading {
	r := IoTReading{SensorID: fmt.Sprintf("sensor-%d", g.rng.Intn(8))}
	if g.rng.Bool(g.SensitiveRate) {
		r.Sensitive = true
		r.Payload = fmt.Sprintf("presence=home cam_frame=%d lat=42.3601&lon=-71.0589", g.rng.Intn(1000))
	} else {
		r.Payload = fmt.Sprintf("temp=%d.%d", 18+g.rng.Intn(8), g.rng.Intn(10))
	}
	return r
}

// --- packetization helpers ---

// HTTPRequestPacket builds the raw IPv4 frame for an app/web request from
// src to dst.
func HTTPRequestPacket(src, dst packet.IPv4Address, sport uint16, host, path, body string) ([]byte, error) {
	h := &packet.HTTP{IsRequest: true, Method: "POST", Path: path, Body: []byte(body)}
	h.SetHeader("Host", host)
	msg, err := packet.SerializeToBytes(h)
	if err != nil {
		return nil, err
	}
	ip := &packet.IPv4{Src: src, Dst: dst, Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: sport, DstPort: 80}
	tcp.SetNetworkLayerForChecksum(ip)
	return packet.SerializeToBytes(ip, tcp, packet.Payload(msg))
}

// HTTPResponsePacket builds a response frame (dst is the device).
func HTTPResponsePacket(src, dst packet.IPv4Address, dport uint16, contentType string, body []byte) ([]byte, error) {
	h := &packet.HTTP{StatusCode: 200, StatusText: "OK", Body: body}
	h.SetHeader("Content-Type", contentType)
	msg, err := packet.SerializeToBytes(h)
	if err != nil {
		return nil, err
	}
	ip := &packet.IPv4{Src: src, Dst: dst, Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: 80, DstPort: dport}
	tcp.SetNetworkLayerForChecksum(ip)
	return packet.SerializeToBytes(ip, tcp, packet.Payload(msg))
}

// TLSClientHelloPacket builds a TLS ClientHello frame with the given SNI.
func TLSClientHelloPacket(src, dst packet.IPv4Address, sport uint16, sni string, seed uint64) ([]byte, error) {
	var random [32]byte
	r := netsim.NewRNG(seed)
	for i := range random {
		random[i] = byte(r.Uint64())
	}
	rec := packet.BuildClientHello(sni, random, []uint16{0x1301, 0x1302})
	body, err := packet.SerializeToBytes(&packet.TLS{Records: []packet.TLSRecord{rec}})
	if err != nil {
		return nil, err
	}
	ip := &packet.IPv4{Src: src, Dst: dst, Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: sport, DstPort: 443}
	tcp.SetNetworkLayerForChecksum(ip)
	return packet.SerializeToBytes(ip, tcp, packet.Payload(body))
}
