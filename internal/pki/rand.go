package pki

import (
	"io"

	"pvn/internal/netsim"
)

// detReader adapts the simulator's deterministic RNG to io.Reader so key
// generation is reproducible inside experiments.
type detReader struct {
	rng *netsim.RNG
}

// NewDeterministicRand returns an entropy source that produces the same
// byte stream for the same seed. Never use it outside simulations.
func NewDeterministicRand(seed uint64) io.Reader {
	return &detReader{rng: netsim.NewRNG(seed)}
}

// Read implements io.Reader.
func (d *detReader) Read(p []byte) (int, error) {
	for i := 0; i < len(p); i += 8 {
		v := d.rng.Uint64()
		for j := 0; j < 8 && i+j < len(p); j++ {
			p[i+j] = byte(v >> (8 * j))
		}
	}
	return len(p), nil
}
