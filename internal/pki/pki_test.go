package pki

import (
	"errors"
	"testing"
)

// testPKI builds a root CA, an intermediate, and a leaf for
// www.example.com valid over [100, 1000].
type testPKI struct {
	root         *CA
	intermediate *CA
	leafChain    []*Certificate
	leafKey      KeyPair
	store        *TrustStore
}

func newTestPKI(t *testing.T) *testPKI {
	t.Helper()
	rootKey := mustKey(t, 1)
	interKey := mustKey(t, 2)
	leafKey := mustKey(t, 3)

	root := NewRootCA("Test Root CA", rootKey, 0, 10000)
	interCert := root.Issue(IssueOptions{Subject: "Test Intermediate", PublicKey: interKey.Public, ValidFrom: 0, ValidUntil: 10000, IsCA: true})
	inter := &CA{Cert: interCert, key: interKey.Private, crl: map[uint64]bool{}}
	leaf := inter.Issue(IssueOptions{Subject: "www.example.com", PublicKey: leafKey.Public, ValidFrom: 100, ValidUntil: 1000})

	return &testPKI{
		root:         root,
		intermediate: inter,
		leafChain:    []*Certificate{leaf, interCert},
		leafKey:      leafKey,
		store:        NewTrustStore(root.Cert),
	}
}

func mustKey(t *testing.T, seed uint64) KeyPair {
	t.Helper()
	kp, err := GenerateKey(NewDeterministicRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func TestVerifyValidChain(t *testing.T) {
	p := newTestPKI(t)
	if err := p.store.Verify(p.leafChain, "www.example.com", 500); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestVerifyDirectRootIssued(t *testing.T) {
	p := newTestPKI(t)
	k := mustKey(t, 9)
	leaf := p.root.Issue(IssueOptions{Subject: "direct.example.com", PublicKey: k.Public, ValidFrom: 0, ValidUntil: 10000})
	if err := p.store.Verify([]*Certificate{leaf}, "direct.example.com", 50); err != nil {
		t.Fatalf("root-issued leaf rejected: %v", err)
	}
}

func TestVerifyExpired(t *testing.T) {
	p := newTestPKI(t)
	for _, now := range []int64{50, 1500} { // before and after validity
		err := p.store.Verify(p.leafChain, "www.example.com", now)
		if !errors.Is(err, ErrExpired) {
			t.Fatalf("now=%d: err=%v, want ErrExpired", now, err)
		}
	}
}

func TestVerifyNameMismatch(t *testing.T) {
	p := newTestPKI(t)
	err := p.store.Verify(p.leafChain, "evil.example.com", 500)
	if !errors.Is(err, ErrNameMismatch) {
		t.Fatalf("err=%v, want ErrNameMismatch", err)
	}
}

func TestVerifyWildcard(t *testing.T) {
	p := newTestPKI(t)
	k := mustKey(t, 4)
	wild := p.root.Issue(IssueOptions{Subject: "*.cdn.example.com", PublicKey: k.Public, ValidFrom: 0, ValidUntil: 10000})
	chain := []*Certificate{wild}
	if err := p.store.Verify(chain, "a.cdn.example.com", 500); err != nil {
		t.Fatalf("wildcard rejected matching name: %v", err)
	}
	if err := p.store.Verify(chain, "a.b.cdn.example.com", 500); !errors.Is(err, ErrNameMismatch) {
		t.Fatalf("wildcard matched two labels: %v", err)
	}
	if err := p.store.Verify(chain, "cdn.example.com", 500); !errors.Is(err, ErrNameMismatch) {
		t.Fatalf("wildcard matched bare domain: %v", err)
	}
}

func TestVerifySelfSignedRejected(t *testing.T) {
	p := newTestPKI(t)
	k := mustKey(t, 5)
	ss := SelfSign("www.example.com", k, 0, 10000)
	err := p.store.Verify([]*Certificate{ss}, "www.example.com", 500)
	if !errors.Is(err, ErrUntrusted) {
		t.Fatalf("err=%v, want ErrUntrusted", err)
	}
}

func TestVerifyMITMChainRejected(t *testing.T) {
	// An attacker with their own CA mints a cert for the victim domain.
	p := newTestPKI(t)
	evilCAKey := mustKey(t, 6)
	evilCA := NewRootCA("Evil CA", evilCAKey, 0, 10000)
	k := mustKey(t, 7)
	mitm := evilCA.Issue(IssueOptions{Subject: "www.example.com", PublicKey: k.Public, ValidFrom: 0, ValidUntil: 10000})
	err := p.store.Verify([]*Certificate{mitm, evilCA.Cert}, "www.example.com", 500)
	if !errors.Is(err, ErrUntrusted) {
		t.Fatalf("err=%v, want ErrUntrusted (evil root not in store)", err)
	}
}

func TestVerifyTamperedCertificate(t *testing.T) {
	p := newTestPKI(t)
	tampered := *p.leafChain[0]
	tampered.Subject = "attacker.example.com"
	err := p.store.Verify([]*Certificate{&tampered, p.leafChain[1]}, "attacker.example.com", 500)
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err=%v, want ErrBadSignature", err)
	}
}

func TestVerifyNonCAIntermediateRejected(t *testing.T) {
	p := newTestPKI(t)
	// A leaf (non-CA) cannot issue.
	rogueKey := mustKey(t, 8)
	leafCert := p.leafChain[0]
	rogueCA := &CA{Cert: leafCert, key: p.leafKey.Private, crl: map[uint64]bool{}}
	rogue := rogueCA.Issue(IssueOptions{Subject: "forged.example.com", PublicKey: rogueKey.Public, ValidFrom: 100, ValidUntil: 1000})
	chain := []*Certificate{rogue, leafCert, p.leafChain[1]}
	err := p.store.Verify(chain, "forged.example.com", 500)
	if !errors.Is(err, ErrNotCA) {
		t.Fatalf("err=%v, want ErrNotCA", err)
	}
}

func TestVerifyRevoked(t *testing.T) {
	p := newTestPKI(t)
	p.intermediate.Revoke(p.leafChain[0].Serial)
	p.store.AddCRL(p.intermediate)
	err := p.store.Verify(p.leafChain, "www.example.com", 500)
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("err=%v, want ErrRevoked", err)
	}
}

func TestVerifyEmptyChain(t *testing.T) {
	p := newTestPKI(t)
	if err := p.store.Verify(nil, "x", 0); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("err=%v, want ErrEmptyChain", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := newTestPKI(t)
	blobs := EncodeChain(p.leafChain)
	chain, err := DecodeChain(blobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.store.Verify(chain, "www.example.com", 500); err != nil {
		t.Fatalf("decoded chain rejected: %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeCertificate([]byte("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeCertificate([]byte(`{"public_key":"aGk="}`)); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestDeterministicRand(t *testing.T) {
	a := mustKey(t, 42)
	b := mustKey(t, 42)
	if string(a.Public) != string(b.Public) {
		t.Fatal("same-seed keys differ")
	}
	c := mustKey(t, 43)
	if string(a.Public) == string(c.Public) {
		t.Fatal("different-seed keys identical")
	}
}

func TestSerialUniqueness(t *testing.T) {
	p := newTestPKI(t)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		k := mustKey(t, uint64(100+i))
		c := p.root.Issue(IssueOptions{Subject: "s", PublicKey: k.Public, ValidUntil: 1})
		if seen[c.Serial] {
			t.Fatal("duplicate serial issued")
		}
		seen[c.Serial] = true
	}
}

func TestMarkRevokedSingle(t *testing.T) {
	p := newTestPKI(t)
	p.store.MarkRevoked(p.leafChain[0].Serial)
	if err := p.store.Verify(p.leafChain, "www.example.com", 500); !errors.Is(err, ErrRevoked) {
		t.Fatalf("err=%v, want ErrRevoked", err)
	}
}
