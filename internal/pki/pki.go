// Package pki implements a minimal certificate infrastructure: Ed25519
// key pairs, certificates with real signature chains, CAs, expiry, name
// matching (including wildcards) and revocation lists.
//
// It substitutes for the Web PKI in the paper's TLS experiments (§2.1,
// §4): what matters there is the *distinction* between valid, expired,
// self-signed, revoked and MITM certificates, and that verification is
// cryptographically real — an attacker who does not hold a trusted CA key
// cannot mint a chain that verifies. X.509/ASN.1 encoding is replaced by
// a JSON certificate body, which changes nothing about those properties.
package pki

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
)

// Fingerprint is the canonical identity digest of an Ed25519 public
// key: its SHA-256. The discovery overlay derives node IDs from it, and
// anything that needs to name a key without shipping it (trust files,
// reputation claims) uses the same digest so identities compare equal
// across subsystems.
func Fingerprint(pub ed25519.PublicKey) [sha256.Size]byte {
	return sha256.Sum256(pub)
}

// Errors returned by Verify, comparable with errors.Is.
var (
	ErrExpired      = errors.New("pki: certificate expired or not yet valid")
	ErrBadSignature = errors.New("pki: signature verification failed")
	ErrUntrusted    = errors.New("pki: chain does not terminate at a trusted root")
	ErrNameMismatch = errors.New("pki: certificate name does not match")
	ErrRevoked      = errors.New("pki: certificate revoked")
	ErrNotCA        = errors.New("pki: issuer certificate is not a CA")
	ErrEmptyChain   = errors.New("pki: empty certificate chain")
)

// Certificate binds a subject name to a public key, signed by an issuer.
// Validity is expressed in seconds on the simulation timeline.
type Certificate struct {
	Serial     uint64            `json:"serial"`
	Subject    string            `json:"subject"`
	Issuer     string            `json:"issuer"`
	ValidFrom  int64             `json:"valid_from"`
	ValidUntil int64             `json:"valid_until"`
	IsCA       bool              `json:"is_ca"`
	PublicKey  ed25519.PublicKey `json:"public_key"`
	Signature  []byte            `json:"signature"`
}

// tbs returns the to-be-signed bytes: the certificate with its signature
// cleared, in deterministic JSON.
func (c *Certificate) tbs() []byte {
	clone := *c
	clone.Signature = nil
	b, err := json.Marshal(&clone)
	if err != nil {
		// Marshal of this struct cannot fail; panicking would hide a
		// programming error less visibly than this.
		panic("pki: marshal TBS: " + err.Error())
	}
	return b
}

// Encode serializes the certificate for embedding in TLS Certificate
// messages.
func (c *Certificate) Encode() []byte {
	b, err := json.Marshal(c)
	if err != nil {
		panic("pki: marshal certificate: " + err.Error())
	}
	return b
}

// DecodeCertificate parses a certificate blob produced by Encode.
func DecodeCertificate(data []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("pki: decode certificate: %w", err)
	}
	if len(c.PublicKey) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("pki: bad public key size %d", len(c.PublicKey))
	}
	return &c, nil
}

// EncodeChain serializes a chain leaf-first for the TLS layer.
func EncodeChain(chain []*Certificate) [][]byte {
	out := make([][]byte, len(chain))
	for i, c := range chain {
		out[i] = c.Encode()
	}
	return out
}

// DecodeChain parses the blobs from a TLS Certificate message.
func DecodeChain(blobs [][]byte) ([]*Certificate, error) {
	out := make([]*Certificate, len(blobs))
	for i, b := range blobs {
		c, err := DecodeCertificate(b)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// KeyPair is an Ed25519 key pair.
type KeyPair struct {
	Public  ed25519.PublicKey
	Private ed25519.PrivateKey
}

// GenerateKey creates a key pair from the given entropy source (pass a
// deterministic reader in tests and simulations).
func GenerateKey(rand io.Reader) (KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return KeyPair{}, fmt.Errorf("pki: generate key: %w", err)
	}
	return KeyPair{Public: pub, Private: priv}, nil
}

// serialCounter hands out unique serial numbers process-wide.
var serialCounter atomic.Uint64

// CA is a certificate authority: a (possibly self-signed) CA certificate
// plus its private key and revocation list.
type CA struct {
	Cert *Certificate
	key  ed25519.PrivateKey
	crl  map[uint64]bool
}

// NewRootCA creates a self-signed root valid over [validFrom, validUntil].
func NewRootCA(name string, kp KeyPair, validFrom, validUntil int64) *CA {
	c := &Certificate{
		Serial:     serialCounter.Add(1),
		Subject:    name,
		Issuer:     name,
		ValidFrom:  validFrom,
		ValidUntil: validUntil,
		IsCA:       true,
		PublicKey:  kp.Public,
	}
	c.Signature = ed25519.Sign(kp.Private, c.tbs())
	return &CA{Cert: c, key: kp.Private, crl: make(map[uint64]bool)}
}

// IssueOptions parameterize CA.Issue.
type IssueOptions struct {
	Subject    string
	PublicKey  ed25519.PublicKey
	ValidFrom  int64
	ValidUntil int64
	IsCA       bool
}

// Issue signs a new certificate for the given subject key.
func (ca *CA) Issue(opt IssueOptions) *Certificate {
	c := &Certificate{
		Serial:     serialCounter.Add(1),
		Subject:    opt.Subject,
		Issuer:     ca.Cert.Subject,
		ValidFrom:  opt.ValidFrom,
		ValidUntil: opt.ValidUntil,
		IsCA:       opt.IsCA,
		PublicKey:  opt.PublicKey,
	}
	c.Signature = ed25519.Sign(ca.key, c.tbs())
	return c
}

// Revoke adds a serial to this CA's revocation list.
func (ca *CA) Revoke(serial uint64) { ca.crl[serial] = true }

// Revoked reports whether the serial is on the CA's revocation list.
func (ca *CA) Revoked(serial uint64) bool { return ca.crl[serial] }

// SelfSign creates a certificate signed by its own key — the classic
// self-signed server cert that must fail verification against real roots.
func SelfSign(subject string, kp KeyPair, validFrom, validUntil int64) *Certificate {
	c := &Certificate{
		Serial:     serialCounter.Add(1),
		Subject:    subject,
		Issuer:     subject,
		ValidFrom:  validFrom,
		ValidUntil: validUntil,
		PublicKey:  kp.Public,
	}
	c.Signature = ed25519.Sign(kp.Private, c.tbs())
	return c
}

// TrustStore is a set of trusted root certificates plus revocation data.
type TrustStore struct {
	roots map[string]*Certificate // by subject
	// revoked aggregates CRLs the verifier has fetched.
	revoked map[uint64]bool
}

// NewTrustStore builds a store trusting the given roots.
func NewTrustStore(roots ...*Certificate) *TrustStore {
	ts := &TrustStore{roots: make(map[string]*Certificate), revoked: make(map[uint64]bool)}
	for _, r := range roots {
		ts.roots[r.Subject] = r
	}
	return ts
}

// AddCRL merges a CA's revocations into the store.
func (ts *TrustStore) AddCRL(ca *CA) {
	for serial := range ca.crl {
		ts.revoked[serial] = true
	}
}

// MarkRevoked records a single revoked serial (e.g. learned via OCSP-like
// checks).
func (ts *TrustStore) MarkRevoked(serial uint64) { ts.revoked[serial] = true }

// Verify checks a leaf-first chain: every signature, validity window and
// CA bit, termination at a trusted root, the leaf's name against
// wantName (supports single-label wildcards like *.example.com), and
// revocation. now is seconds on the simulation timeline.
func (ts *TrustStore) Verify(chain []*Certificate, wantName string, now int64) error {
	if len(chain) == 0 {
		return ErrEmptyChain
	}
	leaf := chain[0]
	if wantName != "" && !nameMatches(leaf.Subject, wantName) {
		return fmt.Errorf("%w: cert is for %q, want %q", ErrNameMismatch, leaf.Subject, wantName)
	}
	for i, c := range chain {
		if now < c.ValidFrom || now > c.ValidUntil {
			return fmt.Errorf("%w: %q valid [%d,%d], now %d", ErrExpired, c.Subject, c.ValidFrom, c.ValidUntil, now)
		}
		if ts.revoked[c.Serial] {
			return fmt.Errorf("%w: serial %d (%q)", ErrRevoked, c.Serial, c.Subject)
		}
		// Find the issuer: next element in the chain, or a trusted root.
		var issuer *Certificate
		if i+1 < len(chain) {
			issuer = chain[i+1]
			if !issuer.IsCA {
				return fmt.Errorf("%w: %q", ErrNotCA, issuer.Subject)
			}
		} else if root, ok := ts.roots[c.Issuer]; ok {
			issuer = root
			if issuer.Subject == c.Subject && string(issuer.PublicKey) == string(c.PublicKey) {
				// The chain's last element IS a trusted root
				// (self-signed); verify against itself below.
				issuer = c
			}
		} else {
			return fmt.Errorf("%w: issuer %q unknown", ErrUntrusted, c.Issuer)
		}
		if !ed25519.Verify(issuer.PublicKey, c.tbs(), c.Signature) {
			return fmt.Errorf("%w: %q signed by %q", ErrBadSignature, c.Subject, c.Issuer)
		}
		// If the issuer came from the trust store we are done walking.
		if i+1 >= len(chain) {
			// But the root we used must itself be trusted — it is, by
			// construction (looked up in ts.roots) — unless the chain
			// ended with a self-signed non-root.
			if _, ok := ts.roots[c.Issuer]; !ok {
				return fmt.Errorf("%w: issuer %q", ErrUntrusted, c.Issuer)
			}
		}
	}
	return nil
}

// nameMatches implements exact and single-label wildcard matching.
func nameMatches(pattern, name string) bool {
	pattern = strings.ToLower(pattern)
	name = strings.ToLower(name)
	if pattern == name {
		return true
	}
	if strings.HasPrefix(pattern, "*.") {
		suffix := pattern[1:] // ".example.com"
		if strings.HasSuffix(name, suffix) {
			head := strings.TrimSuffix(name, suffix)
			return head != "" && !strings.Contains(head, ".")
		}
	}
	return false
}
