// Middlebox state migration (§3.3 / Fig 1c: a roaming device carries
// its PVN across access networks). Stateful boxes — the split-TCP
// proxy's connection table, the classifier's flow labels, the PII
// detector's counters — lose their value if every handover cold-starts
// them. StatefulBox lets a deployment export each box's migratable
// state before teardown and import it into the instances the new
// network booted, so handover continues connections instead of
// resetting them. Boxes without state migrate trivially (they simply
// don't implement the interface).
package middlebox

import "fmt"

// StatefulBox is implemented by middlebox types whose usefulness
// depends on accumulated state. ExportState serializes the migratable
// state; ImportState merges a previously exported snapshot into the
// (typically fresh) box. Serialization must be deterministic for a
// given state so migrations are reproducible run-to-run.
type StatefulBox interface {
	Box
	ExportState() ([]byte, error)
	ImportState(data []byte) error
}

// ExportState serializes the named instance's box state. ok is false
// when the instance does not exist or its box carries no migratable
// state (not a StatefulBox).
func (r *Runtime) ExportState(id string) (data []byte, ok bool, err error) {
	inst := r.instances[id]
	if inst == nil {
		return nil, false, nil
	}
	sb, is := inst.Box.(StatefulBox)
	if !is {
		return nil, false, nil
	}
	data, err = sb.ExportState()
	if err != nil {
		return nil, false, fmt.Errorf("middlebox: export %s state: %w", id, err)
	}
	return data, true, nil
}

// ImportState merges a previously exported snapshot into the named
// instance's box. It is an error to import into an unknown instance or
// one whose box is not a StatefulBox — the caller matched the wrong
// instance, and silently dropping the state would turn a migration bug
// into a cold start.
func (r *Runtime) ImportState(id string, data []byte) error {
	inst := r.instances[id]
	if inst == nil {
		return fmt.Errorf("%w: %q", ErrInstanceunknown, id)
	}
	sb, is := inst.Box.(StatefulBox)
	if !is {
		return fmt.Errorf("middlebox: %s (%s) carries no migratable state", id, inst.Spec.Type)
	}
	if err := sb.ImportState(data); err != nil {
		return fmt.Errorf("middlebox: import %s state: %w", id, err)
	}
	return nil
}
