package middlebox

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pvn/internal/packet"
)

// passBox passes everything, optionally tagging the payload.
type passBox struct{ tag byte }

func (p *passBox) Name() string { return "pass" }
func (p *passBox) Process(ctx *Context, data []byte) ([]byte, Verdict, error) {
	if p.tag != 0 {
		return append(append([]byte(nil), data...), p.tag), VerdictPass, nil
	}
	return data, VerdictPass, nil
}

// dropBox drops everything.
type dropBox struct{}

func (dropBox) Name() string { return "drop" }
func (dropBox) Process(ctx *Context, data []byte) ([]byte, Verdict, error) {
	return nil, VerdictDrop, nil
}

// alertBox alerts on every packet.
type alertBox struct{}

func (alertBox) Name() string { return "alert" }
func (alertBox) Process(ctx *Context, data []byte) ([]byte, Verdict, error) {
	ctx.Alert("test-alert", "saw a packet")
	return data, VerdictPass, nil
}

func testRuntime(now *time.Duration) *Runtime {
	rt := NewRuntime(func() time.Duration { return *now })
	rt.Register(&Spec{Type: "pass", New: func(cfg map[string]string) (Box, error) {
		var tag byte
		if cfg["tag"] != "" {
			tag = cfg["tag"][0]
		}
		return &passBox{tag: tag}, nil
	}})
	rt.Register(&Spec{Type: "drop", New: func(cfg map[string]string) (Box, error) { return dropBox{}, nil }})
	rt.Register(&Spec{Type: "alert", New: func(cfg map[string]string) (Box, error) { return alertBox{}, nil }})
	return rt
}

func ipPacket(t *testing.T, src, dst string) []byte {
	t.Helper()
	ip := &packet.IPv4{Src: packet.MustParseIPv4(src), Dst: packet.MustParseIPv4(dst), Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: 1000, DstPort: 80}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, tcp, packet.Payload("payload"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// boot advances now past every instance's boot delay.
func boot(now *time.Duration) { *now += DefaultBootDelay + time.Millisecond }

func TestInstantiateDefaultsAndMemory(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	inst, err := rt.Instantiate("alice", "pass", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.ReadyAt != DefaultBootDelay {
		t.Fatalf("ReadyAt %v, want %v", inst.ReadyAt, DefaultBootDelay)
	}
	if rt.MemoryUsed() != DefaultMemoryBytes {
		t.Fatalf("memory %d, want %d", rt.MemoryUsed(), DefaultMemoryBytes)
	}
}

func TestInstantiateUnknownType(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	if _, err := rt.Instantiate("alice", "nope", nil); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err=%v", err)
	}
}

func TestMemoryCapEnforced(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	rt.MemoryCapBytes = 2 * DefaultMemoryBytes
	if _, err := rt.Instantiate("a", "pass", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Instantiate("a", "pass", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Instantiate("a", "pass", nil); !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("third instance err=%v, want ErrMemoryExceeded", err)
	}
	// Terminating frees capacity.
	insts := rt.InstancesOf("a")
	if err := rt.Terminate(insts[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Instantiate("a", "pass", nil); err != nil {
		t.Fatalf("after terminate: %v", err)
	}
}

func TestChainExecutionOrderAndTransform(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	i1, _ := rt.Instantiate("alice", "pass", map[string]string{"tag": "A"})
	i2, _ := rt.Instantiate("alice", "pass", map[string]string{"tag": "B"})
	if _, err := rt.BuildChain("alice", "c", []string{i1.ID, i2.ID}, nil); err != nil {
		t.Fatal(err)
	}
	boot(&now)
	in := ipPacket(t, "10.0.0.1", "10.0.0.2")
	out, delay, err := rt.ExecuteChain("alice/c", in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in)+2 || out[len(out)-2] != 'A' || out[len(out)-1] != 'B' {
		t.Fatal("chain transforms not applied in order")
	}
	if delay != 2*DefaultPerPacketDelay {
		t.Fatalf("delay %v, want %v", delay, 2*DefaultPerPacketDelay)
	}
	if i1.Packets != 1 || i2.Packets != 1 {
		t.Fatalf("packet counters %d/%d", i1.Packets, i2.Packets)
	}
}

func TestChainDropStopsPipeline(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	i1, _ := rt.Instantiate("alice", "drop", nil)
	i2, _ := rt.Instantiate("alice", "pass", nil)
	rt.BuildChain("alice", "c", []string{i1.ID, i2.ID}, nil)
	boot(&now)
	out, _, err := rt.ExecuteChain("alice/c", ipPacket(t, "10.0.0.1", "10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Fatal("dropped packet returned non-nil")
	}
	if i1.Drops != 1 {
		t.Fatalf("drop counter %d", i1.Drops)
	}
	if i2.Packets != 0 {
		t.Fatal("downstream box saw a dropped packet")
	}
}

func TestChainNotBootedYet(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	i1, _ := rt.Instantiate("alice", "pass", nil)
	rt.BuildChain("alice", "c", []string{i1.ID}, nil)
	// Do not advance time: instance still booting.
	_, _, err := rt.ExecuteChain("alice/c", ipPacket(t, "10.0.0.1", "10.0.0.2"))
	if !errors.Is(err, ErrNotBooted) {
		t.Fatalf("err=%v, want ErrNotBooted", err)
	}
}

func TestCrossUserChainRejected(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	mallory, _ := rt.Instantiate("mallory", "pass", nil)
	if _, err := rt.BuildChain("alice", "c", []string{mallory.ID}, nil); !errors.Is(err, ErrCrossUser) {
		t.Fatalf("err=%v, want ErrCrossUser", err)
	}
}

func TestDuplicateChainRejected(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	i1, _ := rt.Instantiate("alice", "pass", nil)
	if _, err := rt.BuildChain("alice", "c", []string{i1.ID}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BuildChain("alice", "c", []string{i1.ID}, nil); !errors.Is(err, ErrDuplicateChain) {
		t.Fatalf("err=%v, want ErrDuplicateChain", err)
	}
}

func TestIsolationByOwnerAddress(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	i1, _ := rt.Instantiate("alice", "pass", nil)
	owner := packet.MustParseIPv4("10.0.0.1")
	rt.BuildChain("alice", "c", []string{i1.ID}, []packet.IPv4Address{owner})
	boot(&now)

	// Alice's own traffic (as source and as destination) passes.
	if _, _, err := rt.ExecuteChain("alice/c", ipPacket(t, "10.0.0.1", "8.8.8.8")); err != nil {
		t.Fatalf("own src traffic rejected: %v", err)
	}
	if _, _, err := rt.ExecuteChain("alice/c", ipPacket(t, "8.8.8.8", "10.0.0.1")); err != nil {
		t.Fatalf("own dst traffic rejected: %v", err)
	}
	// Someone else's traffic is refused.
	if _, _, err := rt.ExecuteChain("alice/c", ipPacket(t, "10.0.0.99", "8.8.8.8")); !errors.Is(err, ErrIsolation) {
		t.Fatalf("foreign traffic err=%v, want ErrIsolation", err)
	}
}

func TestUnknownChain(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	if _, _, err := rt.ExecuteChain("alice/none", nil); !errors.Is(err, ErrUnknownChain) {
		t.Fatalf("err=%v", err)
	}
}

func TestAlertsRecordedPerOwner(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	ia, _ := rt.Instantiate("alice", "alert", nil)
	ib, _ := rt.Instantiate("bob", "alert", nil)
	rt.BuildChain("alice", "c", []string{ia.ID}, nil)
	rt.BuildChain("bob", "c", []string{ib.ID}, nil)
	boot(&now)
	rt.ExecuteChain("alice/c", ipPacket(t, "10.0.0.1", "10.0.0.2"))
	rt.ExecuteChain("alice/c", ipPacket(t, "10.0.0.1", "10.0.0.2"))
	rt.ExecuteChain("bob/c", ipPacket(t, "10.0.0.3", "10.0.0.4"))

	if got := len(rt.Alerts("alice")); got != 2 {
		t.Fatalf("alice alerts %d, want 2", got)
	}
	if got := len(rt.Alerts("bob")); got != 1 {
		t.Fatalf("bob alerts %d, want 1", got)
	}
	if got := len(rt.Alerts("")); got != 3 {
		t.Fatalf("all alerts %d, want 3", got)
	}
	if ia.Alerts != 2 {
		t.Fatalf("instance alert counter %d", ia.Alerts)
	}
}

func TestTeardownUser(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	rt.Instantiate("alice", "pass", nil)
	rt.Instantiate("alice", "pass", nil)
	ib, _ := rt.Instantiate("bob", "pass", nil)
	rt.BuildChain("bob", "c", []string{ib.ID}, nil)

	if n := rt.TeardownUser("alice"); n != 2 {
		t.Fatalf("tore down %d instances, want 2", n)
	}
	if rt.MemoryUsed() != DefaultMemoryBytes {
		t.Fatalf("memory %d after teardown, want one instance's worth", rt.MemoryUsed())
	}
	if rt.Chain("bob", "c") == nil {
		t.Fatal("bob's chain destroyed by alice's teardown")
	}
	if len(rt.InstancesOf("alice")) != 0 {
		t.Fatal("alice still has instances")
	}
}

func TestTerminateRemovesFromChains(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	i1, _ := rt.Instantiate("alice", "pass", map[string]string{"tag": "A"})
	i2, _ := rt.Instantiate("alice", "pass", map[string]string{"tag": "B"})
	rt.BuildChain("alice", "c", []string{i1.ID, i2.ID}, nil)
	boot(&now)
	if err := rt.Terminate(i1.ID); err != nil {
		t.Fatal(err)
	}
	in := ipPacket(t, "10.0.0.1", "10.0.0.2")
	out, _, err := rt.ExecuteChain("alice/c", in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in)+1 || out[len(out)-1] != 'B' {
		t.Fatal("terminated instance still in chain")
	}
}

func TestCPUTimeAccounting(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	i1, _ := rt.Instantiate("alice", "pass", nil)
	rt.BuildChain("alice", "c", []string{i1.ID}, nil)
	boot(&now)
	for i := 0; i < 10; i++ {
		rt.ExecuteChain("alice/c", ipPacket(t, "10.0.0.1", "10.0.0.2"))
	}
	if i1.CPUTime != 10*DefaultPerPacketDelay {
		t.Fatalf("CPU time %v, want %v", i1.CPUTime, 10*DefaultPerPacketDelay)
	}
	if i1.Bytes == 0 {
		t.Fatal("byte counter not updated")
	}
}

func TestRegisterReplaces(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	rt.Register(&Spec{Type: "pass", MemoryBytes: 1, New: func(cfg map[string]string) (Box, error) { return &passBox{}, nil }})
	inst, err := rt.Instantiate("a", "pass", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Spec.MemoryBytes != 1 {
		t.Fatal("re-registration did not replace spec")
	}
	found := false
	for _, typ := range rt.Types() {
		if typ == "pass" {
			found = true
		}
	}
	if !found {
		t.Fatal("Types() missing registered type")
	}
}

func TestChainKeyFormat(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	i1, _ := rt.Instantiate("alice", "pass", nil)
	c, err := rt.BuildChain("alice", "web", []string{i1.ID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "web" || c.Owner != "alice" {
		t.Fatalf("chain %+v", c)
	}
	boot(&now)
	if _, _, err := rt.ExecuteChain("alice/web", ipPacket(t, "1.1.1.1", "2.2.2.2")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(i1.ID, "pass-") {
		t.Fatalf("instance ID %q lacks type prefix", i1.ID)
	}
}

// errBox fails on every packet — the misbehaving user code the sandbox
// must contain.
type errBox struct{}

func (errBox) Name() string { return "err" }
func (errBox) Process(ctx *Context, data []byte) ([]byte, Verdict, error) {
	return nil, VerdictPass, errors.New("boom: user code fault")
}

func TestChainBoxErrorFailsClosed(t *testing.T) {
	now := time.Duration(0)
	rt := testRuntime(&now)
	rt.Register(&Spec{Type: "err", New: func(cfg map[string]string) (Box, error) { return errBox{}, nil }})
	i1, _ := rt.Instantiate("alice", "err", nil)
	i2, _ := rt.Instantiate("alice", "pass", nil)
	rt.BuildChain("alice", "c", []string{i1.ID, i2.ID}, nil)
	boot(&now)
	out, _, err := rt.ExecuteChain("alice/c", ipPacket(t, "10.0.0.1", "10.0.0.2"))
	if err == nil {
		t.Fatal("box error swallowed")
	}
	if out != nil {
		t.Fatal("packet passed a failing chain (must fail closed)")
	}
	if i1.Errors != 1 {
		t.Fatalf("error counter %d", i1.Errors)
	}
	if i2.Packets != 0 {
		t.Fatal("downstream box ran after the fault")
	}
}
