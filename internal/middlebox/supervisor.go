// Supervised middlebox execution (§3.3 "avoiding harm", "coping with
// unavailability"): a misbehaving box must degrade a PVN gracefully, not
// destroy it. The supervisor converts panics into counted failures,
// tracks per-instance health over a sliding error/panic window, opens a
// circuit breaker when an instance crosses its failure threshold, and
// restarts broken instances with capped exponential backoff. While an
// instance is unavailable its declared failure policy decides what
// happens to traffic: FailClosed drops the packet (the safe default for
// security boxes), FailOpen bypasses the broken hop (the right call for
// optimizers, whose absence merely loses a speedup).
//
// Every supervision decision is observable: counters in
// SupervisorStats, per-instance health via Instance.Health, and an
// optional OnEvent stream the daemon logs and the auditor converts into
// policy-violation evidence (a fail-open bypass of a security box means
// traffic crossed the PVN unscanned — exactly the kind of silent policy
// erosion §3.1's audits exist to surface).
package middlebox

import (
	"fmt"
	"sync/atomic"
	"time"
)

// FailPolicy declares what a chain does with a packet when one of its
// boxes is unavailable (broken, rebooting) or faults on the packet.
type FailPolicy uint8

// Failure policies. The zero value defers to the spec's default, then
// the runtime's, then FailClosed.
const (
	// PolicyDefault inherits: instance config > Spec.FailPolicy >
	// SupervisorConfig.DefaultPolicy > FailClosed.
	PolicyDefault FailPolicy = iota
	// FailClosed drops the packet when the box cannot process it —
	// today's behavior, and the only safe choice for security boxes.
	FailClosed
	// FailOpen forwards the packet past the unavailable box. Traffic
	// keeps flowing; the box's function is lost until it recovers.
	FailOpen
)

// String implements fmt.Stringer.
func (p FailPolicy) String() string {
	switch p {
	case FailClosed:
		return "closed"
	case FailOpen:
		return "open"
	default:
		return "default"
	}
}

// ParseFailPolicy parses "open", "closed" or ""/"default".
func ParseFailPolicy(s string) (FailPolicy, error) {
	switch s {
	case "", "default":
		return PolicyDefault, nil
	case "closed", "fail-closed":
		return FailClosed, nil
	case "open", "fail-open":
		return FailOpen, nil
	}
	return PolicyDefault, fmt.Errorf("middlebox: bad fail policy %q (want open or closed)", s)
}

// HealthState is the supervisor's view of one instance.
type HealthState uint8

// Health states, in escalation order. Probation is the breaker's
// half-open state: the instance has been restarted and is processing
// trial traffic; one failure sends it straight back to Broken.
const (
	Healthy HealthState = iota
	Degraded
	Broken
	Probation
)

// String implements fmt.Stringer.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Broken:
		return "broken"
	case Probation:
		return "probation"
	default:
		return fmt.Sprintf("health(%d)", uint8(h))
	}
}

// SupervisorConfig tunes the supervision layer. The zero value is live:
// 32-call window, breaker at 8 failures, degraded at 4, 200 ms initial
// restart backoff doubling to a 10 s cap, 8 probation packets.
type SupervisorConfig struct {
	// Window is the sliding window of recent Process outcomes per
	// instance, in calls. Clamped to 64. Zero means 32.
	Window int
	// BreakerThreshold is how many failures within Window open the
	// breaker. Zero means 8.
	BreakerThreshold int
	// DegradedThreshold is how many failures within Window mark the
	// instance Degraded. Zero means half of BreakerThreshold.
	DegradedThreshold int
	// RestartBackoff is the first breaker-open → restart cooldown.
	// Zero means 200 ms.
	RestartBackoff time.Duration
	// RestartBackoffMax caps the backoff doubling, so a hard-crashing
	// box retries at a bounded rate and otherwise pins open. Zero
	// means 10 s.
	RestartBackoffMax time.Duration
	// ProbationPackets is how many consecutive successes close the
	// breaker after a restart. Zero means 8.
	ProbationPackets int
	// DisableRestart leaves broken instances broken: the failure
	// policy applies until the control plane intervenes.
	DisableRestart bool
	// DefaultPolicy applies to instances whose config and spec both
	// leave the policy unset. PolicyDefault means FailClosed.
	DefaultPolicy FailPolicy
}

func (c *SupervisorConfig) window() int {
	if c.Window <= 0 {
		return 32
	}
	if c.Window > 64 {
		return 64
	}
	return c.Window
}

func (c *SupervisorConfig) breaker() int {
	if c.BreakerThreshold <= 0 {
		return 8
	}
	return c.BreakerThreshold
}

func (c *SupervisorConfig) degraded() int {
	if c.DegradedThreshold > 0 {
		return c.DegradedThreshold
	}
	d := c.breaker() / 2
	if d < 1 {
		d = 1
	}
	return d
}

func (c *SupervisorConfig) restartBackoff() time.Duration {
	if c.RestartBackoff <= 0 {
		return 200 * time.Millisecond
	}
	return c.RestartBackoff
}

func (c *SupervisorConfig) restartBackoffMax() time.Duration {
	if c.RestartBackoffMax <= 0 {
		return 10 * time.Second
	}
	return c.RestartBackoffMax
}

func (c *SupervisorConfig) probation() int {
	if c.ProbationPackets <= 0 {
		return 8
	}
	return c.ProbationPackets
}

// SupEventKind classifies a supervision event.
type SupEventKind uint8

// Supervision events.
const (
	// EventPanic: a Box.Process call panicked and was contained.
	EventPanic SupEventKind = iota
	// EventBoxError: a Box.Process call returned an error.
	EventBoxError
	// EventBreakerOpen: an instance crossed its failure threshold.
	EventBreakerOpen
	// EventRestart: a broken instance was rebuilt via Spec.New.
	EventRestart
	// EventRecovered: a restarted instance survived probation.
	EventRecovered
	// EventBypass: a packet crossed a fail-open box unprocessed.
	EventBypass
	// EventBrokenDrop: a packet was dropped by a fail-closed box's
	// unavailability.
	EventBrokenDrop
)

// String implements fmt.Stringer.
func (k SupEventKind) String() string {
	switch k {
	case EventPanic:
		return "panic"
	case EventBoxError:
		return "box-error"
	case EventBreakerOpen:
		return "breaker-open"
	case EventRestart:
		return "restart"
	case EventRecovered:
		return "recovered"
	case EventBypass:
		return "bypass"
	case EventBrokenDrop:
		return "broken-drop"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// SupEvent is one supervision decision, delivered to Runtime.OnEvent.
type SupEvent struct {
	Kind     SupEventKind
	Owner    string
	Instance string
	// Type is the middlebox type ("tls-verify", …).
	Type string
	// Security is the instance spec's Security flag: a Bypass with
	// Security set means traffic crossed the PVN unscanned and should
	// become auditor evidence.
	Security bool
	At       time.Duration
	Detail   string
}

// SupervisorStats is a point-in-time copy of the runtime's supervision
// counters.
type SupervisorStats struct {
	// Panics and BoxErrors count contained Process faults.
	Panics, BoxErrors int64
	// BreakerOpens, Restarts and Recoveries count state transitions.
	BreakerOpens, Restarts, Recoveries int64
	// Bypasses counts packets that crossed a fail-open box
	// unprocessed; SecurityBypasses is the subset where the box was a
	// security box (each of those is a policy violation).
	Bypasses, SecurityBypasses int64
	// BrokenDrops counts packets dropped by fail-closed unavailability.
	BrokenDrops int64
}

// supCounters is the runtime-internal atomic form of SupervisorStats,
// so metrics pollers (the sharded dataplane's Stats) can read while
// workers execute chains.
type supCounters struct {
	panics, boxErrors                  atomic.Int64
	breakerOpens, restarts, recoveries atomic.Int64
	bypasses, securityBypasses         atomic.Int64
	brokenDrops                        atomic.Int64
}

func (s *supCounters) snapshot() SupervisorStats {
	return SupervisorStats{
		Panics:           s.panics.Load(),
		BoxErrors:        s.boxErrors.Load(),
		BreakerOpens:     s.breakerOpens.Load(),
		Restarts:         s.restarts.Load(),
		Recoveries:       s.recoveries.Load(),
		Bypasses:         s.bypasses.Load(),
		SecurityBypasses: s.securityBypasses.Load(),
		BrokenDrops:      s.brokenDrops.Load(),
	}
}

// SupervisorStats returns the supervision counters. The counters are
// atomic, so this is safe to call from a metrics poller even while the
// runtime executes chains (via SyncExecutor or per-worker clones).
func (r *Runtime) SupervisorStats() SupervisorStats { return r.sup.snapshot() }

// health is the per-instance supervision state: a bitmask ring of the
// last window() Process outcomes plus breaker bookkeeping. It lives
// inside Instance and is touched only under the runtime's execution
// contract (single goroutine, or serialized via SyncExecutor).
type health struct {
	state HealthState
	// window bit i set = call at ring slot i failed.
	window      uint64
	wpos, wfill int
	fails       int
	// backoff is the current restart cooldown; doubles per breaker
	// open without an intervening recovery, capped.
	backoff   time.Duration
	restartAt time.Duration
	// probationLeft counts successes still needed to close the breaker.
	probationLeft int
}

// push records one outcome into the sliding window and returns the
// failure count now in view.
func (h *health) push(fail bool, size int) int {
	bit := uint64(1) << uint(h.wpos)
	if h.wfill == size {
		if h.window&bit != 0 {
			h.fails--
		}
	} else {
		h.wfill++
	}
	if fail {
		h.window |= bit
		h.fails++
	} else {
		h.window &^= bit
	}
	h.wpos = (h.wpos + 1) % size
	return h.fails
}

func (h *health) clearWindow() {
	h.window, h.wpos, h.wfill, h.fails = 0, 0, 0, 0
}

// Health reports the instance's supervision state.
func (i *Instance) Health() HealthState { return i.hlt.state }

func (r *Runtime) emit(ev SupEvent) {
	if r.OnEvent != nil {
		r.OnEvent(ev)
	}
}

func (r *Runtime) instEvent(kind SupEventKind, inst *Instance, at time.Duration, detail string) {
	r.emit(SupEvent{
		Kind: kind, Owner: inst.Owner, Instance: inst.ID, Type: inst.Spec.Type,
		Security: inst.Spec.Security, At: at, Detail: detail,
	})
}

// callBox invokes Box.Process with panic containment: a panicking box
// yields an ErrBoxPanic-wrapped error instead of unwinding the worker
// (and with it every chain sharing the runtime).
func callBox(ctx *Context, b Box, data []byte) (out []byte, v Verdict, err error, panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			out, v = nil, VerdictDrop
			err = fmt.Errorf("%w: %v", ErrBoxPanic, p)
			panicked = true
		}
	}()
	out, v, err = b.Process(ctx, data)
	return
}

// recordFailure feeds one fault into the instance's window and walks the
// healthy → degraded → broken ladder. A probation failure re-opens the
// breaker immediately (half-open semantics).
func (r *Runtime) recordFailure(inst *Instance, at time.Duration) {
	h := &inst.hlt
	if h.state == Probation {
		r.openBreaker(inst, at)
		return
	}
	fails := h.push(true, r.Supervisor.window())
	switch {
	case fails >= r.Supervisor.breaker():
		r.openBreaker(inst, at)
	case fails >= r.Supervisor.degraded() && h.state == Healthy:
		h.state = Degraded
	}
}

// recordSuccess feeds one clean call into the window; enough of them
// close a half-open breaker or clear a degraded mark.
func (r *Runtime) recordSuccess(inst *Instance, at time.Duration) {
	h := &inst.hlt
	if h.state == Probation {
		h.probationLeft--
		if h.probationLeft <= 0 {
			h.state = Healthy
			h.clearWindow()
			h.backoff = 0
			r.sup.recoveries.Add(1)
			r.instEvent(EventRecovered, inst, at, "survived probation")
		}
		return
	}
	fails := h.push(false, r.Supervisor.window())
	if h.state == Degraded && fails < r.Supervisor.degraded() {
		h.state = Healthy
	}
}

// openBreaker marks the instance broken and schedules its restart with
// capped exponential backoff.
func (r *Runtime) openBreaker(inst *Instance, at time.Duration) {
	h := &inst.hlt
	h.state = Broken
	if h.backoff == 0 {
		h.backoff = r.Supervisor.restartBackoff()
	} else {
		h.backoff *= 2
		if max := r.Supervisor.restartBackoffMax(); h.backoff > max {
			h.backoff = max
		}
	}
	h.restartAt = at + h.backoff
	h.clearWindow()
	r.sup.breakerOpens.Add(1)
	r.instEvent(EventBreakerOpen, inst, at, fmt.Sprintf("restart in %v", h.backoff))
}

// maybeRestart rebuilds a broken instance once its cooldown has elapsed
// (in simulated time): a fresh Box from Spec.New, a fresh BootDelay, the
// same ID, chain membership and counters. The restart is modelled as
// having been initiated at restartAt, so ReadyAt = restartAt + boot —
// an instance whose cooldown and boot both fit inside a quiet period is
// simply ready when traffic returns.
func (r *Runtime) maybeRestart(inst *Instance, at time.Duration) {
	h := &inst.hlt
	if r.Supervisor.DisableRestart || at < h.restartAt {
		return
	}
	box, err := inst.Spec.New(inst.cfg)
	if err != nil {
		// The factory itself is failing: stay broken, widen the retry.
		h.backoff *= 2
		if max := r.Supervisor.restartBackoffMax(); h.backoff > max {
			h.backoff = max
		}
		h.restartAt = at + h.backoff
		r.instEvent(EventBoxError, inst, at, fmt.Sprintf("restart failed: %v", err))
		return
	}
	inst.Box = box
	inst.ReadyAt = h.restartAt + inst.Spec.boot()
	inst.Restarts++
	h.state = Probation
	h.probationLeft = r.Supervisor.probation()
	r.sup.restarts.Add(1)
	r.instEvent(EventRestart, inst, at, fmt.Sprintf("ready at %v (restart #%d)", inst.ReadyAt, inst.Restarts))
}

// noteBypass accounts one packet crossing inst without being processed
// (fail-open policy over a faulting, broken or rebooting box). Bypasses
// of security boxes are flagged for the auditor: that packet crossed
// the PVN unscanned.
func (r *Runtime) noteBypass(inst *Instance, at time.Duration, reason string) {
	inst.Bypasses++
	r.sup.bypasses.Add(1)
	if inst.Spec.Security {
		r.sup.securityBypasses.Add(1)
	}
	r.instEvent(EventBypass, inst, at, reason)
}
