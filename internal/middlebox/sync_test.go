package middlebox

import (
	"sync"
	"testing"
	"time"
)

// syncAlertBox records an alert per packet — the worst case for
// concurrent chain execution, since alerts funnel into shared runtime
// state.
type syncAlertBox struct{}

func (syncAlertBox) Name() string { return "alert" }
func (syncAlertBox) Process(ctx *Context, data []byte) ([]byte, Verdict, error) {
	ctx.Alert("test", "per-packet finding")
	return data, VerdictPass, nil
}

// TestSyncExecutorConcurrent is the regression test for the dataplane
// concurrency contract: a Runtime shared by many workers must be driven
// through Synchronized. Run with -race.
func TestSyncExecutorConcurrent(t *testing.T) {
	rt := NewRuntime(nil)
	rt.Register(&Spec{Type: "alert", New: func(map[string]string) (Box, error) { return syncAlertBox{}, nil }})
	inst, err := rt.Instantiate("u", "alert", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BuildChain("u", "c", []string{inst.ID}, nil); err != nil {
		t.Fatal(err)
	}
	rt.Now = func() time.Duration { return time.Second } // everything booted

	exec := Synchronized(rt)
	const workers, packets = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < packets; i++ {
				if _, _, err := exec.ExecuteChain("u/c", []byte("pkt")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := inst.Packets; got != workers*packets {
		t.Errorf("instance packets = %d, want %d", got, workers*packets)
	}
	if got := len(rt.Alerts("u")); got != workers*packets {
		t.Errorf("alerts = %d, want %d", got, workers*packets)
	}
	if exec.Runtime() != rt {
		t.Error("Runtime() accessor broken")
	}
}
