package middlebox_test

// Supervised-execution tests. These live in an external package because
// they drive the supervisor through mbx.FaultyBox, and mbx imports
// middlebox — the in-package test file cannot.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pvn/internal/middlebox"
	"pvn/internal/middlebox/mbx"
	"pvn/internal/packet"
)

// supRuntime builds a runtime with the builtin registry (including the
// "faulty" type) on a controllable clock.
func supRuntime(now *time.Duration) *middlebox.Runtime {
	rt := middlebox.NewRuntime(func() time.Duration { return *now })
	mbx.RegisterBuiltins(rt, mbx.Deps{})
	return rt
}

func supPacket(t *testing.T) []byte {
	t.Helper()
	ip := &packet.IPv4{Src: packet.MustParseIPv4("10.0.0.5"), Dst: packet.MustParseIPv4("93.184.216.34"), Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: 1000, DstPort: 80}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, tcp, packet.Payload("supervised payload"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// supChain instantiates pass → faulty(cfg) → pass for alice, boots them,
// and returns the chain plus the faulty instance.
func supChain(t *testing.T, rt *middlebox.Runtime, now *time.Duration, cfg map[string]string) (*middlebox.Chain, *middlebox.Instance) {
	t.Helper()
	rt.Register(&middlebox.Spec{Type: "passthru", New: func(map[string]string) (middlebox.Box, error) {
		return mbx.NewFaultyBox(nil, mbx.FaultPlan{}, 1), nil
	}})
	a, err := rt.Instantiate("alice", "passthru", nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rt.Instantiate("alice", "faulty", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Instantiate("alice", "passthru", nil)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := rt.BuildChain("alice", "c", []string{a.ID, f.ID, b.ID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	*now += middlebox.DefaultBootDelay + time.Millisecond
	return ch, f
}

// TestSupervisedFaultKinds is the satellite's table: a panicking, an
// erroring, and an output-corrupting box each leave counters, health
// state, and sibling chains consistent.
func TestSupervisedFaultKinds(t *testing.T) {
	cases := []struct {
		name string
		cfg  map[string]string
		// wantErr is a sentinel the chain error must wrap (nil = chain
		// must succeed).
		wantErr              error
		wantPanics, wantErrs int64
		wantCorrupt          bool
		wantHealth           middlebox.HealthState
	}{
		{
			name:       "panicking",
			cfg:        map[string]string{"panic-every": "1"},
			wantErr:    middlebox.ErrBoxPanic,
			wantPanics: 1, wantErrs: 1,
			wantHealth: middlebox.Healthy, // one failure, threshold 8
		},
		{
			name:       "erroring",
			cfg:        map[string]string{"error-every": "1"},
			wantErr:    errors.New("faulty: injected error"),
			wantErrs:   1,
			wantHealth: middlebox.Healthy,
		},
		{
			name:        "corrupting",
			cfg:         map[string]string{"corrupt-every": "1"},
			wantCorrupt: true,
			// Well-formed-but-wrong output is invisible to the
			// supervisor: no oracle, no failure, Healthy.
			wantHealth: middlebox.Healthy,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			now := time.Duration(0)
			rt := supRuntime(&now)
			_, faulty := supChain(t, rt, &now, tc.cfg)

			// A sibling chain owned by another user, sharing the runtime.
			sib, err := rt.Instantiate("bob", "passthru", nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rt.BuildChain("bob", "side", []string{sib.ID}, nil); err != nil {
				t.Fatal(err)
			}
			now += middlebox.DefaultBootDelay

			pkt := supPacket(t)
			out, _, err := rt.ExecuteChain("alice/c", pkt)
			if tc.wantErr != nil {
				if err == nil || !strings.Contains(err.Error(), strings.TrimPrefix(tc.wantErr.Error(), "middlebox: ")) {
					t.Fatalf("chain err = %v, want wrapping %v", err, tc.wantErr)
				}
			} else if err != nil {
				t.Fatalf("chain err = %v, want success", err)
			}
			if tc.wantCorrupt {
				if out == nil || len(out) != len(pkt) {
					t.Fatalf("corrupting chain returned %d bytes, want %d", len(out), len(pkt))
				}
				diff := 0
				for i := range out {
					if out[i] != pkt[i] {
						diff++
					}
				}
				if diff != 1 {
					t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
				}
			}
			if faulty.Panics != tc.wantPanics || faulty.Errors != tc.wantErrs {
				t.Fatalf("panics/errors = %d/%d, want %d/%d", faulty.Panics, faulty.Errors, tc.wantPanics, tc.wantErrs)
			}
			if got := faulty.Health(); got != tc.wantHealth {
				t.Fatalf("health = %v, want %v", got, tc.wantHealth)
			}

			// The sibling chain is untouched by alice's fault.
			if out, _, err := rt.ExecuteChain("bob/side", pkt); err != nil || out == nil {
				t.Fatalf("sibling chain broken by alice's fault: %v", err)
			}
			if sib.Packets != 1 || sib.Errors != 0 {
				t.Fatalf("sibling counters %d/%d, want 1/0", sib.Packets, sib.Errors)
			}

			st := rt.SupervisorStats()
			if st.Panics != tc.wantPanics || st.BoxErrors != tc.wantErrs-tc.wantPanics {
				t.Fatalf("stats %+v inconsistent with %d panics / %d errors", st, tc.wantPanics, tc.wantErrs)
			}
		})
	}
}

// TestBreakerOpensAtThreshold: a fail-open box that always panics trips
// the breaker after exactly BreakerThreshold failures, after which the
// box is bypassed without running its code.
func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Duration(0)
	rt := supRuntime(&now)
	rt.Supervisor = middlebox.SupervisorConfig{BreakerThreshold: 4}
	var events []middlebox.SupEvent
	rt.OnEvent = func(ev middlebox.SupEvent) { events = append(events, ev) }
	_, faulty := supChain(t, rt, &now, map[string]string{"panic-every": "1", "fail": "open"})

	pkt := supPacket(t)
	for i := 0; i < 10; i++ {
		out, _, err := rt.ExecuteChain("alice/c", pkt)
		if err != nil || out == nil {
			t.Fatalf("packet %d: fail-open chain must deliver: %v", i, err)
		}
	}
	if faulty.Health() != middlebox.Broken {
		t.Fatalf("health = %v, want broken", faulty.Health())
	}
	box := faulty.Box.(*mbx.FaultyBox)
	if box.Calls() != 4 {
		t.Fatalf("box saw %d calls, want exactly 4 (threshold) before breaker opened", box.Calls())
	}
	if faulty.Panics != 4 {
		t.Fatalf("panics = %d, want 4", faulty.Panics)
	}
	// 6 of the 10 packets crossed the open breaker as bypasses; the 4
	// faulting ones were also bypassed (fail-open fault).
	if faulty.Bypasses != 10 {
		t.Fatalf("bypasses = %d, want 10", faulty.Bypasses)
	}
	st := rt.SupervisorStats()
	if st.BreakerOpens != 1 || st.Panics != 4 || st.Bypasses != 10 {
		t.Fatalf("stats %+v, want 1 open / 4 panics / 10 bypasses", st)
	}
	opens := 0
	for _, ev := range events {
		if ev.Kind == middlebox.EventBreakerOpen {
			opens++
			if ev.Instance != faulty.ID || ev.Type != "faulty" {
				t.Fatalf("breaker event names %s/%s, want %s/faulty", ev.Instance, ev.Type, faulty.ID)
			}
		}
	}
	if opens != 1 {
		t.Fatalf("saw %d breaker-open events, want 1", opens)
	}
}

// TestRestartAfterCooldown: a box that is hard-down for a window breaks,
// restarts after its cooldown with the same identity and cumulative
// counters, survives probation, and is Healthy again.
func TestRestartAfterCooldown(t *testing.T) {
	now := time.Duration(0)
	rt := supRuntime(&now)
	rt.Supervisor = middlebox.SupervisorConfig{BreakerThreshold: 3, RestartBackoff: 100 * time.Millisecond, ProbationPackets: 2}
	// Hard-down until t=200ms, clean after.
	_, faulty := supChain(t, rt, &now, map[string]string{"fail-until-ms": "200", "fail": "open", "seed": "7"})
	id, oldBox := faulty.ID, faulty.Box

	pkt := supPacket(t)
	for i := 0; i < 3; i++ { // trip the breaker during the storm
		rt.ExecuteChain("alice/c", pkt)
	}
	if faulty.Health() != middlebox.Broken {
		t.Fatalf("health = %v, want broken", faulty.Health())
	}
	packetsSoFar := faulty.Packets

	// Advance past cooldown (opened ~31ms, +100ms backoff) AND the fault
	// window AND the fresh boot delay, then send trial traffic.
	now = 400 * time.Millisecond
	if out, _, err := rt.ExecuteChain("alice/c", pkt); err != nil || out == nil {
		t.Fatalf("post-restart packet: %v", err)
	}
	if faulty.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", faulty.Restarts)
	}
	if faulty.ID != id {
		t.Fatalf("restart changed ID %s -> %s", id, faulty.ID)
	}
	if faulty.Box == oldBox {
		t.Fatal("restart did not rebuild the box via Spec.New")
	}
	if faulty.Packets != packetsSoFar+1 {
		t.Fatalf("packets = %d, want cumulative %d", faulty.Packets, packetsSoFar+1)
	}
	if faulty.Health() != middlebox.Probation {
		t.Fatalf("health = %v, want probation after first clean packet", faulty.Health())
	}
	if out, _, err := rt.ExecuteChain("alice/c", pkt); err != nil || out == nil {
		t.Fatalf("probation packet: %v", err)
	}
	if faulty.Health() != middlebox.Healthy {
		t.Fatalf("health = %v, want healthy after %d probation successes", faulty.Health(), 2)
	}
	st := rt.SupervisorStats()
	if st.Restarts != 1 || st.Recoveries != 1 {
		t.Fatalf("stats %+v, want 1 restart / 1 recovery", st)
	}
}

// TestProbationFailureDoublesBackoff: failing during probation re-opens
// the breaker immediately with a doubled cooldown.
func TestProbationFailureDoublesBackoff(t *testing.T) {
	now := time.Duration(0)
	rt := supRuntime(&now)
	rt.Supervisor = middlebox.SupervisorConfig{BreakerThreshold: 2, RestartBackoff: 100 * time.Millisecond}
	var opens []string
	rt.OnEvent = func(ev middlebox.SupEvent) {
		if ev.Kind == middlebox.EventBreakerOpen {
			opens = append(opens, ev.Detail)
		}
	}
	// Always-panicking box: probation can never succeed.
	_, faulty := supChain(t, rt, &now, map[string]string{"panic-every": "1", "fail": "open"})

	pkt := supPacket(t)
	rt.ExecuteChain("alice/c", pkt)
	rt.ExecuteChain("alice/c", pkt) // threshold 2 → breaker opens
	now += time.Second              // past cooldown + boot
	rt.ExecuteChain("alice/c", pkt) // restart, probation packet panics → reopen
	if faulty.Health() != middlebox.Broken {
		t.Fatalf("health = %v, want broken after probation failure", faulty.Health())
	}
	if len(opens) != 2 {
		t.Fatalf("saw %d breaker opens, want 2 (%v)", len(opens), opens)
	}
	if !strings.Contains(opens[0], "100ms") || !strings.Contains(opens[1], "200ms") {
		t.Fatalf("backoff did not double: %v", opens)
	}
	if faulty.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", faulty.Restarts)
	}
}

// TestFailPolicyResolution checks the override chain: instance config
// beats spec default beats runtime default.
func TestFailPolicyResolution(t *testing.T) {
	now := time.Duration(0)
	rt := supRuntime(&now)
	rt.Supervisor.DefaultPolicy = middlebox.FailOpen

	cases := []struct {
		typ  string
		cfg  map[string]string
		want middlebox.FailPolicy
	}{
		{"faulty", nil, middlebox.FailOpen},                                                          // runtime default (spec unset)
		{"faulty", map[string]string{"fail": "closed"}, middlebox.FailClosed},                        // cfg override
		{"tracker-block", map[string]string{"domains": "x.com"}, middlebox.FailClosed},               // spec default
		{"compressor", nil, middlebox.FailOpen},                                                      // spec default
		{"tracker-block", map[string]string{"domains": "x.com", "fail": "open"}, middlebox.FailOpen}, // cfg beats spec
	}
	for _, tc := range cases {
		inst, err := rt.Instantiate("alice", tc.typ, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.typ, err)
		}
		if inst.Policy != tc.want {
			t.Fatalf("%s cfg=%v: policy %v, want %v", tc.typ, tc.cfg, inst.Policy, tc.want)
		}
	}
	if _, err := rt.Instantiate("alice", "faulty", map[string]string{"fail": "sideways"}); err == nil {
		t.Fatal("bad fail policy accepted")
	}
}

// TestFailClosedBrokenDropsTraffic: once a fail-closed box breaks, the
// chain returns ErrBoxBroken until the box recovers.
func TestFailClosedBrokenDropsTraffic(t *testing.T) {
	now := time.Duration(0)
	rt := supRuntime(&now)
	rt.Supervisor = middlebox.SupervisorConfig{BreakerThreshold: 2, DisableRestart: true}
	_, faulty := supChain(t, rt, &now, map[string]string{"panic-every": "1"}) // fail-closed default

	pkt := supPacket(t)
	for i := 0; i < 2; i++ {
		if _, _, err := rt.ExecuteChain("alice/c", pkt); !errors.Is(err, middlebox.ErrBoxPanic) {
			t.Fatalf("packet %d: err = %v, want ErrBoxPanic", i, err)
		}
	}
	if faulty.Health() != middlebox.Broken {
		t.Fatalf("health = %v, want broken", faulty.Health())
	}
	now += time.Hour // DisableRestart: time heals nothing
	for i := 0; i < 3; i++ {
		if _, _, err := rt.ExecuteChain("alice/c", pkt); !errors.Is(err, middlebox.ErrBoxBroken) {
			t.Fatalf("broken packet %d: err = %v, want ErrBoxBroken", i, err)
		}
	}
	if faulty.Unavailable != 3 {
		t.Fatalf("unavailable = %d, want 3", faulty.Unavailable)
	}
	if faulty.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0 with DisableRestart", faulty.Restarts)
	}
	if st := rt.SupervisorStats(); st.BrokenDrops != 3 {
		t.Fatalf("stats %+v, want 3 broken drops", st)
	}
}

// TestSecurityBypassFlagged: bypassing a fail-open *security* box flags
// the event and counter the auditor consumes.
func TestSecurityBypassFlagged(t *testing.T) {
	now := time.Duration(0)
	rt := supRuntime(&now)
	rt.Register(&middlebox.Spec{
		Type: "flaky-scan", Security: true, FailPolicy: middlebox.FailOpen,
		New: func(cfg map[string]string) (middlebox.Box, error) {
			return mbx.NewFaultyBox(nil, mbx.FaultPlan{ErrorEvery: 1}, 1), nil
		},
	})
	var secEvents int
	rt.OnEvent = func(ev middlebox.SupEvent) {
		if ev.Kind == middlebox.EventBypass && ev.Security {
			secEvents++
		}
	}
	inst, err := rt.Instantiate("alice", "flaky-scan", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BuildChain("alice", "sec", []string{inst.ID}, nil); err != nil {
		t.Fatal(err)
	}
	now += middlebox.DefaultBootDelay

	pkt := supPacket(t)
	for i := 0; i < 5; i++ {
		if out, _, err := rt.ExecuteChain("alice/sec", pkt); err != nil || out == nil {
			t.Fatalf("fail-open security chain must deliver: %v", err)
		}
	}
	st := rt.SupervisorStats()
	if st.Bypasses != 5 || st.SecurityBypasses != 5 {
		t.Fatalf("stats %+v, want 5 bypasses all flagged security", st)
	}
	if secEvents != 5 {
		t.Fatalf("saw %d security bypass events, want 5", secEvents)
	}
}

// TestTerminateEmptiedChainPolicy is the satellite regression test: a
// chain emptied by Terminate follows the failure policy of the boxes it
// lost — fail-closed residue drops traffic, fail-open residue passes it.
func TestTerminateEmptiedChainPolicy(t *testing.T) {
	now := time.Duration(0)
	rt := supRuntime(&now)

	closed, err := rt.Instantiate("alice", "faulty", nil) // fail-closed default
	if err != nil {
		t.Fatal(err)
	}
	open, err := rt.Instantiate("alice", "faulty", map[string]string{"fail": "open"})
	if err != nil {
		t.Fatal(err)
	}
	chClosed, err := rt.BuildChain("alice", "guard", []string{closed.ID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	chOpen, err := rt.BuildChain("alice", "opt", []string{open.ID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	now += middlebox.DefaultBootDelay

	if err := rt.Terminate(closed.ID); err != nil {
		t.Fatal(err)
	}
	if err := rt.Terminate(open.ID); err != nil {
		t.Fatal(err)
	}
	if !chClosed.FailClosedResidue() {
		t.Fatal("chain that lost a fail-closed box must carry residue")
	}
	if chOpen.FailClosedResidue() {
		t.Fatal("chain that lost only fail-open boxes must not carry residue")
	}

	pkt := supPacket(t)
	if _, _, err := rt.ExecuteChain("alice/guard", pkt); !errors.Is(err, middlebox.ErrDropped) {
		t.Fatalf("emptied fail-closed chain: err = %v, want ErrDropped", err)
	}
	if out, _, err := rt.ExecuteChain("alice/opt", pkt); err != nil || out == nil {
		t.Fatalf("emptied fail-open chain must pass: %v", err)
	}
}

// TestAlertRingBounded: the runtime retains at most AlertCap alerts,
// evicts oldest-first, and counts what it dropped.
func TestAlertRingBounded(t *testing.T) {
	now := time.Duration(0)
	rt := supRuntime(&now)
	rt.AlertCap = 8
	rt.Register(&middlebox.Spec{Type: "alerter", New: func(map[string]string) (middlebox.Box, error) {
		return alertEvery{}, nil
	}})
	inst, err := rt.Instantiate("alice", "alerter", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BuildChain("alice", "a", []string{inst.ID}, nil); err != nil {
		t.Fatal(err)
	}
	now += middlebox.DefaultBootDelay

	pkt := supPacket(t)
	for i := 0; i < 20; i++ {
		now += time.Millisecond
		if _, _, err := rt.ExecuteChain("alice/a", pkt); err != nil {
			t.Fatal(err)
		}
	}
	alerts := rt.Alerts("alice")
	if len(alerts) != 8 {
		t.Fatalf("retained %d alerts, want cap 8", len(alerts))
	}
	if rt.AlertsDropped() != 12 {
		t.Fatalf("dropped = %d, want 12", rt.AlertsDropped())
	}
	// Oldest-first: the survivors are packets 13..20.
	for i, a := range alerts {
		if want := middlebox.DefaultBootDelay + time.Duration(13+i)*time.Millisecond; a.At != want {
			t.Fatalf("alert %d at %v, want %v (oldest-first ring order)", i, a.At, want)
		}
	}
	if inst.Alerts != 20 {
		t.Fatalf("instance alert counter %d, want 20 (eviction never loses the count)", inst.Alerts)
	}
}

// alertEvery raises one alert per packet.
type alertEvery struct{}

func (alertEvery) Name() string { return "alerter" }
func (alertEvery) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	ctx.Alert("test", fmt.Sprintf("pkt at %v", ctx.Now))
	return data, middlebox.VerdictPass, nil
}
