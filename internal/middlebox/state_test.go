package middlebox

import (
	"errors"
	"testing"
	"time"
)

// statefulTestBox carries one counter through Export/Import.
type statefulTestBox struct {
	plainTestBox
	n byte
}

func (b *statefulTestBox) ExportState() ([]byte, error) { return []byte{b.n}, nil }
func (b *statefulTestBox) ImportState(data []byte) error {
	if len(data) != 1 {
		return errors.New("bad snapshot")
	}
	b.n += data[0]
	return nil
}

// plainTestBox has no migratable state.
type plainTestBox struct{}

func (plainTestBox) Name() string { return "plain" }
func (plainTestBox) Process(ctx *Context, data []byte) ([]byte, Verdict, error) {
	return data, VerdictPass, nil
}

func stateRuntime(t *testing.T) (*Runtime, *Instance, *Instance) {
	t.Helper()
	rt := NewRuntime(func() time.Duration { return 0 })
	rt.Register(&Spec{Type: "stateful", New: func(map[string]string) (Box, error) {
		return &statefulTestBox{n: 7}, nil
	}})
	rt.Register(&Spec{Type: "plain", New: func(map[string]string) (Box, error) {
		return plainTestBox{}, nil
	}})
	si, err := rt.Instantiate("u", "stateful", nil)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := rt.Instantiate("u", "plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt, si, pi
}

func TestRuntimeExportImportState(t *testing.T) {
	rt, si, pi := stateRuntime(t)

	data, ok, err := rt.ExportState(si.ID)
	if err != nil || !ok || len(data) != 1 || data[0] != 7 {
		t.Fatalf("export %v %v %v", data, ok, err)
	}
	// Non-stateful and unknown instances export nothing, without error.
	if _, ok, err := rt.ExportState(pi.ID); ok || err != nil {
		t.Fatalf("plain export ok=%v err=%v", ok, err)
	}
	if _, ok, err := rt.ExportState("ghost"); ok || err != nil {
		t.Fatalf("ghost export ok=%v err=%v", ok, err)
	}

	if err := rt.ImportState(si.ID, data); err != nil {
		t.Fatal(err)
	}
	if got := si.Box.(*statefulTestBox).n; got != 14 {
		t.Fatalf("imported counter %d", got)
	}
	// Importing into the wrong target is an error, not a silent drop.
	if err := rt.ImportState(pi.ID, data); err == nil {
		t.Fatal("import into stateless box accepted")
	}
	if err := rt.ImportState("ghost", data); !errors.Is(err, ErrInstanceunknown) {
		t.Fatalf("ghost import err=%v", err)
	}
	if err := rt.ImportState(si.ID, []byte{1, 2}); err == nil {
		t.Fatal("bad snapshot accepted")
	}
}
