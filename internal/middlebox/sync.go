package middlebox

import (
	"sync"
	"time"
)

// SyncExecutor makes one Runtime shareable by concurrent dataplane
// workers by serializing chain execution on a mutex.
//
// A bare Runtime is NOT goroutine-safe: ExecuteChain mutates instance
// counters, box state and the alert log without synchronization, and
// each Context it creates is a single-goroutine, single-packet scratch
// object. Callers therefore have exactly two safe options, both
// exercised by the dataplane's regression tests:
//
//   - wrap the shared Runtime in a SyncExecutor (correct, but chain
//     execution becomes the serial section of the pipeline), or
//   - give every worker its own Runtime clone (scales linearly; see
//     dataplane.Config.ChainsFor), keeping per-instance state
//     worker-private.
type SyncExecutor struct {
	mu sync.Mutex
	rt *Runtime
}

// Synchronized wraps rt so ExecuteChain may be called from any number of
// goroutines.
func Synchronized(rt *Runtime) *SyncExecutor { return &SyncExecutor{rt: rt} }

// ExecuteChain implements openflow.ChainExecutor.
func (s *SyncExecutor) ExecuteChain(chain string, data []byte) ([]byte, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rt.ExecuteChain(chain, data) //lint:allow lockorder serializing chain execution under mu IS this type's contract (see the type comment); Process cannot re-enter the executor
}

// ExecuteChainBatch implements openflow.BatchProcessor: one lock
// acquisition per batch instead of one per packet, which is the whole
// reason a batched dataplane wants this path — under N workers the
// mutex is the serial section, and batching divides its acquisition
// count by the batch size.
func (s *SyncExecutor) ExecuteChainBatch(chain string, pkts [][]byte, outs [][]byte, delays []time.Duration, errs []error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rt.ExecuteChainBatch(chain, pkts, outs, delays, errs) //lint:allow lockorder serializing batch execution under mu IS this type's contract (see the type comment); Process cannot re-enter the executor
}

// SupervisorStats exposes the wrapped runtime's supervision counters to
// metrics pollers (e.g. dataplane.Pipeline.Stats). The counters are
// atomic, so this does not contend with chain execution.
func (s *SyncExecutor) SupervisorStats() SupervisorStats { return s.rt.SupervisorStats() }

// Runtime returns the wrapped runtime for control-plane configuration
// (instantiation, chain building). Those calls must not race with
// ExecuteChain; perform them before traffic starts or behind the same
// coordination that quiesces the pipeline.
func (s *SyncExecutor) Runtime() *Runtime { return s.rt }
