// Package middlebox implements the PVN software-middlebox runtime: a
// registry of middlebox types, per-user sandboxed instances with memory
// and boot-time accounting, and named chains that a switch can send
// packets through.
//
// The cost model follows the numbers the paper cites for lightweight NFV
// (§3.3, ClickOS): instances boot in tens of milliseconds, add tens of
// microseconds of per-packet latency, and consume a few megabytes each.
// Experiment E1 measures exactly these three quantities.
//
// Isolation (§3.3 "avoiding harm"): every instance belongs to one owner,
// chains execute only over that owner's instances, and a chain configured
// with an owner address refuses packets that neither originate from nor
// target that address.
package middlebox

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"pvn/internal/packet"
)

// Common runtime errors.
var (
	ErrUnknownType     = errors.New("middlebox: unknown middlebox type")
	ErrMemoryExceeded  = errors.New("middlebox: host memory budget exceeded")
	ErrUnknownChain    = errors.New("middlebox: unknown chain")
	ErrNotBooted       = errors.New("middlebox: instance not booted yet")
	ErrIsolation       = errors.New("middlebox: packet outside owner's traffic")
	ErrCrossUser       = errors.New("middlebox: chain references another user's instance")
	ErrDuplicateChain  = errors.New("middlebox: chain already exists")
	ErrDropped         = errors.New("middlebox: packet dropped by policy")
	ErrInstanceunknown = errors.New("middlebox: unknown instance")
	// ErrBoxPanic wraps a panic contained by the supervisor.
	ErrBoxPanic = errors.New("middlebox: box panicked")
	// ErrBoxBroken marks a packet dropped because a fail-closed
	// instance's circuit breaker is open (or it is still rebooting).
	ErrBoxBroken = errors.New("middlebox: instance broken (circuit open)")
)

// Verdict is a middlebox's decision about one packet.
type Verdict uint8

// Verdicts.
const (
	// VerdictPass forwards the (possibly modified) packet.
	VerdictPass Verdict = iota
	// VerdictDrop discards the packet.
	VerdictDrop
)

// Context gives a middlebox controlled access to its environment.
//
// Concurrency: a Context is per-packet scratch state, created by the
// runtime once per chain invocation and re-pointed at each hop's
// instance; it is used from exactly one goroutine and must not be
// retained across Process calls. Because Alert writes into the
// shared runtime, a chain instance — and the Runtime hosting it — is
// not goroutine-safe either: concurrent dataplane workers must either
// serialize through Synchronized or run per-worker Runtime clones.
type Context struct {
	// Owner is the user the instance belongs to.
	Owner string
	// Now is the simulated time of this packet.
	Now time.Duration
	// alerts accumulate via Alert.
	runtime  *Runtime
	instance *Instance
}

// Alert records a security/privacy finding (blocked MITM, PII leak, …).
// Alerts are the observable output of detection middleboxes. The
// runtime retains at most AlertCap recent alerts (a ring buffer): under
// sustained traffic the oldest are evicted and counted, never an
// unbounded heap.
func (c *Context) Alert(kind, detail string) {
	c.runtime.pushAlert(Alert{
		Owner: c.Owner, Instance: c.instance.ID, Kind: kind, Detail: detail, At: c.Now,
	})
	c.instance.Alerts++
}

// Alert is one recorded finding.
type Alert struct {
	Owner    string
	Instance string
	Kind     string
	Detail   string
	At       time.Duration
}

// Box is the middlebox implementation interface. Implementations must be
// deterministic and must not retain data across calls except through
// their own fields (their sandboxed state).
type Box interface {
	// Name identifies the middlebox type.
	Name() string
	// Process inspects/transforms one raw IPv4 packet. Returning
	// VerdictDrop discards it; out is ignored then. Returning modified
	// bytes with VerdictPass rewrites the packet.
	Process(ctx *Context, data []byte) (out []byte, v Verdict, err error)
}

// Spec describes a registered middlebox type and its resource model.
type Spec struct {
	// Type is the registry key, e.g. "tls-verify".
	Type string
	// New builds an instance from a configuration map.
	New func(cfg map[string]string) (Box, error)
	// MemoryBytes is the per-instance footprint. Zero defaults to 6 MB,
	// the paper's cited figure.
	MemoryBytes int
	// BootDelay is instantiation latency. Zero defaults to 30 ms.
	BootDelay time.Duration
	// PerPacketDelay is processing cost per packet. Zero defaults to
	// 45 µs.
	PerPacketDelay time.Duration
	// FailPolicy is the type's default behavior when an instance is
	// broken or faults on a packet; instances can override it with
	// cfg["fail"] = "open"|"closed". PolicyDefault resolves through
	// SupervisorConfig.DefaultPolicy to FailClosed.
	FailPolicy FailPolicy
	// Security marks detection/enforcement boxes (tls-verify,
	// pii-detect, …): a fail-open bypass of one is a policy violation
	// the auditor must see, not a harmless optimization loss.
	Security bool
}

// Paper-cited defaults (§3.3, [24] ClickOS).
const (
	DefaultMemoryBytes    = 6 << 20
	DefaultBootDelay      = 30 * time.Millisecond
	DefaultPerPacketDelay = 45 * time.Microsecond
)

func (s *Spec) memory() int {
	if s.MemoryBytes == 0 {
		return DefaultMemoryBytes
	}
	return s.MemoryBytes
}

func (s *Spec) boot() time.Duration {
	if s.BootDelay == 0 {
		return DefaultBootDelay
	}
	return s.BootDelay
}

func (s *Spec) perPacket() time.Duration {
	if s.PerPacketDelay == 0 {
		return DefaultPerPacketDelay
	}
	return s.PerPacketDelay
}

// Instance is one booted middlebox owned by a user.
type Instance struct {
	ID    string
	Owner string
	Spec  *Spec
	Box   Box
	// ReadyAt is when boot completes; packets before that fail with
	// ErrNotBooted (first boot) or follow the failure policy (reboots).
	ReadyAt time.Duration
	// Policy is the resolved failure policy (config > spec > runtime
	// default > FailClosed), fixed at Instantiate.
	Policy FailPolicy

	// Counters.
	Packets, Drops, Errors, Alerts int64
	// Panics counts contained Process panics; Restarts counts
	// supervisor reboots; Bypasses counts packets that crossed this
	// box unprocessed (fail-open); Unavailable counts packets dropped
	// by fail-closed unavailability.
	Panics, Restarts, Bypasses, Unavailable int64
	Bytes                                   int64
	// CPUTime accumulates modelled processing time, the billing input.
	CPUTime time.Duration

	// cfg is retained for supervisor restarts via Spec.New.
	cfg map[string]string
	// hlt is the supervisor's health state.
	hlt health
}

// Chain is an ordered middlebox pipeline plus its isolation scope.
type Chain struct {
	Name  string
	Owner string
	Boxes []*Instance
	// OwnerAddrs, when non-empty, restricts the chain to packets whose
	// source or destination is one of these addresses.
	OwnerAddrs []packet.IPv4Address

	// residueClosed is set when Terminate removes a fail-closed box
	// from this chain: if the chain ends up empty it drops traffic
	// instead of silently passing everything the removed box would
	// have filtered.
	residueClosed bool
}

// FailClosedResidue reports whether a terminated fail-closed box has
// left its mark on this chain (an emptied chain then drops traffic).
func (c *Chain) FailClosedResidue() bool { return c.residueClosed }

// DefaultAlertCap bounds the runtime's alert ring when AlertCap is 0.
const DefaultAlertCap = 4096

// Runtime hosts instances and chains on one middlebox server.
type Runtime struct {
	// Now supplies simulated time.
	Now func() time.Duration
	// MemoryCapBytes bounds total instance memory. Zero means 1 GiB.
	MemoryCapBytes int
	// AlertCap bounds the retained alert ring. Zero means
	// DefaultAlertCap; the oldest alerts are evicted (and counted in
	// AlertsDropped) once the ring is full.
	AlertCap int
	// Supervisor tunes panic isolation, circuit breaking and restart.
	// The zero value is live (see SupervisorConfig).
	Supervisor SupervisorConfig
	// OnEvent, when set, receives every supervision event (panics,
	// breaker transitions, restarts, bypasses). Called inline from
	// chain execution — keep it cheap and non-blocking.
	OnEvent func(SupEvent)

	registry  map[string]*Spec
	instances map[string]*Instance
	chains    map[string]*Chain
	memUsed   int
	nextID    int

	// alerts is a ring: once len == alertCap(), alertHead is the
	// oldest element and new alerts overwrite it.
	alerts        []Alert
	alertHead     int
	alertsDropped atomic.Int64

	sup supCounters
}

// NewRuntime builds an empty runtime. now may be nil (time zero).
func NewRuntime(now func() time.Duration) *Runtime {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Runtime{
		Now:       now,
		registry:  make(map[string]*Spec),
		instances: make(map[string]*Instance),
		chains:    make(map[string]*Chain),
	}
}

// Register adds a middlebox type to the registry. Registering the same
// type twice replaces the spec (latest wins), which is how the PVN store
// ships updates.
func (r *Runtime) Register(s *Spec) { r.registry[s.Type] = s }

// Types returns the registered type names.
func (r *Runtime) Types() []string {
	out := make([]string, 0, len(r.registry))
	for k := range r.registry {
		out = append(out, k)
	}
	return out
}

func (r *Runtime) memCap() int {
	if r.MemoryCapBytes == 0 {
		return 1 << 30
	}
	return r.MemoryCapBytes
}

// MemoryUsed reports committed instance memory.
func (r *Runtime) MemoryUsed() int { return r.memUsed }

// Instantiate boots an instance of the named type for owner. The instance
// becomes usable BootDelay after the call (simulated time); the returned
// Instance reports that in ReadyAt.
func (r *Runtime) Instantiate(owner, typ string, cfg map[string]string) (*Instance, error) {
	spec, ok := r.registry[typ]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, typ)
	}
	if r.memUsed+spec.memory() > r.memCap() {
		return nil, fmt.Errorf("%w: need %d, %d of %d in use", ErrMemoryExceeded, spec.memory(), r.memUsed, r.memCap())
	}
	pol, err := ParseFailPolicy(cfg["fail"])
	if err != nil {
		return nil, err
	}
	if pol == PolicyDefault {
		pol = spec.FailPolicy
	}
	if pol == PolicyDefault {
		pol = r.Supervisor.DefaultPolicy
	}
	if pol == PolicyDefault {
		pol = FailClosed
	}
	box, err := spec.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("middlebox: instantiate %q: %w", typ, err)
	}
	r.nextID++
	inst := &Instance{
		ID:      fmt.Sprintf("%s-%d", typ, r.nextID),
		Owner:   owner,
		Spec:    spec,
		Box:     box,
		ReadyAt: r.Now() + spec.boot(),
		Policy:  pol,
		cfg:     cfg,
	}
	r.instances[inst.ID] = inst
	r.memUsed += spec.memory()
	return inst, nil
}

// Terminate destroys an instance and releases its memory.
func (r *Runtime) Terminate(id string) error {
	inst, ok := r.instances[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrInstanceunknown, id)
	}
	delete(r.instances, id)
	r.memUsed -= inst.Spec.memory()
	// Remove it from any chains that reference it. A chain that loses
	// a fail-closed box remembers that: if it is ever emptied this
	// way it drops traffic rather than passing everything the removed
	// box was there to filter.
	for _, c := range r.chains {
		kept := c.Boxes[:0]
		removed := false
		for _, b := range c.Boxes {
			if b.ID != id {
				kept = append(kept, b)
			} else {
				removed = true
			}
		}
		c.Boxes = kept
		if removed && inst.Policy == FailClosed {
			c.residueClosed = true
		}
	}
	return nil
}

// TeardownUser destroys every instance and chain belonging to owner and
// returns how many instances were released. Used on PVN teardown.
func (r *Runtime) TeardownUser(owner string) int {
	n := 0
	for id, inst := range r.instances {
		if inst.Owner == owner {
			delete(r.instances, id)
			r.memUsed -= inst.Spec.memory()
			n++
		}
	}
	for name, c := range r.chains {
		if c.Owner == owner {
			delete(r.chains, name)
		}
	}
	return n
}

// Instance returns the instance by ID, or nil.
func (r *Runtime) Instance(id string) *Instance { return r.instances[id] }

// InstanceIDs returns the IDs of every hosted instance, in no particular
// order. Deployment-server crash recovery diffs this against its book to
// find orphans.
func (r *Runtime) InstanceIDs() []string {
	out := make([]string, 0, len(r.instances))
	for id := range r.instances {
		out = append(out, id)
	}
	return out
}

// ChainKeys returns every chain's "namespace/name" key, in no particular
// order — the counterpart of InstanceIDs for crash recovery.
func (r *Runtime) ChainKeys() []string {
	out := make([]string, 0, len(r.chains))
	for key := range r.chains {
		out = append(out, key)
	}
	return out
}

// InstancesOf returns all instances owned by owner.
func (r *Runtime) InstancesOf(owner string) []*Instance {
	var out []*Instance
	for _, inst := range r.instances {
		if inst.Owner == owner {
			out = append(out, inst)
		}
	}
	return out
}

// BuildChain creates a named chain from instance IDs, all of which must
// exist and belong to owner (the cross-user check the paper's isolation
// story requires). ownerAddrs optionally pins the chain to the owner's
// traffic. The chain is addressed as "<owner>/<name>".
func (r *Runtime) BuildChain(owner, name string, instanceIDs []string, ownerAddrs []packet.IPv4Address) (*Chain, error) {
	return r.BuildChainIn(owner, owner, name, instanceIDs, ownerAddrs)
}

// BuildChainIn is BuildChain with an explicit namespace: the chain is
// addressed as "<namespace>/<name>" while ownership checks still bind to
// owner. Deployments of the same user's PVNC from multiple devices use
// per-deployment namespaces so their chains coexist.
func (r *Runtime) BuildChainIn(owner, namespace, name string, instanceIDs []string, ownerAddrs []packet.IPv4Address) (*Chain, error) {
	key := chainKey(namespace, name)
	if _, dup := r.chains[key]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateChain, key)
	}
	c := &Chain{Name: name, Owner: owner, OwnerAddrs: ownerAddrs}
	for _, id := range instanceIDs {
		inst, ok := r.instances[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrInstanceunknown, id)
		}
		if inst.Owner != owner {
			return nil, fmt.Errorf("%w: %q belongs to %q", ErrCrossUser, id, inst.Owner)
		}
		c.Boxes = append(c.Boxes, inst)
	}
	r.chains[key] = c
	return c, nil
}

// RemoveChain deletes a chain by its namespace and name (instances
// survive).
func (r *Runtime) RemoveChain(namespace, name string) {
	delete(r.chains, chainKey(namespace, name))
}

// Chain returns a chain by namespace and name, or nil.
func (r *Runtime) Chain(namespace, name string) *Chain { return r.chains[chainKey(namespace, name)] }

func chainKey(owner, name string) string { return owner + "/" + name }

// ExecuteChain implements openflow.ChainExecutor: the chain name on flow
// rules is "owner/chain".
func (r *Runtime) ExecuteChain(chain string, data []byte) ([]byte, time.Duration, error) {
	c, ok := r.chains[chain]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownChain, chain)
	}
	return r.run(c, data)
}

// ExecuteChainBatch implements openflow.BatchProcessor: one chain
// resolution for the whole batch, then the scalar path per packet, so
// batch semantics are the scalar semantics by construction (supervision,
// breakers and fail policies all run per packet). Like the Runtime
// itself it is not goroutine-safe; Synchronized adds the lock.
func (r *Runtime) ExecuteChainBatch(chain string, pkts [][]byte, outs [][]byte, delays []time.Duration, errs []error) {
	c, ok := r.chains[chain]
	if !ok {
		err := fmt.Errorf("%w: %q", ErrUnknownChain, chain)
		for i := range pkts {
			outs[i], delays[i], errs[i] = nil, 0, err
		}
		return
	}
	for i := range pkts {
		outs[i], delays[i], errs[i] = r.run(c, pkts[i])
	}
}

func (r *Runtime) run(c *Chain, data []byte) ([]byte, time.Duration, error) {
	now := r.Now()
	var delay time.Duration

	if len(c.OwnerAddrs) > 0 {
		if !r.packetBelongsTo(c, data) {
			return nil, 0, fmt.Errorf("%w: chain %s/%s", ErrIsolation, c.Owner, c.Name)
		}
	}
	if len(c.Boxes) == 0 && c.residueClosed {
		return nil, 0, fmt.Errorf("%w: chain %s/%s emptied of fail-closed boxes", ErrDropped, c.Owner, c.Name)
	}

	// One Context per chain invocation, re-pointed per hop: the hot
	// path allocates once, not once per box.
	ctx := Context{Owner: c.Owner, runtime: r}
	cur := data
	for _, inst := range c.Boxes {
		at := now + delay
		if inst.hlt.state == Broken {
			r.maybeRestart(inst, at)
		}
		if inst.hlt.state == Broken || (at < inst.ReadyAt && inst.Restarts > 0) {
			// Unavailable (breaker open, or rebooting after a
			// restart): the failure policy decides, without running
			// user code.
			if inst.Policy == FailOpen {
				r.noteBypass(inst, at, "unavailable")
				continue
			}
			inst.Unavailable++
			r.sup.brokenDrops.Add(1)
			r.instEvent(EventBrokenDrop, inst, at, "fail-closed while broken")
			return nil, delay, fmt.Errorf("middlebox %s: %w", inst.ID, ErrBoxBroken)
		}
		if at < inst.ReadyAt {
			return nil, delay, fmt.Errorf("%w: %s ready at %v, now %v", ErrNotBooted, inst.ID, inst.ReadyAt, at)
		}
		ctx.Now = at
		ctx.instance = inst
		out, v, err, panicked := callBox(&ctx, inst.Box, cur)
		inst.Packets++
		inst.Bytes += int64(len(cur))
		pp := inst.Spec.perPacket()
		inst.CPUTime += pp
		delay += pp
		if err != nil {
			inst.Errors++
			if panicked {
				inst.Panics++
				r.sup.panics.Add(1)
				r.instEvent(EventPanic, inst, at, err.Error())
			} else {
				r.sup.boxErrors.Add(1)
				r.instEvent(EventBoxError, inst, at, err.Error())
			}
			r.recordFailure(inst, at)
			if inst.Policy == FailOpen {
				// The box's work is lost but the packet survives:
				// continue unmodified past the faulty hop.
				r.noteBypass(inst, at, "fault")
				continue
			}
			return nil, delay, fmt.Errorf("middlebox %s: %w", inst.ID, err)
		}
		r.recordSuccess(inst, at)
		if v == VerdictDrop {
			inst.Drops++
			return nil, delay, nil
		}
		if out != nil {
			cur = out
		}
	}
	return cur, delay, nil
}

func (r *Runtime) packetBelongsTo(c *Chain, data []byte) bool {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	ip := p.IPv4()
	if ip == nil {
		return false
	}
	for _, a := range c.OwnerAddrs {
		if ip.Src == a || ip.Dst == a {
			return true
		}
	}
	return false
}

func (r *Runtime) alertCap() int {
	if r.AlertCap <= 0 {
		return DefaultAlertCap
	}
	return r.AlertCap
}

// pushAlert appends to the bounded alert ring, evicting (and counting)
// the oldest alert once the ring is full.
func (r *Runtime) pushAlert(a Alert) {
	max := r.alertCap()
	if len(r.alerts) < max {
		r.alerts = append(r.alerts, a)
		return
	}
	// Ring shrank? (AlertCap lowered between calls.) Drop the excess.
	for len(r.alerts) > max {
		r.alerts = append(r.alerts[:r.alertHead], r.alerts[r.alertHead+1:]...)
		if r.alertHead >= len(r.alerts) {
			r.alertHead = 0
		}
		r.alertsDropped.Add(1)
	}
	r.alerts[r.alertHead] = a
	r.alertHead = (r.alertHead + 1) % len(r.alerts)
	r.alertsDropped.Add(1)
}

// Alerts returns alerts recorded for owner (all owners when owner is
// ""), oldest first. Only the newest alertCap() alerts are retained;
// AlertsDropped counts the evicted remainder.
func (r *Runtime) Alerts(owner string) []Alert {
	var out []Alert
	n := len(r.alerts)
	for i := 0; i < n; i++ {
		a := r.alerts[(r.alertHead+i)%n]
		if owner == "" || a.Owner == owner {
			out = append(out, a)
		}
	}
	return out
}

// AlertsDropped reports how many alerts the bounded ring has evicted.
func (r *Runtime) AlertsDropped() int64 { return r.alertsDropped.Load() }
