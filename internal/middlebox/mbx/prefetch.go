package mbx

import (
	"strings"

	"pvn/internal/middlebox"
	"pvn/internal/packet"
)

// PrefetchEngine is the active half of the paper's prefetching story
// (§4): "run code on the middlebox that prefetches content to move it
// closer to users, without consuming device resources." It watches HTML
// responses flow past, extracts the subresources the page will need
// (href/src links), fetches them upstream via the host-supplied Fetch
// callback, and populates the Prefetcher cache — all on middlebox time
// and bytes, none on the device's.
type PrefetchEngine struct {
	// Cache receives the prefetched resources.
	Cache *Prefetcher
	// Fetch retrieves a resource from upstream; ok=false means
	// unavailable. Supplied by the PVN host.
	Fetch func(host, path string) (body []byte, ok bool)
	// MaxPerPage bounds prefetches triggered by one response (resource
	// fairness, §3.3). Zero defaults to 16.
	MaxPerPage int

	// Prefetched counts resources fetched into the cache.
	Prefetched int64
	// Skipped counts links not fetched (cross-host, cache hit, cap).
	Skipped int64
}

// NewPrefetchEngine builds an engine over a cache and fetch function.
func NewPrefetchEngine(cache *Prefetcher, fetch func(string, string) ([]byte, bool)) *PrefetchEngine {
	return &PrefetchEngine{Cache: cache, Fetch: fetch, MaxPerPage: 16}
}

// Name implements middlebox.Box.
func (e *PrefetchEngine) Name() string { return "prefetch-engine" }

// Process implements middlebox.Box: HTML responses trigger prefetching;
// nothing is modified or dropped.
func (e *PrefetchEngine) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	h := p.HTTP()
	if h == nil || h.IsRequest || len(h.Body) == 0 {
		return data, middlebox.VerdictPass, nil
	}
	if !strings.HasPrefix(strings.ToLower(h.Header("Content-Type")), "text/html") {
		return data, middlebox.VerdictPass, nil
	}
	// The page's own host rides in the X-PVN-Host header our data plane
	// stamps, or defaults to the response source.
	host := h.Header("X-PVN-Host")
	if host == "" {
		if ip := p.IPv4(); ip != nil {
			host = ip.Src.String()
		}
	}
	links := ExtractLinks(string(h.Body))
	fetched := 0
	for _, link := range links {
		if fetched >= e.maxPerPage() {
			e.Skipped += int64(len(links) - fetched)
			break
		}
		lhost, lpath := splitLink(link, host)
		if lhost != host {
			e.Skipped++ // third-party: not ours to prefetch
			continue
		}
		if _, ok := e.Cache.cache[lhost+lpath]; ok {
			e.Skipped++
			continue
		}
		if e.Fetch == nil {
			e.Skipped++
			continue
		}
		body, ok := e.Fetch(lhost, lpath)
		if !ok {
			e.Skipped++
			continue
		}
		e.Cache.StoreResource(lhost, lpath, body)
		e.Prefetched++
		fetched++
	}
	return data, middlebox.VerdictPass, nil
}

func (e *PrefetchEngine) maxPerPage() int {
	if e.MaxPerPage <= 0 {
		return 16
	}
	return e.MaxPerPage
}

// ExtractLinks returns the href/src attribute values found in an HTML
// document, in order of appearance, without duplicates.
func ExtractLinks(html string) []string {
	var out []string
	seen := map[string]bool{}
	lower := strings.ToLower(html)
	for _, attr := range []string{`href="`, `src="`} {
		pos := 0
		for {
			i := strings.Index(lower[pos:], attr)
			if i < 0 {
				break
			}
			start := pos + i + len(attr)
			end := strings.IndexByte(html[start:], '"')
			if end < 0 {
				break
			}
			link := html[start : start+end]
			pos = start + end
			if link == "" || strings.HasPrefix(link, "#") || strings.HasPrefix(lower[start:start+end], "javascript:") {
				continue
			}
			if !seen[link] {
				seen[link] = true
				out = append(out, link)
			}
		}
	}
	return out
}

// splitLink resolves a link to (host, path): absolute http URLs keep
// their own host; everything else is relative to pageHost.
func splitLink(link, pageHost string) (host, path string) {
	l := link
	for _, scheme := range []string{"http://", "https://"} {
		if strings.HasPrefix(strings.ToLower(l), scheme) {
			l = l[len(scheme):]
			slash := strings.IndexByte(l, '/')
			if slash < 0 {
				return l, "/"
			}
			return l[:slash], l[slash:]
		}
	}
	if !strings.HasPrefix(l, "/") {
		l = "/" + l
	}
	return pageHost, l
}
