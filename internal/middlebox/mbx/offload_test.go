package mbx

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"pvn/internal/middlebox"
	"pvn/internal/packet"
	"pvn/internal/pcapio"
)

var serviceAddr = packet.MustParseIPv4("203.0.113.100")

func TestReplicaSelectorRewritesToBest(t *testing.T) {
	box := NewReplicaSelector(serviceAddr)
	box.Observe(packet.MustParseIPv4("198.51.100.1"), 80*time.Millisecond)
	box.Observe(packet.MustParseIPv4("198.51.100.2"), 20*time.Millisecond)
	box.Observe(packet.MustParseIPv4("198.51.100.3"), 50*time.Millisecond)
	_, rt := ctx(t, box)

	// A connection to the service address is steered to replica .2.
	ip := &packet.IPv4{Src: devIP, Dst: serviceAddr, Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: 40000, DstPort: 443}
	tcp.SetNetworkLayerForChecksum(ip)
	data, _ := packet.SerializeToBytes(ip, tcp, packet.Payload("hello"))
	out, err := runChain(t, rt, data)
	if err != nil {
		t.Fatal(err)
	}
	got := packet.Decode(out, packet.LayerTypeIPv4)
	if got.IPv4().Dst != packet.MustParseIPv4("198.51.100.2") {
		t.Fatalf("dst %v, want best replica", got.IPv4().Dst)
	}
	if !got.TCP().VerifyChecksum(got.IPv4().LayerPayload()) {
		t.Fatal("rewritten packet has bad checksum")
	}
	if box.Rewritten != 1 {
		t.Fatalf("rewritten %d", box.Rewritten)
	}

	// New measurements change the steering.
	box.Observe(packet.MustParseIPv4("198.51.100.1"), 5*time.Millisecond)
	out, _ = runChain(t, rt, data)
	if packet.Decode(out, packet.LayerTypeIPv4).IPv4().Dst != packet.MustParseIPv4("198.51.100.1") {
		t.Fatal("selector ignored fresher measurement")
	}
}

func TestReplicaSelectorPassesOtherTraffic(t *testing.T) {
	box := NewReplicaSelector(serviceAddr)
	box.Observe(packet.MustParseIPv4("198.51.100.1"), time.Millisecond)
	_, rt := ctx(t, box)
	in := tcpSeg(t, 80, []byte("x")) // dst = srvIP, not the service
	out, err := runChain(t, rt, in)
	if err != nil {
		t.Fatal(err)
	}
	if packet.Decode(out, packet.LayerTypeIPv4).IPv4().Dst != srvIP {
		t.Fatal("unrelated traffic rewritten")
	}
}

func TestReplicaSelectorNoMeasurements(t *testing.T) {
	box := NewReplicaSelector(serviceAddr)
	_, rt := ctx(t, box)
	ip := &packet.IPv4{Src: devIP, Dst: serviceAddr, Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: 1, DstPort: 443}
	tcp.SetNetworkLayerForChecksum(ip)
	data, _ := packet.SerializeToBytes(ip, tcp, packet.Payload("x"))
	out, err := runChain(t, rt, data)
	if err != nil {
		t.Fatal(err)
	}
	if packet.Decode(out, packet.LayerTypeIPv4).IPv4().Dst != serviceAddr {
		t.Fatal("rewrote with no data")
	}
}

func TestWebRendererExtractsText(t *testing.T) {
	box := NewWebRenderer()
	_, rt := ctx(t, box)
	html := `<html><head><title>T</title><style>body{color:red}</style>
<script>var tracking = "beacon";</script></head>
<body><h1>Headline</h1><p>Paragraph   text
here.</p></body></html>`
	out, err := runChain(t, rt, httpResp(t, "text/html", html))
	if err != nil {
		t.Fatal(err)
	}
	p := packet.Decode(out, packet.LayerTypeIPv4)
	h := p.HTTP()
	if h.Header("X-PVN-Rendered") != "1" {
		t.Fatal("not rendered")
	}
	body := string(h.Body)
	if strings.Contains(body, "<") || strings.Contains(body, "tracking") || strings.Contains(body, "color:red") {
		t.Fatalf("markup/script survived rendering: %q", body)
	}
	for _, want := range []string{"Headline", "Paragraph text here."} {
		if !strings.Contains(body, want) {
			t.Fatalf("visible text %q lost: %q", want, body)
		}
	}
	if len(h.Body) >= len(html) {
		t.Fatal("rendering did not shrink the page")
	}
	if !p.TCP().VerifyChecksum(p.IPv4().LayerPayload()) {
		t.Fatal("rendered packet has bad checksum")
	}
	if box.Rendered != 1 || box.BytesOut >= box.BytesIn {
		t.Fatalf("accounting %d %d/%d", box.Rendered, box.BytesIn, box.BytesOut)
	}
}

func TestWebRendererSkipsNonHTML(t *testing.T) {
	box := NewWebRenderer()
	_, rt := ctx(t, box)
	out, _ := runChain(t, rt, httpResp(t, "application/json", `{"k":"<v>"}`))
	if packet.Decode(out, packet.LayerTypeIPv4).HTTP().Header("X-PVN-Rendered") != "" {
		t.Fatal("JSON rendered")
	}
	req := httpReq(t, "GET", "h", "/", "<html>req body</html>")
	out, _ = runChain(t, rt, req)
	if packet.Decode(out, packet.LayerTypeIPv4).HTTP().Header("X-PVN-Rendered") != "" {
		t.Fatal("request rendered")
	}
}

func TestOffloadRegistration(t *testing.T) {
	rt := middlebox.NewRuntime(nil)
	registerOffload(rt)
	if _, err := rt.Instantiate("u", "replica-select",
		map[string]string{"service": "203.0.113.100", "replicas": "198.51.100.1:20,198.51.100.2:5"}); err != nil {
		t.Fatalf("replica-select: %v", err)
	}
	if _, err := rt.Instantiate("u", "web-render", nil); err != nil {
		t.Fatalf("web-render: %v", err)
	}
	bad := []map[string]string{
		nil, // missing service
		{"service": "nope"},
		{"service": "1.2.3.4", "replicas": "garbage"},
		{"service": "1.2.3.4", "replicas": "1.2.3.5:xx"},
		{"service": "1.2.3.4", "replicas": "bad:5"},
	}
	for _, cfg := range bad {
		if _, err := rt.Instantiate("u", "replica-select", cfg); err == nil {
			t.Errorf("bad config accepted: %v", cfg)
		}
	}
}

func TestRenderHTMLEdgeCases(t *testing.T) {
	if got := renderHTML(""); got != "" {
		t.Fatalf("empty: %q", got)
	}
	if got := renderHTML("plain text only"); got != "plain text only" {
		t.Fatalf("plain: %q", got)
	}
	// Unterminated script: drop the rest rather than leak it.
	if got := renderHTML("before<script>evil"); strings.Contains(got, "evil") {
		t.Fatalf("unterminated script leaked: %q", got)
	}
}

func TestCaptureTapWritesValidPcap(t *testing.T) {
	var sink bytes.Buffer
	box, err := NewCaptureTap(&sink)
	if err != nil {
		t.Fatal(err)
	}
	_, rt := ctx(t, box)
	p1 := tcpSeg(t, 80, []byte("one"))
	p2 := tcpSeg(t, 443, []byte{22, 3, 3, 0, 1, 0})
	if out, err := runChain(t, rt, p1); err != nil || out == nil {
		t.Fatal("tap interfered with traffic")
	}
	runChain(t, rt, p2)
	if box.Captured != 2 {
		t.Fatalf("captured %d", box.Captured)
	}

	r, err := pcapio.NewReader(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil || len(recs) != 2 {
		t.Fatalf("records %d err=%v", len(recs), err)
	}
	if !bytes.Equal(recs[0].Data, p1) {
		t.Fatal("captured bytes differ from the wire")
	}
	// Captured packets decode as IPv4 (the raw linktype contract).
	if packet.Decode(recs[1].Data, packet.LayerTypeIPv4).TCP() == nil {
		t.Fatal("capture not decodable")
	}
}

func TestRegisterCaptureTap(t *testing.T) {
	rt := middlebox.NewRuntime(nil)
	var sinks []*bytes.Buffer
	RegisterCaptureTap(rt, func() (io.Writer, error) {
		b := &bytes.Buffer{}
		sinks = append(sinks, b)
		return b, nil
	})
	if _, err := rt.Instantiate("u", "pcap-tap", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Instantiate("u", "pcap-tap", nil); err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 2 {
		t.Fatalf("sinks %d, want one per instance", len(sinks))
	}
	// Without a sink factory the type refuses to instantiate.
	rt2 := middlebox.NewRuntime(nil)
	RegisterCaptureTap(rt2, nil)
	if _, err := rt2.Instantiate("u", "pcap-tap", nil); err == nil {
		t.Fatal("instantiated without sink")
	}
}
