package mbx

import (
	"bytes"
	"compress/flate"
	"io"
	"strconv"
	"strings"

	"pvn/internal/middlebox"
	"pvn/internal/packet"
)

// Compressor DEFLATE-compresses compressible HTTP response bodies in the
// network, the in-network analogue of data-compression proxies [1]: the
// constrained last-mile link carries fewer bytes, paid for with middlebox
// CPU instead of device CPU.
type Compressor struct {
	// MinBytes skips bodies smaller than this (compression overhead
	// would dominate). Defaults to 256.
	MinBytes int

	BytesIn, BytesOut int64
}

// NewCompressor builds a compressor.
func NewCompressor() *Compressor { return &Compressor{MinBytes: 256} }

// Name implements middlebox.Box.
func (c *Compressor) Name() string { return "compressor" }

// compressible reports whether a content type benefits from DEFLATE.
func compressible(ct string) bool {
	ct = strings.ToLower(ct)
	return strings.HasPrefix(ct, "text/") ||
		strings.Contains(ct, "json") ||
		strings.Contains(ct, "javascript") ||
		strings.Contains(ct, "xml")
}

// Process implements middlebox.Box.
func (c *Compressor) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	h := p.HTTP()
	if h == nil || h.IsRequest || len(h.Body) < c.MinBytes || !compressible(h.Header("Content-Type")) {
		return data, middlebox.VerdictPass, nil
	}
	if h.Header("Content-Encoding") != "" {
		return data, middlebox.VerdictPass, nil // already encoded
	}
	ip, tc := p.IPv4(), p.TCP()
	if ip == nil || tc == nil {
		return data, middlebox.VerdictPass, nil
	}

	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return data, middlebox.VerdictPass, nil
	}
	if _, err := w.Write(h.Body); err != nil || w.Close() != nil {
		return data, middlebox.VerdictPass, nil
	}
	if buf.Len() >= len(h.Body) {
		return data, middlebox.VerdictPass, nil // incompressible after all
	}
	c.BytesIn += int64(len(h.Body))
	c.BytesOut += int64(buf.Len())

	nh := *h
	nh.Body = buf.Bytes()
	nh.SetHeader("Content-Encoding", "deflate")
	nh.SetHeader("Content-Length", strconv.Itoa(buf.Len()))

	nip := &packet.IPv4{TOS: ip.TOS, ID: ip.ID, TTL: ip.TTL, Protocol: ip.Protocol, Src: ip.Src, Dst: ip.Dst}
	nt := &packet.TCP{SrcPort: tc.SrcPort, DstPort: tc.DstPort, Seq: tc.Seq, Ack: tc.Ack, Flags: tc.Flags, Window: tc.Window}
	nt.SetNetworkLayerForChecksum(nip)
	out, err := packet.SerializeToBytes(nip, nt, &nh)
	if err != nil {
		return data, middlebox.VerdictPass, nil
	}
	return out, middlebox.VerdictPass, nil
}

// Decompress reverses Compressor, for tests and for device-side
// verification that compression is lossless.
func Decompress(body []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(body))
	defer r.Close()
	return io.ReadAll(r)
}

// Prefetcher caches HTTP responses at the middlebox and answers repeat
// requests from cache — the paper's "run code on the middlebox that
// prefetches content to move it closer to users, without consuming device
// resources" (§4). The cache key is Host+Path.
type Prefetcher struct {
	// CapBytes bounds cached body bytes. Defaults to 4 MiB.
	CapBytes int

	cache     map[string][]byte
	cacheSize int
	order     []string // FIFO eviction

	Hits, Misses int64
}

// NewPrefetcher builds an empty cache.
func NewPrefetcher() *Prefetcher {
	return &Prefetcher{CapBytes: 4 << 20, cache: make(map[string][]byte)}
}

// Name implements middlebox.Box.
func (f *Prefetcher) Name() string { return "prefetcher" }

// Lookup reports whether the named resource is cached (used by the PVN
// host to answer locally instead of forwarding upstream).
func (f *Prefetcher) Lookup(host, path string) ([]byte, bool) {
	body, ok := f.cache[host+path]
	if ok {
		f.Hits++
	} else {
		f.Misses++
	}
	return body, ok
}

// Process implements middlebox.Box: responses flowing through the chain
// populate the cache; requests are counted against it. Forwarding
// decisions stay with the data plane — the box never drops.
func (f *Prefetcher) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	h := p.HTTP()
	if h == nil {
		return data, middlebox.VerdictPass, nil
	}
	if !h.IsRequest && len(h.Body) > 0 && h.Header("X-PVN-Resource") != "" {
		f.store(h.Header("X-PVN-Resource"), h.Body)
	}
	return data, middlebox.VerdictPass, nil
}

// StoreResource inserts a prefetched resource directly (the prefetch
// logic runs as middlebox code issuing its own upstream fetches).
func (f *Prefetcher) StoreResource(host, path string, body []byte) {
	f.store(host+path, body)
}

func (f *Prefetcher) store(key string, body []byte) {
	if old, ok := f.cache[key]; ok {
		f.cacheSize -= len(old)
	} else {
		f.order = append(f.order, key)
	}
	f.cache[key] = append([]byte(nil), body...)
	f.cacheSize += len(body)
	for f.cacheSize > f.CapBytes && len(f.order) > 0 {
		victim := f.order[0]
		f.order = f.order[1:]
		f.cacheSize -= len(f.cache[victim])
		delete(f.cache, victim)
	}
}

// CacheSize returns cached bytes, for memory accounting tests.
func (f *Prefetcher) CacheSize() int { return f.cacheSize }
