// StatefulBox implementations for the built-in boxes that accumulate
// per-flow state worth carrying across a handover (middlebox.StatefulBox,
// core.BeginRoam): the split-TCP proxy's connection table, the
// classifier's learned flow labels and class counters, and the PII
// detector's finding counters. Snapshots are JSON with sorted keys so a
// given state always serializes identically (reproducible migrations).
package mbx

import (
	"encoding/json"
	"sort"

	"pvn/internal/middlebox"
	"pvn/internal/packet"
)

// Compile-time checks: these boxes migrate.
var (
	_ middlebox.StatefulBox = (*TCPProxy)(nil)
	_ middlebox.StatefulBox = (*Classifier)(nil)
	_ middlebox.StatefulBox = (*PIIDetect)(nil)
)

// sortedFlows returns the keys of a flow set in deterministic order.
func sortedFlows[V any](m map[packet.Flow]V) []packet.Flow {
	out := make([]packet.Flow, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ExportState implements middlebox.StatefulBox: the proxy's split
// connections, sorted.
func (t *TCPProxy) ExportState() ([]byte, error) {
	return json.Marshal(sortedFlows(t.Flows))
}

// ImportState implements middlebox.StatefulBox: merges previously split
// connections into the table, so flows proxied on the old network stay
// split instead of resetting mid-conversation.
func (t *TCPProxy) ImportState(data []byte) error {
	var flows []packet.Flow
	if err := json.Unmarshal(data, &flows); err != nil {
		return err
	}
	if t.Flows == nil {
		t.Flows = make(map[packet.Flow]bool, len(flows))
	}
	for _, f := range flows {
		t.Flows[f.Canonical()] = true
	}
	return nil
}

// classifierState is the classifier's wire snapshot.
type classifierState struct {
	Flows  []classifiedFlow       `json:"flows"`
	Counts map[TrafficClass]int64 `json:"counts"`
}

type classifiedFlow struct {
	Flow  packet.Flow  `json:"flow"`
	Class TrafficClass `json:"class"`
}

// ExportState implements middlebox.StatefulBox.
func (c *Classifier) ExportState() ([]byte, error) {
	st := classifierState{Counts: c.Counts}
	for _, f := range sortedFlows(c.flows) {
		st.Flows = append(st.Flows, classifiedFlow{Flow: f, Class: c.flows[f]})
	}
	return json.Marshal(st)
}

// ImportState implements middlebox.StatefulBox: merges learned flow
// labels (existing labels win — the new network's own observations are
// fresher) and folds the class counters in.
func (c *Classifier) ImportState(data []byte) error {
	var st classifierState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if c.flows == nil {
		c.flows = make(map[packet.Flow]TrafficClass, len(st.Flows))
	}
	for _, cf := range st.Flows {
		if _, seen := c.flows[cf.Flow.Canonical()]; !seen {
			c.flows[cf.Flow.Canonical()] = cf.Class
		}
	}
	if c.Counts == nil {
		c.Counts = make(map[TrafficClass]int64, len(st.Counts))
	}
	for cl, n := range st.Counts {
		c.Counts[cl] += n
	}
	return nil
}

// piiState is the PII detector's wire snapshot.
type piiState struct {
	Findings, Redactions, Blocked int64
}

// ExportState implements middlebox.StatefulBox: the detection counters
// (the configuration — mode, secrets — travels in the PVNC, not here).
func (d *PIIDetect) ExportState() ([]byte, error) {
	return json.Marshal(piiState{Findings: d.Findings, Redactions: d.Redactions, Blocked: d.Blocked})
}

// ImportState implements middlebox.StatefulBox: folds the old
// deployment's counters in, so a user's leak tally survives roaming.
func (d *PIIDetect) ImportState(data []byte) error {
	var st piiState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	d.Findings += st.Findings
	d.Redactions += st.Redactions
	d.Blocked += st.Blocked
	return nil
}
