package mbx

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"pvn/internal/middlebox"
	"pvn/internal/openflow"
	"pvn/internal/packet"
)

// ReplicaSelector implements client-assisted replica selection (§4
// "other applications"): the user's PVN measures candidate replicas of a
// service and rewrites connections aimed at the service's well-known
// address toward the currently-best replica — in-network, per-user, with
// no cooperation from the ISP's DNS.
type ReplicaSelector struct {
	// Service is the anycast/virtual address clients dial.
	Service packet.IPv4Address
	// rtts holds the latest measurement per replica.
	rtts map[packet.IPv4Address]time.Duration

	Rewritten int64
}

// NewReplicaSelector builds a selector for the given service address.
func NewReplicaSelector(service packet.IPv4Address) *ReplicaSelector {
	return &ReplicaSelector{Service: service, rtts: make(map[packet.IPv4Address]time.Duration)}
}

// Name implements middlebox.Box.
func (r *ReplicaSelector) Name() string { return "replica-select" }

// Observe records a replica measurement (fed by the PVN's active
// probes).
func (r *ReplicaSelector) Observe(replica packet.IPv4Address, rtt time.Duration) {
	r.rtts[replica] = rtt
}

// Best returns the lowest-RTT replica, or ok=false with no data.
func (r *ReplicaSelector) Best() (packet.IPv4Address, bool) {
	var best packet.IPv4Address
	bestRTT := time.Duration(1<<62 - 1)
	found := false
	// Deterministic tie-break: sort candidates.
	keys := make([]packet.IPv4Address, 0, len(r.rtts))
	for k := range r.rtts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, k := range keys {
		if r.rtts[k] < bestRTT {
			best, bestRTT, found = k, r.rtts[k], true
		}
	}
	return best, found
}

// Process implements middlebox.Box: outbound packets to the service
// address get their destination rewritten to the best replica.
func (r *ReplicaSelector) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	ip := p.IPv4()
	if ip == nil || ip.Dst != r.Service {
		return data, middlebox.VerdictPass, nil
	}
	best, ok := r.Best()
	if !ok || best == r.Service {
		return data, middlebox.VerdictPass, nil
	}
	out, err := openflow.RewriteDst(data, best, 0)
	if err != nil {
		return data, middlebox.VerdictPass, nil
	}
	r.Rewritten++
	return out, middlebox.VerdictPass, nil
}

// WebRenderer models cloud-assisted page rendering (§4, Opera Mini /
// Amazon Silk [25,33] as PVN modules): HTML responses are "rendered" in
// the network and shipped to the device as a compact text document,
// trading middlebox CPU for last-mile bytes and device work.
type WebRenderer struct {
	// BytesIn/BytesOut account the reduction.
	BytesIn, BytesOut int64
	Rendered          int64
}

// NewWebRenderer builds the renderer.
func NewWebRenderer() *WebRenderer { return &WebRenderer{} }

// Name implements middlebox.Box.
func (w *WebRenderer) Name() string { return "web-render" }

// Process implements middlebox.Box.
func (w *WebRenderer) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	h := p.HTTP()
	if h == nil || h.IsRequest || len(h.Body) == 0 {
		return data, middlebox.VerdictPass, nil
	}
	if !strings.HasPrefix(strings.ToLower(h.Header("Content-Type")), "text/html") {
		return data, middlebox.VerdictPass, nil
	}
	ip, tc := p.IPv4(), p.TCP()
	if ip == nil || tc == nil {
		return data, middlebox.VerdictPass, nil
	}
	rendered := renderHTML(string(h.Body))
	if len(rendered) >= len(h.Body) {
		return data, middlebox.VerdictPass, nil
	}
	w.BytesIn += int64(len(h.Body))
	w.BytesOut += int64(len(rendered))
	w.Rendered++

	nh := *h
	nh.Body = []byte(rendered)
	nh.SetHeader("Content-Type", "text/plain; charset=utf-8")
	nh.SetHeader("Content-Length", strconv.Itoa(len(rendered)))
	nh.SetHeader("X-PVN-Rendered", "1")

	nip := &packet.IPv4{TOS: ip.TOS, ID: ip.ID, TTL: ip.TTL, Protocol: ip.Protocol, Src: ip.Src, Dst: ip.Dst}
	nt := &packet.TCP{SrcPort: tc.SrcPort, DstPort: tc.DstPort, Seq: tc.Seq, Ack: tc.Ack, Flags: tc.Flags, Window: tc.Window}
	nt.SetNetworkLayerForChecksum(nip)
	out, err := packet.SerializeToBytes(nip, nt, &nh)
	if err != nil {
		return data, middlebox.VerdictPass, nil
	}
	return out, middlebox.VerdictPass, nil
}

// renderHTML extracts the visible text of an HTML document: tags,
// scripts and styles are dropped, whitespace collapsed — the "partially
// render pages in the cloud" transformation at its simplest.
func renderHTML(html string) string {
	var b strings.Builder
	inTag := false
	skipUntil := "" // closing tag for script/style bodies
	i := 0
	lower := strings.ToLower(html)
	for i < len(html) {
		if skipUntil != "" {
			end := strings.Index(lower[i:], skipUntil)
			if end < 0 {
				break
			}
			i += end + len(skipUntil)
			skipUntil = ""
			continue
		}
		c := html[i]
		switch {
		case c == '<':
			inTag = true
			if strings.HasPrefix(lower[i:], "<script") {
				skipUntil = "</script>"
			} else if strings.HasPrefix(lower[i:], "<style") {
				skipUntil = "</style>"
			}
			i++
		case c == '>':
			inTag = false
			b.WriteByte(' ')
			i++
		case inTag:
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	// Collapse whitespace runs.
	fields := strings.Fields(b.String())
	return strings.Join(fields, " ")
}

// registerOffload adds the offload middleboxes to a runtime. Split out
// of RegisterBuiltins so the cost models stay in one place.
func registerOffload(rt *middlebox.Runtime) {
	rt.Register(&middlebox.Spec{
		Type:       "replica-select",
		FailPolicy: middlebox.FailOpen, // a broken selector loses a latency win, nothing else
		New: func(cfg map[string]string) (middlebox.Box, error) {
			svc, err := packet.ParseIPv4(cfg["service"])
			if err != nil {
				return nil, fmt.Errorf("replica-select requires cfg[service]=<ip>: %v", err)
			}
			rs := NewReplicaSelector(svc)
			// Static seed measurements may ship in config as
			// "replicas=ip:ms,ip:ms"; live probes call Observe later.
			if reps := cfg["replicas"]; reps != "" {
				for _, pair := range strings.Split(reps, ",") {
					addrStr, msStr, ok := strings.Cut(pair, ":")
					if !ok {
						return nil, fmt.Errorf("bad replica entry %q", pair)
					}
					addr, err := packet.ParseIPv4(addrStr)
					if err != nil {
						return nil, fmt.Errorf("bad replica address %q", addrStr)
					}
					ms, err := strconv.Atoi(msStr)
					if err != nil || ms < 0 {
						return nil, fmt.Errorf("bad replica rtt %q", msStr)
					}
					rs.Observe(addr, time.Duration(ms)*time.Millisecond)
				}
			}
			return rs, nil
		},
	})
	rt.Register(&middlebox.Spec{
		Type:           "web-render",
		FailPolicy:     middlebox.FailOpen,
		PerPacketDelay: 800 * time.Microsecond, // rendering is heavy
		MemoryBytes:    48 << 20,
		New: func(cfg map[string]string) (middlebox.Box, error) {
			return NewWebRenderer(), nil
		},
	})
}
