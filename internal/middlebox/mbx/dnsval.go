package mbx

import (
	"errors"
	"fmt"

	"pvn/internal/dnssim"
	"pvn/internal/middlebox"
	"pvn/internal/packet"
)

// DNSValidate checks DNS responses crossing the PVN (§4 "DNS
// Validation"). Signed zones are verified against trust anchors; for
// unsigned names it cross-checks the answer against a set of open
// resolvers and requires a quorum. Responses that fail either check are
// dropped and alerted, so the device never acts on a forged mapping.
type DNSValidate struct {
	Anchors dnssim.TrustAnchors
	// OpenResolvers is the cross-check set for unsigned names. Empty
	// disables the quorum check (unsigned answers then pass unchecked).
	OpenResolvers []*dnssim.Resolver
	// Quorum is the minimum agreeing open resolvers. Zero means a
	// majority of the configured resolvers.
	Quorum int

	// Validated, Forged and Unverifiable count outcomes.
	Validated, Forged, Unverifiable int64
}

// NewDNSValidate builds the validator.
func NewDNSValidate(anchors dnssim.TrustAnchors, open []*dnssim.Resolver, quorum int) *DNSValidate {
	if quorum == 0 {
		quorum = len(open)/2 + 1
	}
	return &DNSValidate{Anchors: anchors, OpenResolvers: open, Quorum: quorum}
}

// Name implements middlebox.Box.
func (d *DNSValidate) Name() string { return "dns-validate" }

// Process implements middlebox.Box.
func (d *DNSValidate) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	msg := p.DNS()
	if msg == nil || !msg.QR || msg.Rcode != packet.DNSRcodeNoError || len(msg.Questions) == 0 {
		return data, middlebox.VerdictPass, nil
	}
	q := msg.Questions[0]

	err := d.Anchors.Validate(msg)
	switch {
	case err == nil:
		d.Validated++
		return data, middlebox.VerdictPass, nil

	case errors.Is(err, dnssim.ErrNoAnchor), errors.Is(err, dnssim.ErrNoSignature):
		// Not (or not verifiably) signed: fall back to quorum.
		return d.quorumCheck(ctx, data, msg, q)

	default:
		// Signed zone, bad signature: forged.
		d.Forged++
		ctx.Alert("dns-forged", fmt.Sprintf("%s: %v", q.Name, err))
		return nil, middlebox.VerdictDrop, nil
	}
}

func (d *DNSValidate) quorumCheck(ctx *middlebox.Context, data []byte, msg *packet.DNS, q packet.DNSQuestion) ([]byte, middlebox.Verdict, error) {
	if len(d.OpenResolvers) == 0 || q.Type != packet.DNSTypeA {
		d.Unverifiable++
		return data, middlebox.VerdictPass, nil
	}
	var answered packet.IPv4Address
	found := false
	for _, a := range msg.Answers {
		if a.Type == packet.DNSTypeA {
			answered = a.A()
			found = true
			break
		}
	}
	if !found {
		d.Unverifiable++
		return data, middlebox.VerdictPass, nil
	}
	res, err := dnssim.QuorumResolve(q.Name, d.OpenResolvers, d.Quorum)
	if err != nil {
		// No quorum among open resolvers: cannot prove the answer
		// wrong; pass but record that it was unverifiable.
		d.Unverifiable++
		ctx.Alert("dns-unverifiable", fmt.Sprintf("%s: %v", q.Name, err))
		return data, middlebox.VerdictPass, nil
	}
	if res.Addr != answered {
		d.Forged++
		ctx.Alert("dns-forged", fmt.Sprintf("%s: got %s, quorum says %s (%d/%d)",
			q.Name, answered, res.Addr, res.Votes, res.Total))
		return nil, middlebox.VerdictDrop, nil
	}
	d.Validated++
	return data, middlebox.VerdictPass, nil
}
