package mbx

import (
	"fmt"
	"strings"

	"pvn/internal/middlebox"
	"pvn/internal/packet"
)

// PIIMode selects what PIIDetect does on a finding.
type PIIMode string

// PII handling modes (§4 "Detecting and Blocking PII": "provide users the
// option to block or modify them").
const (
	PIIAlert  PIIMode = "alert"  // report only
	PIIBlock  PIIMode = "block"  // drop the packet
	PIIRedact PIIMode = "redact" // rewrite the value out of the payload
)

// PIIDetect scans unencrypted application payloads for personally
// identifiable information: user-specified secrets (passwords, device
// IDs) and structural patterns (email addresses, phone-like digit runs,
// GPS coordinates). It reproduces the in-network leg of ReCon [30].
type PIIDetect struct {
	Mode PIIMode
	// Secrets are user-provided exact strings to protect.
	Secrets []string
	// DetectPatterns enables the structural detectors.
	DetectPatterns bool

	// Findings counts detections; Redactions counts rewritten packets.
	Findings, Redactions, Blocked int64
}

// NewPIIDetect builds a detector. Empty mode defaults to alert-only.
func NewPIIDetect(mode PIIMode, secrets []string) *PIIDetect {
	if mode == "" {
		mode = PIIAlert
	}
	return &PIIDetect{Mode: mode, Secrets: secrets, DetectPatterns: true}
}

// Name implements middlebox.Box.
func (d *PIIDetect) Name() string { return "pii-detect" }

// Process implements middlebox.Box.
func (d *PIIDetect) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	if p.TLS() != nil {
		// Encrypted: out of scope for the in-network detector (the
		// paper routes these to trusted execution instead, Fig 1c).
		return data, middlebox.VerdictPass, nil
	}
	payload := p.ApplicationPayload()
	if h := p.HTTP(); h != nil {
		// Scan the whole HTTP message: PII leaks ride in paths and
		// headers as often as bodies.
		payload = append([]byte(h.Method+" "+h.Path+" "), payload...)
		for _, hd := range h.Headers {
			payload = append(payload, []byte(" "+hd.Name+": "+hd.Value)...)
		}
	}
	if len(payload) == 0 {
		return data, middlebox.VerdictPass, nil
	}

	found := d.scan(string(payload))
	if len(found) == 0 {
		return data, middlebox.VerdictPass, nil
	}
	d.Findings += int64(len(found))
	for _, f := range found {
		ctx.Alert("pii-leak", f)
	}

	switch d.Mode {
	case PIIBlock:
		d.Blocked++
		return nil, middlebox.VerdictDrop, nil
	case PIIRedact:
		out := d.redact(data, found)
		if out != nil {
			d.Redactions++
			return out, middlebox.VerdictPass, nil
		}
		// Could not rewrite safely: block rather than leak.
		d.Blocked++
		return nil, middlebox.VerdictDrop, nil
	default:
		return data, middlebox.VerdictPass, nil
	}
}

// scan returns descriptions of each PII hit in s.
func (d *PIIDetect) scan(s string) []string {
	var found []string
	lower := strings.ToLower(s)
	for _, sec := range d.Secrets {
		if sec != "" && strings.Contains(lower, strings.ToLower(sec)) {
			found = append(found, fmt.Sprintf("secret:%s", sec))
		}
	}
	if d.DetectPatterns {
		if e := findEmail(s); e != "" {
			found = append(found, "email:"+e)
		}
		if ph := findPhone(s); ph != "" {
			found = append(found, "phone:"+ph)
		}
		if g := findGPS(lower); g != "" {
			found = append(found, "gps:"+g)
		}
	}
	return found
}

// redact rewrites the HTTP body, replacing each finding's literal value
// with asterisks, and re-serializes the packet with fresh checksums. It
// returns nil when the packet is not rewritable HTTP.
func (d *PIIDetect) redact(data []byte, found []string) []byte {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	h := p.HTTP()
	ip := p.IPv4()
	t := p.TCP()
	if h == nil || ip == nil || t == nil {
		return nil
	}
	body := string(h.Body)
	path := h.Path
	for _, f := range found {
		i := strings.IndexByte(f, ':')
		val := f[i+1:]
		mask := strings.Repeat("*", len(val))
		body = replaceFold(body, val, mask)
		path = replaceFold(path, val, mask)
	}
	nh := *h
	nh.Body = []byte(body)
	nh.Path = path

	nip := &packet.IPv4{TOS: ip.TOS, ID: ip.ID, TTL: ip.TTL, Protocol: ip.Protocol, Src: ip.Src, Dst: ip.Dst}
	nt := &packet.TCP{SrcPort: t.SrcPort, DstPort: t.DstPort, Seq: t.Seq, Ack: t.Ack, Flags: t.Flags, Window: t.Window}
	nt.SetNetworkLayerForChecksum(nip)
	out, err := packet.SerializeToBytes(nip, nt, &nh)
	if err != nil {
		return nil
	}
	return out
}

// replaceFold replaces every case-insensitive occurrence of old in s.
func replaceFold(s, old, new string) string {
	if old == "" {
		return s
	}
	var b strings.Builder
	ls, lo := strings.ToLower(s), strings.ToLower(old)
	for {
		i := strings.Index(ls, lo)
		if i < 0 {
			b.WriteString(s)
			return b.String()
		}
		b.WriteString(s[:i])
		b.WriteString(new)
		s, ls = s[i+len(old):], ls[i+len(old):]
	}
}

// findEmail returns the first email-shaped token, or "".
func findEmail(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] != '@' {
			continue
		}
		start := i
		for start > 0 && isEmailLocal(s[start-1]) {
			start--
		}
		end := i + 1
		dots := 0
		for end < len(s) && (isAlnum(s[end]) || s[end] == '.' || s[end] == '-') {
			if s[end] == '.' {
				dots++
			}
			end++
		}
		// Trim a trailing dot (sentence punctuation).
		for end > i+1 && s[end-1] == '.' {
			end--
			dots--
		}
		if start < i && dots >= 1 && end > i+3 {
			return s[start:end]
		}
	}
	return ""
}

func isEmailLocal(c byte) bool {
	return isAlnum(c) || c == '.' || c == '_' || c == '-' || c == '+'
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// findPhone returns the first run of 10-11 digits (allowing separators),
// or "".
func findPhone(s string) string {
	i := 0
	for i < len(s) {
		if s[i] < '0' || s[i] > '9' {
			i++
			continue
		}
		digits := 0
		j := i
		for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '-' || s[j] == ' ' || s[j] == '.') {
			if s[j] >= '0' && s[j] <= '9' {
				digits++
			} else if digits == 0 {
				break
			}
			j++
		}
		// Trim trailing separators.
		for j > i && (s[j-1] == '-' || s[j-1] == ' ' || s[j-1] == '.') {
			j--
		}
		if digits >= 10 && digits <= 11 {
			return s[i:j]
		}
		if j == i {
			j++
		}
		i = j
	}
	return ""
}

// findGPS detects "lat=...&lon=..."-style coordinate pairs, the common
// mobile-app location leak shape.
func findGPS(lower string) string {
	latIdx := strings.Index(lower, "lat=")
	lonIdx := strings.Index(lower, "lon=")
	if lonIdx < 0 {
		lonIdx = strings.Index(lower, "lng=")
	}
	if latIdx >= 0 && lonIdx >= 0 {
		end := lonIdx + 4
		for end < len(lower) && (lower[end] >= '0' && lower[end] <= '9' || lower[end] == '.' || lower[end] == '-') {
			end++
		}
		start := latIdx
		if lonIdx < start {
			start = lonIdx
		}
		return lower[start:end]
	}
	return ""
}
