package mbx

import (
	"testing"

	"pvn/internal/packet"
	"pvn/internal/pki"
)

// segAt builds a TCP segment of the flow srv:443 -> dev:sport with an
// explicit sequence number — the raw material for split TLS records.
func segAt(t *testing.T, sport uint16, seq uint32, payload []byte) []byte {
	t.Helper()
	ip := &packet.IPv4{Src: srvIP, Dst: devIP, Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: 443, DstPort: sport, Seq: seq}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, tcp, packet.Payload(payload))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// helloAt sends the ClientHello on the SAME connection the certificate
// will arrive on (dev:sport -> srv:443), as real TLS does.
func helloAt(t *testing.T, f *tlsFixture, sport uint16, sni string) {
	t.Helper()
	rec := packet.BuildClientHello(sni, [32]byte{}, []uint16{1})
	body, err := packet.SerializeToBytes(&packet.TLS{Records: []packet.TLSRecord{rec}})
	if err != nil {
		t.Fatal(err)
	}
	ip := &packet.IPv4{Src: devIP, Dst: srvIP, Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: sport, DstPort: 443}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, tcp, packet.Payload(body))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runChain(t, f.rt, data); err != nil {
		t.Fatal(err)
	}
}

// TestTLSVerifyMultiSegmentCertificate: a valid certificate chain split
// across three TCP segments — delivered out of order — still verifies,
// and an invalid one split the same way is still blocked on the segment
// that completes it.
func TestTLSVerifyMultiSegmentCertificate(t *testing.T) {
	run := func(valid bool) (verdicts []bool, blocked int64) {
		f := newTLSFixture(t)
		const sport = 45443
		helloAt(t, f, sport, "www.example.com")

		subject := "www.example.com"
		if !valid {
			subject = "someone-else.example"
		}
		chain := f.leafFor(t, subject, 0, 1_000_000)
		rec := packet.BuildCertificateRecord(pki.EncodeChain(chain))
		wire, err := packet.SerializeToBytes(&packet.TLS{Records: []packet.TLSRecord{rec}})
		if err != nil {
			t.Fatal(err)
		}
		if len(wire) < 60 {
			t.Fatalf("record too small to split: %d bytes", len(wire))
		}
		// Split into three parts and deliver 1st, 3rd, 2nd.
		a, b, c := wire[:20], wire[20:40], wire[40:]
		parts := []struct {
			seq  uint32
			data []byte
		}{
			{0, a},
			{40, c},
			{20, b},
		}
		for _, part := range parts {
			out, _, err := f.rt.ExecuteChain("alice/t", segAt(t, sport, part.seq, part.data))
			if err != nil {
				t.Fatal(err)
			}
			verdicts = append(verdicts, out != nil)
		}
		return verdicts, f.box.Blocked
	}

	// Valid chain: every segment passes.
	verdicts, blocked := run(true)
	for i, ok := range verdicts {
		if !ok {
			t.Fatalf("valid chain: segment %d blocked", i)
		}
	}
	if blocked != 0 {
		t.Fatalf("valid chain: blocked=%d", blocked)
	}

	// Invalid chain: the first two segments pass (record incomplete),
	// the completing segment is dropped.
	verdicts, blocked = run(false)
	if !verdicts[0] || !verdicts[1] {
		t.Fatal("incomplete record segments should pass")
	}
	if verdicts[2] {
		t.Fatal("completing segment of invalid chain passed")
	}
	if blocked == 0 {
		t.Fatal("blocked counter not incremented")
	}
}

// TestTLSVerifyBlockedFlowStaysBlocked: once a flow fails verification,
// its later segments are dropped without reprocessing.
func TestTLSVerifyBlockedFlowStaysBlocked(t *testing.T) {
	f := newTLSFixture(t)
	const sport = 45444
	helloAt(t, f, sport, "bank.example")
	chain := f.leafFor(t, "phish.example", 0, 1_000_000)
	cert := packet.BuildCertificateRecord(pki.EncodeChain(chain))
	wire, _ := packet.SerializeToBytes(&packet.TLS{Records: []packet.TLSRecord{cert}})

	if out, _, _ := f.rt.ExecuteChain("alice/t", segAt(t, sport, 0, wire)); out != nil {
		t.Fatal("bad cert passed")
	}
	// Follow-up application data on the same flow is dropped too.
	appData, _ := packet.SerializeToBytes(&packet.TLS{Records: []packet.TLSRecord{packet.BuildApplicationData([]byte("post-handshake"))}})
	out, _, err := f.rt.ExecuteChain("alice/t", segAt(t, sport, uint32(len(wire)), appData))
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Fatal("blocked flow's later segment passed")
	}
}

// TestTLSVerifyRetransmissionHarmless: an exact retransmission of the
// certificate segment does not double-verify or flip the verdict.
func TestTLSVerifyRetransmissionHarmless(t *testing.T) {
	f := newTLSFixture(t)
	const sport = 45445
	helloAt(t, f, sport, "www.example.com")
	chain := f.leafFor(t, "www.example.com", 0, 1_000_000)
	cert := packet.BuildCertificateRecord(pki.EncodeChain(chain))
	wire, _ := packet.SerializeToBytes(&packet.TLS{Records: []packet.TLSRecord{cert}})

	for i := 0; i < 3; i++ { // original + two retransmissions
		out, _, err := f.rt.ExecuteChain("alice/t", segAt(t, sport, 0, wire))
		if err != nil || out == nil {
			t.Fatalf("retransmission %d blocked", i)
		}
	}
	if f.box.Checked != 1 {
		t.Fatalf("chain verified %d times, want 1", f.box.Checked)
	}
}
