package mbx

import (
	"bytes"
	"strings"

	"pvn/internal/middlebox"
	"pvn/internal/packet"
)

// TrackerBlock drops traffic to known tracker/ad domains, matching the
// Host header of plaintext HTTP and the SNI of TLS connections (§4
// "tracker-blocking modules").
type TrackerBlock struct {
	// Domains holds lowercase blocked domains; subdomains are blocked
	// too.
	Domains []string

	Blocked int64
}

// NewTrackerBlock builds a blocker over the given domain list.
func NewTrackerBlock(domains []string) *TrackerBlock {
	out := make([]string, len(domains))
	for i, d := range domains {
		out[i] = strings.ToLower(d)
	}
	return &TrackerBlock{Domains: out}
}

// Name implements middlebox.Box.
func (t *TrackerBlock) Name() string { return "tracker-block" }

// Process implements middlebox.Box.
func (t *TrackerBlock) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	host := hostOf(data)
	if host == "" {
		return data, middlebox.VerdictPass, nil
	}
	for _, d := range t.Domains {
		if host == d || strings.HasSuffix(host, "."+d) {
			t.Blocked++
			ctx.Alert("tracker-blocked", host)
			return nil, middlebox.VerdictDrop, nil
		}
	}
	return data, middlebox.VerdictPass, nil
}

// hostOf extracts the destination hostname from HTTP Host or TLS SNI.
func hostOf(data []byte) string {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	if h := p.HTTP(); h != nil && h.IsRequest {
		return strings.ToLower(h.Host())
	}
	if tl := p.TLS(); tl != nil {
		for _, rec := range tl.Records {
			if rec.Type != packet.TLSTypeHandshake {
				continue
			}
			hss, err := rec.Handshakes()
			if err != nil {
				continue
			}
			for _, hs := range hss {
				if hs.Type == packet.TLSHandshakeClientHello {
					if ch, err := packet.ParseClientHello(hs.Body); err == nil {
						return strings.ToLower(ch.ServerName)
					}
				}
			}
		}
	}
	return ""
}

// MalwareScan drops packets whose application payload contains a known
// signature — the "detect malware in network traffic and block" function
// the paper argues ISPs do not reliably provide (§2.1).
type MalwareScan struct {
	// Signatures are raw byte patterns.
	Signatures [][]byte

	Detected int64
}

// NewMalwareScan builds a scanner over the given signature set.
func NewMalwareScan(signatures [][]byte) *MalwareScan {
	return &MalwareScan{Signatures: signatures}
}

// Name implements middlebox.Box.
func (m *MalwareScan) Name() string { return "malware-scan" }

// Process implements middlebox.Box.
func (m *MalwareScan) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	payload := p.ApplicationPayload()
	if h := p.HTTP(); h != nil {
		payload = h.Body
	}
	if len(payload) == 0 {
		return data, middlebox.VerdictPass, nil
	}
	for _, sig := range m.Signatures {
		if len(sig) > 0 && bytes.Contains(payload, sig) {
			m.Detected++
			ctx.Alert("malware-detected", string(sig))
			return nil, middlebox.VerdictDrop, nil
		}
	}
	return data, middlebox.VerdictPass, nil
}
