package mbx

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pvn/internal/dnssim"
	"pvn/internal/middlebox"
	"pvn/internal/packet"
	"pvn/internal/pki"
)

// Deps carries the environment the security middleboxes verify against.
type Deps struct {
	// TrustStore backs tls-verify.
	TrustStore *pki.TrustStore
	// NowSeconds supplies certificate-validity time.
	NowSeconds func() int64
	// Anchors and OpenResolvers back dns-validate.
	Anchors       dnssim.TrustAnchors
	OpenResolvers []*dnssim.Resolver
}

// TCPProxy marks flows for split-TCP treatment. The connection splitting
// itself is modelled by tcpsim (flow level); the box exists so PVNCs can
// place the proxy in a chain, count its flows and charge its CPU.
type TCPProxy struct {
	Flows map[packet.Flow]bool
}

// NewTCPProxy builds the marker proxy.
func NewTCPProxy() *TCPProxy { return &TCPProxy{Flows: make(map[packet.Flow]bool)} }

// Name implements middlebox.Box.
func (t *TCPProxy) Name() string { return "tcp-proxy" }

// Process implements middlebox.Box.
func (t *TCPProxy) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	if f, ok := packet.FlowOf(p); ok {
		t.Flows[f.Canonical()] = true
	}
	return data, middlebox.VerdictPass, nil
}

// RegisterBuiltins registers every built-in middlebox type with the
// runtime, using the paper's cited cost defaults except where a function
// is plainly heavier (transcoding) or lighter (classification).
func RegisterBuiltins(rt *middlebox.Runtime, deps Deps) {
	rt.Register(&middlebox.Spec{
		Type:       "tls-verify",
		Security:   true,
		FailPolicy: middlebox.FailClosed,
		New: func(cfg map[string]string) (middlebox.Box, error) {
			if deps.TrustStore == nil {
				return nil, fmt.Errorf("tls-verify requires a trust store")
			}
			b := NewTLSVerify(deps.TrustStore, deps.NowSeconds)
			b.WarnOnly = cfg["mode"] == "warn"
			return b, nil
		},
	})
	rt.Register(&middlebox.Spec{
		Type:       "dns-validate",
		Security:   true,
		FailPolicy: middlebox.FailClosed,
		New: func(cfg map[string]string) (middlebox.Box, error) {
			quorum := 0
			if q := cfg["quorum"]; q != "" {
				v, err := strconv.Atoi(q)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("bad quorum %q", q)
				}
				quorum = v
			}
			return NewDNSValidate(deps.Anchors, deps.OpenResolvers, quorum), nil
		},
	})
	rt.Register(&middlebox.Spec{
		Type:       "pii-detect",
		Security:   true,
		FailPolicy: middlebox.FailClosed,
		New: func(cfg map[string]string) (middlebox.Box, error) {
			mode := PIIMode(cfg["mode"])
			switch mode {
			case "", PIIAlert, PIIBlock, PIIRedact:
			default:
				return nil, fmt.Errorf("bad pii mode %q", cfg["mode"])
			}
			var secrets []string
			if s := cfg["secrets"]; s != "" {
				secrets = strings.Split(s, ",")
			}
			return NewPIIDetect(mode, secrets), nil
		},
	})
	rt.Register(&middlebox.Spec{
		Type:           "classifier",
		FailPolicy:     middlebox.FailOpen,    // losing classification loses a speedup, not safety
		PerPacketDelay: 10 * time.Microsecond, // header-only work
		New: func(cfg map[string]string) (middlebox.Box, error) {
			return NewClassifier(), nil
		},
	})
	rt.Register(&middlebox.Spec{
		Type:           "transcoder",
		FailPolicy:     middlebox.FailOpen,
		PerPacketDelay: 500 * time.Microsecond, // media re-encode is heavy
		MemoryBytes:    32 << 20,
		New: func(cfg map[string]string) (middlebox.Box, error) {
			ratio := 0.0
			if r := cfg["ratio"]; r != "" {
				v, err := strconv.ParseFloat(r, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ratio %q", r)
				}
				ratio = v
			}
			return NewTranscoder(ratio), nil
		},
	})
	rt.Register(&middlebox.Spec{
		Type:       "tracker-block",
		Security:   true,
		FailPolicy: middlebox.FailClosed,
		New: func(cfg map[string]string) (middlebox.Box, error) {
			var domains []string
			if d := cfg["domains"]; d != "" {
				domains = strings.Split(d, ",")
			}
			return NewTrackerBlock(domains), nil
		},
	})
	rt.Register(&middlebox.Spec{
		Type:       "malware-scan",
		Security:   true,
		FailPolicy: middlebox.FailClosed,
		New: func(cfg map[string]string) (middlebox.Box, error) {
			var sigs [][]byte
			if s := cfg["signatures"]; s != "" {
				for _, sig := range strings.Split(s, ",") {
					sigs = append(sigs, []byte(sig))
				}
			}
			return NewMalwareScan(sigs), nil
		},
	})
	rt.Register(&middlebox.Spec{
		Type:           "compressor",
		FailPolicy:     middlebox.FailOpen,
		PerPacketDelay: 100 * time.Microsecond,
		New: func(cfg map[string]string) (middlebox.Box, error) {
			return NewCompressor(), nil
		},
	})
	rt.Register(&middlebox.Spec{
		Type:        "prefetcher",
		FailPolicy:  middlebox.FailOpen,
		MemoryBytes: 16 << 20, // cache space
		New: func(cfg map[string]string) (middlebox.Box, error) {
			return NewPrefetcher(), nil
		},
	})
	rt.Register(&middlebox.Spec{
		Type:       "tcp-proxy",
		FailPolicy: middlebox.FailOpen,
		New: func(cfg map[string]string) (middlebox.Box, error) {
			return NewTCPProxy(), nil
		},
	})
	rt.Register(&middlebox.Spec{
		// Untrusted user code defaults to fail-closed: whatever the
		// script was filtering must not silently flow when it breaks.
		Type:       "user-script",
		FailPolicy: middlebox.FailClosed,
		New: func(cfg map[string]string) (middlebox.Box, error) {
			src := cfg["script"]
			if src == "" {
				return nil, fmt.Errorf("user-script requires cfg[script]")
			}
			return CompileScript(src)
		},
	})
	rt.Register(&middlebox.Spec{
		// Deterministic fault injection for supervision tests and
		// experiments (E14); see FaultyBox.
		Type: "faulty",
		New: func(cfg map[string]string) (middlebox.Box, error) {
			plan, seed, err := faultPlanFromConfig(cfg)
			if err != nil {
				return nil, err
			}
			return NewFaultyBox(nil, plan, seed), nil
		},
	})
	registerOffload(rt)
}
