package mbx

import (
	"strconv"
	"strings"

	"pvn/internal/middlebox"
	"pvn/internal/packet"
)

// TrafficClass labels a flow for policy purposes.
type TrafficClass string

// Traffic classes, the categories Fig 1(a)'s example PVNC routes
// differently (web text vs video/image vs encrypted).
const (
	ClassWebText TrafficClass = "web-text"
	ClassVideo   TrafficClass = "video"
	ClassImage   TrafficClass = "image"
	ClassDNS     TrafficClass = "dns"
	ClassTLS     TrafficClass = "tls"
	ClassOther   TrafficClass = "other"
)

// Classifier assigns each flow a TrafficClass from ports, SNI and HTTP
// content types, and exposes the table for policy decisions downstream.
type Classifier struct {
	flows map[packet.Flow]TrafficClass

	// Counts tracks packets per class.
	Counts map[TrafficClass]int64
}

// NewClassifier builds an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{flows: make(map[packet.Flow]TrafficClass), Counts: make(map[TrafficClass]int64)}
}

// Name implements middlebox.Box.
func (c *Classifier) Name() string { return "classifier" }

// ClassOf returns the recorded class for a flow (either direction), or
// ClassOther.
func (c *Classifier) ClassOf(f packet.Flow) TrafficClass {
	if cl, ok := c.flows[f.Canonical()]; ok {
		return cl
	}
	return ClassOther
}

// Process implements middlebox.Box. Classification never drops.
func (c *Classifier) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	flow, ok := packet.FlowOf(p)
	if !ok {
		c.Counts[ClassOther]++
		return data, middlebox.VerdictPass, nil
	}
	key := flow.Canonical()
	cl := c.classify(p, key)
	c.flows[key] = cl
	c.Counts[cl]++
	return data, middlebox.VerdictPass, nil
}

func (c *Classifier) classify(p *packet.Packet, key packet.Flow) TrafficClass {
	if p.DNS() != nil {
		return ClassDNS
	}
	if p.TLS() != nil {
		// Refine with SNI when a ClientHello is visible.
		for _, rec := range p.TLS().Records {
			if rec.Type != packet.TLSTypeHandshake {
				continue
			}
			if hss, err := rec.Handshakes(); err == nil {
				for _, hs := range hss {
					if hs.Type != packet.TLSHandshakeClientHello {
						continue
					}
					if ch, err := packet.ParseClientHello(hs.Body); err == nil {
						if isVideoHost(ch.ServerName) {
							return ClassVideo
						}
					}
				}
			}
		}
		return ClassTLS
	}
	if h := p.HTTP(); h != nil {
		ct := strings.ToLower(h.Header("Content-Type"))
		switch {
		case strings.HasPrefix(ct, "video/"), strings.Contains(ct, "mpegurl"), strings.Contains(ct, "mp4"):
			return ClassVideo
		case strings.HasPrefix(ct, "image/"):
			return ClassImage
		case ct != "":
			return ClassWebText
		}
		if h.IsRequest {
			if isVideoHost(h.Host()) || strings.Contains(h.Path, ".m3u8") || strings.Contains(h.Path, ".mp4") {
				return ClassVideo
			}
			return ClassWebText
		}
		return ClassWebText
	}
	// Keep a previously learned class for mid-flow packets.
	if prev, ok := c.flows[key]; ok {
		return prev
	}
	return ClassOther
}

func isVideoHost(host string) bool {
	host = strings.ToLower(host)
	return strings.Contains(host, "video") || strings.Contains(host, "stream") || strings.Contains(host, "cdn-media")
}

// Transcoder reduces the bitrate of video HTTP responses, the PVN
// per-flow alternative to carrier-wide shaping (§2.2, E4): users pick
// which sessions to transcode instead of having every video throttled.
type Transcoder struct {
	// Ratio is the output/input size ratio in (0,1]; 0.4 approximates
	// transcoding 1080p to 480p.
	Ratio float64

	// BytesIn/BytesOut account the saving.
	BytesIn, BytesOut int64
}

// NewTranscoder builds a transcoder with the given compression ratio.
func NewTranscoder(ratio float64) *Transcoder {
	if ratio <= 0 || ratio > 1 {
		ratio = 0.4
	}
	return &Transcoder{Ratio: ratio}
}

// Name implements middlebox.Box.
func (t *Transcoder) Name() string { return "transcoder" }

// Process implements middlebox.Box: video responses get their bodies
// shrunk by Ratio and re-checksummed; everything else passes untouched.
func (t *Transcoder) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	h := p.HTTP()
	if h == nil || h.IsRequest || len(h.Body) == 0 {
		return data, middlebox.VerdictPass, nil
	}
	ct := strings.ToLower(h.Header("Content-Type"))
	if !strings.HasPrefix(ct, "video/") {
		return data, middlebox.VerdictPass, nil
	}
	ip, tc := p.IPv4(), p.TCP()
	if ip == nil || tc == nil {
		return data, middlebox.VerdictPass, nil
	}
	t.BytesIn += int64(len(h.Body))
	newLen := int(float64(len(h.Body)) * t.Ratio)
	if newLen < 1 {
		newLen = 1
	}
	nh := *h
	nh.Body = h.Body[:newLen]
	nh.SetHeader("Content-Length", strconv.Itoa(newLen))
	nh.SetHeader("X-PVN-Transcoded", "1")
	t.BytesOut += int64(newLen)

	nip := &packet.IPv4{TOS: ip.TOS, ID: ip.ID, TTL: ip.TTL, Protocol: ip.Protocol, Src: ip.Src, Dst: ip.Dst}
	nt := &packet.TCP{SrcPort: tc.SrcPort, DstPort: tc.DstPort, Seq: tc.Seq, Ack: tc.Ack, Flags: tc.Flags, Window: tc.Window}
	nt.SetNetworkLayerForChecksum(nip)
	out, err := packet.SerializeToBytes(nip, nt, &nh)
	if err != nil {
		return data, middlebox.VerdictPass, nil
	}
	return out, middlebox.VerdictPass, nil
}
