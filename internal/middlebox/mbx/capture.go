package mbx

import (
	"fmt"
	"io"

	"pvn/internal/middlebox"
	"pvn/internal/pcapio"
)

// CaptureTap records the user's own traffic to a pcap stream as it
// crosses the PVN — the user-deployable analogue of running tcpdump on a
// network you do not administer, which the paper's control story makes
// possible and its isolation story makes safe: the tap only ever sees
// the chains (and therefore the traffic) of the user who deployed it.
type CaptureTap struct {
	w *pcapio.Writer

	// Captured counts packets written; Failed counts write errors
	// (capture failures never block traffic).
	Captured, Failed int64
}

// NewCaptureTap builds a tap writing raw-IP pcap to sink.
func NewCaptureTap(sink io.Writer) (*CaptureTap, error) {
	w, err := pcapio.NewWriter(sink, pcapio.LinkTypeRaw)
	if err != nil {
		return nil, fmt.Errorf("capture-tap: %w", err)
	}
	return &CaptureTap{w: w}, nil
}

// Name implements middlebox.Box.
func (c *CaptureTap) Name() string { return "pcap-tap" }

// Process implements middlebox.Box. It never modifies or drops traffic.
func (c *CaptureTap) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	if err := c.w.WritePacket(ctx.Now, data); err != nil {
		c.Failed++
	} else {
		c.Captured++
	}
	return data, middlebox.VerdictPass, nil
}

// RegisterCaptureTap adds the pcap-tap type to a runtime, writing to the
// given sink factory (one sink per instance, so two deployments never
// interleave records in one file).
func RegisterCaptureTap(rt *middlebox.Runtime, newSink func() (io.Writer, error)) {
	rt.Register(&middlebox.Spec{
		Type:       "pcap-tap",
		FailPolicy: middlebox.FailOpen, // capture failures never block traffic
		New: func(cfg map[string]string) (middlebox.Box, error) {
			if newSink == nil {
				return nil, fmt.Errorf("pcap-tap: no capture sink configured on this host")
			}
			sink, err := newSink()
			if err != nil {
				return nil, err
			}
			return NewCaptureTap(sink)
		},
	})
}
