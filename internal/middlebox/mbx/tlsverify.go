// Package mbx contains the built-in PVN middleboxes: the concrete
// network functions the paper proposes deploying in personal virtual
// networks (§4) — TLS certificate verification, DNS validation, PII
// detection and blocking, traffic classification, video transcoding,
// tracker and malware blocking, web compression/prefetching/rendering,
// replica selection, and a sandboxed user-script filter.
//
// Every box implements middlebox.Box over raw IPv4 packets and keeps
// per-flow state internally, so one instance serves one user's whole
// virtual network.
package mbx

import (
	"encoding/binary"
	"fmt"

	"pvn/internal/middlebox"
	"pvn/internal/packet"
	"pvn/internal/pki"
	"pvn/internal/reasm"
)

// TLSVerify enforces certificate validity on TLS connections (§4
// "HTTPS/TLS Enhancements"): it reassembles each flow's TCP stream,
// remembers the SNI from the ClientHello and verifies Certificate
// handshakes against a trust store — including certificate chains that
// span multiple TCP segments, as real chains do. Connections presenting
// invalid, expired, self-signed, revoked or misissued (MITM) chains are
// blocked and alerted.
type TLSVerify struct {
	Store *pki.TrustStore
	// NowSeconds supplies validity-check time on the simulation
	// timeline.
	NowSeconds func() int64
	// WarnOnly downgrades blocking to alert-only (the paper's "at least
	// present warnings" mode).
	WarnOnly bool

	asm *reasm.Assembler
	sni map[packet.Flow]string
	// blockedFlows remembers connections that already failed; all their
	// later segments are dropped too.
	blockedFlows map[packet.Flow]bool

	// Checked and Blocked count verified chains and blocked flows.
	Checked, Blocked int64
}

// NewTLSVerify builds the verifier.
func NewTLSVerify(store *pki.TrustStore, nowSeconds func() int64) *TLSVerify {
	if nowSeconds == nil {
		nowSeconds = func() int64 { return 0 }
	}
	return &TLSVerify{
		Store:        store,
		NowSeconds:   nowSeconds,
		asm:          reasm.NewAssembler(),
		sni:          make(map[packet.Flow]string),
		blockedFlows: make(map[packet.Flow]bool),
	}
}

// Name implements middlebox.Box.
func (t *TLSVerify) Name() string { return "tls-verify" }

// Process implements middlebox.Box.
func (t *TLSVerify) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	tcp := p.TCP()
	if tcp == nil || (tcp.SrcPort != 443 && tcp.DstPort != 443) || len(tcp.LayerPayload()) == 0 {
		return data, middlebox.VerdictPass, nil
	}
	flow, _ := packet.FlowOf(p)
	if t.blockedFlows[flow.Canonical()] {
		return t.block(flow, data)
	}

	stream, err := t.asm.Feed(p)
	if err != nil {
		// Reassembly resource limit: fail closed, the flow cannot be
		// verified.
		ctx.Alert("tls-reassembly", err.Error())
		return t.block(flow, data)
	}
	if stream == nil {
		return data, middlebox.VerdictPass, nil
	}

	// Parse every COMPLETE record at the head of the stream.
	for {
		buf := stream.Bytes()
		if len(buf) < 5 {
			break
		}
		typ := buf[0]
		if typ < packet.TLSTypeChangeCipherSpec || typ > packet.TLSTypeApplicationData {
			ctx.Alert("tls-malformed", fmt.Sprintf("bad record type %d", typ))
			return t.block(flow, data)
		}
		rlen := int(binary.BigEndian.Uint16(buf[3:5]))
		if len(buf) < 5+rlen {
			break // record incomplete; wait for more segments
		}
		rec := packet.TLSRecord{Type: typ, Version: binary.BigEndian.Uint16(buf[1:3]), Payload: buf[5 : 5+rlen]}
		ok := t.processRecord(ctx, flow, rec)
		stream.Consume(5 + rlen)
		if !ok {
			return t.block(flow, data)
		}
	}
	return data, middlebox.VerdictPass, nil
}

// processRecord inspects one complete TLS record; false means block.
func (t *TLSVerify) processRecord(ctx *middlebox.Context, flow packet.Flow, rec packet.TLSRecord) bool {
	if rec.Type != packet.TLSTypeHandshake {
		return true
	}
	hss, err := rec.Handshakes()
	if err != nil {
		ctx.Alert("tls-malformed", err.Error())
		return false
	}
	for _, hs := range hss {
		switch hs.Type {
		case packet.TLSHandshakeClientHello:
			ch, err := packet.ParseClientHello(hs.Body)
			if err == nil && ch.ServerName != "" {
				t.sni[flow.Canonical()] = ch.ServerName
			}
		case packet.TLSHandshakeCertificate:
			t.Checked++
			if !t.certificateOK(ctx, flow, hs.Body) {
				return false
			}
		}
	}
	return true
}

func (t *TLSVerify) block(flow packet.Flow, data []byte) ([]byte, middlebox.Verdict, error) {
	if t.WarnOnly {
		return data, middlebox.VerdictPass, nil
	}
	t.blockedFlows[flow.Canonical()] = true
	t.Blocked++
	return nil, middlebox.VerdictDrop, nil
}

func (t *TLSVerify) certificateOK(ctx *middlebox.Context, flow packet.Flow, body []byte) bool {
	blobs, err := packet.ParseCertificateChain(body)
	if err != nil {
		ctx.Alert("tls-malformed", err.Error())
		return false
	}
	chain, err := pki.DecodeChain(blobs)
	if err != nil {
		ctx.Alert("tls-malformed", err.Error())
		return false
	}
	// The Certificate flies server->client; the SNI was recorded from
	// the client->server direction, so look up the canonical flow.
	wantName := t.sni[flow.Canonical()]
	if err := t.Store.Verify(chain, wantName, t.NowSeconds()); err != nil {
		ctx.Alert("tls-invalid-cert", fmt.Sprintf("%s: %v", wantName, err))
		return false
	}
	return true
}
