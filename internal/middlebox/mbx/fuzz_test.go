package mbx

import "testing"

// FuzzCompileScript: the sandboxed filter-language compiler on arbitrary
// programs — must never panic, and accepted programs must execute.
func FuzzCompileScript(f *testing.F) {
	f.Add(`when dport == 443 then pass`)
	f.Add(`when host contains "ads" and not proto == udp then drop`)
	f.Add(`when ( path startswith "/t" or payload contains "x" ) then alert "m"`)
	f.Add(``)
	f.Add(`when when then then`)

	f.Fuzz(func(t *testing.T, src string) {
		box, err := CompileScript(src)
		if err != nil {
			return
		}
		// Accepted programs evaluate without panicking.
		pkt := []byte{0x45, 0, 0, 20, 0, 0, 0, 0, 64, 6, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}
		fields := extractScriptFields(pkt)
		for _, r := range box.rules {
			_ = r.expr.eval(fields)
		}
	})
}
