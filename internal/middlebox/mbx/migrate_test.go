package mbx

import (
	"bytes"
	"testing"

	"pvn/internal/packet"
)

func migFlow(port uint16) packet.Flow {
	return packet.Flow{
		Proto: packet.IPProtoTCP,
		Src:   packet.Endpoint{Addr: packet.MustParseIPv4("10.0.0.5"), Port: port},
		Dst:   packet.Endpoint{Addr: packet.MustParseIPv4("93.184.216.34"), Port: 443},
	}.Canonical()
}

func TestTCPProxyStateRoundTrip(t *testing.T) {
	old := &TCPProxy{Flows: map[packet.Flow]bool{migFlow(1): true, migFlow(2): true}}
	data, err := old.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: exporting the same state twice yields identical bytes.
	again, _ := old.ExportState()
	if !bytes.Equal(data, again) {
		t.Fatal("export not deterministic")
	}

	fresh := &TCPProxy{}
	if err := fresh.ImportState(data); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Flows) != 2 || !fresh.Flows[migFlow(1)] || !fresh.Flows[migFlow(2)] {
		t.Fatalf("imported flows %v", fresh.Flows)
	}
	// Import merges: existing split connections survive.
	fresh.Flows[migFlow(3)] = true
	if err := fresh.ImportState(data); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Flows) != 3 {
		t.Fatalf("merge lost flows: %v", fresh.Flows)
	}
	if err := fresh.ImportState([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestClassifierStateRoundTrip(t *testing.T) {
	old := &Classifier{
		flows:  map[packet.Flow]TrafficClass{migFlow(1): ClassVideo},
		Counts: map[TrafficClass]int64{ClassVideo: 7},
	}
	data, err := old.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := &Classifier{
		flows:  map[packet.Flow]TrafficClass{migFlow(1): ClassWebText}, // fresher local label
		Counts: map[TrafficClass]int64{ClassVideo: 1},
	}
	if err := fresh.ImportState(data); err != nil {
		t.Fatal(err)
	}
	// Existing labels win; counters fold in additively.
	if fresh.flows[migFlow(1)] != ClassWebText {
		t.Fatalf("import overwrote local label: %v", fresh.flows)
	}
	if fresh.Counts[ClassVideo] != 8 {
		t.Fatalf("counts %v", fresh.Counts)
	}
}

func TestPIIDetectStateRoundTrip(t *testing.T) {
	old := &PIIDetect{Findings: 5, Redactions: 2, Blocked: 3}
	data, err := old.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := &PIIDetect{Findings: 1}
	if err := fresh.ImportState(data); err != nil {
		t.Fatal(err)
	}
	if fresh.Findings != 6 || fresh.Redactions != 2 || fresh.Blocked != 3 {
		t.Fatalf("counters %+v", fresh)
	}
}
