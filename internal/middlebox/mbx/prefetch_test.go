package mbx

import (
	"fmt"
	"testing"

	"pvn/internal/packet"
)

func TestExtractLinks(t *testing.T) {
	html := `<a href="/page1">one</a> <img src="/img/a.png">
<a href="https://other.example/x">ext</a>
<a href="#anchor">skip</a> <a href="javascript:void(0)">skip</a>
<a href="/page1">dup</a> <script src="app.js"></script>`
	links := ExtractLinks(html)
	want := []string{"/page1", "https://other.example/x", "/img/a.png", "app.js"}
	if len(links) != len(want) {
		t.Fatalf("links %v, want %v", links, want)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("links %v, want %v", links, want)
		}
	}
}

func TestSplitLink(t *testing.T) {
	cases := []struct {
		link, pageHost, host, path string
	}{
		{"/a/b", "site.example", "site.example", "/a/b"},
		{"img.png", "site.example", "site.example", "/img.png"},
		{"http://cdn.example/x.js", "site.example", "cdn.example", "/x.js"},
		{"https://cdn.example", "site.example", "cdn.example", "/"},
	}
	for _, c := range cases {
		h, p := splitLink(c.link, c.pageHost)
		if h != c.host || p != c.path {
			t.Errorf("splitLink(%q) = %q,%q want %q,%q", c.link, h, p, c.host, c.path)
		}
	}
}

// prefetchWorld builds an engine over a fake origin with 3 resources.
func prefetchWorld(t *testing.T) (*PrefetchEngine, map[string]int) {
	t.Helper()
	fetchCount := map[string]int{}
	origin := map[string]string{
		"site.example/style.css": "body{}",
		"site.example/app.js":    "code",
		"site.example/big.png":   "PNGBYTES",
	}
	fetch := func(host, path string) ([]byte, bool) {
		key := host + path
		fetchCount[key]++
		body, ok := origin[key]
		return []byte(body), ok
	}
	return NewPrefetchEngine(NewPrefetcher(), fetch), fetchCount
}

func htmlResponse(t *testing.T, host, body string) []byte {
	t.Helper()
	h := &packet.HTTP{StatusCode: 200, StatusText: "OK", Body: []byte(body)}
	h.SetHeader("Content-Type", "text/html")
	h.SetHeader("X-PVN-Host", host)
	msg, err := packet.SerializeToBytes(h)
	if err != nil {
		t.Fatal(err)
	}
	return tcpSegRev(t, 80, msg)
}

func TestPrefetchEnginePopulatesCache(t *testing.T) {
	eng, fetchCount := prefetchWorld(t)
	_, rt := ctx(t, eng)
	page := `<link href="/style.css"><script src="/app.js"></script>
<img src="/big.png"> <img src="https://ads.example/pixel.gif"> <a href="/missing.html">x</a>`
	out, err := runChain(t, rt, htmlResponse(t, "site.example", page))
	if err != nil || out == nil {
		t.Fatal("engine dropped the page")
	}
	if eng.Prefetched != 3 {
		t.Fatalf("prefetched %d, want 3", eng.Prefetched)
	}
	// Cross-host pixel and 404 are skipped, never cached.
	if _, ok := eng.Cache.Lookup("ads.example", "/pixel.gif"); ok {
		t.Fatal("third-party resource prefetched")
	}
	if body, ok := eng.Cache.Lookup("site.example", "/style.css"); !ok || string(body) != "body{}" {
		t.Fatal("style.css not cached")
	}
	if fetchCount["site.example/missing.html"] != 1 {
		t.Fatal("missing resource never attempted")
	}

	// A second pass over the same page fetches nothing new.
	runChain(t, rt, htmlResponse(t, "site.example", page))
	if fetchCount["site.example/style.css"] != 1 {
		t.Fatalf("re-fetched cached resource %d times", fetchCount["site.example/style.css"])
	}
}

func TestPrefetchEngineCap(t *testing.T) {
	eng, _ := prefetchWorld(t)
	eng.MaxPerPage = 1
	_, rt := ctx(t, eng)
	var b string
	for i := 0; i < 5; i++ {
		b += fmt.Sprintf(`<a href="/style.css?v=%d">x</a>`, i)
	}
	// All different query strings -> different paths; only 1 fetched.
	eng.Fetch = func(host, path string) ([]byte, bool) { return []byte("y"), true }
	runChain(t, rt, htmlResponse(t, "site.example", b))
	if eng.Prefetched != 1 {
		t.Fatalf("prefetched %d with cap 1", eng.Prefetched)
	}
	if eng.Skipped == 0 {
		t.Fatal("cap skips not recorded")
	}
}

func TestPrefetchEngineIgnoresNonHTML(t *testing.T) {
	eng, _ := prefetchWorld(t)
	_, rt := ctx(t, eng)
	runChain(t, rt, httpResp(t, "application/json", `{"href":"/x"}`))
	if eng.Prefetched != 0 {
		t.Fatal("prefetched from JSON")
	}
}
