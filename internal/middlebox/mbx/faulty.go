package mbx

import (
	"fmt"
	"strconv"
	"time"

	"pvn/internal/middlebox"
	"pvn/internal/netsim"
)

// FaultPlan describes deterministic fault injection for a FaultyBox —
// the middlebox-level sibling of netsim.FaultInjector. Three injection
// shapes compose:
//
//   - rate-based (ErrorRate/PanicRate/CorruptRate/SlowRate): each call
//     draws from the box's seeded RNG, so a run is reproducible
//     bit-for-bit given the seed and call order;
//   - modulo-based (ErrorEvery/PanicEvery/CorruptEvery): call #N, #2N, …
//     fault, independent of any RNG — reproducible under any
//     interleaving that preserves total call count;
//   - time-windowed (FailUntil): every call before the simulated
//     deadline faults, which makes breaker/restart experiments exact —
//     the box is hard-down for a known window and clean after.
type FaultPlan struct {
	// ErrorRate / PanicRate / CorruptRate / SlowRate are per-call
	// probabilities in [0,1], drawn from the seeded RNG.
	ErrorRate, PanicRate, CorruptRate, SlowRate float64
	// ErrorEvery / PanicEvery / CorruptEvery fault every Nth call
	// (1 = every call). Zero disables.
	ErrorEvery, PanicEvery, CorruptEvery int
	// FailUntil makes every call before this simulated time fault
	// (FailKind selects how). Zero disables.
	FailUntil time.Duration
	// FailKind is what FailUntil injects: "panic" (default) or "error".
	FailKind string
	// SlowDelay is the wall-clock stall injected on a slow call.
	// Zero defaults to 100 µs.
	SlowDelay time.Duration
}

// FaultyBox wraps an inner middlebox (or a pass-through when Inner is
// nil) with seeded, deterministic fault injection: errors, panics,
// output corruption and slow calls. It exists to drive the supervision
// layer — panic isolation, circuit breakers, failure policies, restart
// — in tests and experiments, the way netsim.FaultInjector drives the
// control-plane retry machinery.
type FaultyBox struct {
	Inner middlebox.Box
	Plan  FaultPlan

	rng   *netsim.RNG
	calls int64

	// Injected counts what the plan actually did.
	Injected struct {
		Errors, Panics, Corrupts, Slows int64
	}
}

// NewFaultyBox builds a fault injector around inner (nil = pass-through)
// drawing from a fresh RNG seeded with seed.
func NewFaultyBox(inner middlebox.Box, plan FaultPlan, seed uint64) *FaultyBox {
	return &FaultyBox{Inner: inner, Plan: plan, rng: netsim.NewRNG(seed)}
}

// Name implements middlebox.Box.
func (f *FaultyBox) Name() string { return "faulty" }

// Calls reports how many Process calls the box has seen (across
// restarts of the same Box value; a supervisor restart builds a fresh
// FaultyBox and so resets the count — deterministically, since the seed
// is part of the instance config).
func (f *FaultyBox) Calls() int64 { return f.calls }

// Process implements middlebox.Box.
func (f *FaultyBox) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	f.calls++

	if f.Plan.FailUntil > 0 && ctx.Now < f.Plan.FailUntil {
		if f.Plan.FailKind == "error" {
			f.Injected.Errors++
			return nil, middlebox.VerdictDrop, fmt.Errorf("faulty: injected error (hard-down until %v)", f.Plan.FailUntil)
		}
		f.Injected.Panics++
		//lint:allow failpolicy injected fault: panicking is this box's job; the supervisor's recover() is the system under test
		panic(fmt.Sprintf("faulty: injected panic (hard-down until %v)", f.Plan.FailUntil))
	}

	every := func(n int) bool { return n > 0 && f.calls%int64(n) == 0 }
	// Draw every configured rate each call, so the RNG sequence (and
	// with it the whole run) is a pure function of seed and call count.
	pPanic := f.Plan.PanicRate > 0 && f.rng.Bool(f.Plan.PanicRate)
	pErr := f.Plan.ErrorRate > 0 && f.rng.Bool(f.Plan.ErrorRate)
	pCorrupt := f.Plan.CorruptRate > 0 && f.rng.Bool(f.Plan.CorruptRate)
	pSlow := f.Plan.SlowRate > 0 && f.rng.Bool(f.Plan.SlowRate)

	if pSlow {
		f.Injected.Slows++
		d := f.Plan.SlowDelay
		if d <= 0 {
			d = 100 * time.Microsecond
		}
		time.Sleep(d) //lint:allow nondet slow-injection stalls the real worker goroutine on purpose; counts, not timings, are what E14 asserts
	}
	if pPanic || every(f.Plan.PanicEvery) {
		f.Injected.Panics++
		//lint:allow failpolicy injected fault: panicking is this box's job; the supervisor's recover() is the system under test
		panic(fmt.Sprintf("faulty: injected panic on call %d", f.calls))
	}
	if pErr || every(f.Plan.ErrorEvery) {
		f.Injected.Errors++
		return nil, middlebox.VerdictDrop, fmt.Errorf("faulty: injected error on call %d", f.calls)
	}

	out, v, err := data, middlebox.VerdictPass, error(nil)
	if f.Inner != nil {
		out, v, err = f.Inner.Process(ctx, data)
	}
	if (pCorrupt || every(f.Plan.CorruptEvery)) && v == middlebox.VerdictPass && err == nil {
		f.Injected.Corrupts++
		src := out
		if src == nil {
			src = data
		}
		bad := append([]byte(nil), src...)
		// Flip a deterministic byte: corruption the chain's downstream
		// consumers (checksums, parsers) can notice, the supervisor
		// cannot — there is no oracle for "wrong but well-formed".
		if len(bad) > 0 {
			bad[int(f.calls)%len(bad)] ^= 0xff
		}
		return bad, middlebox.VerdictPass, nil
	}
	return out, v, err
}

// faultPlanFromConfig parses the "faulty" type's instance config.
func faultPlanFromConfig(cfg map[string]string) (FaultPlan, uint64, error) {
	var plan FaultPlan
	var seed uint64 = 1
	for key, val := range cfg {
		var err error
		switch key {
		case "error-rate":
			plan.ErrorRate, err = strconv.ParseFloat(val, 64)
		case "panic-rate":
			plan.PanicRate, err = strconv.ParseFloat(val, 64)
		case "corrupt-rate":
			plan.CorruptRate, err = strconv.ParseFloat(val, 64)
		case "slow-rate":
			plan.SlowRate, err = strconv.ParseFloat(val, 64)
		case "error-every":
			plan.ErrorEvery, err = strconv.Atoi(val)
		case "panic-every":
			plan.PanicEvery, err = strconv.Atoi(val)
		case "corrupt-every":
			plan.CorruptEvery, err = strconv.Atoi(val)
		case "fail-until-ms":
			var ms int
			ms, err = strconv.Atoi(val)
			plan.FailUntil = time.Duration(ms) * time.Millisecond
		case "fail-kind":
			if val != "panic" && val != "error" {
				err = fmt.Errorf("want panic or error")
			}
			plan.FailKind = val
		case "slow-us":
			var us int
			us, err = strconv.Atoi(val)
			plan.SlowDelay = time.Duration(us) * time.Microsecond
		case "seed":
			seed, err = strconv.ParseUint(val, 10, 64)
		case "fail":
			// Failure-policy override, consumed by the runtime.
		default:
			return plan, 0, fmt.Errorf("faulty: unknown config key %q", key)
		}
		if err != nil {
			return plan, 0, fmt.Errorf("faulty: bad %s %q: %v", key, val, err)
		}
	}
	return plan, seed, nil
}
