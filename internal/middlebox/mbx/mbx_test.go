package mbx

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pvn/internal/dnssim"
	"pvn/internal/middlebox"
	"pvn/internal/packet"
	"pvn/internal/pki"
)

var (
	devIP = packet.MustParseIPv4("10.0.0.5")
	srvIP = packet.MustParseIPv4("93.184.216.34")
)

// ctx builds a standalone middlebox context wired to a scratch runtime so
// Alert works.
func ctx(t *testing.T, box middlebox.Box) (*middlebox.Context, *middlebox.Runtime) {
	t.Helper()
	rt := middlebox.NewRuntime(nil)
	rt.Register(&middlebox.Spec{Type: box.Name(), New: func(map[string]string) (middlebox.Box, error) { return box, nil }})
	inst, err := rt.Instantiate("alice", box.Name(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rt.BuildChain("alice", "t", []string{inst.ID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = c
	return nil, rt
}

// runChain pushes one packet through the single-box chain built by ctx.
func runChain(t *testing.T, rt *middlebox.Runtime, data []byte) ([]byte, error) {
	t.Helper()
	// All instances boot at DefaultBootDelay; use a runtime whose Now is
	// past it.
	rt.Now = func() time.Duration { return time.Second }
	out, _, err := rt.ExecuteChain("alice/t", data)
	return out, err
}

func tcpSeg(t *testing.T, dport uint16, payload []byte) []byte {
	t.Helper()
	ip := &packet.IPv4{Src: devIP, Dst: srvIP, Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: 40001, DstPort: dport}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, tcp, packet.Payload(payload))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// reverse direction (server -> device)
func tcpSegRev(t *testing.T, sport uint16, payload []byte) []byte {
	t.Helper()
	ip := &packet.IPv4{Src: srvIP, Dst: devIP, Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: sport, DstPort: 40001}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, tcp, packet.Payload(payload))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func httpReq(t *testing.T, method, host, path, body string, hdrs ...packet.HTTPHeader) []byte {
	t.Helper()
	h := &packet.HTTP{IsRequest: true, Method: method, Path: path, Body: []byte(body)}
	h.SetHeader("Host", host)
	for _, hd := range hdrs {
		h.SetHeader(hd.Name, hd.Value)
	}
	msg, err := packet.SerializeToBytes(h)
	if err != nil {
		t.Fatal(err)
	}
	return tcpSeg(t, 80, msg)
}

func httpResp(t *testing.T, ct, body string) []byte {
	t.Helper()
	h := &packet.HTTP{StatusCode: 200, StatusText: "OK"}
	h.SetHeader("Content-Type", ct)
	h.Body = []byte(body)
	msg, err := packet.SerializeToBytes(h)
	if err != nil {
		t.Fatal(err)
	}
	return tcpSegRev(t, 80, msg)
}

func tlsSeg(t *testing.T, toServer bool, recs ...packet.TLSRecord) []byte {
	t.Helper()
	data, err := packet.SerializeToBytes(&packet.TLS{Records: recs})
	if err != nil {
		t.Fatal(err)
	}
	if toServer {
		return tcpSeg(t, 443, data)
	}
	return tcpSegRev(t, 443, data)
}

// --- TLSVerify ---

type tlsFixture struct {
	store *pki.TrustStore
	root  *pki.CA
	box   *TLSVerify
	rt    *middlebox.Runtime
}

func newTLSFixture(t *testing.T) *tlsFixture {
	rootKey, _ := pki.GenerateKey(pki.NewDeterministicRand(1))
	root := pki.NewRootCA("Root", rootKey, 0, 1_000_000)
	store := pki.NewTrustStore(root.Cert)
	box := NewTLSVerify(store, func() int64 { return 500 })
	_, rt := ctx(t, box)
	return &tlsFixture{store: store, root: root, box: box, rt: rt}
}

func (f *tlsFixture) leafFor(t *testing.T, name string, from, until int64) []*pki.Certificate {
	k, _ := pki.GenerateKey(pki.NewDeterministicRand(7))
	leaf := f.root.Issue(pki.IssueOptions{Subject: name, PublicKey: k.Public, ValidFrom: from, ValidUntil: until})
	return []*pki.Certificate{leaf}
}

func TestTLSVerifyValidChainPasses(t *testing.T) {
	f := newTLSFixture(t)
	// ClientHello teaches the box the SNI.
	ch := packet.BuildClientHello("www.example.com", [32]byte{}, []uint16{1})
	if _, err := runChain(t, f.rt, tlsSeg(t, true, ch)); err != nil {
		t.Fatal(err)
	}
	chain := f.leafFor(t, "www.example.com", 0, 1_000_000)
	cert := packet.BuildCertificateRecord(pki.EncodeChain(chain))
	out, err := runChain(t, f.rt, tlsSeg(t, false, cert))
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("valid certificate blocked")
	}
	if f.box.Checked != 1 || f.box.Blocked != 0 {
		t.Fatalf("counters checked=%d blocked=%d", f.box.Checked, f.box.Blocked)
	}
}

func TestTLSVerifyMITMBlocked(t *testing.T) {
	f := newTLSFixture(t)
	ch := packet.BuildClientHello("www.example.com", [32]byte{}, []uint16{1})
	runChain(t, f.rt, tlsSeg(t, true, ch))

	// MITM: attacker's own root signs a cert for the victim name.
	evilKey, _ := pki.GenerateKey(pki.NewDeterministicRand(66))
	evil := pki.NewRootCA("Evil", evilKey, 0, 1_000_000)
	k, _ := pki.GenerateKey(pki.NewDeterministicRand(67))
	mitm := evil.Issue(pki.IssueOptions{Subject: "www.example.com", PublicKey: k.Public, ValidFrom: 0, ValidUntil: 1_000_000})
	cert := packet.BuildCertificateRecord(pki.EncodeChain([]*pki.Certificate{mitm, evil.Cert}))
	out, err := runChain(t, f.rt, tlsSeg(t, false, cert))
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Fatal("MITM certificate passed")
	}
	alerts := f.rt.Alerts("alice")
	if len(alerts) != 1 || alerts[0].Kind != "tls-invalid-cert" {
		t.Fatalf("alerts %+v", alerts)
	}
}

func TestTLSVerifyExpiredBlocked(t *testing.T) {
	f := newTLSFixture(t)
	runChain(t, f.rt, tlsSeg(t, true, packet.BuildClientHello("www.example.com", [32]byte{}, []uint16{1})))
	chain := f.leafFor(t, "www.example.com", 0, 100) // expired at now=500
	out, err := runChain(t, f.rt, tlsSeg(t, false, packet.BuildCertificateRecord(pki.EncodeChain(chain))))
	if err != nil || out != nil {
		t.Fatalf("expired cert: out=%v err=%v", out, err)
	}
}

func TestTLSVerifyNameMismatchBlocked(t *testing.T) {
	f := newTLSFixture(t)
	runChain(t, f.rt, tlsSeg(t, true, packet.BuildClientHello("bank.example.com", [32]byte{}, []uint16{1})))
	chain := f.leafFor(t, "phish.example.net", 0, 1_000_000)
	out, _ := runChain(t, f.rt, tlsSeg(t, false, packet.BuildCertificateRecord(pki.EncodeChain(chain))))
	if out != nil {
		t.Fatal("name-mismatched cert passed")
	}
}

func TestTLSVerifyWarnOnlyPasses(t *testing.T) {
	f := newTLSFixture(t)
	f.box.WarnOnly = true
	runChain(t, f.rt, tlsSeg(t, true, packet.BuildClientHello("www.example.com", [32]byte{}, []uint16{1})))
	chain := f.leafFor(t, "wrong.name", 0, 1_000_000)
	out, err := runChain(t, f.rt, tlsSeg(t, false, packet.BuildCertificateRecord(pki.EncodeChain(chain))))
	if err != nil || out == nil {
		t.Fatal("warn-only mode blocked the connection")
	}
	if len(f.rt.Alerts("alice")) == 0 {
		t.Fatal("warn-only mode did not alert")
	}
}

func TestTLSVerifyIgnoresNonTLS(t *testing.T) {
	f := newTLSFixture(t)
	out, err := runChain(t, f.rt, httpReq(t, "GET", "h", "/", ""))
	if err != nil || out == nil {
		t.Fatal("non-TLS packet affected")
	}
}

// --- DNSValidate ---

func dnsPacket(t *testing.T, msg *packet.DNS) []byte {
	t.Helper()
	body, err := packet.SerializeToBytes(msg)
	if err != nil {
		t.Fatal(err)
	}
	ip := &packet.IPv4{Src: srvIP, Dst: devIP, Protocol: packet.IPProtoUDP}
	udp := &packet.UDP{SrcPort: 53, DstPort: 3333}
	udp.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, udp, packet.Payload(body))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDNSValidateSignedPassesAndForgedDrops(t *testing.T) {
	zone, _ := dnssim.NewZone("example.com", true, 1)
	zone.AddA("www.example.com", srvIP, 300)
	auth := dnssim.NewAuthority(zone)
	anchors := dnssim.TrustAnchors{"example.com": zone.PublicKey()}
	box := NewDNSValidate(anchors, nil, 0)
	_, rt := ctx(t, box)

	honest := dnssim.NewResolver("h", auth, 1)
	good := honest.Query("www.example.com", packet.DNSTypeA)
	if out, err := runChain(t, rt, dnsPacket(t, good)); err != nil || out == nil {
		t.Fatalf("signed answer blocked: %v", err)
	}
	if box.Validated != 1 {
		t.Fatalf("validated %d", box.Validated)
	}

	// Forge the A record, keep the signature: must drop.
	bad := honest.Query("www.example.com", packet.DNSTypeA)
	for i, a := range bad.Answers {
		if a.Type == packet.DNSTypeA {
			evil := packet.MustParseIPv4("198.18.0.66")
			bad.Answers[i].Data = evil[:]
		}
	}
	out, err := runChain(t, rt, dnsPacket(t, bad))
	if err != nil || out != nil {
		t.Fatalf("forged answer passed: out=%v err=%v", out, err)
	}
	if box.Forged != 1 {
		t.Fatalf("forged counter %d", box.Forged)
	}
}

func TestDNSValidateQuorumCatchesForgedUnsigned(t *testing.T) {
	zone, _ := dnssim.NewZone("legacy.net", false, 1)
	zone.AddA("old.legacy.net", srvIP, 300)
	auth := dnssim.NewAuthority(zone)
	var open []*dnssim.Resolver
	for i := 0; i < 3; i++ {
		open = append(open, dnssim.NewResolver("o", auth, uint64(i)))
	}
	box := NewDNSValidate(dnssim.TrustAnchors{}, open, 2)
	_, rt := ctx(t, box)

	// The device's resolver was malicious and forged the answer.
	evilAddr := packet.MustParseIPv4("198.18.0.66")
	forged := &packet.DNS{ID: 1, QR: true,
		Questions: []packet.DNSQuestion{{Name: "old.legacy.net", Type: packet.DNSTypeA, Class: packet.DNSClassIN}},
		Answers:   []packet.DNSRecord{{Name: "old.legacy.net", Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: 60, Data: evilAddr[:]}}}
	out, err := runChain(t, rt, dnsPacket(t, forged))
	if err != nil || out != nil {
		t.Fatal("forged unsigned answer passed quorum check")
	}

	// The honest answer agrees with quorum and passes.
	honest := &packet.DNS{ID: 2, QR: true,
		Questions: []packet.DNSQuestion{{Name: "old.legacy.net", Type: packet.DNSTypeA, Class: packet.DNSClassIN}},
		Answers:   []packet.DNSRecord{{Name: "old.legacy.net", Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: 60, Data: srvIP[:]}}}
	if out, err := runChain(t, rt, dnsPacket(t, honest)); err != nil || out == nil {
		t.Fatal("honest unsigned answer blocked")
	}
}

func TestDNSValidateIgnoresQueriesAndErrors(t *testing.T) {
	box := NewDNSValidate(dnssim.TrustAnchors{}, nil, 0)
	_, rt := ctx(t, box)
	q := &packet.DNS{ID: 1, RD: true, Questions: []packet.DNSQuestion{{Name: "x.y", Type: packet.DNSTypeA, Class: packet.DNSClassIN}}}
	if out, err := runChain(t, rt, dnsPacket(t, q)); err != nil || out == nil {
		t.Fatal("query blocked")
	}
	nx := &packet.DNS{ID: 2, QR: true, Rcode: packet.DNSRcodeNXDomain, Questions: q.Questions}
	if out, err := runChain(t, rt, dnsPacket(t, nx)); err != nil || out == nil {
		t.Fatal("NXDOMAIN blocked")
	}
}

// --- PIIDetect ---

func TestPIIDetectFindsSecretsAndPatterns(t *testing.T) {
	box := NewPIIDetect(PIIAlert, []string{"hunter2"})
	_, rt := ctx(t, box)
	pkt := httpReq(t, "POST", "api.example.com", "/login",
		"user=alice@example.com&password=hunter2&phone=617-555-1234&lat=42.33&lon=-71.09")
	out, err := runChain(t, rt, pkt)
	if err != nil || out == nil {
		t.Fatal("alert mode must pass traffic")
	}
	alerts := rt.Alerts("alice")
	kinds := map[string]bool{}
	for _, a := range alerts {
		kinds[strings.SplitN(a.Detail, ":", 2)[0]] = true
	}
	for _, want := range []string{"secret", "email", "phone", "gps"} {
		if !kinds[want] {
			t.Errorf("missing %s detection; alerts: %+v", want, alerts)
		}
	}
}

func TestPIIDetectBlockMode(t *testing.T) {
	box := NewPIIDetect(PIIBlock, []string{"hunter2"})
	_, rt := ctx(t, box)
	out, err := runChain(t, rt, httpReq(t, "POST", "h", "/l", "password=hunter2"))
	if err != nil || out != nil {
		t.Fatal("block mode passed a leaking packet")
	}
	if box.Blocked != 1 {
		t.Fatalf("blocked %d", box.Blocked)
	}
	// Clean traffic still flows.
	out, err = runChain(t, rt, httpReq(t, "GET", "h", "/ok", "clean"))
	if err != nil || out == nil {
		t.Fatal("clean packet blocked")
	}
}

func TestPIIDetectRedactRewritesAndChecksums(t *testing.T) {
	box := NewPIIDetect(PIIRedact, []string{"hunter2"})
	box.DetectPatterns = false
	_, rt := ctx(t, box)
	out, err := runChain(t, rt, httpReq(t, "POST", "h", "/l", "password=hunter2&x=1"))
	if err != nil || out == nil {
		t.Fatal("redact mode dropped")
	}
	p := packet.Decode(out, packet.LayerTypeIPv4)
	body := string(p.HTTP().Body)
	if strings.Contains(body, "hunter2") {
		t.Fatalf("secret survived redaction: %q", body)
	}
	if !strings.Contains(body, "*******") {
		t.Fatalf("mask missing: %q", body)
	}
	if !p.TCP().VerifyChecksum(p.IPv4().LayerPayload()) {
		t.Fatal("redacted packet has bad checksum")
	}
}

func TestPIIDetectSkipsTLS(t *testing.T) {
	box := NewPIIDetect(PIIBlock, []string{"hunter2"})
	_, rt := ctx(t, box)
	rec := packet.BuildApplicationData([]byte("password=hunter2"))
	out, err := runChain(t, rt, tlsSeg(t, true, rec))
	if err != nil || out == nil {
		t.Fatal("encrypted traffic must pass the plaintext detector")
	}
}

func TestFindEmailEdges(t *testing.T) {
	if e := findEmail("write to bob.smith+x@mail.example.org."); e != "bob.smith+x@mail.example.org" {
		t.Fatalf("email %q", e)
	}
	if e := findEmail("no at sign here"); e != "" {
		t.Fatalf("false email %q", e)
	}
	if e := findEmail("a@b"); e != "" {
		t.Fatalf("tld-less email accepted: %q", e)
	}
}

func TestFindPhoneEdges(t *testing.T) {
	if p := findPhone("call 617-555-1234 now"); p != "617-555-1234" {
		t.Fatalf("phone %q", p)
	}
	if p := findPhone("version 1.2.3"); p != "" {
		t.Fatalf("false phone %q", p)
	}
	if p := findPhone("id 123456789012345"); p != "" {
		t.Fatalf("long digit run misread as phone: %q", p)
	}
}

// --- Classifier / Transcoder ---

func TestClassifierClasses(t *testing.T) {
	box := NewClassifier()
	_, rt := ctx(t, box)
	runChain(t, rt, httpResp(t, "video/mp4", "MOVIEDATA"))
	runChain(t, rt, httpResp(t, "text/html", "<html>"))
	runChain(t, rt, httpResp(t, "image/png", "PNG"))
	runChain(t, rt, dnsPacket(t, &packet.DNS{ID: 1, QR: true, Questions: []packet.DNSQuestion{{Name: "a.b", Type: 1, Class: 1}}, Answers: []packet.DNSRecord{{Name: "a.b", Type: 1, Class: 1, Data: srvIP[:]}}}))
	runChain(t, rt, tlsSeg(t, true, packet.BuildClientHello("video.example.com", [32]byte{}, []uint16{1})))

	if box.Counts[ClassVideo] != 2 { // video/mp4 + video SNI
		t.Fatalf("video count %d, want 2 (counts %v)", box.Counts[ClassVideo], box.Counts)
	}
	if box.Counts[ClassWebText] != 1 || box.Counts[ClassImage] != 1 || box.Counts[ClassDNS] != 1 {
		t.Fatalf("counts %v", box.Counts)
	}
}

func TestTranscoderShrinksVideoOnly(t *testing.T) {
	box := NewTranscoder(0.5)
	_, rt := ctx(t, box)
	video := httpResp(t, "video/mp4", strings.Repeat("V", 1000))
	out, err := runChain(t, rt, video)
	if err != nil {
		t.Fatal(err)
	}
	p := packet.Decode(out, packet.LayerTypeIPv4)
	if got := len(p.HTTP().Body); got != 500 {
		t.Fatalf("video body %d bytes, want 500", got)
	}
	if p.HTTP().Header("X-PVN-Transcoded") != "1" {
		t.Fatal("transcode marker missing")
	}
	if !p.TCP().VerifyChecksum(p.IPv4().LayerPayload()) {
		t.Fatal("transcoded packet has bad checksum")
	}

	text := httpResp(t, "text/html", strings.Repeat("T", 1000))
	out, _ = runChain(t, rt, text)
	if len(packet.Decode(out, packet.LayerTypeIPv4).HTTP().Body) != 1000 {
		t.Fatal("non-video transcoded")
	}
	if box.BytesIn != 1000 || box.BytesOut != 500 {
		t.Fatalf("accounting %d/%d", box.BytesIn, box.BytesOut)
	}
}

// --- Blocklists ---

func TestTrackerBlockByHostAndSNI(t *testing.T) {
	box := NewTrackerBlock([]string{"ads.example", "Tracker.NET"})
	_, rt := ctx(t, box)
	if out, _ := runChain(t, rt, httpReq(t, "GET", "ads.example", "/pixel", "")); out != nil {
		t.Fatal("tracker host not blocked")
	}
	if out, _ := runChain(t, rt, httpReq(t, "GET", "sub.tracker.net", "/t", "")); out != nil {
		t.Fatal("tracker subdomain not blocked")
	}
	if out, _ := runChain(t, rt, tlsSeg(t, true, packet.BuildClientHello("ads.example", [32]byte{}, []uint16{1}))); out != nil {
		t.Fatal("tracker SNI not blocked")
	}
	if out, _ := runChain(t, rt, httpReq(t, "GET", "news.example", "/a", "")); out == nil {
		t.Fatal("legit host blocked")
	}
	if box.Blocked != 3 {
		t.Fatalf("blocked %d", box.Blocked)
	}
}

func TestMalwareScan(t *testing.T) {
	box := NewMalwareScan([][]byte{[]byte("EVILBYTES")})
	_, rt := ctx(t, box)
	if out, _ := runChain(t, rt, httpResp(t, "application/octet-stream", "xxEVILBYTESxx")); out != nil {
		t.Fatal("malware payload not dropped")
	}
	if out, _ := runChain(t, rt, httpResp(t, "application/octet-stream", "innocent")); out == nil {
		t.Fatal("clean payload dropped")
	}
	if box.Detected != 1 {
		t.Fatalf("detected %d", box.Detected)
	}
}

// --- Compressor / Prefetcher ---

func TestCompressorLossless(t *testing.T) {
	box := NewCompressor()
	_, rt := ctx(t, box)
	body := strings.Repeat("compressible text content ", 100)
	out, err := runChain(t, rt, httpResp(t, "text/html", body))
	if err != nil {
		t.Fatal(err)
	}
	p := packet.Decode(out, packet.LayerTypeIPv4)
	h := p.HTTP()
	if h.Header("Content-Encoding") != "deflate" {
		t.Fatal("not compressed")
	}
	if len(h.Body) >= len(body) {
		t.Fatal("compression did not shrink body")
	}
	plain, err := Decompress(h.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != body {
		t.Fatal("compression not lossless")
	}
	if !p.TCP().VerifyChecksum(p.IPv4().LayerPayload()) {
		t.Fatal("compressed packet has bad checksum")
	}
}

func TestCompressorSkipsSmallBinaryAndEncoded(t *testing.T) {
	box := NewCompressor()
	_, rt := ctx(t, box)
	small := httpResp(t, "text/html", "tiny")
	out, _ := runChain(t, rt, small)
	if packet.Decode(out, packet.LayerTypeIPv4).HTTP().Header("Content-Encoding") != "" {
		t.Fatal("tiny body compressed")
	}
	binary := httpResp(t, "video/mp4", strings.Repeat("v", 1000))
	out, _ = runChain(t, rt, binary)
	if packet.Decode(out, packet.LayerTypeIPv4).HTTP().Header("Content-Encoding") != "" {
		t.Fatal("binary body compressed")
	}
}

func TestPrefetcherCacheAndEviction(t *testing.T) {
	f := NewPrefetcher()
	f.CapBytes = 100
	f.StoreResource("h", "/a", bytes.Repeat([]byte("a"), 60))
	f.StoreResource("h", "/b", bytes.Repeat([]byte("b"), 60)) // evicts /a
	if _, ok := f.Lookup("h", "/a"); ok {
		t.Fatal("/a survived eviction")
	}
	if body, ok := f.Lookup("h", "/b"); !ok || len(body) != 60 {
		t.Fatal("/b missing")
	}
	if f.Hits != 1 || f.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", f.Hits, f.Misses)
	}
	if f.CacheSize() != 60 {
		t.Fatalf("cache size %d", f.CacheSize())
	}
}

func TestPrefetcherLearnsFromResponses(t *testing.T) {
	box := NewPrefetcher()
	_, rt := ctx(t, box)
	h := &packet.HTTP{StatusCode: 200, StatusText: "OK", Body: []byte("resource-bytes")}
	h.SetHeader("Content-Type", "text/css")
	h.SetHeader("X-PVN-Resource", "h/style.css")
	msg, _ := packet.SerializeToBytes(h)
	runChain(t, rt, tcpSegRev(t, 80, msg))
	if body, ok := box.Lookup("h", "/missing"); ok || body != nil {
		t.Fatal("phantom cache hit")
	}
	if body, ok := box.cache["h/style.css"]; !ok || string(body) != "resource-bytes" {
		t.Fatal("response not cached")
	}
}

// --- ScriptBox ---

func TestScriptCompileErrors(t *testing.T) {
	bad := []string{
		"drop everything",
		"when bogusfield == 1 then drop",
		"when dport ?? 1 then drop",
		"when dport == 1 then explode",
		`when host contains "x then drop`,
		"when ( dport == 1 then drop",
		"when dport == 1 then alert",
		"when dport == 1 then drop extra",
	}
	for _, src := range bad {
		if _, err := CompileScript(src); err == nil {
			t.Errorf("compiled invalid program %q", src)
		}
	}
}

func TestScriptRuleLimit(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 200; i++ {
		b.WriteString("when dport == 1 then pass\n")
	}
	if _, err := CompileScript(b.String()); err == nil {
		t.Fatal("200-rule program accepted")
	}
}

func TestScriptFirstMatchWins(t *testing.T) {
	box, err := CompileScript(`
# allow the API host, block other port-80 traffic
when host == "api.example.com" then pass
when dport == 80 then drop
`)
	if err != nil {
		t.Fatal(err)
	}
	_, rt := ctx(t, box)
	if out, _ := runChain(t, rt, httpReq(t, "GET", "api.example.com", "/", "")); out == nil {
		t.Fatal("whitelisted host dropped")
	}
	if out, _ := runChain(t, rt, httpReq(t, "GET", "other.example.com", "/", "")); out != nil {
		t.Fatal("other host not dropped")
	}
	if box.Matched != 2 {
		t.Fatalf("matched %d", box.Matched)
	}
}

func TestScriptBooleansAndAlert(t *testing.T) {
	box, err := CompileScript(`when proto == tcp and ( path startswith "/track" or payload contains "beacon" ) and not host == "safe.example" then alert "tracking"`)
	if err != nil {
		t.Fatal(err)
	}
	_, rt := ctx(t, box)
	runChain(t, rt, httpReq(t, "GET", "x.example", "/track/p", ""))
	runChain(t, rt, httpReq(t, "GET", "x.example", "/page", "a beacon payload"))
	runChain(t, rt, httpReq(t, "GET", "safe.example", "/track/p", ""))
	alerts := rt.Alerts("alice")
	if len(alerts) != 2 {
		t.Fatalf("alerts %d, want 2: %+v", len(alerts), alerts)
	}
	for _, a := range alerts {
		if a.Detail != "tracking" {
			t.Fatalf("alert detail %q", a.Detail)
		}
	}
}

func TestScriptDefaultPass(t *testing.T) {
	box, _ := CompileScript(`when dport == 9999 then drop`)
	_, rt := ctx(t, box)
	if out, _ := runChain(t, rt, httpReq(t, "GET", "h", "/", "")); out == nil {
		t.Fatal("non-matching packet dropped")
	}
}

// --- Registry ---

func TestRegisterBuiltinsInstantiatesEverything(t *testing.T) {
	rootKey, _ := pki.GenerateKey(pki.NewDeterministicRand(1))
	root := pki.NewRootCA("Root", rootKey, 0, 1000)
	zone, _ := dnssim.NewZone("example.com", true, 2)
	auth := dnssim.NewAuthority(zone)
	rt := middlebox.NewRuntime(nil)
	rt.MemoryCapBytes = 1 << 30
	RegisterBuiltins(rt, Deps{
		TrustStore:    pki.NewTrustStore(root.Cert),
		NowSeconds:    func() int64 { return 0 },
		Anchors:       dnssim.TrustAnchors{"example.com": zone.PublicKey()},
		OpenResolvers: []*dnssim.Resolver{dnssim.NewResolver("o", auth, 1)},
	})
	cfgs := map[string]map[string]string{
		"user-script":    {"script": `when dport == 80 then pass`},
		"transcoder":     {"ratio": "0.5"},
		"pii-detect":     {"mode": "block", "secrets": "s1,s2"},
		"replica-select": {"service": "203.0.113.100", "replicas": "198.51.100.1:20"},
	}
	for _, typ := range rt.Types() {
		if _, err := rt.Instantiate("u", typ, cfgs[typ]); err != nil {
			t.Errorf("instantiate %s: %v", typ, err)
		}
	}
}

func TestRegisterBuiltinsBadConfigs(t *testing.T) {
	rt := middlebox.NewRuntime(nil)
	RegisterBuiltins(rt, Deps{TrustStore: pki.NewTrustStore()})
	bad := []struct {
		typ string
		cfg map[string]string
	}{
		{"user-script", nil},
		{"user-script", map[string]string{"script": "when x then y"}},
		{"transcoder", map[string]string{"ratio": "abc"}},
		{"pii-detect", map[string]string{"mode": "explode"}},
		{"dns-validate", map[string]string{"quorum": "-1"}},
	}
	for _, c := range bad {
		if _, err := rt.Instantiate("u", c.typ, c.cfg); err == nil {
			t.Errorf("bad config accepted for %s: %v", c.typ, c.cfg)
		}
	}
}

func TestTCPProxyCountsFlows(t *testing.T) {
	box := NewTCPProxy()
	_, rt := ctx(t, box)
	runChain(t, rt, tcpSeg(t, 80, []byte("a")))
	runChain(t, rt, tcpSegRev(t, 80, []byte("b"))) // same canonical flow
	runChain(t, rt, tcpSeg(t, 443, []byte{22, 3, 3, 0, 1, 0}))
	if len(box.Flows) != 2 {
		t.Fatalf("flows %d, want 2", len(box.Flows))
	}
}
