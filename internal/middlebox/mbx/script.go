package mbx

import (
	"fmt"
	"strconv"
	"strings"

	"pvn/internal/middlebox"
	"pvn/internal/packet"
)

// ScriptBox executes user-supplied filter programs written in a tiny,
// deliberately restricted language — the paper's "secure sandboxes using
// a restricted development language that minimizes attack surfaces"
// (§3.3). The language has no loops, no state, no I/O: a program is a
// list of first-match-wins rules over packet fields, each a bounded
// boolean expression, so evaluation cost is linear in program size and a
// hostile program cannot consume unbounded resources or touch other
// users' traffic.
//
// Syntax (one rule per line, '#' comments):
//
//	when <expr> then pass
//	when <expr> then drop
//	when <expr> then alert "message"
//
// Expressions combine comparisons with and/or/not and parentheses:
//
//	proto == tcp            dport == 443
//	host contains "ads"     path startswith "/track"
//	payload contains "key"  src == 10.0.0.5
//
// Fields: proto, sport, dport, src, dst, host, path, payload.
type ScriptBox struct {
	rules []scriptRule

	// Matched counts rules fired.
	Matched int64
}

type scriptAction struct {
	kind  string // "pass" | "drop" | "alert"
	alert string
}

type scriptRule struct {
	expr   scriptExpr
	action scriptAction
}

// scriptExpr is an evaluatable boolean expression tree.
type scriptExpr interface {
	eval(f *scriptFields) bool
}

// scriptFields is the evaluation environment extracted from one packet.
type scriptFields struct {
	proto        string
	sport, dport int
	src, dst     string
	host, path   string
	payload      string
}

type exprAnd struct{ l, r scriptExpr }
type exprOr struct{ l, r scriptExpr }
type exprNot struct{ e scriptExpr }

func (e exprAnd) eval(f *scriptFields) bool { return e.l.eval(f) && e.r.eval(f) }
func (e exprOr) eval(f *scriptFields) bool  { return e.l.eval(f) || e.r.eval(f) }
func (e exprNot) eval(f *scriptFields) bool { return !e.e.eval(f) }

type exprCmp struct {
	field string
	op    string // "==", "!=", "contains", "startswith"
	value string
}

func (e exprCmp) eval(f *scriptFields) bool {
	var got string
	switch e.field {
	case "proto":
		got = f.proto
	case "sport":
		got = strconv.Itoa(f.sport)
	case "dport":
		got = strconv.Itoa(f.dport)
	case "src":
		got = f.src
	case "dst":
		got = f.dst
	case "host":
		got = f.host
	case "path":
		got = f.path
	case "payload":
		got = f.payload
	}
	got = strings.ToLower(got)
	want := strings.ToLower(e.value)
	switch e.op {
	case "==":
		return got == want
	case "!=":
		return got != want
	case "contains":
		return strings.Contains(got, want)
	case "startswith":
		return strings.HasPrefix(got, want)
	}
	return false
}

// CompileScript parses a program. Compilation enforces the sandbox
// limits: at most 128 rules and 64 tokens per expression.
func CompileScript(src string) (*ScriptBox, error) {
	box := &ScriptBox{}
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := parseRule(line)
		if err != nil {
			return nil, fmt.Errorf("script line %d: %w", lineNo+1, err)
		}
		box.rules = append(box.rules, rule)
		if len(box.rules) > 128 {
			return nil, fmt.Errorf("script: too many rules (limit 128)")
		}
	}
	return box, nil
}

func parseRule(line string) (scriptRule, error) {
	toks, err := tokenize(line)
	if err != nil {
		return scriptRule{}, err
	}
	if len(toks) > 64 {
		return scriptRule{}, fmt.Errorf("expression too long (%d tokens, limit 64)", len(toks))
	}
	p := &scriptParser{toks: toks}
	if !p.accept("when") {
		return scriptRule{}, fmt.Errorf("rule must start with 'when'")
	}
	expr, err := p.parseOr()
	if err != nil {
		return scriptRule{}, err
	}
	if !p.accept("then") {
		return scriptRule{}, fmt.Errorf("expected 'then' after expression")
	}
	act, err := p.parseAction()
	if err != nil {
		return scriptRule{}, err
	}
	if p.pos != len(p.toks) {
		return scriptRule{}, fmt.Errorf("trailing tokens after action")
	}
	return scriptRule{expr: expr, action: act}, nil
}

// tokenize splits on whitespace, keeping quoted strings and
// parentheses as single tokens.
func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unterminated string")
			}
			toks = append(toks, s[i:j+1])
			i = j + 1
		default:
			j := i
			for j < len(s) && s[j] != ' ' && s[j] != '\t' && s[j] != '(' && s[j] != ')' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks, nil
}

type scriptParser struct {
	toks []string
	pos  int
}

func (p *scriptParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *scriptParser) accept(tok string) bool {
	if p.peek() == tok {
		p.pos++
		return true
	}
	return false
}

func (p *scriptParser) parseOr() (scriptExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = exprOr{l, r}
	}
	return l, nil
}

func (p *scriptParser) parseAnd() (scriptExpr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept("and") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = exprAnd{l, r}
	}
	return l, nil
}

var validFields = map[string]bool{
	"proto": true, "sport": true, "dport": true, "src": true,
	"dst": true, "host": true, "path": true, "payload": true,
}

var validOps = map[string]bool{"==": true, "!=": true, "contains": true, "startswith": true}

func (p *scriptParser) parseUnary() (scriptExpr, error) {
	if p.accept("not") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return exprNot{e}, nil
	}
	if p.accept("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, fmt.Errorf("missing ')'")
		}
		return e, nil
	}
	field := p.peek()
	if !validFields[field] {
		return nil, fmt.Errorf("unknown field %q", field)
	}
	p.pos++
	op := p.peek()
	if !validOps[op] {
		return nil, fmt.Errorf("unknown operator %q", op)
	}
	p.pos++
	val := p.peek()
	if val == "" {
		return nil, fmt.Errorf("missing value after %s %s", field, op)
	}
	p.pos++
	val = strings.Trim(val, `"`)
	return exprCmp{field: field, op: op, value: val}, nil
}

func (p *scriptParser) parseAction() (scriptAction, error) {
	switch {
	case p.accept("pass"):
		return scriptAction{kind: "pass"}, nil
	case p.accept("drop"):
		return scriptAction{kind: "drop"}, nil
	case p.accept("alert"):
		msg := strings.Trim(p.peek(), `"`)
		if msg == "" {
			return scriptAction{}, fmt.Errorf("alert requires a message")
		}
		p.pos++
		return scriptAction{kind: "alert", alert: msg}, nil
	}
	return scriptAction{}, fmt.Errorf("unknown action %q", p.peek())
}

// Name implements middlebox.Box.
func (s *ScriptBox) Name() string { return "user-script" }

// Process implements middlebox.Box: first matching rule decides.
func (s *ScriptBox) Process(ctx *middlebox.Context, data []byte) ([]byte, middlebox.Verdict, error) {
	f := extractScriptFields(data)
	for _, r := range s.rules {
		if !r.expr.eval(f) {
			continue
		}
		s.Matched++
		switch r.action.kind {
		case "drop":
			return nil, middlebox.VerdictDrop, nil
		case "alert":
			ctx.Alert("script", r.action.alert)
			return data, middlebox.VerdictPass, nil
		default:
			return data, middlebox.VerdictPass, nil
		}
	}
	return data, middlebox.VerdictPass, nil
}

func extractScriptFields(data []byte) *scriptFields {
	p := packet.Decode(data, packet.LayerTypeIPv4)
	f := &scriptFields{}
	if ip := p.IPv4(); ip != nil {
		f.src, f.dst = ip.Src.String(), ip.Dst.String()
		switch ip.Protocol {
		case packet.IPProtoTCP:
			f.proto = "tcp"
		case packet.IPProtoUDP:
			f.proto = "udp"
		}
	}
	if t := p.TCP(); t != nil {
		f.sport, f.dport = int(t.SrcPort), int(t.DstPort)
	} else if u := p.UDP(); u != nil {
		f.sport, f.dport = int(u.SrcPort), int(u.DstPort)
	}
	if h := p.HTTP(); h != nil {
		f.host, f.path = h.Host(), h.Path
		f.payload = string(h.Body)
	} else {
		f.payload = string(p.ApplicationPayload())
	}
	if f.host == "" {
		f.host = hostOf(data)
	}
	return f
}
