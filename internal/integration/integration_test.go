package integration

import (
	"bytes"
	"testing"
	"time"

	"pvn/internal/auditor"
	"pvn/internal/core"
	"pvn/internal/discovery"
	"pvn/internal/netsim"
	"pvn/internal/openflow"
	"pvn/internal/packet"
	"pvn/internal/pki"
	"pvn/internal/pvnc"
	"pvn/internal/tcpflow"
	"pvn/internal/trace"
	"pvn/internal/tunnel"
)

const cfgSrc = `
pvnc integration
owner alice
device 10.0.0.5
middlebox pii pii-detect mode=block secrets=hunter2
chain secure pii
policy 100 match proto=tcp dport=80 via=secure action=forward
policy 90 match proto=tcp dport=993 action=tunnel:cloud
policy 0 match any action=forward
`

// world wires device -- edge(switch) -- {server, cloud} over netsim with
// a PVN deployed on the edge via the full core lifecycle.
type world struct {
	net     *netsim.Network
	device  *RTTCollector
	edge    *SwitchNode
	server  *EchoServer
	cloud   *netsim.Node
	session *core.Session
	network *core.AccessNetwork
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{}
	w.net = netsim.NewNetwork(1)
	deviceNode := w.net.AddNode("device")
	edgeNode := w.net.AddNode("edge")
	serverNode := w.net.AddNode("server")
	w.cloud = w.net.AddNode("cloud")
	// Port layout on edge: 0=device, 1=server, 2=cloud.
	w.net.Connect(deviceNode, edgeNode, netsim.LinkConfig{Latency: 5 * time.Millisecond, BandwidthBps: 100e6})
	w.net.Connect(edgeNode, serverNode, netsim.LinkConfig{Latency: 20 * time.Millisecond, BandwidthBps: 1e9})
	w.net.Connect(edgeNode, w.cloud, netsim.LinkConfig{Latency: 40 * time.Millisecond, BandwidthBps: 500e6})
	w.net.ComputeRoutes()

	// Access network whose clock IS the simulation clock.
	vendorKey, _ := pki.GenerateKey(pki.NewDeterministicRand(9))
	vendor := pki.NewRootCA("Vendor", vendorKey, 0, 1<<40)
	network, err := core.NewStandardNetwork(core.NetworkConfig{
		Name: "edge-isp",
		Provider: &discovery.ProviderPolicy{
			Provider: "edge-isp", DeployServer: "edge",
			Standards: []string{discovery.StandardMatchAction, discovery.StandardMiddlebox},
			Supported: map[string]int64{"pii-detect": 0},
		},
		Now:    w.net.Clock.Now,
		Vendor: vendor, VendorSeed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.network = network

	cfg, err := pvnc.Parse(cfgSrc)
	if err != nil {
		t.Fatal(err)
	}
	dev := &core.Device{
		ID: "dev1", Addr: packet.MustParseIPv4("10.0.0.5"), Config: cfg,
		BudgetMicro: 100, Strategy: discovery.StrategyReduce,
		Vendors: pki.NewTrustStore(vendor.Cert),
	}
	session, err := core.Connect(dev, []*core.AccessNetwork{network})
	if err != nil {
		t.Fatal(err)
	}
	if session.Mode != core.ModeInNetwork {
		t.Fatalf("mode %v", session.Mode)
	}
	w.session = session

	// Wire the deployed switch onto the edge node, with a tunnel table
	// for the cloud endpoint.
	w.edge = Attach(edgeNode, network.Server.Switch)
	w.edge.Tunnels = tunnel.NewTable(packet.MustParseIPv4("10.0.99.1"))
	w.edge.Tunnels.Add(&tunnel.Endpoint{Name: "cloud", Addr: packet.MustParseIPv4("198.51.100.50"), Trusted: true})

	w.server = AttachEcho(serverNode, 2000)
	w.device = AttachCollector(deviceNode)

	// Boot the middleboxes before traffic flows.
	w.net.Clock.RunFor(session.ReadyAt() + time.Millisecond)
	return w
}

func (w *world) httpReq(t *testing.T, sport uint16, body string) []byte {
	t.Helper()
	pkt, err := trace.HTTPRequestPacket(packet.MustParseIPv4("10.0.0.5"), packet.MustParseIPv4("93.184.216.34"), sport, "api.example", "/p", body)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func TestEndToEndRoundTripThroughPVN(t *testing.T) {
	w := newWorld(t)

	for i := 0; i < 10; i++ {
		w.device.Send(w.httpReq(t, uint16(41000+i), "clean request"), uint64(i))
	}
	w.net.Clock.Run()

	if w.device.Received != 10 {
		t.Fatalf("received %d responses, want 10", w.device.Received)
	}
	if w.server.Seen != 10 {
		t.Fatalf("server saw %d requests", w.server.Seen)
	}
	// Path RTT = 2*(5+20)ms plus serialization and middlebox delay.
	mean := w.device.Dist.Mean()
	if mean < 50 || mean > 60 {
		t.Fatalf("mean RTT %.2f ms, want ~50-55", mean)
	}
}

func TestEndToEndLeakBlockedInFlight(t *testing.T) {
	w := newWorld(t)
	w.device.Send(w.httpReq(t, 42000, "password=hunter2"), 1)
	w.device.Send(w.httpReq(t, 42001, "all good"), 2)
	w.net.Clock.Run()

	if w.server.Seen != 1 {
		t.Fatalf("server saw %d requests, want 1 (leak blocked at edge)", w.server.Seen)
	}
	if w.device.Received != 1 {
		t.Fatalf("device got %d responses, want 1", w.device.Received)
	}
	if bytes.Contains(w.server.LastPayload, []byte("hunter2")) {
		t.Fatal("secret reached the server")
	}
	if len(w.session.Alerts()) == 0 {
		t.Fatal("no alert for the blocked leak")
	}
	if w.edge.Dropped != 1 {
		t.Fatalf("edge dropped %d, want 1", w.edge.Dropped)
	}
}

func TestEndToEndTunnelPolicy(t *testing.T) {
	w := newWorld(t)
	var gotOuter []byte
	w.cloud.Handler = func(n *netsim.Node, in *netsim.Port, msg *netsim.Message) {
		gotOuter, _ = msg.Payload.([]byte)
	}
	inner := mkTCP(t, 43000, 993, "MAIL")
	w.device.Send(inner, 1)
	w.net.Clock.Run()

	if gotOuter == nil {
		t.Fatal("cloud host never received the tunneled packet")
	}
	got, _, err := tunnel.Decap(gotOuter)
	if err != nil {
		t.Fatalf("decap: %v", err)
	}
	if !bytes.Equal(got, inner) {
		t.Fatal("inner packet corrupted through tunnel")
	}
	if w.server.Seen != 0 {
		t.Fatal("tunneled flow leaked to the direct path")
	}
}

func mkTCP(t *testing.T, sport, dport uint16, payload string) []byte {
	t.Helper()
	ip := &packet.IPv4{Src: packet.MustParseIPv4("10.0.0.5"), Dst: packet.MustParseIPv4("93.184.216.34"), Protocol: packet.IPProtoTCP}
	tcp := &packet.TCP{SrcPort: sport, DstPort: dport}
	tcp.SetNetworkLayerForChecksum(ip)
	data, err := packet.SerializeToBytes(ip, tcp, packet.Payload(payload))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestAuditorDetectsRealShapingSwitch runs differentiation probes
// through a data plane that actually cheats: the ISP silently installed
// a meter on one destination prefix (cookie 0, invisible to the user's
// manifest). The auditor's rank-sum test over measured per-packet
// delays must flag it, and an honest switch must not be flagged.
func TestAuditorDetectsRealShapingSwitch(t *testing.T) {
	run := func(cheat bool) auditor.DifferentiationResult {
		now := time.Duration(0)
		sw := openflow.NewSwitch("isp-edge", func() time.Duration { return now })
		videoPrefix := packet.MustParseIPv4("203.0.113.0")
		if cheat {
			sw.AddMeter("sneaky", &openflow.Meter{RateBps: 1.5e6, BurstBytes: 4 << 10})
			sw.Table.Install(&openflow.FlowEntry{
				Priority: 1000,
				Match:    openflow.Match{Fields: openflow.FieldDstIP, DstIP: videoPrefix, DstBits: 24},
				Actions:  []openflow.Action{openflow.Metered("sneaky"), openflow.Output(1)},
			}, 0)
		}
		sw.Table.Install(&openflow.FlowEntry{Priority: 1, Actions: []openflow.Action{openflow.Output(1)}}, 0)

		// Probe: send 1200-byte packets to a control and a suspect
		// destination; throughput sample = bytes / (interval + delay).
		probe := func(dst packet.IPv4Address, sport uint16) float64 {
			ip := &packet.IPv4{Src: packet.MustParseIPv4("10.0.0.5"), Dst: dst, Protocol: packet.IPProtoTCP}
			tcp := &packet.TCP{SrcPort: sport, DstPort: 8080}
			tcp.SetNetworkLayerForChecksum(ip)
			payload := make(packet.Payload, 1200)
			data, _ := packet.SerializeToBytes(ip, tcp, payload)
			const interval = time.Millisecond
			var total time.Duration
			const n = 50
			for i := 0; i < n; i++ {
				d := sw.Process(data, 0)
				total += interval + d.Delay
				now += interval
			}
			return float64(n*len(data)*8) / total.Seconds()
		}
		var control, test []float64
		for i := 0; i < 20; i++ {
			control = append(control, probe(packet.MustParseIPv4("198.51.100.7"), uint16(5000+i)))
			test = append(test, probe(packet.MustParseIPv4("203.0.113.9"), uint16(6000+i)))
		}
		return auditor.DifferentiationTest(control, test)
	}

	if res := run(true); !res.Detected {
		t.Fatalf("real shaping not detected: %+v", res)
	}
	if res := run(false); res.Detected {
		t.Fatalf("honest switch flagged: %+v", res)
	}
}

// TestRealTCPThroughDeployedShaper is the capstone integration: a real
// packet-level TCP transfer crosses the deployed PVN edge switch whose
// user-configured meter shapes it to 1.5 Mbps. The measured goodput must
// land near the configured rate — the whole stack (PVNC compile → flow
// rules → meter → netsim links → TCP dynamics) agreeing with the E4
// story.
func TestRealTCPThroughDeployedShaper(t *testing.T) {
	const shapedCfg = `
pvnc shaped
owner alice
device 10.0.0.5
policy 100 match proto=tcp dport=80 rate=1.5mbps action=forward
policy 0 match any action=forward
`
	net := netsim.NewNetwork(21)
	cn := net.AddNode("client")
	en := net.AddNode("edge")
	sn := net.AddNode("server")
	// Fast links: the meter, not the wire, must be the bottleneck.
	net.Connect(cn, en, netsim.LinkConfig{Latency: 5 * time.Millisecond, BandwidthBps: 1e8, QueueBytes: 4 << 20})
	net.Connect(en, sn, netsim.LinkConfig{Latency: 5 * time.Millisecond, BandwidthBps: 1e8, QueueBytes: 4 << 20})

	vendorKey, _ := pki.GenerateKey(pki.NewDeterministicRand(22))
	vendor := pki.NewRootCA("V", vendorKey, 0, 1<<40)
	network, err := core.NewStandardNetwork(core.NetworkConfig{
		Name: "shaper-isp",
		Provider: &discovery.ProviderPolicy{
			Provider: "shaper-isp", DeployServer: "edge",
			Standards: []string{discovery.StandardMatchAction, discovery.StandardMiddlebox},
			Supported: map[string]int64{},
		},
		Now:    net.Clock.Now,
		Vendor: vendor, VendorSeed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := pvnc.Parse(shapedCfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := &core.Device{
		ID: "dev1", Addr: packet.MustParseIPv4("10.0.0.5"), Config: cfg,
		BudgetMicro: 0, Strategy: discovery.StrategyStrict,
		Vendors: pki.NewTrustStore(vendor.Cert),
	}
	session, err := core.Connect(dev, []*core.AccessNetwork{network})
	if err != nil || session.Mode != core.ModeInNetwork {
		t.Fatalf("connect: %v mode=%v", err, session.Mode)
	}
	Attach(en, network.Server.Switch)

	// Real TCP endpoints on both sides of the PVN.
	client := tcpflow.NewStack(cn, packet.MustParseIPv4("10.0.0.5"), tcpflow.Config{})
	server := tcpflow.NewStack(sn, packet.MustParseIPv4("93.184.216.34"), tcpflow.Config{})
	var done time.Duration = -1
	var got int64
	server.Listen(80, func(c *tcpflow.Conn) {
		c.OnData = func(b []byte) { got += int64(len(b)) }
		c.OnClose = func() { done = net.Clock.Now() }
	})
	const nBytes = 1_500_000
	conn, err := client.Dial(packet.Endpoint{Addr: packet.MustParseIPv4("93.184.216.34"), Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() {
		conn.Write(make([]byte, nBytes))
		conn.Close()
	}
	net.Clock.RunUntil(5 * time.Minute)
	if done < 0 {
		t.Fatalf("shaped transfer never completed (got %d bytes, retx=%d timeouts=%d)", got, conn.Retransmits, conn.Timeouts)
	}
	if got != nBytes {
		t.Fatalf("received %d bytes, want %d", got, nBytes)
	}
	goodput := float64(nBytes*8) / done.Seconds()
	// The configured 1.5 Mbps meter must bound goodput; TCP should still
	// achieve a decent share of it.
	if goodput > 1.65e6 {
		t.Fatalf("goodput %.0f bps beats the 1.5 Mbps shaper", goodput)
	}
	if goodput < 0.8e6 {
		t.Fatalf("goodput %.0f bps far below the shaped rate", goodput)
	}
	t.Logf("shaped goodput %.2f Mbps over %.1fs", goodput/1e6, done.Seconds())
}
