// Package integration glues the PVN data plane into the network
// simulator: a netsim node that hosts an edge switch, forwarding packets
// between the device side and the upstream side according to switch
// verdicts — including middlebox delays, meter shaping and tunnel
// encapsulation. The integration tests drive full device↔server
// round trips through a deployed PVN over simulated links, and run the
// auditor's probes against a data plane that really cheats.
package integration

import (
	"time"

	"pvn/internal/netsim"
	"pvn/internal/openflow"
	"pvn/internal/packet"
	"pvn/internal/tunnel"
)

// SwitchNode hosts an openflow.Switch on a netsim node with a
// conventional port layout: node port 0 faces the device, node port 1
// faces upstream, node port 2 (optional) faces the tunnel host.
type SwitchNode struct {
	Node   *netsim.Node
	Switch *openflow.Switch
	// Tunnels wraps packets for VerdictTunnel; nil drops them.
	Tunnels *tunnel.Table
	// TunnelPort is the node port toward tunnel endpoints.
	TunnelPort int

	// Dropped counts packets the data plane discarded.
	Dropped int64
}

// Attach installs the forwarding handler. The switch's port numbering
// must match the node's: switch output port == node port index.
func Attach(n *netsim.Node, sw *openflow.Switch) *SwitchNode {
	sn := &SwitchNode{Node: n, Switch: sw, TunnelPort: 2}
	n.Handler = sn.handle
	return sn
}

func (sn *SwitchNode) handle(n *netsim.Node, in *netsim.Port, msg *netsim.Message) {
	data, ok := msg.Payload.([]byte)
	if !ok {
		return
	}
	inPort := uint16(0)
	if in != nil {
		inPort = uint16(in.Index())
	}
	d := sn.Switch.Process(data, inPort)
	clock := n.Network().Clock

	forward := func(portIdx int, payload []byte) {
		p := n.Port(portIdx)
		if p == nil {
			sn.Dropped++
			return
		}
		out := &netsim.Message{
			Size: len(payload), Payload: payload,
			Src: msg.Src, Dst: msg.Dst, TraceID: msg.TraceID,
			SentAt: msg.SentAt, Hops: msg.Hops,
		}
		if d.Delay > 0 {
			clock.Schedule(d.Delay, func() { p.Send(out) })
		} else {
			p.Send(out)
		}
	}

	switch d.Verdict {
	case openflow.VerdictOutput:
		forward(int(d.Port), d.Data)
	case openflow.VerdictTunnel:
		if sn.Tunnels == nil {
			sn.Dropped++
			return
		}
		outer, _, err := sn.Tunnels.Wrap(d.TunnelName, d.Data)
		if err != nil {
			sn.Dropped++
			return
		}
		forward(sn.TunnelPort, outer)
	default:
		sn.Dropped++
	}
}

// EchoServer answers every IPv4/TCP packet by swapping addresses/ports
// and echoing a response body of respBytes, modelling an application
// server on a netsim node.
type EchoServer struct {
	Node      *netsim.Node
	RespBytes int
	// Seen counts requests.
	Seen int64
	// LastPayload keeps the most recent request's TCP payload for
	// content-integrity assertions.
	LastPayload []byte
}

// AttachEcho installs the echo handler on a node.
func AttachEcho(n *netsim.Node, respBytes int) *EchoServer {
	es := &EchoServer{Node: n, RespBytes: respBytes}
	n.Handler = es.handle
	return es
}

func (es *EchoServer) handle(n *netsim.Node, in *netsim.Port, msg *netsim.Message) {
	data, ok := msg.Payload.([]byte)
	if !ok || in == nil {
		return
	}
	p := packet.Decode(data, packet.LayerTypeIPv4)
	ip := p.IPv4()
	t := p.TCP()
	if ip == nil || t == nil {
		return
	}
	es.Seen++
	es.LastPayload = append(es.LastPayload[:0], t.LayerPayload()...)

	body := make([]byte, es.RespBytes)
	for i := range body {
		body[i] = 'R'
	}
	nip := &packet.IPv4{Src: ip.Dst, Dst: ip.Src, Protocol: packet.IPProtoTCP}
	nt := &packet.TCP{SrcPort: t.DstPort, DstPort: t.SrcPort, Flags: packet.TCPAck}
	nt.SetNetworkLayerForChecksum(nip)
	resp, err := packet.SerializeToBytes(nip, nt, packet.Payload(body))
	if err != nil {
		return
	}
	in.Send(&netsim.Message{Size: len(resp), Payload: resp, Src: n.ID, Dst: msg.Src, TraceID: msg.TraceID})
}

// RTTCollector records request→response latency per trace ID at a
// device node.
type RTTCollector struct {
	Node *netsim.Node
	Dist *netsim.Dist

	sent map[uint64]time.Duration
	// Received counts responses.
	Received int64
	// LastData keeps the last response packet bytes.
	LastData []byte
}

// AttachCollector installs the response handler on the device node.
func AttachCollector(n *netsim.Node) *RTTCollector {
	rc := &RTTCollector{Node: n, Dist: &netsim.Dist{}, sent: make(map[uint64]time.Duration)}
	n.Handler = func(node *netsim.Node, in *netsim.Port, msg *netsim.Message) {
		if data, ok := msg.Payload.([]byte); ok {
			rc.LastData = data
		}
		if t0, ok := rc.sent[msg.TraceID]; ok {
			rc.Dist.AddDuration(node.Network().Clock.Now() - t0)
			rc.Received++
		}
	}
	return rc
}

// Send transmits a raw packet from the device with RTT tracking.
func (rc *RTTCollector) Send(data []byte, traceID uint64) {
	rc.sent[traceID] = rc.Node.Network().Clock.Now()
	rc.Node.Port(0).Send(&netsim.Message{Size: len(data), Payload: data, Src: rc.Node.ID, TraceID: traceID})
}
