package scenario

import (
	"fmt"
	"time"

	"pvn/internal/auditor"
	"pvn/internal/billing"
	"pvn/internal/core"
	"pvn/internal/dataplane"
	"pvn/internal/discovery"
	"pvn/internal/netsim"
	"pvn/internal/openflow"
	"pvn/internal/orchestrator"
	"pvn/internal/overlay"
	"pvn/internal/packet"
	"pvn/internal/pki"
	"pvn/internal/pvnc"
	"pvn/internal/store"
	"pvn/internal/trace"
	"pvn/internal/tunnel"
)

// World is the assembled system under test: access networks with lossy
// control channels, a device population attached through package core,
// the sharded dataplane pumping synthetic background traffic, and
// (optionally) a discovery overlay riding the same simulated clock.
type World struct {
	Clock *netsim.Clock
	Nets  []*core.AccessNetwork
	Devs  []*device
	// Ledger is shared by every device: redirection and violation
	// evidence from all of them lands here, which is what the
	// ledger-complete invariant audits.
	Ledger *auditor.Ledger
	Pipe   *dataplane.Pipeline
	Over   *overlayWorld // nil when Config.OverlayNodes == 0
	// Cluster is an optional fleet control plane riding the same clock
	// (Engine.AttachCluster); when set, the placement-book invariant
	// joins every quiet-point check.
	Cluster *orchestrator.Cluster

	netIdx  map[*core.AccessNetwork]int
	devByID map[string]*device
	// pumpFrames cycle through the dataplane every heartbeat.
	pumpFrames [][]byte
}

// device is one simulated device plus the harness's exact accounting
// for it. Exactly one of sess/hand is active: hand is non-nil while a
// make-before-break handover is draining.
type device struct {
	idx      int
	id       string
	addr     packet.IPv4Address
	dev      *core.Device
	campaign bool
	flap     bool
	tmpl     []byte // heartbeat packet (constant flow)

	sess *core.Session
	hand *core.Handover
	// busy marks a device owned by an in-flight episode (handover,
	// flap, detach gap) so the composer does not stack ops on it.
	busy bool
	// repairPending marks a scheduled reconnect after the device
	// noticed its deployment vanished (sweep or provider crash).
	repairPending bool
	probing       bool
	// muteUntil: the device has "gone dark" and skips lease renewals
	// until this instant — long enough for the lease to lapse.
	muteUntil time.Duration

	// Invoice-drift ledger (bytes; the tariff makes 1 byte == 1 micro):
	// billable counts every byte a matched in-network flow rule
	// metered; invoiced counts traffic micro from invoices received;
	// forfeited counts usage lost to lease sweeps and provider crashes.
	billable, invoiced, forfeited int64

	sent, served, lost, corrupts int64
	lastServed, lastBeat         time.Duration
	maxGap                       time.Duration
	blackoutReported             bool

	// Flap extras: per-endpoint path injectors and the prober.
	paths  map[string]*netsim.FaultInjector
	prober *tunnel.Prober
}

// proc runs one packet through whatever currently serves the device.
func (d *device) proc(data []byte, inPort uint16) (openflow.Disposition, error) {
	if d.hand != nil {
		return d.hand.Process(data, inPort)
	}
	return d.sess.Process(data, inPort)
}

// attachments lists the live sessions whose usage the device still owes
// for (one, or two mid-handover on distinct deployments).
func (d *device) attachments() []*core.Session {
	if d.hand != nil {
		out := []*core.Session{d.hand.Old}
		if !d.hand.SameDeployment() {
			out = append(out, d.hand.New)
		}
		return out
	}
	if d.sess != nil {
		return []*core.Session{d.sess}
	}
	return nil
}

// overlayWorld is the optional discovery overlay: a dual-star topology
// whose network clock IS the world clock, a published module manifest,
// and a designated device-side node that fetches it.
type overlayWorld struct {
	nodes   []*overlay.Node
	hubs    [2]*netsim.Node
	devNode *overlay.Node
	// colluding are node indexes acting for the adversarial provider
	// (their stored replicas get tampered during campaigns).
	colluding []int
	pub       pki.KeyPair
	// evil signs tampered replicas during campaigns.
	evil   pki.KeyPair
	module *store.Module
	modKey overlay.ID
}

// pvncFor renders the device's PVN configuration. Campaign devices
// carry the colluding provider's fault middlebox in their chain — its
// panics and corruption then ride every deployment of that config.
func pvncFor(d *device, faultySeed uint64) string {
	if d.campaign {
		return fmt.Sprintf(`
pvnc soak-adv-%s
owner owner-%s
device %s
middlebox fb faulty seed=%d corrupt-every=7 panic-every=50 fail=open
chain adv fb
policy 10 match proto=tcp dport=80 via=adv action=forward
policy 0 match any action=forward
`, d.id, d.id, d.addr, faultySeed)
	}
	return fmt.Sprintf(`
pvnc soak-%s
owner owner-%s
device %s
middlebox prox tcp-proxy
chain fast prox
policy 10 match proto=tcp dport=80 via=fast action=forward
policy 0 match any action=forward
`, d.id, d.id, d.addr)
}

// supportedModules is what every provider quotes; prices are fixed so
// module charges subtract exactly out of invoices.
var supportedModules = map[string]int64{"tcp-proxy": 40, "faulty": 25}

// buildWorld assembles the system. rng draws are forked per subsystem
// so op scheduling, control-channel faults and overlay identities stay
// independent and reproducible.
func buildWorld(cfg Config, rng *netsim.RNG) *World {
	w := &World{
		netIdx:  make(map[*core.AccessNetwork]int),
		devByID: make(map[string]*device),
		Ledger:  auditor.NewLedger(),
	}

	// Overlay first: its topology owns the clock everything else rides.
	if cfg.OverlayNodes > 0 {
		link := netsim.LinkConfig{Latency: 5 * time.Millisecond, BandwidthBps: 100e6}
		bridge := netsim.LinkConfig{Latency: 10 * time.Millisecond, BandwidthBps: 1e9}
		nA := cfg.OverlayNodes / 2
		net, hubs, leaves := netsim.NewDualStarTopology(cfg.Seed, nA, cfg.OverlayNodes-nA, link, bridge)
		w.Clock = net.Clock
		ow := &overlayWorld{hubs: hubs}
		for _, side := range leaves {
			for _, leaf := range side {
				kp, err := pki.GenerateKey(pki.NewDeterministicRand(cfg.Seed<<20 + uint64(len(ow.nodes)) + 1))
				if err != nil {
					panic("scenario: keygen: " + err.Error())
				}
				ow.nodes = append(ow.nodes, overlay.NewNode(leaf, kp, overlay.Config{}))
			}
		}
		for i := 1; i < len(ow.nodes); i++ {
			i := i
			w.Clock.Schedule(time.Duration(i)*20*time.Millisecond, func() {
				ow.nodes[i].Join(ow.nodes[0].Self(), nil)
			})
		}
		w.Clock.Run() // joins settle before simulated time zero matters

		// A registered publisher ships one module; the colluding
		// provider's replicas are the B-side tail.
		ow.pub, _ = pki.GenerateKey(pki.NewDeterministicRand(cfg.Seed<<20 + 900004))
		ow.evil, _ = pki.GenerateKey(pki.NewDeterministicRand(cfg.Seed<<20 + 900005))
		ow.module = &store.Module{
			Name: "acme/tracker-radar", Version: "2.0", Publisher: "acme",
			Type: "tracker-block", Config: map[string]string{"list": "ads.example"},
		}
		ow.module.Sign(ow.pub.Private)
		ow.modKey = overlay.ModuleKey(ow.module)
		ow.nodes[1].Put(overlay.NewModuleRecord(ow.module, ow.pub, 1), nil)
		w.Clock.Run()
		ow.devNode = ow.nodes[len(ow.nodes)-1]
		for i := len(ow.nodes) * 3 / 4; i < len(ow.nodes)-1; i++ {
			ow.colluding = append(ow.colluding, i)
		}
		w.Over = ow
	} else {
		w.Clock = &netsim.Clock{}
	}
	now := func() time.Duration { return w.Clock.Now() }

	// Access networks. Every control channel gets its own forked fault
	// injector: storms script outage windows onto them mid-run.
	faultRNG := rng.Fork()
	for i := 0; i < cfg.Networks; i++ {
		name := fmt.Sprintf("isp-%c", 'a'+i)
		n, err := core.NewStandardNetwork(core.NetworkConfig{
			Name: name,
			Provider: &discovery.ProviderPolicy{
				Provider: name, DeployServer: "d" + name,
				Standards: []string{discovery.StandardMatchAction, discovery.StandardMiddlebox},
				Supported: supportedModules,
			},
			Now: now,
			// 1<<20 per MB prices traffic at exactly 1 micro per byte:
			// invoices expose metered bytes, which is what makes the
			// invoice-drift invariant an equality instead of a bound.
			Tariff: billing.Tariff{PerModuleMicro: supportedModules, PerMBMicro: 1 << 20},
		})
		if err != nil {
			panic(fmt.Sprintf("scenario: network %s: %v", name, err))
		}
		n.Faults = netsim.NewFaultInjector(netsim.FaultConfig{DropRate: 0.02}, faultRNG.Fork())
		n.Server.LeaseTTL = cfg.LeaseTTL
		w.netIdx[n] = i
		w.Nets = append(w.Nets, n)
	}

	// Devices. The first CampaignDevices carry the faulty chain, the
	// next FlapDevices are multihomed with probed tunnel endpoints.
	dst := packet.MustParseIPv4("93.184.216.34")
	for i := 0; i < cfg.Devices; i++ {
		d := &device{
			idx:      i,
			id:       fmt.Sprintf("dev%02d", i),
			addr:     packet.MustParseIPv4(fmt.Sprintf("10.19.%d.%d", 1+i/200, 1+i%200)),
			campaign: i < cfg.CampaignDevices,
			flap:     i >= cfg.CampaignDevices && i < cfg.CampaignDevices+cfg.FlapDevices,
		}
		pcfg, err := pvnc.Parse(pvncFor(d, cfg.Seed+uint64(i)))
		if err != nil {
			panic(fmt.Sprintf("scenario: pvnc %s: %v", d.id, err))
		}
		d.dev = &core.Device{
			ID: d.id, Addr: d.addr, Config: pcfg,
			BudgetMicro: 10_000, Strategy: discovery.StrategyReduce,
			Ledger: w.Ledger,
		}
		if d.flap {
			tbl := tunnel.NewTable(d.addr)
			tbl.Health = tunnel.HealthConfig{
				Window: 8, DownThreshold: 2,
				ProbeInterval: 2 * time.Second, ProbeTimeout: 4 * time.Second,
				RetryBackoff: 8 * time.Second, RetryBackoffMax: 16 * time.Second,
				ProbationProbes: 1,
			}
			cloud, home := "cloud-"+d.id, "home-"+d.id
			tbl.Add(&tunnel.Endpoint{Name: cloud, Addr: packet.MustParseIPv4("198.51.100.50"),
				ExtraRTT: 2 * time.Millisecond, Trusted: true})
			tbl.Add(&tunnel.Endpoint{Name: home, Addr: packet.MustParseIPv4("203.0.113.80"),
				ExtraRTT: 5 * time.Millisecond, Trusted: true})
			tbl.OnFailover = func(f packet.Flow, from, to string) {
				w.Ledger.RecordRedirection(auditor.Redirection{
					Provider: from, From: "tunnel:" + from, To: "tunnel:" + to,
					Reason: "endpoint down", At: w.Clock.Now(),
				})
			}
			d.paths = map[string]*netsim.FaultInjector{
				cloud: netsim.NewFaultInjector(netsim.FaultConfig{
					DelayMin: 2 * time.Millisecond, DelayMax: 2 * time.Millisecond}, faultRNG.Fork()),
				home: netsim.NewFaultInjector(netsim.FaultConfig{
					DelayMin: 5 * time.Millisecond, DelayMax: 5 * time.Millisecond}, faultRNG.Fork()),
			}
			d.prober = tunnel.NewProber(tbl, w.Clock)
			d.prober.SetPath(cloud, d.paths[cloud])
			d.prober.SetPath(home, d.paths[home])
			d.dev.Tunnels = tbl
		}
		d.tmpl, err = trace.HTTPRequestPacket(d.addr, dst, uint16(40000+i%20000),
			"soak.example", "/beat", "tick")
		if err != nil {
			panic(fmt.Sprintf("scenario: packet %s: %v", d.id, err))
		}
		w.Devs = append(w.Devs, d)
		w.devByID[d.id] = d
	}

	// Initial attachments, before any storm runs. The control channel
	// already drops 2% of hops, so retry until the deployment lands
	// in-network (each retry consumes injector draws deterministically).
	for _, d := range w.Devs {
		home := d.idx % cfg.Networks
		if cfg.InitialNetwork >= 0 {
			home = cfg.InitialNetwork
		}
		for try := 0; ; try++ {
			s, err := core.Connect(d.dev, []*core.AccessNetwork{w.Nets[home]})
			if err == nil && s.Mode == core.ModeInNetwork {
				d.sess = s
				break
			}
			if try >= 50 {
				panic(fmt.Sprintf("scenario: initial connect %s never landed in-network", d.id))
			}
		}
	}

	// Sharded dataplane carrying background traffic under the Block
	// policy (so the drop-accounting invariant demands Dropped == 0).
	// Workers run on real goroutines: Now must be a constant, never the
	// simulated clock (worker reads would race the single-threaded sim).
	w.Pipe = dataplane.New(dataplane.Config{
		Shards: cfg.PipelineShards, QueueDepth: 256, Policy: dataplane.Block,
		Now: func() time.Duration { return 0 },
	})
	w.Pipe.Table().Install(&openflow.FlowEntry{
		Priority: 1, Actions: []openflow.Action{openflow.Output(1)}, Cookie: 9901,
	}, 0)
	for i := 0; i < 32; i++ {
		f, err := trace.HTTPRequestPacket(
			packet.MustParseIPv4(fmt.Sprintf("10.99.0.%d", 1+i)), dst,
			uint16(50000+i), "pump.example", "/bg", "x")
		if err != nil {
			panic(fmt.Sprintf("scenario: pump packet: %v", err))
		}
		w.pumpFrames = append(w.pumpFrames, f)
	}
	w.Pipe.Start()
	return w
}
