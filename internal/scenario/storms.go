package scenario

import (
	"fmt"
	"time"

	"pvn/internal/auditor"
	"pvn/internal/core"
	"pvn/internal/netsim"
	"pvn/internal/overlay"
	"pvn/internal/store"
	"pvn/internal/tunnel"
)

// --- roam storm -----------------------------------------------------

// ScheduleRoamStorm evacuates the whole device population off whatever
// network each device is on, at jittered instants inside
// [from, from+window) — the stadium/train scenario. Each roam is
// make-before-break with retries, so a lossy control channel delays the
// evacuation instead of cancelling it.
func (e *Engine) ScheduleRoamStorm(from, window time.Duration) {
	for _, d := range e.W.Devs {
		d := d
		at := from + time.Duration(e.stormRNG.Float64()*float64(window))
		target := e.stormRNG.Intn(len(e.W.Nets))
		e.W.Clock.At(at, func() {
			cur := e.curNetIdx(d)
			t := target
			if t == cur {
				t = (t + 1) % len(e.W.Nets)
			}
			e.beginRoam(d, t, 5)
		})
	}
	e.note("storm", "roam storm scheduled: %d devices in [%v, %v)", len(e.W.Devs), from, from+window)
}

// --- cellular<->WiFi flap -------------------------------------------

// flapSchedule is the episode's internal timeline (offsets from start).
var flapSchedule = struct {
	outA1, outA2, outB  netsim.Outage
	pathCloud, pathHome netsim.Outage
	roams               []time.Duration
	tickEvery           time.Duration
	length              time.Duration
}{
	outA1:     netsim.Outage{From: 10 * time.Second, Until: 50 * time.Second},
	outA2:     netsim.Outage{From: 45 * time.Second, Until: 65 * time.Second}, // overlaps outA1 on the same injector
	outB:      netsim.Outage{From: 12 * time.Second, Until: 70 * time.Second}, // overlaps both across networks
	pathCloud: netsim.Outage{From: 25 * time.Second, Until: 45 * time.Second},
	pathHome:  netsim.Outage{From: 58 * time.Second, Until: 72 * time.Second},
	roams:     []time.Duration{15 * time.Second, 35 * time.Second, 55 * time.Second, 75 * time.Second},
	tickEvery: 5 * time.Second,
	length:    80 * time.Second,
}

// opFlap picks an idle multihomed device and runs one flap episode.
func (e *Engine) opFlap() {
	d := e.pickIdle(func(d *device) bool { return d.flap })
	if d == nil {
		return
	}
	e.FlapEpisode(d.idx)
}

// FlapEpisode runs one cellular<->WiFi flap on the multihomed device
// at devIdx: overlapping control-channel outage windows land on two
// networks (and stack on one of them — live exercise of FaultInjector
// window composition), the device's primary tunnel path crashes while
// a health prober drives failover, and the device roams back and forth
// four times through the storm.
func (e *Engine) FlapEpisode(devIdx int) {
	d := e.W.Devs[devIdx]
	if !d.flap || d.busy || d.hand != nil || d.sess == nil {
		return
	}
	d.busy = true
	e.flapEpisodes++
	now := e.W.Clock.Now()
	a := e.curNetIdx(d)
	if a < 0 {
		a = 0
	}
	b := (a + 1) % len(e.W.Nets)
	sh := flapSchedule
	shift := func(o netsim.Outage) netsim.Outage {
		return netsim.Outage{From: now + o.From, Until: now + o.Until}
	}
	e.W.Nets[a].Faults.AddOutage(shift(sh.outA1))
	e.W.Nets[a].Faults.AddOutage(shift(sh.outA2))
	e.W.Nets[b].Faults.AddOutage(shift(sh.outB))
	d.paths["cloud-"+d.id].AddOutage(shift(sh.pathCloud))
	d.paths["home-"+d.id].AddOutage(shift(sh.pathHome))

	// A fresh prober per episode: Stop is terminal on a Prober, and the
	// probe ladder should start cold each storm anyway.
	d.prober = tunnel.NewProber(d.dev.Tunnels, e.W.Clock)
	for name, inj := range d.paths {
		d.prober.SetPath(name, inj)
	}
	d.prober.Start()
	d.probing = true

	targets := []int{b, a, b, a}
	for i, dt := range sh.roams {
		t := targets[i]
		e.W.Clock.Schedule(dt, func() { e.flapRoam(d, t) })
	}
	// The flapping user keeps using the network through the storm: extra
	// traffic ticks at a tight cadence pin the beat flow to the primary
	// tunnel path while it is alive, so the path crash exercises a real
	// flow re-pin (failover) rather than a fresh pick.
	for dt := sh.tickEvery; dt < sh.length; dt += sh.tickEvery {
		e.W.Clock.Schedule(dt, func() { e.tick(d) })
	}
	e.W.Clock.Schedule(sh.length, func() {
		if d.probing {
			d.prober.Stop()
			d.probing = false
		}
		d.busy = false
		e.note("flap-end", "%s episode over", d.id)
	})
	e.note("flap", "%s flapping between %s and %s under composed outages",
		d.id, e.W.Nets[a].Name, e.W.Nets[b].Name)
}

// flapRoam is one leg of a flap: an immediate (no-drain) roam. With the
// target's control channel inside an outage window the device lands on
// its tunnel instead — and if the tunnel's primary path is down too,
// the prober's failover carries the beats.
func (e *Engine) flapRoam(d *device, target int) {
	if d.hand != nil || d.sess == nil {
		return
	}
	old := d.sess
	s2, inv, err := core.RoamWith(old, []*core.AccessNetwork{e.W.Nets[target]},
		core.RoamOptions{DrainDeadline: -1})
	d.sess = s2
	if err != nil {
		e.flapFails++
		e.note("flap-roam-fail", "%s -> %s: %v", d.id, e.W.Nets[target].Name, err)
		return
	}
	e.roams++
	e.flapRoams++
	e.noteInvoice(d, old, inv)
	e.note("flap-roam", "%s now on %s (%s)", d.id, s2.Network.Name, s2.Mode)
}

// --- adversarial provider campaign ----------------------------------

// campaignLength bounds one pulse; clearCampaign at the end is
// idempotent so quiesce can force it early.
const campaignLength = 90 * time.Second

// CampaignPulse runs one coordinated adversarial-provider campaign:
// the colluding (last) network cuts its control channel in two
// overlapping windows, its deployed FaultyBoxes keep panicking and
// corrupting campaign devices' traffic (they do that continuously —
// the pulse is when the rest of the collusion lines up), its overlay
// replicas serve tampered module records, and a colluding node gossips
// fabricated violations against every honest provider.
func (e *Engine) CampaignPulse() {
	if e.campaignActive {
		return
	}
	e.campaignActive = true
	e.campaigns++
	now := e.W.Clock.Now()
	col := e.W.Nets[len(e.W.Nets)-1]
	jit := time.Duration(e.stormRNG.Float64() * float64(10*time.Second))
	col.Faults.AddOutage(netsim.Outage{From: now + 5*time.Second + jit, Until: now + 40*time.Second + jit})
	col.Faults.AddOutage(netsim.Outage{From: now + 25*time.Second + jit, Until: now + 70*time.Second + jit})

	if ow := e.W.Over; ow != nil {
		evil := ow.evil
		for _, i := range ow.colluding {
			n := ow.nodes[i]
			n.TamperStored = func(r *overlay.Record) *overlay.Record {
				if r.Kind != overlay.RecordModule {
					return nil
				}
				tm, err := store.DecodeModule(r.Body)
				if err != nil {
					return nil
				}
				tm.Config = map[string]string{"list": "exfil.example"}
				tm.Sign(evil.Private)
				bad := *r
				// Forge a "newer" version so the lookup's per-publisher
				// dedup prefers the tampered copy over honest replicas —
				// the device's re-verification is the only defence left.
				bad.Seq = r.Seq + 1
				bad.Body = tm.Encode()
				bad.PublicKey = evil.Public
				bad.Sign(evil.Private)
				e.tamperServed++
				return &bad
			}
		}
		for _, dt := range []time.Duration{10 * time.Second, 30 * time.Second, 50 * time.Second} {
			e.W.Clock.Schedule(dt, func() { e.opFetch() })
		}
		e.W.Clock.Schedule(20*time.Second, func() { e.gossipLie() })
	}
	e.W.Clock.Schedule(campaignLength, func() { e.clearCampaign() })
	e.note("campaign", "adversarial pulse on %s: overlapping control outages, replica tampering, gossip lies", col.Name)
}

// clearCampaign ends the pulse: tamper hooks come off every colluding
// replica. Idempotent (quiesce forces it, then the scheduled end fires
// again harmlessly).
func (e *Engine) clearCampaign() {
	if ow := e.W.Over; ow != nil {
		for _, i := range ow.colluding {
			ow.nodes[i].TamperStored = nil
		}
	}
	e.campaignActive = false
}

// gossipLie has a colluding overlay node fabricate an auditor ledger
// full of violations against every honest provider and fold it into
// the reputation gossip stream.
func (e *Engine) gossipLie() {
	ow := e.W.Over
	if ow == nil || len(ow.colluding) == 0 {
		return
	}
	led := auditor.NewLedger()
	for _, n := range e.W.Nets[:len(e.W.Nets)-1] {
		for i := 0; i < 5; i++ {
			led.RecordAudit(n.Name)
		}
		for i := 0; i < 4; i++ {
			led.RecordViolation(auditor.Violation{Provider: n.Name, Kind: auditor.ViolationSecurityBypass})
		}
	}
	liar := ow.nodes[ow.colluding[0]]
	liar.Rep().Merge(overlay.FoldLedger(fmt.Sprintf("liar%d", e.gossipLies), led, 1))
	liar.Refresh(nil)
	e.gossipLies++
	e.note("gossip-lie", "colluding node smears %d honest providers", len(e.W.Nets)-1)
}
