package scenario

import (
	"time"

	"pvn/internal/auditor"
	"pvn/internal/core"
	"pvn/internal/dataplane"
	"pvn/internal/orchestrator"
)

// GlobalInvariants — the properties that must hold at every quiet
// point of any composed storm, however the failures interleave:
//
//  1. invoice-drift   billable == invoiced + forfeited + pendingLive
//  2. lease-leak      deployment book <=> switch/runtime resources
//  3. blackout        max unserved gap <= BlackoutBound
//  4. ledger-complete every roam/failover/corruption left evidence
//  5. drop-accounting Enqueued == Processed + Dropped + QueueDepth
//  6. overlay-tamper  no tampered module manifest ever installed
//  7. placement-book  orchestrator book <=> actual host state (only
//     when a cluster is attached, Engine.AttachCluster)
//
// checkAll runs them between events (strict=false) and at quiesce
// (strict=true, which additionally demands zero pending usage and
// empty deployment books).
func (e *Engine) checkAll(strict bool) {
	e.W.Pipe.Drain()
	e.checkDropAccounting()
	e.checkInvoiceDrift(strict)
	e.checkLeaseLeaks(strict)
	e.checkBlackouts()
	e.checkLedgerComplete()
	e.checkOverlayTamper()
	e.checkPlacement()
}

// AttachCluster folds an orchestrator's placement book into the
// engine's quiet-point invariants: from now on, every check reconciles
// the cluster's book against actual host state in both directions
// (ROADMAP: orchestrator-level invariant in the checker).
func (e *Engine) AttachCluster(c *orchestrator.Cluster) { e.W.Cluster = c }

// checkPlacement audits the attached cluster's placement book — every
// placed chain's deployment live on its booked host with the matching
// cookie, every deployment on a live host owned by a booked chain,
// capacity sums exact, and no parked security chain holding a session
// (fail-open). No cluster attached, nothing to check.
func (e *Engine) checkPlacement() {
	if e.W.Cluster == nil {
		return
	}
	for _, v := range e.W.Cluster.BookViolations() {
		e.violate("placement-book", "%s", v)
	}
}

// checkDropAccounting audits the sharded dataplane's PR 7 invariant on
// every shard and in total, and — since the pipeline runs the Block
// policy — demands zero drops. The pipeline was drained first, so
// queue depths are zero and the counts are exact.
func (e *Engine) checkDropAccounting() {
	st := e.W.Pipe.Stats()
	var total dataplane.ShardStats
	for i, sh := range st.Shards {
		if sh.Enqueued != sh.Processed+sh.Dropped+int64(sh.QueueDepth) {
			e.violate("drop-accounting", "shard %d: enqueued %d != processed %d + dropped %d + depth %d",
				i, sh.Enqueued, sh.Processed, sh.Dropped, sh.QueueDepth)
		}
		if sh.Dropped != 0 {
			e.violate("drop-accounting", "shard %d dropped %d packets under the Block policy", i, sh.Dropped)
		}
		total.Enqueued += sh.Enqueued
		total.Processed += sh.Processed
	}
	if total.Enqueued != e.pumped {
		e.violate("drop-accounting", "pipeline enqueued %d of %d submitted", total.Enqueued, e.pumped)
	}
}

// checkInvoiceDrift audits the money: for every device, each byte a
// flow rule metered is either already invoiced, forfeited to a sweep
// or crash, or still pending on a live deployment. The tariff prices
// traffic at exactly 1 micro/byte, so this is integer equality, not a
// tolerance.
func (e *Engine) checkInvoiceDrift(strict bool) {
	for _, d := range e.W.Devs {
		var pending int64
		for _, s := range d.attachments() {
			if s.Mode != core.ModeInNetwork {
				continue
			}
			dep := s.Network.Server.Deployment(d.id)
			if dep == nil || dep.Cookie != s.Cookie {
				continue // stale attachment: its usage was forfeited
			}
			_, b, ok := s.Network.Server.Usage(d.id)
			if ok {
				pending += b
			}
		}
		if strict && pending != 0 {
			e.violate("invoice-drift", "%s: %d bytes still pending after quiesce teardown", d.id, pending)
		}
		if d.billable != d.invoiced+d.forfeited+pending {
			e.violate("invoice-drift", "%s: billable %d != invoiced %d + forfeited %d + pending %d",
				d.id, d.billable, d.invoiced, d.forfeited, pending)
		}
	}
}

// checkLeaseLeaks audits each network's resources against its
// deployment book in both directions: every switch rule, meter,
// runtime chain and middlebox instance must belong to a booked
// deployment (no orphans — a crash that leaked state must have been
// reclaimed), and every booked resource must still exist (nothing
// torn down behind the book's back). At strict quiesce the book
// itself must be empty.
func (e *Engine) checkLeaseLeaks(strict bool) {
	for _, n := range e.W.Nets {
		srv := n.Server
		ids := srv.DeviceIDs()
		if strict && len(ids) != 0 {
			e.violate("lease-leak", "%s: %d deployments still booked after quiesce: %v", n.Name, len(ids), ids)
		}
		bookCookies := map[uint64]string{}
		bookMeters := map[string]string{}
		bookChains := map[string]string{}
		bookInsts := map[string]string{}
		for _, id := range ids {
			dep := srv.Deployment(id)
			if dep == nil {
				continue
			}
			bookCookies[dep.Cookie] = id
			for _, m := range dep.Meters {
				bookMeters[m] = id
			}
			for _, ch := range dep.Chains {
				bookChains[ch] = id
			}
			for _, inst := range dep.InstanceIDs {
				bookInsts[inst] = id
			}
		}

		ruleCount := map[uint64]int{}
		for _, fe := range srv.Switch.Table.Entries() {
			ruleCount[fe.Cookie]++
			if _, ok := bookCookies[fe.Cookie]; !ok {
				e.violate("lease-leak", "%s: orphan flow rule cookie=%d (no booked deployment)", n.Name, fe.Cookie)
			}
		}
		for c, id := range bookCookies {
			if ruleCount[c] == 0 {
				e.violate("lease-leak", "%s: deployment %s (cookie=%d) has no flow rules installed", n.Name, id, c)
			}
		}
		for id := range srv.Switch.Meters {
			if _, ok := bookMeters[id]; !ok {
				e.violate("lease-leak", "%s: orphan meter %s", n.Name, id)
			}
		}
		for m, id := range bookMeters {
			if srv.Switch.Meters[m] == nil {
				e.violate("lease-leak", "%s: deployment %s lost meter %s", n.Name, id, m)
			}
		}
		actualChains := map[string]bool{}
		for _, key := range srv.Runtime.ChainKeys() {
			actualChains[key] = true
			if _, ok := bookChains[key]; !ok {
				e.violate("lease-leak", "%s: orphan chain %s", n.Name, key)
			}
		}
		for ch, id := range bookChains {
			if !actualChains[ch] {
				e.violate("lease-leak", "%s: deployment %s lost chain %s", n.Name, id, ch)
			}
		}
		actualInsts := map[string]bool{}
		for _, inst := range srv.Runtime.InstanceIDs() {
			actualInsts[inst] = true
			if _, ok := bookInsts[inst]; !ok {
				e.violate("lease-leak", "%s: orphan middlebox instance %s", n.Name, inst)
			}
		}
		for inst, id := range bookInsts {
			if !actualInsts[inst] {
				e.violate("lease-leak", "%s: deployment %s lost instance %s", n.Name, id, inst)
			}
		}
	}
}

// checkBlackouts bounds every device's longest unserved gap: detection
// plus repair plus one heartbeat of slack must cover the worst storm
// the composition produced. Reported once per device.
func (e *Engine) checkBlackouts() {
	for _, d := range e.W.Devs {
		gap := d.maxGap
		if d.lastBeat > d.lastServed {
			if g := d.lastBeat - d.lastServed; g > gap {
				gap = g
			}
		}
		if gap > e.cfg.BlackoutBound && !d.blackoutReported {
			d.blackoutReported = true
			e.violate("blackout", "%s unserved for %v (bound %v)", d.id, gap, e.cfg.BlackoutBound)
		}
	}
}

// checkLedgerComplete audits the evidence trail: every successful
// handover left a "roam" redirection, every tunnel failover an
// "endpoint down" redirection, and every detected payload corruption a
// content-modification violation. The ledger is shared, so these are
// exact count equalities.
func (e *Engine) checkLedgerComplete() {
	roamRedirs := int64(0)
	contentMods := int64(0)
	for _, n := range e.W.Nets {
		for _, r := range e.W.Ledger.Redirections(n.Name) {
			if r.Reason == "roam" {
				roamRedirs++
			}
		}
		for _, v := range e.W.Ledger.Violations(n.Name) {
			if v.Kind == auditor.ViolationContentMod {
				contentMods++
			}
		}
	}
	if roamRedirs != e.roams {
		e.violate("ledger-complete", "%d roam redirections recorded for %d completed roams", roamRedirs, e.roams)
	}
	var failovers, failoverRedirs int64
	var corrupts int64
	for _, d := range e.W.Devs {
		corrupts += d.corrupts
		if !d.flap || d.dev.Tunnels == nil {
			continue
		}
		failovers += d.dev.Tunnels.Failovers()
		for _, ep := range []string{"cloud-" + d.id, "home-" + d.id} {
			for _, r := range e.W.Ledger.Redirections(ep) {
				if r.Reason == "endpoint down" {
					failoverRedirs++
				}
			}
		}
	}
	if failovers != failoverRedirs {
		e.violate("ledger-complete", "%d failover redirections recorded for %d tunnel failovers", failoverRedirs, failovers)
	}
	if contentMods != corrupts {
		e.violate("ledger-complete", "%d content-mod violations recorded for %d detected corruptions", contentMods, corrupts)
	}
}

// checkOverlayTamper: signature/content-key re-verification at the
// device must reject every tampered replica — an installed module with
// the campaign's exfiltration marker means the store's verification
// chain has a hole.
func (e *Engine) checkOverlayTamper() {
	if e.evilInstalls > 0 && !e.evilReported {
		e.evilReported = true
		e.violate("overlay-tamper", "%d tampered module manifests were installed (of %d tampered records served)",
			e.evilInstalls, e.tamperServed)
	}
}

// BlackoutBoundFor is the natural bound for a config: one heartbeat to
// notice, the repair delay, a reconnect retry, and one heartbeat to
// confirm — with slack for storms that stack detection windows.
func BlackoutBoundFor(heartbeat, repair time.Duration) time.Duration {
	return 2*heartbeat + repair + 30*time.Second
}
