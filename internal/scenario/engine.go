package scenario

import (
	"bytes"
	"fmt"
	"time"

	"pvn/internal/auditor"
	"pvn/internal/billing"
	"pvn/internal/core"
	"pvn/internal/netsim"
	"pvn/internal/openflow"
	"pvn/internal/overlay"
	"pvn/internal/store"
)

// Engine drives a World through composed failure storms on the
// simulated clock. Everything runs single-threaded inside clock
// callbacks (the only other goroutines are the dataplane's workers,
// which never touch engine state), so one seed reproduces a run
// bit-for-bit.
type Engine struct {
	cfg Config
	W   *World

	// rng composes ops, stormRNG jitters storm timelines, renewRNG
	// decides renewal lapses — separate forks so adding draws to one
	// subsystem does not shift the others.
	rng, stormRNG, renewRNG *netsim.RNG

	started bool
	until   time.Duration

	ops, roams, roamFails              int64
	flapRoams, flapFails, flapEpisodes int64
	crashes, sweeps, detaches          int64
	reconnects, invoiceCount           int64
	campaigns, gossipLies              int64
	fetches, installs, rejects         int64
	evilInstalls, tamperServed         int64
	pumped                             int64

	campaignActive bool
	evilReported   bool
	opsSinceCheck  int

	violations []Violation
	trace      []Event

	weights     []opWeight
	totalWeight int
}

type opWeight struct {
	kind   string
	weight int
}

// quiesceGrace gives in-flight episodes (flap: 80s, campaign: 90s) room
// to finish after the horizon before the strict final check.
const quiesceGrace = 150 * time.Second

// New builds the world and an idle engine over it. Storms start when
// the caller runs Soak (random composition) or schedules scripted
// storms and calls Start/FinishAt.
func New(cfg Config) *Engine {
	if cfg.Networks < 2 || cfg.Devices < 1 {
		panic("scenario: config needs >= 2 networks and >= 1 device")
	}
	root := netsim.NewRNG(cfg.Seed)
	w := buildWorld(cfg, root)
	e := &Engine{
		cfg: cfg, W: w,
		rng: root.Fork(), stormRNG: root.Fork(), renewRNG: root.Fork(),
	}
	weights := cfg.Weights
	if weights == nil {
		weights = defaultWeights
	}
	for _, kind := range opKinds {
		wt := weights[kind]
		if wt <= 0 {
			continue
		}
		switch kind {
		case "flap":
			if cfg.FlapDevices == 0 {
				continue
			}
		case "fetch":
			if cfg.OverlayNodes == 0 {
				continue
			}
		}
		e.weights = append(e.weights, opWeight{kind, wt})
		e.totalWeight += wt
	}
	return e
}

// note appends one trace event, keeping the ring bounded.
func (e *Engine) note(kind, format string, args ...interface{}) {
	if len(e.trace) >= traceCap {
		e.trace = append(e.trace[:0], e.trace[traceCap/2:]...)
	}
	e.trace = append(e.trace, Event{At: e.W.Clock.Now(), Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// violate records an invariant breach (bounded: a genuinely broken
// invariant would otherwise flood every subsequent sweep).
func (e *Engine) violate(invariant, format string, args ...interface{}) {
	if len(e.violations) >= 200 {
		return
	}
	v := Violation{At: e.W.Clock.Now(), Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	e.violations = append(e.violations, v)
	e.note("VIOLATION", "%s: %s", v.Invariant, v.Detail)
}

// Violations returns every invariant breach recorded so far.
func (e *Engine) Violations() []Violation { return e.violations }

// Summary aggregates the run's counters.
func (e *Engine) Summary() Summary {
	s := Summary{
		SimTime: e.W.Clock.Now(), Ops: e.ops,
		Roams: e.roams, RoamFails: e.roamFails + e.flapFails,
		Crashes: e.crashes, Sweeps: e.sweeps, Invoices: e.invoiceCount,
		Fetches: e.fetches, Installs: e.installs, Rejects: e.rejects,
		EvilInstalls: e.evilInstalls, GossipLies: e.gossipLies,
		Violations: len(e.violations),
	}
	for _, d := range e.W.Devs {
		s.Sent += d.sent
		s.Served += d.served
		s.Lost += d.lost
		s.Corrupts += d.corrupts
		if d.flap && d.dev.Tunnels != nil {
			s.Failovers += d.dev.Tunnels.Failovers()
		}
	}
	return s
}

// Start launches the background machinery up to the given horizon:
// heartbeats (measurement traffic plus dataplane pumping) and, with
// leases enabled, the renewal and sweep cadences.
func (e *Engine) Start(until time.Duration) {
	if e.started {
		return
	}
	e.started = true
	e.until = until
	e.W.Clock.At(e.W.Clock.Now()+e.cfg.HeartbeatEvery, func() { e.beatLoop(until) })
	if e.cfg.LeaseTTL > 0 {
		e.W.Clock.At(e.W.Clock.Now()+e.cfg.RenewEvery, func() { e.renewLoop(until) })
		e.W.Clock.At(e.W.Clock.Now()+e.cfg.SweepEvery, func() { e.sweepLoop(until) })
	}
}

func (e *Engine) beatLoop(until time.Duration) {
	e.beat()
	if next := e.W.Clock.Now() + e.cfg.HeartbeatEvery; next <= until {
		e.W.Clock.At(next, func() { e.beatLoop(until) })
	}
}

// beat sends every device's measurement packet(s) and pumps background
// frames through the sharded dataplane.
func (e *Engine) beat() {
	for _, d := range e.W.Devs {
		for i := 0; i < e.cfg.TrafficPerBeat; i++ {
			e.tick(d)
		}
	}
	for i := 0; i < e.cfg.PipelinePerBeat; i++ {
		e.W.Pipe.Submit(e.W.pumpFrames[int(e.pumped)%len(e.W.pumpFrames)], 0)
		e.pumped++
	}
}

// tick pushes one packet through whatever serves the device right now
// and does the harness-side accounting: billable bytes (matched rule),
// corruption detection (campaign chains), blackout bookkeeping, and
// vanished-deployment repair.
func (e *Engine) tick(d *device) {
	now := e.W.Clock.Now()
	d.sent++
	d.lastBeat = now
	serving := d.sess
	if d.hand != nil {
		serving = d.hand.Steer(d.tmpl)
	}
	disp, err := serving.Process(d.tmpl, 0)
	if err == nil && disp.Entry != nil {
		// The switch meters at rule lookup, whatever happens after — a
		// chain that then drops the packet (middlebox still booting, a
		// campaign box panicking) still costs the user those bytes, so
		// the drift ledger must count them billable too.
		d.billable += int64(len(d.tmpl))
	}
	ok := false
	switch {
	case err != nil:
	case disp.Verdict == openflow.VerdictOutput:
		ok = true
		if disp.Entry != nil && d.campaign && !bytes.Equal(disp.Data, d.tmpl) {
			d.corrupts++
			e.W.Ledger.RecordViolation(auditor.Violation{
				Kind: auditor.ViolationContentMod, Provider: serving.Network.Name,
				Detail: "payload modified in chain", At: now,
			})
		}
	case disp.Verdict == openflow.VerdictTunnel:
		inj := d.paths[disp.TunnelName]
		ok = inj == nil || !inj.Down(now)
	case disp.Verdict == openflow.VerdictController:
		// Table miss: the deployment this session believes in is gone
		// (lease swept, or the provider crashed and reclaimed).
		e.maybeRepair(d)
	}
	if ok {
		if gap := now - d.lastServed; gap > d.maxGap {
			d.maxGap = gap
		}
		d.lastServed = now
		d.served++
	} else {
		d.lost++
	}
}

// maybeRepair schedules a reconnect once the device's deployment has
// verifiably vanished. The delay models detection/backoff; the
// blackout invariant bounds the resulting outage.
func (e *Engine) maybeRepair(d *device) {
	if d.hand != nil || d.repairPending || d.sess == nil {
		return
	}
	if d.sess.Mode != core.ModeInNetwork {
		return
	}
	if d.sess.Network.Server.Deployment(d.id) != nil {
		return // deployment still booked: transient, not a vanish
	}
	d.repairPending = true
	e.note("repair", "%s lost its deployment on %s, reconnecting in %v",
		d.id, d.sess.Network.Name, e.cfg.RepairDelay)
	e.W.Clock.Schedule(e.cfg.RepairDelay, func() { e.reconnect(d) })
}

// reconnect re-attaches the device across all networks. A cut control
// channel can leave it bare or tunneled; it keeps retrying until it
// lands in-network again (bare still serves beats — connectivity
// without protection — so this is policy repair, not blackout repair).
func (e *Engine) reconnect(d *device) {
	d.repairPending = false
	if d.hand != nil {
		d.busy = false
		return
	}
	s, err := core.Connect(d.dev, e.W.Nets)
	d.sess = s
	d.busy = false
	e.reconnects++
	if err != nil || s.Mode != core.ModeInNetwork {
		d.repairPending = true
		e.W.Clock.Schedule(30*time.Second, func() { e.reconnect(d) })
		return
	}
	e.note("reconnect", "%s back in-network on %s", d.id, s.Network.Name)
}

func (e *Engine) renewLoop(until time.Duration) {
	now := e.W.Clock.Now()
	for _, d := range e.W.Devs {
		if now < d.muteUntil {
			continue // gone dark: renewals missed until the lease lapses
		}
		if e.renewRNG.Float64() < e.cfg.RenewSkipRate {
			d.muteUntil = now + e.cfg.LeaseTTL + e.cfg.RenewEvery
			e.note("renew-mute", "%s goes dark until %v (lease will lapse)", d.id, d.muteUntil)
			continue
		}
		for _, s := range d.attachments() {
			if s.Mode == core.ModeInNetwork {
				s.Network.Server.Renew(d.id)
			}
		}
	}
	if next := now + e.cfg.RenewEvery; next <= until {
		e.W.Clock.At(next, func() { e.renewLoop(until) })
	}
}

func (e *Engine) sweepLoop(until time.Duration) {
	e.sweepOnce()
	if next := e.W.Clock.Now() + e.cfg.SweepEvery; next <= until {
		e.W.Clock.At(next, func() { e.sweepLoop(until) })
	}
}

// sweepOnce reclaims lapsed leases on every network; the swept usage is
// forfeited (the provider never invoices it), which the invoice-drift
// invariant accounts exactly.
func (e *Engine) sweepOnce() {
	for _, n := range e.W.Nets {
		for _, sl := range n.Server.SweepExpiredDetail() {
			if d := e.W.devByID[sl.DeviceID]; d != nil {
				d.forfeited += sl.Bytes
			}
			e.sweeps++
			e.note("sweep", "%s lease lapsed on %s, %d bytes forfeited", sl.DeviceID, n.Name, sl.Bytes)
		}
	}
}

// noteInvoice credits a teardown/handover invoice to the device's drift
// ledger: the traffic line is exactly 1 micro per byte, so subtracting
// the fixed per-module charges recovers the invoiced byte count.
func (e *Engine) noteInvoice(d *device, s *core.Session, inv *billing.Invoice) {
	if inv == nil {
		return
	}
	var moduleMicro int64
	for _, m := range s.Decision.FinalConfig.Middleboxes {
		moduleMicro += s.Network.Tariff.PerModuleMicro[m.Type]
	}
	d.invoiced += inv.TotalMicro - moduleMicro
	e.invoiceCount++
	e.note("invoice", "%s invoiced %d traffic bytes by %s", d.id, inv.TotalMicro-moduleMicro, s.Network.Name)
}

// FlapDeviceIdxs lists the multihomed devices eligible for FlapEpisode.
func (e *Engine) FlapDeviceIdxs() []int {
	var out []int
	for _, d := range e.W.Devs {
		if d.flap {
			out = append(out, d.idx)
		}
	}
	return out
}

// AttachedCount reports how many devices are currently in-network on
// Nets[netIdx] — scripted storms use it (via a scheduled closure,
// before quiesce tears everything down) to verify an evacuation.
func (e *Engine) AttachedCount(netIdx int) int {
	n := 0
	for _, d := range e.W.Devs {
		for _, s := range d.attachments() {
			if s.Mode == core.ModeInNetwork && e.W.netIdx[s.Network] == netIdx {
				n++
				break
			}
		}
	}
	return n
}

// curNetIdx locates the device's current network (bare and tunneled
// sessions keep their primary network pointer).
func (e *Engine) curNetIdx(d *device) int {
	if d.sess != nil {
		if i, ok := e.W.netIdx[d.sess.Network]; ok {
			return i
		}
	}
	return -1
}

// pickIdle draws up to eight candidates and returns the first device
// not owned by another episode (nil when the population is saturated).
func (e *Engine) pickIdle(pred func(*device) bool) *device {
	for try := 0; try < 8; try++ {
		d := e.W.Devs[e.rng.Intn(len(e.W.Devs))]
		if d.busy || d.repairPending || d.sess == nil || d.hand != nil {
			continue
		}
		if pred == nil || pred(d) {
			return d
		}
	}
	return nil
}

// Soak runs the random composition mode for simTime: background beats
// plus weighted random storms, with the invariant sweep every
// CheckEveryOps events and a strict check at quiesce.
func (e *Engine) Soak(simTime time.Duration) {
	horizon := e.W.Clock.Now() + simTime
	e.Start(horizon)
	for {
		gap := time.Duration(e.rng.Exp(float64(e.cfg.MeanOpInterval)))
		next := e.W.Clock.Now() + gap
		if next >= horizon {
			break
		}
		e.W.Clock.RunUntil(next)
		e.doRandomOp()
		e.ops++
		e.opsSinceCheck++
		if e.opsSinceCheck >= e.cfg.CheckEveryOps {
			e.opsSinceCheck = 0
			e.checkAll(false)
		}
	}
	e.FinishAt(horizon)
}

// FinishAt advances to the horizon and quiesces: pending handovers
// complete, episodes drain, every session is torn down and invoiced,
// the dataplane drains, and the strict invariant check runs.
func (e *Engine) FinishAt(horizon time.Duration) {
	e.W.Clock.RunUntil(horizon)
	e.Quiesce()
}

// doRandomOp draws one weighted storm/churn event.
func (e *Engine) doRandomOp() {
	r := e.rng.Intn(e.totalWeight)
	kind := e.weights[len(e.weights)-1].kind
	for _, w := range e.weights {
		if r < w.weight {
			kind = w.kind
			break
		}
		r -= w.weight
	}
	switch kind {
	case "roam":
		e.opRoam()
	case "flap":
		e.opFlap()
	case "crash":
		e.opCrash()
	case "campaign":
		e.CampaignPulse()
	case "fetch":
		e.opFetch()
	case "detach":
		e.opDetach()
	}
}

// opRoam starts one make-before-break handover to a different network.
func (e *Engine) opRoam() {
	d := e.pickIdle(nil)
	if d == nil {
		return
	}
	target := e.rng.Intn(len(e.W.Nets))
	if target == e.curNetIdx(d) {
		target = (target + 1) % len(e.W.Nets)
	}
	e.beginRoam(d, target, 0)
}

// beginRoam starts the handover; retries (scripted storms use them so
// a lossy control channel only delays, never cancels, the evacuation).
func (e *Engine) beginRoam(d *device, target, retries int) {
	if d.hand != nil || d.sess == nil {
		return
	}
	h, err := core.BeginRoam(d.sess, []*core.AccessNetwork{e.W.Nets[target]}, core.RoamOptions{
		DrainDeadline: e.cfg.DrainDeadline,
	})
	if err != nil {
		e.roamFails++
		e.note("roam-fail", "%s -> %s: %v", d.id, e.W.Nets[target].Name, err)
		if retries > 0 {
			e.W.Clock.Schedule(5*time.Second, func() { e.beginRoam(d, target, retries-1) })
		}
		return
	}
	d.hand = h
	d.sess = nil
	d.busy = true
	e.note("roam", "%s handover to %s (%s)", d.id, h.New.Network.Name, h.New.Mode)
	e.W.Clock.Schedule(e.cfg.DrainDeadline+3*time.Second, func() { e.completeHandover(d) })
}

// completeHandover retires the old session and credits its invoice. A
// completion error means the old deployment vanished mid-drain (swept
// or crashed) — its bytes were already forfeited there, so the drift
// ledger stays exact with no invoice.
func (e *Engine) completeHandover(d *device) {
	h := d.hand
	if h == nil {
		return
	}
	inv, err := h.Complete()
	d.sess = h.New
	d.hand = nil
	d.busy = false
	if err != nil {
		e.roamFails++
		e.note("roam-complete-fail", "%s: %v", d.id, err)
		return
	}
	e.roams++
	e.noteInvoice(d, h.Old, inv)
	e.note("roam-done", "%s now on %s (%s)", d.id, h.New.Network.Name, h.New.Mode)
}

// opCrash crashes one provider: every deployment's usage is forfeited
// (the book dies with the process), then Restart loses the book and
// ReclaimOrphans mops the leaked rules, meters, chains and instances.
func (e *Engine) opCrash() {
	n := e.W.Nets[e.rng.Intn(len(e.W.Nets))]
	for _, id := range n.Server.DeviceIDs() {
		_, b, ok := n.Server.Usage(id)
		if ok {
			if d := e.W.devByID[id]; d != nil {
				d.forfeited += b
				e.note("crash-forfeit", "%s forfeits %d bytes on %s", id, b, n.Name)
			}
		}
	}
	n.Server.Restart()
	rules, meters, chains, insts := n.Server.ReclaimOrphans()
	e.crashes++
	e.note("crash", "%s restarted; reclaimed %d rules %d meters %d chains %d instances",
		n.Name, rules, meters, chains, insts)
}

// opDetach politely tears a device down (exact invoice) and returns it
// after a gap — the lease-book churn a polite departure causes.
func (e *Engine) opDetach() {
	d := e.pickIdle(func(d *device) bool { return d.sess.Mode == core.ModeInNetwork })
	if d == nil {
		return
	}
	inv, err := d.sess.Teardown()
	if err != nil {
		e.note("detach-fail", "%s: %v", d.id, err)
		return
	}
	e.noteInvoice(d, d.sess, inv)
	e.detaches++
	d.busy = true
	e.note("detach", "%s detached from %s", d.id, d.sess.Network.Name)
	e.W.Clock.Schedule(20*time.Second, func() { e.reconnect(d) })
}

// opFetch fetches the published module through the overlay into a
// fresh store, re-verifying signature and content key — the check that
// makes replica tampering harmless.
func (e *Engine) opFetch() {
	ow := e.W.Over
	if ow == nil {
		return
	}
	st := store.New()
	st.RegisterPublisher("acme", ow.pub.Public)
	e.fetches++
	// Tampered replica answers are dropped at the lookup merge (the
	// forged signature fails Verify there), so most campaign rejections
	// surface as the looker's BadRecords delta rather than as install
	// failures.
	before := ow.devNode.Stats.BadRecords
	ow.devNode.Get(ow.modKey, func(r overlay.LookupResult) {
		e.rejects += int64(ow.devNode.Stats.BadRecords - before)
		for _, rec := range r.Records {
			m, err := overlay.DecodeModuleRecord(rec)
			if err != nil {
				e.rejects++
				continue
			}
			if _, err := st.InstallRemote("owner-soak", m, ow.modKey.String()); err != nil {
				e.rejects++
				continue
			}
			e.installs++
			if m.Config["list"] == "exfil.example" {
				e.evilInstalls++
			}
		}
	})
}

// Quiesce winds the world down and runs the strict invariant check:
// probers stop, pending handovers complete, in-flight episodes drain
// through a grace window, every session is torn down and invoiced, a
// final sweep mops lapsed leases, and the dataplane drains.
func (e *Engine) Quiesce() {
	for _, d := range e.W.Devs {
		if d.probing {
			d.prober.Stop()
			d.probing = false
		}
	}
	for _, d := range e.W.Devs {
		if d.hand != nil {
			e.completeHandover(d)
		}
	}
	e.clearCampaign()
	e.W.Clock.RunFor(quiesceGrace)
	for _, d := range e.W.Devs {
		if d.probing {
			d.prober.Stop()
			d.probing = false
		}
		if d.hand != nil {
			e.completeHandover(d)
		}
	}
	for _, d := range e.W.Devs {
		if d.sess == nil {
			continue
		}
		s := d.sess
		if s.Mode != core.ModeInNetwork {
			_, _ = s.Teardown()
			continue
		}
		inv, err := s.Teardown()
		if err != nil {
			// Deployment already gone; its usage was forfeited when it
			// was swept or crashed.
			e.note("final-teardown", "%s: %v", d.id, err)
			continue
		}
		e.noteInvoice(d, s, inv)
	}
	e.sweepOnce()
	e.checkAll(true)
	e.W.Pipe.Stop()
}
