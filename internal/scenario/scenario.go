// Package scenario is the adversarial soak harness: a deterministic,
// seeded engine that composes concurrent failure storms over a running
// core+dataplane+overlay system and checks global invariants between
// events and at quiesce (ROADMAP item 3 — the regression net that lets
// the scale/refactor items change machinery aggressively).
//
// Every prior experiment exercises one failure mechanism at a time:
// E13 loses control messages, E14 crashes middleboxes, E15 kills a
// tunnel endpoint, E16 tampers replicas. The paper's actual claim is
// that the PVN keeps a user's policy and connectivity intact *across*
// hostile, churning edge networks — which is a statement about the
// composition: leases lapsing while a device roams, a provider
// crashing mid-handover, colluding providers corrupting traffic while
// their overlay replicas lie. The engine schedules those storms
// concurrently on one simulated clock, from one seeded RNG, so any
// violation reproduces bit-for-bit from its seed.
//
// Storms (composable, overlapping in time):
//
//   - roam storm: many devices make-before-break roam off a dying
//     network inside one window (stadium/train);
//   - flap episode: a multihomed device flaps between two networks
//     under overlapping control-channel outage windows while its
//     tunnel path crashes and a prober drives failover;
//   - adversarial campaign: colluding providers cut their control
//     channels, their deployed FaultyBoxes panic and corrupt traffic,
//     their overlay replicas tamper stored records, and their
//     reputation gossip lies — all at once;
//   - background churn: lease renewals are skipped at random, sweeps
//     reclaim lapsed deployments, providers crash and restart
//     (Restart + ReclaimOrphans), devices politely detach and return.
//
// GlobalInvariants (checked every few events and strictly at quiesce):
//
//   - invoice-drift: per device, bytes metered by matched flow rules ==
//     invoiced bytes + bytes forfeited to sweeps/crashes + live usage
//     not yet invoiced (exactly zero pending at quiesce);
//   - lease-leak: per network, the deployment book and the actual
//     switch rules, meters, runtime chains and instances agree in both
//     directions (no orphans, nothing missing);
//   - blackout: no device goes unserved longer than the configured
//     detection+failover bound;
//   - ledger-complete: every completed roam and tunnel failover has a
//     redirection record, every detected corruption a violation;
//   - drop-accounting: the sharded dataplane's PR 7 invariant,
//     Enqueued == Processed + Dropped + QueueDepth, on every shard;
//   - overlay-tamper: no tampered module manifest is ever installed.
//
// Violations carry the seed and the tail of the event trace; Report
// prints a one-command reproduction line (pvnbench -soak -seed=N).
package scenario

import (
	"fmt"
	"strings"
	"time"
)

// Config parameterizes a soak world. The zero value is not runnable;
// start from DefaultConfig.
type Config struct {
	// Seed drives every random choice in the run.
	Seed uint64

	// Networks is the number of PVN-capable access networks (>= 2).
	// The last one is the colluding (adversarial) provider when
	// campaigns run.
	Networks int
	// Devices is the steady-state device population.
	Devices int
	// CampaignDevices is how many devices deploy a PVNC containing the
	// colluding provider's fault-injection middlebox (panics and
	// corruption ride their chains continuously).
	CampaignDevices int
	// FlapDevices is how many devices are multihomed (tunnel endpoints
	// plus probed paths) and eligible for cellular<->WiFi flap
	// episodes.
	FlapDevices int
	// OverlayNodes sizes the discovery overlay (0 disables it and the
	// campaign's tamper/liar arms).
	OverlayNodes int

	// InitialNetwork pins every device's first attachment to one
	// network index (the roam storm's "dying network"); -1 spreads
	// devices round-robin.
	InitialNetwork int

	// LeaseTTL configures deployment leases on every network (0
	// disables lease churn).
	LeaseTTL time.Duration
	// RenewEvery is the renewal cadence; RenewSkipRate is the chance a
	// device neglects one renewal (driving sweeps).
	RenewEvery    time.Duration
	RenewSkipRate float64
	// SweepEvery is the per-network lease sweep cadence.
	SweepEvery time.Duration

	// HeartbeatEvery is the measurement cadence: every beat, every
	// device sends TrafficPerBeat packets through its session and
	// PipelinePerBeat synthetic packets enter the sharded dataplane.
	HeartbeatEvery  time.Duration
	TrafficPerBeat  int
	PipelinePerBeat int

	// MeanOpInterval spaces the randomly composed scenario events
	// (exponential); CheckEveryOps runs the invariant sweep every N
	// events.
	MeanOpInterval time.Duration
	CheckEveryOps  int

	// RepairDelay is how long a device waits after noticing its
	// deployment vanished (sweep/crash) before reconnecting.
	RepairDelay time.Duration
	// BlackoutBound is the invariant: no device may go unserved longer
	// than this (detection + repair + one beat of slack).
	BlackoutBound time.Duration
	// DrainDeadline bounds handover drains.
	DrainDeadline time.Duration

	// PipelineShards sizes the sharded dataplane (Block policy, so the
	// drop invariant is exact).
	PipelineShards int

	// Weights biases the random composition mode per op kind (see
	// opKinds); nil uses defaults. Only listed kinds run.
	Weights map[string]int
}

// DefaultConfig is the standard soak world: 4 networks (one colluding),
// 8 devices (one adversarial, one multihomed), a 16-node overlay, lease
// churn on, and event pacing tuned so a million simulated seconds stays
// a seconds-scale wall-clock run under -race.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		Networks:        4,
		Devices:         8,
		CampaignDevices: 1,
		FlapDevices:     1,
		OverlayNodes:    16,
		InitialNetwork:  -1,
		LeaseTTL:        240 * time.Second,
		RenewEvery:      60 * time.Second,
		RenewSkipRate:   0.1,
		SweepEvery:      120 * time.Second,
		HeartbeatEvery:  40 * time.Second,
		TrafficPerBeat:  1,
		PipelinePerBeat: 4,
		MeanOpInterval:  200 * time.Second,
		CheckEveryOps:   25,
		RepairDelay:     5 * time.Second,
		BlackoutBound:   150 * time.Second,
		DrainDeadline:   2 * time.Second,
		PipelineShards:  2,
	}
}

// opKinds is the random composition repertoire, in weight-table order.
var opKinds = []string{"roam", "flap", "crash", "campaign", "fetch", "detach"}

// defaultWeights is the standard storm mix.
var defaultWeights = map[string]int{
	"roam": 4, "flap": 2, "crash": 1, "campaign": 1, "fetch": 2, "detach": 2,
}

// Violation is one invariant breach, tagged with the seed's event trace
// position for reproduction.
type Violation struct {
	At        time.Duration
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("[t=%v] %s: %s", v.At, v.Invariant, v.Detail)
}

// Event is one trace entry (scheduled op, storm phase, violation).
type Event struct {
	At     time.Duration
	Kind   string
	Detail string
}

// traceCap bounds the retained trace ring; violations always report
// the tail leading up to them.
const traceCap = 512

// Summary is the machine-readable outcome of a run, for experiment
// rows and the soak CLI.
type Summary struct {
	SimTime      time.Duration
	Ops          int64
	Sent         int64
	Served       int64
	Lost         int64
	Roams        int64
	RoamFails    int64
	Failovers    int64
	Crashes      int64
	Sweeps       int64
	Invoices     int64
	Corrupts     int64
	Fetches      int64
	Installs     int64
	Rejects      int64
	EvilInstalls int64
	GossipLies   int64
	Violations   int
}

// Report renders the seed, violations and trace tail with a
// one-command reproduction line — satellite: any invariant failure
// reproduces with one flag.
func (e *Engine) Report() string {
	var b strings.Builder
	sum := e.Summary()
	fmt.Fprintf(&b, "scenario seed=%d sim=%v ops=%d sent=%d served=%d lost=%d roams=%d failovers=%d crashes=%d sweeps=%d\n",
		e.cfg.Seed, e.W.Clock.Now(), sum.Ops, sum.Sent, sum.Served, sum.Lost, sum.Roams, sum.Failovers, sum.Crashes, sum.Sweeps)
	if len(e.violations) == 0 {
		b.WriteString("invariants: all clean\n")
	} else {
		fmt.Fprintf(&b, "INVARIANT VIOLATIONS (%d):\n", len(e.violations))
		for _, v := range e.violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
		b.WriteString("event trace tail:\n")
		tail := e.trace
		if len(tail) > 40 {
			tail = tail[len(tail)-40:]
		}
		for _, ev := range tail {
			fmt.Fprintf(&b, "  [t=%v] %s %s\n", ev.At, ev.Kind, ev.Detail)
		}
		hours := e.W.Clock.Now().Hours()
		fmt.Fprintf(&b, "reproduce: go run ./cmd/pvnbench -soak -seed=%d -sim-hours=%.3f\n", e.cfg.Seed, hours)
	}
	return b.String()
}
