package scenario

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pvn/internal/core"
	"pvn/internal/orchestrator"
	"pvn/internal/packet"
	"pvn/internal/pvnc"
)

// clusterFor wires a two-host orchestrator onto the engine's clock and
// places one chain, returning the cluster and the chain's device.
func clusterFor(t *testing.T, e *Engine) (*orchestrator.Cluster, *core.Device) {
	t.Helper()
	c := orchestrator.New(orchestrator.Config{Clock: e.W.Clock, HeartbeatEvery: 20 * time.Second})
	for i := 0; i < 2; i++ {
		h, err := orchestrator.NewHost(orchestrator.HostParams{
			Spec: orchestrator.HostSpec{
				Name: fmt.Sprintf("edge%d", i), FailureDomain: fmt.Sprintf("rack%d", i),
				CPUMilli: 2000, MemBytes: 128 << 20, CostPerCPUMilli: 1,
			},
			Clock:     e.W.Clock,
			Supported: map[string]int64{"tcp-proxy": 40},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.AddHost(h)
	}
	cfg, err := pvnc.Parse(`pvnc edge-std
owner orch-user
device 10.9.0.1
middlebox prox tcp-proxy
chain fast prox
policy 10 match proto=tcp dport=80 via=fast action=forward
policy 0 match any action=forward
`)
	if err != nil {
		t.Fatal(err)
	}
	dev := &core.Device{ID: "orch-dev", Addr: packet.MustParseIPv4("10.9.0.1"),
		Config: cfg, BudgetMicro: 100_000}
	if _, err := c.Submit(orchestrator.ChainRequest{ID: "orch-chain", Tenant: "t",
		CPUMilli: 100, MemBytes: 8 << 20, Priority: 5}, dev); err != nil {
		t.Fatal(err)
	}
	return c, dev
}

// TestPlacementInvariantWiring: an attached cluster's book joins the
// quiet-point checks — clean while consistent, and a deployment torn
// down behind the book's back surfaces as a placement-book violation.
func TestPlacementInvariantWiring(t *testing.T) {
	e := New(DefaultConfig(3))
	c, dev := clusterFor(t, e)

	// No cluster attached: divergence is invisible to the checker.
	e.checkAll(false)
	if n := len(e.Violations()); n != 0 {
		t.Fatalf("baseline world not clean: %v", e.Violations())
	}

	e.AttachCluster(c)
	e.checkAll(false)
	if n := len(e.Violations()); n != 0 {
		t.Fatalf("consistent cluster flagged: %v", e.Violations())
	}

	// Steal the deployment off its booked host.
	host := c.Host(c.Placement("orch-chain").Host)
	if _, _, err := host.Net.Server.Teardown(dev.ID); err != nil {
		t.Fatal(err)
	}
	e.checkAll(false)
	found := false
	for _, v := range e.Violations() {
		if v.Invariant == "placement-book" && strings.Contains(v.Detail, "orch-chain") {
			found = true
		}
	}
	if !found {
		t.Fatalf("book divergence not reported: %v", e.Violations())
	}
}

// TestPlacementInvariantCleanUnderStorm: a consistent cluster riding a
// real composed storm stays clean at every checkpoint — the invariant
// adds no false positives.
func TestPlacementInvariantCleanUnderStorm(t *testing.T) {
	e := New(DefaultConfig(11))
	c, _ := clusterFor(t, e)
	e.AttachCluster(c)
	c.Start()
	e.Soak(20_000 * time.Second)
	c.Stop()
	if n := len(e.Violations()); n != 0 {
		t.Fatalf("storm with attached cluster violated invariants:\n%s", e.Report())
	}
}
