package scenario

import (
	"strings"
	"testing"
	"time"

	"pvn/internal/core"
	"pvn/internal/netsim"
	"pvn/internal/openflow"
)

// TestSoakShort is the `make soak-short` gate: a composed random storm
// of ~30 simulated minutes with every arm enabled, strict-checked at
// quiesce, under -race in CI.
func TestSoakShort(t *testing.T) {
	e := New(DefaultConfig(1))
	e.Soak(1800 * time.Second)
	if n := len(e.Violations()); n != 0 {
		t.Fatalf("%d invariant violations:\n%s", n, e.Report())
	}
	if s := e.Summary(); s.Sent == 0 || s.Served == 0 {
		t.Fatalf("soak sent no traffic: %+v", s)
	}
}

// TestSoakMillionSimSeconds is the acceptance soak: >= 1,000,000
// simulated seconds of weighted random storm composition with every
// global invariant holding at every checkpoint and strictly at quiesce.
func TestSoakMillionSimSeconds(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak skipped in -short")
	}
	e := New(DefaultConfig(42))
	e.Soak(1_000_000 * time.Second)
	sum := e.Summary()
	if sum.SimTime < 1_000_000*time.Second {
		t.Fatalf("soak ended early: %v simulated", sum.SimTime)
	}
	if sum.Violations != 0 {
		t.Fatalf("invariant violations over %v:\n%s", sum.SimTime, e.Report())
	}
	// The composition must actually compose: every storm arm fired.
	if sum.Roams == 0 || sum.Crashes == 0 || sum.Sweeps == 0 || sum.Corrupts == 0 ||
		sum.Failovers == 0 || sum.Rejects == 0 || sum.GossipLies == 0 {
		t.Fatalf("a storm arm never fired: %+v", sum)
	}
	if e.evilInstalls != 0 {
		t.Fatalf("%d tampered modules installed", e.evilInstalls)
	}
}

// TestSoakDeterminism runs the same seed twice and demands bit-identical
// summaries and reports — the property that makes "reproduce with
// -seed=N" meaningful.
func TestSoakDeterminism(t *testing.T) {
	run := func() (Summary, string) {
		e := New(DefaultConfig(99))
		e.Soak(40_000 * time.Second)
		return e.Summary(), e.Report()
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 {
		t.Fatalf("summaries differ for one seed:\n%+v\n%+v", s1, s2)
	}
	if r1 != r2 {
		t.Fatalf("reports differ for one seed:\n%s\n---\n%s", r1, r2)
	}
}

// TestSeedsVary: different seeds produce different storms (the RNG is
// actually driving the composition, not decorating it).
func TestSeedsVary(t *testing.T) {
	e1 := New(DefaultConfig(5))
	e1.Soak(30_000 * time.Second)
	e2 := New(DefaultConfig(6))
	e2.Soak(30_000 * time.Second)
	if e1.Summary() == e2.Summary() {
		t.Fatalf("seeds 5 and 6 produced identical summaries: %+v", e1.Summary())
	}
}

// TestRoamStormScripted drives the flash-crowd evacuation: every device
// starts on one network, its control channel dies, and the whole
// population roams off it inside one window — with retries, so the
// lossy exits delay rather than strand anyone.
func TestRoamStormScripted(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.Devices = 24
	cfg.FlapDevices = 0
	cfg.CampaignDevices = 0
	cfg.OverlayNodes = 0
	cfg.InitialNetwork = 0
	cfg.LeaseTTL = 0 // isolate the storm from lease churn
	e := New(cfg)
	dying := e.W.Nets[0]
	dying.Faults.AddOutage(netsim.Outage{From: 100 * time.Second, Until: 400 * time.Second})
	e.ScheduleRoamStorm(120*time.Second, 120*time.Second)
	e.Start(600 * time.Second)
	e.FinishAt(600 * time.Second)

	if n := len(e.Violations()); n != 0 {
		t.Fatalf("violations:\n%s", e.Report())
	}
	for _, d := range e.W.Devs {
		if d.sess != nil && d.sess.Network == dying && d.sess.Mode == core.ModeInNetwork {
			t.Fatalf("%s still in-network on the dying network", d.id)
		}
	}
	if e.roams < int64(cfg.Devices) {
		t.Fatalf("only %d roams for %d devices", e.roams, cfg.Devices)
	}
}

// TestFlapEpisodeScripted runs one flap episode in isolation and checks
// its exact machinery: stacked outage windows on one injector, tunnel
// fallback, prober-driven failover, and a clean in-network landing.
func TestFlapEpisodeScripted(t *testing.T) {
	cfg := DefaultConfig(21)
	cfg.Devices = 2
	cfg.FlapDevices = 1
	cfg.CampaignDevices = 0
	cfg.OverlayNodes = 0
	cfg.LeaseTTL = 0
	cfg.InitialNetwork = 0
	e := New(cfg)
	var flap *device
	for _, d := range e.W.Devs {
		if d.flap {
			flap = d
		}
	}
	if flap == nil {
		t.Fatal("no flap device built")
	}
	e.Start(400 * time.Second)
	e.W.Clock.At(50*time.Second, func() { e.FlapEpisode(flap.idx) })
	e.FinishAt(400 * time.Second)

	if n := len(e.Violations()); n != 0 {
		t.Fatalf("violations:\n%s", e.Report())
	}
	if e.flapEpisodes != 1 {
		t.Fatalf("flapEpisodes = %d", e.flapEpisodes)
	}
	if got := flap.dev.Tunnels.Failovers(); got == 0 {
		t.Fatalf("flap episode produced no tunnel failovers")
	}
	if e.flapRoams == 0 {
		t.Fatalf("flap episode produced no roams")
	}
}

// TestBrokenInvariantDetected deliberately breaks the world behind the
// engine's back — an orphan flow rule a crashed provider "forgot" — and
// demands the checker catch it and the report carry the seed for
// one-command reproduction.
func TestBrokenInvariantDetected(t *testing.T) {
	cfg := DefaultConfig(77)
	e := New(cfg)
	e.Start(2_000 * time.Second)
	e.W.Clock.At(1_000*time.Second, func() {
		e.W.Nets[0].Server.Switch.Table.Install(&openflow.FlowEntry{
			Priority: 99,
			Actions:  []openflow.Action{openflow.Output(1)},
			Cookie:   0xdead,
		}, e.W.Clock.Now())
	})
	e.FinishAt(2_000 * time.Second)

	if len(e.Violations()) == 0 {
		t.Fatal("orphan rule not detected by the lease-leak invariant")
	}
	found := false
	for _, v := range e.Violations() {
		if v.Invariant == "lease-leak" && strings.Contains(v.Detail, "orphan flow rule") {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong violation kind:\n%s", e.Report())
	}
	rep := e.Report()
	if !strings.Contains(rep, "seed=77") || !strings.Contains(rep, "-soak -seed=77") {
		t.Fatalf("report lacks the reproduction seed:\n%s", rep)
	}
	if !strings.Contains(rep, "event trace tail") {
		t.Fatalf("report lacks the event trace:\n%s", rep)
	}
}

// TestBrokenAccountingDetected tears a session down behind the engine's
// back: the provider invoices nobody, the engine's billable ledger no
// longer balances, and invoice-drift must fire.
func TestBrokenAccountingDetected(t *testing.T) {
	cfg := DefaultConfig(78)
	cfg.LeaseTTL = 0 // no sweeps to legitimately absorb the usage
	e := New(cfg)
	e.Start(3_000 * time.Second)
	e.W.Clock.At(1_500*time.Second, func() {
		d := e.W.Devs[0]
		if d.sess != nil && d.hand == nil {
			_, _, _ = d.sess.Network.Server.Teardown(d.id) // usage vanishes unbilled
		}
	})
	e.FinishAt(3_000 * time.Second)

	found := false
	for _, v := range e.Violations() {
		if v.Invariant == "invoice-drift" {
			found = true
		}
	}
	if !found {
		t.Fatalf("behind-the-back teardown not caught by invoice-drift:\n%s", e.Report())
	}
}
