package experiments

import (
	"fmt"
	"math/bits"
	"time"

	"pvn/internal/auditor"
	"pvn/internal/discovery"
	"pvn/internal/netsim"
	"pvn/internal/overlay"
	"pvn/internal/pki"
	"pvn/internal/pvnc"
	"pvn/internal/store"
)

// E16Params parameterizes the decentralized-discovery experiment.
type E16Params struct {
	// Nodes is the overlay population, split across two star clusters.
	Nodes int
	// Lookups is the convergence sample size.
	Lookups int
	// ChurnFrac is the fraction of nodes that crash in the churn phase.
	ChurnFrac float64
	Seed      uint64
}

// DefaultE16 is the standard configuration: a 256-node overlay, the
// scale the acceptance criteria bound the hop count at.
var DefaultE16 = E16Params{Nodes: 256, Lookups: 64, ChurnFrac: 0.25, Seed: 16}

const e16Cfg = `
pvnc overlay-roam
owner alice
device 10.0.0.1
middlebox tlsv tls-verify
middlebox pii pii-detect mode=block
middlebox vid transcoder
chain secure tlsv pii
policy 100 match proto=tcp dport=443 via=secure action=forward
policy 0 match any action=forward
`

// e16Service is the rendezvous name providers advertise under.
const e16Service = "pvn"

// E16 measures decentralized discovery (§3.1 without the coordination
// server): cold-start discovery latency and offer quality for
// centralized broadcast vs. the DHT overlay, under churn and
// partition. Every count is exact and deterministic in the seed.
//
// Phases:
//  1. join: all nodes bootstrap through one contact; hop depth of the
//     join lookups.
//  2. lookup: iterative lookups from scattered sources converge on the
//     exact nearest node in O(log n) rounds.
//  3. discovery: a roaming device attaches via (a) broadcast — it
//     takes the cheapest local offer, which is the lying provider —
//     and (b) the overlay, where gossiped audit reputation filters the
//     liar before attach.
//  4. store: a content-addressed module manifest is fetched and
//     installed through the DHT; with every replica tampering, the
//     fetch is rejected by signature/content-key re-verification.
//  5. churn: a quarter of the overlay crashes; lookups still converge.
//  6. partition: the inter-cluster bridge is severed and healed;
//     fetches fail cross-partition and recover after heal.
func E16(p E16Params) *Result {
	res := &Result{
		ID:     "E16",
		Title:  "decentralized discovery overlay",
		Claim:  "provider discovery, the PVN Store and reputations need no central coordinator (paper S3.1)",
		Header: []string{"scenario", "outcome", "count", "p50", "p99"},
	}

	link := netsim.LinkConfig{Latency: 5 * time.Millisecond, BandwidthBps: 100e6}
	bridge := netsim.LinkConfig{Latency: 10 * time.Millisecond, BandwidthBps: 1e9}
	nA := p.Nodes / 2
	net, hubs, leaves := netsim.NewDualStarTopology(p.Seed, nA, p.Nodes-nA, link, bridge)
	clock := net.Clock

	// Overlay nodes with deterministic identities.
	nodes := make([]*overlay.Node, 0, p.Nodes)
	for _, side := range leaves {
		for _, leaf := range side {
			kp, err := pki.GenerateKey(pki.NewDeterministicRand(p.Seed<<20 + uint64(len(nodes)) + 1))
			if err != nil {
				panic("e16: keygen: " + err.Error())
			}
			nodes = append(nodes, overlay.NewNode(leaf, kp, overlay.Config{}))
		}
	}

	// Phase 1: staggered join through node 0.
	joinHops := &netsim.Dist{}
	for i := 1; i < len(nodes); i++ {
		i := i
		clock.Schedule(time.Duration(i)*20*time.Millisecond, func() {
			nodes[i].Join(nodes[0].Self(), func(r overlay.LookupResult) {
				joinHops.Add(float64(r.Rounds))
			})
		})
	}
	clock.Run()
	joined := 0
	for _, n := range nodes {
		if n.Table().Len() > 0 {
			joined++
		}
	}
	res.AddRow("join", "bootstrapped via 1 contact",
		fmt.Sprintf("%d/%d", joined, p.Nodes), f1(joinHops.Percentile(50)), f1(joinHops.Percentile(99)))
	res.SetMetric("join_hops_p50", joinHops.Percentile(50))
	res.SetMetric("join_hops_p99", joinHops.Percentile(99))

	// Phase 2: lookup convergence. Sources and targets stride through
	// the population so samples cover both clusters.
	hopBound := bits.Len(uint(p.Nodes)) // ceil(log2 n)+1
	lookupHops := &netsim.Dist{}
	exact := 0
	for i := 0; i < p.Lookups; i++ {
		src := nodes[(i*13+1)%len(nodes)]
		target := nodes[(i*29+7)%len(nodes)].Self().ID
		var got overlay.LookupResult
		src.Lookup(target, func(r overlay.LookupResult) { got = r })
		clock.Run()
		lookupHops.Add(float64(got.Rounds))
		if len(got.Closest) > 0 && got.Closest[0].ID == target {
			exact++
		}
	}
	res.AddRow("lookup", "nearest is exact target",
		fmt.Sprintf("%d/%d", exact, p.Lookups), f1(lookupHops.Percentile(50)), f1(lookupHops.Percentile(99)))
	res.SetMetric("lookup_hops_p50", lookupHops.Percentile(50))
	res.SetMetric("lookup_hops_p99", lookupHops.Percentile(99))
	res.SetMetric("lookup_hops_max", lookupHops.Max())
	res.Findingf("iterative lookups converge in p99 %.0f rounds on %d nodes (O(log n) bound %d)",
		lookupHops.Percentile(99), p.Nodes, hopBound)

	// Providers publish signed advertisements under the service key.
	std := []string{discovery.StandardMatchAction, discovery.StandardMiddlebox}
	honestKey, _ := pki.GenerateKey(pki.NewDeterministicRand(p.Seed<<20 + 900001))
	liarKey, _ := pki.GenerateKey(pki.NewDeterministicRand(p.Seed<<20 + 900002))
	backupKey, _ := pki.GenerateKey(pki.NewDeterministicRand(p.Seed<<20 + 900003))
	ads := []struct {
		ad  overlay.OfferAd
		kp  pki.KeyPair
		via int
	}{
		{overlay.OfferAd{Provider: "isp-honest", DeployServer: "h", Standards: std,
			Supported: map[string]int64{"tls-verify": 10, "pii-detect": 10, "transcoder": 10}}, honestKey, 1},
		{overlay.OfferAd{Provider: "isp-liar", DeployServer: "l", Standards: std,
			Supported: map[string]int64{"tls-verify": 1, "pii-detect": 1, "transcoder": 1}}, liarKey, nA + 1},
		{overlay.OfferAd{Provider: "isp-backup", DeployServer: "b", Standards: std,
			Supported: map[string]int64{"tls-verify": 20, "pii-detect": 20, "transcoder": 20}}, backupKey, 2},
	}
	for _, a := range ads {
		nodes[a.via].Put(overlay.NewOfferRecord(e16Service, a.ad, a.kp, 1), nil)
	}
	clock.Run()

	// Reputation: three devices audited the liar and fold their ledgers
	// into the gossip stream; refresh traffic spreads the claims.
	deviceIdx := len(nodes) - 2 // far side, never met any provider
	dev := nodes[deviceIdx]
	for r, reporter := range []int{5, 6, 7} {
		ledger := auditor.NewLedger()
		for i := 0; i < 10; i++ {
			ledger.RecordAudit("isp-liar")
			ledger.RecordAudit("isp-honest")
		}
		for i := 0; i < 9; i++ {
			ledger.RecordViolation(auditor.Violation{Provider: "isp-liar", Kind: auditor.ViolationSecurityBypass})
		}
		nodes[reporter].Rep().Merge(overlay.FoldLedger(fmt.Sprintf("auditor%d", r), ledger, 1))
	}
	for round := 0; round < 4; round++ {
		for i := 1; i < len(nodes); i += 6 {
			nodes[i].Refresh(nil)
		}
		dev.Refresh(nil)
		clock.Run()
	}
	preScore, preHeard := dev.Rep().Score("isp-liar")

	cfg, err := pvnc.Parse(e16Cfg)
	if err != nil {
		panic("e16: " + err.Error())
	}

	// Phase 3a: broadcast discovery. All three providers answer the
	// local broadcast; the cost-driven negotiator attaches to the
	// cheapest — the liar.
	policies := make([]*discovery.ProviderPolicy, len(ads))
	for i, a := range ads {
		policies[i] = &discovery.ProviderPolicy{
			Provider: a.ad.Provider, DeployServer: a.ad.DeployServer,
			Standards: std, Supported: a.ad.Supported,
		}
	}
	runSession := func(useOverlay bool) (discovery.SessionResult, time.Duration) {
		neg := discovery.NewNegotiator("dev-roam", cfg, 10_000, discovery.StrategyStrict)
		var out discovery.SessionResult
		var sess *discovery.Session
		sess = &discovery.Session{
			Neg:   neg,
			Clock: clock,
			Send: func(msg interface{}) {
				switch m := msg.(type) {
				case *discovery.DM:
					if useOverlay {
						return // roamed onto a PVN-oblivious network: broadcast goes unanswered
					}
					dm := m
					for _, pp := range policies {
						pp := pp
						clock.Schedule(2*link.Latency, func() {
							if o := pp.HandleDM(dm, clock.Now()); o != nil {
								sess.HandleOffer(o)
							}
						})
					}
				case *discovery.DeployRequest:
					clock.Schedule(2*link.Latency, func() {
						sess.HandleDeployResponse(&discovery.DeployResponse{OK: true, Cookie: 1})
					})
				}
			},
			Done: func(r discovery.SessionResult) { out = r },
		}
		if useOverlay {
			src := &overlay.OfferSource{Node: dev, Service: e16Service, MinScore: 0.5}
			sess.OverlayQuery = src.Query
		}
		sess.Start()
		clock.Run()
		return out, out.Elapsed
	}

	bcast, bcastLatency := runSession(false)
	bcastProvider, bcastCost := "none", int64(0)
	if bcast.Deployed {
		bcastProvider, bcastCost = bcast.Offer.Provider, bcast.Decision.Cost
	}
	res.AddRow("discover/broadcast",
		fmt.Sprintf("attached %s (cost %d)", bcastProvider, bcastCost),
		fmt.Sprintf("%d offers", bcast.OffersSeen), f1(float64(bcastLatency)/float64(time.Millisecond)), "-")
	res.SetMetric("broadcast_setup_ms", float64(bcastLatency)/float64(time.Millisecond))

	// Phase 3b: overlay discovery. The device ranks the never-seen
	// liar below honest providers via gossip before attaching.
	dht, dhtLatency := runSession(true)
	dhtProvider, dhtCost := "none", int64(0)
	if dht.Deployed {
		dhtProvider, dhtCost = dht.Offer.Provider, dht.Decision.Cost
	}
	res.AddRow("discover/overlay",
		fmt.Sprintf("attached %s (cost %d)", dhtProvider, dhtCost),
		fmt.Sprintf("%d offers", dht.OffersSeen), f1(float64(dhtLatency)/float64(time.Millisecond)), "-")
	res.SetMetric("overlay_setup_ms", float64(dhtLatency)/float64(time.Millisecond))
	// The discovery lookup's own envelopes deliver the audit gossip:
	// the device may not have heard of the liar before querying (score
	// preScore), but by attach time the claims have piggybacked in.
	liarScore, liarHeard := dev.Rep().Score("isp-liar")
	res.SetMetric("gossip_liar_score", liarScore)
	res.Findingf("broadcast attaches to the cheapest provider (%s); the overlay hears gossip (liar score %.2f heard=%v pre-query, %.2f heard=%v at attach) and attaches to %s",
		bcastProvider, preScore, preHeard, liarScore, liarHeard, dhtProvider)

	// Explicit ranking check: synthesize all three offers and rank.
	dm := discovery.NewNegotiator("dev-rank", cfg, 10_000, discovery.StrategyStrict).MakeDM()
	var offers []*discovery.Offer
	for _, a := range ads {
		rec := overlay.NewOfferRecord(e16Service, a.ad, a.kp, 1)
		ad := a.ad
		if o := ad.ToOffer(rec, dm, clock.Now()); o != nil {
			offers = append(offers, o)
		}
	}
	ranked := overlay.RankOffers(offers, dev.Rep())
	rankStr := ""
	for i, o := range ranked {
		if i > 0 {
			rankStr += " > "
		}
		rankStr += o.Provider
	}
	res.AddRow("rank", rankStr, fmt.Sprintf("%d ads", len(ranked)), "-", "-")

	// Phase 4: the distributed PVN Store. A registered publisher ships
	// a module; the device fetches it by content address.
	pubKey, _ := pki.GenerateKey(pki.NewDeterministicRand(p.Seed<<20 + 900004))
	module := &store.Module{
		Name: "acme/tracker-radar", Version: "2.0", Publisher: "acme",
		Type: "tracker-block", Config: map[string]string{"list": "ads.example"},
	}
	module.Sign(pubKey.Private)
	modKey := overlay.ModuleKey(module)
	nodes[3].Put(overlay.NewModuleRecord(module, pubKey, 1), nil)
	clock.Run()

	devStore := store.New()
	devStore.RegisterPublisher("acme", pubKey.Public)
	fetchModule := func() (installs, rejects, fetched int) {
		// Forged replica answers never reach the caller: the lookup
		// verifies each record before the merge and counts the drops
		// in the looker's BadRecords.
		before := dev.Stats.BadRecords
		var got overlay.LookupResult
		dev.Get(modKey, func(r overlay.LookupResult) { got = r })
		clock.Run()
		rejects = dev.Stats.BadRecords - before
		fetched = rejects
		for _, rec := range got.Records {
			fetched++
			m, err := overlay.DecodeModuleRecord(rec)
			if err != nil {
				rejects++
				continue
			}
			if _, err := devStore.InstallRemote("alice", m, modKey.String()); err != nil {
				rejects++
				continue
			}
			installs++
		}
		return
	}
	installs, rejects, fetched := fetchModule()
	res.AddRow("store/fetch", "verified & installed",
		fmt.Sprintf("%d installed, %d rejected of %d", installs, rejects, fetched), "-", "-")

	// Every replica turns malicious: swapped config, re-signed under
	// the attacker's key. The re-signed body no longer matches the
	// record's content key, so the lookup merge rejects every copy.
	evilKey, _ := pki.GenerateKey(pki.NewDeterministicRand(p.Seed<<20 + 900005))
	for _, n := range nodes {
		n.TamperStored = func(r *overlay.Record) *overlay.Record {
			if r.Kind != overlay.RecordModule {
				return nil
			}
			tm, err := store.DecodeModule(r.Body)
			if err != nil {
				return nil
			}
			tm.Config = map[string]string{"list": "exfil.example"}
			tm.Sign(evilKey.Private)
			evil := *r
			evil.Body = tm.Encode()
			evil.PublicKey = evilKey.Public
			evil.Sign(evilKey.Private)
			return &evil
		}
	}
	tInstalls, tRejects, tFetched := fetchModule()
	for _, n := range nodes {
		n.TamperStored = nil
	}
	res.AddRow("store/tampered", "re-verification rejects",
		fmt.Sprintf("%d installed, %d rejected of %d", tInstalls, tRejects, tFetched), "-", "-")
	res.SetMetric("tamper_rejects", float64(tRejects))
	res.Findingf("tampered manifests: %d/%d fetched records rejected at the device, %d installed",
		tRejects, tFetched, tInstalls)

	// Phase 5: churn. A quarter of the overlay crashes (tail of the
	// population, sparing the device and the early publisher nodes);
	// survivors refresh, then lookups still converge.
	churned := 0
	want := int(float64(p.Nodes) * p.ChurnFrac)
	for i := len(nodes) - 3; i >= 0 && churned < want; i -= 3 {
		if i < 8 { // spare bootstrap and publishers
			break
		}
		nodes[i].Leave()
		churned++
	}
	for i := 1; i < len(nodes); i += 7 {
		if nodes[i].Alive() {
			nodes[i].Refresh(nil)
		}
	}
	clock.Run()
	churnHops := &netsim.Dist{}
	churnOK := 0
	churnLookups := p.Lookups / 2
	for i := 0; i < churnLookups; i++ {
		src := nodes[(i*11+2)%len(nodes)]
		if !src.Alive() {
			src = dev
		}
		var got overlay.LookupResult
		src.Get(overlay.ServiceKey(e16Service), func(r overlay.LookupResult) { got = r })
		clock.Run()
		churnHops.Add(float64(got.Rounds))
		if got.Found {
			churnOK++
		}
	}
	res.AddRow("churn", fmt.Sprintf("%d nodes crashed, offers still found", churned),
		fmt.Sprintf("%d/%d", churnOK, churnLookups), f1(churnHops.Percentile(50)), f1(churnHops.Percentile(99)))
	res.SetMetric("churn_hops_p99", churnHops.Percentile(99))
	res.Findingf("under %.0f%% churn, %d/%d service lookups still return offers",
		p.ChurnFrac*100, churnOK, churnLookups)

	// Phase 6: partition and heal. A fresh record published on the A
	// side; the bridge is severed; fetches succeed only where a replica
	// landed, and heal restores both sides.
	partKey, _ := pki.GenerateKey(pki.NewDeterministicRand(p.Seed<<20 + 900006))
	partAd := overlay.OfferAd{Provider: "isp-part", DeployServer: "p", Standards: std,
		Supported: map[string]int64{"tls-verify": 2}}
	nodes[4].Put(overlay.NewOfferRecord("pvn-part", partAd, partKey, 1), nil)
	clock.Run()

	sever := func(lossRate float64) {
		cfgAB := hubs[0].PortTo(hubs[1].ID).Config()
		cfgAB.LossRate = lossRate
		hubs[0].PortTo(hubs[1].ID).SetConfig(cfgAB)
		cfgBA := hubs[1].PortTo(hubs[0].ID).Config()
		cfgBA.LossRate = lossRate
		hubs[1].PortTo(hubs[0].ID).SetConfig(cfgBA)
	}
	fetchPart := func(n *overlay.Node) bool {
		var got overlay.LookupResult
		n.Get(overlay.ServiceKey("pvn-part"), func(r overlay.LookupResult) { got = r })
		clock.Run()
		return got.Found
	}
	aDev, bDev := nodes[9], dev // one querier per side
	sever(1)
	partA, partB := fetchPart(aDev), fetchPart(bDev)
	sever(0)
	// Healed: let a refresh repopulate cross-side contacts evicted
	// during the partition, then fetch again.
	aDev.Refresh(nil)
	bDev.Refresh(nil)
	clock.Run()
	healA, healB := fetchPart(aDev), fetchPart(bDev)
	res.AddRow("partition", fmt.Sprintf("severed a:%v b:%v, healed a:%v b:%v", partA, partB, healA, healB),
		"1 record", "-", "-")
	res.Findingf("partition: a-side fetch %v, b-side fetch %v while severed; both %v after heal",
		partA, partB, healA && healB)

	// Total overlay RPC volume across the swarm — the "ops" count the
	// bench harness divides wall time and allocations by.
	var totalRPCs int
	for _, n := range nodes {
		totalRPCs += n.Stats.RPCsSent
	}
	res.SetMetric("ops", float64(totalRPCs))

	return res
}
