package experiments

import (
	"fmt"
	"time"

	"pvn/internal/netsim"
	"pvn/internal/tcpsim"
)

// E3Params parameterizes the split-TCP experiment.
type E3Params struct {
	// TransferBytes per download.
	TransferBytes int
	// Trials averaged per configuration.
	Trials int
	Seed   uint64
}

// DefaultE3 is the standard configuration.
var DefaultE3 = E3Params{TransferBytes: 2_000_000, Trials: 20, Seed: 3}

// e3Config is one last-mile quality class.
type e3Config struct {
	name     string
	rtt      time.Duration
	bw       float64
	loss     float64
	proxyPP  time.Duration
	proxyCst time.Duration
}

// E3 reproduces the split-TCP claims of §2.2: splitting at an on-path
// proxy shortens control loops and speeds loss recovery ([11,17]), but
// measurement showed mixed results — clients with good links benefit
// most, while proxy overheads can make things worse ([44]).
func E3(p E3Params) *Result {
	res := &Result{
		ID:     "E3",
		Title:  "split-TCP proxy vs direct connection",
		Claim:  "splitting helps long/lossy paths via faster window growth and loss recovery, but proxy overhead can hurt short clean paths (paper S2.2, [11,17,44])",
		Header: []string{"last mile", "direct (ms)", "split (ms)", "speedup", "direct tput (Mbps)", "split tput (Mbps)"},
	}

	// The wide-area leg is fixed: proxy at the ISP edge, 160ms clean
	// backbone to the server.
	server := tcpsim.Params{RTT: 160 * time.Millisecond, BandwidthBps: 200e6, LossRate: 0.0005}

	configs := []e3Config{
		{"good wifi (10ms, 0.1% loss)", 10 * time.Millisecond, 100e6, 0.001, 45 * time.Microsecond, 5 * time.Millisecond},
		{"good lte (30ms, 0.5% loss)", 30 * time.Millisecond, 30e6, 0.005, 45 * time.Microsecond, 5 * time.Millisecond},
		{"poor wifi (40ms, 2% loss)", 40 * time.Millisecond, 10e6, 0.02, 45 * time.Microsecond, 5 * time.Millisecond},
		{"poor cellular (80ms, 3% loss)", 80 * time.Millisecond, 2e6, 0.03, 45 * time.Microsecond, 5 * time.Millisecond},
		{"good wifi + overloaded proxy", 10 * time.Millisecond, 100e6, 0.001, 3 * time.Millisecond, 50 * time.Millisecond},
	}

	rng := netsim.NewRNG(p.Seed)
	type agg struct{ direct, split netsim.Dist }
	var winners []string
	for _, cfg := range configs {
		direct := tcpsim.Params{
			RTT:          cfg.rtt + server.RTT,
			BandwidthBps: min64f(cfg.bw, server.BandwidthBps),
			LossRate:     1 - (1-cfg.loss)*(1-server.LossRate),
		}
		sp := tcpsim.SplitParams{
			ServerLeg:      server,
			ClientLeg:      tcpsim.Params{RTT: cfg.rtt, BandwidthBps: cfg.bw, LossRate: cfg.loss},
			ProxyPerPacket: cfg.proxyPP,
			ProxyConnSetup: cfg.proxyCst,
		}
		var a agg
		for i := 0; i < p.Trials; i++ {
			dt, st, err := tcpsim.Compare(direct, sp, p.TransferBytes, rng.Fork())
			if err != nil {
				res.Findingf("%s: %v", cfg.name, err)
				continue
			}
			a.direct.AddDuration(dt.Duration)
			a.split.AddDuration(st.Duration)
		}
		speedup := a.direct.Mean() / a.split.Mean()
		dTput := float64(p.TransferBytes*8) / (a.direct.Mean() / 1000) / 1e6
		sTput := float64(p.TransferBytes*8) / (a.split.Mean() / 1000) / 1e6
		res.AddRow(cfg.name, f1(a.direct.Mean()), f1(a.split.Mean()), f2(speedup), f2(dTput), f2(sTput))
		if speedup > 1.05 {
			winners = append(winners, cfg.name)
		}
	}

	res.Findingf("split wins on %d/%d configurations: %v", len(winners), len(configs), winners)
	res.Findingf("overloaded proxy row shows the [44] caveat: proxy overheads erase the benefit on short clean paths")
	return res
}

func min64f(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// E3Ablation sweeps last-mile loss at fixed RTT to locate the crossover
// where splitting starts to pay — the fine-grained version of E3.
func E3Ablation(p E3Params) *Result {
	res := &Result{
		ID:     "E3b",
		Title:  "split-TCP crossover vs last-mile loss",
		Claim:  "the benefit of splitting grows with last-mile impairment (paper S2.2)",
		Header: []string{"last-mile loss", "direct (ms)", "split (ms)", "speedup"},
	}
	server := tcpsim.Params{RTT: 160 * time.Millisecond, BandwidthBps: 200e6, LossRate: 0.0005}
	rng := netsim.NewRNG(p.Seed)
	var speedups []float64
	for _, loss := range []float64{0, 0.002, 0.005, 0.01, 0.02, 0.05} {
		client := tcpsim.Params{RTT: 30 * time.Millisecond, BandwidthBps: 30e6, LossRate: loss}
		direct := tcpsim.Params{RTT: client.RTT + server.RTT, BandwidthBps: 30e6, LossRate: 1 - (1-loss)*(1-server.LossRate)}
		sp := tcpsim.SplitParams{ServerLeg: server, ClientLeg: client,
			ProxyPerPacket: 45 * time.Microsecond, ProxyConnSetup: 5 * time.Millisecond}
		var d, s netsim.Dist
		for i := 0; i < p.Trials; i++ {
			dt, st, err := tcpsim.Compare(direct, sp, p.TransferBytes, rng.Fork())
			if err != nil {
				continue
			}
			d.AddDuration(dt.Duration)
			s.AddDuration(st.Duration)
		}
		sp2 := d.Mean() / s.Mean()
		speedups = append(speedups, sp2)
		res.AddRow(fmt.Sprintf("%.1f%%", loss*100), f1(d.Mean()), f1(s.Mean()), f2(sp2))
	}
	if len(speedups) > 1 && speedups[len(speedups)-1] > speedups[0] {
		res.Findingf("speedup grows with loss: %.2fx at 0%% -> %.2fx at 5%%", speedups[0], speedups[len(speedups)-1])
	}
	return res
}
