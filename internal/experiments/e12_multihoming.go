package experiments

import (
	"time"

	"pvn/internal/netsim"
	"pvn/internal/tcpsim"
)

// E12Params parameterizes the multihoming experiment.
type E12Params struct {
	// Flows per class per policy.
	Flows int
	// SmallBytes / BulkBytes size the two traffic classes.
	SmallBytes, BulkBytes int
	Seed                  uint64
}

// DefaultE12 is the standard configuration.
var DefaultE12 = E12Params{Flows: 30, SmallBytes: 20_000, BulkBytes: 5_000_000, Seed: 12}

// E12 reproduces the multihoming claim (§1, Fig 1c): "PVNs can enable
// selective routing of network traffic, leveraging path diversity from
// multihomed networks." A device holds both a WiFi path (low RTT,
// modest bandwidth) and an LTE path (higher RTT, more bandwidth).
// Per-flow PVN policy sends latency-sensitive small transfers over WiFi
// and bulk downloads over LTE; the baselines pin everything to one
// interface (what a device without per-flow routing does).
func E12(p E12Params) *Result {
	res := &Result{
		ID:     "E12",
		Title:  "multihomed selective routing",
		Claim:  "per-flow interface selection beats pinning all traffic to either interface (paper S1, Fig 1c)",
		Header: []string{"routing policy", "small-flow p95 (ms)", "bulk mean (s)", "worst class penalty"},
	}

	// The classic multihoming trade-off: the hotspot WiFi has a short
	// RTT but is congested and lossy (small flows love it, bulk chokes
	// on the loss — Mathis caps loss-based TCP at MSS/RTT·1.22/√p);
	// LTE has a longer RTT but a clean, fat pipe.
	wifi := tcpsim.Params{RTT: 15 * time.Millisecond, BandwidthBps: 10e6, LossRate: 0.02}
	lte := tcpsim.Params{RTT: 55 * time.Millisecond, BandwidthBps: 80e6, LossRate: 0.0005}

	type policy struct {
		name        string
		small, bulk tcpsim.Params
	}
	policies := []policy{
		{"all WiFi", wifi, wifi},
		{"all LTE", lte, lte},
		{"PVN per-flow (small→WiFi, bulk→LTE)", wifi, lte},
	}

	type row struct {
		smallP95, bulkMean float64
	}
	var rows []row
	for _, pol := range policies {
		// Every policy sees the same loss draws, so identical
		// class→interface assignments produce identical numbers.
		rng := netsim.NewRNG(p.Seed)
		var small, bulk netsim.Dist
		for i := 0; i < p.Flows; i++ {
			ts, err := tcpsim.TransferTime(pol.small, p.SmallBytes, rng.Fork())
			if err != nil {
				res.Findingf("small transfer: %v", err)
				continue
			}
			small.AddDuration(ts.Duration)
			tb, err := tcpsim.TransferTime(pol.bulk, p.BulkBytes, rng.Fork())
			if err != nil {
				res.Findingf("bulk transfer: %v", err)
				continue
			}
			bulk.AddDuration(tb.Duration)
		}
		r := row{smallP95: small.Percentile(95), bulkMean: bulk.Mean() / 1000}
		rows = append(rows, r)
		// Penalty vs the best achievable per class (WiFi small, LTE bulk
		// — computed after the loop for the finding; per-row show the
		// max of the two normalized slowdowns later).
		res.AddRow(pol.name, f1(r.smallP95), f2(r.bulkMean), "")
	}

	// Fill the penalty column: slowdown vs the per-class best.
	bestSmall, bestBulk := rows[0].smallP95, rows[0].bulkMean
	for _, r := range rows {
		if r.smallP95 < bestSmall {
			bestSmall = r.smallP95
		}
		if r.bulkMean < bestBulk {
			bestBulk = r.bulkMean
		}
	}
	for i, r := range rows {
		pen := r.smallP95 / bestSmall
		if b := r.bulkMean / bestBulk; b > pen {
			pen = b
		}
		res.Rows[i][3] = f2(pen) + "x"
	}

	res.Findingf("all-WiFi penalizes bulk (%.2fs vs %.2fs), all-LTE penalizes small flows (p95 %.0fms vs %.0fms)",
		rows[0].bulkMean, rows[2].bulkMean, rows[1].smallP95, rows[2].smallP95)
	res.Findingf("per-flow PVN routing achieves the per-class best on both simultaneously (penalty 1.00x)")
	return res
}
